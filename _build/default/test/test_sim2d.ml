(* Tests for the 2-D reconfigurable-device simulator (Section 7 future
   work): rectangle placement, fragmentation accounting, and consistency
   with the 1-D engine under the full-height embedding. *)

module Time = Model.Time
module E2 = Sim2d.Engine2d
module T2 = Sim2d.Task2d

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let t2 name c d t w h = T2.of_decimal ~name ~exec:c ~deadline:d ~period:t ~w ~h ()

let config ?(rule = Sim.Policy.Nf) ?(horizon = 40) ?(record = false) width height =
  {
    (E2.default_config ~width ~height ~rule) with
    E2.horizon = Time.of_units horizon;
    record_trace = record;
  }

let no_miss r = r.E2.outcome = E2.No_miss

let single_rectangle () =
  let r = E2.run (config 10 10 ~horizon:50) [ t2 "a" "2" "5" "5" 4 3 ] in
  check_bool "schedulable" true (no_miss r);
  check_int "jobs" 10 r.E2.stats.jobs_released;
  (* busy integral: 10 jobs * 2 units * 12 cells *)
  check_int "cell ticks" (10 * 2000 * 12) r.E2.stats.busy_cell_ticks

let parallel_rectangles () =
  (* 4x10 and 6x10 fill a 10x10 side by side *)
  let tasks = [ t2 "a" "3" "5" "5" 4 10; t2 "b" "3" "5" "5" 6 10 ] in
  let r = E2.run (config 10 10 ~horizon:50) tasks in
  check_bool "schedulable" true (no_miss r);
  check_int "no rejections" 0
    (r.E2.stats.fragmentation_rejections + r.E2.stats.capacity_rejections)

let overload_misses () =
  let r = E2.run (config 10 10) [ t2 "a" "6" "5" "5" 5 5 ] in
  match r.E2.outcome with
  | E2.Miss m -> Core_helpers.check_time "first deadline" (Time.of_units 5) m.E2.at
  | E2.No_miss -> Alcotest.fail "expected a miss"

let too_large_rejected () =
  Alcotest.check_raises "oversize" (Invalid_argument "Engine2d.run: task rectangle exceeds the device")
    (fun () -> ignore (E2.run (config 10 10) [ t2 "a" "1" "5" "5" 11 1 ]));
  Alcotest.check_raises "empty" (Invalid_argument "Engine2d.run: empty task list") (fun () ->
      ignore (E2.run (config 10 10) []))

(* 2-D fragmentation: three tall blocks fill the width; when the middle
   one keeps running, a wide job cannot be placed although enough cells
   are free — the engine must classify that as a fragmentation
   rejection. *)
let fragmentation_classified () =
  let tasks =
    [
      t2 "left" "1" "20" "20" 4 10;
      t2 "mid" "6" "20" "20" 3 10;
      t2 "right" "1" "20" "20" 3 10;
      (* released at 0 with the longest deadline: placed nowhere once the
         first three claim the whole width; after left and right finish
         (t=1) there are 70 free cells but no 6-wide rectangle *)
      t2 "wide" "2" "21" "21" 6 6;
    ]
  in
  let r = E2.run (config 10 10 ~horizon:15 ~record:true) tasks in
  check_bool "fragmentation rejections observed" true (r.E2.stats.fragmentation_rejections > 0)

(* the full-height embedding of a 1-D taskset behaves exactly like the
   1-D engine in contiguous first-fit mode *)
let embedding_matches_1d () =
  let sets =
    [
      Core_helpers.taskset
        [ ("t1", "2", "4", "4", 6); ("t2", "2", "4", "4", 6); ("t3", "3", "4", "4", 4) ];
      Core_helpers.taskset
        [ ("a", "1", "3", "3", 5); ("b", "2", "5", "5", 7); ("c", "1", "4", "4", 2) ];
      Core_helpers.taskset [ ("x", "5", "6", "6", 9); ("y", "1", "2", "2", 2) ];
    ]
  in
  List.iter
    (fun ts ->
      List.iter
        (fun rule ->
          let cfg1 =
            {
              (Sim.Engine.default_config ~fpga_area:10
                 ~policy:
                   (match rule with
                    | Sim.Policy.Nf -> Sim.Policy.edf_nf
                    | Sim.Policy.Fkf -> Sim.Policy.edf_fkf))
              with
              Sim.Engine.horizon = Time.of_units 60;
              placement = Sim.Engine.Contiguous Fpga.Device.First_fit;
            }
          in
          let ok1 = Sim.Engine.schedulable cfg1 ts in
          let cfg2 = { (config 10 8 ~rule ~horizon:60) with E2.record_trace = false } in
          let ok2 = E2.schedulable cfg2 (E2.embed_1d ts ~height:8) in
          check_bool "1-D embedding agrees" ok1 ok2)
        [ Sim.Policy.Nf; Sim.Policy.Fkf ])
    sets

(* random embedded tasksets: same agreement *)
let prop_embedding =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 2 4)
        (let* t_units = oneofl [ 2; 3; 4; 6 ] in
         let period = Model.Time.of_units t_units in
         let* c = int_range 1 (Model.Time.ticks period) in
         let* area = int_range 1 10 in
         return (Model.Task.make ~exec:(Model.Time.of_ticks c) ~deadline:period ~period ~area ()))
      >|= Model.Taskset.of_list)
  in
  Core_helpers.qtest ~count:150 "2-D embedding = 1-D contiguous" gen (fun ts ->
      let cfg1 =
        {
          (Sim.Engine.default_config ~fpga_area:10 ~policy:Sim.Policy.edf_nf) with
          Sim.Engine.horizon = Time.of_units 36;
          placement = Sim.Engine.Contiguous Fpga.Device.First_fit;
        }
      in
      let cfg2 = config 10 6 ~horizon:36 in
      Sim.Engine.schedulable cfg1 ts = E2.schedulable cfg2 (E2.embed_1d ts ~height:6))

let () =
  Alcotest.run "sim2d"
    [
      ( "engine",
        [
          Alcotest.test_case "single rectangle" `Quick single_rectangle;
          Alcotest.test_case "parallel rectangles" `Quick parallel_rectangles;
          Alcotest.test_case "overload misses" `Quick overload_misses;
          Alcotest.test_case "bad inputs" `Quick too_large_rejected;
          Alcotest.test_case "fragmentation classified" `Quick fragmentation_classified;
        ] );
      ( "embedding",
        [ Alcotest.test_case "matches 1-D contiguous" `Quick embedding_matches_1d; prop_embedding ] );
    ]
