(* Tests for the acceptance-ratio sweep harness. *)

let check_bool = Alcotest.(check bool)

let tiny_config conditioning =
  let profile = Model.Generator.unconstrained ~n:4 in
  {
    (Experiment.Sweep.default_config ~profile) with
    Experiment.Sweep.samples = 40;
    targets = [ 20.0; 40.0; 60.0 ];
    sim_horizon = Model.Time.of_units 100;
    conditioning;
  }

let ratios_in_range () =
  let t = Experiment.Sweep.run (tiny_config Experiment.Sweep.Scaled) in
  List.iter
    (fun p ->
      List.iteri
        (fun mi _ ->
          let r = Experiment.Sweep.acceptance t ~method_index:mi p in
          check_bool "ratio in [0,1]" true (r >= 0.0 && r <= 1.0))
        t.Experiment.Sweep.method_names)
    t.Experiment.Sweep.points;
  Alcotest.(check int) "one point per target" 3 (List.length t.Experiment.Sweep.points)

(* soundness as an integration fact: per point, the analytic accept
   counts can never exceed the EDF-NF simulation accept count, because
   every analytic accept implies true schedulability *)
let analytic_below_simulation () =
  let t = Experiment.Sweep.run (tiny_config Experiment.Sweep.Scaled) in
  let idx name =
    let rec go i = function
      | [] -> Alcotest.fail ("missing method " ^ name)
      | n :: _ when n = name -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 t.Experiment.Sweep.method_names
  in
  let sim_nf = idx "SIM-NF" and sim_fkf = idx "SIM-FkF" in
  List.iter
    (fun p ->
      let a = p.Experiment.Sweep.accepted in
      check_bool "DP <= SIM-NF" true (a.(idx "DP") <= a.(sim_nf));
      check_bool "GN1 <= SIM-NF" true (a.(idx "GN1") <= a.(sim_nf));
      check_bool "GN2 <= SIM-NF" true (a.(idx "GN2") <= a.(sim_nf));
      (* DP and GN2 are also sound for EDF-FkF *)
      check_bool "DP <= SIM-FkF" true (a.(idx "DP") <= a.(sim_fkf));
      check_bool "GN2 <= SIM-FkF" true (a.(idx "GN2") <= a.(sim_fkf));
      (* and Danne's dominance: NF accepts at least as much as FkF *)
      check_bool "SIM-FkF <= SIM-NF" true (a.(sim_fkf) <= a.(sim_nf)))
    t.Experiment.Sweep.points

let deterministic () =
  let a = Experiment.Sweep.run (tiny_config Experiment.Sweep.Scaled) in
  let b = Experiment.Sweep.run (tiny_config Experiment.Sweep.Scaled) in
  check_bool "same csv" true (Experiment.Sweep.to_csv a = Experiment.Sweep.to_csv b)

let binned_mode () =
  let t = Experiment.Sweep.run (tiny_config Experiment.Sweep.Binned) in
  let total_generated =
    List.fold_left (fun acc p -> acc + p.Experiment.Sweep.generated) 0 t.Experiment.Sweep.points
  in
  (* binned draws may fall outside all buckets, but some must land *)
  check_bool "some tasksets bucketed" true (total_generated > 0);
  check_bool "not more than drawn" true (total_generated <= 40 * 3)

let outputs_wellformed () =
  let t = Experiment.Sweep.run (tiny_config Experiment.Sweep.Scaled) in
  let csv = Experiment.Sweep.to_csv t in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "csv rows" 4 (List.length lines);
  check_bool "csv header" true
    (String.length (List.hd lines) > 0
     && String.sub (List.hd lines) 0 9 = "target_us");
  let table = Experiment.Sweep.to_table t in
  check_bool "table mentions methods" true (String.length table > 0);
  let plot = Experiment.Sweep.to_ascii_plot t in
  check_bool "plot has legend" true (String.contains plot '=')

let figures_configs () =
  List.iter
    (fun figure ->
      let cfg = Experiment.Figures.config ~samples:5 figure in
      check_bool "has targets" true (cfg.Experiment.Sweep.targets <> []);
      check_bool "valid profile" true
        (Model.Generator.validate cfg.Experiment.Sweep.profile = Ok ());
      check_bool "has expectations" true (Experiment.Figures.expectations figure <> []);
      check_bool "id well-formed" true (String.length (Experiment.Figures.id figure) = 5))
    Experiment.Figures.all

(* --- incomparability search --- *)

let witness_profile =
  {
    (Model.Generator.unconstrained ~n:2) with
    Model.Generator.fpga_area = 10;
    area_hi = 10;
    period_lo = 4.0;
    period_hi = 10.0;
  }

let tests3 = [ ("DP", Core.Dp.accepts); ("GN1", Core.Gn1.accepts); ("GN2", Core.Gn2.accepts) ]

let witness_is_unique () =
  let rng = Rng.create ~seed:2025 in
  match
    Experiment.Incomparability.find_unique ~rng ~profile:witness_profile ~tests:tests3
      ~target:"GN1" ()
  with
  | None -> Alcotest.fail "expected to find a GN1-unique witness"
  | Some w ->
    let ts = w.Experiment.Incomparability.taskset in
    check_bool "GN1 accepts" true (Core.Gn1.accepts ~fpga_area:10 ts);
    check_bool "DP rejects" false (Core.Dp.accepts ~fpga_area:10 ts);
    check_bool "GN2 rejects" false (Core.Gn2.accepts ~fpga_area:10 ts)

let unknown_target_rejected () =
  let rng = Rng.create ~seed:1 in
  Alcotest.check_raises "unknown target"
    (Invalid_argument "Incomparability.find_unique: unknown target test") (fun () ->
      ignore
        (Experiment.Incomparability.find_unique ~rng ~profile:witness_profile ~tests:tests3
           ~target:"BOGUS" ()))

let incidence_sums () =
  let rng = Rng.create ~seed:7 in
  let draws = 500 in
  let table =
    Experiment.Incomparability.incidence ~draws ~rng ~profile:witness_profile ~tests:tests3 ()
  in
  Alcotest.(check int) "classes partition the draws" draws
    (List.fold_left (fun acc (_, c) -> acc + c) 0 table);
  List.iter
    (fun (accepting, _) ->
      check_bool "class keys are sorted test names" true
        (List.for_all (fun n -> List.mem_assoc n tests3) accepting
        && List.sort compare accepting = accepting))
    table

let () =
  Alcotest.run "experiment"
    [
      ( "sweep",
        [
          Alcotest.test_case "ratios in range" `Quick ratios_in_range;
          Alcotest.test_case "analytic below simulation" `Quick analytic_below_simulation;
          Alcotest.test_case "deterministic" `Quick deterministic;
          Alcotest.test_case "binned mode" `Quick binned_mode;
          Alcotest.test_case "outputs well-formed" `Quick outputs_wellformed;
        ] );
      ("figures", [ Alcotest.test_case "configs" `Quick figures_configs ]);
      ( "incomparability",
        [
          Alcotest.test_case "witness uniqueness" `Quick witness_is_unique;
          Alcotest.test_case "unknown target" `Quick unknown_target_rejected;
          Alcotest.test_case "incidence partition" `Quick incidence_sums;
        ] );
    ]
