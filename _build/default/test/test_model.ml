(* Tests for fixed-point time, tasks, tasksets and the synthetic
   generators. *)

module Time = Model.Time
module Task = Model.Task
module Taskset = Model.Taskset
module Generator = Model.Generator

let check_bool = Alcotest.(check bool)
let check_rat = Core_helpers.check_rat
let check_time = Core_helpers.check_time

(* --- Time --- *)

let time_decimal () =
  check_time "1.26" (Time.of_ticks 1260) (Time.of_decimal_string "1.26");
  check_time "7" (Time.of_ticks 7000) (Time.of_decimal_string "7");
  check_time "0.001" (Time.of_ticks 1) (Time.of_decimal_string "0.001");
  check_time "-2.5" (Time.of_ticks (-2500)) (Time.of_decimal_string "-2.5");
  Alcotest.check_raises "too fine"
    (Invalid_argument "Time.of_decimal_string: \"0.0001\" is finer than 1/1000") (fun () ->
      ignore (Time.of_decimal_string "0.0001"))

let time_strings () =
  Alcotest.(check string) "whole" "7" (Time.to_string (Time.of_units 7));
  Alcotest.(check string) "frac" "1.26" (Time.to_string (Time.of_ticks 1260));
  Alcotest.(check string) "trim zeros" "2.5" (Time.to_string (Time.of_ticks 2500));
  Alcotest.(check string) "millis" "0.001" (Time.to_string (Time.of_ticks 1));
  Alcotest.(check string) "negative" "-1.5" (Time.to_string (Time.of_ticks (-1500)))

let time_arith () =
  check_time "add" (Time.of_units 3) (Time.add (Time.of_units 1) (Time.of_units 2));
  check_time "sub" (Time.of_ticks 500) (Time.sub (Time.of_units 1) (Time.of_ticks 500));
  check_time "mul_int" (Time.of_units 6) (Time.mul_int (Time.of_units 2) 3);
  check_rat "to_rat exact" (Rat.of_ints 63 50) (Time.to_rat (Time.of_decimal_string "1.26"));
  check_bool "round" true (Time.equal (Time.of_float_round 1.2604) (Time.of_ticks 1260))

(* --- Task --- *)

let task_validation () =
  let t = Core_helpers.task "x" "1.26" "7" "7" 9 in
  check_rat "time utilization" (Rat.of_ints 9 50) (Task.time_utilization t);
  check_rat "system utilization" (Rat.of_ints 81 50) (Task.system_utilization t);
  check_rat "density" (Rat.of_ints 9 50) (Task.density t);
  check_bool "implicit" true (Task.is_implicit_deadline t);
  Alcotest.check_raises "zero exec" (Invalid_argument "Task.make: exec must be positive")
    (fun () -> ignore (Core_helpers.task "x" "0" "1" "1" 1));
  Alcotest.check_raises "zero area" (Invalid_argument "Task.make: area must be >= 1") (fun () ->
      ignore (Core_helpers.task "x" "1" "1" "1" 0))

let constrained_deadlines () =
  let t = Core_helpers.task "x" "1" "3" "5" 2 in
  check_bool "not implicit" false (Task.is_implicit_deadline t);
  check_bool "constrained" true (Task.is_constrained_deadline t);
  let post = Core_helpers.task "y" "1" "8" "5" 2 in
  check_bool "post-period not constrained" false (Task.is_constrained_deadline post)

(* --- Taskset --- *)

let table1 =
  Core_helpers.taskset [ ("tau1", "1.26", "7", "7", 9); ("tau2", "0.95", "5", "5", 6) ]

let taskset_aggregates () =
  check_rat "UT" (Rat.add (Rat.of_ints 9 50) (Rat.of_ints 19 100)) (Taskset.time_utilization table1);
  check_rat "US" (Rat.of_ints 69 25) (Taskset.system_utilization table1);
  Alcotest.(check int) "amax" 9 (Taskset.amax table1);
  Alcotest.(check int) "amin" 6 (Taskset.amin table1);
  Alcotest.(check int) "size" 2 (Taskset.size table1);
  check_bool "fits 10" true (Taskset.fits table1 ~fpga_area:10);
  check_bool "fits 8" false (Taskset.fits table1 ~fpga_area:8);
  Alcotest.check_raises "empty taskset" (Invalid_argument "Taskset.of_list: empty taskset")
    (fun () -> ignore (Taskset.of_list []))

let hyperperiod_cases () =
  (match Taskset.hyperperiod table1 with
   | Taskset.Finite h -> check_time "lcm(7,5)" (Time.of_units 35) h
   | Taskset.Exceeds_cap -> Alcotest.fail "expected finite hyperperiod");
  let awkward =
    Core_helpers.taskset
      [ ("a", "1", "7.001", "7.001", 1); ("b", "1", "6.997", "6.997", 1); ("c", "1", "6.991", "6.991", 1) ]
  in
  (match Taskset.hyperperiod ~cap:(Time.of_units 10_000) awkward with
   | Taskset.Exceeds_cap -> ()
   | Taskset.Finite h -> Alcotest.failf "expected cap overflow, got %s" (Time.to_string h))

let csv_roundtrip () =
  let csv = Taskset.to_csv table1 in
  let back = Taskset.of_csv csv in
  check_bool "roundtrip" true (Taskset.equal table1 back);
  Alcotest.check_raises "bad header" (Invalid_argument "Taskset.of_csv: bad header") (fun () ->
      ignore (Taskset.of_csv "x,y\n1,2\n"))

(* --- Generator --- *)

let in_profile (p : Generator.profile) ts =
  List.for_all
    (fun (t : Task.t) ->
      let u = Rat.to_float (Task.time_utilization t) in
      let period = Time.to_float t.period in
      t.area >= p.Generator.area_lo
      && t.area <= min p.Generator.area_hi p.Generator.fpga_area
      && period > p.Generator.period_lo && period < p.Generator.period_hi
      && Time.ticks t.period mod p.Generator.period_grid = 0
      && Task.is_implicit_deadline t
      (* one tick of exec rounding can push u marginally past the bound *)
      && u > 0.0
      && u <= p.Generator.util_hi +. 0.001)
    (Taskset.to_list ts)

let generator_respects_profile () =
  let rng = Rng.create ~seed:7 in
  List.iter
    (fun p ->
      for _ = 1 to 50 do
        let ts = Generator.draw rng p in
        Alcotest.(check int) "task count" p.Generator.n (Taskset.size ts);
        check_bool "profile satisfied" true (in_profile p ts)
      done)
    [
      Generator.unconstrained ~n:4;
      Generator.unconstrained ~n:10;
      Generator.spatially_heavy_temporally_light ~n:10;
      Generator.spatially_light_temporally_heavy ~n:10;
    ]

let generator_hits_target () =
  let rng = Rng.create ~seed:11 in
  let p = Generator.unconstrained ~n:10 in
  List.iter
    (fun target ->
      match Generator.draw_with_target_us rng p ~target_us:target with
      | None -> Alcotest.failf "target %.1f should be reachable" target
      | Some ts ->
        let us = Rat.to_float (Taskset.system_utilization ts) in
        (* each task's exec rounds to a tick: error <= 0.5 tick / period *
           area <= 0.5/5000 * 100 = 0.01 per task *)
        let tolerance = 0.012 *. float_of_int (Taskset.size ts) in
        check_bool
          (Printf.sprintf "US %.3f within %.3f of target %.1f" us tolerance target)
          true
          (Float.abs (us -. target) <= tolerance);
        check_bool "profile satisfied" true (in_profile p ts))
    [ 5.0; 20.0; 50.0; 80.0 ]

let generator_unreachable_target () =
  let rng = Rng.create ~seed:13 in
  (* 2 tasks, areas <= 10, u <= 0.3: US can never reach 50 *)
  let p =
    { (Generator.unconstrained ~n:2) with Generator.area_hi = 10; Generator.util_hi = 0.3 }
  in
  check_bool "unreachable gives None" true
    (Generator.draw_with_target_us rng p ~target_us:50.0 = None);
  check_bool "max_reachable reflects it" true (Generator.max_reachable_us p < 50.0)

let generator_validation () =
  let bad = { (Generator.unconstrained ~n:4) with Generator.util_lo = 0.9; util_hi = 0.5 } in
  (match Generator.validate bad with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "expected invalid profile");
  Alcotest.check_raises "draw on invalid profile"
    (Invalid_argument "Generator: invalid utilization range") (fun () ->
      ignore (Generator.draw (Rng.create ~seed:1) bad))

let generator_deterministic () =
  let p = Generator.unconstrained ~n:5 in
  let a = Generator.draw (Rng.create ~seed:77) p in
  let b = Generator.draw (Rng.create ~seed:77) p in
  check_bool "same seed, same taskset" true (Taskset.equal a b)

let () =
  Alcotest.run "model"
    [
      ( "time",
        [
          Alcotest.test_case "decimal parsing" `Quick time_decimal;
          Alcotest.test_case "printing" `Quick time_strings;
          Alcotest.test_case "arithmetic" `Quick time_arith;
        ] );
      ( "task",
        [
          Alcotest.test_case "validation and utilizations" `Quick task_validation;
          Alcotest.test_case "constrained deadlines" `Quick constrained_deadlines;
        ] );
      ( "taskset",
        [
          Alcotest.test_case "aggregates" `Quick taskset_aggregates;
          Alcotest.test_case "hyperperiod" `Quick hyperperiod_cases;
          Alcotest.test_case "csv roundtrip" `Quick csv_roundtrip;
        ] );
      ( "generator",
        [
          Alcotest.test_case "respects profile" `Quick generator_respects_profile;
          Alcotest.test_case "hits target US" `Quick generator_hits_target;
          Alcotest.test_case "unreachable target" `Quick generator_unreachable_target;
          Alcotest.test_case "validation" `Quick generator_validation;
          Alcotest.test_case "deterministic" `Quick generator_deterministic;
        ] );
    ]
