(* Unit and property tests for the arbitrary-precision integers.  The
   property tests compare against native-int arithmetic on ranges where it
   cannot overflow, then exercise genuinely multi-digit values. *)

module B = Bignum

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_b = Core_helpers.check_bignum

let roundtrip_ints () =
  List.iter
    (fun n ->
      Alcotest.(check (option int)) (string_of_int n) (Some n) (B.to_int_opt (B.of_int n)))
    [ 0; 1; -1; 42; -42; 1 lsl 29; (1 lsl 30) - 1; 1 lsl 30; 1 lsl 31; max_int; min_int; min_int + 1 ]

let to_string_cases () =
  check_str "zero" "0" (B.to_string B.zero);
  check_str "small" "12345" (B.to_string (B.of_int 12345));
  check_str "negative" "-987654321" (B.to_string (B.of_int (-987654321)));
  check_str "max_int" (string_of_int max_int) (B.to_string (B.of_int max_int));
  check_str "min_int" (string_of_int min_int) (B.to_string (B.of_int min_int))

let of_string_cases () =
  check_b "round trip big" (B.pow (B.of_int 10) 30)
    (B.of_string "1000000000000000000000000000000");
  check_b "signed" (B.of_int (-123)) (B.of_string "-123");
  check_b "plus sign" (B.of_int 123) (B.of_string "+123");
  check_b "leading zeros" (B.of_int 7) (B.of_string "007");
  Alcotest.check_raises "empty" (Invalid_argument "Bignum.of_string: empty string") (fun () ->
      ignore (B.of_string ""));
  Alcotest.check_raises "garbage" (Invalid_argument "Bignum.of_string: invalid digit") (fun () ->
      ignore (B.of_string "12x3"))

let big_arithmetic () =
  let p30 = B.pow (B.of_int 10) 30 in
  let p15 = B.pow (B.of_int 10) 15 in
  check_b "10^15 * 10^15" p30 (B.mul p15 p15);
  check_b "10^30 / 10^15" p15 (B.div p30 p15);
  check_b "10^30 mod 10^15" B.zero (B.rem p30 p15);
  check_b "(10^30+7) mod 10^15" (B.of_int 7) (B.rem (B.add p30 (B.of_int 7)) p15);
  check_b "pow composes" (B.pow (B.of_int 2) 100) (B.mul (B.pow (B.of_int 2) 60) (B.pow (B.of_int 2) 40));
  check_str "2^100" "1267650600228229401496703205376" (B.to_string (B.pow (B.of_int 2) 100))

let division_by_zero () =
  Alcotest.check_raises "divmod" Division_by_zero (fun () -> ignore (B.divmod B.one B.zero));
  Alcotest.check_raises "fdiv" Division_by_zero (fun () -> ignore (B.fdiv B.one B.zero))

let fdiv_cases () =
  (* floor semantics on all sign combinations *)
  let f a b = B.to_int_exn (B.fdiv (B.of_int a) (B.of_int b)) in
  Alcotest.(check int) "7/2" 3 (f 7 2);
  Alcotest.(check int) "-7/2" (-4) (f (-7) 2);
  Alcotest.(check int) "7/-2" (-4) (f 7 (-2));
  Alcotest.(check int) "-7/-2" 3 (f (-7) (-2));
  Alcotest.(check int) "6/2" 3 (f 6 2);
  Alcotest.(check int) "-6/2" (-3) (f (-6) 2)

let gcd_lcm_cases () =
  let g a b = B.to_int_exn (B.gcd (B.of_int a) (B.of_int b)) in
  Alcotest.(check int) "gcd 12 18" 6 (g 12 18);
  Alcotest.(check int) "gcd -12 18" 6 (g (-12) 18);
  Alcotest.(check int) "gcd 0 5" 5 (g 0 5);
  Alcotest.(check int) "gcd 0 0" 0 (g 0 0);
  check_b "lcm 4 6" (B.of_int 12) (B.lcm (B.of_int 4) (B.of_int 6));
  check_b "lcm 0 6" B.zero (B.lcm B.zero (B.of_int 6))

let misc_operations () =
  let module B = Bignum in
  check_b "succ" (B.of_int 8) (B.succ (B.of_int 7));
  check_b "pred" (B.of_int 6) (B.pred (B.of_int 7));
  check_b "min" (B.of_int (-3)) (B.min (B.of_int (-3)) (B.of_int 2));
  check_b "max" (B.of_int 2) (B.max (B.of_int (-3)) (B.of_int 2));
  check_b "abs neg" (B.of_int 5) (B.abs (B.of_int (-5)));
  check_b "neg zero" B.zero (B.neg B.zero);
  Alcotest.(check int) "sign neg" (-1) (B.sign (B.of_int (-9)));
  Alcotest.(check int) "sign zero" 0 (B.sign B.zero);
  check_b "pow zero exponent" B.one (B.pow (B.of_int 9) 0);
  check_b "pow of zero" B.zero (B.pow B.zero 5);
  Alcotest.check_raises "pow negative" (Invalid_argument "Bignum.pow: negative exponent")
    (fun () -> ignore (B.pow B.two (-1)));
  (* hash consistent with equality on normalised values *)
  check_bool "hash equal" true (B.hash (B.of_int 42) = B.hash (B.of_string "42"));
  (* infix operators *)
  let open B.Infix in
  check_bool "infix" true
    (B.of_int 2 + B.of_int 3 = B.of_int 5
    && B.of_int 2 < B.of_int 3
    && B.of_int 3 >= B.of_int 3
    && B.of_int 6 / B.of_int 2 > B.of_int 2)

let to_int_overflow () =
  let too_big = B.mul (B.of_int max_int) (B.of_int 2) in
  check_bool "overflow detected" true (B.to_int_opt too_big = None);
  Alcotest.check_raises "to_int_exn raises"
    (Failure "Bignum.to_int_exn: value out of int range") (fun () -> ignore (B.to_int_exn too_big))

(* --- properties against the int oracle (range kept overflow-safe) --- *)

let small = QCheck2.Gen.int_range (-1_000_000) 1_000_000

let pair_oracle name op bop =
  Core_helpers.qtest name QCheck2.Gen.(pair small small) (fun (a, b) ->
      B.to_int_exn (bop (B.of_int a) (B.of_int b)) = op a b)

let prop_add = pair_oracle "add matches int" ( + ) B.add
let prop_sub = pair_oracle "sub matches int" ( - ) B.sub
let prop_mul = pair_oracle "mul matches int" ( * ) B.mul

let prop_divmod =
  Core_helpers.qtest "divmod matches int (/),(mod)"
    QCheck2.Gen.(pair small (QCheck2.Gen.oneof [ int_range 1 100000; int_range (-100000) (-1) ]))
    (fun (a, b) ->
      let q, r = B.divmod (B.of_int a) (B.of_int b) in
      B.to_int_exn q = a / b && B.to_int_exn r = a mod b)

let prop_compare =
  Core_helpers.qtest "compare matches int" QCheck2.Gen.(pair small small) (fun (a, b) ->
      compare a b = B.compare (B.of_int a) (B.of_int b))

let prop_string_roundtrip =
  Core_helpers.qtest "decimal string roundtrip" QCheck2.Gen.(list_size (int_range 1 40) (int_range 0 9))
    (fun digits ->
      let s = String.concat "" (List.map string_of_int digits) in
      let v = B.of_string s in
      (* strip leading zeros for comparison *)
      B.equal v (B.of_string (B.to_string v)))

(* multi-digit: check ring laws directly on large random values *)
let large =
  QCheck2.Gen.map
    (fun (a, b, c) -> B.add (B.mul (B.of_int a) (B.pow (B.of_int 2) 70)) (B.mul (B.of_int b) (B.of_int c)))
    QCheck2.Gen.(triple small small small)

let prop_ring_distributes =
  Core_helpers.qtest "a*(b+c) = a*b + a*c (large)" QCheck2.Gen.(triple large large large)
    (fun (a, b, c) -> B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)))

let prop_divmod_reconstructs =
  Core_helpers.qtest "a = q*b + r, |r| < |b| (large)" QCheck2.Gen.(pair large large)
    (fun (a, b) ->
      if B.is_zero b then true
      else begin
        let q, r = B.divmod a b in
        B.equal a (B.add (B.mul q b) r)
        && B.compare (B.abs r) (B.abs b) < 0
        && (B.is_zero r || B.sign r = B.sign a)
      end)

let prop_gcd_divides =
  Core_helpers.qtest "gcd divides both (large)" QCheck2.Gen.(pair large large) (fun (a, b) ->
      let g = B.gcd a b in
      if B.is_zero g then B.is_zero a && B.is_zero b
      else B.is_zero (B.rem a g) && B.is_zero (B.rem b g))

let prop_to_float =
  Core_helpers.qtest "to_float close to int" small (fun a ->
      Float.abs (B.to_float (B.of_int a) -. float_of_int a) < 1e-6)

let () =
  Alcotest.run "bignum"
    [
      ( "unit",
        [
          Alcotest.test_case "int roundtrip" `Quick roundtrip_ints;
          Alcotest.test_case "to_string" `Quick to_string_cases;
          Alcotest.test_case "of_string" `Quick of_string_cases;
          Alcotest.test_case "big arithmetic" `Quick big_arithmetic;
          Alcotest.test_case "division by zero" `Quick division_by_zero;
          Alcotest.test_case "floor division" `Quick fdiv_cases;
          Alcotest.test_case "gcd/lcm" `Quick gcd_lcm_cases;
          Alcotest.test_case "misc operations" `Quick misc_operations;
          Alcotest.test_case "to_int overflow" `Quick to_int_overflow;
        ] );
      ( "properties",
        [
          prop_add;
          prop_sub;
          prop_mul;
          prop_divmod;
          prop_compare;
          prop_string_roundtrip;
          prop_ring_distributes;
          prop_divmod_reconstructs;
          prop_gcd_divides;
          prop_to_float;
        ] );
    ]
