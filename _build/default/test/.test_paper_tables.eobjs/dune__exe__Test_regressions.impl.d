test/test_regressions.ml: Alcotest Core Core_helpers List Model Rat Sim
