test/test_bignum.ml: Alcotest Bignum Core_helpers Float List QCheck2 String
