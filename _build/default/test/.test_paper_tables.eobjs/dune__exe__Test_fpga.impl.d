test/test_fpga.ml: Alcotest Core_helpers Format Fpga Int List Model QCheck2 String
