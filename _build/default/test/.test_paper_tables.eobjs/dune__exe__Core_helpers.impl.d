test/core_helpers.ml: Alcotest Bignum List Model QCheck2 QCheck_alcotest Rat
