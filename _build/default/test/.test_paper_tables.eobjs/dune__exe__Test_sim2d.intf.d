test/test_sim2d.mli:
