test/test_trace.ml: Alcotest Core_helpers Fpga List Model Sim String Trace
