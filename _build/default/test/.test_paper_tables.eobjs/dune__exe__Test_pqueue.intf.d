test/test_pqueue.mli:
