test/test_rng.ml: Alcotest Array Printf Rng
