test/test_lemmas.ml: Alcotest Core_helpers Fun List Model QCheck2 Rat Sim Trace
