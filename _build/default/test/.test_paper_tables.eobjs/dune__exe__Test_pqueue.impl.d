test/test_pqueue.ml: Alcotest Core_helpers Int List Pqueue QCheck2
