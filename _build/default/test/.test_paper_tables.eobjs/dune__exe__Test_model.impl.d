test/test_model.ml: Alcotest Core_helpers Float List Model Printf Rat Rng
