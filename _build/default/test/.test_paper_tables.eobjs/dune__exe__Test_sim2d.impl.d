test/test_sim2d.ml: Alcotest Core_helpers Fpga List Model QCheck2 Sim Sim2d
