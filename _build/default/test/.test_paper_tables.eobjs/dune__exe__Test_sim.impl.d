test/test_sim.ml: Alcotest Core_helpers Fpga List Model Option Rat Sim Trace
