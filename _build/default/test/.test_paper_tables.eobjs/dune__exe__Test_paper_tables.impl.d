test/test_paper_tables.ml: Alcotest Bignum Core Core_helpers List Model Rat
