test/test_properties.ml: Alcotest Core Core_helpers Fpga List Model QCheck2 Sim Trace
