test/test_experiment.ml: Alcotest Array Core Experiment List Model Rng String
