test/test_exact.ml: Alcotest Core Core_helpers Format List Model QCheck2 Sim
