test/test_analysis.ml: Alcotest Bignum Core Core_helpers Fun List Model QCheck2 Rat Sim String
