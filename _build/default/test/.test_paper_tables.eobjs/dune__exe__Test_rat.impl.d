test/test_rat.ml: Alcotest Bignum Core_helpers Float QCheck2 Rat
