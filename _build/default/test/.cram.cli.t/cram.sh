  $ redf tables | grep -E 'Table|DP:|GN1:|GN2:' | head -12
  $ redf generate --profile unconstrained -n 3 --seed 3 --target-us 20 > ts.csv
  $ head -1 ts.csv
  $ redf analyze ts.csv --area 100 > /dev/null 2>&1; echo "exit $?"
  $ redf simulate ts.csv --area 100 --horizon 50 | head -2
  $ cat > bad.csv <<'CSV'
  > name,C,D,T,A
  > a,9,10,10,60
  > b,9,10,10,60
  > CSV
  $ redf analyze bad.csv --area 100 | grep -A2 INFEASIBLE
  $ redf analyze bad.csv --area 100 > /dev/null 2>&1; echo "exit $?"
  $ cat > witness.csv <<'CSV'
  > name,C,D,T,A
  > t0,3,3,3,6
  > t1,1,3,3,4
  > t2,1,2,2,4
  > CSV
  $ redf simulate witness.csv --area 10 --horizon 6 | head -2
  $ redf exhaustive witness.csv --area 10 --grid 500 > /dev/null 2>&1; echo "exit $?"
