(* Unit tests for the analysis library beyond the paper-table regressions:
   edge cases, the multiprocessor specialisations, verdict plumbing and
   partitioned scheduling. *)

let check_bool = Alcotest.(check bool)
let check_rat = Core_helpers.check_rat
let ts = Core_helpers.taskset
let fpga_area = 10

(* A lone fitting task with C <= D = T is accepted by every test. *)
let single_task_accepted () =
  let t = ts [ ("a", "3", "5", "5", 7) ] in
  check_bool "DP" true (Core.Dp.accepts ~fpga_area t);
  check_bool "GN1" true (Core.Gn1.accepts ~fpga_area t);
  check_bool "GN2" true (Core.Gn2.accepts ~fpga_area t);
  check_bool "partitioned" true (Core.Partitioned.accepts ~fpga_area t)

(* C > T makes even a lone task infeasible. *)
let overloaded_single_rejected () =
  let t = ts [ ("a", "6", "5", "5", 7) ] in
  check_bool "DP" false (Core.Dp.accepts ~fpga_area t);
  check_bool "GN1" false (Core.Gn1.accepts ~fpga_area t);
  check_bool "GN2" false (Core.Gn2.accepts ~fpga_area t);
  check_bool "partitioned" false (Core.Partitioned.accepts ~fpga_area t)

(* A task wider than the device is a rejection, not an exception. *)
let too_wide_rejected () =
  let t = ts [ ("a", "1", "5", "5", 11) ] in
  check_bool "DP" false (Core.Dp.accepts ~fpga_area t);
  check_bool "GN1" false (Core.Gn1.accepts ~fpga_area t);
  check_bool "GN2" false (Core.Gn2.accepts ~fpga_area t);
  let v = Core.Dp.decide ~fpga_area t in
  Alcotest.(check (list int)) "all tasks flagged" [ 0 ] (Core.Verdict.failing_tasks v)

let applicability () =
  check_bool "implicit ok" true (Core.Dp.applicable (ts [ ("a", "1", "5", "5", 1) ]));
  check_bool "constrained not" false (Core.Dp.applicable (ts [ ("a", "1", "3", "5", 1) ]))

(* Table-2 carry-in corner: for k=1, tau2's window count N_2 is 0 and the
   whole C_2 = 8 counts as carry-in, giving beta_2 = 8/9. *)
let gn1_zero_jobs_carry_in () =
  let table2 = ts [ ("tau1", "4.50", "8", "8", 3); ("tau2", "8.00", "9", "9", 5) ] in
  Core_helpers.check_bignum "N_2 = 0" Bignum.zero (Core.Gn1.n_jobs table2 ~k:0 ~i:1);
  check_rat "beta_2 = 8/9" (Rat.of_ints 8 9) (Core.Gn1.beta table2 ~k:0 ~i:1);
  Core_helpers.check_bignum "N_1 = 1 for k=2" Bignum.one (Core.Gn1.n_jobs table2 ~k:1 ~i:0);
  check_rat "beta_1 = 11/16" (Rat.of_ints 11 16) (Core.Gn1.beta table2 ~k:1 ~i:0)

let gn1_index_errors () =
  let t = ts [ ("a", "1", "5", "5", 1); ("b", "1", "5", "5", 1) ] in
  Alcotest.check_raises "k = i" (Invalid_argument "Gn1: interference of a task on itself is undefined")
    (fun () -> ignore (Core.Gn1.beta t ~k:1 ~i:1));
  Alcotest.check_raises "out of range" (Invalid_argument "Gn1: task index out of range") (fun () ->
      ignore (Core.Gn1.beta t ~k:2 ~i:0))

(* GN2 candidates: all within [C_k/T_k, 1], contain every in-range
   utilization. *)
let gn2_candidate_set () =
  let t = ts [ ("a", "1", "4", "4", 2); ("b", "3", "5", "5", 3); ("c", "2", "10", "10", 4) ] in
  (* utilizations: 1/4, 3/5, 1/5; for k = a (1/4): candidates are 1/4 and
     3/5 (1/5 is below C_k/T_k) *)
  let cands = Core.Gn2.lambda_candidates t ~k:0 in
  Alcotest.(check int) "two candidates" 2 (List.length cands);
  check_rat "first" (Rat.of_ints 1 4) (List.nth cands 0);
  check_rat "second" (Rat.of_ints 3 5) (List.nth cands 1)

(* GN2's beta cases, exercised directly: i heavier than lambda with late
   vs early finish. *)
let gn2_beta_cases () =
  let t = ts [ ("k", "1", "10", "10", 2); ("i", "4", "5", "5", 3) ] in
  (* u_i = 4/5, dens_i = 4/5 *)
  let beta_light = Core.Gn2.beta_lambda t ~k:0 ~i:1 ~lambda:(Rat.of_ints 9 10) in
  (* case 1: u_i <= lambda: max(4/5, 4/5*(1 - 5/10) + 4/10) = 4/5 *)
  check_rat "case 1" (Rat.of_ints 4 5) beta_light;
  (* case 2: u_i > lambda = dens_i is impossible here since dens = u;
     case 3: lambda < dens_i: u_i + (C_i - lambda*D_i)/D_k
       with lambda = 1/2: 4/5 + (4 - 5/2)/10 = 4/5 + 3/20 = 19/20 *)
  let beta_heavy = Core.Gn2.beta_lambda t ~k:0 ~i:1 ~lambda:(Rat.of_ints 1 2) in
  check_rat "case 3" (Rat.of_ints 19 20) beta_heavy;
  (* case 2 needs D_i > T_i: dens < u *)
  let t2 = ts [ ("k", "1", "10", "10", 2); ("i", "4", "8", "5", 3) ] in
  (* u_i = 4/5, dens_i = 1/2; lambda = 0.6: u > lambda >= dens -> u_i *)
  let beta_mid = Core.Gn2.beta_lambda t2 ~k:0 ~i:1 ~lambda:(Rat.of_ints 3 5) in
  check_rat "case 2" (Rat.of_ints 4 5) beta_mid

(* GN2's candidate enumeration covers its search range: a dense lambda
   grid over [C_k/T_k, max candidate] never accepts a task the candidate
   points rejected — the optimum within the sound range lies at a
   discontinuity of beta, which is the claim behind Section 5's O(N^3)
   complexity.  (Beyond the last candidate the printed Theorem 3 would
   keep searching, but that region is exactly the degeneracy that would
   wrongly accept the paper's own Table 1; see DESIGN.md section 2.) *)
let prop_gn2_candidates_complete =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 2 4)
        (let* t_units = oneofl [ 2; 4; 5; 8; 10 ] in
         let period = Model.Time.of_units t_units in
         let* c_ticks = int_range 1 (Model.Time.ticks period) in
         let* area = int_range 1 10 in
         return (Model.Task.make ~exec:(Model.Time.of_ticks c_ticks) ~deadline:period ~period ~area ()))
      >|= Model.Taskset.of_list)
  in
  Core_helpers.qtest ~count:200 "GN2 lambda grid never beats the candidates" gen (fun t ->
      let n = Model.Taskset.size t in
      let all_k_ok_via_grid =
        List.init n Fun.id
        |> List.for_all (fun k ->
               match List.rev (Core.Gn2.lambda_candidates t ~k) with
               | [] -> false
               | hi_cand :: _ ->
                 let qk = Model.Taskset.nth t k in
                 let lo = Model.Task.time_utilization qk in
                 let span = Rat.sub hi_cand lo in
                 let grid =
                   List.init 101 (fun i ->
                       Rat.add lo (Rat.mul span (Rat.of_ints i 100)))
                 in
                 List.exists
                   (fun lambda ->
                     let ev = Core.Gn2.evaluate_lambda ~fpga_area t ~k ~lambda in
                     ev.Core.Gn2.cond1 || ev.Core.Gn2.cond2)
                   grid)
      in
      (* grid acceptance implies candidate acceptance *)
      (not all_k_ok_via_grid) || Core.Gn2.accepts ~fpga_area t)

(* --- multiprocessor specialisations --- *)

let mp_tasks l = ts (List.map (fun (n, c, t) -> (n, c, t, t, 1)) l)

let gfb_agrees_with_dp () =
  (* three unit-speed tasks on 2 processors *)
  let t = mp_tasks [ ("a", "1", "2"); ("b", "1", "2"); ("c", "1", "5") ] in
  check_bool "gfb_direct" (Core.Multiproc.gfb_direct ~m:2 t)
    (Core.Verdict.accepted (Core.Multiproc.gfb ~m:2 t));
  let heavy = mp_tasks [ ("a", "9", "10"); ("b", "9", "10"); ("c", "9", "10") ] in
  check_bool "heavy set agrees too" (Core.Multiproc.gfb_direct ~m:3 heavy)
    (Core.Verdict.accepted (Core.Multiproc.gfb ~m:3 heavy))

let mp_width_check () =
  let bad = ts [ ("a", "1", "2", "2", 2) ] in
  Alcotest.check_raises "width enforced"
    (Invalid_argument "Multiproc.gfb: taskset must have all areas = 1") (fun () ->
      ignore (Core.Multiproc.gfb ~m:2 bad))

let prop_gfb_reduction =
  (* random width-1 tasksets: the direct GFB formula and DP under the
     width-1 reduction must agree exactly *)
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 6)
        (pair (int_range 1 40) (int_range 1 4))
      >|= fun l ->
      Model.Taskset.of_list
        (List.map
           (fun (c_deci, t_units) ->
             let period = Model.Time.of_units (t_units * 2) in
             let exec = Model.Time.of_ticks (min (c_deci * 100) (Model.Time.ticks period)) in
             Model.Task.make ~exec ~deadline:period ~period ~area:1 ())
           l))
  in
  Core_helpers.qtest "GFB = DP on width-1 tasksets" gen (fun t ->
      List.for_all
        (fun m ->
          Core.Multiproc.gfb_direct ~m t = Core.Verdict.accepted (Core.Multiproc.gfb ~m t))
        [ 1; 2; 4; 8 ])

(* --- monotonicity under taskset extension (DP and GN1) --- *)

let small_task_gen =
  QCheck2.Gen.(
    let* t_units = oneofl [ 2; 4; 5; 8; 10 ] in
    let period = Model.Time.of_units t_units in
    let* c_ticks = int_range 1 (Model.Time.ticks period) in
    let* area = int_range 1 10 in
    return (Model.Task.make ~exec:(Model.Time.of_ticks c_ticks) ~deadline:period ~period ~area ()))

let small_taskset_gen =
  QCheck2.Gen.(list_size (int_range 1 4) small_task_gen >|= Model.Taskset.of_list)

let prop_extension_monotone name accepts =
  Core_helpers.qtest name
    QCheck2.Gen.(pair small_taskset_gen small_task_gen)
    (fun (t, extra) ->
      let extended = Model.Taskset.of_list (Model.Taskset.to_list t @ [ extra ]) in
      (* adding a task can only hurt *)
      (not (accepts ~fpga_area extended)) || accepts ~fpga_area t)

let prop_dp_monotone = prop_extension_monotone "DP monotone under extension" Core.Dp.accepts
let prop_gn1_monotone = prop_extension_monotone "GN1 monotone under extension" Core.Gn1.accepts

(* --- verdict and report plumbing --- *)

let verdict_utilities () =
  let t = ts [ ("a", "6", "5", "5", 7); ("b", "1", "5", "5", 1) ] in
  let v = Core.Gn1.decide ~fpga_area t in
  check_bool "rejected" false (Core.Verdict.accepted v);
  check_bool "task 0 flagged" true (List.mem 0 (Core.Verdict.failing_tasks v));
  let r = Core.Report.run ~fpga_area t in
  let line = Core.Report.summary_line r in
  check_bool "summary mentions DP" true
    (String.length line > 0 && String.sub line 0 3 = "DP:")

let composite_is_disjunction () =
  let sets =
    [
      ts [ ("tau1", "1.26", "7", "7", 9); ("tau2", "0.95", "5", "5", 6) ];
      ts [ ("tau1", "4.50", "8", "8", 3); ("tau2", "8.00", "9", "9", 5) ];
      ts [ ("a", "6", "5", "5", 7) ];
    ]
  in
  List.iter
    (fun t ->
      let expected =
        Core.Dp.accepts ~fpga_area t || Core.Gn1.accepts ~fpga_area t
        || Core.Gn2.accepts ~fpga_area t
      in
      check_bool "any-of = disjunction" expected (Core.Composite.edf_nf_any ~fpga_area t);
      let names = Core.Composite.accepting Core.Composite.for_edf_nf ~fpga_area t in
      check_bool "names consistent" expected (names <> []))
    sets

(* --- necessary feasibility conditions --- *)

let feasibility_basics () =
  (* US > A(H) *)
  let over = ts [ ("a", "9", "10", "10", 6); ("b", "9", "10", "10", 6) ] in
  check_bool "device overload detected" false (Core.Feasibility.feasible_maybe ~fpga_area over);
  check_bool "has Device_overloaded" true
    (List.exists
       (function Core.Feasibility.Device_overloaded _ -> true | _ -> false)
       (Core.Feasibility.check ~fpga_area over));
  (* C > min(D,T) *)
  let bad_c = ts [ ("a", "4", "3", "5", 2) ] in
  check_bool "exec window violation" false (Core.Feasibility.feasible_maybe ~fpga_area bad_c);
  (* clean set passes *)
  let ok = ts [ ("a", "1", "5", "5", 3); ("b", "1", "5", "5", 3) ] in
  check_bool "clean set maybe feasible" true (Core.Feasibility.feasible_maybe ~fpga_area ok)

let feasibility_clique () =
  (* three tasks pairwise exclusive on A(H)=10 (areas 6,6,6), densities
     0.4 each: total 1.2 > 1 although US = 7.2 <= 10 *)
  let t = ts [ ("a", "4", "10", "10", 6); ("b", "4", "10", "10", 6); ("c", "4", "10", "10", 6) ] in
  check_bool "US under device area" true
    (Rat.compare (Model.Taskset.system_utilization t) (Rat.of_int fpga_area) <= 0);
  let violations = Core.Feasibility.check ~fpga_area t in
  check_bool "clique violation found" true
    (List.exists
       (function Core.Feasibility.Clique_overloaded _ -> true | _ -> false)
       violations);
  (* and the clique really is all three tasks *)
  let cliques = Core.Feasibility.exclusion_cliques ~fpga_area t in
  check_bool "triangle found" true (List.mem [ 0; 1; 2 ] cliques)

let feasibility_no_false_cliques () =
  (* areas 6 and 4 fit together: no exclusion edge *)
  let t = ts [ ("a", "9", "10", "10", 6); ("b", "9", "10", "10", 4) ] in
  Alcotest.(check (list (list int))) "no cliques" [] (Core.Feasibility.exclusion_cliques ~fpga_area t)

(* infeasibility certificates are real: a violated taskset must miss in
   the synchronous simulation over an exact hyper-period (implicit
   deadlines) *)
let prop_feasibility_certificate =
  Core_helpers.qtest ~count:400 "necessary-condition violation => simulated miss"
    small_taskset_gen (fun t ->
      Core.Feasibility.feasible_maybe ~fpga_area t
      ||
      let hyper =
        match Model.Taskset.hyperperiod t with
        | Model.Taskset.Finite h -> h
        | Model.Taskset.Exceeds_cap -> Model.Time.of_units 10_000
      in
      let cfg = Sim.Engine.default_config ~fpga_area ~policy:Sim.Policy.edf_nf in
      not (Sim.Engine.schedulable { cfg with Sim.Engine.horizon = hyper } t))

(* --- partitioned scheduling --- *)

let partitioned_allocation () =
  (* two wide tasks that cannot share a partition, one narrow filler *)
  let t = ts [ ("w1", "2", "10", "10", 6); ("w2", "2", "10", "10", 3); ("n", "1", "10", "10", 1) ] in
  let plan = Core.Partitioned.first_fit_decreasing ~fpga_area t in
  check_bool "schedulable" true (Core.Partitioned.schedulable plan);
  check_bool "width within device" true (Core.Partitioned.used_width plan <= fpga_area);
  Alcotest.(check (list string)) "nothing unassigned" []
    (List.map (fun (x : Model.Task.t) -> x.name) plan.Core.Partitioned.unassigned)

let partitioned_over_capacity () =
  (* three 6-wide tasks each with density > 1/2: pairwise unshareable and
     only one 6-wide partition fits in 10 columns *)
  let t = ts [ ("a", "6", "10", "10", 6); ("b", "6", "10", "10", 6); ("c", "6", "10", "10", 6) ] in
  let plan = Core.Partitioned.first_fit_decreasing ~fpga_area t in
  check_bool "not schedulable" false (Core.Partitioned.schedulable plan);
  check_bool "someone unassigned" true (plan.Core.Partitioned.unassigned <> [])

let partitioned_bin_packing_cost () =
  (* Partitioned scheduling loses to global scheduling on bin packing: a
     full-width task forces a width-10 partition, and first-fit-decreasing
     can then pack only one of the two 5-wide tasks (density 0.5 each)
     with it before running out of both density and device width.  Global
     EDF timeshares: the full-width job runs alone in [0,2), the 5-wide
     pair runs in parallel in [2,7), all deadlines at 10 are met. *)
  let t = ts [ ("full", "2", "10", "10", 10); ("a", "5", "10", "10", 5); ("b", "5", "10", "10", 5) ] in
  check_bool "partitioned rejects" false (Core.Partitioned.accepts ~fpga_area t);
  let cfg = Sim.Engine.default_config ~fpga_area ~policy:Sim.Policy.edf_nf in
  check_bool "global EDF-NF simulates fine" true
    (Sim.Engine.schedulable { cfg with Sim.Engine.horizon = Model.Time.of_units 100 } t)

let () =
  Alcotest.run "analysis"
    [
      ( "edge cases",
        [
          Alcotest.test_case "single task accepted" `Quick single_task_accepted;
          Alcotest.test_case "overloaded single rejected" `Quick overloaded_single_rejected;
          Alcotest.test_case "too-wide rejected" `Quick too_wide_rejected;
          Alcotest.test_case "DP applicability" `Quick applicability;
        ] );
      ( "gn1",
        [
          Alcotest.test_case "zero-jobs carry-in" `Quick gn1_zero_jobs_carry_in;
          Alcotest.test_case "index errors" `Quick gn1_index_errors;
        ] );
      ( "gn2",
        [
          Alcotest.test_case "candidate set" `Quick gn2_candidate_set;
          Alcotest.test_case "beta cases" `Quick gn2_beta_cases;
          prop_gn2_candidates_complete;
        ] );
      ( "multiprocessor",
        [
          Alcotest.test_case "GFB agrees with DP" `Quick gfb_agrees_with_dp;
          Alcotest.test_case "width check" `Quick mp_width_check;
          prop_gfb_reduction;
        ] );
      ("monotonicity", [ prop_dp_monotone; prop_gn1_monotone ]);
      ( "plumbing",
        [
          Alcotest.test_case "verdict utilities" `Quick verdict_utilities;
          Alcotest.test_case "composite is disjunction" `Quick composite_is_disjunction;
        ] );
      ( "feasibility",
        [
          Alcotest.test_case "basics" `Quick feasibility_basics;
          Alcotest.test_case "exclusion cliques" `Quick feasibility_clique;
          Alcotest.test_case "no false cliques" `Quick feasibility_no_false_cliques;
          prop_feasibility_certificate;
        ] );
      ( "partitioned",
        [
          Alcotest.test_case "allocation" `Quick partitioned_allocation;
          Alcotest.test_case "over capacity" `Quick partitioned_over_capacity;
          Alcotest.test_case "bin packing cost" `Quick partitioned_bin_packing_cost;
        ] );
    ]
