(* Tests for the deterministic PRNG. *)

let check_bool = Alcotest.(check bool)

let determinism () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let different_seeds () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check_bool "streams differ" true (!same < 4)

let copy_independent () =
  let a = Rng.create ~seed:7 in
  let b = Rng.copy a in
  Alcotest.(check int64) "copies aligned" (Rng.bits64 a) (Rng.bits64 b);
  ignore (Rng.bits64 a);
  (* advancing a does not advance b *)
  let va = Rng.bits64 a and vb = Rng.bits64 b in
  check_bool "diverged after extra draw" true (va <> vb)

let split_diverges () =
  let a = Rng.create ~seed:7 in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check_bool "split stream differs" true (!same < 4)

let int_bounds () =
  let r = Rng.create ~seed:99 in
  for _ = 1 to 10000 do
    let v = Rng.int r 17 in
    check_bool "in [0,17)" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0))

let int_incl_bounds () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 10000 do
    let v = Rng.int_incl r (-3) 11 in
    check_bool "in [-3,11]" true (v >= -3 && v <= 11)
  done;
  Alcotest.(check int) "singleton" 4 (Rng.int_incl r 4 4);
  Alcotest.check_raises "empty range" (Invalid_argument "Rng.int_incl: empty range") (fun () ->
      ignore (Rng.int_incl r 5 4))

let float_bounds () =
  let r = Rng.create ~seed:321 in
  for _ = 1 to 10000 do
    let v = Rng.float r 2.5 in
    check_bool "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done;
  for _ = 1 to 10000 do
    let v = Rng.float_range r 5.0 20.0 in
    check_bool "in [5,20)" true (v >= 5.0 && v < 20.0)
  done

let uniformity () =
  (* crude bucket check: 10 buckets, 20000 draws, each bucket within
     +/- 30% of the expectation *)
  let r = Rng.create ~seed:2718 in
  let buckets = Array.make 10 0 in
  let draws = 20000 in
  for _ = 1 to draws do
    let b = Rng.int r 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  let expect = draws / 10 in
  Array.iteri
    (fun i c ->
      check_bool (Printf.sprintf "bucket %d balanced (%d)" i c) true
        (c > expect * 7 / 10 && c < expect * 13 / 10))
    buckets

let float_mean () =
  let r = Rng.create ~seed:1618 in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.float r 1.0
  done;
  let mean = !sum /. float_of_int n in
  check_bool "mean near 0.5" true (mean > 0.47 && mean < 0.53)

let shuffle_permutes () =
  let r = Rng.create ~seed:31415 in
  let a = Array.init 50 (fun i -> i) in
  let orig = Array.copy a in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" orig sorted;
  (* with 50 elements the odds of the identity permutation are nil *)
  check_bool "actually shuffled" true (a <> orig)

let pick_cases () =
  let r = Rng.create ~seed:11 in
  let a = [| 5; 6; 7 |] in
  for _ = 1 to 100 do
    check_bool "pick member" true (Array.mem (Rng.pick r a) a)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick r [||]))

let bool_balanced () =
  let r = Rng.create ~seed:8 in
  let t = ref 0 in
  for _ = 1 to 10000 do
    if Rng.bool r then incr t
  done;
  check_bool "bool near 50%" true (!t > 4500 && !t < 5500)

let () =
  Alcotest.run "rng"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick determinism;
          Alcotest.test_case "different seeds" `Quick different_seeds;
          Alcotest.test_case "copy" `Quick copy_independent;
          Alcotest.test_case "split" `Quick split_diverges;
          Alcotest.test_case "int bounds" `Quick int_bounds;
          Alcotest.test_case "int_incl bounds" `Quick int_incl_bounds;
          Alcotest.test_case "float bounds" `Quick float_bounds;
          Alcotest.test_case "uniformity" `Quick uniformity;
          Alcotest.test_case "float mean" `Quick float_mean;
          Alcotest.test_case "shuffle" `Quick shuffle_permutes;
          Alcotest.test_case "pick" `Quick pick_cases;
          Alcotest.test_case "bool balance" `Quick bool_balanced;
        ] );
    ]
