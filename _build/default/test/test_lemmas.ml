(* Executable audits of the paper's deferred lemmas (Sections 2-5) on
   real simulated schedules, using the Section-2 quantities computed by
   Trace.Measure.  The paper proves Lemmas 5-10 only in a technical
   report; here each statement is checked on hundreds of random traces. *)

module Time = Model.Time
module Engine = Sim.Engine
module Measure = Trace.Measure

let check_bool = Alcotest.(check bool)
let ts = Core_helpers.taskset
let fpga_area = 10

let task_gen =
  QCheck2.Gen.(
    let* t_units = oneofl [ 2; 3; 4; 5 ] in
    let period = Time.of_units t_units in
    let* c_ticks = int_range 1 (Time.ticks period) in
    let* area = int_range 1 10 in
    return (Model.Task.make ~exec:(Time.of_ticks c_ticks) ~deadline:period ~period ~area ()))

let taskset_gen = QCheck2.Gen.(list_size (int_range 2 5) task_gen >|= Model.Taskset.of_list)

let run_traced ~policy t =
  let cfg = Engine.default_config ~fpga_area ~policy in
  let horizon =
    match Model.Taskset.hyperperiod t with
    | Model.Taskset.Finite h -> h
    | Model.Taskset.Exceeds_cap -> Time.of_units 60
  in
  Engine.run { cfg with Engine.horizon; record_trace = true } t

(* --- unit checks of the measures themselves --- *)

let measures_on_known_trace () =
  (* t1 = (C=2, T=4, A=6), t2 = (C=2, T=4, A=6): serialized on 10 columns;
     EDF runs t1 in [0,2), t2 in [2,4), repeating *)
  let t = ts [ ("t1", "2", "4", "4", 6); ("t2", "2", "4", "4", 6) ] in
  let r = run_traced ~policy:Sim.Policy.edf_fkf t in
  check_bool "schedulable" true (r.Engine.outcome = Engine.No_miss);
  let m = Measure.of_result r in
  let u = Time.of_units in
  Core_helpers.check_time "WT_1 over a period" (u 2) (Measure.time_work m ~task:0 ~lo:(u 0) ~hi:(u 4));
  Core_helpers.check_time "WT_2 over a period" (u 2) (Measure.time_work m ~task:1 ~lo:(u 0) ~hi:(u 4));
  Core_helpers.check_time "WT_1 clipped" (u 1) (Measure.time_work m ~task:0 ~lo:(u 1) ~hi:(u 4));
  (* system work over one period: 4 units * 6 columns *)
  Alcotest.(check int) "WS over a period" (4 * 1000 * 6) (Measure.system_work m ~lo:(u 0) ~hi:(u 4));
  (* t2 is preempted (waiting) during [0,2) *)
  Core_helpers.check_time "I_2" (u 2) (Measure.interference m ~task:1 ~lo:(u 0) ~hi:(u 4));
  Core_helpers.check_time "I_1" Time.zero (Measure.interference m ~task:0 ~lo:(u 0) ~hi:(u 2));
  (* with amax = 6, occupied 6 >= 10-6+1 = 5 always: all busy *)
  Core_helpers.check_time "B" (u 4)
    (Measure.block_busy_time m ~fpga_area ~amax:6 ~lo:(u 0) ~hi:(u 4));
  Core_helpers.check_time "B_1" (u 2)
    (Measure.task_block_busy m ~task:0 ~fpga_area ~amax:6 ~lo:(u 0) ~hi:(u 4));
  (* both tasks stay active throughout [0,4) from release to completion *)
  Core_helpers.check_time "busy interval of t2" (u 0)
    (Measure.busy_interval_start m ~task:1 ~ending_at:(u 4))

(* --- Lemma 8: (A(H)-Amax+1) B <= sum A_i B_i --- *)

let prop_lemma8 =
  Core_helpers.qtest ~count:200 "Lemma 8 on random traces" taskset_gen (fun t ->
      let r = run_traced ~policy:Sim.Policy.edf_fkf t in
      match r.Engine.segments with
      | [] -> true
      | _ ->
        let m = Measure.of_result r in
        let amax = Model.Taskset.amax t in
        let lo, hi = Measure.span m in
        let b = Time.ticks (Measure.block_busy_time m ~fpga_area ~amax ~lo ~hi) in
        let weighted =
          List.fold_left ( + ) 0
            (List.mapi
               (fun i (task : Model.Task.t) ->
                 task.area * Time.ticks (Measure.task_block_busy m ~task:i ~fpga_area ~amax ~lo ~hi))
               (Model.Taskset.to_list t))
        in
        (fpga_area - amax + 1) * b <= weighted)

(* --- Lemma 10 (non-strict reading): during a tau_k-busy interval,
   WS >= Abnd*B + Amin*(delta - B) --- *)

let prop_lemma10 =
  Core_helpers.qtest ~count:200 "Lemma 10 on tau_k-busy windows" taskset_gen (fun t ->
      let r = run_traced ~policy:Sim.Policy.edf_fkf t in
      match r.Engine.outcome with
      | Engine.No_miss -> true
      | Engine.Miss miss ->
        let m = Measure.of_result r in
        let k = miss.Engine.task_index in
        let hi = miss.Engine.at in
        let lo = Measure.busy_interval_start m ~task:k ~ending_at:hi in
        let delta = Time.ticks hi - Time.ticks lo in
        if delta <= 0 then true
        else begin
          let amax = Model.Taskset.amax t and amin = Model.Taskset.amin t in
          let abnd = fpga_area - amax + 1 in
          let b = Time.ticks (Measure.block_busy_time m ~fpga_area ~amax ~lo ~hi) in
          let ws = Measure.system_work m ~lo ~hi in
          ws >= (abnd * b) + (amin * (delta - b))
        end)

(* --- Lemma 5: at the first deadline miss of tau_k over the maximal
   tau_k-busy interval [t-delta, t):
     I_k(t-delta, t) > delta - (delta + T_k - D_k) * C_k / T_k --- *)

let prop_lemma5 =
  Core_helpers.qtest ~count:400 "Lemma 5 at first misses" taskset_gen (fun t ->
      let r = run_traced ~policy:Sim.Policy.edf_fkf t in
      match r.Engine.outcome with
      | Engine.No_miss -> true
      | Engine.Miss miss ->
        let m = Measure.of_result r in
        let k = miss.Engine.task_index in
        let task = Model.Taskset.nth t k in
        let hi = miss.Engine.at in
        let lo = Measure.busy_interval_start m ~task:k ~ending_at:hi in
        let delta_q = Rat.sub (Time.to_rat hi) (Time.to_rat lo) in
        if Rat.sign delta_q <= 0 then true
        else begin
          let ik = Time.to_rat (Measure.interference m ~task:k ~lo ~hi) in
          let tk = Time.to_rat task.Model.Task.period in
          let dk = Time.to_rat task.Model.Task.deadline in
          let ck = Time.to_rat task.Model.Task.exec in
          let bound =
            let open Rat.Infix in
            delta_q - ((delta_q + tk - dk) * ck / tk)
          in
          Rat.compare ik bound > 0
        end)

(* --- Lemma 2 as a measured statement: while a job of tau_k waits, the
   occupied area under EDF-NF is at least A(H) - (A_k - 1); here stated
   via interference vs system work: the per-segment engine flag already
   checks it, so this re-derives it from the trace alone --- *)

let prop_lemma2_from_trace =
  Core_helpers.qtest ~count:200 "Lemma 2 re-derived from traces" taskset_gen (fun t ->
      let r = run_traced ~policy:Sim.Policy.edf_nf t in
      match r.Engine.segments with
      | [] -> true
      | segs ->
        List.for_all
          (fun (seg : Engine.segment) ->
            let occupied =
              List.fold_left (fun acc p -> acc + Sim.Job.area p.Engine.job) 0 seg.Engine.running
            in
            List.for_all
              (fun j -> occupied >= fpga_area - (Sim.Job.area j - 1))
              seg.Engine.waiting)
          segs)

(* --- internal consistency of the measures --- *)

let prop_measure_consistency =
  Core_helpers.qtest ~count:200 "measure sanity on random traces" taskset_gen (fun t ->
      let r = run_traced ~policy:Sim.Policy.edf_nf t in
      match r.Engine.segments with
      | [] -> true
      | _ ->
        let m = Measure.of_result r in
        let lo, hi = Measure.span m in
        let len = Time.ticks hi - Time.ticks lo in
        let amax = Model.Taskset.amax t in
        let n = Model.Taskset.size t in
        List.for_all
          (fun task ->
            let wt = Time.ticks (Measure.time_work m ~task ~lo ~hi) in
            let ik = Time.ticks (Measure.interference m ~task ~lo ~hi) in
            let bi = Time.ticks (Measure.task_block_busy m ~task ~fpga_area ~amax ~lo ~hi) in
            (* work and interference are disjoint and within the window *)
            wt >= 0 && ik >= 0 && wt + ik <= len
            (* execution during block-busy time is part of all execution *)
            && bi <= wt)
          (List.init n Fun.id)
        (* system work equals the per-task area-weighted time work *)
        && Measure.system_work m ~lo ~hi
           = List.fold_left ( + ) 0
               (List.mapi
                  (fun i (task : Model.Task.t) ->
                    task.area * Time.ticks (Measure.time_work m ~task:i ~lo ~hi))
                  (Model.Taskset.to_list t))
        (* block-busy time is within the window *)
        && Time.ticks (Measure.block_busy_time m ~fpga_area ~amax ~lo ~hi) <= len)

let () =
  Alcotest.run "lemmas"
    [
      ( "measures",
        [ Alcotest.test_case "known trace" `Quick measures_on_known_trace ] );
      ( "audits",
        [ prop_lemma8; prop_lemma10; prop_lemma5; prop_lemma2_from_trace ] );
      ("consistency", [ prop_measure_consistency ]);
    ]
