(* Exact reproduction of the paper's Tables 1-3 (Section 6), including the
   quoted intermediate values.  All assertions are on exact rationals; no
   floating-point tolerance is involved. *)

let task name c d t a = Core_helpers.task name c d t a
let fpga_area = 10

(* Table 1: accepted by DP, rejected by GN1 and GN2 *)
let table1 =
  Model.Taskset.of_list [ task "tau1" "1.26" "7" "7" 9; task "tau2" "0.95" "5" "5" 6 ]

(* Table 2: accepted by GN1, rejected by DP and GN2 *)
let table2 = Model.Taskset.of_list [ task "tau1" "4.50" "8" "8" 3; task "tau2" "8.00" "9" "9" 5 ]

(* Table 3: accepted by GN2, rejected by DP and GN1 *)
let table3 = Model.Taskset.of_list [ task "tau1" "2.10" "5" "5" 7; task "tau2" "2.00" "7" "7" 7 ]

let check_bool = Alcotest.(check bool)
let check_rat = Core_helpers.check_rat

let decisions () =
  let expect name ts ~dp ~gn1 ~gn2 =
    check_bool (name ^ " DP") dp (Core.Dp.accepts ~fpga_area ts);
    check_bool (name ^ " GN1") gn1 (Core.Gn1.accepts ~fpga_area ts);
    check_bool (name ^ " GN2") gn2 (Core.Gn2.accepts ~fpga_area ts)
  in
  expect "table1" table1 ~dp:true ~gn1:false ~gn2:false;
  expect "table2" table2 ~dp:false ~gn1:true ~gn2:false;
  expect "table3" table3 ~dp:false ~gn1:false ~gn2:true

(* Section 6 worked example, DP on Table 3: US(Gamma) = 4.94 and the k=2
   bound is (A(H)-Amax+1)(1-UT(tau2)) + US(tau2) = 34/7 (the paper prints
   the rounded 4.85), so the test fails. *)
let dp_table3_numbers () =
  check_rat "US(table3)" (Rat.of_ints 247 50) (Model.Taskset.system_utilization table3);
  check_rat "DP bound k=2" (Rat.of_ints 34 7) (Core.Dp.bound ~fpga_area table3 ~k:1);
  check_bool "US > bound" true (Rat.compare (Model.Taskset.system_utilization table3) (Rat.of_ints 34 7) > 0)

(* Section 6 worked example, GN1 on Table 3 at k=2: N_1 = 1,
   beta_1 = 4.1/5, LHS = 7 * min(0.82, 5/7) = 5 > 20/7 = bound. *)
let gn1_table3_numbers () =
  Alcotest.(check string) "N_1" "1" (Bignum.to_string (Core.Gn1.n_jobs table3 ~k:1 ~i:0));
  check_rat "beta_1" (Rat.of_ints 41 50) (Core.Gn1.beta table3 ~k:1 ~i:0);
  let v = Core.Gn1.decide ~fpga_area table3 in
  let k2 = List.nth v.Core.Verdict.checks 1 in
  check_rat "lhs k=2" (Rat.of_int 5) k2.Core.Verdict.lhs;
  check_rat "rhs k=2" (Rat.of_ints 20 7) k2.Core.Verdict.rhs;
  check_bool "k=2 fails" false k2.Core.Verdict.satisfied

(* Section 6 worked example, GN2 on Table 3: at lambda = C1/T1 = 0.42,
   beta(1) = 0.42, beta(2) = 2/7, condition 2 RHS = 5.26 and LHS = 247/50
   (the paper prints 4.97 only because it rounds 2/7 to 0.29 first). *)
let gn2_table3_numbers () =
  let lambda = Rat.of_ints 21 50 in
  check_rat "beta(1) k=1" lambda (Core.Gn2.beta_lambda table3 ~k:0 ~i:0 ~lambda);
  check_rat "beta(2) k=1" (Rat.of_ints 2 7) (Core.Gn2.beta_lambda table3 ~k:0 ~i:1 ~lambda);
  let ev_k1 = Core.Gn2.evaluate_lambda ~fpga_area table3 ~k:0 ~lambda in
  check_rat "cond2 rhs k=1" (Rat.of_ints 263 50) ev_k1.Core.Gn2.cond2_rhs;
  check_rat "cond2 lhs k=1" (Rat.of_ints 247 50) ev_k1.Core.Gn2.cond2_lhs;
  check_bool "cond2 holds k=1" true ev_k1.Core.Gn2.cond2;
  let ev_k2 = Core.Gn2.evaluate_lambda ~fpga_area table3 ~k:1 ~lambda in
  check_bool "cond2 holds k=2" true ev_k2.Core.Gn2.cond2

(* The candidate enumeration includes the lambda the paper uses. *)
let gn2_candidates () =
  let cands = Core.Gn2.lambda_candidates table3 ~k:1 in
  check_bool "0.42 is a candidate" true
    (List.exists (fun l -> Rat.equal l (Rat.of_ints 21 50)) cands);
  List.iter
    (fun l -> check_bool "candidate >= C_k/T_k" true (Rat.compare l (Rat.of_ints 2 7) >= 0))
    cands

(* Table 1 is the exact-equality case for DP: US = 2.76 equals the k=2
   bound exactly, so DP must accept with non-strict comparison; GN2's
   condition 2 also evaluates to exactly 2.76 on both sides at
   lambda = 0.19, which is why only the strict reading of Theorem 3
   reproduces the paper's rejection. *)
let table1_equality_points () =
  let us = Model.Taskset.system_utilization table1 in
  check_rat "US(table1)" (Rat.of_ints 69 25) us;
  check_rat "DP bound k=2" (Rat.of_ints 69 25) (Core.Dp.bound ~fpga_area table1 ~k:1);
  let ev = Core.Gn2.evaluate_lambda ~fpga_area table1 ~k:1 ~lambda:(Rat.of_ints 19 100) in
  check_rat "GN2 cond2 lhs" (Rat.of_ints 69 25) ev.Core.Gn2.cond2_lhs;
  check_rat "GN2 cond2 rhs" (Rat.of_ints 69 25) ev.Core.Gn2.cond2_rhs;
  check_bool "strict condition fails" false ev.Core.Gn2.cond2

(* The printed Theorem-2 variant is more pessimistic but must agree on the
   three tables except where the tie matters. *)
let gn1_printed_variant () =
  check_bool "table1 printed" false (Core.Gn1.accepts_printed ~fpga_area table1);
  check_bool "table2 printed" true (Core.Gn1.accepts_printed ~fpga_area table2);
  check_bool "table3 printed" false (Core.Gn1.accepts_printed ~fpga_area table3)

(* The uncorrected Danne-Platzner bound is strictly more pessimistic than
   the integer-corrected DP. *)
let dp_original_more_pessimistic () =
  List.iter
    (fun ts ->
      let corrected = Core.Dp.accepts ~fpga_area ts in
      let original = Core.Dp.accepts_original ~fpga_area ts in
      check_bool "original => corrected" true ((not original) || corrected))
    [ table1; table2; table3 ]

(* The combined test of Section 6 accepts all three tables for EDF-NF. *)
let composite_accepts_all () =
  List.iter
    (fun ts -> check_bool "any-of accepts" true (Core.Composite.edf_nf_any ~fpga_area ts))
    [ table1; table2; table3 ]

let () =
  Alcotest.run "paper_tables"
    [
      ( "tables",
        [
          Alcotest.test_case "accept/reject decisions" `Quick decisions;
          Alcotest.test_case "DP numbers on table 3" `Quick dp_table3_numbers;
          Alcotest.test_case "GN1 numbers on table 3" `Quick gn1_table3_numbers;
          Alcotest.test_case "GN2 numbers on table 3" `Quick gn2_table3_numbers;
          Alcotest.test_case "GN2 lambda candidates" `Quick gn2_candidates;
          Alcotest.test_case "table 1 equality points" `Quick table1_equality_points;
          Alcotest.test_case "GN1 printed variant" `Quick gn1_printed_variant;
          Alcotest.test_case "DP original vs corrected" `Quick dp_original_more_pessimistic;
          Alcotest.test_case "composite accepts all tables" `Quick composite_accepts_all;
        ] );
    ]
