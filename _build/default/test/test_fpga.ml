(* Tests for the FPGA device models: 1-D contiguous allocator, 2-D grid,
   and the reconfiguration-overhead model. *)

module Device = Fpga.Device
module Grid2d = Fpga.Grid2d
module Overhead = Fpga.Overhead

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let region = Alcotest.testable (fun fmt (r : Device.region) -> Format.fprintf fmt "[%d+%d]" r.start r.width)
    (fun (a : Device.region) b -> a.start = b.start && a.width = b.width)

(* --- 1-D device --- *)

let basic_placement () =
  let d : string Device.t = Device.create ~area:10 in
  check_int "free" 10 (Device.free_area d);
  let r1 = Device.place d ~tag:"a" ~width:4 in
  Alcotest.(check (option region)) "first fit at 0" (Some { Device.start = 0; width = 4 }) r1;
  let r2 = Device.place d ~tag:"b" ~width:3 in
  Alcotest.(check (option region)) "then at 4" (Some { Device.start = 4; width = 3 }) r2;
  check_int "occupied" 7 (Device.occupied_area d);
  check_int "free" 3 (Device.free_area d);
  check_bool "no block of 4" false (Device.fits_contiguous d 4);
  check_bool "total 3 fits" true (Device.fits_total d 3);
  Alcotest.(check (option region)) "reject too wide" None (Device.place d ~tag:"c" ~width:4)

let removal_and_holes () =
  let d : string Device.t = Device.create ~area:10 in
  ignore (Device.place d ~tag:"a" ~width:3);
  ignore (Device.place d ~tag:"b" ~width:3);
  ignore (Device.place d ~tag:"c" ~width:4);
  check_bool "remove b" true (Device.remove d ~equal:String.equal "b");
  check_bool "remove b again" false (Device.remove d ~equal:String.equal "b");
  check_int "free" 3 (Device.free_area d);
  check_int "largest block" 3 (Device.largest_free_block d);
  (* the hole is exactly [3,6) *)
  Alcotest.(check (list region)) "free blocks" [ { Device.start = 3; width = 3 } ] (Device.free_blocks d)

let strategies () =
  (* layout: [a:2][hole:3][b:2][hole:2][c:1], holes of width 3 and 2 *)
  let mk () =
    let d : string Device.t = Device.create ~area:10 in
    Device.place_at d ~tag:"a" { Device.start = 0; width = 2 };
    Device.place_at d ~tag:"b" { Device.start = 5; width = 2 };
    Device.place_at d ~tag:"c" { Device.start = 9; width = 1 };
    d
  in
  let d = mk () in
  Alcotest.(check (option region)) "first fit takes hole at 2"
    (Some { Device.start = 2; width = 2 })
    (Device.place ~strategy:Device.First_fit d ~tag:"x" ~width:2);
  let d = mk () in
  Alcotest.(check (option region)) "best fit takes hole at 7"
    (Some { Device.start = 7; width = 2 })
    (Device.place ~strategy:Device.Best_fit d ~tag:"x" ~width:2);
  let d = mk () in
  Alcotest.(check (option region)) "worst fit takes hole at 2"
    (Some { Device.start = 2; width = 2 })
    (Device.place ~strategy:Device.Worst_fit d ~tag:"x" ~width:2)

let compaction () =
  let d : string Device.t = Device.create ~area:10 in
  Device.place_at d ~tag:"a" { Device.start = 2; width = 2 };
  Device.place_at d ~tag:"b" { Device.start = 7; width = 2 };
  check_bool "fragmented: no block of 5" false (Device.fits_contiguous d 5);
  check_bool "fragmentation positive" true (Device.fragmentation d > 0.0);
  Device.compact d;
  check_bool "defragmented" true (Device.fits_contiguous d 6);
  check_int "still occupied 4" 4 (Device.occupied_area d);
  Alcotest.(check (list region)) "slid left"
    [ { Device.start = 0; width = 2 }; { Device.start = 2; width = 2 } ]
    (List.map snd (Device.placements d));
  Alcotest.(check (float 0.0)) "fragmentation zero" 0.0 (Device.fragmentation d)

let place_at_errors () =
  let d : string Device.t = Device.create ~area:10 in
  Device.place_at d ~tag:"a" { Device.start = 0; width = 5 };
  Alcotest.check_raises "overlap" (Invalid_argument "Device.place_at: region overlaps an existing placement")
    (fun () -> Device.place_at d ~tag:"b" { Device.start = 4; width = 2 });
  Alcotest.check_raises "out of range" (Invalid_argument "Device.place_at: region out of bounds")
    (fun () -> Device.place_at d ~tag:"b" { Device.start = 8; width = 3 });
  Alcotest.check_raises "width too large" (Invalid_argument "Device.place: width exceeds device area")
    (fun () -> ignore (Device.place d ~tag:"b" ~width:11));
  Alcotest.check_raises "zero width" (Invalid_argument "Device.place: width must be >= 1")
    (fun () -> ignore (Device.place d ~tag:"b" ~width:0))

(* random op sequences keep the accounting invariants *)
let prop_device_invariants =
  Core_helpers.qtest "random ops keep invariants"
    QCheck2.Gen.(list_size (int_range 1 60) (pair bool (int_range 1 5)))
    (fun ops ->
      let d : int Device.t = Device.create ~area:12 in
      let next = ref 0 in
      let live = ref [] in
      List.for_all
        (fun (is_place, width) ->
          (if is_place then begin
             match Device.place d ~tag:!next ~width with
             | Some _ ->
               live := !next :: !live;
               incr next
             | None -> ()
           end
           else
             match !live with
             | [] -> ()
             | tag :: rest ->
               ignore (Device.remove d ~equal:Int.equal tag);
               live := rest);
          (* invariants *)
          let placements = Device.placements d in
          let occupied = Device.occupied_area d in
          let sorted_ok =
            let rec go = function
              | (_, (a : Device.region)) :: ((_, b) :: _ as rest) ->
                a.start + a.width <= b.start && go rest
              | _ -> true
            in
            go placements
          in
          occupied + Device.free_area d = 12
          && occupied = List.length !live * 0
             + List.fold_left (fun acc (_, (r : Device.region)) -> acc + r.width) 0 placements
          && sorted_ok
          && Device.largest_free_block d <= Device.free_area d)
        ops)

(* --- 2-D grid --- *)

let grid_basics () =
  let g : string Grid2d.t = Grid2d.create ~width:8 ~height:4 in
  check_int "cells" 32 (Grid2d.cells g);
  (match Grid2d.place g ~tag:"a" ~w:3 ~h:2 with
   | Some r -> check_bool "bottom-left" true (r.Grid2d.x = 0 && r.Grid2d.y = 0)
   | None -> Alcotest.fail "expected placement");
  check_int "occupied" 6 (Grid2d.occupied_cells g);
  (match Grid2d.place g ~tag:"b" ~w:5 ~h:1 with
   | Some r -> check_bool "next free spot" true (r.Grid2d.x = 3 && r.Grid2d.y = 0)
   | None -> Alcotest.fail "expected placement");
  check_bool "cannot fit 8x3" false (Grid2d.can_place g ~w:8 ~h:3);
  check_bool "remove a" true (Grid2d.remove g ~equal:String.equal "a");
  check_int "freed" 5 (Grid2d.occupied_cells g)

let grid_fragmentation () =
  let g : int Grid2d.t = Grid2d.create ~width:4 ~height:4 in
  (* checkerboard of 1x1 blocks at even positions: plenty of free cells,
     no 2x2 square *)
  List.iter
    (fun (x, y) -> Grid2d.place_at g ~tag:(x + (10 * y)) { Grid2d.x; y; w = 1; h = 1 })
    [ (1, 1); (3, 1); (1, 3); (3, 3) ];
  check_int "12 free cells" 12 (Grid2d.free_cells g);
  check_bool "no 2x2 wait, actually 2x2 at (0,0)?" true (Grid2d.can_place g ~w:2 ~h:1);
  check_bool "fragmentation in [0,1]" true
    (Grid2d.fragmentation g >= 0.0 && Grid2d.fragmentation g <= 1.0);
  Grid2d.clear g;
  check_int "cleared" 0 (Grid2d.occupied_cells g);
  Alcotest.(check (float 0.0)) "empty grid fragmentation" 0.0 (Grid2d.fragmentation g)

let grid_errors () =
  let g : int Grid2d.t = Grid2d.create ~width:4 ~height:4 in
  Grid2d.place_at g ~tag:1 { Grid2d.x = 0; y = 0; w = 2; h = 2 };
  Alcotest.check_raises "overlap" (Invalid_argument "Grid2d.place_at: rectangle overlaps")
    (fun () -> Grid2d.place_at g ~tag:2 { Grid2d.x = 1; y = 1; w = 2; h = 2 });
  Alcotest.check_raises "oversize" (Invalid_argument "Grid2d: rectangle dimensions out of range")
    (fun () -> ignore (Grid2d.place g ~tag:2 ~w:5 ~h:1))

let prop_grid_accounting =
  Core_helpers.qtest "grid occupancy accounting"
    QCheck2.Gen.(list_size (int_range 1 40) (pair (int_range 1 3) (int_range 1 3)))
    (fun rects ->
      let g : int Grid2d.t = Grid2d.create ~width:10 ~height:10 in
      let placed = ref 0 in
      List.iteri
        (fun i (w, h) ->
          match Grid2d.place g ~tag:i ~w ~h with
          | Some _ -> placed := !placed + (w * h)
          | None -> ())
        rects;
      Grid2d.occupied_cells g = !placed
      && Grid2d.free_cells g = 100 - !placed)

(* --- overhead --- *)

let overhead_models () =
  let t = Core_helpers.task "x" "2" "10" "10" 5 in
  Core_helpers.check_time "zero" Model.Time.zero (Overhead.cost Overhead.Zero ~area:5);
  Core_helpers.check_time "constant" (Model.Time.of_units 1)
    (Overhead.cost (Overhead.Constant (Model.Time.of_units 1)) ~area:5);
  Core_helpers.check_time "per column" (Model.Time.of_ticks 500)
    (Overhead.cost (Overhead.Per_column (Model.Time.of_ticks 100)) ~area:5);
  let inflated = Overhead.inflate_task (Overhead.Constant (Model.Time.of_units 1)) t in
  Core_helpers.check_time "exec inflated" (Model.Time.of_units 3) inflated.Model.Task.exec;
  check_bool "other fields kept" true
    (Model.Time.equal inflated.Model.Task.period t.Model.Task.period && inflated.Model.Task.area = 5)

let overhead_overrun () =
  let t = Core_helpers.task "x" "9.5" "10" "10" 5 in
  Alcotest.check_raises "exceeds deadline"
    (Invalid_argument "Overhead.inflate_task: inflated execution exceeds deadline or period")
    (fun () -> ignore (Overhead.inflate_task (Overhead.Constant (Model.Time.of_units 1)) t));
  let ts = Model.Taskset.of_list [ t ] in
  check_bool "taskset version returns None" true
    (Overhead.inflate_taskset (Overhead.Constant (Model.Time.of_units 1)) ts = None);
  match Overhead.inflate_taskset (Overhead.Constant (Model.Time.of_ticks 500)) ts with
  | Some ts' ->
    Core_helpers.check_time "inflated within bounds" (Model.Time.of_units 10)
      (Model.Taskset.nth ts' 0).Model.Task.exec
  | None -> Alcotest.fail "0.5 overhead should fit"

let () =
  Alcotest.run "fpga"
    [
      ( "device",
        [
          Alcotest.test_case "basic placement" `Quick basic_placement;
          Alcotest.test_case "removal and holes" `Quick removal_and_holes;
          Alcotest.test_case "strategies" `Quick strategies;
          Alcotest.test_case "compaction" `Quick compaction;
          Alcotest.test_case "errors" `Quick place_at_errors;
          prop_device_invariants;
        ] );
      ( "grid2d",
        [
          Alcotest.test_case "basics" `Quick grid_basics;
          Alcotest.test_case "fragmentation" `Quick grid_fragmentation;
          Alcotest.test_case "errors" `Quick grid_errors;
          prop_grid_accounting;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "models" `Quick overhead_models;
          Alcotest.test_case "overrun" `Quick overhead_overrun;
        ] );
    ]
