(* Tests for the binary min-heap, including a model-based property check
   against sorted lists. *)

let check_bool = Alcotest.(check bool)

let basics () =
  let q = Pqueue.create ~cmp:Int.compare in
  check_bool "empty" true (Pqueue.is_empty q);
  Alcotest.(check (option int)) "peek empty" None (Pqueue.peek q);
  Alcotest.(check (option int)) "pop empty" None (Pqueue.pop q);
  Pqueue.push q 5;
  Pqueue.push q 3;
  Pqueue.push q 8;
  Alcotest.(check int) "length" 3 (Pqueue.length q);
  Alcotest.(check (option int)) "peek min" (Some 3) (Pqueue.peek q);
  Alcotest.(check int) "pop 3" 3 (Pqueue.pop_exn q);
  Alcotest.(check int) "pop 5" 5 (Pqueue.pop_exn q);
  Alcotest.(check int) "pop 8" 8 (Pqueue.pop_exn q);
  Alcotest.check_raises "pop empty raises" (Invalid_argument "Pqueue.pop_exn: empty heap")
    (fun () -> ignore (Pqueue.pop_exn q))

let duplicates () =
  let q = Pqueue.of_list ~cmp:Int.compare [ 2; 2; 1; 2 ] in
  Alcotest.(check (list int)) "drain" [ 1; 2; 2; 2 ] (Pqueue.drain q);
  check_bool "drained" true (Pqueue.is_empty q)

let clear_resets () =
  let q = Pqueue.of_list ~cmp:Int.compare [ 1; 2; 3 ] in
  Pqueue.clear q;
  check_bool "cleared" true (Pqueue.is_empty q);
  Pqueue.push q 9;
  Alcotest.(check (list int)) "usable after clear" [ 9 ] (Pqueue.drain q)

let custom_order () =
  let q = Pqueue.create ~cmp:(fun a b -> compare b a) in
  List.iter (Pqueue.push q) [ 1; 5; 3 ];
  Alcotest.(check (list int)) "max-heap drain" [ 5; 3; 1 ] (Pqueue.drain q)

let to_list_snapshot () =
  let q = Pqueue.of_list ~cmp:Int.compare [ 4; 1; 3 ] in
  let snapshot = List.sort Int.compare (Pqueue.to_list q) in
  Alcotest.(check (list int)) "snapshot members" [ 1; 3; 4 ] snapshot;
  Alcotest.(check int) "unchanged" 3 (Pqueue.length q)

let prop_drain_sorts =
  Core_helpers.qtest "drain = List.sort" QCheck2.Gen.(list (int_range (-1000) 1000)) (fun l ->
      let q = Pqueue.of_list ~cmp:Int.compare l in
      Pqueue.drain q = List.sort Int.compare l)

let prop_interleaved =
  (* model-based: interleave pushes and pops, compare against a sorted-list
     model *)
  Core_helpers.qtest "interleaved ops match model"
    QCheck2.Gen.(list (pair bool (int_range 0 100)))
    (fun ops ->
      let q = Pqueue.create ~cmp:Int.compare in
      let model = ref [] in
      List.for_all
        (fun (is_push, v) ->
          if is_push then begin
            Pqueue.push q v;
            model := List.sort Int.compare (v :: !model);
            true
          end
          else begin
            match (Pqueue.pop q, !model) with
            | None, [] -> true
            | Some x, m :: rest ->
              model := rest;
              x = m
            | _ -> false
          end)
        ops)

let prop_peek_is_min =
  Core_helpers.qtest "peek is the minimum" QCheck2.Gen.(list_size (int_range 1 50) (int_range 0 1000))
    (fun l ->
      let q = Pqueue.of_list ~cmp:Int.compare l in
      Pqueue.peek q = Some (List.fold_left min (List.hd l) l))

let () =
  Alcotest.run "pqueue"
    [
      ( "unit",
        [
          Alcotest.test_case "basics" `Quick basics;
          Alcotest.test_case "duplicates" `Quick duplicates;
          Alcotest.test_case "clear" `Quick clear_resets;
          Alcotest.test_case "custom order" `Quick custom_order;
          Alcotest.test_case "to_list" `Quick to_list_snapshot;
        ] );
      ("properties", [ prop_drain_sorts; prop_interleaved; prop_peek_is_min ]);
    ]
