(* Unit and property tests for exact rationals. *)

let check_rat = Core_helpers.check_rat
let check_bool = Alcotest.(check bool)

let decimal_parsing () =
  check_rat "1.26" (Rat.of_ints 63 50) (Rat.of_decimal_string "1.26");
  check_rat "0.95" (Rat.of_ints 19 20) (Rat.of_decimal_string "0.95");
  check_rat "-0.5" (Rat.of_ints (-1) 2) (Rat.of_decimal_string "-0.5");
  check_rat "42" (Rat.of_int 42) (Rat.of_decimal_string "42");
  check_rat "0.000" Rat.zero (Rat.of_decimal_string "0.000");
  check_rat "10.100" (Rat.of_ints 101 10) (Rat.of_decimal_string "10.100");
  Alcotest.check_raises "trailing dot" (Invalid_argument "Rat.of_decimal_string: trailing dot")
    (fun () -> ignore (Rat.of_decimal_string "3."))

let normalisation () =
  check_rat "6/4 = 3/2" (Rat.of_ints 3 2) (Rat.of_ints 6 4);
  check_rat "-6/-4 = 3/2" (Rat.of_ints 3 2) (Rat.of_ints (-6) (-4));
  check_rat "6/-4 = -3/2" (Rat.of_ints (-3) 2) (Rat.of_ints 6 (-4));
  check_bool "den positive" true (Bignum.sign (Rat.den (Rat.of_ints 5 (-7))) > 0);
  Alcotest.(check string) "to_string int" "3" (Rat.to_string (Rat.of_ints 6 2));
  Alcotest.(check string) "to_string frac" "-3/2" (Rat.to_string (Rat.of_ints 6 (-4)))

let zero_division () =
  Alcotest.check_raises "of_ints" Division_by_zero (fun () -> ignore (Rat.of_ints 1 0));
  Alcotest.check_raises "div" Division_by_zero (fun () -> ignore (Rat.div Rat.one Rat.zero));
  Alcotest.check_raises "inv" Division_by_zero (fun () -> ignore (Rat.inv Rat.zero))

let floor_ceil_cases () =
  let fl n d = Bignum.to_int_exn (Rat.floor (Rat.of_ints n d)) in
  let ce n d = Bignum.to_int_exn (Rat.ceil (Rat.of_ints n d)) in
  Alcotest.(check int) "floor 7/2" 3 (fl 7 2);
  Alcotest.(check int) "floor -7/2" (-4) (fl (-7) 2);
  Alcotest.(check int) "floor 4/2" 2 (fl 4 2);
  Alcotest.(check int) "ceil 7/2" 4 (ce 7 2);
  Alcotest.(check int) "ceil -7/2" (-3) (ce (-7) 2);
  Alcotest.(check int) "ceil 4/2" 2 (ce 4 2)

let clamp_minmax () =
  let lo = Rat.of_int 0 and hi = Rat.of_int 10 in
  check_rat "clamp below" lo (Rat.clamp ~lo ~hi (Rat.of_int (-5)));
  check_rat "clamp above" hi (Rat.clamp ~lo ~hi (Rat.of_int 15));
  check_rat "clamp inside" (Rat.of_int 5) (Rat.clamp ~lo ~hi (Rat.of_int 5));
  check_rat "min" (Rat.of_ints 1 3) (Rat.min (Rat.of_ints 1 3) (Rat.of_ints 1 2));
  check_rat "max" (Rat.of_ints 1 2) (Rat.max (Rat.of_ints 1 3) (Rat.of_ints 1 2))

let sum_cases () =
  check_rat "sum empty" Rat.zero (Rat.sum []);
  check_rat "sum thirds" Rat.one (Rat.sum [ Rat.of_ints 1 3; Rat.of_ints 1 3; Rat.of_ints 1 3 ])

(* --- properties --- *)

let rat_gen =
  QCheck2.Gen.map
    (fun (n, d) -> Rat.of_ints n (if d = 0 then 1 else d))
    QCheck2.Gen.(pair (int_range (-10000) 10000) (int_range (-1000) 1000))

let triple_gen = QCheck2.Gen.triple rat_gen rat_gen rat_gen

let prop_add_assoc =
  Core_helpers.qtest "(a+b)+c = a+(b+c)" triple_gen (fun (a, b, c) ->
      Rat.equal (Rat.add (Rat.add a b) c) (Rat.add a (Rat.add b c)))

let prop_mul_assoc =
  Core_helpers.qtest "(a*b)*c = a*(b*c)" triple_gen (fun (a, b, c) ->
      Rat.equal (Rat.mul (Rat.mul a b) c) (Rat.mul a (Rat.mul b c)))

let prop_distrib =
  Core_helpers.qtest "a*(b+c) = a*b + a*c" triple_gen (fun (a, b, c) ->
      Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)))

let prop_add_comm =
  Core_helpers.qtest "a+b = b+a" (QCheck2.Gen.pair rat_gen rat_gen) (fun (a, b) ->
      Rat.equal (Rat.add a b) (Rat.add b a))

let prop_sub_inverse =
  Core_helpers.qtest "(a+b)-b = a" (QCheck2.Gen.pair rat_gen rat_gen) (fun (a, b) ->
      Rat.equal (Rat.sub (Rat.add a b) b) a)

let prop_div_inverse =
  Core_helpers.qtest "(a*b)/b = a (b<>0)" (QCheck2.Gen.pair rat_gen rat_gen) (fun (a, b) ->
      Rat.is_zero b || Rat.equal (Rat.div (Rat.mul a b) b) a)

let prop_compare_total =
  Core_helpers.qtest "compare antisymmetric" (QCheck2.Gen.pair rat_gen rat_gen) (fun (a, b) ->
      Rat.compare a b = -Rat.compare b a)

let prop_compare_float =
  Core_helpers.qtest "compare agrees with floats (away from ties)"
    (QCheck2.Gen.pair rat_gen rat_gen) (fun (a, b) ->
      let fa = Rat.to_float a and fb = Rat.to_float b in
      if Float.abs (fa -. fb) < 1e-9 then true
      else (Rat.compare a b < 0) = (fa < fb))

let prop_floor_bounds =
  Core_helpers.qtest "floor(x) <= x < floor(x)+1" rat_gen (fun x ->
      let f = Rat.of_bignum (Rat.floor x) in
      Rat.compare f x <= 0 && Rat.compare x (Rat.add f Rat.one) < 0)

let prop_normalised =
  Core_helpers.qtest "results are normalised" (QCheck2.Gen.pair rat_gen rat_gen) (fun (a, b) ->
      let r = Rat.add a b in
      Bignum.sign (Rat.den r) > 0
      && Bignum.equal (Bignum.gcd (Rat.num r) (Rat.den r)) (if Rat.is_zero r then Bignum.zero else Bignum.one)
         (* gcd(0, 1) = 1 in our encoding of zero as 0/1 *)
         || Rat.is_zero r)

let () =
  Alcotest.run "rat"
    [
      ( "unit",
        [
          Alcotest.test_case "decimal parsing" `Quick decimal_parsing;
          Alcotest.test_case "normalisation" `Quick normalisation;
          Alcotest.test_case "zero division" `Quick zero_division;
          Alcotest.test_case "floor/ceil" `Quick floor_ceil_cases;
          Alcotest.test_case "clamp/min/max" `Quick clamp_minmax;
          Alcotest.test_case "sum" `Quick sum_cases;
        ] );
      ( "properties",
        [
          prop_add_assoc;
          prop_mul_assoc;
          prop_distrib;
          prop_add_comm;
          prop_sub_inverse;
          prop_div_inverse;
          prop_compare_total;
          prop_compare_float;
          prop_floor_bounds;
          prop_normalised;
        ] );
    ]
