(* Shared helpers for the test suites. *)

let task name c d t a =
  Model.Task.of_decimal ~name ~exec:c ~deadline:d ~period:t ~area:a ()

let taskset rows = Model.Taskset.of_list (List.map (fun (n, c, d, t, a) -> task n c d t a) rows)

let rat_testable = Alcotest.testable Rat.pp Rat.equal
let check_rat msg expected actual = Alcotest.check rat_testable msg expected actual

let bignum_testable = Alcotest.testable Bignum.pp Bignum.equal
let check_bignum msg expected actual = Alcotest.check bignum_testable msg expected actual

let time_testable = Alcotest.testable Model.Time.pp Model.Time.equal
let check_time msg expected actual = Alcotest.check time_testable msg expected actual

(* qcheck -> alcotest bridge with a fixed test count *)
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)
