The paper's tables through the CLI:

  $ redf tables | grep -E 'Table|DP:|GN1:|GN2:' | head -12
  Table 1
  DP: ACCEPT
  GN1: REJECT
  GN2: REJECT
  Table 2
  DP: REJECT
  GN1: ACCEPT
  GN2: REJECT
  Table 3
  DP: REJECT
  GN1: REJECT
  GN2: ACCEPT

Generate a taskset, analyze it, simulate it:

  $ redf generate --profile unconstrained -n 3 --seed 3 --target-us 20 > ts.csv
  $ head -1 ts.csv
  name,C,D,T,A
  $ redf analyze ts.csv --area 100 > /dev/null 2>&1; echo "exit $?"
  exit 0
  $ redf simulate ts.csv --area 100 --horizon 50 | head -2
  policy: EDF-NF, placement: migrating, horizon: 50 units
  no deadline miss observed

An infeasible taskset is refuted and reported:

  $ cat > bad.csv <<'CSV'
  > name,C,D,T,A
  > a,9,10,10,60
  > b,9,10,10,60
  > CSV
  $ redf analyze bad.csv --area 100 | grep -A2 INFEASIBLE
  INFEASIBLE under any scheduler:
    system utilization 108.0000 exceeds the device area
    mutually-exclusive tasks {1,2} demand 1.8000 > 1 of a serial resource
  $ redf analyze bad.csv --area 100 > /dev/null 2>&1; echo "exit $?"
  exit 2

The no-critical-instant witness:

  $ cat > witness.csv <<'CSV'
  > name,C,D,T,A
  > t0,3,3,3,6
  > t1,1,3,3,4
  > t2,1,2,2,4
  > CSV
  $ redf simulate witness.csv --area 10 --horizon 6 | head -2
  policy: EDF-NF, placement: migrating, horizon: 6 units
  no deadline miss observed
  $ redf exhaustive witness.csv --area 10 --grid 500 > /dev/null 2>&1; echo "exit $?"
  exit 2
