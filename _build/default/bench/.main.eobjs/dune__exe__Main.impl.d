bench/main.ml: Ablations Figures Micro Tables
