bench/main.mli:
