bench/figures.ml: Bench_env Experiment List Model Printf Unix
