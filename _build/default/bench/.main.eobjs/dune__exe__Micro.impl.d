bench/micro.ml: Analyze Bechamel Bench_env Benchmark Bignum Core Fpga Hashtbl Instance List Measure Model Printf Rng Sim Staged Test Time Toolkit
