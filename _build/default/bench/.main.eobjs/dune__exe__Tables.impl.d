bench/tables.ml: Bench_env Core Experiment Format List Model Printf Rat Rng String
