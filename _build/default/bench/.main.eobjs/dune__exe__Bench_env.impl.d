bench/bench_env.ml: Filename Model Printf String Sys
