bench/ablations.ml: Bench_env Core Float Fpga Fun List Model Option Printf Rat Rng Sim Sim2d
