(* Environment knobs for the benchmark harness.

   The paper averages >= 10000 tasksets per utilization point; that takes
   hours with five methods per point, so the default here is a faithful
   but smaller run.  Set REDF_SAMPLES=10000 to reproduce at paper scale. *)

let int_env name default =
  match Sys.getenv_opt name with
  | Some v -> (match int_of_string_opt v with Some n when n > 0 -> n | _ -> default)
  | None -> default

let samples = int_env "REDF_SAMPLES" 300
(* simulation horizon in time units; the paper simulates "to the
   hyper-period", which is astronomically large for random periods, so
   any practical run truncates (see EXPERIMENTS.md) *)
let horizon_units = int_env "REDF_HORIZON" 500
let seed = int_env "REDF_SEED" 42
let skip_micro = Sys.getenv_opt "REDF_SKIP_MICRO" <> None

let horizon = Model.Time.of_units horizon_units

let results_dir = "results"

let ensure_results_dir () =
  if not (Sys.file_exists results_dir) then Sys.mkdir results_dir 0o755

let write_file path contents =
  ensure_results_dir ();
  let oc = open_out (Filename.concat results_dir path) in
  output_string oc contents;
  close_out oc

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')
