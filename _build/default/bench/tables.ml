(* Section 6, Tables 1-3: the three 2-task tasksets showing DP, GN1 and
   GN2 pairwise incomparable on A(H) = 10. *)

let fpga_area = 10

let task name c d t a = Model.Task.of_decimal ~name ~exec:c ~deadline:d ~period:t ~area:a ()

let tables =
  [
    ( "Table 1 (accepted by DP, rejected by GN1 and GN2)",
      Model.Taskset.of_list [ task "tau1" "1.26" "7" "7" 9; task "tau2" "0.95" "5" "5" 6 ],
      (true, false, false) );
    ( "Table 2 (accepted by GN1, rejected by DP and GN2)",
      Model.Taskset.of_list [ task "tau1" "4.50" "8" "8" 3; task "tau2" "8.00" "9" "9" 5 ],
      (false, true, false) );
    ( "Table 3 (accepted by GN2, rejected by DP and GN1)",
      Model.Taskset.of_list [ task "tau1" "2.10" "5" "5" 7; task "tau2" "2.00" "7" "7" 7 ],
      (false, false, true) );
  ]

(* beyond the paper: show that the three tables are not cherry-picked by
   rediscovering fresh witnesses at random, and quantify how often each
   subset of tests accepts *)
let discovered () =
  Bench_env.section "Discovered incomparability witnesses (extension)";
  let tests = [ ("DP", Core.Dp.accepts); ("GN1", Core.Gn1.accepts); ("GN2", Core.Gn2.accepts) ] in
  let profile =
    {
      (Model.Generator.unconstrained ~n:2) with
      Model.Generator.fpga_area;
      area_hi = fpga_area;
      period_lo = 4.0;
      period_hi = 10.0;
    }
  in
  let rng = Rng.create ~seed:(Bench_env.seed + 101) in
  List.iter
    (fun (name, w) ->
      match w with
      | Some (witness : Experiment.Incomparability.witness) ->
        Format.printf "unique to %-3s (after %5d draws): %a@." name witness.draws_used
          Model.Taskset.pp witness.taskset
      | None -> Format.printf "unique to %-3s: none found within the draw budget@." name)
    (Experiment.Incomparability.find_all ~rng ~profile ~tests ());
  Printf.printf "\njoint acceptance over 5000 random 2-task sets on A(H)=%d:\n" fpga_area;
  List.iter
    (fun (accepting, count) ->
      Printf.printf "  %-16s %5d\n"
        (match accepting with [] -> "(none)" | l -> String.concat "+" l)
        count)
    (Experiment.Incomparability.incidence ~rng ~profile ~tests ())

let run () =
  Bench_env.section "Tables 1-3: pairwise incomparability of DP, GN1, GN2";
  Printf.printf "(FPGA with A(H) = %d columns; exact rational arithmetic)\n" fpga_area;
  List.iter
    (fun (title, ts, (dp_exp, gn1_exp, gn2_exp)) ->
      let dp = Core.Dp.accepts ~fpga_area ts in
      let gn1 = Core.Gn1.accepts ~fpga_area ts in
      let gn2 = Core.Gn2.accepts ~fpga_area ts in
      let show b = if b then "ACCEPT" else "reject" in
      let mark got expected = if got = expected then "" else "  << MISMATCH vs paper" in
      Printf.printf "\n%s\n" title;
      Format.printf "  %a@." Model.Taskset.pp ts;
      Printf.printf "  UT = %s  US = %s\n"
        (Rat.to_string (Model.Taskset.time_utilization ts))
        (Rat.to_string (Model.Taskset.system_utilization ts));
      Printf.printf "  DP : %s%s\n" (show dp) (mark dp dp_exp);
      Printf.printf "  GN1: %s%s\n" (show gn1) (mark gn1 gn1_exp);
      Printf.printf "  GN2: %s%s\n" (show gn2) (mark gn2 gn2_exp))
    tables;
  Printf.printf
    "\nCombined (Section 6 advice): all three tasksets are accepted for EDF-NF\nby applying the tests together: %b %b %b\n"
    (Core.Composite.edf_nf_any ~fpga_area (let _, t, _ = List.nth tables 0 in t))
    (Core.Composite.edf_nf_any ~fpga_area (let _, t, _ = List.nth tables 1 in t))
    (Core.Composite.edf_nf_any ~fpga_area (let _, t, _ = List.nth tables 2 in t));
  discovered ()
