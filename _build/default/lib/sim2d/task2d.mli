(** Tasks for 2-D reconfigurable devices (Section 7 future work).

    On a 2-D device a hardware task occupies a [w x h] rectangle of CLBs
    rather than a set of columns.  The timing model is unchanged. *)

type t = {
  name : string;
  exec : Model.Time.t;
  deadline : Model.Time.t;
  period : Model.Time.t;
  w : int;  (** rectangle width in cells *)
  h : int;  (** rectangle height in cells *)
}

val make :
  ?name:string ->
  exec:Model.Time.t ->
  deadline:Model.Time.t ->
  period:Model.Time.t ->
  w:int ->
  h:int ->
  unit ->
  t
(** @raise Invalid_argument on non-positive parameters. *)

val of_decimal :
  ?name:string -> exec:string -> deadline:string -> period:string -> w:int -> h:int -> unit -> t

val cells : t -> int
(** [w * h]. *)

val of_columns : height:int -> Model.Task.t -> t
(** The natural embedding of the paper's 1-D model: a task of area [A]
    becomes an [A x height] rectangle spanning the full device height.
    Scheduling the embedded set on a [width x height] grid is exactly
    1-D scheduling with contiguous placement. *)

val time_utilization : t -> Rat.t
val cell_utilization : t -> Rat.t
(** [C * w * h / T] — the 2-D analogue of system utilization. *)

val pp : Format.formatter -> t -> unit
