type t = {
  name : string;
  exec : Model.Time.t;
  deadline : Model.Time.t;
  period : Model.Time.t;
  w : int;
  h : int;
}

let make ?(name = "") ~exec ~deadline ~period ~w ~h () =
  if not (Model.Time.is_positive exec) then invalid_arg "Task2d.make: exec must be positive";
  if not (Model.Time.is_positive deadline) then invalid_arg "Task2d.make: deadline must be positive";
  if not (Model.Time.is_positive period) then invalid_arg "Task2d.make: period must be positive";
  if w < 1 || h < 1 then invalid_arg "Task2d.make: rectangle sides must be >= 1";
  { name; exec; deadline; period; w; h }

let of_decimal ?name ~exec ~deadline ~period ~w ~h () =
  make ?name
    ~exec:(Model.Time.of_decimal_string exec)
    ~deadline:(Model.Time.of_decimal_string deadline)
    ~period:(Model.Time.of_decimal_string period)
    ~w ~h ()

let cells t = t.w * t.h

let of_columns ~height (task : Model.Task.t) =
  make ~name:task.name ~exec:task.exec ~deadline:task.deadline ~period:task.period ~w:task.area
    ~h:height ()

let time_utilization t = Rat.div (Model.Time.to_rat t.exec) (Model.Time.to_rat t.period)
let cell_utilization t = Rat.mul (time_utilization t) (Rat.of_int (cells t))

let pp fmt t =
  Format.fprintf fmt "%s(C=%a, D=%a, T=%a, %dx%d)"
    (if t.name = "" then "task" else t.name)
    Model.Time.pp t.exec Model.Time.pp t.deadline Model.Time.pp t.period t.w t.h
