(** Event-driven EDF simulation on a 2-D reconfigurable device.

    Section 7: "Especially for 2D reconfiguration, task placement strategy
    has a large effect on FPGA fragmentation, and we cannot assume that a
    task can fit on the FPGA as long as there is enough free area."  This
    engine makes that effect measurable: jobs occupy rectangles placed
    bottom-left first-fit on an occupancy grid, a running job keeps its
    rectangle, and the statistics separate genuine capacity rejections
    from {e fragmentation rejections} — instants where a job's cell count
    fits in the free cells but no free rectangle exists.

    The queue discipline mirrors the 1-D engine: EDF order with either the
    First-k-Fit (blocking) or Next-Fit (skipping) rule of Definitions 1
    and 2. *)

type job = {
  id : int;
  task_index : int;
  task : Task2d.t;
  release : Model.Time.t;
  abs_deadline : Model.Time.t;
  mutable remaining : Model.Time.t;
}

type config = {
  width : int;
  height : int;
  rule : Sim.Policy.fit_rule;
  horizon : Model.Time.t;
  record_trace : bool;
}

val default_config : width:int -> height:int -> rule:Sim.Policy.fit_rule -> config
(** Horizon 2000 time units, no trace. *)

type placed = { job : job; rect : Fpga.Grid2d.rect }
type segment = { t0 : Model.Time.t; t1 : Model.Time.t; running : placed list; waiting : job list }
type miss = { job_id : int; task_index : int; at : Model.Time.t }
type outcome = No_miss | Miss of miss

type stats = {
  jobs_released : int;
  jobs_completed : int;
  busy_cell_ticks : int;
  fragmentation_rejections : int;
      (** times a waiting job's cells fit in the free-cell count but no
          free rectangle of its shape existed — the loss the 1-D
          unrestricted-migration model assumes away *)
  capacity_rejections : int;
      (** times a waiting job did not even fit by cell count *)
  preemptions : int;
}

type result = { outcome : outcome; stats : stats; segments : segment list }

val run : config -> Task2d.t list -> result
(** @raise Invalid_argument when a task's rectangle exceeds the device or
    the task list is empty. *)

val schedulable : config -> Task2d.t list -> bool

val embed_1d : Model.Taskset.t -> height:int -> Task2d.t list
(** Full-height embedding of a 1-D taskset (see {!Task2d.of_columns}). *)
