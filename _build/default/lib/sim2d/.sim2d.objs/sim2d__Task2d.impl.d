lib/sim2d/task2d.ml: Format Model Rat
