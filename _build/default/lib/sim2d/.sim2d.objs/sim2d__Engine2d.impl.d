lib/sim2d/engine2d.ml: Array Fpga Hashtbl Int List Model Pqueue Sim Task2d
