lib/sim2d/engine2d.mli: Fpga Model Sim Task2d
