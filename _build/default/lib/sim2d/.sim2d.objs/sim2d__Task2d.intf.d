lib/sim2d/task2d.mli: Format Model Rat
