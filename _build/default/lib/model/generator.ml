type profile = {
  n : int;
  fpga_area : int;
  area_lo : int;
  area_hi : int;
  util_lo : float;
  util_hi : float;
  period_lo : float;
  period_hi : float;
  period_grid : int;
}

let default_period_grid = 250

let base_profile ~n =
  {
    n;
    fpga_area = 100;
    area_lo = 1;
    area_hi = 100;
    util_lo = 0.0;
    util_hi = 1.0;
    period_lo = 5.0;
    period_hi = 20.0;
    period_grid = default_period_grid;
  }

let unconstrained ~n = base_profile ~n
let spatially_heavy_temporally_light ~n = { (base_profile ~n) with area_lo = 60; area_hi = 100; util_hi = 0.3 }
let spatially_light_temporally_heavy ~n = { (base_profile ~n) with area_lo = 1; area_hi = 20; util_lo = 0.6 }

let validate p =
  if p.n < 1 then Error "n must be >= 1"
  else if p.fpga_area < 1 then Error "fpga_area must be >= 1"
  else if p.area_lo < 1 || p.area_lo > p.area_hi then Error "invalid area range"
  else if p.util_lo < 0.0 || p.util_lo >= p.util_hi || p.util_hi > 1.0 then Error "invalid utilization range"
  else if p.period_lo <= 0.0 || p.period_lo >= p.period_hi then Error "invalid period range"
  else if p.period_grid < 1 then Error "period_grid must be >= 1"
  else Ok ()

let validate_exn p =
  match validate p with Ok () -> () | Error msg -> invalid_arg ("Generator: " ^ msg)

let draw_area rng p = Rng.int_incl rng p.area_lo (min p.area_hi p.fpga_area)

(* Period: a multiple of [period_grid] strictly inside (period_lo, period_hi). *)
let draw_period rng p =
  let g = p.period_grid in
  let lo_tick = int_of_float (p.period_lo *. float_of_int Time.scale) in
  let hi_tick = int_of_float (p.period_hi *. float_of_int Time.scale) in
  let k_lo = (lo_tick / g) + 1 in
  let k_hi = if hi_tick mod g = 0 then (hi_tick / g) - 1 else hi_tick / g in
  if k_lo > k_hi then invalid_arg "Generator: period range contains no grid point";
  Time.of_ticks (Rng.int_incl rng k_lo k_hi * g)

(* Execution time from a utilization: C = u * T rounded to the nearest
   tick, at least one tick and at most the period. *)
let exec_of_util u (period : Time.t) =
  let t = Time.ticks period in
  let c = int_of_float (Float.round (u *. float_of_int t)) in
  Time.of_ticks (max 1 (min c t))

let make_task i ~exec ~period ~area =
  Task.make ~name:(Printf.sprintf "tau%d" (i + 1)) ~exec ~deadline:period ~period ~area ()

let draw rng p =
  validate_exn p;
  let task i =
    let area = draw_area rng p in
    let period = draw_period rng p in
    let u = Rng.float_range rng p.util_lo p.util_hi in
    (* avoid a zero execution time from u ~ 0 *)
    let u = if u <= 0.0 then 1e-6 else u in
    make_task i ~exec:(exec_of_util u period) ~period ~area
  in
  Taskset.of_list (List.init p.n task)

let max_reachable_us p = float_of_int p.n *. p.util_hi *. float_of_int (min p.area_hi p.fpga_area)

let draw_with_target_us ?(max_attempts = 200) rng p ~target_us =
  validate_exn p;
  if target_us <= 0.0 then invalid_arg "Generator: target_us must be positive";
  let attempt () =
    let areas = Array.init p.n (fun _ -> draw_area rng p) in
    let periods = Array.init p.n (fun _ -> draw_period rng p) in
    let raw = Array.init p.n (fun _ -> Rng.float_range rng p.util_lo p.util_hi) in
    let weighted = Array.mapi (fun i u -> u *. float_of_int areas.(i)) raw in
    let total = Array.fold_left ( +. ) 0.0 weighted in
    if total <= 0.0 then None
    else begin
      let factor = target_us /. total in
      let scaled = Array.map (fun u -> u *. factor) raw in
      let within u = u > 0.0 && u >= p.util_lo && u <= p.util_hi in
      if Array.for_all within scaled then
        Some
          (Taskset.of_list
             (List.init p.n (fun i ->
                  make_task i ~exec:(exec_of_util scaled.(i) periods.(i)) ~period:periods.(i)
                    ~area:areas.(i))))
      else None
    end
  in
  let rec go k = if k >= max_attempts then None else match attempt () with Some ts -> Some ts | None -> go (k + 1) in
  go 0
