lib/model/taskset.ml: Array Buffer Format List Printf Rat String Task Time
