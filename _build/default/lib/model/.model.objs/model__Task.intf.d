lib/model/task.mli: Format Rat Time
