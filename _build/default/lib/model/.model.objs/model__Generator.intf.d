lib/model/generator.mli: Rng Taskset
