lib/model/time.mli: Format Rat
