lib/model/task.ml: Format Rat String Time
