lib/model/time.ml: Bignum Float Format Int Printf Rat Stdlib String
