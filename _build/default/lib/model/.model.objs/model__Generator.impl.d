lib/model/generator.ml: Array Float List Printf Rng Task Taskset Time
