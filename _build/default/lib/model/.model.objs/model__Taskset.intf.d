lib/model/taskset.mli: Format Rat Task Time
