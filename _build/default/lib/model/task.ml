type t = { name : string; exec : Time.t; deadline : Time.t; period : Time.t; area : int }

let make ?(name = "") ~exec ~deadline ~period ~area () =
  if not (Time.is_positive exec) then invalid_arg "Task.make: exec must be positive";
  if not (Time.is_positive deadline) then invalid_arg "Task.make: deadline must be positive";
  if not (Time.is_positive period) then invalid_arg "Task.make: period must be positive";
  if area < 1 then invalid_arg "Task.make: area must be >= 1";
  { name; exec; deadline; period; area }

let of_decimal ?name ~exec ~deadline ~period ~area () =
  make ?name
    ~exec:(Time.of_decimal_string exec)
    ~deadline:(Time.of_decimal_string deadline)
    ~period:(Time.of_decimal_string period)
    ~area ()

let time_utilization t = Rat.div (Time.to_rat t.exec) (Time.to_rat t.period)
let system_utilization t = Rat.mul (time_utilization t) (Rat.of_int t.area)
let density t = Rat.div (Time.to_rat t.exec) (Time.to_rat t.deadline)
let is_implicit_deadline t = Time.equal t.deadline t.period
let is_constrained_deadline t = Time.(t.deadline <= t.period)

let equal a b =
  String.equal a.name b.name
  && Time.equal a.exec b.exec
  && Time.equal a.deadline b.deadline
  && Time.equal a.period b.period
  && a.area = b.area

let pp fmt t =
  Format.fprintf fmt "%s(C=%a, D=%a, T=%a, A=%d)"
    (if t.name = "" then "task" else t.name)
    Time.pp t.exec Time.pp t.deadline Time.pp t.period t.area
