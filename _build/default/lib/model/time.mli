(** Fixed-point time.

    All task parameters and simulator clocks are integer counts of a fixed
    sub-unit tick ([1/1000] of a time unit).  Integer ticks make the
    discrete-event simulator exact (no drifting float comparisons) and
    convert losslessly to the rationals used by the analysis tests: the
    paper's parameters such as [C = 1.26] are representable exactly. *)

type t = private int
(** A duration or instant, in ticks.  May be negative (instants before the
    origin arise in analysis windows). *)

val scale : int
(** Ticks per time unit (1000). *)

val zero : t
val of_ticks : int -> t
val ticks : t -> int

val of_units : int -> t
(** [of_units 7] is exactly 7.0 time units. *)

val of_decimal_string : string -> t
(** Exact conversion of e.g. ["1.26"]; at most 3 fractional digits.
    @raise Invalid_argument when the value is not a whole tick count. *)

val of_float_round : float -> t
(** Nearest-tick rounding; for synthetic workload generation only. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul_int : t -> int -> t
val min : t -> t -> t
val max : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val is_positive : t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( > ) : t -> t -> bool

val to_rat : t -> Rat.t
(** Exact value in time units. *)

val to_float : t -> float
val pp : Format.formatter -> t -> unit
(** Prints in time units, e.g. [1.26]. *)

val to_string : t -> string
