type t = int

let scale = 1000
let zero = 0
let of_ticks n = n
let ticks n = n
let of_units u = u * scale

let of_decimal_string s =
  let r = Rat.of_decimal_string s in
  let scaled = Rat.mul r (Rat.of_int scale) in
  if not (Bignum.equal (Rat.den scaled) Bignum.one) then
    invalid_arg (Printf.sprintf "Time.of_decimal_string: %S is finer than 1/%d" s scale);
  Bignum.to_int_exn (Rat.num scaled)

let of_float_round f = int_of_float (Float.round (f *. float_of_int scale))
let add = ( + )
let sub = ( - )
let mul_int t k = t * k
let min = Stdlib.min
let max = Stdlib.max
let compare = Stdlib.compare
let equal = Int.equal
let is_positive t = t > 0
let ( <= ) = Stdlib.( <= )
let ( < ) = Stdlib.( < )
let ( >= ) = Stdlib.( >= )
let ( > ) = Stdlib.( > )
let to_rat t = Rat.of_ints t scale
let to_float t = float_of_int t /. float_of_int scale

let to_string t =
  let sign = if Stdlib.(t < 0) then "-" else "" in
  let a = abs t in
  let whole = a / scale and frac = a mod scale in
  if frac = 0 then Printf.sprintf "%s%d" sign whole
  else begin
    (* trim trailing zeros of the 3-digit fraction *)
    let f = Printf.sprintf "%03d" frac in
    let len = ref (String.length f) in
    while f.[!len - 1] = '0' do
      decr len
    done;
    Printf.sprintf "%s%d.%s" sign whole (String.sub f 0 !len)
  end

let pp fmt t = Format.pp_print_string fmt (to_string t)
