(** The hardware task model of Section 2.

    A task [tau_k = (C_k, D_k, T_k, A_k)] releases a job every period (or
    minimum inter-arrival) [T_k]; each job needs [C_k] time units of
    execution on [A_k] contiguous FPGA columns and must finish within the
    relative deadline [D_k]. *)

type t = {
  name : string;
  exec : Time.t;  (** worst-case execution time [C] *)
  deadline : Time.t;  (** relative deadline [D] *)
  period : Time.t;  (** period / minimum inter-arrival [T] *)
  area : int;  (** columns occupied [A] *)
}

val make : ?name:string -> exec:Time.t -> deadline:Time.t -> period:Time.t -> area:int -> unit -> t
(** @raise Invalid_argument when [exec <= 0], [deadline <= 0],
    [period <= 0] or [area < 1]. *)

val of_decimal :
  ?name:string -> exec:string -> deadline:string -> period:string -> area:int -> unit -> t
(** Convenience constructor from decimal strings, e.g.
    [of_decimal ~exec:"1.26" ~deadline:"7" ~period:"7" ~area:9 ()]. *)

val time_utilization : t -> Rat.t
(** [C/T]. *)

val system_utilization : t -> Rat.t
(** [C*A/T] — the paper's area-weighted utilization. *)

val density : t -> Rat.t
(** [C/D]. *)

val is_implicit_deadline : t -> bool
(** [D = T]. *)

val is_constrained_deadline : t -> bool
(** [D <= T]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
