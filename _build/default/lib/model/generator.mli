(** Synthetic taskset generation (Section 6 of the paper).

    The paper evaluates its tests on randomly generated tasksets: FPGA area
    100, task areas uniform on [1,100], periods uniform on (5,20), implicit
    deadlines, and execution time a random fraction of the period.  Figures
    3 and 4 plot acceptance ratio against total system utilization, so the
    harness needs tasksets conditioned on a target [US]; we follow the
    standard UUniFast-style approach of scaling per-task time utilizations
    and redrawing when the scaling violates the profile's bounds.

    Periods are drawn on a configurable tick grid so tasksets remain exact
    fixed-point values; execution times are rounded to the nearest tick. *)

type profile = {
  n : int;  (** number of tasks *)
  fpga_area : int;  (** [A(H)]; task areas are clamped to it *)
  area_lo : int;
  area_hi : int;  (** task areas uniform on [area_lo, area_hi] *)
  util_lo : float;
  util_hi : float;  (** per-task time utilization range (exclusive ends) *)
  period_lo : float;
  period_hi : float;  (** periods uniform on (period_lo, period_hi) *)
  period_grid : int;  (** periods are multiples of this many ticks *)
}

val default_period_grid : int
(** 250 ticks = 0.25 time units. *)

val unconstrained : n:int -> profile
(** Figure 3 profile: [A(H)=100], areas on [1,100], utilization (0,1),
    periods (5,20). *)

val spatially_heavy_temporally_light : n:int -> profile
(** Figure 4(a): areas on [60,100], utilization (0,0.3). *)

val spatially_light_temporally_heavy : n:int -> profile
(** Figure 4(b): areas on [1,20], utilization (0.6,1) — narrow tasks with
    high time demand.  The natural system utilization of a 10-task set
    then spans roughly 40-125, covering the whole region where the tests
    and the simulation upper bound diverge. *)

val validate : profile -> (unit, string) result

val draw : Rng.t -> profile -> Taskset.t
(** Unconditioned draw: utilizations sampled directly from the profile
    range.  @raise Invalid_argument on an invalid profile. *)

val draw_with_target_us : ?max_attempts:int -> Rng.t -> profile -> target_us:float -> Taskset.t option
(** Draw a taskset whose total system utilization is approximately
    [target_us] (exact up to execution-time tick rounding): areas and
    periods are drawn from the profile, raw utilizations are drawn and
    rescaled so that [sum u_i * A_i = target_us].  Returns [None] when no
    draw satisfying the per-task utilization bounds is found within
    [max_attempts] (default 200) — i.e. the target is unreachable for this
    profile. *)

val max_reachable_us : profile -> float
(** Upper bound on the system utilization this profile can produce
    ([n * util_hi * area_hi']). *)
