(** Arbitrary-precision signed integers.

    The schedulability tests of Guan et al. (IPDPS 2007) must be evaluated
    exactly: the DP decision on the paper's Table 1, for instance, hinges on
    an exact equality between two sums of products of decimal task
    parameters, which binary floating point cannot certify.  [zarith] is not
    available in this environment, so this module provides the minimal exact
    integer arithmetic needed by {!Rat}.

    Values are immutable.  Magnitudes are stored little-endian in base
    [2{^30}]; all operations are schoolbook and intended for the small
    numbers (a few hundred bits) arising from schedulability formulas. *)

type t

val zero : t
val one : t
val two : t
val minus_one : t

val of_int : int -> t

val to_int_opt : t -> int option
(** [to_int_opt x] is [Some n] when [x] fits in a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure when the value does not fit in a native [int]. *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], truncated towards zero and
    [sign r = sign a] (OCaml [(/)] / [(mod)] semantics).
    @raise Division_by_zero when [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val fdiv : t -> t -> t
(** Floor division: rounds towards negative infinity. *)

val fdivmod : t -> t -> t * t
(** Floor division with remainder: [r] has the sign of the divisor. *)

val gcd : t -> t -> t
(** Greatest common divisor of the absolute values; [gcd 0 0 = 0]. *)

val lcm : t -> t -> t

val pow : t -> int -> t
(** [pow b n] for [n >= 0]. @raise Invalid_argument on negative exponent. *)

val min : t -> t -> t
val max : t -> t -> t

val of_string : string -> t
(** Parses an optionally-signed decimal numeral.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
val to_float : t -> float
val pp : Format.formatter -> t -> unit

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
