(* Sign-magnitude arbitrary-precision integers in base 2^30.

   Invariants: [mag] is little-endian with no leading zero digit; the value
   is zero iff [sign = 0] iff [mag] is empty.  Base 2^30 keeps every digit
   product below 2^60, so schoolbook multiplication never overflows native
   63-bit ints. *)

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* --- magnitude helpers (arrays of digits, little-endian) --- *)

let mag_normalize (a : int array) : int array =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = Stdlib.max la lb + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  assert (!carry = 0);
  mag_normalize r

(* requires a >= b *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  mag_normalize r

let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- s land base_mask;
        carry := s lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land base_mask;
        carry := s lsr base_bits;
        incr k
      done
    done;
    mag_normalize r
  end

(* multiply magnitude by a small non-negative int (< base) *)
let mag_mul_small a m =
  if m = 0 || Array.length a = 0 then [||]
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let s = (a.(i) * m) + !carry in
      r.(i) <- s land base_mask;
      carry := s lsr base_bits
    done;
    r.(la) <- !carry;
    mag_normalize r
  end

(* divide magnitude by a small positive int, returning (quotient, rem) *)
let mag_divmod_small a m =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / m;
    r := cur mod m
  done;
  (mag_normalize q, !r)

let mag_shift_left_digits a k =
  if Array.length a = 0 then [||]
  else Array.append (Array.make k 0) a

(* Long division of magnitudes: binary shift-and-subtract per base digit
   would be slow; instead use schoolbook division with a one-digit estimate
   refined by correction steps.  Numbers here are small, so simplicity wins:
   we divide by repeated subtraction of shifted multiples found by binary
   search over the single next quotient digit. *)
let mag_divmod a b =
  if Array.length b = 0 then raise Division_by_zero;
  if mag_compare a b < 0 then ([||], a)
  else begin
    let la = Array.length a and lb = Array.length b in
    let shift = la - lb in
    let q = Array.make (shift + 1) 0 in
    let r = ref a in
    for k = shift downto 0 do
      let bk = mag_shift_left_digits b k in
      (* binary search the largest digit d in [0, base) with d*bk <= r *)
      let lo = ref 0 and hi = ref (base - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if mag_compare (mag_mul_small bk mid) !r <= 0 then lo := mid
        else hi := mid - 1
      done;
      let d = !lo in
      if d > 0 then r := mag_sub !r (mag_mul_small bk d);
      q.(k) <- d
    done;
    (mag_normalize q, !r)
  end

(* --- signed layer --- *)

let make sign mag =
  let mag = mag_normalize mag in
  if Array.length mag = 0 then zero else { sign; mag }

(* Fast path: values whose magnitude fits in two digits (< 2^60) are
   handled with native int arithmetic.  Schedulability formulas rarely
   leave this range, and the generic schoolbook routines are an order of
   magnitude slower. *)
let to_small t =
  match Array.length t.mag with
  | 0 -> Some 0
  | 1 -> Some (t.sign * t.mag.(0))
  | 2 -> Some (t.sign * ((t.mag.(1) * base) + t.mag.(0)))
  | _ -> None

let of_small n =
  (* |n| < 2^62 always representable in <= 3 digits *)
  if n = 0 then zero
  else begin
    let sign = if n > 0 then 1 else -1 in
    let m = abs n in
    let d0 = m land base_mask in
    let d1 = (m lsr base_bits) land base_mask in
    let d2 = m lsr (2 * base_bits) in
    let mag = if d2 <> 0 then [| d0; d1; d2 |] else if d1 <> 0 then [| d0; d1 |] else [| d0 |] in
    { sign; mag }
  end

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n > 0 then 1 else -1 in
    (* careful with min_int: work with a non-negative accumulator via abs on
       the fly using the division loop below, which handles min_int because
       we negate digit-wise *)
    let rec digits n acc = if n = 0 then acc else digits (n lsr base_bits) ((n land base_mask) :: acc) in
    let n_abs = abs n in
    if n_abs >= 0 then
      let ds = List.rev (digits n_abs []) in
      make sign (Array.of_list ds)
    else begin
      (* n = min_int: abs overflowed.  min_int = -2^62 on 64-bit. *)
      let m = -(n / 2) in
      let half = digits m [] |> List.rev |> Array.of_list in
      let dbl = mag_mul_small half 2 in
      make sign dbl
    end
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)
let sign t = t.sign
let is_zero t = t.sign = 0

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then mag_compare a.mag b.mag
  else mag_compare b.mag a.mag

let equal a b = compare a b = 0
let hash t = Hashtbl.hash (t.sign, t.mag)
let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let add a b =
  match (to_small a, to_small b) with
  | Some x, Some y -> of_small (x + y) (* |x|,|y| < 2^61: no overflow *)
  | _ ->
    if a.sign = 0 then b
    else if b.sign = 0 then a
    else if a.sign = b.sign then { sign = a.sign; mag = mag_add a.mag b.mag }
    else begin
      let c = mag_compare a.mag b.mag in
      if c = 0 then zero
      else if c > 0 then { sign = a.sign; mag = mag_sub a.mag b.mag }
      else { sign = b.sign; mag = mag_sub b.mag a.mag }
    end

let sub a b = add a (neg b)
let succ a = add a one
let pred a = sub a one

let mul a b =
  match (to_small a, to_small b) with
  | Some x, Some y when Stdlib.abs x < (1 lsl 31) && Stdlib.abs y < (1 lsl 31) ->
    of_small (x * y)
  | _ ->
    if a.sign = 0 || b.sign = 0 then zero
    else { sign = a.sign * b.sign; mag = mag_mul a.mag b.mag }

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  match (to_small a, to_small b) with
  | Some x, Some y -> (of_small (x / y), of_small (x mod y))
  | _ ->
    let q_mag, r_mag = mag_divmod a.mag b.mag in
    let q = make (a.sign * b.sign) q_mag in
    let r = make a.sign r_mag in
    (q, r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let fdivmod a b =
  let q, r = divmod a b in
  if r.sign <> 0 && r.sign <> b.sign then (pred q, add r b) else (q, r)

let fdiv a b = fst (fdivmod a b)

let gcd a b =
  match (to_small a, to_small b) with
  | Some x, Some y ->
    let rec go a b = if b = 0 then a else go b (a mod b) in
    of_small (go (Stdlib.abs x) (Stdlib.abs y))
  | _ ->
    let rec go a b = if is_zero b then a else go b (rem a b) in
    go (abs a) (abs b)

let lcm a b = if is_zero a || is_zero b then zero else abs (div (mul a b) (gcd a b))

let pow b n =
  if n < 0 then invalid_arg "Bignum.pow: negative exponent";
  let rec go acc b n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc b) (mul b b) (n lsr 1)
    else go acc (mul b b) (n lsr 1)
  in
  go one b n

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let to_int_opt t =
  let rec go i acc =
    if i < 0 then Some acc
    else if acc > (max_int - t.mag.(i)) / base then None
    else go (i - 1) ((acc * base) + t.mag.(i))
  in
  match go (Array.length t.mag - 1) 0 with
  | None ->
    (* the magnitude of min_int does not fit in a positive int; special-case *)
    if t.sign < 0 && equal t (of_int Stdlib.min_int) then Some Stdlib.min_int else None
  | Some m -> Some (if t.sign < 0 then -m else m)

let to_int_exn t =
  match to_int_opt t with
  | Some n -> n
  | None -> failwith "Bignum.to_int_exn: value out of int range"

let ten_pow_9 = 1_000_000_000

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let chunks = ref [] in
    let m = ref t.mag in
    while Array.length !m > 0 do
      let q, r = mag_divmod_small !m ten_pow_9 in
      chunks := r :: !chunks;
      m := q
    done;
    let buf = Buffer.create 32 in
    if t.sign < 0 then Buffer.add_char buf '-';
    (match !chunks with
     | [] -> assert false
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bignum.of_string: empty string";
  let negative, start =
    match s.[0] with '-' -> (true, 1) | '+' -> (false, 1) | _ -> (false, 0)
  in
  if start >= n then invalid_arg "Bignum.of_string: no digits";
  let acc = ref zero in
  let t10 = of_int 10 in
  for i = start to n - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bignum.of_string: invalid digit";
    acc := add (mul !acc t10) (of_int (Char.code c - Char.code '0'))
  done;
  if negative then neg !acc else !acc

let to_float t =
  let f = Array.fold_right (fun d acc -> (acc *. float_of_int base) +. float_of_int d) t.mag 0.0 in
  if t.sign < 0 then -.f else f

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
