(** Combined tests.

    Section 6 concludes that no single bound dominates: "different
    schedulability bounds should be applied together, i.e., determine
    that a taskset is unschedulable only if all tests fail."  These
    combinators implement that advice for each scheduling algorithm. *)

type named_test = string * (fpga_area:int -> Model.Taskset.t -> bool)

val for_edf_nf : named_test list
(** DP, GN1 and GN2 — all three are sound for EDF-NF. *)

val for_edf_fkf : named_test list
(** DP and GN2 — GN1 relies on the EDF-NF skipping rule and is not
    applicable to EDF-FkF. *)

val any : named_test list -> fpga_area:int -> Model.Taskset.t -> bool
(** Accept iff at least one test accepts. *)

val accepting : named_test list -> fpga_area:int -> Model.Taskset.t -> string list
(** Names of the tests that accept. *)

val edf_nf_any : fpga_area:int -> Model.Taskset.t -> bool
val edf_fkf_any : fpga_area:int -> Model.Taskset.t -> bool
