(** Demand-bound functions and exact uniprocessor EDF analysis.

    Inside one partition of Danne & Platzner's partitioned scheme
    (Section 7 / [10]) execution is serialized, so schedulability reduces
    to uniprocessor EDF, which is decided {e exactly} by the
    processor-demand criterion (Baruah/Rosier/Howell):

    {v forall t > 0:  dbf(t) <= t
       dbf(t) = sum_i max(0, floor((t - D_i)/T_i) + 1) * C_i v}

    Only the absolute-deadline instants up to a bounded horizon need
    checking.  For [UT < 1] the busy-period / Baruah bound

    {v  t* = max_i(T_i - D_i) * UT / (1 - UT)  v}

    caps the horizon (together with the hyper-period); for [UT = 1] the
    hyper-period alone suffices for synchronous periodic sets.

    This is strictly tighter than the density test
    [sum C_i/min(D_i,T_i) <= 1] used as the quick partition check: a
    constrained-deadline set can fail density yet satisfy the demand
    criterion at every point. *)

val demand : Model.Taskset.t -> at:Model.Time.t -> Model.Time.t
(** [dbf(at)]: the cumulative execution demand of jobs released at or
    after 0 with absolute deadline at most [at] (synchronous release). *)

val check_points : ?horizon_cap:Model.Time.t -> Model.Taskset.t -> Model.Time.t list
(** The absolute deadlines in [(0, horizon]] at which the criterion must
    be evaluated, where the horizon is the minimum of the hyper-period,
    the Baruah bound (when [UT < 1]) and [horizon_cap] (default 10^4
    time units).  Sorted ascending. *)

type result =
  | Schedulable
  | Overloaded  (** [UT > 1]: trivially infeasible on one processor *)
  | Demand_exceeds of { at : Model.Time.t; demand : Model.Time.t }
  | Horizon_truncated
      (** no violation found, but the exact horizon exceeded the cap, so
          the answer is only "no violation up to the cap" *)

val uniprocessor_edf : ?horizon_cap:Model.Time.t -> Model.Taskset.t -> result
(** Exact EDF schedulability of the taskset on one processor (areas are
    ignored). *)

val schedulable : ?horizon_cap:Model.Time.t -> Model.Taskset.t -> bool
(** [uniprocessor_edf] returned [Schedulable]. *)

val pp_result : Format.formatter -> result -> unit
