(** Exact-rational views of task parameters, shared by all tests. *)

type task_q = {
  index : int;
  area : int;  (** [A_i], integer columns *)
  area_q : Rat.t;
  c : Rat.t;  (** execution time [C_i] in time units *)
  d : Rat.t;  (** relative deadline [D_i] *)
  t : Rat.t;  (** period [T_i] *)
}

val of_taskset : Model.Taskset.t -> task_q array
val time_utilization : task_q -> Rat.t
val system_utilization : task_q -> Rat.t
val density : task_q -> Rat.t
val amax : task_q array -> int
val amin : task_q array -> int
val total_ut : task_q array -> Rat.t
val total_us : task_q array -> Rat.t
