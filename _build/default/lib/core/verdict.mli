(** Common result shape for schedulability tests.

    Every test in this library is {e sufficient}: [accepted = true]
    guarantees schedulability under the test's scheduling algorithm, while
    [accepted = false] is inconclusive.  The per-task records keep the
    exact rational left/right-hand sides so a rejection can be audited
    against the paper's worked examples. *)

type task_check = {
  task_index : int;  (** the [k] of the per-task condition *)
  satisfied : bool;
  lhs : Rat.t;  (** evaluated left-hand side *)
  rhs : Rat.t;  (** evaluated bound *)
  note : string;  (** human-readable detail (e.g. which lambda succeeded) *)
}

type t = {
  test_name : string;
  accepted : bool;
  checks : task_check list;  (** one per task, in taskset order *)
}

val accepted : t -> bool
val make : test_name:string -> checks:task_check list -> t
(** [accepted] is the conjunction of all per-task [satisfied] flags. *)

val reject_all : test_name:string -> note:string -> Model.Taskset.t -> t
(** A verdict rejecting every task with the same note (used for
    precondition failures such as a task wider than the device). *)

val failing_tasks : t -> int list
val pp : Format.formatter -> t -> unit
