lib/core/report.ml: Dp Format Gn1 Gn2 List Model Printf Rat String Verdict
