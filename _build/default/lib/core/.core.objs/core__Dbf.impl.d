lib/core/dbf.ml: Bignum Format Hashtbl List Model Rat
