lib/core/partitioned.ml: Dbf Format List Model Option Rat String
