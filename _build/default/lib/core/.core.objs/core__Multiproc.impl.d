lib/core/multiproc.ml: Array Dp Gn1 Gn2 List Model Params Rat
