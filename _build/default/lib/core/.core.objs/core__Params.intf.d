lib/core/params.mli: Model Rat
