lib/core/verdict.ml: Format List Model Rat
