lib/core/multiproc.mli: Model Verdict
