lib/core/feasibility.mli: Format Model Rat
