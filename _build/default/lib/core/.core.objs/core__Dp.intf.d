lib/core/dp.mli: Model Rat Verdict
