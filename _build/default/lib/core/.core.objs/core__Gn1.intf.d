lib/core/gn1.mli: Bignum Model Rat Verdict
