lib/core/gn2.mli: Model Rat Verdict
