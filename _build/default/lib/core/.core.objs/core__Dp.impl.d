lib/core/dp.ml: Array Model Params Rat Verdict
