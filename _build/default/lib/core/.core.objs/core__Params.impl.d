lib/core/params.ml: Array List Model Rat
