lib/core/composite.ml: Dp Gn1 Gn2 List Model
