lib/core/gn2.ml: Array Format List Params Rat Stdlib Verdict
