lib/core/dbf.mli: Format Model
