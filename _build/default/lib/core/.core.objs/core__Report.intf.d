lib/core/report.mli: Format Model Rat Verdict
