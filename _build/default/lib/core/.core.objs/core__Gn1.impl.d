lib/core/gn1.ml: Array Bignum List Params Rat Verdict
