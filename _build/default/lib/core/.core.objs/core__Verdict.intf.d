lib/core/verdict.mli: Format Model Rat
