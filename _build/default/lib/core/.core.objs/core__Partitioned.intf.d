lib/core/partitioned.mli: Format Model Rat
