lib/core/feasibility.ml: Array Format Fun List Model Rat String
