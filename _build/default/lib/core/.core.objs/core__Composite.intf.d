lib/core/composite.mli: Model
