(** Human-readable multi-test reports for one taskset. *)

type t = {
  fpga_area : int;
  taskset : Model.Taskset.t;
  verdicts : Verdict.t list;
  time_utilization : Rat.t;
  system_utilization : Rat.t;
}

val run : ?tests:(fpga_area:int -> Model.Taskset.t -> Verdict.t) list -> fpga_area:int -> Model.Taskset.t -> t
(** Default tests: DP, GN1, GN2. *)

val summary_line : t -> string
(** e.g. ["DP:ACCEPT GN1:REJECT GN2:REJECT"]. *)

val pp : Format.formatter -> t -> unit
