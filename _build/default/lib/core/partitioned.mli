(** Partitioned scheduling (Danne & Platzner, RAW 2006; Section 7).

    The alternative to global scheduling the paper cites: the FPGA is cut
    into fixed-width partitions, each task is bound to one partition, and
    execution within a partition is serialized, reducing the problem to
    bin-packing followed by uniprocessor EDF analysis.  We implement the
    classic first-fit-decreasing allocation and the (exact for implicit
    deadlines, sufficient otherwise) density condition
    [sum C_i / min(D_i, T_i) <= 1] per partition.

    Used as a baseline in the ablation benchmarks: global EDF-NF with the
    combined tests versus partitioned allocation. *)

type partition = { width : int; tasks : Model.Task.t list; load : Rat.t }
(** [load] is the partition's total density. *)

type plan = { partitions : partition list; unassigned : Model.Task.t list }

type uniproc_test =
  | Density  (** [sum C/min(D,T) <= 1]: fast, sufficient, exact for implicit deadlines *)
  | Demand_bound  (** the exact processor-demand criterion ({!Dbf}) *)

val first_fit_decreasing : ?test:uniproc_test -> fpga_area:int -> Model.Taskset.t -> plan
(** Tasks sorted by decreasing area; each goes to the first existing
    partition that is wide enough and stays feasible under [test]
    (default [Density]); otherwise a new partition of exactly the task's
    width is opened if the remaining device width allows, else the task
    stays unassigned. *)

val schedulable : ?test:uniproc_test -> plan -> bool
(** Everything assigned and every partition feasible under [test]. *)

val accepts : ?test:uniproc_test -> fpga_area:int -> Model.Taskset.t -> bool
(** [schedulable (first_fit_decreasing ...)]. *)

val used_width : plan -> int
val pp : Format.formatter -> plan -> unit
