(** Necessary feasibility conditions.

    The sufficient tests (DP/GN1/GN2) under-approximate schedulability and
    simulation over-approximates it.  This module gives cheap {e
    necessary} conditions — a taskset failing any of them is infeasible
    under {e every} scheduling algorithm, work-conserving or not:

    - per-task sanity: [C_k <= min(D_k, T_k)];
    - area-time demand: [US(Gamma) <= A(H)] — the device supplies at most
      [A(H)] column-units per time unit;
    - mutual-exclusion chains: tasks that pairwise cannot share the device
      ([A_i + A_j > A(H)]) serialize, so every clique of pairwise-exclusive
      tasks must satisfy [sum C_i/T_i <= 1] (utilization, not density — a
      necessary condition must not overestimate long-run demand).
      Maximal cliques are found greedily — exact maximum-clique is
      exponential, and any clique yields a valid necessary condition.

    In sweeps this bounds the true schedulability curve from above
    independently of the simulation horizon. *)

val exclusive : fpga_area:int -> Model.Task.t -> Model.Task.t -> bool
(** The two tasks can never execute concurrently. *)

val exclusion_cliques : fpga_area:int -> Model.Taskset.t -> int list list
(** Greedy maximal cliques (task indices) of the pairwise-exclusion
    graph; singleton cliques are omitted. *)

type violation =
  | Exec_exceeds_window of int  (** task index with [C > min(D,T)] *)
  | Device_overloaded of { us : Rat.t }  (** [US > A(H)] *)
  | Clique_overloaded of { tasks : int list; load : Rat.t }
      (** pairwise-exclusive tasks with total utilization > 1 *)

val check : fpga_area:int -> Model.Taskset.t -> violation list
(** All detected violations (empty = possibly feasible). *)

val feasible_maybe : fpga_area:int -> Model.Taskset.t -> bool
(** No necessary condition is violated.  [false] certifies
    infeasibility; [true] is inconclusive. *)

val pp_violation : Format.formatter -> violation -> unit
