type task_q = { index : int; area : int; area_q : Rat.t; c : Rat.t; d : Rat.t; t : Rat.t }

let of_task index (task : Model.Task.t) =
  {
    index;
    area = task.area;
    area_q = Rat.of_int task.area;
    c = Model.Time.to_rat task.exec;
    d = Model.Time.to_rat task.deadline;
    t = Model.Time.to_rat task.period;
  }

let of_taskset ts = Array.of_list (List.mapi of_task (Model.Taskset.to_list ts))
let time_utilization q = Rat.div q.c q.t
let system_utilization q = Rat.mul (time_utilization q) q.area_q
let density q = Rat.div q.c q.d
let amax qs = Array.fold_left (fun acc q -> max acc q.area) 0 qs
let amin qs = Array.fold_left (fun acc q -> min acc q.area) max_int qs
let total_ut qs = Array.fold_left (fun acc q -> Rat.add acc (time_utilization q)) Rat.zero qs
let total_us qs = Array.fold_left (fun acc q -> Rat.add acc (system_utilization q)) Rat.zero qs
