let width_one ts = List.for_all (fun (t : Model.Task.t) -> t.area = 1) (Model.Taskset.to_list ts)

let require_width_one name ts =
  if not (width_one ts) then invalid_arg (name ^ ": taskset must have all areas = 1")

let gfb_direct ~m ts =
  require_width_one "Multiproc.gfb_direct" ts;
  let qs = Params.of_taskset ts in
  let umax =
    Array.fold_left (fun acc q -> Rat.max acc (Params.time_utilization q)) Rat.zero qs
  in
  let bound = Rat.add (Rat.mul (Rat.of_int m) (Rat.sub Rat.one umax)) umax in
  Rat.compare (Params.total_ut qs) bound <= 0

let gfb ~m ts =
  require_width_one "Multiproc.gfb" ts;
  Dp.decide ~fpga_area:m ts

let bcl ~m ts =
  require_width_one "Multiproc.bcl" ts;
  Gn1.decide ~fpga_area:m ts

let bak2 ~m ts =
  require_width_one "Multiproc.bak2" ts;
  Gn2.decide ~fpga_area:m ts
