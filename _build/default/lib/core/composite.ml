type named_test = string * (fpga_area:int -> Model.Taskset.t -> bool)

let for_edf_nf : named_test list =
  [ ("DP", Dp.accepts); ("GN1", Gn1.accepts); ("GN2", Gn2.accepts) ]

let for_edf_fkf : named_test list = [ ("DP", Dp.accepts); ("GN2", Gn2.accepts) ]
let any tests ~fpga_area ts = List.exists (fun (_, test) -> test ~fpga_area ts) tests

let accepting tests ~fpga_area ts =
  List.filter_map (fun (name, test) -> if test ~fpga_area ts then Some name else None) tests

let edf_nf_any ~fpga_area ts = any for_edf_nf ~fpga_area ts
let edf_fkf_any ~fpga_area ts = any for_edf_fkf ~fpga_area ts
