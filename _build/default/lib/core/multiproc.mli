(** Multiprocessor specialisations.

    Section 1 observes that global scheduling on [m] identical processors
    is the special case of 1-D FPGA scheduling where every task has width
    1 and [A(H) = m]; under that reduction EDF-FkF and EDF-NF coincide
    with global EDF, DP specialises to Goossens/Funk/Baruah's GFB bound,
    GN1 to Bertogna/Cirinei/Lipari's BCL, and GN2 to Baker's BAK2.  This
    module exposes those multiprocessor tests both through the reduction
    (reusing the FPGA implementations) and, for GFB, as the direct
    textbook formula — the equality of the two is checked by the test
    suite, which cross-validates the FPGA code against 20 years of
    multiprocessor literature. *)

val width_one : Model.Taskset.t -> bool
(** All task areas equal 1. *)

val gfb_direct : m:int -> Model.Taskset.t -> bool
(** GFB: [UT(Gamma) <= m (1 - umax) + umax] with [umax = max C_i/T_i].
    Implicit deadlines assumed (deadlines are ignored: [C/T] is used).
    @raise Invalid_argument when the taskset is not width-1. *)

val gfb : m:int -> Model.Taskset.t -> Verdict.t
(** DP under the width-1 reduction. *)

val bcl : m:int -> Model.Taskset.t -> Verdict.t
(** GN1 under the width-1 reduction. *)

val bak2 : m:int -> Model.Taskset.t -> Verdict.t
(** GN2 under the width-1 reduction. *)
