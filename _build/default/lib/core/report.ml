type t = {
  fpga_area : int;
  taskset : Model.Taskset.t;
  verdicts : Verdict.t list;
  time_utilization : Rat.t;
  system_utilization : Rat.t;
}

let default_tests = [ Dp.decide; Gn1.decide; Gn2.decide ]

let run ?(tests = default_tests) ~fpga_area ts =
  {
    fpga_area;
    taskset = ts;
    verdicts = List.map (fun test -> test ~fpga_area ts) tests;
    time_utilization = Model.Taskset.time_utilization ts;
    system_utilization = Model.Taskset.system_utilization ts;
  }

let summary_line t =
  String.concat " "
    (List.map
       (fun (v : Verdict.t) ->
         Printf.sprintf "%s:%s" v.Verdict.test_name (if Verdict.accepted v then "ACCEPT" else "REJECT"))
       t.verdicts)

let pp fmt t =
  Format.fprintf fmt "@[<v>FPGA area A(H) = %d@,taskset: %a@,UT = %a (%a)  US = %a (%a)@,"
    t.fpga_area Model.Taskset.pp t.taskset Rat.pp t.time_utilization Rat.pp_approx
    t.time_utilization Rat.pp t.system_utilization Rat.pp_approx t.system_utilization;
  List.iter (fun v -> Format.fprintf fmt "%a@," Verdict.pp v) t.verdicts;
  Format.fprintf fmt "@]"
