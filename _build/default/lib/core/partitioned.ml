type partition = { width : int; tasks : Model.Task.t list; load : Rat.t }
type plan = { partitions : partition list; unassigned : Model.Task.t list }
type uniproc_test = Density | Demand_bound

let density (task : Model.Task.t) =
  let d = Model.Time.to_rat task.deadline and t = Model.Time.to_rat task.period in
  Rat.div (Model.Time.to_rat task.exec) (Rat.min d t)

let used_width plan = List.fold_left (fun acc p -> acc + p.width) 0 plan.partitions

(* feasibility of a task list on one serialized partition *)
let tasks_feasible test tasks =
  match tasks with
  | [] -> true
  | _ -> (
    match test with
    | Density ->
      Rat.compare (Rat.sum (List.map density tasks)) Rat.one <= 0
    | Demand_bound -> Dbf.schedulable (Model.Taskset.of_list tasks))

let first_fit_decreasing ?(test = Density) ~fpga_area ts =
  let tasks =
    List.sort
      (fun (a : Model.Task.t) (b : Model.Task.t) -> compare b.area a.area)
      (Model.Taskset.to_list ts)
  in
  let place plan (task : Model.Task.t) =
    let fits p = task.area <= p.width && tasks_feasible test (task :: p.tasks) in
    let rec into = function
      | [] -> None
      | p :: rest when fits p ->
        Some ({ p with tasks = task :: p.tasks; load = Rat.add p.load (density task) } :: rest)
      | p :: rest -> Option.map (fun r -> p :: r) (into rest)
    in
    match into plan.partitions with
    | Some partitions -> { plan with partitions }
    | None ->
      if used_width plan + task.area <= fpga_area && tasks_feasible test [ task ] then
        {
          plan with
          partitions =
            plan.partitions @ [ { width = task.area; tasks = [ task ]; load = density task } ];
        }
      else { plan with unassigned = task :: plan.unassigned }
  in
  List.fold_left place { partitions = []; unassigned = [] } tasks

let schedulable ?(test = Density) plan =
  plan.unassigned = [] && List.for_all (fun p -> tasks_feasible test p.tasks) plan.partitions

let accepts ?(test = Density) ~fpga_area ts =
  schedulable ~test (first_fit_decreasing ~test ~fpga_area ts)

let pp fmt plan =
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i p ->
      Format.fprintf fmt "partition %d (width %d, density %a): %s@," i p.width Rat.pp_approx p.load
        (String.concat ", " (List.map (fun (t : Model.Task.t) -> t.name) p.tasks)))
    plan.partitions;
  if plan.unassigned <> [] then
    Format.fprintf fmt "unassigned: %s@,"
      (String.concat ", " (List.map (fun (t : Model.Task.t) -> t.name) plan.unassigned));
  Format.fprintf fmt "@]"
