type rect = { x : int; y : int; w : int; h : int }

type 'a t = {
  gw : int;
  gh : int;
  occ : bool array; (* row-major occupancy; true = occupied *)
  mutable placed : ('a * rect) list;
}

let create ~width ~height =
  if width < 1 || height < 1 then invalid_arg "Grid2d.create: dimensions must be >= 1";
  { gw = width; gh = height; occ = Array.make (width * height) false; placed = [] }

let width t = t.gw
let height t = t.gh
let cells t = t.gw * t.gh
let idx t x y = (y * t.gw) + x
let occupied_cells t = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.occ
let free_cells t = cells t - occupied_cells t
let placements t = t.placed

let region_free t r =
  let ok = ref true in
  for y = r.y to r.y + r.h - 1 do
    for x = r.x to r.x + r.w - 1 do
      if t.occ.(idx t x y) then ok := false
    done
  done;
  !ok

let mark t r v =
  for y = r.y to r.y + r.h - 1 do
    for x = r.x to r.x + r.w - 1 do
      t.occ.(idx t x y) <- v
    done
  done

let place_at t ~tag r =
  if r.x < 0 || r.y < 0 || r.w < 1 || r.h < 1 || r.x + r.w > t.gw || r.y + r.h > t.gh then
    invalid_arg "Grid2d.place_at: rectangle out of bounds";
  if not (region_free t r) then invalid_arg "Grid2d.place_at: rectangle overlaps";
  mark t r true;
  t.placed <- (tag, r) :: t.placed

let find_spot t ~w ~h =
  if w < 1 || h < 1 || w > t.gw || h > t.gh then
    invalid_arg "Grid2d: rectangle dimensions out of range";
  let found = ref None in
  (try
     for y = 0 to t.gh - h do
       for x = 0 to t.gw - w do
         if region_free t { x; y; w; h } then begin
           found := Some { x; y; w; h };
           raise Exit
         end
       done
     done
   with Exit -> ());
  !found

let place t ~tag ~w ~h =
  match find_spot t ~w ~h with
  | None -> None
  | Some r ->
    mark t r true;
    t.placed <- (tag, r) :: t.placed;
    Some r

let can_place t ~w ~h = find_spot t ~w ~h <> None

let remove t ~equal tag =
  match List.partition (fun (tg, _) -> equal tg tag) t.placed with
  | [], _ -> false
  | removed, kept ->
    List.iter (fun (_, r) -> mark t r false) removed;
    t.placed <- kept;
    true

let fragmentation t =
  let free = free_cells t in
  if free = 0 then 0.0
  else begin
    (* largest placeable square, by probing decreasing sizes *)
    let side = ref (min t.gw t.gh) in
    while !side > 0 && not (can_place t ~w:!side ~h:!side) do
      decr side
    done;
    1.0 -. (float_of_int (!side * !side) /. float_of_int free)
  end

let clear t =
  Array.fill t.occ 0 (Array.length t.occ) false;
  t.placed <- []
