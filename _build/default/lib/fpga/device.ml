type region = { start : int; width : int }

(* Placements kept sorted by start column; free blocks are derived.  The
   device holds at most a few dozen concurrent placements, so linear scans
   are simpler and fast enough. *)
type 'a t = { total : int; mutable placed : ('a * region) list }

let create ~area =
  if area < 1 then invalid_arg "Device.create: area must be >= 1";
  { total = area; placed = [] }

let area t = t.total
let placements t = t.placed
let occupied_area t = List.fold_left (fun acc (_, r) -> acc + r.width) 0 t.placed
let free_area t = t.total - occupied_area t

let free_blocks t =
  let rec go cursor = function
    | [] -> if cursor < t.total then [ { start = cursor; width = t.total - cursor } ] else []
    | (_, r) :: rest ->
      let gap = r.start - cursor in
      let tail = go (r.start + r.width) rest in
      if gap > 0 then { start = cursor; width = gap } :: tail else tail
  in
  go 0 t.placed

let largest_free_block t = List.fold_left (fun acc r -> max acc r.width) 0 (free_blocks t)

let fragmentation t =
  let free = free_area t in
  if free = 0 then 0.0 else 1.0 -. (float_of_int (largest_free_block t) /. float_of_int free)

type strategy = First_fit | Best_fit | Worst_fit

let insert_sorted t tag region =
  let rec go = function
    | [] -> [ (tag, region) ]
    | ((_, r) :: _) as rest when region.start < r.start -> (tag, region) :: rest
    | p :: rest -> p :: go rest
  in
  t.placed <- go t.placed

let place ?(strategy = First_fit) t ~tag ~width =
  if width < 1 then invalid_arg "Device.place: width must be >= 1";
  if width > t.total then invalid_arg "Device.place: width exceeds device area";
  let candidates = List.filter (fun r -> r.width >= width) (free_blocks t) in
  let chosen =
    match (strategy, candidates) with
    | _, [] -> None
    | First_fit, c :: _ -> Some c
    | Best_fit, c :: cs ->
      Some (List.fold_left (fun best r -> if r.width < best.width then r else best) c cs)
    | Worst_fit, c :: cs ->
      Some (List.fold_left (fun best r -> if r.width > best.width then r else best) c cs)
  in
  match chosen with
  | None -> None
  | Some block ->
    let region = { start = block.start; width } in
    insert_sorted t tag region;
    Some region

let overlaps a b = a.start < b.start + b.width && b.start < a.start + a.width

let place_at t ~tag region =
  if region.start < 0 || region.width < 1 || region.start + region.width > t.total then
    invalid_arg "Device.place_at: region out of bounds";
  if List.exists (fun (_, r) -> overlaps r region) t.placed then
    invalid_arg "Device.place_at: region overlaps an existing placement";
  insert_sorted t tag region

let remove t ~equal tag =
  let before = List.length t.placed in
  t.placed <- List.filter (fun (tg, _) -> not (equal tg tag)) t.placed;
  List.length t.placed < before

let compact t =
  let _, compacted =
    List.fold_left
      (fun (cursor, acc) (tag, r) -> (cursor + r.width, (tag, { start = cursor; width = r.width }) :: acc))
      (0, []) t.placed
  in
  t.placed <- List.rev compacted

let fits_contiguous t width = largest_free_block t >= width
let fits_total t width = free_area t >= width
let clear t = t.placed <- []
