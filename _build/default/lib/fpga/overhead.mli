(** FPGA reconfiguration overhead (assumption 3 of Section 1).

    The paper assumes zero reconfiguration overhead but notes that real
    partial reconfiguration costs milliseconds, roughly proportional to
    the reconfigured area, and that the analysis extends "by adding it to
    the execution time".  This module implements exactly that extension:
    an overhead model and a taskset transformation that charges each job
    one (worst-case) reconfiguration per release. *)

type model =
  | Zero
  | Constant of Model.Time.t  (** fixed cost per placement *)
  | Per_column of Model.Time.t  (** cost = per-column time * task area *)

val cost : model -> area:int -> Model.Time.t
(** Worst-case reconfiguration delay for placing a task of this area. *)

val inflate_task : model -> Model.Task.t -> Model.Task.t
(** Adds the placement cost to the execution time.
    @raise Invalid_argument if the inflated execution time exceeds the
    deadline and the period (such a task can trivially never be
    scheduled; callers should treat the set as unschedulable instead). *)

val inflate_taskset : model -> Model.Taskset.t -> Model.Taskset.t option
(** [None] when some task's inflated execution time exceeds its deadline
    or period (the set is certainly unschedulable with this overhead). *)

val pp_model : Format.formatter -> model -> unit
