(** 2-D reconfigurable FPGA model (Section 7 future work).

    Tasks occupy axis-aligned rectangles of CLBs.  Unlike the 1-D model
    with unrestricted migration, 2-D placement suffers genuine
    fragmentation: free cells may be plentiful yet no placement exists.
    This module provides a simple occupancy-grid device with bottom-left
    first-fit placement, which the ablation benchmarks use to quantify the
    schedulability gap between the paper's 1-D assumption and a 2-D
    device. *)

type rect = { x : int; y : int; w : int; h : int }

type 'a t

val create : width:int -> height:int -> 'a t
(** @raise Invalid_argument on non-positive dimensions. *)

val width : _ t -> int
val height : _ t -> int
val cells : _ t -> int
val free_cells : _ t -> int
val occupied_cells : _ t -> int
val placements : 'a t -> ('a * rect) list

val place : 'a t -> tag:'a -> w:int -> h:int -> rect option
(** Bottom-left first-fit: scan positions row-major and take the first
    where the [w * h] rectangle is entirely free.
    @raise Invalid_argument when [w] or [h] is out of range. *)

val place_at : 'a t -> tag:'a -> rect -> unit
(** @raise Invalid_argument on overlap or out-of-bounds. *)

val remove : 'a t -> equal:('a -> 'a -> bool) -> 'a -> bool

val can_place : _ t -> w:int -> h:int -> bool

val fragmentation : _ t -> float
(** [1 - largest placeable square area / free cells] estimated by probing;
    [0] on an empty or full grid. *)

val clear : _ t -> unit
