lib/fpga/overhead.ml: Format List Model
