lib/fpga/overhead.mli: Format Model
