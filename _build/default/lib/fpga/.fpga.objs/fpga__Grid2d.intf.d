lib/fpga/grid2d.mli:
