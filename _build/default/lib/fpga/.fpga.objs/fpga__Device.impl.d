lib/fpga/device.ml: List
