lib/fpga/grid2d.ml: Array List
