lib/fpga/device.mli:
