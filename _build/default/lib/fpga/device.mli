(** 1-D partially runtime-reconfigurable FPGA model.

    The device is a row of [area] columns (Section 2).  Placements occupy a
    contiguous set of columns.  The paper's main analysis assumes
    unrestricted migration — a job fits iff its width is at most the total
    free area, because active jobs can be rearranged at zero cost — but
    this module also implements real contiguous allocation (first/best/
    worst-fit) and explicit compaction so the simulator can quantify what
    restricted migration costs (a future-work item of Section 7). *)

type region = { start : int; width : int }
(** Columns [\[start, start + width)]. *)

type 'a t
(** A device whose placements are tagged with values of type ['a]. *)

val create : area:int -> 'a t
(** @raise Invalid_argument when [area < 1]. *)

val area : _ t -> int
val free_area : _ t -> int
val occupied_area : _ t -> int
val placements : 'a t -> ('a * region) list
(** Current placements, ordered by start column. *)

val largest_free_block : _ t -> int
(** Width of the widest contiguous free region. *)

val free_blocks : _ t -> region list

val fragmentation : _ t -> float
(** [1 - largest_free_block / free_area]; [0] when the device is empty,
    fully occupied, or the free space is one block. *)

type strategy = First_fit | Best_fit | Worst_fit

val place : ?strategy:strategy -> 'a t -> tag:'a -> width:int -> region option
(** Allocate [width] contiguous columns, or [None] when no free block is
    wide enough.  Default strategy is [First_fit].
    @raise Invalid_argument when [width < 1] or [width > area]. *)

val place_at : 'a t -> tag:'a -> region -> unit
(** Forced placement at a specific region (used by compaction and tests).
    @raise Invalid_argument when the region overlaps an existing placement
    or exceeds the device. *)

val remove : 'a t -> equal:('a -> 'a -> bool) -> 'a -> bool
(** Remove the placement whose tag matches; [false] when absent. *)

val compact : 'a t -> unit
(** Defragment: slide every placement as far left as possible, preserving
    order.  Models the paper's zero-cost unrestricted migration; afterwards
    the free area is one contiguous block. *)

val fits_contiguous : _ t -> int -> bool
(** Is there a single free block of at least this width? *)

val fits_total : _ t -> int -> bool
(** Is the total free area at least this width?  Under unrestricted
    migration this is the paper's fit criterion. *)

val clear : _ t -> unit
