module Time = Model.Time
module Task = Model.Task
module Taskset = Model.Taskset

type model = Zero | Constant of Time.t | Per_column of Time.t

let cost model ~area =
  match model with
  | Zero -> Time.zero
  | Constant c -> c
  | Per_column per -> Time.mul_int per area

let inflate_exec model (task : Task.t) = Time.add task.exec (cost model ~area:task.area)

let inflatable model (task : Task.t) =
  let exec = inflate_exec model task in
  Time.(exec <= task.deadline) && Time.(exec <= task.period)

let inflate_task model (task : Task.t) =
  if not (inflatable model task) then
    invalid_arg "Overhead.inflate_task: inflated execution exceeds deadline or period";
  { task with exec = inflate_exec model task }

let inflate_taskset model ts =
  let tasks = Taskset.to_list ts in
  if List.for_all (inflatable model) tasks then
    Some (Taskset.of_list (List.map (inflate_task model) tasks))
  else None

let pp_model fmt = function
  | Zero -> Format.pp_print_string fmt "zero"
  | Constant c -> Format.fprintf fmt "constant %a" Time.pp c
  | Per_column c -> Format.fprintf fmt "%a/column" Time.pp c
