lib/experiment/incomparability.mli: Model Rng
