lib/experiment/figures.ml: List Model Sweep
