lib/experiment/sweep.mli: Model Sim
