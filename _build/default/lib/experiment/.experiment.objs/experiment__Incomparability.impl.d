lib/experiment/incomparability.ml: Hashtbl List Model Option
