lib/experiment/sweep.ml: Array Buffer Char Core Float List Model Printf Rat Rng Sim String
