lib/experiment/figures.mli: Model Sweep
