(** The paper's four evaluation figures as ready-to-run sweep configs. *)

type figure =
  | Fig3a  (** 4 tasks, unconstrained execution-time and area distributions *)
  | Fig3b  (** 10 tasks, unconstrained *)
  | Fig4a  (** 10 spatially heavy, temporally light tasks *)
  | Fig4b  (** 10 spatially light, temporally heavy tasks *)

val all : figure list
val id : figure -> string
(** e.g. ["fig3a"]. *)

val caption : figure -> string
val profile : figure -> Model.Generator.profile

val config : ?samples:int -> ?seed:int -> ?sim_horizon:Model.Time.t -> figure -> Sweep.config
(** The sweep reproducing the figure; defaults from
    {!Sweep.default_config}.  Utilization points above the profile's
    reachable maximum are pruned. *)

val expectations : figure -> string list
(** The qualitative claims the paper draws from this figure (used by
    EXPERIMENTS.md and the bench harness's self-check output). *)
