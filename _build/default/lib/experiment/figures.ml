type figure = Fig3a | Fig3b | Fig4a | Fig4b

let all = [ Fig3a; Fig3b; Fig4a; Fig4b ]
let id = function Fig3a -> "fig3a" | Fig3b -> "fig3b" | Fig4a -> "fig4a" | Fig4b -> "fig4b"

let caption = function
  | Fig3a -> "Figure 3(a): 4 tasks, unconstrained execution time and area size distributions"
  | Fig3b -> "Figure 3(b): 10 tasks, unconstrained execution time and area size distributions"
  | Fig4a -> "Figure 4(a): 10 spatially heavy and temporally light tasks"
  | Fig4b -> "Figure 4(b): 10 spatially light and temporally heavy tasks"

let profile = function
  | Fig3a -> Model.Generator.unconstrained ~n:4
  | Fig3b -> Model.Generator.unconstrained ~n:10
  | Fig4a -> Model.Generator.spatially_heavy_temporally_light ~n:10
  | Fig4b -> Model.Generator.spatially_light_temporally_heavy ~n:10

let config ?samples ?seed ?sim_horizon figure =
  let p = profile figure in
  let base = Sweep.default_config ~profile:p in
  let base = match samples with Some s -> { base with Sweep.samples = s } | None -> base in
  let base = match seed with Some s -> { base with Sweep.seed = s } | None -> base in
  let base =
    match sim_horizon with Some h -> { base with Sweep.sim_horizon = h } | None -> base
  in
  let base =
    match figure with
    | Fig4b ->
      (* temporally-heavy utilizations (0.6,1) leave almost no room for
         the rescaling trick, so bucket unconditioned draws as the paper
         does; the natural US of this profile spans roughly 40-125 *)
      {
        base with
        Sweep.conditioning = Sweep.Binned;
        Sweep.targets = List.init 22 (fun i -> float_of_int ((i + 4) * 5));
      }
    | Fig3a | Fig3b | Fig4a -> base
  in
  let reachable = Model.Generator.max_reachable_us p in
  { base with Sweep.targets = List.filter (fun u -> u <= reachable *. 0.95) base.Sweep.targets }

let expectations = function
  | Fig3a ->
    [
      "all three tests are pessimistic compared to simulation";
      "GN1 performs best among the tests for a small number of tasks";
    ]
  | Fig3b ->
    [
      "all three tests are pessimistic compared to simulation";
      "DP performs best among the tests for a large number of tasks";
    ]
  | Fig4a -> [ "all three tests exhibit poor performance on spatially-heavy tasksets" ]
  | Fig4b -> [ "GN1 performs best and DP worst on temporally-heavy tasksets" ]
