(** Automated search for discriminating tasksets.

    Tables 1-3 exhibit one taskset per test that only that test accepts,
    proving DP, GN1 and GN2 pairwise incomparable.  This module finds such
    witnesses by random search, showing the tables are not cherry-picked
    artifacts of specific parameters: on most workload profiles each test
    has a region of unique strength.

    A witness for test [X] is a taskset accepted by [X] and rejected by
    every other test in the family. *)

type witness = {
  taskset : Model.Taskset.t;
  unique_test : string;  (** the only accepting test *)
  draws_used : int;
}

val find_unique :
  ?max_draws:int ->
  rng:Rng.t ->
  profile:Model.Generator.profile ->
  tests:(string * (fpga_area:int -> Model.Taskset.t -> bool)) list ->
  target:string ->
  unit ->
  witness option
(** Draw tasksets from [profile] until one is accepted by [target] alone
    (among [tests]), or give up after [max_draws] (default 20000).
    @raise Invalid_argument when [target] is not among [tests]. *)

val find_all :
  ?max_draws:int ->
  rng:Rng.t ->
  profile:Model.Generator.profile ->
  tests:(string * (fpga_area:int -> Model.Taskset.t -> bool)) list ->
  unit ->
  (string * witness option) list
(** One search per test in the family. *)

val incidence :
  ?draws:int ->
  rng:Rng.t ->
  profile:Model.Generator.profile ->
  tests:(string * (fpga_area:int -> Model.Taskset.t -> bool)) list ->
  unit ->
  (string list * int) list
(** Empirical joint acceptance: for [draws] random tasksets, how many
    were accepted by each subset of tests (keyed by the sorted list of
    accepting test names; the all-reject class is keyed by []).  A direct
    quantification of Section 6's "no single test dominates". *)
