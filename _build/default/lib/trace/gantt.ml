module Time = Model.Time
module Engine = Sim.Engine

let render ?(columns = 72) ~fpga_area taskset result =
  match result.Engine.segments with
  | [] -> "(no trace recorded; run the simulation with record_trace = true)"
  | segments ->
    let tasks = Model.Taskset.to_array taskset in
    let n = Array.length tasks in
    let t_end =
      List.fold_left (fun acc (s : Engine.segment) -> Time.max acc s.t1) Time.zero segments
    in
    let end_ticks = max 1 (Time.ticks t_end) in
    let bucket_of t = min (columns - 1) (Time.ticks t * columns / end_ticks) in
    (* per task x bucket: 0 = idle, 1 = waiting, 2 = running *)
    let cells = Array.make_matrix n columns 0 in
    let occupancy = Array.make columns 0 in
    let weight = Array.make columns 0 in
    List.iter
      (fun (seg : Engine.segment) ->
        let b0 = bucket_of seg.t0 and b1 = bucket_of (Time.sub seg.t1 (Time.of_ticks 1)) in
        for b = b0 to b1 do
          let occupied =
            List.fold_left (fun acc p -> acc + Sim.Job.area p.Engine.job) 0 seg.running
          in
          occupancy.(b) <- occupancy.(b) + occupied;
          weight.(b) <- weight.(b) + 1;
          List.iter
            (fun p -> cells.(p.Engine.job.Sim.Job.task_index).(b) <- 2)
            seg.running;
          List.iter
            (fun (j : Sim.Job.t) ->
              if cells.(j.task_index).(b) < 1 then cells.(j.task_index).(b) <- 1)
            seg.waiting
        done)
      segments;
    let buf = Buffer.create 1024 in
    let name_width =
      Array.fold_left (fun acc (t : Model.Task.t) -> max acc (String.length t.name)) 4 tasks
    in
    Array.iteri
      (fun i (task : Model.Task.t) ->
        Buffer.add_string buf (Printf.sprintf "%-*s |" name_width task.name);
        for b = 0 to columns - 1 do
          Buffer.add_char buf (match cells.(i).(b) with 2 -> '#' | 1 -> '.' | _ -> ' ')
        done;
        Buffer.add_string buf "|\n")
      tasks;
    (* occupancy row: digit 0-9 proportional to used fraction *)
    Buffer.add_string buf (Printf.sprintf "%-*s |" name_width "area");
    for b = 0 to columns - 1 do
      let avg = if weight.(b) = 0 then 0 else occupancy.(b) / weight.(b) in
      let level = if fpga_area = 0 then 0 else min 9 (avg * 10 / fpga_area) in
      Buffer.add_char buf (if avg = 0 then ' ' else Char.chr (Char.code '0' + level))
    done;
    Buffer.add_string buf "|\n";
    (match result.Engine.outcome with
     | Engine.No_miss ->
       Buffer.add_string buf
         (Printf.sprintf "window [0, %s], no deadline miss\n" (Time.to_string t_end))
     | Engine.Miss m ->
       Buffer.add_string buf
         (Printf.sprintf "deadline miss: task %d at t=%s\n" (m.task_index + 1) (Time.to_string m.at)));
    Buffer.contents buf
