lib/trace/measure.ml: Array List Model Sim
