lib/trace/checker.ml: Format Fpga Hashtbl Int List Model Printf Sim
