lib/trace/gantt.ml: Array Buffer Char List Model Printf Sim String
