lib/trace/checker.mli: Format Model Sim
