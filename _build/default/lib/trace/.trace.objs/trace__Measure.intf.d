lib/trace/measure.mli: Model Sim
