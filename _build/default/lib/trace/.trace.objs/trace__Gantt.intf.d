lib/trace/gantt.mli: Model Sim
