(** ASCII Gantt rendering of simulated schedules.

    One row per task plus a device-occupancy row, for the examples and the
    CLI's [simulate --gantt].  Each character cell covers an equal slice
    of the traced window: ['#'] the task executed during the slice,
    ['.'] it had an active job waiting the whole slice, [' '] it was
    inactive, ['X'] the slice contains the deadline miss that ended the
    simulation. *)

val render : ?columns:int -> fpga_area:int -> Model.Taskset.t -> Sim.Engine.result -> string
(** Requires the result to have been recorded with [record_trace = true];
    returns an explanatory placeholder otherwise.  [columns] is the chart
    width in characters (default 72). *)
