module Time = Model.Time
module Engine = Sim.Engine

(* one pre-digested segment: everything the Section-2 quantities need *)
type seg = {
  t0 : int; (* ticks *)
  t1 : int;
  occupied : int;
  running : (int * int) list; (* (task_index, area), one entry per running job *)
  active : int list; (* task indices with at least one active job *)
}

type t = { segs : seg array }

let of_result (r : Engine.result) =
  if r.Engine.segments = [] then
    invalid_arg "Measure.of_result: empty trace (record_trace was off?)";
  let digest (s : Engine.segment) =
    let running =
      List.map (fun p -> (p.Engine.job.Sim.Job.task_index, Sim.Job.area p.Engine.job)) s.running
    in
    let active_running = List.map fst running in
    let active_waiting = List.map (fun j -> j.Sim.Job.task_index) s.waiting in
    {
      t0 = Time.ticks s.t0;
      t1 = Time.ticks s.t1;
      occupied = List.fold_left (fun acc (_, a) -> acc + a) 0 running;
      running;
      active = List.sort_uniq compare (active_running @ active_waiting);
    }
  in
  { segs = Array.of_list (List.map digest r.Engine.segments) }

let span t =
  (Time.of_ticks t.segs.(0).t0, Time.of_ticks t.segs.(Array.length t.segs - 1).t1)

(* clamped overlap of a segment with [lo, hi), in ticks *)
let overlap seg ~lo ~hi = max 0 (min seg.t1 hi - max seg.t0 lo)

let fold_segments t ~lo ~hi f init =
  let lo = Time.ticks lo and hi = Time.ticks hi in
  Array.fold_left
    (fun acc seg ->
      let dt = overlap seg ~lo ~hi in
      if dt > 0 then f acc seg dt else acc)
    init t.segs

let task_running seg task = List.exists (fun (i, _) -> i = task) seg.running

let time_work t ~task ~lo ~hi =
  Time.of_ticks
    (fold_segments t ~lo ~hi (fun acc seg dt -> if task_running seg task then acc + dt else acc) 0)

let system_work t ~lo ~hi =
  fold_segments t ~lo ~hi (fun acc seg dt -> acc + (seg.occupied * dt)) 0

let interference t ~task ~lo ~hi =
  Time.of_ticks
    (fold_segments t ~lo ~hi
       (fun acc seg dt ->
         if List.mem task seg.active && not (task_running seg task) then acc + dt else acc)
       0)

let block_busy seg ~fpga_area ~amax = fpga_area - seg.occupied <= amax - 1

let block_busy_time t ~fpga_area ~amax ~lo ~hi =
  Time.of_ticks
    (fold_segments t ~lo ~hi
       (fun acc seg dt -> if block_busy seg ~fpga_area ~amax then acc + dt else acc)
       0)

let task_block_busy t ~task ~fpga_area ~amax ~lo ~hi =
  Time.of_ticks
    (fold_segments t ~lo ~hi
       (fun acc seg dt ->
         if block_busy seg ~fpga_area ~amax && task_running seg task then acc + dt else acc)
       0)

let busy_interval_start t ~task ~ending_at =
  let ending = Time.ticks ending_at in
  (* walk segments backwards from [ending_at]; stop at the first gap in
     the task's activity *)
  let start = ref ending in
  (try
     for i = Array.length t.segs - 1 downto 0 do
       let seg = t.segs.(i) in
       if seg.t0 < !start && seg.t1 > seg.t0 then begin
         (* only segments that touch the current frontier extend it *)
         if seg.t1 >= !start && seg.t0 < !start then begin
           if List.mem task seg.active then start := seg.t0 else raise Exit
         end
       end
     done
   with Exit -> ());
  Time.of_ticks !start
