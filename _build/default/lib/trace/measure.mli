(** The measured quantities of Section 2, computed from recorded traces.

    The paper's analysis is built on a small vocabulary — time work
    [WT_i], system work [WS], interference [I_k], block busy time [B] and
    [B_i], and the [tau_k]-busy interval — whose governing lemmas (5-10)
    are deferred to a technical report.  This module computes each
    quantity exactly (integer ticks) from a simulation trace, so the test
    suite can audit the lemmas on real schedules instead of trusting
    them.

    All intervals are half-open [\[lo, hi)] and clamped to the traced
    window.  The trace must have been recorded with
    [record_trace = true]. *)

type t

val of_result : Sim.Engine.result -> t
(** @raise Invalid_argument on an empty trace. *)

val span : t -> Model.Time.t * Model.Time.t
(** First instant and last instant covered by the trace. *)

val time_work : t -> task:int -> lo:Model.Time.t -> hi:Model.Time.t -> Model.Time.t
(** [WT_i(lo, hi)]: total time during which some job of task [i]
    executes within the interval (Section 2). *)

val system_work : t -> lo:Model.Time.t -> hi:Model.Time.t -> int
(** [WS(lo, hi)] in column-ticks: the sum over tasks of
    [WT_i * A_i] (Section 2). *)

val interference : t -> task:int -> lo:Model.Time.t -> hi:Model.Time.t -> Model.Time.t
(** [I_k(lo, hi)]: total time during which task [k] has an active job
    but none of its jobs is executing — the time it is preempted or
    blocked. *)

val block_busy_time :
  t -> fpga_area:int -> amax:int -> lo:Model.Time.t -> hi:Model.Time.t -> Model.Time.t
(** [B(lo, hi)]: the time during which the idle area is at most
    [Amax - 1], i.e. occupied area is at least [A(H) - Amax + 1]
    (the paper's block busy intervals). *)

val task_block_busy :
  t -> task:int -> fpga_area:int -> amax:int -> lo:Model.Time.t -> hi:Model.Time.t -> Model.Time.t
(** [B_i(lo, hi)]: the time task [i] executes within block busy time. *)

val busy_interval_start : t -> task:int -> ending_at:Model.Time.t -> Model.Time.t
(** Start of the maximal [tau_k]-busy interval ending at [ending_at]:
    the earliest [s] such that task [k] has an active job (executing or
    waiting) throughout [\[s, ending_at)].  Returns [ending_at] itself
    when the task is inactive immediately before [ending_at]. *)
