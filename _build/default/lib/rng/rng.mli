(** Deterministic pseudo-random number generation.

    The paper's figures average acceptance ratios over >= 10000 random
    tasksets per point; reproducibility of those experiments requires a
    seedable, stable generator independent of the OCaml stdlib's evolving
    [Random] implementation.  This module implements xoshiro256** seeded by
    SplitMix64 (Blackman & Vigna), the de-facto standard for simulation
    workloads. *)

type t

val create : seed:int -> t
(** A fresh generator; equal seeds yield equal streams. *)

val copy : t -> t

val split : t -> t
(** A generator with an independent stream derived from (and advancing)
    [t]; used to give each experiment bucket its own stream. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform on [\[0, bound)]. [bound] must be positive.
    @raise Invalid_argument otherwise. *)

val int_incl : t -> int -> int -> int
(** [int_incl t lo hi] is uniform on [\[lo, hi\]]. @raise Invalid_argument
    when [lo > hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform on [\[0, bound)]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform on [\[lo, hi)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. @raise Invalid_argument on
    empty input. *)
