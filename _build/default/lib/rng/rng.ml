(* xoshiro256** 1.0 with SplitMix64 seeding, after Blackman & Vigna.
   State is four nonzero-together int64 words. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64_next st in
  let s1 = splitmix64_next st in
  let s2 = splitmix64_next st in
  let s3 = splitmix64_next st in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let st = ref (bits64 t) in
  let s0 = splitmix64_next st in
  let s1 = splitmix64_next st in
  let s2 = splitmix64_next st in
  let s3 = splitmix64_next st in
  { s0; s1; s2; s3 }

(* top 62 bits as a non-negative int *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* rejection sampling to avoid modulo bias *)
  let limit = (max_int / bound) * bound in
  let rec draw () =
    let v = bits62 t in
    if v < limit then v mod bound else draw ()
  in
  draw ()

let int_incl t lo hi =
  if lo > hi then invalid_arg "Rng.int_incl: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform bits in [0,1) *)
  let u = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) /. 9007199254740992.0 in
  u *. bound

let float_range t lo hi = lo +. float t (hi -. lo)
let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
