lib/sim/exhaustive.mli: Engine Model Policy
