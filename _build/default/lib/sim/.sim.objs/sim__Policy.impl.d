lib/sim/policy.ml: Format Int Job List Model Rat
