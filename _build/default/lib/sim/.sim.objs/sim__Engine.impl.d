lib/sim/engine.ml: Array Fpga Hashtbl Int Job List Model Policy Pqueue Rng
