lib/sim/policy.mli: Format Job Rat
