lib/sim/engine.mli: Fpga Job Model Policy
