lib/sim/exhaustive.ml: Engine List Model
