lib/sim/job.ml: Format Int Model
