lib/sim/job.mli: Format Model
