type fit_rule = Fkf | Nf
type order = Edf | Us_first of { threshold : Rat.t; measure : [ `Time | `System ] }
type t = { order : order; rule : fit_rule }

let edf_fkf = { order = Edf; rule = Fkf }
let edf_nf = { order = Edf; rule = Nf }
let edf_us ~threshold ~measure ~rule = { order = Us_first { threshold; measure }; rule }

let is_heavy ~threshold ~measure ~fpga_area (task : Model.Task.t) =
  let u =
    match measure with
    | `Time -> Model.Task.time_utilization task
    | `System -> Rat.div (Model.Task.system_utilization task) (Rat.of_int fpga_area)
  in
  Rat.compare u threshold > 0

let order_queue t ~fpga_area jobs =
  match t.order with
  | Edf -> List.sort Job.compare_edf jobs
  | Us_first { threshold; measure } ->
    let heavy j = is_heavy ~threshold ~measure ~fpga_area j.Job.task in
    let cmp a b =
      match (heavy a, heavy b) with
      | true, false -> -1
      | false, true -> 1
      | true, true ->
        let c = Int.compare a.Job.task_index b.Job.task_index in
        if c <> 0 then c else Int.compare a.Job.id b.Job.id
      | false, false -> Job.compare_edf a b
    in
    List.sort cmp jobs

let pp fmt t =
  let rule = match t.rule with Fkf -> "FkF" | Nf -> "NF" in
  match t.order with
  | Edf -> Format.fprintf fmt "EDF-%s" rule
  | Us_first { threshold; measure } ->
    Format.fprintf fmt "EDF-US[%a,%s]-%s" Rat.pp threshold
      (match measure with `Time -> "time" | `System -> "system")
      rule
