(** Scheduling policies.

    A policy is an ordering of the active-job queue plus a fit rule that
    turns the ordered queue into a running set:

    - {b EDF-FkF} (Definition 1): deadline order, take the longest prefix
      that fits — a job that does not fit blocks everything behind it.
    - {b EDF-NF} (Definition 2): deadline order, greedily take every job
      that fits, skipping (not blocking on) jobs that do not.
    - {b EDF-US} (Section 7 future work, after Srinivasan & Baruah): give
      top priority to high-utilization tasks, EDF order among the rest;
      the paper suggests measuring "high utilization" by system rather
      than time utilization on an FPGA, so both measures are provided. *)

type fit_rule = Fkf | Nf

type order =
  | Edf  (** Definitions 1 and 2 *)
  | Us_first of { threshold : Rat.t; measure : [ `Time | `System ] }
      (** Tasks whose utilization exceeds [threshold] come first (among
          themselves in task-index order), remaining jobs in EDF order.
          [`Time] compares [C/T]; [`System] compares [C*A/(T*A(H))]. *)

type t = { order : order; rule : fit_rule }

val edf_fkf : t
val edf_nf : t

val edf_us : threshold:Rat.t -> measure:[ `Time | `System ] -> rule:fit_rule -> t

val order_queue : t -> fpga_area:int -> Job.t list -> Job.t list
(** Sorts active jobs into the policy's priority order. *)

val pp : Format.formatter -> t -> unit
