(** Job instances (the [J{^j}{_k}] of Section 2). *)

type t = {
  id : int;  (** globally unique within one simulation, release order *)
  task_index : int;  (** index of the task in the taskset *)
  task : Model.Task.t;
  release : Model.Time.t;  (** absolute release instant [r] *)
  abs_deadline : Model.Time.t;  (** absolute deadline [r + D] *)
  mutable remaining : Model.Time.t;  (** execution time still owed *)
}

val make : id:int -> task_index:int -> task:Model.Task.t -> release:Model.Time.t -> t

val is_finished : t -> bool

val compare_edf : t -> t -> int
(** The queue order of Definitions 1 and 2: non-decreasing absolute
    deadline, ties broken by release time, then by id (a deterministic
    total order). *)

val area : t -> int
val pp : Format.formatter -> t -> unit
