module Time = Model.Time

type t = {
  id : int;
  task_index : int;
  task : Model.Task.t;
  release : Time.t;
  abs_deadline : Time.t;
  mutable remaining : Time.t;
}

let make ~id ~task_index ~task ~release =
  {
    id;
    task_index;
    task;
    release;
    abs_deadline = Time.add release task.Model.Task.deadline;
    remaining = task.Model.Task.exec;
  }

let is_finished j = not (Time.is_positive j.remaining)

let compare_edf a b =
  let c = Time.compare a.abs_deadline b.abs_deadline in
  if c <> 0 then c
  else
    let c = Time.compare a.release b.release in
    if c <> 0 then c else Int.compare a.id b.id

let area j = j.task.Model.Task.area

let pp fmt j =
  Format.fprintf fmt "J%d[%s r=%a d=%a rem=%a]" j.id j.task.Model.Task.name Time.pp j.release
    Time.pp j.abs_deadline Time.pp j.remaining
