module Time = Model.Time

type outcome =
  | Schedulable_all_offsets of { combinations : int }
  | Miss_with_offsets of { offsets : Time.t list; miss : Engine.miss }
  | Too_many_combinations of { combinations : int }
  | Hyperperiod_too_large

(* offsets per task: 0, grid, 2*grid, ... < T_i *)
let offset_choices grid (task : Model.Task.t) =
  let g = Time.ticks grid and p = Time.ticks task.period in
  let n = (p + g - 1) / g in
  List.init n (fun k -> Time.of_ticks (k * g))

let count_combinations choices =
  List.fold_left
    (fun acc l ->
      let n = List.length l in
      if acc > max_int / max 1 n then max_int else acc * n)
    1 choices

let rec enumerate choices k =
  match choices with
  | [] -> k []
  | first :: rest ->
    List.find_map (fun o -> enumerate rest (fun tail -> k (o :: tail))) first

let search ?(grid = Time.of_units 1) ?(max_combinations = 20_000) ~fpga_area ~policy ts =
  match Model.Taskset.hyperperiod ts with
  | Model.Taskset.Exceeds_cap -> Hyperperiod_too_large
  | Model.Taskset.Finite hyper ->
    let choices = List.map (offset_choices grid) (Model.Taskset.to_list ts) in
    let combinations = count_combinations choices in
    if combinations > max_combinations then Too_many_combinations { combinations }
    else begin
      let try_offsets offsets =
        let max_offset = List.fold_left Time.max Time.zero offsets in
        (* asynchronous periodic schedules need the transient plus a full
           steady-state period: simulate max offset + 2 hyper-periods *)
        let cfg = Engine.default_config ~fpga_area ~policy in
        let cfg =
          {
            cfg with
            Engine.horizon = Time.add max_offset (Time.mul_int hyper 2);
            Engine.release = Engine.Offsets offsets;
          }
        in
        match (Engine.run cfg ts).Engine.outcome with
        | Engine.No_miss -> None
        | Engine.Miss miss -> Some (Miss_with_offsets { offsets; miss })
      in
      match enumerate choices try_offsets with
      | Some result -> result
      | None -> Schedulable_all_offsets { combinations }
    end

let sync_is_not_worst_case ?grid ~fpga_area ~policy ts =
  let cfg = Engine.default_config ~fpga_area ~policy in
  let sync_ok =
    match Model.Taskset.hyperperiod ts with
    | Model.Taskset.Exceeds_cap -> None
    | Model.Taskset.Finite hyper ->
      Some (Engine.schedulable { cfg with Engine.horizon = hyper } ts)
  in
  match sync_ok with
  | None -> None
  | Some false -> Some false (* sync already misses: it is a worst case here *)
  | Some true -> (
    match search ?grid ~fpga_area ~policy ts with
    | Miss_with_offsets _ -> Some true
    | Schedulable_all_offsets _ -> Some false
    | Too_many_combinations _ | Hyperperiod_too_large -> None)
