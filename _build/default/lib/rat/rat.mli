(** Exact rational arithmetic over {!Bignum}.

    Every schedulability bound in the paper (DP, GN1, GN2 and the
    multiprocessor specialisations) is evaluated in this field so that
    accept/reject decisions at exact equality points — e.g. the DP test on
    the paper's Table 1, where utilization and bound are both exactly
    [69/25] — are certified rather than subject to floating-point rounding.

    Values are kept normalised: positive denominator, numerator and
    denominator coprime, zero represented as [0/1]. *)

type t

val zero : t
val one : t
val two : t
val minus_one : t

val make : Bignum.t -> Bignum.t -> t
(** [make num den] is the normalised rational [num/den].
    @raise Division_by_zero when [den] is zero. *)

val of_int : int -> t
val of_ints : int -> int -> t
(** [of_ints n d] = [n/d]. @raise Division_by_zero when [d = 0]. *)

val of_bignum : Bignum.t -> t

val of_decimal_string : string -> t
(** Parses e.g. ["1.26"], ["-0.5"], ["42"] exactly (base-10 fixed point).
    @raise Invalid_argument on malformed input. *)

val num : t -> Bignum.t
val den : t -> Bignum.t
(** Denominator; always positive. *)

val sign : t -> int
val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero when dividing by zero. *)

val inv : t -> t
(** @raise Division_by_zero on zero. *)

val min : t -> t -> t
val max : t -> t -> t
val clamp : lo:t -> hi:t -> t -> t

val floor : t -> Bignum.t
(** Largest integer [<= t]. *)

val ceil : t -> Bignum.t
(** Smallest integer [>= t]. *)

val floor_int : t -> int
(** @raise Failure when the result does not fit in an [int]. *)

val sum : t list -> t

val to_float : t -> float
val to_string : t -> string
(** ["num/den"], or just ["num"] for integers. *)

val pp : Format.formatter -> t -> unit

val pp_approx : Format.formatter -> t -> unit
(** Decimal approximation to 4 places, for human-readable reports. *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
