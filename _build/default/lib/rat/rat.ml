module B = Bignum

type t = { num : B.t; den : B.t }

(* normalise: den > 0, gcd(num, den) = 1, zero is 0/1 *)
let make num den =
  if B.is_zero den then raise Division_by_zero;
  if B.is_zero num then { num = B.zero; den = B.one }
  else begin
    let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
    let g = B.gcd num den in
    { num = B.div num g; den = B.div den g }
  end

let zero = { num = B.zero; den = B.one }
let of_int n = { num = B.of_int n; den = B.one }
let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)
let of_ints n d = make (B.of_int n) (B.of_int d)
let of_bignum n = { num = n; den = B.one }
let num t = t.num
let den t = t.den
let sign t = B.sign t.num
let is_zero t = B.is_zero t.num

let of_decimal_string s =
  match String.index_opt s '.' with
  | None -> make (B.of_string s) B.one
  | Some i ->
    let int_part = String.sub s 0 i in
    let frac_part = String.sub s (i + 1) (String.length s - i - 1) in
    if frac_part = "" then invalid_arg "Rat.of_decimal_string: trailing dot";
    let negative = String.length int_part > 0 && int_part.[0] = '-' in
    let scale = B.pow (B.of_int 10) (String.length frac_part) in
    let ip = if int_part = "" || int_part = "-" || int_part = "+" then B.zero else B.of_string int_part in
    let fp = B.of_string frac_part in
    if B.sign fp < 0 then invalid_arg "Rat.of_decimal_string: sign in fraction";
    let n = B.add (B.mul (B.abs ip) scale) fp in
    make (if negative then B.neg n else n) scale

let add a b = make (B.add (B.mul a.num b.den) (B.mul b.num a.den)) (B.mul a.den b.den)
let neg a = { a with num = B.neg a.num }
let sub a b = add a (neg b)
let mul a b = make (B.mul a.num b.num) (B.mul a.den b.den)
let div a b = if B.is_zero b.num then raise Division_by_zero else make (B.mul a.num b.den) (B.mul a.den b.num)
let inv a = div one a
let abs a = { a with num = B.abs a.num }
let compare a b = B.compare (B.mul a.num b.den) (B.mul b.num a.den)
let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let clamp ~lo ~hi x = min hi (max lo x)
let floor t = B.fdiv t.num t.den

let ceil t =
  let q, r = B.fdivmod t.num t.den in
  if B.is_zero r then q else B.succ q

let floor_int t = B.to_int_exn (floor t)
let sum l = List.fold_left add zero l
let to_float t = B.to_float t.num /. B.to_float t.den

let to_string t =
  if B.equal t.den B.one then B.to_string t.num
  else B.to_string t.num ^ "/" ^ B.to_string t.den

let pp fmt t = Format.pp_print_string fmt (to_string t)
let pp_approx fmt t = Format.fprintf fmt "%.4f" (to_float t)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
