(** Polymorphic binary min-heap.

    Event queue substrate for the discrete-event scheduler simulator: the
    simulator keeps job releases and completions ordered by timestamp, and
    the ready queue ordered by absolute deadline. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** An empty heap ordered by [cmp] (minimum first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum element without removing it. *)

val pop : 'a t -> 'a option
(** Removes and returns the minimum element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val drain : 'a t -> 'a list
(** Removes all elements in ascending order. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
val to_list : 'a t -> 'a list
(** Snapshot in unspecified order; the heap is unchanged. *)

val clear : 'a t -> unit
