(* A software-defined radio with two operating modes.

   The radio runs on a 60-column PRTR FPGA.  In NARROWBAND mode the
   device hosts a slow but wide filter bank; in WIDEBAND mode it swaps in
   a faster channelizer plus a Viterbi decoder.  Admission control must
   certify each mode before a mode change is allowed.

   This example shows why the paper insists on applying the tests
   together: each mode is certified by a different test (the tests are
   pairwise incomparable), and a naive controller that only trusted one
   bound would refuse a perfectly schedulable mode.  It also exercises
   the EDF-US hybrid on the wideband mode's heavy task.

   Run with:  dune exec examples/software_radio.exe *)

let fpga_area = 10

(* The two modes are (deliberately) the paper's Table 1 and Table 3
   tasksets wearing radio clothes: mode A is certified only by DP, mode B
   only by GN2, so an admission controller trusting a single bound would
   wrongly refuse one of them. *)
let narrowband =
  Model.Taskset.of_list
    [
      Model.Task.of_decimal ~name:"filter-bank" ~exec:"1.26" ~deadline:"7" ~period:"7" ~area:9 ();
      Model.Task.of_decimal ~name:"agc" ~exec:"0.95" ~deadline:"5" ~period:"5" ~area:6 ();
    ]

let wideband =
  Model.Taskset.of_list
    [
      Model.Task.of_decimal ~name:"channelizer" ~exec:"2.10" ~deadline:"5" ~period:"5" ~area:7 ();
      Model.Task.of_decimal ~name:"viterbi" ~exec:"2.00" ~deadline:"7" ~period:"7" ~area:7 ();
    ]

let certify name ts =
  Format.printf "@.--- mode %s ---@." name;
  Format.printf "%a@." Model.Taskset.pp ts;
  let report = Core.Report.run ~fpga_area ts in
  Format.printf "verdicts: %s@." (Core.Report.summary_line report);
  match Core.Composite.accepting Core.Composite.for_edf_nf ~fpga_area ts with
  | [] ->
    Format.printf "ADMISSION DENIED: no bound certifies the mode@.";
    false
  | names ->
    Format.printf "admitted (certified by %s)@." (String.concat ", " names);
    true

let () =
  Format.printf "software radio on a %d-column PRTR FPGA@." fpga_area;
  let nb = certify "NARROWBAND" narrowband in
  let wb = certify "WIDEBAND" wideband in
  if nb && wb then
    Format.printf
      "@.mode change admissible in both directions; each mode was certified by a@.different \
       bound, which is exactly the pairwise incomparability of Section 6.@.";

  (* EDF-US on the wideband mode: 'channelizer' has time utilization
     0.42, above the 1/3 threshold, so it gets top priority. *)
  let policies =
    [
      ("EDF-NF", Sim.Policy.edf_nf);
      ("EDF-FkF", Sim.Policy.edf_fkf);
      ( "EDF-US[1/3]",
        Sim.Policy.edf_us ~threshold:(Rat.of_ints 1 3) ~measure:`Time ~rule:Sim.Policy.Nf );
    ]
  in
  Format.printf "@.simulated wideband mode under different policies (horizon 1000):@.";
  List.iter
    (fun (name, policy) ->
      let cfg = Sim.Engine.default_config ~fpga_area ~policy in
      let cfg = { cfg with Sim.Engine.horizon = Model.Time.of_units 1000 } in
      let r = Sim.Engine.run cfg wideband in
      Format.printf "  %-12s %s (preemptions: %d)@." name
        (match r.Sim.Engine.outcome with
         | Sim.Engine.No_miss -> "all deadlines met"
         | Sim.Engine.Miss m ->
           Printf.sprintf "miss at t=%s" (Model.Time.to_string m.Sim.Engine.at))
        r.Sim.Engine.stats.Sim.Engine.preemptions)
    policies;

  (* What would a reconfiguration overhead of 0.1 ms per column do to the
     wideband certification? *)
  Format.printf "@.wideband admission with reconfiguration overhead folded into C:@.";
  List.iter
    (fun (label, model) ->
      let ok =
        match Fpga.Overhead.inflate_taskset model wideband with
        | None -> false
        | Some ts -> Core.Composite.edf_nf_any ~fpga_area ts
      in
      Format.printf "  overhead %-14s admission %s@." label (if ok then "GRANTED" else "DENIED"))
    [
      ("zero", Fpga.Overhead.Zero);
      ("0.005/column", Fpga.Overhead.Per_column (Model.Time.of_ticks 5));
      ("0.02/column", Fpga.Overhead.Per_column (Model.Time.of_ticks 20));
      ("0.1/column", Fpga.Overhead.Per_column (Model.Time.of_ticks 100));
    ]
