(* Quickstart: define a hardware taskset, run the paper's three
   schedulability tests, and sanity-check the verdict with a simulation.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* A 1-D reconfigurable FPGA with 100 columns. *)
  let fpga_area = 100 in

  (* Three hardware tasks: (C, D, T, A) = execution time, deadline,
     period, columns.  Times are decimal strings parsed exactly. *)
  let taskset =
    Model.Taskset.of_list
      [
        Model.Task.of_decimal ~name:"fft" ~exec:"2.5" ~deadline:"10" ~period:"10" ~area:40 ();
        Model.Task.of_decimal ~name:"aes" ~exec:"1.2" ~deadline:"5" ~period:"5" ~area:25 ();
        Model.Task.of_decimal ~name:"crc" ~exec:"0.8" ~deadline:"4" ~period:"4" ~area:50 ();
      ]
  in
  Format.printf "taskset: %a@." Model.Taskset.pp taskset;
  Format.printf "time utilization UT = %a, system utilization US = %a@.@." Rat.pp_approx
    (Model.Taskset.time_utilization taskset)
    Rat.pp_approx
    (Model.Taskset.system_utilization taskset);

  (* The three utilization-bound tests (all sufficient, pairwise
     incomparable): accept means guaranteed schedulable. *)
  let report = Core.Report.run ~fpga_area taskset in
  Format.printf "%a@." Core.Report.pp report;
  Format.printf "summary: %s@.@." (Core.Report.summary_line report);

  (* Section 6's advice: apply all tests together. *)
  (match Core.Composite.accepting Core.Composite.for_edf_nf ~fpga_area taskset with
   | [] -> Format.printf "no test certifies this taskset under EDF-NF@."
   | names -> Format.printf "certified schedulable under EDF-NF by: %s@." (String.concat ", " names));

  (* Cross-check with a simulation (coarse upper bound, synchronous
     release, paper's model: unrestricted migration). *)
  let cfg = Sim.Engine.default_config ~fpga_area ~policy:Sim.Policy.edf_nf in
  let cfg = { cfg with Sim.Engine.horizon = Model.Time.of_units 40; record_trace = true } in
  let result = Sim.Engine.run cfg taskset in
  Format.printf "@.simulated over [0, 40] time units:@.";
  print_string (Trace.Gantt.render ~fpga_area taskset result)
