(* Sizing an FPGA for a video encoder pipeline.

   The motivating scenario of the paper's introduction: hardware tasks
   (accelerator stages) placed dynamically on a PRTR FPGA.  Here a 30 fps
   encoder runs motion estimation, DCT/quantisation, entropy coding and a
   deblocking filter as periodic hardware tasks, next to a sporadic
   scene-analysis kernel.  The question a designer actually asks: how
   many columns does the device need?

   We sweep the device size, apply the combined analytic test (accept if
   any of DP / GN1 / GN2 accepts — Section 6's advice), and compare with
   the simulation upper bound to see how much headroom the analysis
   leaves.

   Run with:  dune exec examples/video_pipeline.exe *)

let frame_period = "33.3" (* ms at ~30 fps *)

let pipeline =
  Model.Taskset.of_list
    [
      (* stage: C (ms), D, T, columns *)
      Model.Task.of_decimal ~name:"motion-est" ~exec:"11.5" ~deadline:frame_period
        ~period:frame_period ~area:28 ();
      Model.Task.of_decimal ~name:"dct-quant" ~exec:"6.4" ~deadline:frame_period
        ~period:frame_period ~area:17 ();
      Model.Task.of_decimal ~name:"entropy" ~exec:"8.9" ~deadline:frame_period
        ~period:frame_period ~area:12 ();
      Model.Task.of_decimal ~name:"deblock" ~exec:"5.1" ~deadline:frame_period
        ~period:frame_period ~area:14 ();
      (* sporadic scene analysis: fires at most every 4 frames, must
         finish within 2 frames *)
      Model.Task.of_decimal ~name:"scene-scan" ~exec:"21" ~deadline:"66.6" ~period:"133.2"
        ~area:22 ();
    ]

let () =
  Format.printf "video pipeline: %a@." Model.Taskset.pp pipeline;
  Format.printf "UT = %a  US = %a@.@." Rat.pp_approx
    (Model.Taskset.time_utilization pipeline)
    Rat.pp_approx
    (Model.Taskset.system_utilization pipeline);

  Format.printf "%8s %6s %6s %6s %10s %10s@." "A(H)" "DP" "GN1" "GN2" "combined" "sim-NF";
  let sim_ok fpga_area =
    let cfg = Sim.Engine.default_config ~fpga_area ~policy:Sim.Policy.edf_nf in
    Sim.Engine.schedulable { cfg with Sim.Engine.horizon = Model.Time.of_units 2000 } pipeline
  in
  let show b = if b then "yes" else "-" in
  let amax = Model.Taskset.amax pipeline in
  let first_combined = ref None in
  let first_sim = ref None in
  for fpga_area = amax to 100 do
    let dp = Core.Dp.accepts ~fpga_area pipeline in
    let gn1 = Core.Gn1.accepts ~fpga_area pipeline in
    let gn2 = Core.Gn2.accepts ~fpga_area pipeline in
    let combined = dp || gn1 || gn2 in
    let sim = sim_ok fpga_area in
    if combined && !first_combined = None then first_combined := Some fpga_area;
    if sim && !first_sim = None then first_sim := Some fpga_area;
    if fpga_area mod 5 = 0 || combined <> (dp || gn1 || gn2) then
      Format.printf "%8d %6s %6s %6s %10s %10s@." fpga_area (show dp) (show gn1) (show gn2)
        (show combined) (show sim)
  done;
  (match (!first_combined, !first_sim) with
   | Some a, Some s ->
     Format.printf
       "@.smallest device certified by analysis: %d columns@.smallest device that simulates \
        cleanly (upper bound): %d columns@.analysis headroom: %d columns@."
       a s (a - s)
   | _ -> Format.printf "@.the pipeline is not schedulable on any device up to 100 columns@.");

  (* show the schedule on the certified device *)
  match !first_combined with
  | None -> ()
  | Some fpga_area ->
    let cfg = Sim.Engine.default_config ~fpga_area ~policy:Sim.Policy.edf_nf in
    let cfg = { cfg with Sim.Engine.horizon = Model.Time.of_units 140; record_trace = true } in
    let result = Sim.Engine.run cfg pipeline in
    Format.printf "@.schedule on the %d-column device (first 140 ms):@." fpga_area;
    print_string (Trace.Gantt.render ~fpga_area pipeline result)
