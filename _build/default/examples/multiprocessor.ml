(* Multiprocessor scheduling as a special case of FPGA scheduling.

   Section 1 of the paper observes that global EDF on m identical
   processors is exactly 1-D FPGA scheduling with every task one column
   wide and A(H) = m.  Under that reduction the FPGA tests specialise to
   the classic multiprocessor bounds: DP to GFB (Goossens/Funk/Baruah),
   GN1 to BCL (Bertogna/Cirinei/Lipari), GN2 to BAK2 (Baker).

   This example runs the reductions on two classic workloads:

   - the Dhall effect: m light tasks plus one heavy task defeat GFB's
     utilization bound even though total utilization is barely above 1;
   - a heavy-task set where BCL beats GFB, showing why the bounds are
     applied together.

   Run with:  dune exec examples/multiprocessor.exe *)

let cpu name c t = Model.Task.of_decimal ~name ~exec:c ~deadline:t ~period:t ~area:1 ()

let verdict v = if Core.Verdict.accepted v then "accept" else "reject"

let analyse ~m ts =
  Format.printf "  m = %d processors@." m;
  Format.printf "    GFB (direct formula): %s@."
    (if Core.Multiproc.gfb_direct ~m ts then "accept" else "reject");
  Format.printf "    GFB  (= DP reduced) : %s@." (verdict (Core.Multiproc.gfb ~m ts));
  Format.printf "    BCL  (= GN1 reduced): %s@." (verdict (Core.Multiproc.bcl ~m ts));
  Format.printf "    BAK2 (= GN2 reduced): %s@." (verdict (Core.Multiproc.bak2 ~m ts));
  let cfg = Sim.Engine.default_config ~fpga_area:m ~policy:Sim.Policy.edf_nf in
  let cfg = { cfg with Sim.Engine.horizon = Model.Time.of_units 500 } in
  Format.printf "    simulation (sync)   : %s@."
    (if Sim.Engine.schedulable cfg ts then "no miss" else "miss")

let () =
  (* Dhall effect: on m=3 processors, three light tasks (u = 2/eps) plus
     one task with utilization ~1 released together: global EDF misses
     even though U barely exceeds 1.  The bounds must reject. *)
  Format.printf "--- Dhall effect (3 light + 1 heavy) ---@.";
  let dhall =
    Model.Taskset.of_list
      [
        cpu "light1" "0.2" "10"; cpu "light2" "0.2" "10"; cpu "light3" "0.2" "10";
        cpu "heavy" "10.1" "10.2";
      ]
  in
  Format.printf "%a@." Model.Taskset.pp dhall;
  Format.printf "UT = %a@." Rat.pp_approx (Model.Taskset.time_utilization dhall);
  analyse ~m:3 dhall;

  (* A pair of heavy tasks on two processors: trivially schedulable (one
     processor each); GFB's bound is defeated by umax, BCL and BAK2
     accept. *)
  Format.printf "@.--- two heavy tasks on two processors ---@.";
  let heavy = Model.Taskset.of_list [ cpu "h1" "9" "10"; cpu "h2" "9" "10" ] in
  Format.printf "%a@." Model.Taskset.pp heavy;
  analyse ~m:2 heavy;

  (* Light tasks: GFB shines. *)
  Format.printf "@.--- eight light tasks on four processors ---@.";
  let light = Model.Taskset.of_list (List.init 8 (fun i -> cpu (Printf.sprintf "l%d" i) "2" "8")) in
  Format.printf "UT = %a@." Rat.pp_approx (Model.Taskset.time_utilization light);
  analyse ~m:4 light;

  Format.printf
    "@.the same code paths analyse FPGAs and multiprocessors: a multiprocessor is@.just a \
     device whose tasks are all one column wide.@."
