examples/quickstart.mli:
