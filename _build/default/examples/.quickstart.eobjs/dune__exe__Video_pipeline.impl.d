examples/video_pipeline.ml: Core Format Model Rat Sim Trace
