examples/software_radio.ml: Core Format Fpga List Model Printf Rat Sim String
