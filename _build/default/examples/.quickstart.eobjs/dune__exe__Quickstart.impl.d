examples/quickstart.ml: Core Format Model Rat Sim String Trace
