examples/fragmentation_study.ml: Format Fpga Fun List Model Printf Rng Sim Sim2d Trace
