examples/software_radio.mli:
