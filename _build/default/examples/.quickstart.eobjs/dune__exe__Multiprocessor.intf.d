examples/multiprocessor.mli:
