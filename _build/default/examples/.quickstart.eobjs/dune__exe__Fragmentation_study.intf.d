examples/fragmentation_study.mli:
