examples/multiprocessor.ml: Core Format List Model Printf Rat Sim
