(* What the paper's "unrestricted migration" assumption is worth.

   The analysis assumes a job fits whenever its width is at most the
   total free area — running jobs can be compacted at zero cost
   (Section 1, assumption 4).  A real device cannot always afford that:
   without migration a job needs a contiguous free block, and the
   allocator's placement strategy determines how fragmented the free
   space gets.  Section 7 lists this as future work; this example
   quantifies it with the simulator's contiguous placement mode and with
   the 2-D grid device.

   Run with:  dune exec examples/fragmentation_study.exe *)

let fpga_area = 100

let acceptance placement policy sets =
  let ok ts =
    let cfg = Sim.Engine.default_config ~fpga_area ~policy in
    let cfg =
      { cfg with Sim.Engine.horizon = Model.Time.of_units 300; Sim.Engine.placement = placement }
    in
    Sim.Engine.schedulable cfg ts
  in
  float_of_int (List.length (List.filter ok sets)) /. float_of_int (List.length sets)

let () =
  let rng = Rng.create ~seed:2024 in
  let profile = Model.Generator.unconstrained ~n:8 in
  Format.printf "1-D placement: EDF-NF acceptance over 150 random 8-task sets per point@.@.";
  Format.printf "%8s %11s %11s %11s %11s@." "US" "migrating" "first-fit" "best-fit" "worst-fit";
  List.iter
    (fun target ->
      let sets =
        List.filter_map
          (fun _ -> Model.Generator.draw_with_target_us rng profile ~target_us:target)
          (List.init 150 Fun.id)
      in
      if sets <> [] then
        Format.printf "%8.0f %11.3f %11.3f %11.3f %11.3f@." target
          (acceptance Sim.Engine.Migrating Sim.Policy.edf_nf sets)
          (acceptance (Sim.Engine.Contiguous Fpga.Device.First_fit) Sim.Policy.edf_nf sets)
          (acceptance (Sim.Engine.Contiguous Fpga.Device.Best_fit) Sim.Policy.edf_nf sets)
          (acceptance (Sim.Engine.Contiguous Fpga.Device.Worst_fit) Sim.Policy.edf_nf sets))
    [ 50.0; 65.0; 80.0; 90.0 ];

  (* fragmentation metrics on a single adversarial run *)
  Format.printf "@.fragmentation on one adversarial trace (contiguous first-fit):@.";
  let awkward =
    Model.Taskset.of_list
      [
        Model.Task.of_decimal ~name:"wide" ~exec:"3" ~deadline:"8" ~period:"8" ~area:55 ();
        Model.Task.of_decimal ~name:"mid" ~exec:"5" ~deadline:"11" ~period:"11" ~area:30 ();
        Model.Task.of_decimal ~name:"narrow" ~exec:"2" ~deadline:"5" ~period:"5" ~area:25 ();
      ]
  in
  let cfg = Sim.Engine.default_config ~fpga_area ~policy:Sim.Policy.edf_nf in
  let cfg =
    {
      cfg with
      Sim.Engine.horizon = Model.Time.of_units 50;
      record_trace = true;
      placement = Sim.Engine.Contiguous Fpga.Device.First_fit;
    }
  in
  let r = Sim.Engine.run cfg awkward in
  Format.printf "outcome: %s, placements made: %d, preemptions: %d@."
    (match r.Sim.Engine.outcome with
     | Sim.Engine.No_miss -> "no miss"
     | Sim.Engine.Miss m -> Printf.sprintf "miss at %s" (Model.Time.to_string m.Sim.Engine.at))
    r.Sim.Engine.stats.Sim.Engine.placements_made r.Sim.Engine.stats.Sim.Engine.preemptions;
  print_string (Trace.Gantt.render ~fpga_area awkward r);

  (* 2-D device: the same total area, but rectangles fragment in two
     dimensions.  We place the video-pipeline kernels as rectangles and
     watch placement fail long before the free-cell count runs out. *)
  Format.printf "@.2-D device (10x10 grid), bottom-left first-fit:@.";
  let grid : string Fpga.Grid2d.t = Fpga.Grid2d.create ~width:10 ~height:10 in
  let kernels = [ ("me", 5, 4); ("dct", 4, 3); ("vlc", 3, 3); ("dbk", 4, 2); ("ctrl", 2, 2) ] in
  List.iter
    (fun (name, w, h) ->
      match Fpga.Grid2d.place grid ~tag:name ~w ~h with
      | Some r ->
        Format.printf "  placed %-5s %dx%d at (%d,%d); free cells %d, fragmentation %.2f@." name w
          h r.Fpga.Grid2d.x r.Fpga.Grid2d.y (Fpga.Grid2d.free_cells grid)
          (Fpga.Grid2d.fragmentation grid)
      | None ->
        Format.printf "  FAILED to place %-5s %dx%d although %d cells are free (fragmentation %.2f)@."
          name w h (Fpga.Grid2d.free_cells grid) (Fpga.Grid2d.fragmentation grid))
    kernels;
  (* dynamic 2-D scheduling: the same pipeline as periodic tasks on the
     grid, with the engine classifying every rejection as capacity vs
     fragmentation *)
  Format.printf "@.dynamic 2-D scheduling of the kernels (EDF-NF, 30 time units):@.";
  let tasks2d =
    [
      Sim2d.Task2d.of_decimal ~name:"me" ~exec:"4" ~deadline:"10" ~period:"10" ~w:5 ~h:4 ();
      Sim2d.Task2d.of_decimal ~name:"dct" ~exec:"3" ~deadline:"8" ~period:"8" ~w:4 ~h:3 ();
      Sim2d.Task2d.of_decimal ~name:"vlc" ~exec:"3" ~deadline:"6" ~period:"6" ~w:3 ~h:3 ();
      Sim2d.Task2d.of_decimal ~name:"dbk" ~exec:"2" ~deadline:"5" ~period:"5" ~w:4 ~h:2 ();
      Sim2d.Task2d.of_decimal ~name:"ctrl" ~exec:"1" ~deadline:"4" ~period:"4" ~w:2 ~h:2 ();
    ]
  in
  let cfg2d =
    {
      (Sim2d.Engine2d.default_config ~width:10 ~height:10 ~rule:Sim.Policy.Nf) with
      Sim2d.Engine2d.horizon = Model.Time.of_units 30;
    }
  in
  let r2d = Sim2d.Engine2d.run cfg2d tasks2d in
  Format.printf "outcome: %s@."
    (match r2d.Sim2d.Engine2d.outcome with
     | Sim2d.Engine2d.No_miss -> "all deadlines met"
     | Sim2d.Engine2d.Miss m ->
       Printf.sprintf "miss for task %d at %s" (m.Sim2d.Engine2d.task_index + 1)
         (Model.Time.to_string m.Sim2d.Engine2d.at));
  Format.printf "rejections: %d from fragmentation, %d from capacity; preemptions: %d@."
    r2d.Sim2d.Engine2d.stats.Sim2d.Engine2d.fragmentation_rejections
    r2d.Sim2d.Engine2d.stats.Sim2d.Engine2d.capacity_rejections
    r2d.Sim2d.Engine2d.stats.Sim2d.Engine2d.preemptions;

  Format.printf
    "@.the 1-D analysis of the paper treats free area as fungible; the studies above@.show how \
     much of that is optimism once placement is contiguous or 2-D.@."
