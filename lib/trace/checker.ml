module Time = Model.Time
module Engine = Sim.Engine

type violation = { at : Time.t; what : string }

let pp_violation fmt v = Format.fprintf fmt "t=%a: %s" Time.pp v.at v.what

let violation at what = { at; what }

type job_obs = {
  job : Sim.Job.t;
  mutable service : int; (* ticks of execution observed *)
  mutable service_by_deadline : int;
}

let check ~fpga_area result =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let jobs : (int, job_obs) Hashtbl.t = Hashtbl.create 64 in
  let observe (j : Sim.Job.t) =
    match Hashtbl.find_opt jobs j.id with
    | Some o -> o
    | None ->
      let o = { job = j; service = 0; service_by_deadline = 0 } in
      Hashtbl.add jobs j.id o;
      o
  in
  let prev_end = ref Time.zero in
  List.iter
    (fun (seg : Engine.segment) ->
      (* tiling *)
      if not (Time.equal seg.t0 !prev_end) then
        add (violation seg.t0 "segment does not start where the previous ended");
      if Time.(seg.t1 <= seg.t0) then add (violation seg.t0 "empty or reversed segment");
      prev_end := seg.t1;
      let dt = Time.ticks (Time.sub seg.t1 seg.t0) in
      (* area capacity *)
      let occupied = List.fold_left (fun acc p -> acc + Sim.Job.area p.Engine.job) 0 seg.running in
      if occupied > fpga_area then
        add (violation seg.t0 (Printf.sprintf "occupied area %d exceeds A(H)=%d" occupied fpga_area));
      (* duplicate job ids in the running set *)
      let ids = List.map (fun p -> p.Engine.job.Sim.Job.id) seg.running in
      if List.length (List.sort_uniq Int.compare ids) <> List.length ids then
        add (violation seg.t0 "a job appears twice in the running set");
      (* contiguous placements disjoint and in range *)
      let regions = List.filter_map (fun p -> p.Engine.region) seg.running in
      List.iter
        (fun (r : Fpga.Device.region) ->
          if r.start < 0 || r.start + r.width > fpga_area then
            add (violation seg.t0 "placement out of device range"))
        regions;
      let sorted = List.sort (fun (a : Fpga.Device.region) b -> compare a.start b.start) regions in
      let rec disjoint = function
        | (a : Fpga.Device.region) :: (b :: _ as rest) ->
          if a.start + a.width > b.start then
            add (violation seg.t0 "overlapping contiguous placements");
          disjoint rest
        | _ -> ()
      in
      disjoint sorted;
      (* release causality and service accounting *)
      List.iter
        (fun p ->
          let j = p.Engine.job in
          if Time.(seg.t0 < j.Sim.Job.release) then
            add (violation seg.t0 (Printf.sprintf "job %d runs before its release" j.Sim.Job.id));
          let o = observe j in
          o.service <- o.service + dt;
          if Time.(seg.t1 <= j.Sim.Job.abs_deadline) then
            o.service_by_deadline <- o.service_by_deadline + dt
          else if Time.(seg.t0 < j.Sim.Job.abs_deadline) then
            (* segment straddles the deadline *)
            o.service_by_deadline <-
              o.service_by_deadline + Time.ticks (Time.sub j.Sim.Job.abs_deadline seg.t0))
        seg.running;
      List.iter (fun j -> ignore (observe j)) seg.waiting)
    result.Engine.segments;
  let trace_end = !prev_end in
  (* per-job totals, in job-id order so violation order never depends on
     hash-bucket layout *)
  let observations =
    Hashtbl.to_seq_values jobs |> List.of_seq
    |> List.sort (fun a b -> Int.compare a.job.Sim.Job.id b.job.Sim.Job.id)
  in
  List.iter
    (fun o ->
      let exec = Time.ticks o.job.Sim.Job.task.Model.Task.exec in
      if o.service > exec then
        add
          (violation o.job.Sim.Job.release
             (Printf.sprintf "job %d served %d ticks, needs only %d" o.job.Sim.Job.id o.service exec));
      (* when the trace covers the deadline and no miss was declared, the
         job must have been fully served by its deadline *)
      if
        (match result.Engine.outcome with Engine.No_miss -> true | Engine.Miss _ -> false)
        && Time.(o.job.Sim.Job.abs_deadline <= trace_end)
        && o.service_by_deadline <> exec
      then
        add
          (violation o.job.Sim.Job.abs_deadline
             (Printf.sprintf "job %d served %d/%d ticks by its deadline yet no miss declared"
                o.job.Sim.Job.id o.service_by_deadline exec)))
    observations;
  List.rev !violations

let check_work_conserving ~violations_of result =
  List.concat_map
    (fun (seg : Engine.segment) ->
      let occupied = List.fold_left (fun acc p -> acc + Sim.Job.area p.Engine.job) 0 seg.running in
      List.map (violation seg.t0) (violations_of ~occupied ~waiting:seg.waiting))
    result.Engine.segments

let check_nf_work_conserving ~fpga_area result =
  check_work_conserving result ~violations_of:(fun ~occupied ~waiting ->
      List.filter_map
        (fun j ->
          let ak = Sim.Job.area j in
          if occupied < fpga_area - (ak - 1) then
            Some
              (Printf.sprintf
                 "waiting job with area %d while only %d columns busy (Lemma 2 violated)" ak
                 occupied)
          else None)
        waiting)

let check_fkf_work_conserving ~fpga_area ~amax result =
  check_work_conserving result ~violations_of:(fun ~occupied ~waiting ->
      if waiting <> [] && occupied < fpga_area - (amax - 1) then
        [ Printf.sprintf "only %d columns busy under contention (Lemma 1 violated)" occupied ]
      else [])
