(** Trace invariant checking.

    Validates a recorded simulation (a [segment list] from {!Sim.Engine}
    run with [record_trace = true]) against the physical and logical
    invariants of the model.  The test suite runs every simulated schedule
    through this checker, so a simulator bug that produced an impossible
    schedule (over-committed area, a job running in two places, work done
    after the deadline it met, ...) cannot silently bias the paper's
    simulation curves. *)

type violation = {
  at : Model.Time.t;  (** segment start where the violation was observed *)
  what : string;
}

val check : fpga_area:int -> Sim.Engine.result -> violation list
(** Empty means the trace is consistent.  Checked invariants:

    - segments tile [\[0, horizon)] without gaps or overlaps, in order;
    - occupied area never exceeds [A(H)];
    - in contiguous mode, running jobs' regions are disjoint and in range;
    - no job runs in two segments at once (jobs are sequential);
    - no job receives more service than its execution time;
    - no job runs before its release;
    - a miss-free trace serves every job whose deadline falls inside the
      traced window fully by that deadline. *)

val check_work_conserving :
  violations_of:(occupied:int -> waiting:Sim.Job.t list -> string list) ->
  Sim.Engine.result ->
  violation list
(** Generic work-conserving audit: for every segment, [violations_of] is
    given the occupied area and the waiting queue and returns one message
    per violated occupancy-floor rule; each becomes a {!violation} at the
    segment start.  Lemmas 1 and 2 below are instances; the audit library
    uses this directly to express custom alpha-work-conserving rules. *)

val check_nf_work_conserving : fpga_area:int -> Sim.Engine.result -> violation list
(** Lemma 2 specifically: in every segment, each waiting job [J_k] sees
    occupied area at least [A(H) - (A_k - 1)].  Only meaningful for
    EDF-NF in migrating mode. *)

val check_fkf_work_conserving : fpga_area:int -> amax:int -> Sim.Engine.result -> violation list
(** Lemma 1: whenever some job waits, occupied area is at least
    [A(H) - (Amax - 1)].  Only meaningful in migrating mode. *)

val pp_violation : Format.formatter -> violation -> unit
