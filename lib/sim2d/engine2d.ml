module Time = Model.Time
module Grid = Fpga.Grid2d

type job = {
  id : int;
  task_index : int;
  task : Task2d.t;
  release : Time.t;
  abs_deadline : Time.t;
  mutable remaining : Time.t;
}

let compare_edf a b =
  let c = Time.compare a.abs_deadline b.abs_deadline in
  if c <> 0 then c
  else
    let c = Time.compare a.release b.release in
    if c <> 0 then c else Int.compare a.id b.id

type config = {
  width : int;
  height : int;
  rule : Sim.Policy.fit_rule;
  horizon : Time.t;
  record_trace : bool;
}

let default_config ~width ~height ~rule =
  { width; height; rule; horizon = Time.of_units 2000; record_trace = false }

type placed = { job : job; rect : Grid.rect }
type segment = { t0 : Time.t; t1 : Time.t; running : placed list; waiting : job list }
type miss = { job_id : int; task_index : int; at : Time.t }
type outcome = No_miss | Miss of miss

type stats = {
  jobs_released : int;
  jobs_completed : int;
  busy_cell_ticks : int;
  fragmentation_rejections : int;
  capacity_rejections : int;
  preemptions : int;
}

type result = { outcome : outcome; stats : stats; segments : segment list }

type event_kind = Release of int | Deadline_check of job
type event = { at : Time.t; seq : int; kind : event_kind }

let event_cmp a b =
  let c = Time.compare a.at b.at in
  if c <> 0 then c else Int.compare a.seq b.seq

type state = {
  cfg : config;
  tasks : Task2d.t array;
  events : event Pqueue.t;
  mutable event_seq : int;
  mutable active : job list;
  mutable next_id : int;
  rects : (int, Grid.rect) Hashtbl.t; (* job id -> kept rectangle *)
  mutable prev_running_ids : int list;
  mutable jobs_released : int;
  mutable jobs_completed : int;
  mutable busy_cell_ticks : int;
  mutable fragmentation_rejections : int;
  mutable capacity_rejections : int;
  mutable preemptions : int;
  mutable segments : segment list;
}

let push_event st ~at kind =
  st.event_seq <- st.event_seq + 1;
  Pqueue.push st.events { at; seq = st.event_seq; kind }

let release_job st ~task_index ~at =
  let task = st.tasks.(task_index) in
  let job =
    {
      id = st.next_id;
      task_index;
      task;
      release = at;
      abs_deadline = Time.add at task.Task2d.deadline;
      remaining = task.Task2d.exec;
    }
  in
  st.next_id <- st.next_id + 1;
  st.jobs_released <- st.jobs_released + 1;
  st.active <- job :: st.active;
  push_event st ~at:job.abs_deadline (Deadline_check job);
  let next = Time.add at task.Task2d.period in
  if Time.(next < st.cfg.horizon) then push_event st ~at:next (Release task_index)

let process_events st ~now =
  let miss = ref None in
  let continue = ref true in
  while !continue do
    match Pqueue.peek st.events with
    | Some ev when Time.(ev.at <= now) ->
      ignore (Pqueue.pop_exn st.events);
      (match ev.kind with
       | Release task_index -> release_job st ~task_index ~at:ev.at
       | Deadline_check job ->
         if Time.is_positive job.remaining && Option.is_none !miss then
           miss := Some { job_id = job.id; task_index = job.task_index; at = ev.at })
    | _ -> continue := false
  done;
  !miss

(* EDF-ordered selection with bottom-left first-fit on a tentative grid;
   a job that had a rectangle keeps it iff still free (no migration). *)
let select st ordered =
  let grid : int Grid.t = Grid.create ~width:st.cfg.width ~height:st.cfg.height in
  let try_place j =
    match Hashtbl.find_opt st.rects j.id with
    | Some r -> (
      try
        Grid.place_at grid ~tag:j.id r;
        Some r
      with Invalid_argument _ -> None)
    | None -> Grid.place grid ~tag:j.id ~w:j.task.Task2d.w ~h:j.task.Task2d.h
  in
  let note_rejection j =
    if Task2d.cells j.task <= Grid.free_cells grid then
      st.fragmentation_rejections <- st.fragmentation_rejections + 1
    else st.capacity_rejections <- st.capacity_rejections + 1
  in
  (* single pass: under FkF the first rejection blocks the rest of the
     queue (they all count as rejections); under NF rejected jobs are
     skipped *)
  let selected = ref [] in
  let stop = ref false in
  List.iter
    (fun j ->
      if not !stop then begin
        match try_place j with
        | Some r -> selected := { job = j; rect = r } :: !selected
        | None ->
          note_rejection j;
          (match st.cfg.rule with
           | Sim.Policy.Fkf -> stop := true
           | Sim.Policy.Nf -> ())
      end
      else note_rejection j)
    ordered;
  List.rev !selected

let record_segment st ~now ~next ~running ~waiting =
  let dt = Time.ticks (Time.sub next now) in
  let occupied = List.fold_left (fun acc p -> acc + Task2d.cells p.job.task) 0 running in
  st.busy_cell_ticks <- st.busy_cell_ticks + (occupied * dt);
  if st.cfg.record_trace then st.segments <- { t0 = now; t1 = next; running; waiting } :: st.segments

let update_rects st running =
  let selected = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace selected p.job.id p.rect) running;
  Hashtbl.reset st.rects;
  (Hashtbl.iter (fun id r -> Hashtbl.replace st.rects id r) selected
  [@redf.allow "det-purity"
                 "replacing distinct keys into a freshly-reset table commutes, so the \
                  iteration order cannot affect the resulting rectangles"])

let count_preemptions st running =
  let running_ids = List.map (fun p -> p.job.id) running in
  let active_ids = List.map (fun j -> j.id) st.active in
  List.iter
    (fun id ->
      if List.mem id active_ids && not (List.mem id running_ids) then
        st.preemptions <- st.preemptions + 1)
    st.prev_running_ids;
  st.prev_running_ids <- running_ids

let run cfg tasks =
  if tasks = [] then invalid_arg "Engine2d.run: empty task list";
  List.iter
    (fun (t : Task2d.t) ->
      if t.w > cfg.width || t.h > cfg.height then
        invalid_arg "Engine2d.run: task rectangle exceeds the device")
    tasks;
  let st =
    {
      cfg;
      tasks = Array.of_list tasks;
      events = Pqueue.create ~cmp:event_cmp;
      event_seq = 0;
      active = [];
      next_id = 0;
      rects = Hashtbl.create 64;
      prev_running_ids = [];
      jobs_released = 0;
      jobs_completed = 0;
      busy_cell_ticks = 0;
      fragmentation_rejections = 0;
      capacity_rejections = 0;
      preemptions = 0;
      segments = [];
    }
  in
  Array.iteri (fun i _ -> push_event st ~at:Time.zero (Release i)) st.tasks;
  let outcome = ref No_miss in
  let now = ref Time.zero in
  let stop = ref false in
  while not !stop do
    (match process_events st ~now:!now with
     | Some m ->
       outcome := Miss m;
       stop := true
     | None -> ());
    if (not !stop) && Time.(!now >= cfg.horizon) then stop := true;
    if not !stop then begin
      let ordered = List.sort compare_edf st.active in
      let running = select st ordered in
      update_rects st running;
      count_preemptions st running;
      let running_ids = List.map (fun p -> p.job.id) running in
      let waiting = List.filter (fun j -> not (List.mem j.id running_ids)) ordered in
      let next_event = match Pqueue.peek st.events with Some e -> e.at | None -> cfg.horizon in
      let next =
        List.fold_left
          (fun acc p -> Time.min acc (Time.add !now p.job.remaining))
          (Time.min next_event cfg.horizon) running
      in
      assert (Time.(next > !now));
      record_segment st ~now:!now ~next ~running ~waiting;
      let dt = Time.sub next !now in
      List.iter
        (fun p ->
          let j = p.job in
          j.remaining <- Time.sub j.remaining dt;
          if not (Time.is_positive j.remaining) then begin
            st.jobs_completed <- st.jobs_completed + 1;
            st.active <- List.filter (fun a -> a.id <> j.id) st.active;
            Hashtbl.remove st.rects j.id;
            st.prev_running_ids <- List.filter (fun id -> id <> j.id) st.prev_running_ids
          end)
        running;
      now := next
    end
  done;
  let stats =
    {
      jobs_released = st.jobs_released;
      jobs_completed = st.jobs_completed;
      busy_cell_ticks = st.busy_cell_ticks;
      fragmentation_rejections = st.fragmentation_rejections;
      capacity_rejections = st.capacity_rejections;
      preemptions = st.preemptions;
    }
  in
  { outcome = !outcome; stats; segments = List.rev st.segments }

let schedulable cfg tasks =
  match (run cfg tasks).outcome with No_miss -> true | Miss _ -> false

let embed_1d ts ~height =
  List.map (Task2d.of_columns ~height) (Model.Taskset.to_list ts)
