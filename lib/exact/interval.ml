[@@@redf.det]
[@@@redf.exact]

module Time = Model.Time
module Taskset = Model.Taskset

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let parameter_grid ts =
  let g =
    List.fold_left
      (fun acc (task : Model.Task.t) ->
        gcd
          (gcd acc (Time.ticks task.Model.Task.exec))
          (gcd (Time.ticks task.Model.Task.deadline) (Time.ticks task.Model.Task.period)))
      0 (Taskset.to_list ts)
  in
  Time.of_ticks (max 1 g)

let sync_horizon ?(cap = Time.of_units 10_000) ts =
  match Taskset.hyperperiod ~cap ts with
  | Taskset.Exceeds_cap -> (cap, true)
  | Taskset.Finite h ->
    if Taskset.all_constrained_deadline ts then (h, false)
    else
      (* a job released before H can legitimately run past H when
         D > T; one extra hyper-period reaches the steady state *)
      let two_h = Time.mul_int h 2 in
      if Time.(two_h <= cap) then (two_h, false) else (cap, true)
