(** The exact oracle and approximate analyzer as registry citizens.

    {!ensure} registers, idempotently and domain-safely:

    - [exact] — {!Oracle.decide} under EDF-NF;
    - [exact-fkf] — the same oracle under EDF-FkF;
    - [approx\[1/10\]] — {!Approx} at the default ε;
    - the [approx\[EPS\]] name parser, so [--analyzer approx\[0.01\]]
      (or a bare [approx]) resolves without pre-registering every ε.

    The exact verdicts canonicalize first ({!Cache.Canonical}) and remap
    indices back exactly like {!Cache.Verdicts} does, so a fresh verdict
    is byte-for-byte the cached one and permutation-invariant.  Every
    front end — [redf analyze], [redf serve], [redf batch], the cache,
    the audit — picks these up through {!Core.Analyzer.of_name} once
    [ensure] has run (the [redf] binary calls it at startup). *)

val wider_note : string
(** The shared precondition-failure note, ["a task is wider than the
    FPGA"], matching the builtin analyzers. *)

val exact_nf : Core.Analyzer.t
(** [exact]: ACCEPT is an exact certificate for the synchronous release
    (and for all grid offsets when the offset search completes); REJECT
    carries a concrete counterexample or necessary-condition violation.
    An {!Oracle.conclusion.Inconclusive} decision is reported as REJECT
    with an explanatory note, per the sufficient-test convention. *)

val exact_fkf : Core.Analyzer.t
(** [exact-fkf]: the oracle under EDF-FkF. *)

val approx_name : Rat.t -> string
(** ["approx\[" ^ Rat.to_string eps ^ "\]"] — ε is part of the analyzer
    name, hence of the cache key. *)

val approx_with : Rat.t -> Core.Analyzer.t
(** The approximate analyzer at a given ε (must be positive). *)

val parse_approx : string -> (Core.Analyzer.t, string) result option
(** The registered parser: accepts ["approx"] (default ε) and
    ["approx\[EPS\]"] with EPS a fraction (["1/100"]) or decimal
    (["0.01"]); [Some (Error _)] on a malformed or non-positive ε,
    [None] for names of any other shape. *)

val ensure : unit -> unit
(** Register everything above.  Safe to call repeatedly. *)
