(** Tunable approximate analysis: an area-weighted demand-bound test
    with error parameter ε, after Albers & Slomka's approximate
    feasibility analysis (see PAPERS.md).

    The device supplies at most [A(H)] column-units per time unit, so
    for the synchronous release the area-weighted processor-demand
    criterion

    {v h(t) = sum_i dbf_i(t) * C_i * A_i  <=  A(H) * t v}

    is {e necessary} for schedulability under every scheduler (dbf_i is
    the uniprocessor demand-bound function of {!Core.Dbf}, weighted by
    the task's column count).  This module evaluates [h] {e exactly}
    (integer column-ticks) at a sparse, ε-controlled set of test
    points: every task's first absolute deadline, then a geometric
    sequence with ratio [1 + ε] up to the horizon.

    The ε-error contract (DESIGN.md, "The ε contract"):

    - {b REJECT is exactly sound}: a violated point is a true violation
      of the necessary criterion, so REJECT certifies infeasibility —
      under {e any} scheduler and release pattern — independent of ε.
      Equivalently the oracle can never accept what approx rejects.
    - {b ACCEPT carries a certified error band}: consecutive test
      points are at most a factor [1 + ε] (or one tick) apart and [h]
      only changes at integer deadlines, so an accepted taskset
      satisfies [h(t) <= (1 + ε) * A(H) * t] for every [t] up to the
      horizon.  Smaller ε means more points and a tighter band:
      the point count grows as [O(n + log_{1+ε}(horizon))].

    Like {!Core.Analyzer.nec}, ACCEPT is an upper bound on true
    schedulability, not a sufficient certificate. *)

val default_eps : Rat.t
(** [1/10] — the registered [approx\[1/10\]] instance's ε. *)

val area_demand : Model.Taskset.t -> at:Model.Time.t -> int
(** [h(at)] in column-ticks, exact integer arithmetic. *)

val area_demand_cols : Model.Taskset.Columns.t -> at_ticks:int -> int
(** {!area_demand} over the columnar views, used by the point scans;
    [area_demand_cols (Columns.of_taskset ts) ~at_ticks:(Time.ticks at)
    = area_demand ts ~at] (pinned by test_columns.ml). *)

type outcome =
  | Accepted of { horizon : Model.Time.t; points : int; partial : bool }
      (** no violation at any test point; [partial] flags a horizon
          truncated at the cap (the band then covers the prefix only) *)
  | Refuted_at of { at : Model.Time.t; demand : int; supply : int }
      (** [h(at) = demand > supply = A(H) * at] column-ticks: infeasible
          under any scheduler; the earliest violated test point *)
  | Refuted_overload of { us : Rat.t }
      (** [US > A(H)]: long-run overload, infeasible *)

val analyze :
  ?eps:Rat.t ->
  ?horizon_cap:Model.Time.t ->
  fpga_area:int ->
  Model.Taskset.t ->
  outcome
(** [eps] defaults to {!default_eps} (must be positive), [horizon_cap]
    to 10^4 time units.  The horizon is the least of [H + D_max] (when
    the hyper-period is finite), the utilization-slack bound
    [sum A_i C_i (T_i - D_i) / T_i / (A(H) - US)] (when [US < A(H)]),
    and the cap. *)

val verdict : eps:Rat.t -> name:string -> fpga_area:int -> Model.Taskset.t -> Core.Verdict.t
(** {!analyze} as a registry verdict: every per-task check carries the
    same taskset-level [lhs = max h(t)/t] over the checked points and
    [rhs = A(H)], so verdicts are permutation-invariant and cache
    byte-for-byte ({!Cache.Verdicts}). *)
