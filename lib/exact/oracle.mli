(** The exact schedulability oracle.

    Decides periodic tasksets on the area-based device by bounded
    state-space exploration ({!Sim.Engine} over the {!Interval}
    bounds), in three stages:

    + the necessary conditions ({!Core.Feasibility}) refute long-run
      overload without simulating anything;
    + the synchronous release is simulated over its certificate
      horizon — exact for the paper's release model (all first releases
      at 0): a miss is a true counterexample, a miss-free run a
      complete certificate (unless the hyper-period exceeds the cap,
      which is {!conclusion.Inconclusive});
    + every first-release offset assignment on the parameter grid is
      simulated over [\[0, O_max + 2H\]] (Goossens & Meumeu Yomsi's
      interval), upgrading the certificate from "synchronous" to "all
      grid offsets" — or refuting a set the synchronous case misses
      (Section 6's no-critical-instant remark).

    The conclusion is deterministic for any [jobs] (the offset search's
    smallest-miss-index discipline), and {!Registry} wraps [decide] as
    the registered [exact] / [exact-fkf] analyzers.  The audit
    ({!Audit.Consistency}) uses {!simulate} / {!witness} as its only
    source of reference schedules. *)

type pattern =
  | Synchronous  (** all first releases at 0 — the paper's model *)
  | Sporadic of { seed : int; max_delay : Model.Time.t }
      (** seeded sporadic arrival delays; a refutation pattern, never a
          certificate (the delays are sampled, not exhausted) *)

val simulate :
  ?horizon_cap:Model.Time.t ->
  ?record:bool ->
  fpga_area:int ->
  policy:Sim.Policy.t ->
  pattern ->
  Model.Taskset.t ->
  Sim.Engine.result * bool
(** One reference simulation over {!Interval.sync_horizon} (default cap
    10^4 units); the flag reports horizon truncation.  [record] keeps
    the per-segment trace for lemma checking.
    @raise Invalid_argument when a task is wider than the device. *)

val witness :
  ?horizon_cap:Model.Time.t ->
  fpga_area:int ->
  policy:Sim.Policy.t ->
  pattern ->
  Model.Taskset.t ->
  Sim.Engine.miss option
(** The first deadline miss {!simulate} observes, if any. *)

type certificate =
  | All_offsets of { combinations : int; grid : Model.Time.t }
      (** no miss for any first-release offset assignment on [grid] —
          exact for offsets restricted to the grid (sub-grid offsets
          are not covered; see {!Interval}) *)
  | Synchronous_only of { reason : string }
      (** the synchronous case is certified exactly, but the offset
          search was skipped ([reason]: combination count or
          hyper-period cap) *)

type refutation =
  | Wider_than_device of { amax : int }
  | Infeasible of Core.Feasibility.violation list
      (** infeasible under every scheduler and release pattern *)
  | Sync_miss of Sim.Engine.miss
  | Offset_miss of { offsets : Model.Time.t list; miss : Sim.Engine.miss }

type conclusion =
  | Schedulable of certificate
  | Unschedulable of refutation
  | Inconclusive of { reason : string }
      (** the hyper-period exceeds the cap: no miss was observed in the
          capped prefix, but nothing certifies the steady state *)

val decide :
  ?grid:Model.Time.t ->
  ?max_combinations:int ->
  ?horizon_cap:Model.Time.t ->
  ?jobs:int ->
  fpga_area:int ->
  policy:Sim.Policy.t ->
  Model.Taskset.t ->
  conclusion
(** [grid] defaults to {!Interval.parameter_grid}; [max_combinations]
    (default 20000) bounds the offset search, [jobs] (default 1 =
    serial, 0 = one per core) fans it over a domain pool with identical
    conclusions for any worker count. *)
