[@@@redf.det]
[@@@redf.exact]

module Time = Model.Time
module Taskset = Model.Taskset
module Engine = Sim.Engine

type pattern = Synchronous | Sporadic of { seed : int; max_delay : Time.t }

(* decide counts are per-taskset and independent of the worker count;
   the span is the oracle's cost profile *)
let m_decides = Obs.Counter.make "exact.oracle.decides"
let m_simulations = Obs.Counter.make "exact.oracle.simulations"

let default_horizon_cap = Time.of_units 10_000

let simulate ?(horizon_cap = default_horizon_cap) ?(record = false) ~fpga_area ~policy pattern ts =
  Obs.Counter.incr m_simulations;
  let horizon, truncated = Interval.sync_horizon ~cap:horizon_cap ts in
  let cfg = Engine.default_config ~fpga_area ~policy in
  let cfg =
    {
      cfg with
      Engine.horizon;
      record_trace = record;
      release =
        (match pattern with
         | Synchronous -> Engine.Synchronous
         | Sporadic { seed; max_delay } -> Engine.Sporadic { seed; max_delay });
    }
  in
  (Engine.run cfg ts, truncated)

let witness ?horizon_cap ~fpga_area ~policy pattern ts =
  match simulate ?horizon_cap ~fpga_area ~policy pattern ts with
  | { Engine.outcome = Engine.Miss m; _ }, _ -> Some m
  | { Engine.outcome = Engine.No_miss; _ }, _ -> None

type certificate =
  | All_offsets of { combinations : int; grid : Time.t }
  | Synchronous_only of { reason : string }

type refutation =
  | Wider_than_device of { amax : int }
  | Infeasible of Core.Feasibility.violation list
  | Sync_miss of Engine.miss
  | Offset_miss of { offsets : Time.t list; miss : Engine.miss }

type conclusion =
  | Schedulable of certificate
  | Unschedulable of refutation
  | Inconclusive of { reason : string }

let decide_inner ?grid ?(max_combinations = 20_000) ?(horizon_cap = default_horizon_cap)
    ?(jobs = 1) ~fpga_area ~policy ts =
  if not (Taskset.fits ts ~fpga_area) then
    Unschedulable (Wider_than_device { amax = Taskset.amax ts })
  else
    match Core.Feasibility.check ~fpga_area ts with
    | _ :: _ as violations -> Unschedulable (Infeasible violations)
    | [] -> (
      match witness ~horizon_cap ~fpga_area ~policy Synchronous ts with
      | Some miss -> Unschedulable (Sync_miss miss)
      | None ->
        let _, truncated = Interval.sync_horizon ~cap:horizon_cap ts in
        if truncated then
          Inconclusive
            {
              reason =
                Printf.sprintf
                  "hyper-period exceeds the %s-unit horizon cap: no synchronous miss in the \
                   capped prefix, but the steady state is not certified"
                  (Time.to_string horizon_cap);
            }
        else
          let grid =
            match grid with Some g -> g | None -> Interval.parameter_grid ts
          in
          (match Sim.Exhaustive.search ~grid ~max_combinations ~jobs ~fpga_area ~policy ts with
           | Sim.Exhaustive.Miss_with_offsets { offsets; miss } ->
             Unschedulable (Offset_miss { offsets; miss })
           | Sim.Exhaustive.Schedulable_all_offsets { combinations } ->
             Schedulable (All_offsets { combinations; grid })
           | Sim.Exhaustive.Too_many_combinations { combinations } ->
             Schedulable
               (Synchronous_only
                  {
                    reason =
                      Printf.sprintf "%d grid offset combinations exceed the %d search cap"
                        combinations max_combinations;
                  })
           | Sim.Exhaustive.Hyperperiod_too_large ->
             Schedulable
               (Synchronous_only
                  { reason = "hyper-period exceeds the offset search's simulation cap" })))

let decide ?grid ?max_combinations ?horizon_cap ?jobs ~fpga_area ~policy ts =
  Obs.Counter.incr m_decides;
  Obs.Span.with_ ~name:"exact.oracle.decide" (fun () ->
      decide_inner ?grid ?max_combinations ?horizon_cap ?jobs ~fpga_area ~policy ts)
