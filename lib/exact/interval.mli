(** Simulation-interval bounds for exact analysis.

    The oracle's exactness rests on two periodicity arguments (see
    DESIGN.md, "The exact oracle"):

    - {b synchronous release}: a deterministic, memoryless scheduler
      repeats its schedule with period [H] (the hyper-period) once the
      backlog state recurs.  For constrained-deadline sets every job
      released in [\[0, H)] has its absolute deadline at or before [H],
      so a miss-free prefix [\[0, H\]] re-enters the initial state at
      [H] and the prefix is a complete certificate.  Unconstrained
      deadlines can carry jobs across the boundary; [\[0, 2H\]] covers
      the transient plus one full steady-state period (Goossens &
      Meumeu Yomsi's interval with [O_max = 0]).
    - {b offset grid}: first-release offsets are enumerated on the gcd
      of all task parameters; {!Sim.Exhaustive} then simulates each
      assignment over [\[0, O_max + 2H\]].  Note this quantifies over
      offsets {e on the grid} only — this model has no critical
      instant, and a sub-grid offset can behave differently (the
      [witness.csv] taskset misses only at offset 0.5 on a 1-unit
      parameter grid), so the grid search is a refutation engine plus a
      grid-restricted certificate, never a continuous-offset proof. *)

val parameter_grid : Model.Taskset.t -> Model.Time.t
(** The gcd (in ticks, at least one tick) of every task's execution
    time, deadline and period: the coarsest grid all parameters live
    on, and the oracle's default offset-enumeration step. *)

val sync_horizon : ?cap:Model.Time.t -> Model.Taskset.t -> Model.Time.t * bool
(** The synchronous-release certificate horizon and whether it was
    truncated: [H] for constrained-deadline sets, [2H] otherwise, both
    clamped to [cap] (default 10^4 time units, the audit's cap).  When
    the flag is [true] a miss-free simulation certifies only the
    prefix, not the steady state. *)
