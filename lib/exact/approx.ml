[@@@redf.det]
[@@@redf.exact]

module Time = Model.Time
module Taskset = Model.Taskset

let default_eps = Rat.of_ints 1 10
let default_horizon_cap = Time.of_units 10_000
let m_analyses = Obs.Counter.make "exact.approx.analyses"
let m_points = Obs.Counter.make "exact.approx.points"

let area_demand ts ~at =
  let t = Time.ticks at in
  List.fold_left
    (fun acc (task : Model.Task.t) ->
      let d = Time.ticks task.Model.Task.deadline and p = Time.ticks task.Model.Task.period in
      if t < d then acc
      else acc + ((((t - d) / p) + 1) * Time.ticks task.Model.Task.exec * task.Model.Task.area))
    0 (Taskset.to_list ts)

(* same integer recurrence over the columnar views: the point scans below
   evaluate h at O(n + log horizon) points, so the per-point list
   traversal (and its closure) is the dominant cost; test_columns.ml pins
   this against {!area_demand} *)
let area_demand_cols (cols : Taskset.Columns.t) ~at_ticks =
  let t = at_ticks in
  let acc = ref 0 in
  for i = 0 to cols.Taskset.Columns.n - 1 do
    let d = cols.Taskset.Columns.deadline.(i) and p = cols.Taskset.Columns.period.(i) in
    if t >= d then
      acc := !acc + ((((t - d) / p) + 1) * cols.Taskset.Columns.exec.(i) * cols.Taskset.Columns.area.(i))
  done;
  !acc

type outcome =
  | Accepted of { horizon : Time.t; points : int; partial : bool }
  | Refuted_at of { at : Time.t; demand : int; supply : int }
  | Refuted_overload of { us : Rat.t }

(* any violation of h(t) <= A t lies at or below
   sum_i A_i C_i (T_i - D_i)/T_i / (A - US), because
   h(t) <= US t + sum_i A_i C_i (T_i - D_i)/T_i for every t *)
let slack_bound ~fpga_area ts =
  let a = Rat.of_int fpga_area in
  let us = Taskset.system_utilization ts in
  if Rat.compare us a >= 0 then None
  else
    let slack_sum =
      Rat.sum
        (List.map
           (fun (task : Model.Task.t) ->
             let p = Time.ticks task.Model.Task.period in
             Rat.mul
               (Rat.of_int (task.Model.Task.area * Time.ticks task.Model.Task.exec))
               (Rat.of_ints (p - Time.ticks task.Model.Task.deadline) p))
           (Taskset.to_list ts))
    in
    if Rat.sign slack_sum <= 0 then Some Rat.zero
    else Some (Rat.div slack_sum (Rat.sub a us))

(* every task's first absolute deadline, then a geometric tail with
   ratio (1 + eps) — consecutive points at most a factor (1 + eps) or
   one tick apart, and h only changes at integer ticks, so checking the
   points certifies h(t) <= (1 + eps) A t everywhere below the horizon *)
let check_points ~eps ~horizon ts =
  let first_deadlines =
    List.filter_map
      (fun (task : Model.Task.t) ->
        let d = Time.ticks task.Model.Task.deadline in
        if d >= 1 && d <= horizon then Some d else None)
      (Taskset.to_list ts)
  in
  match first_deadlines with
  | [] -> []
  | d :: ds ->
    let dmin = List.fold_left min d ds in
    let one_plus_eps = Rat.add Rat.one eps in
    let rec geo p acc =
      if p >= horizon then acc
      else
        let next =
          min horizon (max (p + 1) (Rat.floor_int (Rat.mul (Rat.of_int p) one_plus_eps)))
        in
        geo next (next :: acc)
    in
    List.sort_uniq Int.compare (first_deadlines @ geo dmin [ dmin ] @ [ horizon ])

let analyze ?(eps = default_eps) ?(horizon_cap = default_horizon_cap) ~fpga_area ts =
  if Rat.sign eps <= 0 then invalid_arg "Approx.analyze: eps must be positive";
  Obs.Counter.incr m_analyses;
  match Taskset.system_utilization ts with
  | us when Rat.compare us (Rat.of_int fpga_area) > 0 -> Refuted_overload { us }
  | _ ->
    let cap = Time.ticks horizon_cap in
    let dmax =
      List.fold_left
        (fun m (task : Model.Task.t) -> max m (Time.ticks task.Model.Task.deadline))
        0 (Taskset.to_list ts)
    in
    let hyper_bound =
      match Taskset.hyperperiod ~cap:horizon_cap ts with
      | Taskset.Finite h ->
        let b = Time.ticks h + dmax in
        if b <= cap then Some b else None
      | Taskset.Exceeds_cap -> None
    in
    let slack =
      match slack_bound ~fpga_area ts with
      | Some b when Rat.compare b (Rat.of_int cap) <= 0 -> Some (max 0 (Rat.floor_int b))
      | Some _ | None -> None
    in
    let horizon, partial =
      match (hyper_bound, slack) with
      | None, None -> (cap, true)
      | Some b, None | None, Some b -> (b, false)
      | Some b1, Some b2 -> (min b1 b2, false)
    in
    let points = check_points ~eps ~horizon ts in
    Obs.Counter.add m_points (List.length points);
    let cols = Taskset.Columns.of_taskset ts in
    let rec scan = function
      | [] -> Accepted { horizon = Time.of_ticks horizon; points = List.length points; partial }
      | p :: rest ->
        let demand = area_demand_cols cols ~at_ticks:p in
        let supply = fpga_area * p in
        if demand > supply then Refuted_at { at = Time.of_ticks p; demand; supply }
        else scan rest
    in
    scan points

(* max h(t)/t over the checked points, in columns: the verdict's
   taskset-level lhs against rhs = A(H) *)
let demand_ratio cols points =
  List.fold_left
    (fun acc p -> Rat.max acc (Rat.of_ints (area_demand_cols cols ~at_ticks:p) p))
    Rat.zero points

let verdict ~eps ~name ~fpga_area ts =
  if not (Taskset.fits ts ~fpga_area) then
    Core.Verdict.reject_all ~test_name:name ~note:"a task is wider than the FPGA" ts
  else begin
    let rhs = Rat.of_int fpga_area in
    let satisfied, lhs, note =
      match analyze ~eps ~fpga_area ts with
      | Refuted_overload { us } ->
        ( false,
          us,
          Printf.sprintf
            "long-run overload: US = %s column-units/unit exceeds A(H) = %d (infeasible under \
             any scheduler)"
            (Rat.to_string us) fpga_area )
      | Refuted_at { at; demand; supply = _ } ->
        ( false,
          Rat.of_ints demand (Time.ticks at),
          Printf.sprintf
            "area demand exceeds supply at t=%s: h(t)/t = %s columns > A(H) = %d; REJECT is \
             exact (necessary criterion violated, infeasible under any scheduler)"
            (Time.to_string at)
            (Rat.to_string (Rat.of_ints demand (Time.ticks at)))
            fpga_area )
      | Accepted { horizon; points; partial } ->
        let lhs =
          if points = 0 then Rat.zero
          else
            demand_ratio
              (Taskset.Columns.of_taskset ts)
              (check_points ~eps ~horizon:(Time.ticks horizon) ts)
        in
        ( true,
          lhs,
          if points = 0 then
            "US <= A(H) and the utilization-slack bound is zero: the necessary criterion holds \
             everywhere, no test points needed"
          else
            Printf.sprintf
              "no area-demand violation at %d test points up to t=%s; eps = %s certifies h(t) \
               <= (1+eps) A(H) t below the horizon%s"
              points (Time.to_string horizon) (Rat.to_string eps)
              (if partial then " (horizon capped: prefix certificate only)" else "") )
    in
    let checks =
      List.mapi
        (fun i _ -> { Core.Verdict.task_index = i; satisfied; lhs; rhs; note })
        (Taskset.to_list ts)
    in
    Core.Verdict.make ~test_name:name ~checks
  end
