[@@@redf.det]
[@@@redf.exact]

module Time = Model.Time
module Taskset = Model.Taskset

let wider_note = "a task is wider than the FPGA"

(* the oracle runs on the canonical taskset and the checks are remapped
   through the canonical order, replicating Cache.Verdicts.remap: a
   fresh verdict is byte-for-byte the cached one, for any task order *)
let exact_verdict ~name ~policy ~fpga_area ts =
  if not (Taskset.fits ts ~fpga_area) then
    Core.Verdict.reject_all ~test_name:name ~note:wider_note ts
  else begin
    let order = Cache.Canonical.order ts in
    let canon = Cache.Canonical.apply order ts in
    let conclusion = Oracle.decide ~jobs:1 ~fpga_area ~policy canon in
    let miss_note what (miss : Sim.Engine.miss) p =
      if p = miss.Sim.Engine.task_index then
        Printf.sprintf "deadline miss at t=%s %s (canonical task %d)"
          (Time.to_string miss.Sim.Engine.at) what miss.Sim.Engine.task_index
      else
        Printf.sprintf "no miss attributed to this task (canonical task %d missed at t=%s)"
          miss.Sim.Engine.task_index
          (Time.to_string miss.Sim.Engine.at)
    in
    let check p =
      match conclusion with
      | Oracle.Schedulable (Oracle.All_offsets { combinations; grid }) ->
        ( true,
          Printf.sprintf
            "exact: no deadline miss for any of %d first-release offset assignments on the %s \
             grid over [0, O_max + 2H)"
            combinations (Time.to_string grid) )
      | Oracle.Schedulable (Oracle.Synchronous_only { reason }) ->
        (true, Printf.sprintf "exact for the synchronous release (offset search skipped: %s)" reason)
      | Oracle.Unschedulable (Oracle.Wider_than_device { amax }) ->
        (false, Printf.sprintf "%s (amax = %d)" wider_note amax)
      | Oracle.Unschedulable (Oracle.Infeasible violations) ->
        ( false,
          Printf.sprintf "infeasible: %d necessary-condition violation(s), see the nec analyzer"
            (List.length violations) )
      | Oracle.Unschedulable (Oracle.Sync_miss miss) ->
        (p <> miss.Sim.Engine.task_index, miss_note "under the synchronous release" miss p)
      | Oracle.Unschedulable (Oracle.Offset_miss { offsets; miss }) ->
        ( p <> miss.Sim.Engine.task_index,
          miss_note
            (Printf.sprintf "with first-release offsets (%s)"
               (String.concat ", " (List.map Time.to_string offsets)))
            miss p )
      | Oracle.Inconclusive { reason } -> (false, Printf.sprintf "inconclusive: %s" reason)
    in
    let checks =
      List.init (Taskset.size ts) (fun p ->
          let satisfied, note = check p in
          { Core.Verdict.task_index = order.(p); satisfied; lhs = Rat.zero; rhs = Rat.zero; note })
    in
    let checks =
      List.sort (fun a b -> compare a.Core.Verdict.task_index b.Core.Verdict.task_index) checks
    in
    Core.Verdict.make ~test_name:name ~checks
  end

let cite = "Goossens & Meumeu Yomsi; Section 6's exact-test remark"

let exact_nf =
  Core.Analyzer.make ~name:"exact" ~cite ~version:"1" (fun ~fpga_area ts ->
      exact_verdict ~name:"exact" ~policy:Sim.Policy.edf_nf ~fpga_area ts)

let exact_fkf =
  Core.Analyzer.make ~name:"exact-fkf" ~cite ~version:"1" (fun ~fpga_area ts ->
      exact_verdict ~name:"exact-fkf" ~policy:Sim.Policy.edf_fkf ~fpga_area ts)

let approx_name eps = "approx[" ^ Rat.to_string eps ^ "]"

let approx_with eps =
  if Rat.sign eps <= 0 then invalid_arg "Registry.approx_with: eps must be positive";
  let name = approx_name eps in
  Core.Analyzer.make ~name
    ~cite:"Albers & Slomka, approximate feasibility (area-weighted necessary variant)"
    ~version:"1"
    (fun ~fpga_area ts -> Approx.verdict ~eps ~name ~fpga_area ts)

let parse_eps body =
  match String.index_opt body '/' with
  | Some i -> (
    let n = String.sub body 0 i in
    let d = String.sub body (i + 1) (String.length body - i - 1) in
    match (int_of_string_opt n, int_of_string_opt d) with
    | Some n, Some d when d <> 0 -> Ok (Rat.of_ints n d)
    | _ -> Error (Printf.sprintf "approx: malformed eps %S (want N/D or a decimal)" body))
  | None -> (
    try Ok (Rat.of_decimal_string body)
    with Invalid_argument _ ->
      Error (Printf.sprintf "approx: malformed eps %S (want N/D or a decimal)" body))

(* [target] arrives trimmed and lower-cased from Core.Analyzer.of_name *)
let parse_approx target =
  if target = "approx" then Some (Ok (approx_with Approx.default_eps))
  else
    let n = String.length target in
    if n > 8 && String.sub target 0 7 = "approx[" && target.[n - 1] = ']' then
      match parse_eps (String.sub target 7 (n - 8)) with
      | Error _ as e -> Some e
      | Ok eps ->
        if Rat.sign eps <= 0 then
          Some (Error (Printf.sprintf "approx: eps must be positive, got %s" (Rat.to_string eps)))
        else Some (Ok (approx_with eps))
    else None

let ensure () =
  Core.Analyzer.register exact_nf;
  Core.Analyzer.register exact_fkf;
  Core.Analyzer.register (approx_with Approx.default_eps);
  Core.Analyzer.register_parser ~syntax:"approx[EPS]" parse_approx
