(** Event-driven simulation of global EDF scheduling on a 1-D PRTR FPGA.

    The paper uses simulation (all tasks released at time 0) as a coarse
    upper bound on schedulability, since exact schedulability would require
    exhausting all release offsets (Section 6).  This engine simulates any
    {!Policy.t} under two placement regimes:

    - [Migrating] — the paper's model (assumption 4): unrestricted
      migration and zero-cost defragmentation, so a job fits iff its area
      is at most the total free area.
    - [Contiguous strategy] — the future-work regime: a job needs a
      contiguous free block chosen by the given allocation strategy, keeps
      its region while it runs, and loses it on preemption.

    Time advances from event to event (releases, absolute deadlines,
    completions); between events the running set is constant.  All
    arithmetic is exact integer ticks. *)

type placement_mode = Migrating | Contiguous of Fpga.Device.strategy

type release_pattern =
  | Synchronous  (** all first releases at time 0 (the paper's setup) *)
  | Offsets of Model.Time.t list  (** one first-release offset per task *)
  | Sporadic of { seed : int; max_delay : Model.Time.t }
      (** sporadic arrivals: each release is delayed beyond the minimum
          inter-arrival time by an independent uniform amount in
          [\[0, max_delay\]] (deterministic per seed).  The analytic tests
          cover sporadic tasks; this pattern lets the test suite check
          that claim against the simulator. *)

type config = {
  fpga_area : int;
  policy : Policy.t;
  horizon : Model.Time.t;  (** simulate the interval [\[0, horizon\]] *)
  release : release_pattern;
  placement : placement_mode;
  record_trace : bool;  (** keep per-segment history (memory-heavy) *)
}

val default_config : fpga_area:int -> policy:Policy.t -> config
(** Synchronous release, migrating placement, horizon 2000 time units, no
    trace recording. *)

type placed = { job : Job.t; region : Fpga.Device.region option }
(** A running job; [region] is [None] in migrating mode. *)

type segment = {
  t0 : Model.Time.t;
  t1 : Model.Time.t;
  running : placed list;
  waiting : Job.t list;  (** active jobs not selected to run *)
}

type miss = { job_id : int; task_index : int; at : Model.Time.t }

type outcome = No_miss | Miss of miss

type stats = {
  iterations : int;
  events_popped : int;  (** release / deadline-check events processed *)
  jobs_released : int;
  jobs_completed : int;
  elapsed_ticks : int;
      (** time actually simulated: the full horizon, or less when the
          run stopped early at a deadline miss — the denominator for
          any per-time average over this result *)
  busy_column_ticks : int;  (** integral of occupied area over time, in column-ticks *)
  contended_ticks : int;  (** total time with a non-empty waiting queue *)
  min_busy_when_contended : int option;
      (** minimum occupied area over contended time; [None] if never contended *)
  nf_alpha_respected : bool;
      (** every waiting job [Jk] always saw occupied area >= A(H)-(Ak-1) (Lemma 2) *)
  fkf_alpha_respected : bool;
      (** occupied area >= A(H)-(Amax-1) whenever contended (Lemma 1) *)
  preemptions : int;  (** a running job was descheduled before finishing *)
  placements_made : int;  (** contiguous mode: regions allocated *)
}

type result = { outcome : outcome; stats : stats; segments : segment list }

val run : config -> Model.Taskset.t -> result
(** @raise Invalid_argument when some task is wider than the device, or
    when [Offsets] does not list exactly one offset per task. *)

val schedulable : config -> Model.Taskset.t -> bool
(** [run] observed no deadline miss within the horizon. *)

val average_busy_area : result -> float
(** Mean occupied columns over the time actually simulated
    ([stats.elapsed_ticks]), so a run that stopped early at a deadline
    miss is averaged over its own window, not the configured horizon. *)
