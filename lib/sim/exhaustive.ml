module Time = Model.Time

type outcome =
  | Schedulable_all_offsets of { combinations : int }
  | Miss_with_offsets of { offsets : Time.t list; miss : Engine.miss }
  | Too_many_combinations of { combinations : int }
  | Hyperperiod_too_large

let m_searches = Obs.Counter.make "sim.exhaustive.searches"
let m_combinations = Obs.Counter.make "sim.exhaustive.combinations"

(* with early exit, how many combinations were actually simulated
   depends on which worker finds the miss first *)
let m_simulated = Obs.Counter.make ~det:false "sim.exhaustive.simulated"

(* offsets per task: 0, grid, 2*grid, ... < T_i *)
let offset_choices grid (task : Model.Task.t) =
  let g = Time.ticks grid and p = Time.ticks task.period in
  let n = (p + g - 1) / g in
  List.init n (fun k -> Time.of_ticks (k * g))

let count_combinations choices =
  Array.fold_left
    (fun acc l ->
      let n = Array.length l in
      if acc > max_int / max 1 n then max_int else acc * n)
    1 choices

(* combination [idx] in lexicographic order, first task most
   significant: decode a mixed-radix number from the last task up *)
let offsets_of_index choices idx =
  let rec go i idx acc =
    if i < 0 then acc
    else
      let radix = Array.length choices.(i) in
      go (i - 1) (idx / radix) (choices.(i).(idx mod radix) :: acc)
  in
  go (Array.length choices - 1) idx []

let search_inner ?(grid = Time.of_units 1) ?(max_combinations = 20_000) ?(jobs = 1) ~fpga_area
    ~policy ts =
  Obs.Counter.incr m_searches;
  match Model.Taskset.hyperperiod ts with
  | Model.Taskset.Exceeds_cap -> Hyperperiod_too_large
  | Model.Taskset.Finite hyper ->
    let choices =
      Array.of_list
        (List.map (fun t -> Array.of_list (offset_choices grid t)) (Model.Taskset.to_list ts))
    in
    let combinations = count_combinations choices in
    if combinations > max_combinations then Too_many_combinations { combinations }
    else begin
      Obs.Counter.add m_combinations combinations;
      let try_offsets offsets =
        Obs.Counter.incr m_simulated;
        let max_offset = List.fold_left Time.max Time.zero offsets in
        (* asynchronous periodic schedules need the transient plus a full
           steady-state period: simulate max offset + 2 hyper-periods *)
        let cfg = Engine.default_config ~fpga_area ~policy in
        let cfg =
          {
            cfg with
            Engine.horizon = Time.add max_offset (Time.mul_int hyper 2);
            Engine.release = Engine.Offsets offsets;
          }
        in
        match (Engine.run cfg ts).Engine.outcome with
        | Engine.No_miss -> None
        | Engine.Miss miss -> Some (Miss_with_offsets { offsets; miss })
      in
      let jobs = Parallel.resolve_jobs jobs in
      if jobs <= 1 then begin
        (* serial: first miss in enumeration order *)
        let rec go i =
          if i >= combinations then Schedulable_all_offsets { combinations }
          else
            match try_offsets (offsets_of_index choices i) with
            | Some result -> result
            | None -> go (i + 1)
        in
        go 0
      end
      else begin
        (* parallel branch exploration over the combination indices,
           with a shared atomic best-so-far.  "Best" is the smallest
           combination index exhibiting a miss: workers skip branches
           above the current best, and every index below the final best
           is examined, so the reported miss is exactly the one the
           serial enumeration finds — for any worker count. *)
        let best = Atomic.make max_int in
        let result_mutex = Mutex.create () in
        let best_result = ref None in
        let cursor = Atomic.make 0 in
        let chunk = max 1 (combinations / (8 * jobs)) in
        let body () =
          let rec grab () =
            let start = Atomic.fetch_and_add cursor chunk in
            if start >= combinations then ()
            else begin
              let stop = min combinations (start + chunk) in
              for i = start to stop - 1 do
                if i < Atomic.get best then begin
                  match try_offsets (offsets_of_index choices i) with
                  | None -> ()
                  | Some r ->
                    Mutex.lock result_mutex;
                    (match !best_result with
                     | Some (j, _) when j < i -> ()
                     | Some _ | None -> best_result := Some (i, r));
                    Mutex.unlock result_mutex;
                    let rec relax () =
                      let cur = Atomic.get best in
                      if i < cur && not (Atomic.compare_and_set best cur i) then relax ()
                    in
                    relax ()
                end
              done;
              grab ()
            end
          in
          grab ()
        in
        Parallel.Pool.with_pool ~jobs (fun pool -> Parallel.Pool.run pool body);
        match !best_result with
        | Some (_, result) -> result
        | None -> Schedulable_all_offsets { combinations }
      end
    end

let search ?grid ?max_combinations ?jobs ~fpga_area ~policy ts =
  Obs.Span.with_ ~name:"sim.exhaustive.search" (fun () ->
      search_inner ?grid ?max_combinations ?jobs ~fpga_area ~policy ts)

let sync_is_not_worst_case ?grid ?jobs ~fpga_area ~policy ts =
  let cfg = Engine.default_config ~fpga_area ~policy in
  let sync_ok =
    match Model.Taskset.hyperperiod ts with
    | Model.Taskset.Exceeds_cap -> None
    | Model.Taskset.Finite hyper ->
      Some (Engine.schedulable { cfg with Engine.horizon = hyper } ts)
  in
  match sync_ok with
  | None -> None
  | Some false -> Some false (* sync already misses: it is a worst case here *)
  | Some true -> (
    match search ?grid ?jobs ~fpga_area ~policy ts with
    | Miss_with_offsets _ -> Some true
    | Schedulable_all_offsets _ -> Some false
    | Too_many_combinations _ | Hyperperiod_too_large -> None)
