(** Exhaustive release-offset search.

    Section 6 notes that "it is not possible to determine exact
    schedulability without exhaustively simulating all possible task
    release offsets" — on a multiprocessor-like resource there is no
    critical instant, so the synchronous simulation is only an upper
    bound.  For small tasksets this module does the exhaustive search on
    a discretised offset grid: it enumerates every combination of first
    release offsets [o_i] in [\[0, T_i)] on the grid, simulates each to
    [max offset + hyper-period], and reports the first offset assignment
    that produces a deadline miss.

    On a grid, this is exact for workloads whose parameters live on the
    same grid (the schedule evolution between grid points is linear); it
    is exponential in the task count and meant for validation and small
    case studies, not for the synthetic experiment sizes. *)

type outcome =
  | Schedulable_all_offsets of { combinations : int }
      (** no offset assignment on the grid produced a miss *)
  | Miss_with_offsets of { offsets : Model.Time.t list; miss : Engine.miss }
  | Too_many_combinations of { combinations : int }
      (** the grid would require more than [max_combinations] runs *)
  | Hyperperiod_too_large

val search :
  ?grid:Model.Time.t ->
  ?max_combinations:int ->
  ?jobs:int ->
  fpga_area:int ->
  policy:Policy.t ->
  Model.Taskset.t ->
  outcome
(** [search ~fpga_area ~policy ts] enumerates offsets on [grid] (default
    one time unit) with at most [max_combinations] (default 20000)
    simulations.  Tasksets whose hyper-period exceeds the
    {!Model.Taskset.hyperperiod} cap are rejected as
    [Hyperperiod_too_large].

    [jobs] (default 1 = serial, 0 = one worker per core) explores the
    combination space on a domain pool with a shared atomic best-so-far
    that prunes branches above the smallest miss index found.  The
    reported miss is the lexicographically first one — the same
    assignment the serial enumeration finds — for any worker count. *)

val sync_is_not_worst_case :
  ?grid:Model.Time.t ->
  ?jobs:int ->
  fpga_area:int ->
  policy:Policy.t ->
  Model.Taskset.t ->
  bool option
(** [Some true] when the synchronous release pattern meets all deadlines
    but some other offset assignment on the grid misses — i.e. this
    taskset witnesses the paper's no-critical-instant remark.  [Some
    false] when the search is conclusive and no such witness exists;
    [None] when the search was inconclusive (too many combinations or
    unbounded hyper-period). *)
