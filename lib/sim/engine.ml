module Time = Model.Time
module Task = Model.Task
module Taskset = Model.Taskset
module Device = Fpga.Device

type placement_mode = Migrating | Contiguous of Device.strategy
type release_pattern =
  | Synchronous
  | Offsets of Time.t list
  | Sporadic of { seed : int; max_delay : Time.t }

type config = {
  fpga_area : int;
  policy : Policy.t;
  horizon : Time.t;
  release : release_pattern;
  placement : placement_mode;
  record_trace : bool;
}

let default_config ~fpga_area ~policy =
  {
    fpga_area;
    policy;
    horizon = Time.of_units 2000;
    release = Synchronous;
    placement = Migrating;
    record_trace = false;
  }

type placed = { job : Job.t; region : Device.region option }

type segment = { t0 : Time.t; t1 : Time.t; running : placed list; waiting : Job.t list }
type miss = { job_id : int; task_index : int; at : Time.t }
type outcome = No_miss | Miss of miss

type stats = {
  iterations : int;
  events_popped : int;
  jobs_released : int;
  jobs_completed : int;
  elapsed_ticks : int;
  busy_column_ticks : int;
  contended_ticks : int;
  min_busy_when_contended : int option;
  nf_alpha_respected : bool;
  fkf_alpha_respected : bool;
  preemptions : int;
  placements_made : int;
}

type result = { outcome : outcome; stats : stats; segments : segment list }

(* process-wide run counters, accumulated once per [run] from the local
   mutable stats so the simulation loop itself carries no atomics *)
let m_runs = Obs.Counter.make "sim.engine.runs"
let m_iterations = Obs.Counter.make "sim.engine.iterations"
let m_events = Obs.Counter.make "sim.engine.events_popped"
let m_segments = Obs.Counter.make "sim.engine.segments"
let m_released = Obs.Counter.make "sim.engine.jobs_released"
let m_completed = Obs.Counter.make "sim.engine.jobs_completed"
let m_preemptions = Obs.Counter.make "sim.engine.preemptions"
let m_placements = Obs.Counter.make "sim.engine.placements_made"
let m_misses = Obs.Counter.make "sim.engine.deadline_misses"

(* simulation events; completions are recomputed, not queued.  [seq]
   makes simultaneous events pop in push order, so jobs released at the
   same instant enter the queue in task order — Definition 1/2 tie-break
   determinism depends on it. *)
type event_kind = Release of int (* task index *) | Deadline_check of Job.t

type event = { at : Time.t; seq : int; kind : event_kind }

let event_cmp a b =
  let c = Time.compare a.at b.at in
  if c <> 0 then c else Int.compare a.seq b.seq

(* --- running-set selection --- *)

(* Migrating mode: a job fits iff total free area suffices (the paper's
   fit criterion under unrestricted migration + defragmentation). *)
let select_migrating (rule : Policy.fit_rule) fpga_area ordered =
  let rec fkf used = function
    | [] -> []
    | j :: rest ->
      let a = Job.area j in
      if used + a <= fpga_area then { job = j; region = None } :: fkf (used + a) rest else []
  in
  let rec nf used = function
    | [] -> []
    | j :: rest ->
      let a = Job.area j in
      if used + a <= fpga_area then { job = j; region = None } :: nf (used + a) rest
      else nf used rest
  in
  match rule with Policy.Fkf -> fkf 0 ordered | Policy.Nf -> nf 0 ordered

(* Contiguous mode: a running job keeps its region; a job whose region was
   claimed by a higher-priority job cannot run this interval (migration of
   a placed job is not allowed); a newly running job needs a contiguous
   free block under the configured strategy. *)
let select_contiguous (rule : Policy.fit_rule) strategy fpga_area placements ordered =
  let dev : int Device.t = Device.create ~area:fpga_area in
  let try_place j =
    match Hashtbl.find_opt placements j.Job.id with
    | Some (r : Device.region) ->
      (* reuse the previous region if still free *)
      (try
         Device.place_at dev ~tag:j.Job.id r;
         Some r
       with Invalid_argument _ -> None)
    | None -> Device.place ~strategy dev ~tag:j.Job.id ~width:(Job.area j)
  in
  let rec fkf = function
    | [] -> []
    | j :: rest -> (
      match try_place j with Some r -> { job = j; region = Some r } :: fkf rest | None -> [])
  in
  let rec nf = function
    | [] -> []
    | j :: rest -> (
      match try_place j with
      | Some r -> { job = j; region = Some r } :: nf rest
      | None -> nf rest)
  in
  match rule with Policy.Fkf -> fkf ordered | Policy.Nf -> nf ordered

(* --- engine --- *)

module Iset = Set.Make (Int)

type state = {
  cfg : config;
  taskset : Task.t array;
  amax : int; (* widest task, fixed for the run (Lemma 1 bound) *)
  events : event Pqueue.t;
  sporadic : Rng.t option; (* delay source for sporadic arrivals *)
  mutable event_seq : int;
  mutable active : Job.t list; (* unfinished released jobs *)
  mutable next_id : int;
  placements : (int, Device.region) Hashtbl.t; (* contiguous mode only *)
  mutable prev_running : Iset.t;
  (* accumulating stats *)
  mutable iterations : int;
  mutable events_popped : int;
  mutable jobs_released : int;
  mutable jobs_completed : int;
  mutable busy_column_ticks : int;
  mutable contended_ticks : int;
  mutable min_busy_when_contended : int option;
  mutable nf_alpha_respected : bool;
  mutable fkf_alpha_respected : bool;
  mutable preemptions : int;
  mutable placements_made : int;
  mutable segments_recorded : int;
  mutable segments : segment list;
}

let push_event st ~at kind =
  st.event_seq <- st.event_seq + 1;
  Pqueue.push st.events { at; seq = st.event_seq; kind }

let release_job st ~task_index ~at =
  let task = st.taskset.(task_index) in
  let job = Job.make ~id:st.next_id ~task_index ~task ~release:at in
  st.next_id <- st.next_id + 1;
  st.jobs_released <- st.jobs_released + 1;
  st.active <- job :: st.active;
  push_event st ~at:job.Job.abs_deadline (Deadline_check job);
  let delay =
    match (st.sporadic, st.cfg.release) with
    | Some rng, Sporadic { max_delay; _ } when Time.is_positive max_delay ->
      Time.of_ticks (Rng.int_incl rng 0 (Time.ticks max_delay))
    | _ -> Time.zero
  in
  let next = Time.add (Time.add at task.Task.period) delay in
  (* releases happen strictly inside [0, horizon) *)
  if Time.(next < st.cfg.horizon) then push_event st ~at:next (Release task_index)

(* process every event scheduled at [now]; returns a miss if one fired *)
let process_events st ~now =
  let miss = ref None in
  let continue = ref true in
  while !continue do
    match Pqueue.peek st.events with
    | Some ev when Time.(ev.at <= now) ->
      ignore (Pqueue.pop_exn st.events);
      st.events_popped <- st.events_popped + 1;
      (match ev.kind with
       | Release task_index -> release_job st ~task_index ~at:ev.at
       | Deadline_check job ->
         if (not (Job.is_finished job)) && Option.is_none !miss then
           miss := Some { job_id = job.Job.id; task_index = job.Job.task_index; at = ev.at })
    | _ -> continue := false
  done;
  !miss

let record_segment st ~now ~next ~running ~waiting =
  let dt = Time.ticks (Time.sub next now) in
  let occupied = List.fold_left (fun acc p -> acc + Job.area p.job) 0 running in
  st.busy_column_ticks <- st.busy_column_ticks + (occupied * dt);
  st.segments_recorded <- st.segments_recorded + 1;
  if waiting <> [] then begin
    st.contended_ticks <- st.contended_ticks + dt;
    (match st.min_busy_when_contended with
     | Some m when m <= occupied -> ()
     | Some _ | None -> st.min_busy_when_contended <- Some occupied);
    if occupied < st.cfg.fpga_area - (st.amax - 1) then st.fkf_alpha_respected <- false;
    List.iter
      (fun j ->
        if occupied < st.cfg.fpga_area - (Job.area j - 1) then st.nf_alpha_respected <- false)
      waiting
  end;
  if st.cfg.record_trace then st.segments <- { t0 = now; t1 = next; running; waiting } :: st.segments

let update_placements st running =
  match st.cfg.placement with
  | Migrating -> ()
  | Contiguous _ ->
    let selected = Hashtbl.create 16 in
    List.iter
      (fun p ->
        match p.region with
        | Some r ->
          if not (Hashtbl.mem st.placements p.job.Job.id) then
            st.placements_made <- st.placements_made + 1;
          Hashtbl.replace selected p.job.Job.id r
        | None -> ())
      running;
    (* jobs that lost their spot are off the fabric *)
    Hashtbl.reset st.placements;
    (Hashtbl.iter (fun id r -> Hashtbl.replace st.placements id r) selected
    [@redf.allow "det-purity"
                   "replacing distinct keys into a freshly-reset table commutes, so the \
                    iteration order cannot affect the resulting placements"])

let count_preemptions st ~running_set =
  let active_set =
    List.fold_left (fun acc (j : Job.t) -> Iset.add j.Job.id acc) Iset.empty st.active
  in
  Iset.iter
    (fun id ->
      (* previously running, still active (unfinished), no longer running *)
      if Iset.mem id active_set && not (Iset.mem id running_set) then
        st.preemptions <- st.preemptions + 1)
    st.prev_running;
  st.prev_running <- running_set

let run_inner cfg taskset =
  let tasks = Taskset.to_array taskset in
  let n = Array.length tasks in
  Array.iter
    (fun (t : Task.t) ->
      if t.area > cfg.fpga_area then
        invalid_arg "Engine.run: task wider than the FPGA")
    tasks;
  let offsets =
    match cfg.release with
    | Synchronous | Sporadic _ -> Array.make n Time.zero
    | Offsets l ->
      if List.length l <> n then invalid_arg "Engine.run: one offset per task required";
      Array.of_list l
  in
  let st =
    {
      cfg;
      taskset = tasks;
      amax = Array.fold_left (fun acc (t : Task.t) -> max acc t.area) 0 tasks;
      events = Pqueue.create ~cmp:event_cmp;
      sporadic = (match cfg.release with Sporadic { seed; _ } -> Some (Rng.create ~seed) | _ -> None);
      event_seq = 0;
      active = [];
      next_id = 0;
      placements = Hashtbl.create 64;
      prev_running = Iset.empty;
      iterations = 0;
      events_popped = 0;
      jobs_released = 0;
      jobs_completed = 0;
      busy_column_ticks = 0;
      contended_ticks = 0;
      min_busy_when_contended = None;
      nf_alpha_respected = true;
      fkf_alpha_respected = true;
      preemptions = 0;
      placements_made = 0;
      segments_recorded = 0;
      segments = [];
    }
  in
  Array.iteri
    (fun i off -> if Time.(off < cfg.horizon) then push_event st ~at:off (Release i))
    offsets;
  let outcome = ref No_miss in
  let now = ref Time.zero in
  let stop = ref false in
  while not !stop do
    st.iterations <- st.iterations + 1;
    (match process_events st ~now:!now with
     | Some m ->
       outcome := Miss m;
       stop := true
     | None -> ());
    if (not !stop) && Time.(!now >= cfg.horizon) then stop := true;
    if not !stop then begin
      let ordered = Policy.order_queue cfg.policy ~fpga_area:cfg.fpga_area st.active in
      let running =
        match cfg.placement with
        | Migrating -> select_migrating cfg.policy.Policy.rule cfg.fpga_area ordered
        | Contiguous strategy ->
          select_contiguous cfg.policy.Policy.rule strategy cfg.fpga_area st.placements ordered
      in
      update_placements st running;
      let running_set =
        List.fold_left (fun acc p -> Iset.add p.job.Job.id acc) Iset.empty running
      in
      count_preemptions st ~running_set;
      let waiting = List.filter (fun j -> not (Iset.mem j.Job.id running_set)) ordered in
      (* next decision instant: next event, or earliest completion *)
      let next_event = match Pqueue.peek st.events with Some e -> e.at | None -> cfg.horizon in
      let next =
        List.fold_left
          (fun acc p -> Time.min acc (Time.add !now p.job.Job.remaining))
          (Time.min next_event cfg.horizon) running
      in
      assert (Time.(next > !now));
      record_segment st ~now:!now ~next ~running ~waiting;
      (* advance running jobs *)
      let dt = Time.sub next !now in
      List.iter
        (fun p ->
          let j = p.job in
          j.Job.remaining <- Time.sub j.Job.remaining dt;
          if Job.is_finished j then begin
            st.jobs_completed <- st.jobs_completed + 1;
            st.active <- List.filter (fun a -> a.Job.id <> j.Job.id) st.active;
            Hashtbl.remove st.placements j.Job.id;
            st.prev_running <- Iset.remove j.Job.id st.prev_running
          end)
        running;
      now := next
    end
  done;
  let stats =
    {
      iterations = st.iterations;
      events_popped = st.events_popped;
      jobs_released = st.jobs_released;
      jobs_completed = st.jobs_completed;
      (* time actually simulated: the horizon, or the instant the run
         stopped on a deadline miss — the denominator for any per-time
         average over this result *)
      elapsed_ticks = Time.ticks !now;
      busy_column_ticks = st.busy_column_ticks;
      contended_ticks = st.contended_ticks;
      min_busy_when_contended = st.min_busy_when_contended;
      nf_alpha_respected = st.nf_alpha_respected;
      fkf_alpha_respected = st.fkf_alpha_respected;
      preemptions = st.preemptions;
      placements_made = st.placements_made;
    }
  in
  if Obs.enabled () then begin
    Obs.Counter.incr m_runs;
    Obs.Counter.add m_iterations st.iterations;
    Obs.Counter.add m_events st.events_popped;
    Obs.Counter.add m_segments st.segments_recorded;
    Obs.Counter.add m_released st.jobs_released;
    Obs.Counter.add m_completed st.jobs_completed;
    Obs.Counter.add m_preemptions st.preemptions;
    Obs.Counter.add m_placements st.placements_made;
    (match !outcome with Miss _ -> Obs.Counter.incr m_misses | No_miss -> ())
  end;
  { outcome = !outcome; stats; segments = List.rev st.segments }

let run cfg taskset = Obs.Span.with_ ~name:"sim.engine.run" (fun () -> run_inner cfg taskset)

let schedulable cfg taskset =
  match (run cfg taskset).outcome with No_miss -> true | Miss _ -> false

let average_busy_area result =
  let ticks = result.stats.elapsed_ticks in
  if ticks = 0 then 0.0 else float_of_int result.stats.busy_column_ticks /. float_of_int ticks
