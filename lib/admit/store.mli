(** The durable store: a directory with [snapshot.bin] + [journal.wal]
    and the commit/snapshot/recover choreography between them.

    The invariant the whole PR hangs on: after [kill -9] at any byte
    boundary, {!open_dir} recovers exactly the last acknowledged state
    — a torn trailing journal record is truncated, interior corruption
    is refused with a diagnostic, and a snapshot/journal overlap
    replays as no-ops. *)

type t

type recovery = {
  replayed : int;  (** journal records applied on top of the snapshot *)
  torn_bytes : int;  (** half-written tail truncated at open (0 = clean) *)
  snapshot_seq : int;  (** seq restored from the snapshot (0 = none) *)
}

val open_dir :
  ?faults:Faults.t ->
  ?snapshot_every:int ->
  dir:string ->
  unit ->
  (t * recovery, string) result
(** Create [dir] if needed, run recovery, open the journal for
    appending.  [snapshot_every] (default 1024) is the journal record
    count that triggers snapshot rotation. *)

val state : t -> State.t
val dir : t -> string

val commit : ?fsync:bool -> t -> State.record -> (unit, string) result
(** Journal the record (fsync'd by default), then apply it to the
    in-memory state; rotates the snapshot when due.  Raises
    {!Faults.Crash} if the injected fault plan fires mid-append — the
    in-memory state is untouched in that case, mirroring the dying
    process.  [~fsync:false] is for benchmark bulk-loading only. *)

val snapshot : t -> unit
(** Force a snapshot now: write [snapshot.bin] atomically
    (tmp + fsync + rename + dir fsync), then reset the journal. *)

val journal_bytes : t -> int
val close : t -> unit
