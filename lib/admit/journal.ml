[@@@redf.det]

(* The append-only write-ahead journal.

   On-disk layout: an 8-byte magic header, then framed records
   [len:u32le][crc32:u32le][payload] — payload is one canonical-JSON
   mutation record (Store's business; the journal only sees bytes).
   Append = one write of the whole frame + fsync, and the daemon only
   replies after the fsync returned, so an acknowledged mutation is on
   disk whatever happens next.

   Recovery contract ({!scan}):
   - a *torn tail* — the file ends inside a frame, the signature of a
     crash mid-append — is reported so the opener truncates it away:
     the half-written record was never acknowledged, dropping it
     recovers exactly the last acknowledged state;
   - a *corrupt interior record* — a CRC or framing violation with
     more journal after it — cannot come from a crash (appends are
     sequential, so a crash only ever leaves a prefix) and is rejected
     with a diagnostic naming the record and offset: silently skipping
     acknowledged history would be worse than refusing to start.

   [test_admit.ml] tortures this: for random journals, truncation at
   *every* byte of the final record must recover either the full
   record or cleanly none of it, never an in-between state. *)

let header = "REDFWAL\x01"
let header_len = String.length header
let frame_overhead = 8
let max_record_bytes = 64 * 1024 * 1024

let u32le_to_bytes buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let u32le_of s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let frame payload =
  let buf = Buffer.create (String.length payload + frame_overhead) in
  u32le_to_bytes buf (String.length payload);
  u32le_to_bytes buf (Crc32.string payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* inverse of [frame] for a single exactly-framed blob (the snapshot
   file reuses the journal's frame for its one record) *)
let unframe framed =
  if String.length framed < frame_overhead then Error "framed record too short"
  else
    let len = u32le_of framed 0 in
    let crc = u32le_of framed 4 in
    if String.length framed <> frame_overhead + len then
      Error
        (Printf.sprintf "framed record length mismatch (header says %d, %d bytes follow)" len
           (String.length framed - frame_overhead))
    else
      let payload = String.sub framed frame_overhead len in
      let computed = Crc32.string payload in
      if computed <> crc then
        Error (Printf.sprintf "CRC mismatch (stored %08x, computed %08x)" crc computed)
      else Ok payload

(* --- scanning --- *)

type scan = {
  records : string list;  (** payloads, journal order *)
  valid_bytes : int;  (** prefix length holding the header + intact records *)
  torn_bytes : int;  (** trailing bytes of a half-written record (0 = clean) *)
}

let is_prefix ~of_ s = String.length s <= String.length of_ && String.sub of_ 0 (String.length s) = s

let scan_string ~path contents =
  let total = String.length contents in
  if total = 0 then Ok { records = []; valid_bytes = 0; torn_bytes = 0 }
  else if total < header_len then
    if is_prefix ~of_:header contents then
      (* crash while writing the header of a brand-new journal *)
      Ok { records = []; valid_bytes = 0; torn_bytes = total }
    else Error (Printf.sprintf "%s: not a redf journal (bad magic)" path)
  else if String.sub contents 0 header_len <> header then
    Error (Printf.sprintf "%s: not a redf journal (bad magic)" path)
  else begin
    let records = ref [] in
    let off = ref header_len in
    let result = ref None in
    let finish r = result := Some r in
    let n = ref 0 in
    while !result = None do
      let remaining = total - !off in
      if remaining = 0 then finish (Ok { records = List.rev !records; valid_bytes = !off; torn_bytes = 0 })
      else if remaining < frame_overhead then
        finish (Ok { records = List.rev !records; valid_bytes = !off; torn_bytes = remaining })
      else begin
        incr n;
        let len = u32le_of contents !off in
        let crc = u32le_of contents (!off + 4) in
        if len > max_record_bytes then
          finish
            (Error
               (Printf.sprintf
                  "%s: record %d at offset %d: implausible length %d — corrupt journal" path !n
                  !off len))
        else if remaining < frame_overhead + len then
          finish
            (Ok
               { records = List.rev !records; valid_bytes = !off; torn_bytes = remaining })
        else begin
          let payload = String.sub contents (!off + frame_overhead) len in
          let computed = Crc32.string payload in
          if computed <> crc then
            if remaining = frame_overhead + len then
              (* the bad record is the very last thing in the file: no
                 acknowledged history follows it, so treat it like a
                 torn tail — the crash-y case a block-granular disk can
                 produce even when the byte count adds up *)
              finish
                (Ok
                   { records = List.rev !records; valid_bytes = !off; torn_bytes = remaining })
            else
              finish
                (Error
                   (Printf.sprintf
                      "%s: record %d at offset %d: CRC mismatch (stored %08x, computed %08x) \
                       with intact records after it — corrupt journal, refusing to replay" path
                      !n !off crc computed))
          else begin
            records := payload :: !records;
            off := !off + frame_overhead + len
          end
        end
      end
    done;
    Option.get !result
  end

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))

let scan ~path =
  match read_file path with
  | None -> Ok { records = []; valid_bytes = 0; torn_bytes = 0 }
  | Some contents -> scan_string ~path contents

(* --- appending --- *)

type t = { fd : Unix.file_descr; faults : Faults.t; mutable bytes : int }

let rec write_all fd s off =
  if off < String.length s then begin
    match Unix.write_substring fd s off (String.length s - off) with
    | n -> write_all fd s (off + n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off
  end

(* open for appending after a scan: truncate any torn tail away, write
   the header if the file is new (or its header itself was torn) *)
let open_append ?(faults = Faults.none) ~path ~valid_bytes () =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644 in
  match
    let keep = if valid_bytes = 0 then 0 else valid_bytes in
    Unix.ftruncate fd keep;
    if keep = 0 then write_all fd header 0;
    let size = (Unix.fstat fd).Unix.st_size in
    ignore (Unix.lseek fd size Unix.SEEK_SET);
    Unix.fsync fd;
    { fd; faults; bytes = size }
  with
  | t -> t
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let bytes t = t.bytes
let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let append ?(fsync = true) t payload =
  let framed = frame payload in
  match Faults.on_append t.faults ~len:(String.length framed) with
  | `Ok ->
    write_all t.fd framed 0;
    if fsync then Unix.fsync t.fd;
    t.bytes <- t.bytes + String.length framed
  | `Torn k ->
    write_all t.fd (String.sub framed 0 k) 0;
    Unix.fsync t.fd;
    raise
      (Faults.Crash
         (Faults.Torn, Printf.sprintf "torn append: %d of %d bytes written" k (String.length framed)))
  | `Lost -> raise (Faults.Crash (Faults.Lost, "fsync failed: record lost"))
  | `Crash_after ->
    write_all t.fd framed 0;
    Unix.fsync t.fd;
    t.bytes <- t.bytes + String.length framed;
    raise (Faults.Crash (Faults.After_append, "crash between append and reply"))

(* empty the journal after a snapshot made its records redundant *)
let reset t =
  Unix.ftruncate t.fd header_len;
  ignore (Unix.lseek t.fd header_len Unix.SEEK_SET);
  Unix.fsync t.fd;
  t.bytes <- header_len
