(** Deterministic fault injection for the write-ahead journal.

    Built for the chaos harness ([redf chaos-admit]) and gated off by
    default: {!none} never fires, and the daemon only ever sees faults
    when the CLI (or [REDF_ADMIT_FAULTS]) passes a spec through
    [redf admit --faults].  A plan is a spec of per-mille probabilities
    plus a seed; equal (spec, seed) pairs fire identically, so every
    chaos failure replays.

    A firing fault models [kill -9] at a specific byte boundary: the
    journal is left exactly as the dying process would leave it, and
    {!Crash} is raised for the harness to catch and "restart" from. *)

type fate =
  | Torn  (** a strict prefix of the record reached the file *)
  | Lost  (** the record is gone entirely *)
  | After_append  (** the record is durable; only the reply was lost *)

exception Crash of fate * string
(** The injected [kill -9].  The chaos harness needs the {!fate} to
    know whether the in-flight mutation must, may not, or must not
    appear in the recovered state. *)

type spec = {
  torn_append : int;
      (** per-mille chance an append crashes mid-write: a strict prefix
          of the framed record reaches the file. *)
  fsync_fail : int;
      (** per-mille chance fsync fails at append: the record is lost
          entirely (the conservative reading of a failed fsync). *)
  crash_after_append : int;
      (** per-mille chance of dying between the fsync'd append and the
          reply: the record is durable, the client never hears back —
          the case request-id deduplication exists for. *)
}

val no_faults : spec

val parse_spec : string -> (spec, string) result
(** Parse ["torn=5,fsync=2,after-append=10"] (integers per mille). *)

type t

val none : t
(** Never fires (no Rng is even consulted). *)

val create : seed:int -> spec -> t
val active : t -> bool

val on_append : t -> len:int -> [ `Ok | `Torn of int | `Lost | `Crash_after ]
(** The fate of the [len]-byte framed record about to be appended.
    At most one fault fires; [`Torn k] asks the journal to write only
    the first [k] bytes ([1 <= k < len]) before raising {!Crash}. *)
