[@@@redf.det]

(* The admission daemon's brain: a live device model (analyzer +
   fpga_area fixed at startup), the admitted taskset, and the
   admit protocol over it.

   One JSON object per line:
     {"op":"add-task","id":"r1","task":{"name":"tau1","C":"1.26","D":7,"T":7,"A":9}}
     {"op":"remove-task","id":"r2","name":"tau1"}
     {"op":"query"}
     {"op":"what-if","add":[task…],"drop":["name"…]}

   [id] is echoed in the reply and doubles as the idempotency key for
   mutations: an acknowledged mutation's reply line is journaled with
   its id, so a retried request whose reply got lost is answered with
   the stored bytes instead of being applied twice.

   Admission policy: a task is admitted iff the analyzer ACCEPTs the
   candidate taskset (current + task) on the configured device; the
   empty taskset is trivially schedulable (no analyzer call).  Removals
   of present tasks are always admitted.  Rejected mutations are not
   journaled — rejection is deterministic, so a retry re-evaluates to
   the same answer.

   Verdicts always come from {!Cache.Verdicts} via the incremental
   {!Cache.Delta} key — byte-identical to a from-scratch analyzer run
   by the cache's contract, which the chaos harness re-checks against
   [analyzer.decide] directly.

   Handlers are serial by design: mutations order the journal, and the
   event loop ([Server.Loop]) batches lines through {!handle_lines} on
   one domain. *)

module Json = Core.Json
module Protocol = Server.Protocol

type t = {
  store : Store.t;
  cache : Cache.Verdicts.t;
  analyzer : Core.Analyzer.t;
  fpga_area : int;
  mutable delta : Cache.Delta.t;  (* mirrors Store.state's taskset *)
}

let ( let* ) = Result.bind

let create ?faults ?snapshot_every ?(cache_capacity = 4096) ~analyzer ~fpga_area ~dir () =
  let* store, recovery = Store.open_dir ?faults ?snapshot_every ~dir () in
  let delta = Cache.Delta.of_tasks (State.tasks (Store.state store)) in
  let cache = Cache.Verdicts.create ~metrics_prefix:"admit_cache" ~capacity:cache_capacity () in
  Ok ({ store; cache; analyzer; fpga_area; delta }, recovery)

let state t = Store.state t.store
let store t = t.store
let analyzer t = t.analyzer
let fpga_area t = t.fpga_area

(* --- verdict evaluation --- *)

(* None = empty taskset (trivially schedulable, no analyzer involved) *)
let decide t delta ~original =
  if Cache.Delta.size delta = 0 then None
  else
    let key = Cache.Delta.key delta ~analyzer:t.analyzer ~fpga_area:t.fpga_area in
    let canonical = Cache.Delta.canonical_taskset delta in
    let order = Cache.Delta.order delta ~original in
    Some
      (Cache.Verdicts.decide_canonical t.cache ~analyzer:t.analyzer ~fpga_area:t.fpga_area ~key
         ~canonical ~order)

let accepted = function None -> true | Some v -> Core.Verdict.accepted v

let verdict_fields t = function
  | Some v -> (
    match Core.Report.verdict_json t.analyzer v with Json.Obj fields -> fields | _ -> [])
  | None ->
    [
      ("analyzer_version", Json.String t.analyzer.Core.Analyzer.version);
      ("analyzer", Json.String t.analyzer.Core.Analyzer.name);
      ("accepted", Json.Bool true);
      ("checks", Json.List []);
      ("note", Json.String "empty taskset: trivially schedulable");
    ]

(* --- wire parsing --- *)

(* same time conventions as the analyze protocol (decimal string or
   integer units), but the daemon requires a unique, non-empty name:
   names are how tasks are removed and deduplicated *)
let time_field obj key =
  match Json.member key obj with
  | None -> Error (Printf.sprintf "task: %S: missing" key)
  | Some (Json.String s) -> (
    match Model.Time.of_decimal_string s with
    | time -> Ok time
    | exception Invalid_argument _ ->
      Error (Printf.sprintf "task: %S: not a decimal time (at most 3 fractional digits)" key))
  | Some (Json.Int n) -> Ok (Model.Time.of_units n)
  | Some _ -> Error (Printf.sprintf "task: %S: expected a decimal string or an integer" key)

let wire_task json =
  let* name =
    match Json.member "name" json with
    | Some (Json.String "") -> Error "task: \"name\": must be non-empty"
    | Some (Json.String s) -> Ok s
    | _ -> Error "task: \"name\": required (admission is by name)"
  in
  let* exec = time_field json "C" in
  let* deadline = time_field json "D" in
  let* period = time_field json "T" in
  let* area =
    match Json.member "A" json with
    | Some (Json.Int a) -> Ok a
    | _ -> Error "task: \"A\": expected an integer area"
  in
  match Model.Task.make ~name ~exec ~deadline ~period ~area () with
  | task -> Ok task
  | exception Invalid_argument msg -> Error (Printf.sprintf "task %S: %s" name msg)

let request_id line = Protocol.request_id line

(* mutation lines get priority headroom when the loop sheds load *)
let is_mutation line =
  match Json.of_string line with
  | Error _ -> false
  | Ok json -> (
    match Json.member "op" json with
    | Some (Json.String ("add-task" | "remove-task")) -> true
    | _ -> false)

(* --- handlers --- *)

let envelope ?id fields = Protocol.envelope ?id "admit" fields

let base_fields op st = [ ("op", Json.String op); ("seq", Json.Int (State.seq st)) ]

let dedup t id =
  match id with None -> None | Some id -> State.reply_for (state t) (Json.to_string id)

let handle_add t ~id json =
  match dedup t id with
  | Some stored -> stored
  | None -> (
    let attempt =
      let* task_json =
        match Json.member "task" json with
        | Some j -> Ok j
        | None -> Error "add-task: \"task\": missing"
      in
      let* task = wire_task task_json in
      let name = task.Model.Task.name in
      let st = state t in
      if State.mem st name then
        Error (Printf.sprintf "add-task: a task named %S is already admitted" name)
      else
        let candidate = Cache.Delta.add t.delta task in
        let original = State.names st @ [ name ] in
        let verdict = decide t candidate ~original in
        let fields = verdict_fields t verdict in
        if not (accepted verdict) then
          Ok
            (envelope ?id
               (( "admitted", Json.Bool false )
               :: base_fields "add-task" st
               @ [ ("tasks", Json.Int (State.size st)) ]
               @ fields))
        else
          let seq = State.seq st + 1 in
          let reply =
            envelope ?id
              (( "admitted", Json.Bool true )
              :: [ ("op", Json.String "add-task"); ("seq", Json.Int seq) ]
              @ [ ("tasks", Json.Int (State.size st + 1)) ]
              @ fields)
          in
          let record =
            {
              State.seq;
              rid = Option.map Json.to_string id;
              op = State.Add task;
              reply;
            }
          in
          let* () = Store.commit t.store record in
          t.delta <- candidate;
          Ok reply
    in
    match attempt with Ok reply -> reply | Error msg -> Protocol.error_response ?id msg)

let handle_remove t ~id json =
  match dedup t id with
  | Some stored -> stored
  | None -> (
    let attempt =
      let* name =
        match Json.member "name" json with
        | Some (Json.String s) -> Ok s
        | _ -> Error "remove-task: \"name\": expected a string"
      in
      let st = state t in
      if not (State.mem st name) then
        Error (Printf.sprintf "remove-task: no admitted task named %S" name)
      else
        let candidate = Cache.Delta.remove t.delta name in
        let original = List.filter (fun n -> n <> name) (State.names st) in
        let verdict = decide t candidate ~original in
        let seq = State.seq st + 1 in
        let reply =
          envelope ?id
            (( "admitted", Json.Bool true )
            :: [ ("op", Json.String "remove-task"); ("seq", Json.Int seq) ]
            @ [ ("tasks", Json.Int (State.size st - 1)) ]
            @ verdict_fields t verdict)
        in
        let record =
          { State.seq; rid = Option.map Json.to_string id; op = State.Remove name; reply }
        in
        let* () = Store.commit t.store record in
        t.delta <- candidate;
        Ok reply
    in
    match attempt with Ok reply -> reply | Error msg -> Protocol.error_response ?id msg)

let handle_query t ~id =
  let st = state t in
  let verdict = decide t t.delta ~original:(State.names st) in
  envelope ?id
    (base_fields "query" st
    @ [
        ("tasks", Json.Int (State.size st));
        ("names", Json.List (List.map (fun n -> Json.String n) (State.names st)));
      ]
    @ verdict_fields t verdict)

let handle_what_if t ~id json =
  let attempt =
    let* drops =
      match Json.member "drop" json with
      | None -> Ok []
      | Some (Json.List l) ->
        List.fold_left
          (fun acc e ->
            let* acc = acc in
            match e with
            | Json.String s -> Ok (s :: acc)
            | _ -> Error "what-if: \"drop\": expected an array of task names")
          (Ok []) l
        |> Result.map List.rev
      | Some _ -> Error "what-if: \"drop\": expected an array of task names"
    in
    let* adds =
      match Json.member "add" json with
      | None -> Ok []
      | Some (Json.List l) ->
        List.fold_left
          (fun acc e ->
            let* acc = acc in
            let* task = wire_task e in
            Ok (task :: acc))
          (Ok []) l
        |> Result.map List.rev
      | Some _ -> Error "what-if: \"add\": expected an array of tasks"
    in
    let st = state t in
    let* candidate, original =
      List.fold_left
        (fun acc name ->
          let* delta, names = acc in
          if not (Cache.Delta.mem delta name) then
            Error (Printf.sprintf "what-if: no admitted task named %S" name)
          else Ok (Cache.Delta.remove delta name, List.filter (fun n -> n <> name) names))
        (Ok (t.delta, State.names st))
        drops
    in
    let* candidate, original =
      List.fold_left
        (fun acc task ->
          let* delta, names = acc in
          let name = task.Model.Task.name in
          if Cache.Delta.mem delta name then
            Error (Printf.sprintf "what-if: a task named %S is already present" name)
          else Ok (Cache.Delta.add delta task, names @ [ name ]))
        (Ok (candidate, original))
        adds
    in
    let verdict = decide t candidate ~original in
    Ok
      (envelope ?id
         (base_fields "what-if" st
         @ [ ("tasks", Json.Int (Cache.Delta.size candidate)) ]
         @ verdict_fields t verdict))
  in
  match attempt with Ok reply -> reply | Error msg -> Protocol.error_response ?id msg

let handle_line t line =
  match Json.of_string line with
  | Error msg -> Protocol.error_response ("malformed JSON: " ^ msg)
  | Ok json -> (
    let id =
      match Json.member "id" json with
      | Some (Json.Int _ | Json.String _) as id -> id
      | Some _ | None -> None
    in
    match Json.member "op" json with
    | Some (Json.String "add-task") -> handle_add t ~id json
    | Some (Json.String "remove-task") -> handle_remove t ~id json
    | Some (Json.String "query") -> handle_query t ~id
    | Some (Json.String "what-if") -> handle_what_if t ~id json
    | Some (Json.String op) ->
      Protocol.error_response ?id
        (Printf.sprintf "unknown op %S (known: add-task, remove-task, query, what-if)" op)
    | Some _ | None -> Protocol.error_response ?id "\"op\": expected a string")

let handle_lines t lines = List.map (handle_line t) lines

let close t = Store.close t.store
