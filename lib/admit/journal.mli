(** The append-only write-ahead journal under [redf admit]'s state dir.

    Layout: an 8-byte magic header, then framed records
    [[len:u32le][crc32:u32le][payload]].  {!append} writes the whole
    frame in one go and fsyncs before returning; the daemon replies to
    a mutation only after its record's append returned, which is the
    durability half of the recovery invariant:

    {e recovered state = exactly the last acknowledged state} — a torn
    trailing record (crash mid-append; never acknowledged) is truncated
    away on open, while a corrupt record with intact journal {e after}
    it cannot be a crash artifact (appends are sequential) and is
    rejected with a diagnostic rather than silently skipped.

    Fault injection ({!Faults}) hooks {!append} only; scanning and
    recovery run fault-free, as they would after a real crash. *)

type t

type scan = {
  records : string list;  (** intact payloads, journal order *)
  valid_bytes : int;  (** length of the intact prefix (header + records) *)
  torn_bytes : int;  (** trailing bytes of a half-written record; 0 = clean *)
}

val scan : path:string -> (scan, string) result
(** Read and validate the whole journal.  A missing file scans as
    empty; [Error] is the corrupt-interior diagnostic. *)

val open_append : ?faults:Faults.t -> path:string -> valid_bytes:int -> unit -> t
(** Open for appending after a {!scan}: the file is truncated to
    [valid_bytes] (dropping any torn tail), the header is (re)written
    when nothing valid survives, and the result is positioned at the
    end.  @raise Unix.Unix_error on I/O failure. *)

val append : ?fsync:bool -> t -> string -> unit
(** Frame, write and (by default) fsync one record.  [~fsync:false] is
    for bulk journal construction in benchmarks only — the daemon
    always syncs.  @raise Faults.Crash when the fault plan fires (the
    file is left exactly as the dying process would leave it). *)

val reset : t -> unit
(** Truncate back to just the header — called after a snapshot made
    the records redundant. *)

val bytes : t -> int
val close : t -> unit

val frame_overhead : int
(** Bytes of framing per record ([len] + [crc]). *)

val frame : string -> string
(** [[len:u32le][crc32:u32le][payload]] — the snapshot file reuses this
    for its single record; the torture tests build journals from it. *)

val unframe : string -> (string, string) result
(** Inverse of {!frame} for one exactly-framed blob. *)

(**/**)

val header : string
(** Exposed for the torture tests. *)
