(** The admission-control daemon: a live device model (analyzer +
    FPGA area), the admitted taskset, and the line-oriented admit
    protocol over them.

    Requests (one JSON object per line; [id] optional, [Int] or
    [String], echoed in the reply):
    {v {"op":"add-task","id":"r1","task":{"name":"tau1","C":"1.26","D":7,"T":7,"A":9}}
       {"op":"remove-task","id":"r2","name":"tau1"}
       {"op":"query"}
       {"op":"what-if","add":[task…],"drop":["name"…]} v}

    Replies are {!Server.Protocol} envelopes of kind ["admit"] (or
    ["error"]), carrying [op], [seq], [tasks] and the full verdict of
    the resulting (or hypothetical) taskset.

    A task is admitted iff the analyzer ACCEPTs the candidate taskset
    on the configured device; the empty taskset is trivially
    schedulable.  Admitted mutations are journaled (fsync'd) {e before}
    the reply, with the reply bytes stored under the request [id]: a
    retried mutation whose reply was lost gets the stored bytes back
    and is never applied twice.  Rejected mutations are not journaled —
    rejection is deterministic and a retry re-evaluates identically.

    Handlers are serial: the journal orders mutations. *)

type t

val create :
  ?faults:Faults.t ->
  ?snapshot_every:int ->
  ?cache_capacity:int ->
  analyzer:Core.Analyzer.t ->
  fpga_area:int ->
  dir:string ->
  unit ->
  (t * Store.recovery, string) result
(** Open (and recover) the durable store under [dir] and rebuild the
    incremental canonical form of the admitted taskset. *)

val state : t -> State.t
val store : t -> Store.t
val analyzer : t -> Core.Analyzer.t
val fpga_area : t -> int

val handle_line : t -> string -> string
(** One reply line per request line (no trailing newline).  May raise
    {!Faults.Crash} when fault injection is active. *)

val handle_lines : t -> string list -> string list

val is_mutation : string -> bool
(** Whether a raw request line is an [add-task]/[remove-task] — the
    loop gives mutations shedding headroom over [what-if]/[query]. *)

val request_id : string -> Core.Json.t option

val close : t -> unit
