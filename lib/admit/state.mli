(** The admission daemon's pure state: admitted tasks (admission order,
    unique names), the mutation sequence number, and the rid -> reply
    map behind idempotent retries.

    Everything durable goes through the two codecs here — journal
    {!record}s and snapshots — both canonical JSON (sorted keys, exact
    tick integers), so a given state has exactly one byte form. *)

type op = Add of Model.Task.t | Remove of string

type record = {
  seq : int;  (** 1-based position in the mutation history *)
  rid : string option;  (** client request id, when one was supplied *)
  op : op;
  reply : string;  (** the acknowledged reply line, replayed on duplicate rid *)
}

type t

val empty : t
val seq : t -> int
val tasks : t -> Model.Task.t list
val names : t -> string list
val size : t -> int
val mem : t -> string -> bool

val reply_for : t -> string -> string option
(** The stored reply for a request id already applied, if any. *)

val equal : t -> t -> bool

val apply_op : t -> op -> (t, string) result
(** Structural application: rejects unnamed/duplicate adds and removes
    of absent names.  Admission policy (the analyzer) lives in
    {!Daemon}, not here. *)

val apply_record : t -> record -> (t, string) result
(** Replay one journal record.  Records at or below the current [seq]
    are no-ops (snapshot overlap); a sequence gap is an error. *)

val task_to_json : Model.Task.t -> Core.Json.t
val task_of_json : Core.Json.t -> (Model.Task.t, string) result

val record_to_string : record -> string
val record_of_string : string -> (record, string) result

val to_snapshot_string : t -> string
val of_snapshot_string : string -> (t, string) result
