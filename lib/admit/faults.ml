[@@@redf.det]

(* Deterministic fault injection for the durability stack.

   A plan is (spec, seed): the spec names per-mille probabilities for
   each fault site, the seed drives a private Rng stream, so a chaos
   run replays byte-identically.  All probabilities are integers in
   [0, 1000] — no floats, no wall clock, no environment reads here
   (the CLI/env gating lives in bin/).

   A fault that fires models a process death: the journal is left in
   the on-disk state the fault dictates (a torn prefix, a lost record,
   or a fully durable record) and {!Crash} is raised.  The chaos
   harness catches it, "restarts" by re-running recovery over the same
   directory, and checks the recovery invariant. *)

type fate = Torn | Lost | After_append

exception Crash of fate * string

type spec = {
  torn_append : int;  (* crash mid-append: a strict prefix of the record hits disk *)
  fsync_fail : int;  (* fsync fails at append: the whole record is lost *)
  crash_after_append : int;  (* crash between append and reply: record durable, reply lost *)
}

let no_faults = { torn_append = 0; fsync_fail = 0; crash_after_append = 0 }

type t = { spec : spec; rng : Rng.t option }

let none = { spec = no_faults; rng = None }
let create ~seed spec = { spec; rng = Some (Rng.create ~seed) }
let active t = t.spec <> no_faults

let parse_spec s =
  let parse_field acc field =
    match String.index_opt field '=' with
    | None -> Error (Printf.sprintf "fault %S: expected NAME=PERMILLE" field)
    | Some i -> (
      let name = String.trim (String.sub field 0 i) in
      let value = String.trim (String.sub field (i + 1) (String.length field - i - 1)) in
      match (acc, int_of_string_opt value) with
      | Error _, _ -> acc
      | Ok _, None -> Error (Printf.sprintf "fault %S: %S is not an integer" name value)
      | Ok _, Some p when p < 0 || p > 1000 ->
        Error (Printf.sprintf "fault %S: per-mille probability %d out of [0, 1000]" name p)
      | Ok spec, Some p -> (
        match name with
        | "torn" -> Ok { spec with torn_append = p }
        | "fsync" -> Ok { spec with fsync_fail = p }
        | "after-append" -> Ok { spec with crash_after_append = p }
        | _ ->
          Error (Printf.sprintf "unknown fault %S (known: torn, fsync, after-append)" name)))
  in
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun f -> f <> "")
  |> List.fold_left parse_field (Ok no_faults)

let fires t permille =
  match t.rng with
  | None -> false
  | Some rng -> permille > 0 && Rng.int rng 1000 < permille

(* What happens to the [len]-byte record being appended.  At most one
   fault fires per append; [`Torn] picks a strict prefix length from
   the same stream, so the torn byte boundary is seed-reproducible. *)
let on_append t ~len =
  if fires t t.spec.torn_append && len > 1 then
    `Torn (1 + Rng.int (Option.get t.rng) (len - 1))
  else if fires t t.spec.fsync_fail then `Lost
  else if fires t t.spec.crash_after_append then `Crash_after
  else `Ok
