[@@@redf.det]

(* The durable store: one directory holding the snapshot and the
   write-ahead journal, and the coordination between them.

   Commit path: frame + append + fsync the record, only then apply it
   to the in-memory state — so a record on disk is exactly an
   acknowledged (or about-to-be-acknowledged) mutation, and the crash
   window between append and reply loses at most the reply, never the
   state (rid dedup gives the retrying client the stored reply).

   Snapshot rotation: every [snapshot_every] journaled records, the
   full state is written to [snapshot.bin.tmp], fsync'd, renamed over
   [snapshot.bin], the directory fsync'd, and only then the journal is
   reset.  Every step is crash-safe: dying before the rename leaves the
   old snapshot + full journal; dying between rename and reset leaves
   the new snapshot + a journal whose records replay as no-ops
   (State.apply_record skips seq <= snapshot seq).

   Recovery: load the snapshot (if any), scan the journal, refuse on
   interior corruption, truncate a torn tail, replay the rest. *)

let journal_file = "journal.wal"
let snapshot_file = "snapshot.bin"
let snapshot_magic = "REDFSNP\x01"
let default_snapshot_every = 1024

type t = {
  dir : string;
  journal : Journal.t;
  mutable state : State.t;
  mutable journal_records : int;
  snapshot_every : int;
}

type recovery = {
  replayed : int;  (* journal records applied on top of the snapshot *)
  torn_bytes : int;  (* half-written tail truncated at open (0 = clean) *)
  snapshot_seq : int;  (* seq the snapshot restored (0 = none) *)
}

let ( let* ) = Result.bind
let ( // ) = Filename.concat

let state t = t.state
let dir t = t.dir

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error _ -> ()  (* some filesystems refuse; rename already happened *)
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

(* the snapshot is one CRC-framed canonical-JSON state under its own
   magic; rename makes it atomic, so unlike the journal any damage here
   is corruption, never a torn write — refuse loudly *)
let load_snapshot path =
  match read_file path with
  | None -> Ok None
  | Some contents ->
    let magic_len = String.length snapshot_magic in
    if
      String.length contents < magic_len + Journal.frame_overhead
      || String.sub contents 0 magic_len <> snapshot_magic
    then Error (Printf.sprintf "%s: not a redf snapshot (bad magic)" path)
    else
      let framed = String.sub contents magic_len (String.length contents - magic_len) in
      let* payload =
        match Journal.unframe framed with
        | Ok p -> Ok p
        | Error msg -> Error (Printf.sprintf "%s: %s — corrupt snapshot" path msg)
      in
      let* st = State.of_snapshot_string payload in
      Ok (Some st)

let write_snapshot dir st =
  let tmp = dir // (snapshot_file ^ ".tmp") in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let contents = snapshot_magic ^ Journal.frame (State.to_snapshot_string st) in
      let rec write_all off =
        if off < String.length contents then
          match Unix.write_substring fd contents off (String.length contents - off) with
          | n -> write_all (off + n)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
      in
      write_all 0;
      Unix.fsync fd);
  Unix.rename tmp (dir // snapshot_file);
  fsync_dir dir

let replay base payloads =
  List.fold_left
    (fun acc payload ->
      let* st, n = acc in
      let* record = State.record_of_string payload in
      let* st = State.apply_record st record in
      Ok (st, if record.State.seq > State.seq base then n + 1 else n))
    (Ok (base, 0)) payloads

let open_dir ?(faults = Faults.none) ?(snapshot_every = default_snapshot_every) ~dir () =
  (match Unix.mkdir dir 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let journal_path = dir // journal_file in
  let* snapshot = load_snapshot (dir // snapshot_file) in
  let base = Option.value snapshot ~default:State.empty in
  let* scan = Journal.scan ~path:journal_path in
  let* st, replayed = replay base scan.Journal.records in
  let journal = Journal.open_append ~faults ~path:journal_path ~valid_bytes:scan.Journal.valid_bytes () in
  let t =
    {
      dir;
      journal;
      state = st;
      journal_records = List.length scan.Journal.records;
      snapshot_every = max 1 snapshot_every;
    }
  in
  Ok
    ( t,
      {
        replayed;
        torn_bytes = scan.Journal.torn_bytes;
        snapshot_seq = (match snapshot with None -> 0 | Some s -> State.seq s);
      } )

let snapshot t =
  write_snapshot t.dir t.state;
  Journal.reset t.journal;
  t.journal_records <- 0

(* Durability first, then visibility: the record hits the journal (and
   the platters) before the in-memory state moves.  Faults.Crash from
   the append propagates with the state untouched — exactly the dying
   process's view. *)
let commit ?(fsync = true) t record =
  match State.apply_record t.state record with
  | Error _ as e -> e  (* constructed from stale state: caller bug, nothing journaled *)
  | Ok st ->
    Journal.append ~fsync t.journal (State.record_to_string record);
    t.state <- st;
    t.journal_records <- t.journal_records + 1;
    if t.journal_records >= t.snapshot_every then snapshot t;
    Ok ()

let journal_bytes t = Journal.bytes t.journal
let close t = Journal.close t.journal
