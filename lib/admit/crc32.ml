[@@@redf.det]

(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum
   guarding every journal record and snapshot.  Table-driven, one byte
   per step; the table is a pure function of the polynomial, computed
   once at module init.  Values are stored in an int (OCaml ints are
   63-bit on every platform we build for), masked to 32 bits. *)

let poly = 0xEDB88320
let mask = 0xFFFFFFFF

let table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then poly lxor (!c lsr 1) else !c lsr 1
      done;
      !c land mask)
[@@redf.allow "domain-safety"
                "written once at module init from a pure function of the polynomial, read-only \
                 afterwards"]

let update crc s off len =
  if off < 0 || len < 0 || off + len > String.length s then invalid_arg "Crc32.update";
  let c = ref (crc lxor mask) in
  for i = off to off + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor mask land mask

let string s = update 0 s 0 (String.length s)
