[@@@redf.det]

(* The crash/restart torture harness behind [redf chaos-admit].

   One run = [cycles] daemon lifetimes over a single state directory.
   Each lifetime drives random admit-protocol traffic (from the run
   seed; equal seeds replay byte-identically) against a daemon whose
   journal has fault injection armed, until either the op budget runs
   out or an injected crash kills it.  Then the daemon is "restarted"
   — recovery over the same directory — and the harness asserts the
   recovery invariant against a reference State.t it maintains from
   the acknowledged replies alone:

   - crash-free close, Torn, Lost: recovered state = reference (the
     in-flight mutation, if any, was never acknowledged and must not
     survive);
   - After_append: the record is durable but the reply was lost —
     recovered state = reference + exactly that one record, with the
     never-delivered reply stored under the request id (the lost-reply
     case rid dedup exists for).

   Independently, every verdict the daemon emits (admit decisions,
   query, what-if) is compared field-for-field against a from-scratch
   [analyzer.decide] on the taskset the harness knows that verdict
   describes — the byte-identity contract of the Delta/Verdicts
   incremental path, checked end to end through the wire format. *)

module Json = Core.Json

type config = {
  seed : int;
  cycles : int;  (* daemon lifetimes (= restarts/recoveries) *)
  ops_per_cycle : int;  (* op budget per lifetime if no crash fires *)
  spec : Faults.spec;
  analyzer : Core.Analyzer.t;
  fpga_area : int;
  snapshot_every : int;
}

type stats = {
  cycles : int;
  crashes : int;  (* lifetimes ended by an injected crash *)
  torn_recoveries : int;  (* recoveries that truncated a torn tail *)
  replayed : int;  (* journal records replayed across all recoveries *)
  ops : int;  (* protocol lines driven *)
  admitted : int;
  rejected : int;
  dedup_hits : int;  (* duplicate-id retries answered without re-applying *)
  verdicts_checked : int;  (* verdicts compared against from-scratch analysis *)
}

let default_spec = { Faults.torn_append = 60; fsync_fail = 40; crash_after_append = 80 }

let default ~analyzer ~fpga_area =
  {
    seed = 1;
    cycles = 50;
    ops_per_cycle = 40;
    spec = default_spec;
    analyzer;
    fpga_area;
    snapshot_every = 32;
  }

let ( let* ) = Result.bind

(* --- random traffic --- *)

type gen = { rng : Rng.t; mutable next_task : int; mutable next_id : int }

let fresh_task g ~fpga_area =
  g.next_task <- g.next_task + 1;
  let period = 4 + Rng.int g.rng 60 in
  let deadline = 1 + Rng.int g.rng period in
  let exec = 1 + Rng.int g.rng deadline in
  let area = 1 + Rng.int g.rng (max 1 fpga_area) in
  Model.Task.make
    ~name:(Printf.sprintf "tau%d" g.next_task)
    ~exec:(Model.Time.of_units exec) ~deadline:(Model.Time.of_units deadline)
    ~period:(Model.Time.of_units period) ~area ()

let fresh_id g =
  g.next_id <- g.next_id + 1;
  Printf.sprintf "r%d" g.next_id

(* generated times are whole units, so Int fields fit the wire *)
let units t = Model.Time.ticks t / 1000

let task_wire_json (task : Model.Task.t) =
  Json.Obj
    [
      ("name", Json.String task.Model.Task.name);
      ("C", Json.Int (units task.Model.Task.exec));
      ("D", Json.Int (units task.Model.Task.deadline));
      ("T", Json.Int (units task.Model.Task.period));
      ("A", Json.Int task.Model.Task.area);
    ]

let add_line ~id task =
  Json.to_string
    (Json.Obj
       [ ("op", Json.String "add-task"); ("id", Json.String id); ("task", task_wire_json task) ])

let remove_line ~id name =
  Json.to_string
    (Json.Obj
       [ ("op", Json.String "remove-task"); ("id", Json.String id); ("name", Json.String name) ])

let query_line = Json.to_string (Json.Obj [ ("op", Json.String "query") ])

let what_if_line ~add ~drop =
  Json.to_string
    (Json.Obj
       [
         ("op", Json.String "what-if");
         ("add", Json.List (List.map task_wire_json add));
         ("drop", Json.List (List.map (fun n -> Json.String n) drop));
       ])

(* --- verdict oracle --- *)

let json_field reply key =
  match Json.of_string reply with Error _ -> None | Ok json -> Json.member key json

(* the reply's verdict, field for field, against a from-scratch
   analyzer run on the taskset the harness knows the reply describes *)
let check_verdict cfg ~what ~tasks reply =
  let expect_accepted, expect_checks =
    match tasks with
    | [] -> (Json.Bool true, Json.List [])
    | _ ->
      let fresh =
        cfg.analyzer.Core.Analyzer.decide ~fpga_area:cfg.fpga_area (Model.Taskset.of_list tasks)
      in
      let jv = Core.Verdict.to_json fresh in
      ( Option.value (Json.member "accepted" jv) ~default:Json.Null,
        Option.value (Json.member "checks" jv) ~default:Json.Null )
  in
  let got key = Option.map Json.to_string (json_field reply key) in
  if got "accepted" <> Some (Json.to_string expect_accepted) then
    Error
      (Printf.sprintf "%s: verdict mismatch: accepted %s, from-scratch %s (reply %s)" what
         (Option.value (got "accepted") ~default:"<missing>")
         (Json.to_string expect_accepted) reply)
  else if got "checks" <> Some (Json.to_string expect_checks) then
    Error (Printf.sprintf "%s: checks diverge from from-scratch analysis (reply %s)" what reply)
  else Ok ()

let reply_admitted reply =
  match json_field reply "admitted" with Some (Json.Bool b) -> b | _ -> false

let reply_is_error reply =
  match json_field reply "kind" with Some (Json.String "error") -> true | _ -> false

(* --- the run --- *)

let run ?(progress = fun _ -> ()) ~dir cfg =
  let gen = { rng = Rng.create ~seed:cfg.seed; next_task = 0; next_id = 0 } in
  let stats =
    ref
      {
        cycles = 0;
        crashes = 0;
        torn_recoveries = 0;
        replayed = 0;
        ops = 0;
        admitted = 0;
        rejected = 0;
        dedup_hits = 0;
        verdicts_checked = 0;
      }
  in
  let bump f = stats := f !stats in
  (* acknowledged state, rebuilt from replies the "client" actually saw *)
  let reference = ref State.empty in
  (* (fate, id, op) of the mutation in flight at the last crash *)
  let pending = ref None in
  let apply_ack ~id ~op reply =
    match
      State.apply_record !reference
        {
          State.seq = State.seq !reference + 1;
          rid = Some (Json.to_string (Json.String id));
          op;
          reply;
        }
    with
    | Ok st -> reference := st
    | Error msg -> failwith ("chaos: reference apply: " ^ msg)
  in
  let check_recovery d (recovery : Store.recovery) =
    let recovered = Daemon.state d in
    if recovery.Store.torn_bytes > 0 then
      bump (fun s -> { s with torn_recoveries = s.torn_recoveries + 1 });
    bump (fun s -> { s with replayed = s.replayed + recovery.Store.replayed });
    let* expected =
      match !pending with
      | None | Some ((Faults.Torn | Faults.Lost), _, _) -> Ok !reference
      | Some (Faults.After_append, id, op) -> (
        (* durable but unacknowledged: the recovered state must contain
           it, with the never-delivered reply stored under the id *)
        let rid = Json.to_string (Json.String id) in
        match State.reply_for recovered rid with
        | None -> Error (Printf.sprintf "recovery lost the durable (after-append) record id %s" id)
        | Some reply ->
          State.apply_record !reference
            { State.seq = State.seq !reference + 1; rid = Some rid; op; reply })
    in
    if not (State.equal expected recovered) then
      Error
        (Printf.sprintf
           "recovery invariant violated: expected seq %d tasks [%s], recovered seq %d tasks [%s]"
           (State.seq expected)
           (String.concat ";" (State.names expected))
           (State.seq recovered)
           (String.concat ";" (State.names recovered)))
    else begin
      reference := recovered;
      pending := None;
      (* the recovered verdict must match from-scratch analysis *)
      let reply = Daemon.handle_line d query_line in
      bump (fun s -> { s with verdicts_checked = s.verdicts_checked + 1 });
      check_verdict cfg ~what:"post-recovery query" ~tasks:(State.tasks recovered) reply
    end
  in
  let drive d =
    let result = ref (Ok `Completed) in
    (try
       for _ = 1 to cfg.ops_per_cycle do
         match !result with
         | Error _ | Ok (`Crashed _) -> ()
         | Ok `Completed ->
           bump (fun s -> { s with ops = s.ops + 1 });
           let names = State.names !reference in
           let n_tasks = List.length names in
           let pick = Rng.int gen.rng 100 in
           if pick < 45 || n_tasks = 0 then begin
             (* add-task *)
             let task = fresh_task gen ~fpga_area:cfg.fpga_area in
             let id = fresh_id gen in
             let line = add_line ~id task in
             match Daemon.handle_line d line with
             | exception Faults.Crash (fate, _) ->
               pending := Some (fate, id, State.Add task);
               result := Ok (`Crashed fate)
             | reply ->
               if reply_is_error reply then
                 result := Error (Printf.sprintf "add-task errored: %s" reply)
               else begin
                 bump (fun s -> { s with verdicts_checked = s.verdicts_checked + 1 });
                 let candidate = State.tasks !reference @ [ task ] in
                 match check_verdict cfg ~what:"add-task" ~tasks:candidate reply with
                 | Error _ as e -> result := e
                 | Ok () ->
                   if reply_admitted reply then begin
                     bump (fun s -> { s with admitted = s.admitted + 1 });
                     apply_ack ~id ~op:(State.Add task) reply;
                     (* duplicate-id retry: same bytes back, no double
                        apply, no journal append (hence no fault site) *)
                     if Rng.int gen.rng 100 < 25 then begin
                       match Daemon.handle_line d line with
                       | exception Faults.Crash _ ->
                         result := Error "duplicate-id retry reached the journal"
                       | retry ->
                         bump (fun s -> { s with dedup_hits = s.dedup_hits + 1 });
                         if retry <> reply then
                           result :=
                             Error
                               (Printf.sprintf
                                  "duplicate-id retry returned different bytes:\n\
                                  \  first  %s\n\
                                  \  retry  %s" reply retry)
                         else if State.size (Daemon.state d) <> State.size !reference then
                           result := Error "duplicate-id retry double-applied the mutation"
                     end
                   end
                   else bump (fun s -> { s with rejected = s.rejected + 1 })
               end
           end
           else if pick < 65 then begin
             (* remove-task *)
             let name = List.nth names (Rng.int gen.rng n_tasks) in
             let id = fresh_id gen in
             match Daemon.handle_line d (remove_line ~id name) with
             | exception Faults.Crash (fate, _) ->
               pending := Some (fate, id, State.Remove name);
               result := Ok (`Crashed fate)
             | reply ->
               if reply_is_error reply then
                 result := Error (Printf.sprintf "remove-task errored: %s" reply)
               else begin
                 bump (fun s -> { s with verdicts_checked = s.verdicts_checked + 1 });
                 let remaining =
                   List.filter (fun t -> t.Model.Task.name <> name) (State.tasks !reference)
                 in
                 match check_verdict cfg ~what:"remove-task" ~tasks:remaining reply with
                 | Error _ as e -> result := e
                 | Ok () ->
                   bump (fun s -> { s with admitted = s.admitted + 1 });
                   apply_ack ~id ~op:(State.Remove name) reply
               end
           end
           else if pick < 85 then begin
             (* what-if: hypothetical add, sometimes with a drop *)
             let task = fresh_task gen ~fpga_area:cfg.fpga_area in
             let drop =
               if n_tasks > 0 && Rng.bool gen.rng then [ List.nth names (Rng.int gen.rng n_tasks) ]
               else []
             in
             let reply = Daemon.handle_line d (what_if_line ~add:[ task ] ~drop) in
             if reply_is_error reply then
               result := Error (Printf.sprintf "what-if errored: %s" reply)
             else begin
               bump (fun s -> { s with verdicts_checked = s.verdicts_checked + 1 });
               let tasks =
                 List.filter
                   (fun t -> not (List.mem t.Model.Task.name drop))
                   (State.tasks !reference)
                 @ [ task ]
               in
               match check_verdict cfg ~what:"what-if" ~tasks reply with
               | Error _ as e -> result := e
               | Ok () -> ()
             end
           end
           else begin
             (* query *)
             let reply = Daemon.handle_line d query_line in
             if reply_is_error reply then
               result := Error (Printf.sprintf "query errored: %s" reply)
             else begin
               bump (fun s -> { s with verdicts_checked = s.verdicts_checked + 1 });
               match check_verdict cfg ~what:"query" ~tasks:(State.tasks !reference) reply with
               | Error _ as e -> result := e
               | Ok () -> ()
             end
           end
       done
     with Failure msg -> result := Error msg);
    !result
  in
  let rec cycle i =
    if i > cfg.cycles then Ok ()
    else begin
      progress i;
      let faults = Faults.create ~seed:(cfg.seed + (7919 * i)) cfg.spec in
      let* d, recovery =
        Daemon.create ~faults ~snapshot_every:cfg.snapshot_every ~analyzer:cfg.analyzer
          ~fpga_area:cfg.fpga_area ~dir ()
      in
      bump (fun s -> { s with cycles = s.cycles + 1 });
      let outcome =
        match check_recovery d recovery with
        | Error _ as e -> e
        | Ok () -> drive d
      in
      Daemon.close d;
      match outcome with
      | Error _ as e -> e
      | Ok `Completed -> cycle (i + 1)
      | Ok (`Crashed _) ->
        bump (fun s -> { s with crashes = s.crashes + 1 });
        cycle (i + 1)
    end
  in
  let* () = cycle 1 in
  (* one last fault-free recovery so the run ends on a verified state *)
  let* d, recovery =
    Daemon.create ~snapshot_every:cfg.snapshot_every ~analyzer:cfg.analyzer
      ~fpga_area:cfg.fpga_area ~dir ()
  in
  let r = check_recovery d recovery in
  Daemon.close d;
  let* () = r in
  Ok !stats

let pp_stats fmt s =
  Format.fprintf fmt
    "cycles %d  crashes %d  torn recoveries %d  records replayed %d  ops %d  admitted %d  \
     rejected %d  dedup hits %d  verdicts checked %d"
    s.cycles s.crashes s.torn_recoveries s.replayed s.ops s.admitted s.rejected s.dedup_hits
    s.verdicts_checked
