(** CRC-32 (IEEE 802.3) over strings — the integrity check of every
    journal record and snapshot.  Pure and deterministic; results are
    32-bit values carried in an [int]. *)

val string : string -> int
(** CRC-32 of the whole string. *)

val update : int -> string -> int -> int -> int
(** [update crc s off len] extends [crc] with [s.[off .. off+len-1]],
    so a checksum can be built over several slices.  [string s] is
    [update 0 s 0 (String.length s)].
    @raise Invalid_argument on an out-of-bounds slice. *)
