[@@@redf.det]
[@@@redf.exact]

(* The admission daemon's durable state: the admitted taskset (in
   admission order, names unique), the mutation sequence number, and
   the request-id -> reply map that makes retried mutations idempotent.

   Purely functional: Store applies acknowledged mutations to it, the
   chaos harness replays the same ops onto a reference copy, and the
   two must be equal — an equality that would be meaningless if state
   were a bag of mutables.

   Serialization is canonical JSON (Core.Json sorts keys), with times
   as exact tick integers: a snapshot or journal record has exactly one
   byte representation for a given state, so recovery comparisons can
   be byte comparisons. *)

module Json = Core.Json
module Replies = Map.Make (String)

type op = Add of Model.Task.t | Remove of string

type record = { seq : int; rid : string option; op : op; reply : string }

type t = {
  seq : int;  (* of the last applied mutation; 0 = pristine *)
  tasks : (string * Model.Task.t) list;  (* admission order *)
  replies : string Replies.t;  (* rid -> acknowledged reply, for dedup *)
}

let empty = { seq = 0; tasks = []; replies = Replies.empty }
let seq t = t.seq
let tasks t = List.map snd t.tasks
let names t = List.map fst t.tasks
let size t = List.length t.tasks
let mem t name = List.mem_assoc name t.tasks
let reply_for t rid = Replies.find_opt rid t.replies

let equal a b =
  a.seq = b.seq
  && List.length a.tasks = List.length b.tasks
  && List.for_all2
       (fun (na, ta) (nb, tb) -> na = nb && Model.Task.equal ta tb)
       a.tasks b.tasks
  && Replies.equal String.equal a.replies b.replies

(* --- application --- *)

let apply_op t op =
  match op with
  | Add task ->
    let name = task.Model.Task.name in
    if name = "" then Error "add: task must be named"
    else if mem t name then Error (Printf.sprintf "add: duplicate task name %S" name)
    else Ok { t with tasks = t.tasks @ [ (name, task) ] }
  | Remove name ->
    if not (mem t name) then Error (Printf.sprintf "remove: no task named %S" name)
    else Ok { t with tasks = List.filter (fun (n, _) -> n <> name) t.tasks }

(* replaying a record past a snapshot that already contains it is a
   no-op (the crash window between snapshot rename and journal reset);
   a sequence gap means lost acknowledged history and is fatal *)
let apply_record t (r : record) =
  if r.seq <= t.seq then Ok t
  else if r.seq <> t.seq + 1 then
    Error (Printf.sprintf "journal sequence gap: at state seq %d, record seq %d" t.seq r.seq)
  else
    Result.map
      (fun applied ->
        let replies =
          match r.rid with
          | None -> applied.replies
          | Some rid -> Replies.add rid r.reply applied.replies
        in
        { applied with seq = r.seq; replies })
      (apply_op t r.op)

(* --- task codec (exact ticks; the journal's internal shape) --- *)

let task_to_json (task : Model.Task.t) =
  Json.Obj
    [
      ("name", Json.String task.Model.Task.name);
      ("C", Json.Int (Model.Time.ticks task.Model.Task.exec));
      ("D", Json.Int (Model.Time.ticks task.Model.Task.deadline));
      ("T", Json.Int (Model.Time.ticks task.Model.Task.period));
      ("A", Json.Int task.Model.Task.area);
    ]

let ( let* ) = Result.bind

let int_field json key =
  match Json.member key json with
  | Some (Json.Int n) -> Ok n
  | _ -> Error (Printf.sprintf "task: %S: expected an integer" key)

let task_of_json json =
  let* name =
    match Json.member "name" json with
    | Some (Json.String s) -> Ok s
    | _ -> Error "task: \"name\": expected a string"
  in
  let* c = int_field json "C" in
  let* d = int_field json "D" in
  let* p = int_field json "T" in
  let* a = int_field json "A" in
  match
    Model.Task.make ~name ~exec:(Model.Time.of_ticks c) ~deadline:(Model.Time.of_ticks d)
      ~period:(Model.Time.of_ticks p) ~area:a ()
  with
  | task -> Ok task
  | exception Invalid_argument msg -> Error (Printf.sprintf "task %S: %s" name msg)

(* --- record codec --- *)

let record_to_json r =
  let op_fields =
    match r.op with
    | Add task -> [ ("op", Json.String "add"); ("task", task_to_json task) ]
    | Remove name -> [ ("op", Json.String "remove"); ("name", Json.String name) ]
  in
  let rid_fields = match r.rid with None -> [] | Some rid -> [ ("rid", Json.String rid) ] in
  Json.Obj
    ((("seq", Json.Int r.seq) :: ("reply", Json.String r.reply) :: rid_fields) @ op_fields)

let record_of_json json =
  let* seq =
    match Json.member "seq" json with
    | Some (Json.Int n) when n >= 1 -> Ok n
    | _ -> Error "record: \"seq\": expected a positive integer"
  in
  let* reply =
    match Json.member "reply" json with
    | Some (Json.String s) -> Ok s
    | _ -> Error "record: \"reply\": expected a string"
  in
  let rid =
    match Json.member "rid" json with Some (Json.String s) -> Some s | _ -> None
  in
  let* op =
    match Json.member "op" json with
    | Some (Json.String "add") -> (
      match Json.member "task" json with
      | Some task_json -> Result.map (fun t -> Add t) (task_of_json task_json)
      | None -> Error "record: \"task\": missing")
    | Some (Json.String "remove") -> (
      match Json.member "name" json with
      | Some (Json.String n) -> Ok (Remove n)
      | _ -> Error "record: \"name\": expected a string")
    | _ -> Error "record: \"op\": expected \"add\" or \"remove\""
  in
  Ok { seq; rid; op; reply }

let record_of_string s =
  match Json.of_string s with
  | Error msg -> Error ("record: malformed JSON: " ^ msg)
  | Ok json -> record_of_json json

let record_to_string r = Json.to_string (record_to_json r)

(* --- snapshot codec --- *)

let to_snapshot_json t =
  Json.Obj
    [
      ("seq", Json.Int t.seq);
      ("tasks", Json.List (List.map (fun (_, task) -> task_to_json task) t.tasks));
      ( "replies",
        Json.List
          (Replies.fold
             (fun rid reply acc -> Json.List [ Json.String rid; Json.String reply ] :: acc)
             t.replies []
          |> List.rev) );
    ]

let of_snapshot_json json =
  let* seq =
    match Json.member "seq" json with
    | Some (Json.Int n) when n >= 0 -> Ok n
    | _ -> Error "snapshot: \"seq\": expected a non-negative integer"
  in
  let* task_objs =
    match Json.member "tasks" json with
    | Some (Json.List l) -> Ok l
    | _ -> Error "snapshot: \"tasks\": expected an array"
  in
  let* tasks =
    List.fold_left
      (fun acc tj ->
        let* acc = acc in
        let* task = task_of_json tj in
        Ok ((task.Model.Task.name, task) :: acc))
      (Ok []) task_objs
    |> Result.map List.rev
  in
  let* replies =
    match Json.member "replies" json with
    | Some (Json.List l) ->
      List.fold_left
        (fun acc entry ->
          let* acc = acc in
          match entry with
          | Json.List [ Json.String rid; Json.String reply ] -> Ok (Replies.add rid reply acc)
          | _ -> Error "snapshot: \"replies\": expected [rid, reply] string pairs")
        (Ok Replies.empty) l
    | _ -> Error "snapshot: \"replies\": expected an array"
  in
  Ok { seq; tasks; replies }

let of_snapshot_string s =
  match Json.of_string s with
  | Error msg -> Error ("snapshot: malformed JSON: " ^ msg)
  | Ok json -> of_snapshot_json json

let to_snapshot_string t = Json.to_string (to_snapshot_json t)
