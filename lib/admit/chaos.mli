(** Crash/restart torture for the admission daemon ([redf chaos-admit]).

    A run is [cycles] daemon lifetimes over one state directory: random
    admit traffic with journal fault injection armed, an injected crash
    ({!Faults.Crash}) or op-budget exhaustion, then recovery — after
    which the recovered state must equal a reference model maintained
    from acknowledged replies (plus, for an after-append crash, exactly
    the one durable-but-unacknowledged record, whose stored reply a
    duplicate-id retry must return).  Every verdict on the wire is also
    compared field-for-field with a from-scratch [analyzer.decide] run.

    Fully deterministic from [config.seed]: a failing run replays. *)

type config = {
  seed : int;
  cycles : int;  (** daemon lifetimes (= restarts/recoveries) *)
  ops_per_cycle : int;  (** op budget per lifetime if no crash fires *)
  spec : Faults.spec;
  analyzer : Core.Analyzer.t;
  fpga_area : int;
  snapshot_every : int;  (** small, so rotation happens under fire *)
}

type stats = {
  cycles : int;
  crashes : int;
  torn_recoveries : int;
  replayed : int;
  ops : int;
  admitted : int;
  rejected : int;
  dedup_hits : int;
  verdicts_checked : int;
}

val default_spec : Faults.spec
val default : analyzer:Core.Analyzer.t -> fpga_area:int -> config

val run : ?progress:(int -> unit) -> dir:string -> config -> (stats, string) result
(** [Error] is an invariant violation (with enough detail to replay);
    [progress] is called with the 1-based cycle number as each lifetime
    starts. *)

val pp_stats : Format.formatter -> stats -> unit
