(* The registry is one mutex-protected table of named metrics; the
   metrics themselves are lock-free (counters, gauges) or carry their
   own mutex (timers), so registration is the only globally serialized
   operation and updates never contend across metrics.  Everything is
   gated on [enabled_flag]: the disabled path is one atomic load. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

type timer_state = {
  tmutex : Mutex.t;
  mutable tcount : int;
  mutable tsum_ns : int;
  mutable tmin_ns : int; (* meaningful only when tcount > 0 *)
  mutable tmax_ns : int;
}

type metric =
  | M_counter of { det : bool; v : int Atomic.t }
  | M_gauge of { det : bool; v : int Atomic.t }
  | M_timer of timer_state

let registry : (string, metric) Hashtbl.t =
  Hashtbl.create 64
[@@redf.allow "domain-safety"
                "every registry access below locks registry_mutex first; the table is never \
                 touched outside the lock"]

let registry_mutex = Mutex.create ()

let kind_name = function
  | M_counter _ -> "counter"
  | M_gauge _ -> "gauge"
  | M_timer _ -> "timer"

(* register-or-lookup: handles stay valid across [reset], and two
   modules registering the same name share one metric *)
let intern name fresh matches =
  Mutex.lock registry_mutex;
  let m =
    match Hashtbl.find_opt registry name with
    | Some existing ->
      if not (matches existing) then begin
        let k = kind_name existing in
        Mutex.unlock registry_mutex;
        invalid_arg (Printf.sprintf "Obs: %S is already registered as a %s" name k)
      end;
      existing
    | None ->
      let m = fresh () in
      Hashtbl.add registry name m;
      m
  in
  Mutex.unlock registry_mutex;
  m

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter
    (fun _ -> function
      | M_counter { v; _ } | M_gauge { v; _ } -> Atomic.set v 0
      | M_timer t ->
        Mutex.lock t.tmutex;
        t.tcount <- 0;
        t.tsum_ns <- 0;
        t.tmin_ns <- 0;
        t.tmax_ns <- 0;
        Mutex.unlock t.tmutex)
    registry;
  Mutex.unlock registry_mutex

module Counter = struct
  type t = { v : int Atomic.t }

  let make ?(det = true) name =
    match
      intern name
        (fun () -> M_counter { det; v = Atomic.make 0 })
        (function M_counter _ -> true | _ -> false)
    with
    | M_counter { v; _ } -> { v }
    | _ -> assert false

  let incr c = if enabled () then Atomic.incr c.v

  let add c n =
    if n < 0 then invalid_arg "Obs.Counter.add: negative increment";
    if enabled () && n > 0 then ignore (Atomic.fetch_and_add c.v n)

  let value c = Atomic.get c.v
end

module Gauge = struct
  type t = { v : int Atomic.t }

  let make ?(det = false) name =
    match
      intern name
        (fun () -> M_gauge { det; v = Atomic.make 0 })
        (function M_gauge _ -> true | _ -> false)
    with
    | M_gauge { v; _ } -> { v }
    | _ -> assert false

  let set g n = if enabled () then Atomic.set g.v n

  let set_max g n =
    if enabled () then begin
      let rec relax () =
        let cur = Atomic.get g.v in
        if n > cur && not (Atomic.compare_and_set g.v cur n) then relax ()
      in
      relax ()
    end

  let value g = Atomic.get g.v
end

module Timer = struct
  type t = timer_state

  let make name =
    match
      intern name
        (fun () ->
          M_timer { tmutex = Mutex.create (); tcount = 0; tsum_ns = 0; tmin_ns = 0; tmax_ns = 0 })
        (function M_timer _ -> true | _ -> false)
    with
    | M_timer t -> t
    | _ -> assert false

  let record_ns t ns =
    if enabled () then begin
      let ns = max 0 ns in
      Mutex.lock t.tmutex;
      if t.tcount = 0 then begin
        t.tmin_ns <- ns;
        t.tmax_ns <- ns
      end
      else begin
        if ns < t.tmin_ns then t.tmin_ns <- ns;
        if ns > t.tmax_ns then t.tmax_ns <- ns
      end;
      t.tcount <- t.tcount + 1;
      t.tsum_ns <- t.tsum_ns + ns;
      Mutex.unlock t.tmutex
    end

  let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

  let time t f =
    if not (enabled ()) then f ()
    else begin
      let t0 = now_ns () in
      Fun.protect ~finally:(fun () -> record_ns t (now_ns () - t0)) f
    end

  let count t =
    Mutex.lock t.tmutex;
    let c = t.tcount in
    Mutex.unlock t.tmutex;
    c

  let sum_ns t =
    Mutex.lock t.tmutex;
    let s = t.tsum_ns in
    Mutex.unlock t.tmutex;
    s
end

module Span = struct
  (* per-domain stack of open span paths: nesting is a property of the
     call stack, which never crosses domains *)
  let stack : string list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

  let now_ns = Timer.now_ns

  let with_ ~name f =
    if not (enabled ()) then f ()
    else begin
      let st = Domain.DLS.get stack in
      let path = match !st with [] -> name | parent :: _ -> parent ^ "/" ^ name in
      st := path :: !st;
      let t0 = now_ns () in
      Fun.protect
        ~finally:(fun () ->
          let dt = now_ns () - t0 in
          (match !st with [] -> () | _ :: rest -> st := rest);
          Timer.record_ns (Timer.make path) dt)
        f
    end
end

module Snapshot = struct
  type entry =
    | Counter of { det : bool; value : int }
    | Gauge of { det : bool; value : int }
    | Timer of { count : int; sum_ns : int; min_ns : int; max_ns : int }

  type t = (string * entry) list

  let take () =
    Mutex.lock registry_mutex;
    let entries =
      Hashtbl.fold
        (fun name m acc ->
          let e =
            match m with
            | M_counter { det; v } -> Counter { det; value = Atomic.get v }
            | M_gauge { det; v } -> Gauge { det; value = Atomic.get v }
            | M_timer t ->
              Mutex.lock t.tmutex;
              let e =
                Timer { count = t.tcount; sum_ns = t.tsum_ns; min_ns = t.tmin_ns; max_ns = t.tmax_ns }
              in
              Mutex.unlock t.tmutex;
              e
          in
          (name, e) :: acc)
        registry []
    in
    Mutex.unlock registry_mutex;
    List.sort (fun (a, _) (b, _) -> String.compare a b) entries

  (* --- JSON lines --- *)

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  (* object keys emitted in alphabetical order so the byte form is
     canonical, not merely the parsed form *)
  let line name = function
    | Counter { det; value } ->
      Printf.sprintf {|{"det":%b,"kind":"counter","name":"%s","value":%d}|} det (escape name) value
    | Gauge { det; value } ->
      Printf.sprintf {|{"det":%b,"kind":"gauge","name":"%s","value":%d}|} det (escape name) value
    | Timer { count; sum_ns; min_ns; max_ns } ->
      Printf.sprintf
        {|{"count":%d,"det":false,"kind":"timer","max_ns":%d,"min_ns":%d,"name":"%s","sum_ns":%d}|}
        count max_ns min_ns (escape name) sum_ns

  let to_jsonl t = String.concat "" (List.map (fun (n, e) -> line n e ^ "\n") t)

  (* minimal parser for the flat objects [line] emits: string, integer
     and boolean values only *)
  exception Parse of string

  let parse_object s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse msg) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t') do
        incr pos
      done
    in
    let expect c =
      skip_ws ();
      if peek () = Some c then incr pos else fail (Printf.sprintf "expected %C" c)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        incr pos;
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          if !pos >= n then fail "bad escape";
          let e = s.[!pos] in
          incr pos;
          (match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | 'r' -> Buffer.add_char buf '\r'
           | 'u' ->
             if !pos + 4 > n then fail "bad \\u escape";
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
              | Some _ | None -> fail "unsupported \\u escape")
           | _ -> fail "unknown escape");
          go ()
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
      in
      go ()
    in
    let parse_value () =
      skip_ws ();
      match peek () with
      | Some '"' -> `String (parse_string ())
      | Some 't' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "true" then (pos := !pos + 4; `Bool true)
        else fail "bad literal"
      | Some 'f' ->
        if !pos + 5 <= n && String.sub s !pos 5 = "false" then (pos := !pos + 5; `Bool false)
        else fail "bad literal"
      | Some ('-' | '0' .. '9') ->
        let start = !pos in
        if peek () = Some '-' then incr pos;
        while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
          incr pos
        done;
        (match int_of_string_opt (String.sub s start (!pos - start)) with
         | Some i -> `Int i
         | None -> fail "bad integer")
      | _ -> fail "expected a value"
    in
    expect '{';
    let fields = ref [] in
    skip_ws ();
    if peek () = Some '}' then incr pos
    else begin
      let rec members () =
        skip_ws ();
        let key = parse_string () in
        expect ':';
        let v = parse_value () in
        fields := (key, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          members ()
        | Some '}' -> incr pos
        | _ -> fail "expected ',' or '}'"
      in
      members ()
    end;
    skip_ws ();
    if !pos <> n then fail "trailing characters";
    List.rev !fields

  let field fields key =
    match List.assoc_opt key fields with
    | Some v -> v
    | None -> raise (Parse (Printf.sprintf "missing field %S" key))

  let int_field fields key =
    match field fields key with `Int i -> i | _ -> raise (Parse (key ^ ": expected an integer"))

  let bool_field fields key =
    match field fields key with `Bool b -> b | _ -> raise (Parse (key ^ ": expected a boolean"))

  let string_field fields key =
    match field fields key with `String s -> s | _ -> raise (Parse (key ^ ": expected a string"))

  let entry_of_fields fields =
    let name = string_field fields "name" in
    match string_field fields "kind" with
    | "counter" -> (name, Counter { det = bool_field fields "det"; value = int_field fields "value" })
    | "gauge" -> (name, Gauge { det = bool_field fields "det"; value = int_field fields "value" })
    | "timer" ->
      ( name,
        Timer
          {
            count = int_field fields "count";
            sum_ns = int_field fields "sum_ns";
            min_ns = int_field fields "min_ns";
            max_ns = int_field fields "max_ns";
          } )
    | k -> raise (Parse (Printf.sprintf "unknown kind %S" k))

  let of_jsonl s =
    let lines =
      String.split_on_char '\n' s
      |> List.filter (fun l -> String.trim l <> "")
    in
    let rec go acc i = function
      | [] -> Ok (List.sort (fun (a, _) (b, _) -> String.compare a b) (List.rev acc))
      | l :: rest -> (
        match entry_of_fields (parse_object l) with
        | entry -> go (entry :: acc) (i + 1) rest
        | exception Parse msg -> Error (Printf.sprintf "line %d: %s" i msg))
    in
    go [] 1 lines

  (* --- comparison --- *)

  let det_entry = function
    | Counter { det; _ } | Gauge { det; _ } -> det
    | Timer _ -> false

  let equal_entry a b =
    match (a, b) with
    | Counter { det = da; value = va }, Counter { det = db; value = vb }
    | Gauge { det = da; value = va }, Gauge { det = db; value = vb } ->
      Bool.equal da db && Int.equal va vb
    | Timer ta, Timer tb ->
      Int.equal ta.count tb.count && Int.equal ta.sum_ns tb.sum_ns
      && Int.equal ta.min_ns tb.min_ns && Int.equal ta.max_ns tb.max_ns
    | (Counter _ | Gauge _ | Timer _), _ -> false

  let render = function
    | Counter { value; _ } -> Printf.sprintf "counter %d" value
    | Gauge { value; _ } -> Printf.sprintf "gauge %d" value
    | Timer { count; sum_ns; _ } -> Printf.sprintf "timer count=%d sum_ns=%d" count sum_ns

  let diff ?(det_only = false) a b =
    let keep (_, e) = (not det_only) || det_entry e in
    let a = List.filter keep a and b = List.filter keep b in
    (* both sorted by name: merge *)
    let rec go acc a b =
      match (a, b) with
      | [], [] -> List.rev acc
      | (n, e) :: rest, [] -> go (Printf.sprintf "- %s (%s)" n (render e) :: acc) rest []
      | [], (n, e) :: rest -> go (Printf.sprintf "+ %s (%s)" n (render e) :: acc) [] rest
      | ((na, ea) :: ra as la), ((nb, eb) :: rb as lb) ->
        let c = String.compare na nb in
        if c < 0 then go (Printf.sprintf "- %s (%s)" na (render ea) :: acc) ra lb
        else if c > 0 then go (Printf.sprintf "+ %s (%s)" nb (render eb) :: acc) la rb
        else if equal_entry ea eb then go acc ra rb
        else go (Printf.sprintf "~ %s: %s -> %s" na (render ea) (render eb) :: acc) ra rb
    in
    go [] a b
end
