(** Process-wide observability: a metrics registry and span profiling.

    Instrumented code registers named metrics once (typically at module
    initialization) and updates them through cheap handles.  All updates
    are gated on a single process-wide {!enabled} flag, default [off]:
    a disabled counter bump or span is one atomic load and a branch, so
    instrumenting a hot loop costs nothing unless someone asked to
    measure (the bench harness quantifies this; see EXPERIMENTS.md
    "Observability").

    Every metric is domain-safe — counters and gauges are [Atomic]s,
    timers take a per-timer [Mutex] — so instrumented code composes with
    the {!Parallel} domain pool without coordination.

    Metrics carry a [det] (deterministic) tag: a [det] metric must reach
    the same value for the same command regardless of the worker count
    (e.g. work items evaluated), while timers, occupancy gauges and
    chunk counts are inherently run-dependent.  {!Snapshot.diff}
    [~det_only:true] compares only the former, which is how CI asserts
    that parallel runs do the same logical work as serial ones. *)

val enabled : unit -> bool
(** Whether metric updates are recorded.  Off by default. *)

val set_enabled : bool -> unit

val reset : unit -> unit
(** Zero every registered metric (registration and handles survive). *)

module Counter : sig
  type t

  val make : ?det:bool -> string -> t
  (** Register (or look up) the monotonic counter [name].  [det]
      defaults to [true]; re-registration returns the existing counter.
      @raise Invalid_argument if [name] is registered as another kind. *)

  val incr : t -> unit
  (** Add one; a no-op while disabled. *)

  val add : t -> int -> unit
  (** Add [n >= 0]; a no-op while disabled. *)

  val value : t -> int
end

module Gauge : sig
  type t

  val make : ?det:bool -> string -> t
  (** Register (or look up) the gauge [name].  [det] defaults to
      [false]: most gauges (pool occupancy, high-water marks) depend on
      scheduling.
      @raise Invalid_argument if [name] is registered as another kind. *)

  val set : t -> int -> unit
  (** Overwrite the value; a no-op while disabled. *)

  val set_max : t -> int -> unit
  (** Raise the value to [n] if above the current one (atomic);
      a no-op while disabled. *)

  val value : t -> int
end

module Timer : sig
  type t

  val make : string -> t
  (** Register (or look up) the histogram timer [name].  Timers are
      never [det]: they aggregate wall-clock durations.
      @raise Invalid_argument if [name] is registered as another kind. *)

  val record_ns : t -> int -> unit
  (** Fold one duration (nanoseconds, clamped at 0) into the
      count/sum/min/max aggregate; a no-op while disabled. *)

  val time : t -> (unit -> 'a) -> 'a
  (** [time t f] records the wall time of [f ()] into [t]; exactly
      [f ()] while disabled.  Unlike {!Span.with_} the recorded name is
      fixed, independent of enclosing spans — use it for work items
      that may run on any pool domain. *)

  val count : t -> int
  val sum_ns : t -> int
end

module Span : sig
  val with_ : name:string -> (unit -> 'a) -> 'a
  (** [with_ ~name f] runs [f ()] and records its wall time under
      [name], prefixed by the names of enclosing spans on the same
      domain ("outer/inner"), so nested phases show up as distinct
      timers.  While disabled this is exactly [f ()] — no clock read,
      no allocation beyond the closure. *)
end

module Snapshot : sig
  (** A snapshot is the registry frozen as a sorted association list;
      its canonical wire form is JSON lines — one flat, key-sorted
      object per metric, lines sorted by name — so two snapshots are
      comparable with [cmp]/[diff] and greppable per kind. *)

  type entry =
    | Counter of { det : bool; value : int }
    | Gauge of { det : bool; value : int }
    | Timer of { count : int; sum_ns : int; min_ns : int; max_ns : int }

  type t = (string * entry) list

  val take : unit -> t
  (** Freeze every registered metric, sorted by name. *)

  val to_jsonl : t -> string

  val of_jsonl : string -> (t, string) result
  (** Parse {!to_jsonl} output (or a prefix-compatible file); the
      result is re-sorted by name.  Errors name the offending line. *)

  val diff : ?det_only:bool -> t -> t -> string list
  (** Human-readable difference lines ("- name …" only in the first,
      "+ name …" only in the second, "~ name: a -> b" changed); [[]]
      means the snapshots agree.  [det_only] (default [false])
      restricts the comparison to [det]-tagged counters and gauges —
      the values that must not depend on the worker count. *)
end
