(** Acceptance-ratio sweeps (the harness behind Figures 3 and 4).

    A sweep fixes a generator profile, a list of target system
    utilizations, and a set of methods (analytic tests and/or a
    simulation); for each utilization point it draws [samples] tasksets
    conditioned on that utilization and records the fraction each method
    accepts.  Results carry enough structure to be printed as the paper's
    figure series, exported as CSV, or plotted in ASCII. *)

type method_kind =
  | Analytic of Core.Analyzer.t  (** any registry analyzer ({!Core.Analyzer}) *)
  | Simulation of string * Sim.Policy.t
      (** synchronous release, migrating placement — the paper's setup *)

val standard_methods : method_kind list
(** DP, GN1, GN2, the EDF-NF / EDF-FkF simulations (the five series the
    paper's figures compare), plus the necessary-condition bound
    {!Core.Feasibility.feasible_maybe} as a horizon-independent upper
    bound on the true curve. *)

type conditioning =
  | Scaled
      (** per-point: draw tasksets rescaled to hit each target exactly
          (statistically efficient; needs a profile whose utilization
          range tolerates rescaling) *)
  | Binned
      (** draw unconditioned tasksets and bucket them by nearest target
          (the paper's approach; bucket population varies with the
          profile's natural US distribution) *)

type config = {
  profile : Model.Generator.profile;
  targets : float list;  (** system-utilization points *)
  samples : int;  (** tasksets per point (Scaled) or per target on average (Binned) *)
  seed : int;
  sim_horizon : Model.Time.t;  (** horizon for simulation methods *)
  methods : method_kind list;
  conditioning : conditioning;
}

val default_targets : float list
(** 10, 15, ..., 100 (the paper plots US up to the device area 100). *)

val default_config : profile:Model.Generator.profile -> config
(** [standard_methods], [default_targets], 300 samples, seed 42,
    horizon 1000 time units.  The paper uses >= 10000 samples; see
    EXPERIMENTS.md for the runtime trade-off and the env knobs the bench
    harness exposes. *)

type point = {
  target_us : float;
  generated : int;  (** tasksets actually produced (target may be unreachable) *)
  accepted : int array;  (** per method, parallel to [config.methods] *)
}

type t = { config : config; method_names : string list; points : point list }

val run : ?progress:(int -> int -> unit) -> ?jobs:int -> config -> t
(** [run cfg] evaluates every work item — one generated taskset judged
    by every method — on a pool of [jobs] worker domains (default 1 =
    serial; 0 = one per core, see {!Parallel.resolve_jobs}).

    Determinism: each work item owns a generator derived from
    [cfg.seed] and the item's index alone ({!Parallel.Det}), so the
    result — and every byte of {!to_csv} / {!to_table} output — is
    identical for any [jobs], including the serial path.

    [progress] contract: called as [progress done_ total] where the
    unit is work items (points × samples for [Scaled], total draws for
    [Binned]).  Calls are serialized and [done_] is strictly
    increasing even under parallel completion, ending with
    [done_ = total]; callbacks may therefore safely update a terminal
    line or a shared counter without locking. *)

val acceptance : t -> method_index:int -> point -> float
(** Acceptance ratio in [0,1]; 0 when no taskset was generated. *)

val to_table : t -> string
(** Aligned text table: one row per utilization point, one column per
    method — the textual form of a paper figure. *)

val to_csv : t -> string

val to_ascii_plot : ?height:int -> t -> string
(** Crude line plot of acceptance ratio vs utilization, one letter per
    method. *)
