type witness = { taskset : Model.Taskset.t; unique_test : string; draws_used : int }

let accepting_set ~fpga_area tests ts =
  List.filter_map (fun (name, test) -> if test ~fpga_area ts then Some name else None) tests

let find_unique ?(max_draws = 20_000) ~rng ~profile ~tests ~target () =
  if not (List.mem_assoc target tests) then
    invalid_arg "Incomparability.find_unique: unknown target test";
  let fpga_area = profile.Model.Generator.fpga_area in
  let rec go draw =
    if draw > max_draws then None
    else begin
      let ts = Model.Generator.draw rng profile in
      match accepting_set ~fpga_area tests ts with
      | [ name ] when name = target -> Some { taskset = ts; unique_test = target; draws_used = draw }
      | _ -> go (draw + 1)
    end
  in
  go 1

let find_all ?max_draws ~rng ~profile ~tests () =
  List.map (fun (name, _) -> (name, find_unique ?max_draws ~rng ~profile ~tests ~target:name ())) tests

let incidence ?(draws = 5000) ~rng ~profile ~tests () =
  let fpga_area = profile.Model.Generator.fpga_area in
  let table = Hashtbl.create 16 in
  (* first-seen order of keys, so count ties never break in hash order *)
  let order = ref [] in
  for _ = 1 to draws do
    let ts = Model.Generator.draw rng profile in
    let key = List.sort String.compare (accepting_set ~fpga_area tests ts) in
    match Hashtbl.find_opt table key with
    | None ->
      order := key :: !order;
      Hashtbl.replace table key 1
    | Some n -> Hashtbl.replace table key (n + 1)
  done;
  List.rev_map (fun k -> (k, Hashtbl.find table k)) !order
  |> List.sort (fun (ka, a) (kb, b) ->
         match Int.compare b a with
         | 0 -> List.compare String.compare ka kb
         | c -> c)
