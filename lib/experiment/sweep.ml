type method_kind =
  | Analytic of Core.Analyzer.t
  | Simulation of string * Sim.Policy.t

let standard_methods =
  [
    Analytic Core.Analyzer.dp;
    Analytic Core.Analyzer.gn1;
    Analytic Core.Analyzer.gn2;
    Simulation ("SIM-NF", Sim.Policy.edf_nf);
    Simulation ("SIM-FkF", Sim.Policy.edf_fkf);
    (* necessary conditions: an upper bound on true schedulability that,
       unlike the simulations, does not depend on a horizon *)
    Analytic Core.Analyzer.nec;
  ]

type conditioning = Scaled | Binned

type config = {
  profile : Model.Generator.profile;
  targets : float list;
  samples : int;
  seed : int;
  sim_horizon : Model.Time.t;
  methods : method_kind list;
  conditioning : conditioning;
}

let default_targets = List.init 19 (fun i -> float_of_int ((i + 2) * 5))

let default_config ~profile =
  {
    profile;
    targets = default_targets;
    samples = 300;
    seed = 42;
    sim_horizon = Model.Time.of_units 1000;
    methods = standard_methods;
    conditioning = Scaled;
  }

type point = { target_us : float; generated : int; accepted : int array }
type t = { config : config; method_names : string list; points : point list }

let method_name = function
  | Analytic a -> a.Core.Analyzer.name
  | Simulation (n, _) -> n

(* work items are the unit of fan-out, so their counts are the sweep's
   deterministic cost measure: identical totals for any worker count *)
let m_items = Obs.Counter.make "experiment.sweep.work_items"
let m_generated = Obs.Counter.make "experiment.sweep.tasksets_generated"
let m_draw_failures = Obs.Counter.make "experiment.sweep.draw_failures"

(* per-point wall time, keyed by the target utilization so slow points
   are attributable; registered up front, recorded from any domain *)
let point_timer target_us = Obs.Timer.make (Printf.sprintf "experiment.sweep.point.us%g" target_us)

(* Both conditioning modes run in two phases on the given domain pool:
   a generation phase that draws every taskset from its own
   Rng.split-derived generator (state a function of (seed, item index)
   alone), then an evaluation phase.  Analytic methods evaluate through
   the analyzer's batch path ({!Core.Analyzer.t.decide_all}) in
   per-worker chunks of surviving tasksets; simulations stay one work
   item per taskset.  Accept/reject per (item, method) — and therefore
   every byte of output — is identical to evaluating items one by one,
   for any worker count. *)

let evaluate_all ~pool cfg methods (tasksets : Model.Taskset.t option array) =
  let n = Array.length tasksets in
  let live = ref [] in
  Array.iteri
    (fun i t -> match t with Some ts -> live := (i, ts) :: !live | None -> ())
    tasksets;
  let live = Array.of_list (List.rev !live) in
  let nlive = Array.length live in
  let fpga_area = cfg.profile.Model.Generator.fpga_area in
  let jobs = max 1 (Parallel.Pool.jobs pool) in
  let chunk_size = max 1 ((nlive + jobs - 1) / jobs) in
  let nchunks = if nlive = 0 then 0 else (nlive + chunk_size - 1) / chunk_size in
  let chunks =
    Array.init nchunks (fun c ->
        Array.sub live (c * chunk_size) (min chunk_size (nlive - (c * chunk_size))))
  in
  let per_method =
    Array.map
      (function
        | Analytic a ->
          Parallel.Pool.map pool
            (fun chunk ->
              Array.map Core.Verdict.accepted
                (a.Core.Analyzer.decide_all ~fpga_area (Array.map snd chunk)))
            chunks
          |> Array.to_list |> Array.concat
        | Simulation (_, policy) ->
          let sim_cfg =
            {
              (Sim.Engine.default_config ~fpga_area ~policy) with
              Sim.Engine.horizon = cfg.sim_horizon;
            }
          in
          Parallel.Pool.map pool (fun (_, ts) -> Sim.Engine.schedulable sim_cfg ts) live)
      methods
  in
  let results = Array.make n None in
  Array.iteri
    (fun li (i, _) -> results.(i) <- Some (Array.map (fun bools -> bools.(li)) per_method))
    live;
  results

let run_scaled ~progress ~pool cfg methods =
  let targets = Array.of_list cfg.targets in
  let n_points = Array.length targets in
  let samples = max 0 cfg.samples in
  (* two-level derivation: master -> one generator per utilization
     point (in target order) -> one generator per sample *)
  let master = Rng.create ~seed:cfg.seed in
  let point_gens = Parallel.Det.gens master n_points in
  let sample_gens = Array.map (fun g -> Parallel.Det.gens g samples) point_gens in
  let point_timers = Array.map point_timer targets in
  let draw k =
    let pi = k / samples and si = k mod samples in
    Obs.Counter.incr m_items;
    Obs.Timer.time point_timers.(pi) (fun () ->
        match
          Model.Generator.draw_with_target_us sample_gens.(pi).(si) cfg.profile
            ~target_us:targets.(pi)
        with
        | None ->
          Obs.Counter.incr m_draw_failures;
          None
        | Some ts ->
          Obs.Counter.incr m_generated;
          Some ts)
  in
  let tasksets =
    if n_points * samples = 0 then [||]
    else Parallel.Pool.init ~progress pool (n_points * samples) draw
  in
  let results = evaluate_all ~pool cfg methods tasksets in
  List.init n_points (fun pi ->
      let accepted = Array.make (Array.length methods) 0 in
      let generated = ref 0 in
      for si = 0 to samples - 1 do
        match results.((pi * samples) + si) with
        | None -> ()
        | Some accepts ->
          incr generated;
          Array.iteri (fun mi ok -> if ok then accepted.(mi) <- accepted.(mi) + 1) accepts
      done;
      { target_us = targets.(pi); generated = !generated; accepted })

let run_binned ~progress ~pool cfg methods =
  let targets = Array.of_list (List.sort_uniq compare cfg.targets) in
  let n_buckets = Array.length targets in
  (* half the distance to the nearest neighbouring target, per side *)
  let in_bucket us bi =
    let c = targets.(bi) in
    let lo = if bi = 0 then neg_infinity else (targets.(bi - 1) +. c) /. 2.0 in
    let hi = if bi = n_buckets - 1 then infinity else (c +. targets.(bi + 1)) /. 2.0 in
    us >= lo && us < hi
  in
  let bucket_of us =
    let rec go i = if i >= n_buckets then None else if in_bucket us i then Some i else go (i + 1) in
    go 0
  in
  let draws = max 0 cfg.samples * n_buckets in
  let one rng _ =
    Obs.Counter.incr m_items;
    let ts = Model.Generator.draw rng cfg.profile in
    match bucket_of (Rat.to_float (Model.Taskset.system_utilization ts)) with
    | None ->
      Obs.Counter.incr m_draw_failures;
      None
    | Some bi ->
      Obs.Counter.incr m_generated;
      Some (bi, ts)
  in
  let drawn =
    if draws = 0 then [||] else Parallel.Det.init ~progress pool ~seed:cfg.seed draws one
  in
  let results = evaluate_all ~pool cfg methods (Array.map (Option.map snd) drawn) in
  let generated = Array.make n_buckets 0 in
  let accepted = Array.init n_buckets (fun _ -> Array.make (Array.length methods) 0) in
  Array.iteri
    (fun i d ->
      match (d, results.(i)) with
      | Some (bi, _), Some accepts ->
        generated.(bi) <- generated.(bi) + 1;
        Array.iteri (fun mi ok -> if ok then accepted.(bi).(mi) <- accepted.(bi).(mi) + 1) accepts
      | _ -> ())
    drawn;
  List.init n_buckets (fun bi ->
      { target_us = targets.(bi); generated = generated.(bi); accepted = accepted.(bi) })

let run ?(progress = fun _ _ -> ()) ?(jobs = 1) cfg =
  Obs.Span.with_ ~name:"experiment.sweep.run" (fun () ->
      let methods = Array.of_list cfg.methods in
      Parallel.Pool.with_pool ~jobs:(Parallel.resolve_jobs jobs) (fun pool ->
          let points =
            match cfg.conditioning with
            | Scaled -> run_scaled ~progress ~pool cfg methods
            | Binned -> run_binned ~progress ~pool cfg methods
          in
          { config = cfg; method_names = Array.to_list (Array.map method_name methods); points }))

let acceptance _t ~method_index point =
  if point.generated = 0 then 0.0
  else float_of_int point.accepted.(method_index) /. float_of_int point.generated

let to_table t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%8s %6s" "US" "sets");
  List.iter (fun n -> Buffer.add_string buf (Printf.sprintf " %9s" n)) t.method_names;
  Buffer.add_char buf '\n';
  List.iter
    (fun p ->
      Buffer.add_string buf (Printf.sprintf "%8.1f %6d" p.target_us p.generated);
      List.iteri
        (fun mi _ -> Buffer.add_string buf (Printf.sprintf " %9.3f" (acceptance t ~method_index:mi p)))
        t.method_names;
      Buffer.add_char buf '\n')
    t.points;
  Buffer.contents buf

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("target_us,generated," ^ String.concat "," t.method_names ^ "\n");
  List.iter
    (fun p ->
      Buffer.add_string buf (Printf.sprintf "%.2f,%d" p.target_us p.generated);
      List.iteri
        (fun mi _ -> Buffer.add_string buf (Printf.sprintf ",%.4f" (acceptance t ~method_index:mi p)))
        t.method_names;
      Buffer.add_char buf '\n')
    t.points;
  Buffer.contents buf

let to_ascii_plot ?(height = 20) t =
  let points = Array.of_list t.points in
  let n_points = Array.length points in
  let n_methods = List.length t.method_names in
  if n_points = 0 then "(no data)"
  else begin
    let letters = Array.init n_methods (fun i -> Char.chr (Char.code 'A' + i)) in
    (* grid rows: height+1 (ratio 1.0 at top), columns: one per point *)
    let grid = Array.make_matrix (height + 1) n_points ' ' in
    Array.iteri
      (fun pi p ->
        for mi = 0 to n_methods - 1 do
          let r = acceptance t ~method_index:mi p in
          let row = height - int_of_float (Float.round (r *. float_of_int height)) in
          if grid.(row).(pi) = ' ' then grid.(row).(pi) <- letters.(mi) else grid.(row).(pi) <- '*'
        done)
      points;
    let buf = Buffer.create 2048 in
    Array.iteri
      (fun row line ->
        let label = float_of_int (height - row) /. float_of_int height in
        Buffer.add_string buf (Printf.sprintf "%5.2f |" label);
        Array.iter
          (fun c ->
            Buffer.add_char buf c;
            Buffer.add_char buf ' ')
          line;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf "      +";
    Buffer.add_string buf (String.make (2 * n_points) '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf "       ";
    Array.iter (fun p -> Buffer.add_string buf (Printf.sprintf "%-2.0f" p.target_us)) points;
    Buffer.add_char buf '\n';
    List.iteri
      (fun mi name -> Buffer.add_string buf (Printf.sprintf "  %c = %s\n" letters.(mi) name))
      t.method_names;
    Buffer.add_string buf "  * = overlapping series\n";
    Buffer.contents buf
  end
