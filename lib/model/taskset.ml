type t = Task.t array

let of_list tasks =
  if tasks = [] then invalid_arg "Taskset.of_list: empty taskset";
  Array.of_list tasks

let to_list = Array.to_list
let to_array t = Array.copy t
let size = Array.length
let nth t i = t.(i)

let sum_over t f = Rat.sum (List.map f (Array.to_list t))
let time_utilization t = sum_over t Task.time_utilization
let system_utilization t = sum_over t Task.system_utilization
let amax t = Array.fold_left (fun acc (task : Task.t) -> max acc task.area) 0 t
let amin t = Array.fold_left (fun acc (task : Task.t) -> min acc task.area) max_int t
let all_implicit_deadline t = Array.for_all Task.is_implicit_deadline t
let all_constrained_deadline t = Array.for_all Task.is_constrained_deadline t
let fits t ~fpga_area = amax t <= fpga_area

type hyperperiod = Finite of Time.t | Exceeds_cap

let hyperperiod ?(cap = Time.of_ticks 10_000_000) t =
  let cap = Time.ticks cap in
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  let lcm_opt acc p = if acc > cap / p * p then None else Some (acc / gcd acc p * p) in
  let rec go acc i =
    if i >= Array.length t then Finite (Time.of_ticks acc)
    else begin
      let p = Time.ticks t.(i).Task.period in
      (* overflow-safe: check before multiplying *)
      let g = gcd acc p in
      if acc / g > cap / p then Exceeds_cap
      else
        match lcm_opt acc p with
        | Some l when l <= cap -> go l (i + 1)
        | _ -> Exceeds_cap
    end
  in
  go (Time.ticks t.(0).Task.period) 1

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "name,C,D,T,A\n";
  Array.iter
    (fun (task : Task.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%s,%s,%d\n" task.name (Time.to_string task.exec)
           (Time.to_string task.deadline) (Time.to_string task.period) task.area))
    t;
  Buffer.contents buf

let of_csv s =
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "") in
  match lines with
  | [] -> invalid_arg "Taskset.of_csv: empty input"
  | header :: rows ->
    if String.trim header <> "name,C,D,T,A" then invalid_arg "Taskset.of_csv: bad header";
    let parse_row row =
      match String.split_on_char ',' (String.trim row) with
      | [ name; c; d; p; a ] ->
        let area =
          match int_of_string_opt (String.trim a) with
          | Some a -> a
          | None -> invalid_arg "Taskset.of_csv: bad area"
        in
        Task.of_decimal ~name ~exec:(String.trim c) ~deadline:(String.trim d)
          ~period:(String.trim p) ~area ()
      | _ -> invalid_arg "Taskset.of_csv: bad row"
    in
    of_list (List.map parse_row rows)

(* --- columnar view --- *)

module Columns = struct
  type t = {
    n : int;
    exec : int array;
    deadline : int array;
    period : int array;
    area : int array;
    names : string array;
  }

  let of_taskset ts =
    let n = Array.length ts in
    let exec = Array.make n 0
    and deadline = Array.make n 0
    and period = Array.make n 0
    and area = Array.make n 0
    and names = Array.make n "" in
    Array.iteri
      (fun i (task : Task.t) ->
        exec.(i) <- Time.ticks task.exec;
        deadline.(i) <- Time.ticks task.deadline;
        period.(i) <- Time.ticks task.period;
        area.(i) <- task.area;
        names.(i) <- task.name)
      ts;
    { n; exec; deadline; period; area; names }

  let to_taskset c =
    of_list
      (List.init c.n (fun i ->
           Task.make ~name:c.names.(i) ~exec:(Time.of_ticks c.exec.(i))
             ~deadline:(Time.of_ticks c.deadline.(i))
             ~period:(Time.of_ticks c.period.(i))
             ~area:c.area.(i) ()))

  let size c = c.n
end

let equal a b = Array.length a = Array.length b && Array.for_all2 Task.equal a b

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Array.iteri (fun i task -> Format.fprintf fmt "%s%a" (if i > 0 then "; " else "") Task.pp task) t;
  Format.fprintf fmt "@]"
