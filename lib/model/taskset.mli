(** Tasksets (the paper's [Gamma]) and their aggregate characteristics. *)

type t

val of_list : Task.t list -> t
(** @raise Invalid_argument on an empty list. *)

val to_list : t -> Task.t list
val to_array : t -> Task.t array
val size : t -> int
val nth : t -> int -> Task.t

val time_utilization : t -> Rat.t
(** [UT(Gamma) = sum C_i / T_i]. *)

val system_utilization : t -> Rat.t
(** [US(Gamma) = sum C_i * A_i / T_i]. *)

val amax : t -> int
(** Largest task area. *)

val amin : t -> int
(** Smallest task area. *)

val all_implicit_deadline : t -> bool
val all_constrained_deadline : t -> bool

val fits : t -> fpga_area:int -> bool
(** Every task individually fits on the device: [amax <= fpga_area]. *)

type hyperperiod = Finite of Time.t | Exceeds_cap

val hyperperiod : ?cap:Time.t -> t -> hyperperiod
(** Least common multiple of the periods, or [Exceeds_cap] once the LCM
    grows beyond [cap] (default 10^7 ticks = 10^4 time units).  Synthetic
    periods drawn from a continuous range routinely have astronomically
    large hyper-periods; the simulator treats [Exceeds_cap] by truncating
    its horizon (see {!Sim}). *)

(** Structure-of-arrays view of a taskset: one int array per parameter,
    in tick units, plus the name table.  Built once per taskset, it is
    what the allocation-light decide paths ({!Core.Params.Cols}) and the
    canonical cache keying ({!Cache.Canonical}) iterate over instead of
    re-walking task records. *)
module Columns : sig
  type taskset := t

  type t = {
    n : int;
    exec : int array;  (** [C_i] in ticks *)
    deadline : int array;  (** [D_i] in ticks *)
    period : int array;  (** [T_i] in ticks *)
    area : int array;  (** [A_i] in columns *)
    names : string array;
  }

  val of_taskset : taskset -> t

  val to_taskset : t -> taskset
  (** Inverse of {!of_taskset}: [to_taskset (of_taskset ts)] equals [ts]
      task for task, names included. *)

  val size : t -> int
end

val to_csv : t -> string
(** One header line then one [name,C,D,T,A] line per task (decimal time
    units). *)

val of_csv : string -> t
(** Inverse of {!to_csv}. @raise Invalid_argument on malformed input. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
