(* A fixed pool of worker domains.  Coordination is a single mutex plus
   two condition variables: the caller publishes a batch body and bumps
   an epoch counter; every worker runs the body until the batch's atomic
   cursor is exhausted, then reports back.  The caller participates in
   the batch itself, so a 1-job pool spawns no domains at all and the
   serial and parallel paths share one implementation. *)

(* Domain.spawn has a hard cap on live domains (128 on stock runtimes);
   leave headroom for the caller and anything else in the process. *)
let max_spawned = 120

(* occupancy metrics: every one of these depends on the worker count or
   on scheduling luck, so none is a det metric *)
let g_workers = Obs.Gauge.make "parallel.pool.workers"
let g_peak_busy = Obs.Gauge.make "parallel.pool.peak_busy_workers"
let m_batches = Obs.Counter.make ~det:false "parallel.pool.batches"
let m_chunks = Obs.Counter.make ~det:false "parallel.pool.chunks"
let busy_now = Atomic.make 0

type t = {
  jobs : int; (* workers per batch, caller included *)
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable batch : (unit -> unit) option;
  mutable epoch : int; (* bumped once per batch *)
  mutable remaining : int; (* spawned workers still inside the current batch *)
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let available_domains () = Domain.recommended_domain_count ()
let jobs t = t.jobs

let worker pool () =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock pool.mutex;
    while (not pool.stopping) && pool.epoch = !seen do
      Condition.wait pool.work_ready pool.mutex
    done;
    if pool.stopping then Mutex.unlock pool.mutex
    else begin
      seen := pool.epoch;
      let body = match pool.batch with Some b -> b | None -> fun () -> () in
      Mutex.unlock pool.mutex;
      (* batch bodies never raise: [run] wraps them in a handler *)
      (try body () with _ -> ());
      Mutex.lock pool.mutex;
      pool.remaining <- pool.remaining - 1;
      if pool.remaining = 0 then Condition.broadcast pool.work_done;
      Mutex.unlock pool.mutex;
      loop ()
    end
  in
  loop ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Parallel.Pool.create: jobs must be >= 1";
  let jobs = min jobs (max_spawned + 1) in
  let pool =
    {
      jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      batch = None;
      epoch = 0;
      remaining = 0;
      stopping = false;
      domains = [];
    }
  in
  pool.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (worker pool));
  Obs.Gauge.set_max g_workers jobs;
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  if pool.stopping then Mutex.unlock pool.mutex
  else begin
    pool.stopping <- true;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.mutex;
    List.iter Domain.join pool.domains;
    pool.domains <- []
  end

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let run_batch pool body =
  Obs.Counter.incr m_batches;
  match pool.domains with
  | [] -> body ()
  | workers ->
    Mutex.lock pool.mutex;
    pool.batch <- Some body;
    pool.remaining <- List.length workers;
    pool.epoch <- pool.epoch + 1;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.mutex;
    body ();
    Mutex.lock pool.mutex;
    while pool.remaining > 0 do
      Condition.wait pool.work_done pool.mutex
    done;
    pool.batch <- None;
    Mutex.unlock pool.mutex

let run pool body =
  let failure = Atomic.make None in
  let guarded () =
    Obs.Gauge.set_max g_peak_busy (Atomic.fetch_and_add busy_now 1 + 1);
    Fun.protect
      ~finally:(fun () -> Atomic.decr busy_now)
      (fun () ->
        try body ()
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set failure None (Some (e, bt))))
  in
  run_batch pool guarded;
  match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let init ?chunk ?progress pool n f =
  if n < 0 then invalid_arg "Parallel.Pool.init: negative length";
  if n = 0 then [||]
  else begin
    let chunk =
      match chunk with
      | Some c -> if c < 1 then invalid_arg "Parallel.Pool.init: chunk must be >= 1" else c
      | None -> max 1 (n / (4 * pool.jobs))
    in
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let failure = Atomic.make None in
    let record e bt = ignore (Atomic.compare_and_set failure None (Some (e, bt))) in
    let failed () = Option.is_some (Atomic.get failure) in
    let report =
      match progress with
      | None -> fun () -> ()
      | Some cb ->
        let m = Mutex.create () in
        let last = ref 0 in
        fun () ->
          Mutex.lock m;
          let c = Atomic.get completed in
          let outcome =
            if c > !last then begin
              last := c;
              try
                cb c n;
                None
              with e -> Some (e, Printexc.get_raw_backtrace ())
            end
            else None
          in
          Mutex.unlock m;
          match outcome with Some (e, bt) -> record e bt | None -> ()
    in
    let body () =
      let rec grab () =
        if failed () then ()
        else begin
          let start = Atomic.fetch_and_add cursor chunk in
          if start >= n then ()
          else begin
            Obs.Counter.incr m_chunks;
            let stop = min n (start + chunk) in
            (try
               let i = ref start in
               while !i < stop && not (failed ()) do
                 results.(!i) <- Some (f !i);
                 Atomic.incr completed;
                 report ();
                 incr i
               done
             with e -> record e (Printexc.get_raw_backtrace ()));
            grab ()
          end
        end
      in
      grab ()
    in
    run pool body;
    (match Atomic.get failure with
     | Some (e, bt) -> Printexc.raise_with_backtrace e bt
     | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map ?chunk ?progress pool f a = init ?chunk ?progress pool (Array.length a) (fun i -> f a.(i))
