(** Deterministic domain-pool fan-out.

    Embarrassingly parallel workloads — Monte-Carlo sweeps, audit
    cross-checks, exhaustive searches — run on a fixed pool of worker
    domains ({!Pool}) with per-item generators derived deterministically
    from one seed ({!Det}), so the result is bit-for-bit identical for
    any worker count.  The conventional knob is [-j N] / [REDF_JOBS]
    with [0] meaning one worker per core; the default everywhere is
    serial ([jobs = 1]). *)

module Pool = Pool
module Det = Det

let available_domains = Pool.available_domains

(** [resolve_jobs j] maps the CLI convention to a worker count:
    [0] (and any negative value) means one worker per core. *)
let resolve_jobs jobs = if jobs <= 0 then available_domains () else jobs

let jobs_env_var = "REDF_JOBS"

(** Worker count requested by the [REDF_JOBS] environment variable,
    validated: unset means serial ([Ok 1]), [0] means one worker per
    core, and anything that is not a non-negative integer is an
    [Error] naming the offending value — a typo'd worker count should
    fail loudly, not silently serialize the run. *)
let jobs_of_env () =
  match
    (Sys.getenv_opt jobs_env_var
    [@redf.allow "det-purity"
                   "reads the worker count only; results are byte-identical for any REDF_JOBS \
                    value by the split-PRNG discipline"])
  with
  | None -> Ok 1
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | Some n when n >= 0 -> Ok n
    | Some _ | None ->
      Error
        (Printf.sprintf "invalid %s=%S: expected a positive worker count or 0 (one per core)"
           jobs_env_var v))

(** The worker count [REDF_JOBS] asks for, already resolved; malformed
    values fall back to serial (the CLI validates before getting here,
    so the fallback only matters for library consumers). *)
let default_jobs () =
  match jobs_of_env () with Ok n -> resolve_jobs n | Error _ -> 1

let parallel_map ?(jobs = 1) ?chunk ?progress f a =
  Pool.with_pool ~jobs:(resolve_jobs jobs) (fun pool -> Pool.map ?chunk ?progress pool f a)

let parallel_init ?(jobs = 1) ?chunk ?progress n f =
  Pool.with_pool ~jobs:(resolve_jobs jobs) (fun pool -> Pool.init ?chunk ?progress pool n f)
