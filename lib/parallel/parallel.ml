(** Deterministic domain-pool fan-out.

    Embarrassingly parallel workloads — Monte-Carlo sweeps, audit
    cross-checks, exhaustive searches — run on a fixed pool of worker
    domains ({!Pool}) with per-item generators derived deterministically
    from one seed ({!Det}), so the result is bit-for-bit identical for
    any worker count.  The conventional knob is [-j N] / [REDF_JOBS]
    with [0] meaning one worker per core; the default everywhere is
    serial ([jobs = 1]). *)

module Pool = Pool
module Det = Det

let available_domains = Pool.available_domains

(** [resolve_jobs j] maps the CLI convention to a worker count:
    [0] (and any negative value) means one worker per core. *)
let resolve_jobs jobs = if jobs <= 0 then available_domains () else jobs

let jobs_env_var = "REDF_JOBS"

(** Worker count requested by the [REDF_JOBS] environment variable:
    a positive count, or [0] for one worker per core.  Unset or
    malformed means serial. *)
let default_jobs () =
  match Sys.getenv_opt jobs_env_var with
  | None -> 1
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | Some 0 -> available_domains ()
    | Some n when n > 0 -> n
    | Some _ | None -> 1)

let parallel_map ?(jobs = 1) ?chunk ?progress f a =
  Pool.with_pool ~jobs:(resolve_jobs jobs) (fun pool -> Pool.map ?chunk ?progress pool f a)

let parallel_init ?(jobs = 1) ?chunk ?progress n f =
  Pool.with_pool ~jobs:(resolve_jobs jobs) (fun pool -> Pool.init ?chunk ?progress pool n f)
