(** Deterministic pseudo-random fan-out.

    Parallel Monte-Carlo runs stay bit-for-bit reproducible when every
    work item owns a generator whose state depends only on the master
    seed and the item's index — never on which worker runs it or in what
    order.  This module derives such generators with {!Rng.split},
    serially and in index order, before any parallel work starts; the
    combinators then pair item [i] with generator [i], so the result for
    any worker count (including 1) is identical. *)

val gens : Rng.t -> int -> Rng.t array
(** [gens master n] advances [master] and returns [n] independent
    generators, derived by [n] {!Rng.split}s in index order.  Calling it
    twice on equal master states yields equal arrays. *)

val seeds : seed:int -> int -> Rng.t array
(** [seeds ~seed n] is [gens (Rng.create ~seed) n]. *)

val init :
  ?chunk:int ->
  ?progress:(int -> int -> unit) ->
  Pool.t ->
  seed:int ->
  int ->
  (Rng.t -> int -> 'a) ->
  'a array
(** [init pool ~seed n f] is
    [[| f g.(0) 0; ...; f g.(n-1) (n-1) |]] for [g = seeds ~seed n],
    computed on the pool.  Each generator is used by exactly one item,
    so [f] may consume it freely. *)

val map :
  ?chunk:int ->
  ?progress:(int -> int -> unit) ->
  Pool.t ->
  seed:int ->
  (Rng.t -> 'a -> 'b) ->
  'a array ->
  'b array
(** [map pool ~seed f a] pairs [a.(i)] with the [i]-th derived
    generator; same contract as {!init}. *)
