(** A fixed-size pool of worker domains with a chunked work queue.

    The pool spawns [jobs - 1] domains at creation; the caller's domain
    is the remaining worker, so a pool with [jobs = 1] spawns nothing
    and runs every batch inline (the serial path and the parallel path
    are the same code).  Batches hand out chunks of indices through an
    atomic cursor, so load imbalance between items self-corrects without
    any per-item scheduling cost.

    Determinism: {!map} and {!init} write slot [i] of the result from
    exactly one worker and apply [f] to each index exactly once, so for
    a pure [f] the result is independent of the worker count and of the
    chunking.  Pair [f] with a per-index generator ({!Det}) to keep
    pseudo-random workloads deterministic too.

    Exceptions: the first exception raised by [f] (or by the progress
    callback) is captured with its backtrace, remaining chunks are
    abandoned, and the exception is re-raised in the caller once the
    batch has drained.

    Pools are not re-entrant: run one batch at a time per pool, from the
    domain that created it. *)

type t

val available_domains : unit -> int
(** [Domain.recommended_domain_count ()]: the worker count [-j 0]
    resolves to. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains ([jobs >= 1];
    counts above the domain-spawn budget are clamped).
    @raise Invalid_argument when [jobs < 1]. *)

val jobs : t -> int
(** Total workers participating in a batch, caller included. *)

val shutdown : t -> unit
(** Join every worker domain.  Idempotent.  The pool must not be used
    afterwards. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception). *)

val run : t -> (unit -> unit) -> unit
(** [run pool body] runs [body ()] once on every worker concurrently
    (including the caller) and returns when all invocations have
    returned.  The first exception any invocation raises is re-raised
    (with its backtrace) after the batch drains; the other invocations
    still run to completion.  This is the raw primitive behind {!map} —
    use it for custom loops (e.g. a search with a shared best-so-far). *)

val init :
  ?chunk:int -> ?progress:(int -> int -> unit) -> t -> int -> (int -> 'a) -> 'a array
(** [init pool n f] is [[| f 0; ...; f (n-1) |]], computed by all
    workers.  [chunk] is the number of consecutive indices handed out
    per queue pop (default: about four chunks per worker; must be
    [>= 1]).

    [progress] is called as [progress done_ total] with [total = n].
    Calls are serialized under a mutex and strictly monotonic in
    [done_]; unless the batch fails, the final call reports
    [done_ = total].  A long-running callback slows the batch down
    rather than racing it. *)

val map :
  ?chunk:int -> ?progress:(int -> int -> unit) -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f a] is [Array.map f a], computed by all workers; same
    [chunk] and [progress] contract as {!init}. *)
