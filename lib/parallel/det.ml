let gens master n =
  if n < 0 then invalid_arg "Parallel.Det.gens: negative length";
  if n = 0 then [||]
  else begin
    let a = Array.make n master in
    (* explicit loop: the split order is the determinism contract *)
    for i = 0 to n - 1 do
      a.(i) <- Rng.split master
    done;
    a
  end

let seeds ~seed n = gens (Rng.create ~seed) n

let init ?chunk ?progress pool ~seed n f =
  let g = seeds ~seed n in
  Pool.init ?chunk ?progress pool n (fun i -> f g.(i) i)

let map ?chunk ?progress pool ~seed f a =
  let g = seeds ~seed (Array.length a) in
  Pool.init ?chunk ?progress pool (Array.length a) (fun i -> f g.(i) a.(i))
