type t = { lru : Core.Verdict.t Sharded.t }

let create ?metrics_prefix ?(shards = 1) ~capacity () =
  { lru = Sharded.create ?metrics_prefix ~shards ~capacity () }

(* the cached verdict's checks index the canonical taskset: check at
   canonical position [p] belongs to original task [order.(p)] *)
let remap order (v : Core.Verdict.t) =
  let checks =
    List.map
      (fun (c : Core.Verdict.task_check) ->
        { c with Core.Verdict.task_index = order.(c.Core.Verdict.task_index) })
      v.Core.Verdict.checks
    |> List.sort (fun (a : Core.Verdict.task_check) b ->
           Int.compare a.Core.Verdict.task_index b.Core.Verdict.task_index)
  in
  Core.Verdict.make ~test_name:v.Core.Verdict.test_name ~checks

(* shared tail of both entry points: the canonical verdict for [key],
   decided on the already-canonical [canonical] taskset on a miss *)
let decide_keyed t ~analyzer ~fpga_area ~key ~canonical ~order =
  let canonical_verdict =
    match Sharded.find t.lru key with
    | Some v -> v
    | None ->
      let v = analyzer.Core.Analyzer.decide ~fpga_area (Lazy.force canonical) in
      Sharded.put t.lru key v;
      v
  in
  remap order canonical_verdict

let decide t ~analyzer ~fpga_area ts =
  let key = Canonical.key ~analyzer ~fpga_area ts in
  let order = Canonical.order ts in
  decide_keyed t ~analyzer ~fpga_area ~key ~canonical:(lazy (Canonical.apply order ts)) ~order

let decide_canonical t ~analyzer ~fpga_area ~key ~canonical ~order =
  decide_keyed t ~analyzer ~fpga_area ~key ~canonical:(lazy canonical) ~order

let stats t = Sharded.stats t.lru
let length t = Sharded.length t.lru
let shards t = Sharded.shards t.lru
