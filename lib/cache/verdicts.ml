type t = { lru : Core.Verdict.t Sharded.t }

let create ?metrics_prefix ?(shards = 1) ~capacity () =
  { lru = Sharded.create ?metrics_prefix ~shards ~capacity () }

(* the cached verdict's checks index the canonical taskset: check at
   canonical position [p] belongs to original task [order.(p)] *)
let remap order (v : Core.Verdict.t) =
  let checks =
    List.map
      (fun (c : Core.Verdict.task_check) ->
        { c with Core.Verdict.task_index = order.(c.Core.Verdict.task_index) })
      v.Core.Verdict.checks
    |> List.sort (fun (a : Core.Verdict.task_check) b ->
           Int.compare a.Core.Verdict.task_index b.Core.Verdict.task_index)
  in
  Core.Verdict.make ~test_name:v.Core.Verdict.test_name ~checks

(* shared tail of both entry points: the canonical verdict for [key],
   decided on the already-canonical [canonical] taskset on a miss *)
let decide_keyed t ~analyzer ~fpga_area ~key ~canonical ~order =
  let canonical_verdict =
    match Sharded.find t.lru key with
    | Some v -> v
    | None ->
      let v = analyzer.Core.Analyzer.decide ~fpga_area (Lazy.force canonical) in
      Sharded.put t.lru key v;
      v
  in
  remap order canonical_verdict

let decide t ~analyzer ~fpga_area ts =
  let key = Canonical.key ~analyzer ~fpga_area ts in
  let order = Canonical.order ts in
  decide_keyed t ~analyzer ~fpga_area ~key ~canonical:(lazy (Canonical.apply order ts)) ~order

let decide_canonical t ~analyzer ~fpga_area ~key ~canonical ~order =
  decide_keyed t ~analyzer ~fpga_area ~key ~canonical:(lazy canonical) ~order

(* batch variant: probe every key, collect the distinct missing
   canonical tasksets (first-occurrence order), decide them in one
   [decide_all] call, then stitch.  Freshly computed verdicts are looked
   up in a local table rather than re-probed, so an eviction between put
   and stitch cannot force a recompute. *)
let decide_all t ~analyzer ~fpga_area tss =
  let n = Array.length tss in
  let cols = Array.map Model.Taskset.Columns.of_taskset tss in
  let keys = Array.map (fun c -> Canonical.key_cols ~analyzer ~fpga_area c) cols in
  let orders = Array.map Canonical.order_cols cols in
  let cached = Array.map (fun k -> Sharded.find t.lru k) keys in
  let seen = Hashtbl.create 16 in
  let missing = ref [] in
  Array.iteri
    (fun i c ->
      match c with
      | Some _ -> ()
      | None ->
        let k = keys.(i) in
        if not (Hashtbl.mem seen k) then begin
          Hashtbl.add seen k ();
          missing := (k, Canonical.apply orders.(i) tss.(i)) :: !missing
        end)
    cached;
  let missing = Array.of_list (List.rev !missing) in
  let computed = Hashtbl.create 16 in
  if Array.length missing > 0 then begin
    let fresh = analyzer.Core.Analyzer.decide_all ~fpga_area (Array.map snd missing) in
    Array.iteri
      (fun j (k, _) ->
        Sharded.put t.lru k fresh.(j);
        Hashtbl.add computed k fresh.(j))
      missing
  end;
  Array.init n (fun i ->
      let canonical_verdict =
        match cached.(i) with
        | Some v -> v
        | None -> (
          match Hashtbl.find_opt computed keys.(i) with
          | Some v -> v
          | None -> assert false (* every miss key was just computed *))
      in
      remap orders.(i) canonical_verdict)

let stats t = Sharded.stats t.lru
let length t = Sharded.length t.lru
let shards t = Sharded.shards t.lru
