(* Classic Hashtbl + doubly-linked recency list.  [first] is the most
   recently used entry, [last] the eviction candidate; every mutation
   happens under [mutex]. *)

type 'v node = {
  nkey : string;
  mutable nvalue : 'v;
  mutable prev : 'v node option;  (* towards [first] *)
  mutable next : 'v node option;  (* towards [last] *)
}

type 'v t = {
  mutex : Mutex.t;
  cap : int;
  table : (string, 'v node) Hashtbl.t;
  mutable first : 'v node option;
  mutable last : 'v node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  m_hits : Obs.Counter.t;
  m_misses : Obs.Counter.t;
  m_evictions : Obs.Counter.t;
  m_size : Obs.Gauge.t;
}

let create ?(metrics_prefix = "cache") ~capacity () =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  {
    mutex = Mutex.create ();
    cap = capacity;
    table = Hashtbl.create (max 16 capacity);
    first = None;
    last = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    (* duplicate requests race to compute under parallel serving, so
       the split between hits and misses depends on the worker count *)
    m_hits = Obs.Counter.make ~det:false (metrics_prefix ^ ".hits");
    m_misses = Obs.Counter.make ~det:false (metrics_prefix ^ ".misses");
    m_evictions = Obs.Counter.make ~det:false (metrics_prefix ^ ".evictions");
    m_size = Obs.Gauge.make (metrics_prefix ^ ".size");
  }

let capacity t = t.cap

let length t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.mutex;
  n

(* --- list surgery (caller holds the mutex) --- *)

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.first <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.last <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.first;
  (match t.first with Some f -> f.prev <- Some node | None -> t.last <- Some node);
  t.first <- Some node

let find t key =
  if t.cap = 0 then begin
    Mutex.lock t.mutex;
    t.misses <- t.misses + 1;
    Mutex.unlock t.mutex;
    Obs.Counter.incr t.m_misses;
    None
  end
  else begin
    Mutex.lock t.mutex;
    let result =
      match Hashtbl.find_opt t.table key with
      | Some node ->
        t.hits <- t.hits + 1;
        unlink t node;
        push_front t node;
        Some node.nvalue
      | None ->
        t.misses <- t.misses + 1;
        None
    in
    Mutex.unlock t.mutex;
    (match result with
     | Some _ -> Obs.Counter.incr t.m_hits
     | None -> Obs.Counter.incr t.m_misses);
    result
  end

let put t key value =
  if t.cap > 0 then begin
    Mutex.lock t.mutex;
    let evicted =
      match Hashtbl.find_opt t.table key with
      | Some node ->
        node.nvalue <- value;
        unlink t node;
        push_front t node;
        false
      | None ->
        let evicted =
          if Hashtbl.length t.table >= t.cap then begin
            match t.last with
            | Some lru ->
              unlink t lru;
              Hashtbl.remove t.table lru.nkey;
              t.evictions <- t.evictions + 1;
              true
            | None -> false
          end
          else false
        in
        let node = { nkey = key; nvalue = value; prev = None; next = None } in
        Hashtbl.add t.table key node;
        push_front t node;
        evicted
    in
    let size = Hashtbl.length t.table in
    Mutex.unlock t.mutex;
    if evicted then Obs.Counter.incr t.m_evictions;
    Obs.Gauge.set t.m_size size
  end

type stats = { hits : int; misses : int; evictions : int }

let stats t =
  Mutex.lock t.mutex;
  let s = { hits = t.hits; misses = t.misses; evictions = t.evictions } in
  Mutex.unlock t.mutex;
  s

let keys_mru t =
  Mutex.lock t.mutex;
  let rec go acc = function
    | None -> List.rev acc
    | Some node -> go (node.nkey :: acc) node.next
  in
  let keys = go [] t.first in
  Mutex.unlock t.mutex;
  keys
