(** Incrementally maintained canonical form of a named taskset.

    The online admission daemon ([lib/admit]) holds a live taskset and
    mutates it one task at a time; this structure keeps the canonical
    order and per-task key fragments across those deltas, so the
    canonical cache key of the next state (or of a what-if candidate)
    is a splice plus a concatenation instead of a fresh sort and
    re-format of every task.

    Contract (asserted by [test_admit.ml] over random mutation traces):
    for every reachable [d], [key d ~analyzer ~fpga_area] is
    byte-identical to [Canonical.key ~analyzer ~fpga_area] of the
    materialized taskset, and verdicts decided through
    {!Verdicts.decide_canonical} with this structure's key/order are
    byte-identical to {!Verdicts.decide} (and thus to from-scratch
    analysis).

    The structure is immutable: a what-if candidate is [add]/[remove]
    on the current value, with nothing to undo.  Task names must be
    unique and non-empty (the daemon's admission rule). *)

type t

val empty : t
val of_tasks : Model.Task.t list -> t
val size : t -> int

val add : t -> Model.Task.t -> t
(** @raise Invalid_argument on an empty or duplicate name. *)

val remove : t -> string -> t
(** Remove the task with this name.
    @raise Invalid_argument when no task has it. *)

val mem : t -> string -> bool
val find : t -> string -> Model.Task.t option

val names : t -> string list
(** Names in canonical order. *)

val key : t -> analyzer:Core.Analyzer.t -> fpga_area:int -> string
(** The canonical cache key, equal to {!Canonical.key} of
    {!canonical_taskset} — built without sorting or re-formatting. *)

val canonical_taskset : t -> Model.Taskset.t
(** Tasks in canonical order with names dropped, as {!Canonical.apply}
    would produce.  @raise Invalid_argument when empty. *)

val order : t -> original:string list -> int array
(** [order.(p)] is the index in [original] (the caller's task order,
    matched by name) of the task at canonical position [p] — the
    permutation {!Verdicts.decide_canonical} needs to map the cached
    verdict's checks back to the caller's order.
    @raise Invalid_argument when a canonical task's name is not in
    [original]. *)
