(** A size-bounded, domain-safe LRU map with observability counters.

    One mutex serializes every operation, so a cache is safe to share
    across the {!Parallel} pool's worker domains; operations are O(1)
    (hash lookup plus doubly-linked-list splicing), so the lock is held
    for nanoseconds and the map never becomes the bottleneck of an
    analysis that takes microseconds.

    The lock is {e not} held while a caller computes a missing value:
    {!find} and {!put} are separate, so two workers racing on the same
    key may both compute it — wasteful but harmless when values are
    deterministic functions of the key, which is the contract here.

    Hit/miss/eviction counts are kept both internally ({!stats}, always
    on, for programmatic assertions) and as {!Obs} counters under
    [<metrics_prefix>.hits/.misses/.evictions] plus a
    [<metrics_prefix>.size] gauge (visible in [--metrics] snapshots;
    tagged non-deterministic, since racing workers can turn one miss
    into two). *)

type 'v t

val create : ?metrics_prefix:string -> capacity:int -> unit -> 'v t
(** [capacity] is the maximum number of entries; [0] disables the cache
    entirely (every {!find} misses, {!put} is a no-op).
    [metrics_prefix] defaults to ["cache"]; two caches sharing a prefix
    share counters.
    @raise Invalid_argument when [capacity < 0]. *)

val capacity : 'v t -> int
val length : 'v t -> int

val find : 'v t -> string -> 'v option
(** Lookup; a hit promotes the entry to most-recently-used. *)

val put : 'v t -> string -> 'v -> unit
(** Insert or overwrite (either way the entry becomes most recent);
    evicts the least-recently-used entry when full. *)

type stats = { hits : int; misses : int; evictions : int }

val stats : 'v t -> stats

val keys_mru : 'v t -> string list
(** Keys from most- to least-recently used (for tests). *)
