(** A sharded LRU: N independent {!Lru} shards selected by a
    deterministic hash of the key, so concurrent lookups from many
    worker domains (or many served connections) stop serializing on one
    mutex.

    Each shard is a full {!Lru} with its own lock and its own recency
    list; a key always maps to the same shard (FNV-1a over the key
    bytes, no per-process seed), so the cache contract — a cached value
    is exactly what a fresh computation would produce — is unchanged.
    Eviction is per shard: total capacity is split evenly (rounded up),
    and a hot shard evicts independently of a cold one, so the sharded
    cache may retain a slightly different key set than a single LRU of
    the same total capacity would.  Values being deterministic functions
    of their key (the {!Verdicts} contract), this affects only hit
    rates, never bytes.

    The stats surface is the single-LRU one summed across shards:
    {!stats}, {!length} and {!capacity} aggregate, and every shard
    shares the same [metrics_prefix] so the [cache.*] observability
    counters already aggregate process-wide. *)

type 'v t

val create : ?metrics_prefix:string -> ?shards:int -> capacity:int -> unit -> 'v t
(** [shards] (default 8) independent {!Lru}s of [ceil (capacity /
    shards)] entries each; [capacity = 0] disables caching entirely,
    as for {!Lru.create}.
    @raise Invalid_argument when [shards < 1] or [capacity < 0]. *)

val shards : 'v t -> int
val capacity : 'v t -> int
(** Total capacity summed across shards (≥ the requested capacity,
    because the per-shard split rounds up). *)

val length : 'v t -> int

val find : 'v t -> string -> 'v option
val put : 'v t -> string -> 'v -> unit

val stats : 'v t -> Lru.stats
(** Hit/miss/eviction totals summed across shards. *)

val shard_of_key : 'v t -> string -> int
(** Which shard serves [key] (deterministic; for tests). *)
