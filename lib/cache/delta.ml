(* Incrementally maintained canonical form of a *named* taskset.

   The admission daemon mutates its taskset one task at a time; paying
   a full sort + per-task re-format per mutation to rebuild the
   canonical cache key would make every verdict O(n log n) before the
   analyzer even runs.  This structure keeps the tasks in canonical
   order with their key fragments precomputed, so add/remove splice one
   entry (O(n) list surgery, no comparisons or formatting for the other
   n-1 tasks) and the key is a straight concatenation.

   Key-byte contract: [key d ~analyzer ~fpga_area] equals
   [Canonical.key ~analyzer ~fpga_area (taskset d)] for every reachable
   [d].  Equal tasks have equal fragments, so the tie order among them
   — where this structure and [Canonical.order]'s stable sort may
   disagree — can never change the key bytes, and (because equal tasks
   also have equal per-task checks) never changes remapped verdict
   bytes either; [test_admit.ml] asserts both over random mutation
   traces. *)

type entry = { name : string; task : Model.Task.t; frag : string }
type t = { entries : entry list (* canonical (compare_tasks) order *); size : int }

let empty = { entries = []; size = 0 }
let size t = t.size

let mem t name = List.exists (fun e -> e.name = name) t.entries

let find t name =
  List.find_map (fun e -> if e.name = name then Some e.task else None) t.entries

let add t (task : Model.Task.t) =
  let name = task.Model.Task.name in
  if name = "" then invalid_arg "Delta.add: task must be named";
  if mem t name then invalid_arg (Printf.sprintf "Delta.add: duplicate task name %S" name);
  let entry = { name; task; frag = Canonical.fragment task } in
  let rec insert = function
    | [] -> [ entry ]
    | e :: rest ->
      (* after equal entries: insertion order breaks ties, which the
         key/verdict contract above shows is unobservable *)
      if Canonical.compare_tasks entry.task e.task < 0 then entry :: e :: rest
      else e :: insert rest
  in
  { entries = insert t.entries; size = t.size + 1 }

let remove t name =
  let rec drop = function
    | [] -> invalid_arg (Printf.sprintf "Delta.remove: no task named %S" name)
    | e :: rest -> if e.name = name then rest else e :: drop rest
  in
  { entries = drop t.entries; size = t.size - 1 }

let of_tasks tasks = List.fold_left add empty tasks

let key t ~analyzer ~fpga_area =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Canonical.key_prefix ~analyzer ~fpga_area);
  List.iter (fun e -> Buffer.add_string buf e.frag) t.entries;
  Buffer.contents buf

let canonical_taskset t =
  match t.entries with
  | [] -> invalid_arg "Delta.canonical_taskset: empty"
  | entries ->
    Model.Taskset.of_list
      (List.map (fun e -> { e.task with Model.Task.name = "" }) entries)

(* canonical position -> index in [original] (the caller's task order,
   e.g. admission order).  Duplicate uses of an index are impossible
   because names are unique on both sides. *)
let order t ~original =
  let index_of name =
    let rec go i = function
      | [] -> invalid_arg (Printf.sprintf "Delta.order: %S not in original" name)
      | n :: rest -> if n = name then i else go (i + 1) rest
    in
    go 0 original
  in
  Array.of_list (List.map (fun e -> index_of e.name) t.entries)

let names t = List.map (fun e -> e.name) t.entries
