(** The verdict cache: {!Canonical} keys over an {!Lru} of verdicts.

    A cached answer must be byte-for-byte the answer a fresh
    computation would give.  Verdicts carry per-task checks in taskset
    order, and the cache is deliberately blind to task order — so the
    cache stores the verdict of the {e canonical} taskset (tasks
    sorted, names dropped) and, per request, maps the check indices
    back through the request's sort permutation.  Every per-task
    quantity in a verdict (lhs, rhs, note) depends only on that task's
    parameters and the multiset of the others, so the remapped verdict
    equals the directly computed one exactly — a property
    [test_cache.ml] asserts against randomized tasksets.

    Safe to share across worker domains ({!Lru}'s locking).  The store
    is a {!Sharded} LRU: [shards] defaults to [1] (a plain LRU, exact
    single-threaded hit/miss accounting) and the serve loop passes more
    shards so worker domains stop serializing on one cache mutex —
    sharding changes lock granularity only, never answers. *)

type t

val create : ?metrics_prefix:string -> ?shards:int -> capacity:int -> unit -> t
(** See {!Sharded.create}; [metrics_prefix] defaults to ["cache"],
    [shards] to [1]. *)

val decide : t -> analyzer:Core.Analyzer.t -> fpga_area:int -> Model.Taskset.t -> Core.Verdict.t
(** [analyzer.decide ~fpga_area ts], served from the cache when an
    equivalent request (any task order / names) was already answered
    for this analyzer name+version and device area. *)

val decide_all :
  t ->
  analyzer:Core.Analyzer.t ->
  fpga_area:int ->
  Model.Taskset.t array ->
  Core.Verdict.t array
(** {!decide} over a batch, element-for-element byte-identical to
    mapping it: every key is probed once, the {e distinct} missing
    canonical tasksets are decided in a single
    {!Core.Analyzer.t.decide_all} call (so a taskset occurring twice in
    the batch — under any task order or names — is computed once), and
    the results remapped per request. *)

val decide_canonical :
  t ->
  analyzer:Core.Analyzer.t ->
  fpga_area:int ->
  key:string ->
  canonical:Model.Taskset.t ->
  order:int array ->
  Core.Verdict.t
(** {!decide} for callers that already hold the canonical form — e.g.
    the admission daemon, whose {!Delta} maintains [key], [canonical]
    and [order] incrementally across mutations.  The caller promises
    the three are consistent ({!Canonical.key} / {!Canonical.apply} /
    {!Canonical.order} of some original taskset); given that, the
    result is byte-identical to [decide] on that original. *)

val stats : t -> Lru.stats
(** Hit/miss/eviction totals summed across shards. *)

val length : t -> int

val shards : t -> int
(** Number of shards backing the store. *)
