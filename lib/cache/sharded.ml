type 'v t = { shards : 'v Lru.t array }

(* FNV-1a over the key bytes: deterministic across runs and processes
   (no per-process hash seed), cheap, and well-distributed for the
   canonical-key strings it is fed.  The multiplier is the 64-bit FNV
   prime; the offset basis is replaced by a large odd constant that
   fits OCaml's 63-bit native int (the canonical FNV basis does not). *)
let fnv1a key =
  let h = ref 0x2545f4914f6cdd1d in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    key;
  !h land max_int

let create ?metrics_prefix ?(shards = 8) ~capacity () =
  if shards < 1 then invalid_arg "Sharded.create: shards must be >= 1";
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  let per_shard = if capacity = 0 then 0 else (capacity + shards - 1) / shards in
  { shards = Array.init shards (fun _ -> Lru.create ?metrics_prefix ~capacity:per_shard ()) }

let shards t = Array.length t.shards
let shard_of_key t key = fnv1a key mod Array.length t.shards
let shard t key = t.shards.(shard_of_key t key)
let find t key = Lru.find (shard t key) key
let put t key value = Lru.put (shard t key) key value

let fold_shards f t =
  let acc = ref 0 in
  Array.iter (fun s -> acc := !acc + f s) t.shards;
  !acc

let capacity t = fold_shards Lru.capacity t
let length t = fold_shards Lru.length t

let stats t =
  Array.fold_left
    (fun acc s ->
      let st = Lru.stats s in
      {
        Lru.hits = acc.Lru.hits + st.Lru.hits;
        misses = acc.Lru.misses + st.Lru.misses;
        evictions = acc.Lru.evictions + st.Lru.evictions;
      })
    { Lru.hits = 0; misses = 0; evictions = 0 }
    t.shards
