let compare_tasks (a : Model.Task.t) (b : Model.Task.t) =
  let t = Model.Time.ticks in
  let c = Int.compare (t a.Model.Task.exec) (t b.Model.Task.exec) in
  if c <> 0 then c
  else
    let c = Int.compare (t a.Model.Task.deadline) (t b.Model.Task.deadline) in
    if c <> 0 then c
    else
      let c = Int.compare (t a.Model.Task.period) (t b.Model.Task.period) in
      if c <> 0 then c else Int.compare a.Model.Task.area b.Model.Task.area

let order ts =
  let tasks = Model.Taskset.to_array ts in
  let idx = Array.init (Array.length tasks) Fun.id in
  (* stable: ties sort by original index, so equal tasks keep their
     relative order and the permutation is deterministic *)
  Array.sort
    (fun i j ->
      let c = compare_tasks tasks.(i) tasks.(j) in
      if c <> 0 then c else Int.compare i j)
    idx;
  idx

let apply order ts =
  Model.Taskset.of_list
    (Array.to_list
       (Array.map (fun i -> { (Model.Taskset.nth ts i) with Model.Task.name = "" }) order))

(* the per-task and per-device key pieces are shared with {!Delta},
   which rebuilds keys incrementally: both must produce the same bytes *)
let fragment (task : Model.Task.t) =
  let t = Model.Time.ticks in
  Printf.sprintf "%d,%d,%d,%d;" (t task.Model.Task.exec) (t task.Model.Task.deadline)
    (t task.Model.Task.period) task.Model.Task.area

let key_prefix ~analyzer ~fpga_area =
  Printf.sprintf "%s\x00%s\x00%d\x00" analyzer.Core.Analyzer.name analyzer.Core.Analyzer.version
    fpga_area

let key ~analyzer ~fpga_area ts =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (key_prefix ~analyzer ~fpga_area);
  let tasks = Model.Taskset.to_array ts in
  Array.iter (fun i -> Buffer.add_string buf (fragment tasks.(i))) (order ts);
  Buffer.contents buf
