module Columns = Model.Taskset.Columns

let compare_tasks (a : Model.Task.t) (b : Model.Task.t) =
  let t = Model.Time.ticks in
  let c = Int.compare (t a.Model.Task.exec) (t b.Model.Task.exec) in
  if c <> 0 then c
  else
    let c = Int.compare (t a.Model.Task.deadline) (t b.Model.Task.deadline) in
    if c <> 0 then c
    else
      let c = Int.compare (t a.Model.Task.period) (t b.Model.Task.period) in
      if c <> 0 then c else Int.compare a.Model.Task.area b.Model.Task.area

(* sorting column indices instead of task records keeps key derivation
   allocation-light on the batch paths: no Task list rebuild per probe,
   just one int array over the existing tick columns *)
let order_cols (cols : Columns.t) =
  let exec = cols.Columns.exec
  and deadline = cols.Columns.deadline
  and period = cols.Columns.period
  and area = cols.Columns.area in
  let idx = Array.init cols.Columns.n Fun.id in
  (* stable: ties sort by original index, so equal tasks keep their
     relative order and the permutation is deterministic *)
  Array.sort
    (fun i j ->
      let c = Int.compare exec.(i) exec.(j) in
      if c <> 0 then c
      else
        let c = Int.compare deadline.(i) deadline.(j) in
        if c <> 0 then c
        else
          let c = Int.compare period.(i) period.(j) in
          if c <> 0 then c
          else
            let c = Int.compare area.(i) area.(j) in
            if c <> 0 then c else Int.compare i j)
    idx;
  idx

let order ts = order_cols (Columns.of_taskset ts)

let apply order ts =
  Model.Taskset.of_list
    (Array.to_list
       (Array.map (fun i -> { (Model.Taskset.nth ts i) with Model.Task.name = "" }) order))

(* the per-task and per-device key pieces are shared with {!Delta},
   which rebuilds keys incrementally: both must produce the same bytes *)
let fragment (task : Model.Task.t) =
  let t = Model.Time.ticks in
  Printf.sprintf "%d,%d,%d,%d;" (t task.Model.Task.exec) (t task.Model.Task.deadline)
    (t task.Model.Task.period) task.Model.Task.area

let key_prefix ~analyzer ~fpga_area =
  Printf.sprintf "%s\x00%s\x00%d\x00" analyzer.Core.Analyzer.name analyzer.Core.Analyzer.version
    fpga_area

let key_cols ~analyzer ~fpga_area (cols : Columns.t) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (key_prefix ~analyzer ~fpga_area);
  Array.iter
    (fun i ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%d;" cols.Columns.exec.(i) cols.Columns.deadline.(i)
           cols.Columns.period.(i) cols.Columns.area.(i)))
    (order_cols cols);
  Buffer.contents buf

let key ~analyzer ~fpga_area ts = key_cols ~analyzer ~fpga_area (Columns.of_taskset ts)
