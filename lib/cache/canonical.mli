(** Canonical form of an analysis request, for cache keying.

    Two requests must share a cache entry exactly when no analyzer can
    tell them apart: task order is irrelevant (every test quantifies
    over the set), and so are task names (no test reads them).  The
    canonical form therefore sorts the tasks by their parameters and
    drops the names; the key then binds the device area and the
    analyzer's identity/version, so a corrected bound can never serve a
    verdict computed by its predecessor.

    Keys are the full canonical encoding, not a digest: equality of
    keys is equality of requests, so a cache hit can never return the
    verdict of a colliding taskset. *)

val order_cols : Model.Taskset.Columns.t -> int array
(** {!order} over the columnar views — the batch paths derive keys
    without rebuilding task records. *)

val order : Model.Taskset.t -> int array
(** The stable permutation that sorts the tasks by
    [(C, D, T, A)] (tick-exact): [order.(p)] is the original index of
    the task at canonical position [p].  Ties keep their original
    relative order, which makes the permutation — and everything
    derived from it — deterministic. *)

val apply : int array -> Model.Taskset.t -> Model.Taskset.t
(** [apply (order ts) ts] is the canonical taskset: tasks sorted and
    renamed to [""] so a cached computation is structurally independent
    of the requester's spelling. *)

val key : analyzer:Core.Analyzer.t -> fpga_area:int -> Model.Taskset.t -> string
(** The canonical cache key for [(A(H), tasks, analyzer, version)]. *)

val key_cols : analyzer:Core.Analyzer.t -> fpga_area:int -> Model.Taskset.Columns.t -> string
(** {!key} from the columnar views; byte-identical to [key] on the
    equivalent taskset. *)

val compare_tasks : Model.Task.t -> Model.Task.t -> int
(** The canonical task ordering: lexicographic on tick-exact
    [(C, D, T, A)].  Names are ignored (the tests never read them). *)

val fragment : Model.Task.t -> string
(** One task's slice of a canonical key.  {!key} is exactly
    {!key_prefix} followed by the fragments of the tasks in canonical
    order — {!Delta} relies on this to rebuild keys incrementally. *)

val key_prefix : analyzer:Core.Analyzer.t -> fpga_area:int -> string
(** The device/analyzer-binding head of every canonical key. *)
