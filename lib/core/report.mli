(** Multi-analyzer reports for one taskset, in human and JSON form. *)

type t = {
  fpga_area : int;
  analyzers : Analyzer.t list;  (** parallel to [verdicts] *)
  taskset : Model.Taskset.t;
  verdicts : Verdict.t list;
  time_utilization : Rat.t;
  system_utilization : Rat.t;
}

val run : ?analyzers:Analyzer.t list -> fpga_area:int -> Model.Taskset.t -> t
(** Default analyzers: {!Analyzer.defaults} (DP, GN1, GN2). *)

val run_all : ?analyzers:Analyzer.t list -> fpga_area:int -> Model.Taskset.t array -> t array
(** One report per taskset via each analyzer's batch path
    ({!Analyzer.t.decide_all}); element [i] is byte-identical to
    [run ?analyzers ~fpga_area tss.(i)]. *)

val summary_line : t -> string
(** e.g. ["DP:ACCEPT GN1:REJECT GN2:REJECT"]. *)

val pp : Format.formatter -> t -> unit

val task_json : Model.Task.t -> Json.t
(** [{"name":…,"C":"1.26","D":"7","T":"7","A":9}] — decimal time
    strings, exactly the shape server requests carry. *)

val verdict_json : Analyzer.t -> Verdict.t -> Json.t
(** {!Verdict.to_json} plus the analyzer's ["analyzer_version"] — the
    per-verdict object both [--format json] and the server emit. *)

val to_json : t -> Json.t
(** The whole report with ["schema_version"]. *)
