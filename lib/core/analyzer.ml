type t = {
  name : string;
  cite : string;
  version : string;
  decide : fpga_area:int -> Model.Taskset.t -> Verdict.t;
  decide_all : fpga_area:int -> Model.Taskset.t array -> Verdict.t array;
}

let batch_of_decide decide ~fpga_area tss = Array.map (fun ts -> decide ~fpga_area ts) tss

let make ?decide_all ~name ~cite ~version decide =
  let decide_all =
    match decide_all with Some f -> f | None -> batch_of_decide decide
  in
  { name; cite; version; decide; decide_all }

let guan = "Guan, Gu, Deng, Liu, Yu (IPDPS 2007)"

let dp =
  make ~decide_all:Dp.decide_all ~name:"DP"
    ~cite:("Theorem 1, " ^ guan ^ ", after Danne & Platzner")
    ~version:"1" Dp.decide

let dp_original =
  make ~name:"DP-original"
    ~cite:"Danne & Platzner's uncorrected bound (real-valued areas)" ~version:"1"
    Dp.decide_original

let gn1 =
  make ~decide_all:Gn1.decide_all ~name:"GN1"
    ~cite:("Theorem 2, " ^ guan ^ " (strict inequality, DESIGN.md section 2)")
    ~version:"1" Gn1.decide

let gn1_printed =
  make ~name:"GN1-printed"
    ~cite:"Theorem 2 as printed ((A(H) - A_k) bound constant)" ~version:"1"
    Gn1.decide_printed

let gn2 =
  make ~decide_all:Gn2.decide_all ~name:"GN2"
    ~cite:("Theorem 3, " ^ guan ^ " (typo-corrected, DESIGN.md section 2)")
    ~version:"1" Gn2.decide

(* the necessary conditions phrased as an analyzer so sweeps and the
   server can serve them; an empty check list encodes "nothing to
   refute" and the note carries the violated conditions *)
let nec_decide ~fpga_area ts =
  match Feasibility.check ~fpga_area ts with
  | [] -> Verdict.make ~test_name:"NEC" ~checks:[]
  | violations ->
    let note =
      String.concat "; "
        (List.map (Format.asprintf "%a" Feasibility.pp_violation) violations)
    in
    Verdict.reject_all ~test_name:"NEC" ~note ts

let nec =
  make ~name:"NEC"
    ~cite:"necessary feasibility conditions (infeasible under any scheduler when violated)"
    ~version:"1" nec_decide

let defaults = [ dp; gn1; gn2 ]
let builtins = defaults @ [ dp_original; gn1_printed; nec ]

(* --- the dynamic registry --- *)

(* analyzers contributed by higher layers (lib/exact cannot be a core
   dependency), appended after the builtins; parsers resolve
   parameterized names such as "approx[0.01]" that cannot be enumerated.
   Both lists live in Atomics so registration from any domain is safe;
   registration is idempotent (same name / syntax: kept, not replaced),
   so an `ensure ()`-style hook can run any number of times. *)

type parser_entry = { syntax : string; parse : string -> (t, string) result option }

let registered : t list Atomic.t = Atomic.make []
let parsers : parser_entry list Atomic.t = Atomic.make []

let rec atomic_update r f =
  let old = Atomic.get r in
  if not (Atomic.compare_and_set r old (f old)) then atomic_update r f

let canonical_name n = String.lowercase_ascii (String.trim n)

let all () = builtins @ Atomic.get registered

let register a =
  atomic_update registered (fun l ->
      if List.exists (fun b -> canonical_name b.name = canonical_name a.name) (builtins @ l) then l
      else l @ [ a ])

let register_parser ~syntax parse =
  atomic_update parsers (fun l ->
      if List.exists (fun p -> p.syntax = syntax) l then l else l @ [ { syntax; parse } ])

let known_names () =
  List.map (fun a -> a.name) (all ()) @ List.map (fun p -> p.syntax) (Atomic.get parsers)

let of_name name =
  let target = canonical_name name in
  match List.find_opt (fun a -> canonical_name a.name = target) (all ()) with
  | Some a -> Ok a
  | None -> (
    match List.find_map (fun p -> p.parse target) (Atomic.get parsers) with
    | Some result -> result
    | None ->
      Error
        (Printf.sprintf "unknown analyzer %S (use %s)" name (String.concat ", " (known_names ()))))

let of_names names =
  let parts =
    String.split_on_char ',' names |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if parts = [] then Error "no analyzer named"
  else
    List.fold_left
      (fun acc part ->
        match (acc, of_name part) with
        | Error _, _ -> acc
        | Ok _, Error e -> Error e
        | Ok l, Ok a -> Ok (l @ [ a ]))
      (Ok []) parts

let accepts a ~fpga_area ts = Verdict.accepted (a.decide ~fpga_area ts)
