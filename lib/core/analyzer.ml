type t = {
  name : string;
  cite : string;
  version : string;
  decide : fpga_area:int -> Model.Taskset.t -> Verdict.t;
}

let guan = "Guan, Gu, Deng, Liu, Yu (IPDPS 2007)"

let dp =
  {
    name = "DP";
    cite = "Theorem 1, " ^ guan ^ ", after Danne & Platzner";
    version = "1";
    decide = Dp.decide;
  }

let dp_original =
  {
    name = "DP-original";
    cite = "Danne & Platzner's uncorrected bound (real-valued areas)";
    version = "1";
    decide = Dp.decide_original;
  }

let gn1 =
  {
    name = "GN1";
    cite = "Theorem 2, " ^ guan ^ " (strict inequality, DESIGN.md section 2)";
    version = "1";
    decide = Gn1.decide;
  }

let gn1_printed =
  {
    name = "GN1-printed";
    cite = "Theorem 2 as printed ((A(H) - A_k) bound constant)";
    version = "1";
    decide = Gn1.decide_printed;
  }

let gn2 =
  {
    name = "GN2";
    cite = "Theorem 3, " ^ guan ^ " (typo-corrected, DESIGN.md section 2)";
    version = "1";
    decide = Gn2.decide;
  }

(* the necessary conditions phrased as an analyzer so sweeps and the
   server can serve them; an empty check list encodes "nothing to
   refute" and the note carries the violated conditions *)
let nec_decide ~fpga_area ts =
  match Feasibility.check ~fpga_area ts with
  | [] -> Verdict.make ~test_name:"NEC" ~checks:[]
  | violations ->
    let note =
      String.concat "; "
        (List.map (Format.asprintf "%a" Feasibility.pp_violation) violations)
    in
    Verdict.reject_all ~test_name:"NEC" ~note ts

let nec =
  {
    name = "NEC";
    cite = "necessary feasibility conditions (infeasible under any scheduler when violated)";
    version = "1";
    decide = nec_decide;
  }

let defaults = [ dp; gn1; gn2 ]
let all = defaults @ [ dp_original; gn1_printed; nec ]

let of_name name =
  let target = String.lowercase_ascii (String.trim name) in
  match List.find_opt (fun a -> String.lowercase_ascii a.name = target) all with
  | Some a -> Ok a
  | None ->
    Error
      (Printf.sprintf "unknown analyzer %S (use %s)" name
         (String.concat ", " (List.map (fun a -> a.name) all)))

let of_names names =
  let parts =
    String.split_on_char ',' names |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if parts = [] then Error "no analyzer named"
  else
    List.fold_left
      (fun acc part ->
        match (acc, of_name part) with
        | Error _, _ -> acc
        | Ok _, Error e -> Error e
        | Ok l, Ok a -> Ok (l @ [ a ]))
      (Ok []) parts

let accepts a ~fpga_area ts = Verdict.accepted (a.decide ~fpga_area ts)
