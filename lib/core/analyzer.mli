(** First-class schedulability analyzers and their registry.

    Everything that consumes an analyzer — [redf analyze], the
    acceptance-ratio sweeps, the soundness audit, the analysis server —
    routes through this one type instead of threading bare
    [fpga_area -> taskset -> Verdict.t] functions around, so a new test
    is added in exactly one place and every front end (and the verdict
    cache, which keys on [name]/[version]) picks it up.

    [version] identifies the decision procedure, not the code revision:
    it must be bumped whenever the analyzer could return a different
    verdict for some input (e.g. a corrected bound), because cached
    verdicts are shared across processes lifetimes keyed by it. *)

type t = {
  name : string;  (** stable identifier, also the verdict's [test_name] *)
  cite : string;  (** where the test comes from (paper, theorem) *)
  version : string;  (** decision-procedure version; part of cache keys *)
  decide : fpga_area:int -> Model.Taskset.t -> Verdict.t;
  decide_all : fpga_area:int -> Model.Taskset.t array -> Verdict.t array;
      (** Batch entry point, the preferred way to decide many tasksets:
          one verdict per taskset, in order, with element [i]
          byte-identical to [decide ~fpga_area tss.(i)] (QCheck-pinned
          in test_columns.ml).  Built-in analyzers override it with a
          columnar fast path that amortizes per-taskset setup; {!make}
          derives a [decide] map for the rest.  The byte-identity
          contract means a differing batch path is a [version] bump,
          exactly like a differing [decide]. *)
}

val make :
  ?decide_all:(fpga_area:int -> Model.Taskset.t array -> Verdict.t array) ->
  name:string ->
  cite:string ->
  version:string ->
  (fpga_area:int -> Model.Taskset.t -> Verdict.t) ->
  t
(** The only way third-party code should build an analyzer: [decide_all]
    defaults to mapping the single-taskset [decide], so registrants get
    the batch API for free and stay source-compatible if the record
    grows again. *)

val dp : t
(** Theorem 1 (Danne & Platzner's bound, integer-area corrected). *)

val dp_original : t
(** Danne & Platzner's uncorrected bound, kept as a baseline. *)

val gn1 : t
(** Theorem 2 for EDF-NF (strict-inequality reading, see DESIGN.md). *)

val gn1_printed : t
(** Theorem 2 exactly as printed ([A(H) - A_k] constant). *)

val gn2 : t
(** Theorem 3 for EDF-FkF (typo-corrected, see DESIGN.md). *)

val nec : t
(** The necessary feasibility conditions ({!Feasibility}): ACCEPT means
    "not provably infeasible" — an upper bound on true schedulability,
    not a sufficient test. *)

val defaults : t list
(** [[dp; gn1; gn2]] — the paper's three sufficient tests. *)

val all : unit -> t list
(** Every known analyzer: the builtins above ([defaults] first), then
    whatever higher layers have {!register}ed so far (e.g. the exact
    oracle and the approximate demand test from [lib/exact], which core
    cannot depend on). *)

val register : t -> unit
(** Append an analyzer to the registry.  Idempotent per (case-folded)
    [name]: a name that is already known — builtin or registered — is
    kept, not replaced, so registration hooks can run repeatedly.
    Domain-safe. *)

val register_parser :
  syntax:string -> (string -> (t, string) result option) -> unit
(** Register a resolver for parameterized analyzer names that cannot be
    enumerated (e.g. ["approx[EPS]"]).  The parser receives the
    trimmed, lower-cased name and returns [None] when the name is not
    its shape, [Some (Ok a)] on success, and [Some (Error msg)] for a
    malformed parameter (e.g. a non-positive ε).  [syntax] is the
    human-readable form listed by {!known_names}; registration is
    idempotent per [syntax]. *)

val known_names : unit -> string list
(** Every name {!of_name} accepts: registry entries, then parser
    syntaxes — the single source for [--analyzer] help and errors. *)

val of_name : string -> (t, string) result
(** Case-insensitive lookup by [name], falling through to the
    registered parsers for parameterized names; the error lists
    {!known_names}. *)

val of_names : string -> (t list, string) result
(** Comma-separated list of names ("dp,gn2"); empty input is an error. *)

val accepts : t -> fpga_area:int -> Model.Taskset.t -> bool
