type t =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          go v)
        vs;
      Buffer.add_char buf ']'
    | Obj fields ->
      let fields = List.sort (fun (a, _) (b, _) -> String.compare a b) fields in
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          go v)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* --- parsing --- *)

exception Fail of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then incr pos else fail (Printf.sprintf "expected %C" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      incr pos;
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= n then fail "bad escape";
        let e = s.[!pos] in
        incr pos;
        (match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           if !pos + 4 > n then fail "bad \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
            | Some _ | None -> fail "unsupported \\u escape (ASCII only)")
         | _ -> fail "unknown escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> String (parse_string ())
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            items (v :: acc)
          | Some ']' ->
            incr pos;
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | Some 't' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "true" then (pos := !pos + 4; Bool true)
      else fail "bad literal"
    | Some 'f' ->
      if !pos + 5 <= n && String.sub s !pos 5 = "false" then (pos := !pos + 5; Bool false)
      else fail "bad literal"
    | Some 'n' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "null" then (pos := !pos + 4; Null)
      else fail "bad literal"
    | Some ('-' | '0' .. '9') ->
      let start = !pos in
      if peek () = Some '-' then incr pos;
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        incr pos
      done;
      (match peek () with
       | Some ('.' | 'e' | 'E') -> fail "non-integer numbers are not part of the schema"
       | _ -> ());
      (match int_of_string_opt (String.sub s start (!pos - start)) with
       | Some i -> Int i
       | None -> fail "bad integer")
    | _ -> fail "expected a value"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "at offset %d: %s" at msg)

(* --- accessors --- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_int ~ctx = function
  | Int i -> Ok i
  | _ -> Error (ctx ^ ": expected an integer")

let to_str ~ctx = function
  | String s -> Ok s
  | _ -> Error (ctx ^ ": expected a string")

let to_list ~ctx = function
  | List vs -> Ok vs
  | _ -> Error (ctx ^ ": expected an array")
