type task_q = { index : int; area : int; area_q : Rat.t; c : Rat.t; d : Rat.t; t : Rat.t }

let of_task index (task : Model.Task.t) =
  {
    index;
    area = task.area;
    area_q = Rat.of_int task.area;
    c = Model.Time.to_rat task.exec;
    d = Model.Time.to_rat task.deadline;
    t = Model.Time.to_rat task.period;
  }

let of_taskset ts = Array.of_list (List.mapi of_task (Model.Taskset.to_list ts))
let time_utilization q = Rat.div q.c q.t
let system_utilization q = Rat.mul (time_utilization q) q.area_q
let density q = Rat.div q.c q.d
let amax qs = Array.fold_left (fun acc q -> max acc q.area) 0 qs
let amin qs = Array.fold_left (fun acc q -> min acc q.area) max_int qs
let total_ut qs = Array.fold_left (fun acc q -> Rat.add acc (time_utilization q)) Rat.zero qs
let total_us qs = Array.fold_left (fun acc q -> Rat.add acc (system_utilization q)) Rat.zero qs

(* --- columnar view --- *)

module Cols = struct
  type t = {
    n : int;
    area : int array;
    area_q : Rat.t array;
    c : Rat.t array;
    d : Rat.t array;
    t : Rat.t array;
    u : Rat.t array;
    dens : Rat.t array;
    amax : int;
    amin : int;
  }

  let of_columns (cols : Model.Taskset.Columns.t) =
    let n = cols.Model.Taskset.Columns.n in
    let rat_of_ticks x = Model.Time.to_rat (Model.Time.of_ticks x) in
    let area = cols.Model.Taskset.Columns.area in
    let c = Array.map rat_of_ticks cols.Model.Taskset.Columns.exec in
    let d = Array.map rat_of_ticks cols.Model.Taskset.Columns.deadline in
    let t = Array.map rat_of_ticks cols.Model.Taskset.Columns.period in
    {
      n;
      area;
      area_q = Array.map Rat.of_int area;
      c;
      d;
      t;
      u = Array.init n (fun i -> Rat.div c.(i) t.(i));
      dens = Array.init n (fun i -> Rat.div c.(i) d.(i));
      amax = Array.fold_left max 0 area;
      amin = Array.fold_left min max_int area;
    }

  let of_taskset ts = of_columns (Model.Taskset.Columns.of_taskset ts)

  (* same op sequence as {!total_us} on the record path, so the sum is
     the identical normalized rational *)
  let total_us p =
    let acc = ref Rat.zero in
    for i = 0 to p.n - 1 do
      acc := Rat.add !acc (Rat.mul p.u.(i) p.area_q.(i))
    done;
    !acc
end
