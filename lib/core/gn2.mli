(** The GN2 test — Theorem 3, for EDF-FkF (hence also sound for EDF-NF).

    FPGA generalisation of Baker's BAK2, combining the per-window
    interference analysis with busy-interval (problem-window) extension.
    For every task [tau_k] the test searches a constant
    [lambda >= C_k/T_k]; with [lambda_k = lambda * max(1, T_k/D_k)],
    [Abnd = A(H) - Amax + 1] and the per-task work-rate bound

    {v beta^lambda_k(i) =
         max(C_i/T_i, C_i/T_i (1 - D_i/D_k) + C_i/D_k)   if C_i/T_i <= lambda
         C_i/T_i                                          if C_i/T_i > lambda and lambda >= C_i/D_i
         C_i/T_i + (C_i - lambda D_i)/D_k                 if C_i/T_i > lambda and lambda <  C_i/D_i v}

    the taskset is accepted iff for every [k] some candidate [lambda]
    satisfies

    {v 1)  sum_i A_i min(beta^lambda_k(i), 1 - lambda_k) <  Abnd (1 - lambda_k)
       2)  sum_i A_i min(beta^lambda_k(i), 1) < (Abnd - Amin)(1 - lambda_k) + Amin v}

    Only the discontinuity points of [beta] need be tried
    ([lambda = C_i/T_i], and [C_i/D_i] when [D_i > T_i]), giving the
    paper's O(N^3) complexity.

    Two typos in the published statement are corrected here (see
    DESIGN.md §2): the middle [beta] case prints [C_k/T_k] for [C_i/T_i],
    and condition 2 prints [<=] although only the strict form reproduces
    the paper's own Table 1 decision. *)

val decide : fpga_area:int -> Model.Taskset.t -> Verdict.t
val accepts : fpga_area:int -> Model.Taskset.t -> bool

val decide_all : fpga_area:int -> Model.Taskset.t array -> Verdict.t array
(** One verdict per taskset, in order; element [i] is byte-identical to
    [decide ~fpga_area tss.(i)]. *)

val decide_cols : fpga_area:int -> Params.Cols.t -> Verdict.t
(** The columnar kernel behind {!decide}: beta rewritten as the hinge
    [max(K_i, A_i - B_i lambda)], both condition sums maintained as
    running linear coefficients over an event sweep, and one globally
    sorted candidate array sliced per task — O(N^2 log N) per taskset
    against the reference's O(N^3), with identical verdict bytes. *)

val decide_reference : fpga_area:int -> Model.Taskset.t -> Verdict.t
(** The pre-columnar record-path implementation (one O(N) beta fold per
    candidate), kept so the test suite can pin [decide ≡
    decide_reference] byte-for-byte. *)

val decide_exhaustive : fpga_area:int -> Model.Taskset.t -> Verdict.t
(** {!decide_reference} without the early exit: every candidate of every
    task is evaluated before deciding.  Verdicts are byte-identical to
    {!decide}; only the [core.gn2.lambda_evals] counter differs, which
    makes the pruning observable (and testable). *)

val lambda_candidates : Model.Taskset.t -> k:int -> Rat.t list
(** The candidate values tried for task [k] (0-based): exactly the
    discontinuity points of [beta] named by the paper ([C_i/T_i] for all
    [i], plus [C_i/D_i] when [D_i > T_i]) that lie within
    [\[C_k/T_k, min(1, D_k/T_k)\]], deduplicated and sorted.  No other
    points are added: at [lambda_k = 1], for instance, condition 2
    degenerates and would wrongly accept the paper's Table 1. *)

val beta_lambda : Model.Taskset.t -> k:int -> i:int -> lambda:Rat.t -> Rat.t
(** [beta^lambda_k(i)]; [i = k] is allowed (the Theorem-3 sums range over
    all tasks). *)

type lambda_eval = {
  lambda : Rat.t;
  lambda_k : Rat.t;
  cond1_lhs : Rat.t;
  cond1_rhs : Rat.t;
  cond1 : bool;
  cond2_lhs : Rat.t;
  cond2_rhs : Rat.t;
  cond2 : bool;
}

val evaluate_lambda : fpga_area:int -> Model.Taskset.t -> k:int -> lambda:Rat.t -> lambda_eval
(** Both Theorem-3 conditions for one candidate, with exact sides. *)
