type task_check = { task_index : int; satisfied : bool; lhs : Rat.t; rhs : Rat.t; note : string }
type t = { test_name : string; accepted : bool; checks : task_check list }

let accepted t = t.accepted
let make ~test_name ~checks = { test_name; accepted = List.for_all (fun c -> c.satisfied) checks; checks }

let reject_all_n ~test_name ~note n =
  let checks =
    List.init n (fun i -> { task_index = i; satisfied = false; lhs = Rat.zero; rhs = Rat.zero; note })
  in
  { test_name; accepted = false; checks }

let reject_all ~test_name ~note ts = reject_all_n ~test_name ~note (Model.Taskset.size ts)

let failing_tasks t =
  List.filter_map (fun c -> if c.satisfied then None else Some c.task_index) t.checks

let schema_version = 1

let check_to_json c =
  Json.Obj
    ([
       ("task", Json.Int (c.task_index + 1));
       ("satisfied", Json.Bool c.satisfied);
       ("lhs", Json.String (Rat.to_string c.lhs));
       ("rhs", Json.String (Rat.to_string c.rhs));
     ]
    @ if c.note = "" then [] else [ ("note", Json.String c.note) ])

let to_json t =
  Json.Obj
    [
      ("analyzer", Json.String t.test_name);
      ("accepted", Json.Bool t.accepted);
      ("checks", Json.List (List.map check_to_json t.checks));
    ]

let pp fmt t =
  Format.fprintf fmt "@[<v>%s: %s@," t.test_name (if t.accepted then "ACCEPT" else "REJECT");
  List.iter
    (fun c ->
      Format.fprintf fmt "  k=%d %s lhs=%a (%a) rhs=%a (%a)%s@," (c.task_index + 1)
        (if c.satisfied then "ok  " else "FAIL")
        Rat.pp c.lhs Rat.pp_approx c.lhs Rat.pp c.rhs Rat.pp_approx c.rhs
        (if c.note = "" then "" else " [" ^ c.note ^ "]"))
    t.checks;
  Format.fprintf fmt "@]"
