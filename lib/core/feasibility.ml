let exclusive ~fpga_area (a : Model.Task.t) (b : Model.Task.t) = a.area + b.area > fpga_area

(* utilization C/T: the long-run fraction of time the task must hold the
   device under any schedule.  Density C/min(D,T) would be wrong here —
   it overestimates long-run demand for constrained deadlines, and a
   necessary condition must never overestimate. *)
let long_run_demand (task : Model.Task.t) =
  Rat.div (Model.Time.to_rat task.exec) (Model.Time.to_rat task.period)

let exclusion_cliques ~fpga_area ts =
  let tasks = Model.Taskset.to_array ts in
  let n = Array.length tasks in
  let excl i j = exclusive ~fpga_area tasks.(i) tasks.(j) in
  (* greedy: grow a clique from each seed in decreasing-area order *)
  let order =
    List.sort (fun i j -> compare tasks.(j).Model.Task.area tasks.(i).Model.Task.area) (List.init n Fun.id)
  in
  let cliques = ref [] in
  List.iter
    (fun seed ->
      let clique = ref [ seed ] in
      List.iter
        (fun cand -> if cand <> seed && List.for_all (excl cand) !clique then clique := cand :: !clique)
        order;
      let sorted = List.sort compare !clique in
      if List.length sorted > 1 && not (List.mem sorted !cliques) then cliques := sorted :: !cliques)
    order;
  List.rev !cliques

type violation =
  | Exec_exceeds_window of int
  | Device_overloaded of { us : Rat.t }
  | Clique_overloaded of { tasks : int list; load : Rat.t }

let check ~fpga_area ts =
  let tasks = Model.Taskset.to_array ts in
  let violations = ref [] in
  Array.iteri
    (fun i (t : Model.Task.t) ->
      let window = Model.Time.min t.deadline t.period in
      if Model.Time.(t.exec > window) then violations := Exec_exceeds_window i :: !violations)
    tasks;
  let us = Model.Taskset.system_utilization ts in
  if Rat.compare us (Rat.of_int fpga_area) > 0 then
    violations := Device_overloaded { us } :: !violations;
  List.iter
    (fun clique ->
      let load = Rat.sum (List.map (fun i -> long_run_demand tasks.(i)) clique) in
      if Rat.compare load Rat.one > 0 then
        violations := Clique_overloaded { tasks = clique; load } :: !violations)
    (exclusion_cliques ~fpga_area ts);
  List.rev !violations

let feasible_maybe ~fpga_area ts =
  match check ~fpga_area ts with [] -> true | _ :: _ -> false

let pp_violation fmt = function
  | Exec_exceeds_window i -> Format.fprintf fmt "task %d needs C > min(D,T)" (i + 1)
  | Device_overloaded { us } ->
    Format.fprintf fmt "system utilization %a exceeds the device area" Rat.pp_approx us
  | Clique_overloaded { tasks; load } ->
    Format.fprintf fmt "mutually-exclusive tasks {%s} demand %a > 1 of a serial resource"
      (String.concat "," (List.map (fun i -> string_of_int (i + 1)) tasks))
      Rat.pp_approx load
