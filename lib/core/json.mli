(** Minimal JSON values for the machine-readable request/response schema.

    The analysis service ([Server]) and the CLI's [--format json] share
    one wire format; this module is its common vocabulary: a small value
    type, a canonical printer, and a parser for the subset the schema
    uses (null, booleans, exact integers, strings, arrays, objects —
    no floats: every numeric quantity in the schema is either an
    integer or an exact decimal/rational carried as a string).

    Canonical form: {!to_string} emits object keys sorted by name with
    no insignificant whitespace, so two semantically equal values have
    equal bytes and snapshots can be compared with [cmp].  {!of_string}
    accepts arbitrary key order and whitespace. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list  (** printed key-sorted; parsed in input order *)

val to_string : t -> string
(** Canonical, single-line: keys sorted, separators [","] / [":"]. *)

val of_string : string -> (t, string) result
(** Parse one JSON value (the whole string).  Number literals with a
    fraction or exponent are rejected — the schema never emits them —
    as is anything after the value.  Errors carry a character offset. *)

(* Accessors for decoding: each returns [Error] naming the field and
   the expected shape, so protocol errors are self-explanatory. *)

val member : string -> t -> t option
(** [member k (Obj ...)] — [None] when absent or not an object. *)

val to_int : ctx:string -> t -> (int, string) result
val to_str : ctx:string -> t -> (string, string) result
val to_list : ctx:string -> t -> (t list, string) result
