module Time = Model.Time

(* All computation is on integer ticks; the only rational step is the
   Baruah horizon bound, which is then rounded up to a tick. *)

let demand ts ~at =
  let t = Time.ticks at in
  let total =
    List.fold_left
      (fun acc (task : Model.Task.t) ->
        let d = Time.ticks task.deadline and p = Time.ticks task.period in
        let c = Time.ticks task.exec in
        let jobs = if t < d then 0 else ((t - d) / p) + 1 in
        acc + (jobs * c))
      0 (Model.Taskset.to_list ts)
  in
  Time.of_ticks total

type result =
  | Schedulable
  | Overloaded
  | Demand_exceeds of { at : Time.t; demand : Time.t }
  | Horizon_truncated

let default_cap = Time.of_units 10_000

(* S/(1-UT) with S = sum C_i * max(0, T_i - D_i) / T_i, in ticks,
   rounded up; None when UT >= 1 *)
let baruah_bound ts =
  let ut = Model.Taskset.time_utilization ts in
  if Rat.compare ut Rat.one >= 0 then None
  else begin
    let s =
      Rat.sum
        (List.map
           (fun (task : Model.Task.t) ->
             let slack_q =
               Rat.max Rat.zero (Rat.sub (Time.to_rat task.period) (Time.to_rat task.deadline))
             in
             Rat.div (Rat.mul (Time.to_rat task.exec) slack_q) (Time.to_rat task.period))
           (Model.Taskset.to_list ts))
    in
    let bound_units = Rat.div s (Rat.sub Rat.one ut) in
    let ticks = Rat.ceil (Rat.mul bound_units (Rat.of_int Time.scale)) in
    Some (Time.of_ticks (max 0 (Bignum.to_int_exn ticks)))
  end

(* exact horizon: min of the valid bounds; [None] when no finite valid
   bound exists below the cap *)
let exact_horizon ts ~cap =
  let dmax =
    List.fold_left
      (fun acc (task : Model.Task.t) -> Time.max acc task.deadline)
      Time.zero (Model.Taskset.to_list ts)
  in
  let candidates = ref [] in
  (match baruah_bound ts with
   | Some b -> candidates := Time.max b dmax :: !candidates
   | None -> ());
  (match Model.Taskset.hyperperiod ~cap ts with
   | Model.Taskset.Finite h -> candidates := Time.add h dmax :: !candidates
   | Model.Taskset.Exceeds_cap -> ());
  match !candidates with [] -> None | l -> Some (List.fold_left Time.min (List.hd l) l)

let check_points ?(horizon_cap = default_cap) ts =
  let horizon =
    match exact_horizon ts ~cap:horizon_cap with
    | Some h -> Time.min h horizon_cap
    | None -> horizon_cap
  in
  let points = ref [] in
  List.iter
    (fun (task : Model.Task.t) ->
      let d = Time.ticks task.deadline and p = Time.ticks task.period in
      let t = ref d in
      while !t <= Time.ticks horizon do
        points := !t :: !points;
        t := !t + p
      done)
    (Model.Taskset.to_list ts);
  List.sort_uniq Int.compare !points |> List.map Time.of_ticks

let uniprocessor_edf ?(horizon_cap = default_cap) ts =
  let ut = Model.Taskset.time_utilization ts in
  if Rat.compare ut Rat.one > 0 then Overloaded
  else begin
    let violation =
      List.find_map
        (fun at ->
          let dem = demand ts ~at in
          if Time.(dem > at) then Some (Demand_exceeds { at; demand = dem }) else None)
        (check_points ~horizon_cap ts)
    in
    match violation with
    | Some v -> v
    | None -> (
      match exact_horizon ts ~cap:horizon_cap with
      | Some h when Time.(h <= horizon_cap) -> Schedulable
      | _ -> Horizon_truncated)
  end

let schedulable ?horizon_cap ts =
  match uniprocessor_edf ?horizon_cap ts with
  | Schedulable -> true
  | Overloaded | Demand_exceeds _ | Horizon_truncated -> false

let pp_result fmt = function
  | Schedulable -> Format.pp_print_string fmt "schedulable"
  | Overloaded -> Format.pp_print_string fmt "overloaded (UT > 1)"
  | Demand_exceeds { at; demand } ->
    Format.fprintf fmt "demand %a exceeds %a" Time.pp demand Time.pp at
  | Horizon_truncated -> Format.pp_print_string fmt "no violation up to the horizon cap (inexact)"
