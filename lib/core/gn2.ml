(* beta^lambda_k(i) as in Lemma 7, with the paper's middle-case typo
   (C_k/T_k) corrected to C_i/T_i; see DESIGN.md section 2. *)
let beta_lambda_q qs ~k ~i ~lambda =
  let qi = qs.(i) and qk = qs.(k) in
  let ui = Params.time_utilization qi in
  let dens_i = Params.density qi in
  let light = Rat.compare ui lambda <= 0 in
  let finishes = Rat.compare lambda dens_i >= 0 in
  let open Rat.Infix in
  if light then
    Rat.max ui ((ui * (Rat.one - (qi.Params.d / qk.Params.d))) + (qi.Params.c / qk.Params.d))
  else if finishes then ui
  else ui + ((qi.Params.c - (lambda * qi.Params.d)) / qk.Params.d)

(* lambda_k = lambda * max(1, T_k/D_k) *)
let lambda_k_of qk lambda =
  Rat.mul lambda (Rat.max Rat.one (Rat.div qk.Params.t qk.Params.d))

(* The only candidates are the discontinuity points of beta named by the
   paper's complexity discussion: lambda = C_i/T_i for every i, plus
   C_i/D_i when D_i > T_i, restricted to lambda >= C_k/T_k (Theorem 3) and
   lambda_k <= 1 (beyond which both conditions are vacuous).  Adding other
   points — e.g. the upper interval end — would change decisions: at
   lambda_k = 1 condition 2 degenerates to [sum < Amin] and would wrongly
   accept the paper's Table 1. *)
let lambda_candidates_q qs ~k =
  let qk = qs.(k) in
  let lo = Params.time_utilization qk in
  let hi = Rat.min Rat.one (Rat.div qk.Params.d qk.Params.t) in
  let discontinuities =
    Array.to_list qs
    |> List.concat_map (fun qi ->
           let ui = Params.time_utilization qi in
           if Rat.compare qi.Params.d qi.Params.t > 0 then [ ui; Params.density qi ] else [ ui ])
  in
  let in_range l = Rat.compare l lo >= 0 && Rat.compare l hi <= 0 in
  let all = List.filter in_range discontinuities in
  List.sort_uniq Rat.compare all

type lambda_eval = {
  lambda : Rat.t;
  lambda_k : Rat.t;
  cond1_lhs : Rat.t;
  cond1_rhs : Rat.t;
  cond1 : bool;
  cond2_lhs : Rat.t;
  cond2_rhs : Rat.t;
  cond2 : bool;
}

(* candidates actually evaluated: the observable cost of the O(N^3)
   test (each evaluation is an O(N) beta sweep) *)
let m_lambda_evals = Obs.Counter.make "core.gn2.lambda_evals"

let evaluate_lambda_q ~fpga_area qs ~k ~lambda =
  Obs.Counter.incr m_lambda_evals;
  let qk = qs.(k) in
  let lambda_k = lambda_k_of qk lambda in
  let abnd = Rat.of_int (fpga_area - Params.amax qs + 1) in
  let amin = Rat.of_int (Params.amin qs) in
  let open Rat.Infix in
  let one_minus = Rat.one - lambda_k in
  (* one pass computes both condition sums: beta is the expensive part *)
  let cond1_lhs, cond2_lhs =
    Array.fold_left
      (fun (s1, s2) qi ->
        let b = beta_lambda_q qs ~k ~i:qi.Params.index ~lambda in
        ( s1 + (qi.Params.area_q * Rat.min b one_minus),
          s2 + (qi.Params.area_q * Rat.min b Rat.one) ))
      (Rat.zero, Rat.zero) qs
  in
  let cond1_rhs = abnd * one_minus in
  let cond2_rhs = ((abnd - amin) * one_minus) + amin in
  let cond1 = Stdlib.( < ) (Rat.compare cond1_lhs cond1_rhs) 0 in
  let cond2 = Stdlib.( < ) (Rat.compare cond2_lhs cond2_rhs) 0 in
  { lambda; lambda_k; cond1_lhs; cond1_rhs; cond1; cond2_lhs; cond2_rhs; cond2 }

let decide_inner ~fpga_area ts =
  let test_name = "GN2" in
  let qs = Params.of_taskset ts in
  if Params.amax qs > fpga_area then
    Verdict.reject_all ~test_name ~note:"a task is wider than the FPGA" ts
  else begin
    let check k =
      let candidates = lambda_candidates_q qs ~k in
      let rec search best = function
        | [] -> (
          (* rejected: report the evaluation that came closest on cond 2 *)
          match best with
          | Some ev ->
            {
              Verdict.task_index = k;
              satisfied = false;
              lhs = ev.cond2_lhs;
              rhs = ev.cond2_rhs;
              note = Format.asprintf "no lambda works; closest lambda=%a" Rat.pp ev.lambda;
            }
          | None ->
            {
              Verdict.task_index = k;
              satisfied = false;
              lhs = Rat.zero;
              rhs = Rat.zero;
              note = "no lambda candidate in range";
            })
        | lambda :: rest ->
          let ev = evaluate_lambda_q ~fpga_area qs ~k ~lambda in
          if ev.cond1 then
            {
              Verdict.task_index = k;
              satisfied = true;
              lhs = ev.cond1_lhs;
              rhs = ev.cond1_rhs;
              note = Format.asprintf "condition 1 at lambda=%a" Rat.pp lambda;
            }
          else if ev.cond2 then
            {
              Verdict.task_index = k;
              satisfied = true;
              lhs = ev.cond2_lhs;
              rhs = ev.cond2_rhs;
              note = Format.asprintf "condition 2 at lambda=%a" Rat.pp lambda;
            }
          else begin
            let better =
              match best with
              | None -> true
              | Some b ->
                Rat.compare (Rat.sub ev.cond2_lhs ev.cond2_rhs) (Rat.sub b.cond2_lhs b.cond2_rhs) < 0
            in
            search (if better then Some ev else best) rest
          end
      in
      search None candidates
    in
    Verdict.make ~test_name ~checks:(List.init (Array.length qs) check)
  end

let decide ~fpga_area ts =
  Obs.Span.with_ ~name:"core.gn2.decide" (fun () -> decide_inner ~fpga_area ts)

let accepts ~fpga_area ts = Verdict.accepted (decide ~fpga_area ts)

let check_k qs k = if k < 0 || k >= Array.length qs then invalid_arg "Gn2: task index out of range"

let lambda_candidates ts ~k =
  let qs = Params.of_taskset ts in
  check_k qs k;
  lambda_candidates_q qs ~k

let beta_lambda ts ~k ~i ~lambda =
  let qs = Params.of_taskset ts in
  check_k qs k;
  check_k qs i;
  beta_lambda_q qs ~k ~i ~lambda

let evaluate_lambda ~fpga_area ts ~k ~lambda =
  let qs = Params.of_taskset ts in
  check_k qs k;
  evaluate_lambda_q ~fpga_area qs ~k ~lambda
