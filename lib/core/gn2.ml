(* beta^lambda_k(i) as in Lemma 7, with the paper's middle-case typo
   (C_k/T_k) corrected to C_i/T_i; see DESIGN.md section 2. *)
let beta_lambda_q qs ~k ~i ~lambda =
  let qi = qs.(i) and qk = qs.(k) in
  let ui = Params.time_utilization qi in
  let dens_i = Params.density qi in
  let light = Rat.compare ui lambda <= 0 in
  let finishes = Rat.compare lambda dens_i >= 0 in
  let open Rat.Infix in
  if light then
    Rat.max ui ((ui * (Rat.one - (qi.Params.d / qk.Params.d))) + (qi.Params.c / qk.Params.d))
  else if finishes then ui
  else ui + ((qi.Params.c - (lambda * qi.Params.d)) / qk.Params.d)

(* lambda_k = lambda * max(1, T_k/D_k) *)
let lambda_k_of qk lambda =
  Rat.mul lambda (Rat.max Rat.one (Rat.div qk.Params.t qk.Params.d))

(* The only candidates are the discontinuity points of beta named by the
   paper's complexity discussion: lambda = C_i/T_i for every i, plus
   C_i/D_i when D_i > T_i, restricted to lambda >= C_k/T_k (Theorem 3) and
   lambda_k <= 1 (beyond which both conditions are vacuous).  Adding other
   points — e.g. the upper interval end — would change decisions: at
   lambda_k = 1 condition 2 degenerates to [sum < Amin] and would wrongly
   accept the paper's Table 1. *)
let lambda_candidates_q qs ~k =
  let qk = qs.(k) in
  let lo = Params.time_utilization qk in
  let hi = Rat.min Rat.one (Rat.div qk.Params.d qk.Params.t) in
  let discontinuities =
    Array.to_list qs
    |> List.concat_map (fun qi ->
           let ui = Params.time_utilization qi in
           if Rat.compare qi.Params.d qi.Params.t > 0 then [ ui; Params.density qi ] else [ ui ])
  in
  let in_range l = Rat.compare l lo >= 0 && Rat.compare l hi <= 0 in
  let all = List.filter in_range discontinuities in
  List.sort_uniq Rat.compare all

type lambda_eval = {
  lambda : Rat.t;
  lambda_k : Rat.t;
  cond1_lhs : Rat.t;
  cond1_rhs : Rat.t;
  cond1 : bool;
  cond2_lhs : Rat.t;
  cond2_rhs : Rat.t;
  cond2 : bool;
}

(* candidates actually evaluated: the observable cost of the O(N^3)
   test (each evaluation is an O(N) beta sweep) *)
let m_lambda_evals = Obs.Counter.make "core.gn2.lambda_evals"

let evaluate_lambda_q ~fpga_area qs ~k ~lambda =
  Obs.Counter.incr m_lambda_evals;
  let qk = qs.(k) in
  let lambda_k = lambda_k_of qk lambda in
  let abnd = Rat.of_int (fpga_area - Params.amax qs + 1) in
  let amin = Rat.of_int (Params.amin qs) in
  let open Rat.Infix in
  let one_minus = Rat.one - lambda_k in
  (* one pass computes both condition sums: beta is the expensive part *)
  let cond1_lhs, cond2_lhs =
    Array.fold_left
      (fun (s1, s2) qi ->
        let b = beta_lambda_q qs ~k ~i:qi.Params.index ~lambda in
        ( s1 + (qi.Params.area_q * Rat.min b one_minus),
          s2 + (qi.Params.area_q * Rat.min b Rat.one) ))
      (Rat.zero, Rat.zero) qs
  in
  let cond1_rhs = abnd * one_minus in
  let cond2_rhs = ((abnd - amin) * one_minus) + amin in
  let cond1 = Stdlib.( < ) (Rat.compare cond1_lhs cond1_rhs) 0 in
  let cond2 = Stdlib.( < ) (Rat.compare cond2_lhs cond2_rhs) 0 in
  { lambda; lambda_k; cond1_lhs; cond1_rhs; cond1; cond2_lhs; cond2_rhs; cond2 }

let wider_note = "a task is wider than the FPGA"

(* The per-task check records are built by these four constructors so the
   reference search, the exhaustive variant and the columnar sweep below
   cannot drift apart in their printed bytes. *)
let check_cond1 ~k ~lambda ~lhs ~rhs =
  {
    Verdict.task_index = k;
    satisfied = true;
    lhs;
    rhs;
    note = Format.asprintf "condition 1 at lambda=%a" Rat.pp lambda;
  }

let check_cond2 ~k ~lambda ~lhs ~rhs =
  {
    Verdict.task_index = k;
    satisfied = true;
    lhs;
    rhs;
    note = Format.asprintf "condition 2 at lambda=%a" Rat.pp lambda;
  }

let check_closest ~k ~lambda ~lhs ~rhs =
  {
    Verdict.task_index = k;
    satisfied = false;
    lhs;
    rhs;
    note = Format.asprintf "no lambda works; closest lambda=%a" Rat.pp lambda;
  }

let check_no_candidate ~k =
  {
    Verdict.task_index = k;
    satisfied = false;
    lhs = Rat.zero;
    rhs = Rat.zero;
    note = "no lambda candidate in range";
  }

(* record-path implementation, kept as the byte-identity reference for
   the columnar sweep (test_columns.ml) *)
let decide_reference ~fpga_area ts =
  let test_name = "GN2" in
  let qs = Params.of_taskset ts in
  if Params.amax qs > fpga_area then Verdict.reject_all ~test_name ~note:wider_note ts
  else begin
    let check k =
      let candidates = lambda_candidates_q qs ~k in
      let rec search best = function
        | [] -> (
          (* rejected: report the evaluation that came closest on cond 2 *)
          match best with
          | Some ev -> check_closest ~k ~lambda:ev.lambda ~lhs:ev.cond2_lhs ~rhs:ev.cond2_rhs
          | None -> check_no_candidate ~k)
        | lambda :: rest ->
          let ev = evaluate_lambda_q ~fpga_area qs ~k ~lambda in
          if ev.cond1 then check_cond1 ~k ~lambda ~lhs:ev.cond1_lhs ~rhs:ev.cond1_rhs
          else if ev.cond2 then check_cond2 ~k ~lambda ~lhs:ev.cond2_lhs ~rhs:ev.cond2_rhs
          else begin
            let better =
              match best with
              | None -> true
              | Some b ->
                Rat.compare (Rat.sub ev.cond2_lhs ev.cond2_rhs) (Rat.sub b.cond2_lhs b.cond2_rhs) < 0
            in
            search (if better then Some ev else best) rest
          end
      in
      search None candidates
    in
    Verdict.make ~test_name ~checks:(List.init (Array.length qs) check)
  end

(* Ablation twin of decide_reference that evaluates *every* candidate
   before deciding.  Verdicts (accept/reject, sides, notes) are
   byte-identical — only the core.gn2.lambda_evals counter differs,
   which is what makes the early-exit pruning observable. *)
let decide_exhaustive ~fpga_area ts =
  let test_name = "GN2" in
  let qs = Params.of_taskset ts in
  if Params.amax qs > fpga_area then Verdict.reject_all ~test_name ~note:wider_note ts
  else begin
    let check k =
      let evs =
        List.map
          (fun lambda -> evaluate_lambda_q ~fpga_area qs ~k ~lambda)
          (lambda_candidates_q qs ~k)
      in
      let rec scan best = function
        | [] -> (
          match best with
          | Some ev -> check_closest ~k ~lambda:ev.lambda ~lhs:ev.cond2_lhs ~rhs:ev.cond2_rhs
          | None -> check_no_candidate ~k)
        | ev :: rest ->
          if ev.cond1 then check_cond1 ~k ~lambda:ev.lambda ~lhs:ev.cond1_lhs ~rhs:ev.cond1_rhs
          else if ev.cond2 then check_cond2 ~k ~lambda:ev.lambda ~lhs:ev.cond2_lhs ~rhs:ev.cond2_rhs
          else begin
            let better =
              match best with
              | None -> true
              | Some b ->
                Rat.compare (Rat.sub ev.cond2_lhs ev.cond2_rhs) (Rat.sub b.cond2_lhs b.cond2_rhs) < 0
            in
            scan (if better then Some ev else best) rest
          end
      in
      scan None evs
    in
    Verdict.make ~test_name ~checks:(List.init (Array.length qs) check)
  end

(* --- columnar sweep ---------------------------------------------------

   Lemma 7's beta is, for fixed k, a hinge in lambda:

     beta_i(lambda) = max(K_i, A_i - B_i lambda)
       A_i = u_i + C_i/D_k      B_i = D_i/D_k
       K_i = u_i + smax_i/D_k   smax_i = max(C_i - u_i D_i, 0)

   (the three printed cases coincide with this: the descending branch
   A_i - B_i lambda is active for lambda <= kink_i and the constant K_i
   beyond, where kink_i = u_i when D_i <= T_i and C_i/D_i otherwise).
   Both condition sums are therefore piecewise-linear in lambda, so per k
   we classify each task's min(...) term once per breakpoint interval,
   turn piece changes into (delta-slope, delta-intercept) events, and
   evaluate every candidate in O(1) from running linear coefficients.
   Together with the single globally-sorted candidate array (built once
   per taskset, sliced per k) this replaces the O(N) beta sweep per
   candidate: O(N^2 log N) per taskset instead of O(N^3).

   Piece classification samples the exact-rational midpoint of each
   subinterval; continuity of min/max of linear functions makes the
   sampled piece valid on the closed subinterval, so candidates sitting
   exactly on a breakpoint get the same value either side.  All
   arithmetic stays in Rat, so every lhs/rhs is value-equal — hence
   byte-identical once printed — to the reference fold above. *)

type pre = {
  p : Params.Cols.t;
  kink : Rat.t array;  (* where beta_i's descending branch meets K_i *)
  smax : Rat.t array;  (* max(C_i - u_i D_i, 0) *)
  cands : Rat.t array;  (* all discontinuity points, sorted, unique *)
}

let precompute (p : Params.Cols.t) =
  let n = p.Params.Cols.n in
  let c = p.Params.Cols.c and d = p.Params.Cols.d and t = p.Params.Cols.t in
  let u = p.Params.Cols.u and dens = p.Params.Cols.dens in
  let kink = Array.init n (fun i -> if Rat.compare d.(i) t.(i) <= 0 then u.(i) else dens.(i)) in
  let smax =
    Array.init n (fun i ->
        if Rat.compare d.(i) t.(i) <= 0 then Rat.sub c.(i) (Rat.mul u.(i) d.(i)) else Rat.zero)
  in
  let disc = ref [] in
  for i = n - 1 downto 0 do
    if Rat.compare d.(i) t.(i) > 0 then disc := dens.(i) :: !disc;
    disc := u.(i) :: !disc
  done;
  let cands = Array.of_list (List.sort_uniq Rat.compare !disc) in
  { p; kink; smax; cands }

type event = { at : Rat.t; dp1 : Rat.t; dq1 : Rat.t; dp2 : Rat.t; dq2 : Rat.t }

let sweep_k ~abnd ~aminq pre k =
  let p = pre.p in
  let n = p.Params.Cols.n in
  let u = p.Params.Cols.u and c = p.Params.Cols.c and d = p.Params.Cols.d in
  let t = p.Params.Cols.t and area_q = p.Params.Cols.area_q in
  let lo = u.(k) in
  let hi = Rat.min Rat.one (Rat.div d.(k) t.(k)) in
  (* candidate slice [first, last] of the global sorted array *)
  let ncand = Array.length pre.cands in
  let first = ref 0 in
  while !first < ncand && Rat.compare pre.cands.(!first) lo < 0 do
    incr first
  done;
  let last = ref (ncand - 1) in
  while !last >= 0 && Rat.compare pre.cands.(!last) hi > 0 do
    decr last
  done;
  if !first > !last then check_no_candidate ~k
  else begin
    let dk = d.(k) in
    let inv_dk = Rat.inv dk in
    let mk = Rat.max Rat.one (Rat.div t.(k) dk) in
    let neg_mk = Rat.neg mk in
    let two = Rat.of_int 2 in
    (* running linear coefficients: on the current piece,
       cond1_lhs = p1 + q1*lambda and cond2_lhs = p2 + q2*lambda *)
    let p1 = ref Rat.zero and q1 = ref Rat.zero in
    let p2 = ref Rat.zero and q2 = ref Rat.zero in
    let events = ref [] in
    for i = 0 to n - 1 do
      let ai = area_q.(i) in
      let a_ = Rat.add u.(i) (Rat.mul c.(i) inv_dk) in
      let b_ = Rat.mul d.(i) inv_dk in
      let neg_b = Rat.neg b_ in
      let k_ = Rat.add u.(i) (Rat.mul pre.smax.(i) inv_dk) in
      let kink = pre.kink.(i) in
      let eval (pp, qq) x = Rat.add pp (Rat.mul qq x) in
      (* active branch of the beta hinge at sample point x *)
      let beta_piece x = if Rat.compare x kink <= 0 then (a_, neg_b) else (k_, Rat.zero) in
      (* term of cond 1: min(beta_i, 1 - mk*lambda) *)
      let classify1 x =
        let g = beta_piece x in
        if Rat.compare (eval g x) (Rat.sub Rat.one (Rat.mul mk x)) <= 0 then g else (Rat.one, neg_mk)
      in
      (* term of cond 2: min(beta_i, 1) *)
      let classify2 x =
        let g = beta_piece x in
        if Rat.compare (eval g x) Rat.one <= 0 then g else (Rat.one, Rat.zero)
      in
      (* candidate breakpoints: the hinge plus each branch's crossing
         with the min partner.  Spurious points (crossings outside the
         active branch) only cost a zero-delta event. *)
      let bps1 =
        let base = [ kink; Rat.div (Rat.sub Rat.one k_) mk ] in
        if Rat.equal b_ mk then base
        else Rat.div (Rat.sub a_ Rat.one) (Rat.sub b_ mk) :: base
      in
      let bps2 = [ kink; Rat.div (Rat.sub a_ Rat.one) b_ ] in
      let add_term ~cond1 classify bps pref qref =
        let pts =
          List.sort_uniq Rat.compare
            (List.filter (fun b -> Rat.compare b lo > 0 && Rat.compare b hi < 0) bps)
        in
        let sample x y = if Rat.equal x y then x else Rat.div (Rat.add x y) two in
        let first_piece = classify (sample lo (match pts with [] -> hi | b :: _ -> b)) in
        pref := Rat.add !pref (Rat.mul ai (fst first_piece));
        qref := Rat.add !qref (Rat.mul ai (snd first_piece));
        let rec go (cp, cq) = function
          | [] -> ()
          | b :: rest ->
            let right = match rest with [] -> hi | r :: _ -> r in
            let np, nq = classify (sample b right) in
            if not (Rat.equal np cp && Rat.equal nq cq) then begin
              let dp = Rat.mul ai (Rat.sub np cp) and dq = Rat.mul ai (Rat.sub nq cq) in
              events :=
                (if cond1 then { at = b; dp1 = dp; dq1 = dq; dp2 = Rat.zero; dq2 = Rat.zero }
                 else { at = b; dp1 = Rat.zero; dq1 = Rat.zero; dp2 = dp; dq2 = dq })
                :: !events
            end;
            go (np, nq) rest
        in
        go first_piece pts
      in
      add_term ~cond1:true classify1 bps1 p1 q1;
      add_term ~cond1:false classify2 bps2 p2 q2
    done;
    let evs = Array.of_list !events in
    Array.sort (fun e1 e2 -> Rat.compare e1.at e2.at) evs;
    let ne = Array.length evs in
    let ei = ref 0 in
    (* best-so-far for the reject note: (lambda, cond2_lhs, cond2_rhs, margin) *)
    let rec search best ci =
      if ci > !last then begin
        match best with
        | Some (lambda, lhs, rhs, _) -> check_closest ~k ~lambda ~lhs ~rhs
        | None -> check_no_candidate ~k (* unreachable: the slice is non-empty *)
      end
      else begin
        let lambda = pre.cands.(ci) in
        while !ei < ne && Rat.compare evs.(!ei).at lambda <= 0 do
          let e = evs.(!ei) in
          p1 := Rat.add !p1 e.dp1;
          q1 := Rat.add !q1 e.dq1;
          p2 := Rat.add !p2 e.dp2;
          q2 := Rat.add !q2 e.dq2;
          incr ei
        done;
        Obs.Counter.incr m_lambda_evals;
        let one_minus = Rat.sub Rat.one (Rat.mul lambda mk) in
        let cond1_lhs = Rat.add !p1 (Rat.mul !q1 lambda) in
        let cond1_rhs = Rat.mul abnd one_minus in
        if Rat.compare cond1_lhs cond1_rhs < 0 then check_cond1 ~k ~lambda ~lhs:cond1_lhs ~rhs:cond1_rhs
        else begin
          let cond2_lhs = Rat.add !p2 (Rat.mul !q2 lambda) in
          let cond2_rhs = Rat.add (Rat.mul (Rat.sub abnd aminq) one_minus) aminq in
          if Rat.compare cond2_lhs cond2_rhs < 0 then
            check_cond2 ~k ~lambda ~lhs:cond2_lhs ~rhs:cond2_rhs
          else begin
            let margin = Rat.sub cond2_lhs cond2_rhs in
            let best =
              match best with
              | Some (_, _, _, bm) when Rat.compare margin bm >= 0 -> best
              | _ -> Some (lambda, cond2_lhs, cond2_rhs, margin)
            in
            search best (ci + 1)
          end
        end
      end
    in
    search None !first
  end

let decide_cols ~fpga_area (p : Params.Cols.t) =
  let test_name = "GN2" in
  if p.Params.Cols.amax > fpga_area then
    Verdict.reject_all_n ~test_name ~note:wider_note p.Params.Cols.n
  else begin
    let pre = precompute p in
    let abnd = Rat.of_int (fpga_area - p.Params.Cols.amax + 1) in
    let aminq = Rat.of_int p.Params.Cols.amin in
    Verdict.make ~test_name ~checks:(List.init p.Params.Cols.n (sweep_k ~abnd ~aminq pre))
  end

let decide ~fpga_area ts =
  Obs.Span.with_ ~name:"core.gn2.decide" (fun () ->
      decide_cols ~fpga_area (Params.Cols.of_taskset ts))

let decide_all ~fpga_area tss =
  Obs.Span.with_ ~name:"core.gn2.decide" (fun () ->
      Array.map (fun ts -> decide_cols ~fpga_area (Params.Cols.of_taskset ts)) tss)

let accepts ~fpga_area ts = Verdict.accepted (decide ~fpga_area ts)

let check_k qs k = if k < 0 || k >= Array.length qs then invalid_arg "Gn2: task index out of range"

let lambda_candidates ts ~k =
  let qs = Params.of_taskset ts in
  check_k qs k;
  lambda_candidates_q qs ~k

let beta_lambda ts ~k ~i ~lambda =
  let qs = Params.of_taskset ts in
  check_k qs k;
  check_k qs i;
  beta_lambda_q qs ~k ~i ~lambda

let evaluate_lambda ~fpga_area ts ~k ~lambda =
  let qs = Params.of_taskset ts in
  check_k qs k;
  evaluate_lambda_q ~fpga_area qs ~k ~lambda
