let applicable ts = Model.Taskset.all_implicit_deadline ts

let wider_note = "a task is wider than the FPGA"

let bound_general ~plus_one ~fpga_area qs k =
  let q = qs.(k) in
  let a = fpga_area - Params.amax qs + if plus_one then 1 else 0 in
  let open Rat.Infix in
  (Rat.of_int a * (Rat.one - Params.time_utilization q)) + Params.system_utilization q

(* record-path implementation, kept as the byte-identity reference for
   the columnar fast path (test_columns.ml) *)
let decide_general ~test_name ~plus_one ~fpga_area ts =
  let qs = Params.of_taskset ts in
  if Params.amax qs > fpga_area then Verdict.reject_all ~test_name ~note:wider_note ts
  else begin
    let us = Params.total_us qs in
    let checks =
      Array.to_list
        (Array.mapi
           (fun k _ ->
             let rhs = bound_general ~plus_one ~fpga_area qs k in
             {
               Verdict.task_index = k;
               satisfied = Rat.compare us rhs <= 0;
               lhs = us;
               rhs;
               note = "US(Gamma) vs (A(H)-Amax" ^ (if plus_one then "+1" else "") ^ ")(1-UT_k)+US_k";
             })
           qs)
    in
    Verdict.make ~test_name ~checks
  end

(* columnar path: the per-task division C_k/T_k and the area scan are
   hoisted into Params.Cols; per task only the bound's two multiplies
   remain.  Same rational op sequence per check, so same bytes. *)
let decide_cols ~test_name ~plus_one ~fpga_area (p : Params.Cols.t) =
  if p.Params.Cols.amax > fpga_area then Verdict.reject_all_n ~test_name ~note:wider_note p.Params.Cols.n
  else begin
    let u = p.Params.Cols.u and area_q = p.Params.Cols.area_q in
    let us = Params.Cols.total_us p in
    let a = Rat.of_int (fpga_area - p.Params.Cols.amax + if plus_one then 1 else 0) in
    let note = "US(Gamma) vs (A(H)-Amax" ^ (if plus_one then "+1" else "") ^ ")(1-UT_k)+US_k" in
    let checks =
      List.init p.Params.Cols.n (fun k ->
          let rhs = Rat.add (Rat.mul a (Rat.sub Rat.one u.(k))) (Rat.mul u.(k) area_q.(k)) in
          { Verdict.task_index = k; satisfied = Rat.compare us rhs <= 0; lhs = us; rhs; note })
    in
    Verdict.make ~test_name ~checks
  end

let decide ~fpga_area ts =
  Obs.Span.with_ ~name:"core.dp.decide" (fun () ->
      decide_cols ~test_name:"DP" ~plus_one:true ~fpga_area (Params.Cols.of_taskset ts))

let decide_all ~fpga_area tss =
  Obs.Span.with_ ~name:"core.dp.decide" (fun () ->
      Array.map
        (fun ts -> decide_cols ~test_name:"DP" ~plus_one:true ~fpga_area (Params.Cols.of_taskset ts))
        tss)

let decide_reference ~fpga_area ts = decide_general ~test_name:"DP" ~plus_one:true ~fpga_area ts
let accepts ~fpga_area ts = Verdict.accepted (decide ~fpga_area ts)

let decide_original ~fpga_area ts =
  decide_cols ~test_name:"DP-original" ~plus_one:false ~fpga_area (Params.Cols.of_taskset ts)

let accepts_original ~fpga_area ts = Verdict.accepted (decide_original ~fpga_area ts)

let bound ~fpga_area ts ~k =
  let qs = Params.of_taskset ts in
  if k < 0 || k >= Array.length qs then invalid_arg "Dp.bound: task index out of range";
  bound_general ~plus_one:true ~fpga_area qs k
