(** Common result shape for schedulability tests.

    Every test in this library is {e sufficient}: [accepted = true]
    guarantees schedulability under the test's scheduling algorithm, while
    [accepted = false] is inconclusive.  The per-task records keep the
    exact rational left/right-hand sides so a rejection can be audited
    against the paper's worked examples. *)

type task_check = {
  task_index : int;  (** the [k] of the per-task condition *)
  satisfied : bool;
  lhs : Rat.t;  (** evaluated left-hand side *)
  rhs : Rat.t;  (** evaluated bound *)
  note : string;  (** human-readable detail (e.g. which lambda succeeded) *)
}

type t = {
  test_name : string;
  accepted : bool;
  checks : task_check list;  (** one per task, in taskset order *)
}

val accepted : t -> bool
val make : test_name:string -> checks:task_check list -> t
(** [accepted] is the conjunction of all per-task [satisfied] flags. *)

val reject_all : test_name:string -> note:string -> Model.Taskset.t -> t
(** A verdict rejecting every task with the same note (used for
    precondition failures such as a task wider than the device). *)

val reject_all_n : test_name:string -> note:string -> int -> t
(** {!reject_all} for callers that only hold the task count (the
    columnar decide paths); identical verdict. *)

val failing_tasks : t -> int list
val pp : Format.formatter -> t -> unit

val schema_version : int
(** Version of the machine-readable verdict/report/diagnostic schema
    shared by [redf analyze --format json], [redf lint --format json]
    and the analysis server; bumped on any incompatible change. *)

val to_json : t -> Json.t
(** [{"analyzer":name,"accepted":bool,"checks":[{"task":k,"satisfied":…,
    "lhs":…,"rhs":…,"note"?:…}]}] with exact rational sides as strings;
    [task] is 1-based like {!pp}.  The analysis server returns exactly
    this object (plus its envelope), so CLI and server output are
    interchangeable. *)
