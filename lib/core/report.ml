type t = {
  fpga_area : int;
  analyzers : Analyzer.t list;
  taskset : Model.Taskset.t;
  verdicts : Verdict.t list;
  time_utilization : Rat.t;
  system_utilization : Rat.t;
}

let run ?(analyzers = Analyzer.defaults) ~fpga_area ts =
  {
    fpga_area;
    analyzers;
    taskset = ts;
    verdicts = List.map (fun (a : Analyzer.t) -> a.Analyzer.decide ~fpga_area ts) analyzers;
    time_utilization = Model.Taskset.time_utilization ts;
    system_utilization = Model.Taskset.system_utilization ts;
  }

let run_all ?(analyzers = Analyzer.defaults) ~fpga_area tss =
  let per_analyzer =
    List.map (fun (a : Analyzer.t) -> a.Analyzer.decide_all ~fpga_area tss) analyzers
  in
  Array.init (Array.length tss) (fun i ->
      {
        fpga_area;
        analyzers;
        taskset = tss.(i);
        verdicts = List.map (fun vs -> vs.(i)) per_analyzer;
        time_utilization = Model.Taskset.time_utilization tss.(i);
        system_utilization = Model.Taskset.system_utilization tss.(i);
      })

let summary_line t =
  String.concat " "
    (List.map
       (fun (v : Verdict.t) ->
         Printf.sprintf "%s:%s" v.Verdict.test_name (if Verdict.accepted v then "ACCEPT" else "REJECT"))
       t.verdicts)

let pp fmt t =
  Format.fprintf fmt "@[<v>FPGA area A(H) = %d@,taskset: %a@,UT = %a (%a)  US = %a (%a)@,"
    t.fpga_area Model.Taskset.pp t.taskset Rat.pp t.time_utilization Rat.pp_approx
    t.time_utilization Rat.pp t.system_utilization Rat.pp_approx t.system_utilization;
  List.iter (fun v -> Format.fprintf fmt "%a@," Verdict.pp v) t.verdicts;
  Format.fprintf fmt "@]"

(* --- machine-readable form --- *)

let task_json (task : Model.Task.t) =
  Json.Obj
    [
      ("name", Json.String task.Model.Task.name);
      ("C", Json.String (Model.Time.to_string task.Model.Task.exec));
      ("D", Json.String (Model.Time.to_string task.Model.Task.deadline));
      ("T", Json.String (Model.Time.to_string task.Model.Task.period));
      ("A", Json.Int task.Model.Task.area);
    ]

let verdict_json (a : Analyzer.t) v =
  match Verdict.to_json v with
  | Json.Obj fields -> Json.Obj (("analyzer_version", Json.String a.Analyzer.version) :: fields)
  | other -> other

let to_json t =
  Json.Obj
    [
      ("schema_version", Json.Int Verdict.schema_version);
      ("kind", Json.String "report");
      ("fpga_area", Json.Int t.fpga_area);
      ("tasks", Json.List (List.map task_json (Model.Taskset.to_list t.taskset)));
      ("time_utilization", Json.String (Rat.to_string t.time_utilization));
      ("system_utilization", Json.String (Rat.to_string t.system_utilization));
      ("verdicts", Json.List (List.map2 verdict_json t.analyzers t.verdicts));
    ]
