(** The DP test — Theorem 1.

    Danne & Platzner's utilization bound for EDF-FkF (hence also valid for
    EDF-NF, which dominates it), restated by Guan et al. with the
    integer-area correction: a taskset [Gamma] is schedulable by EDF-FkF on
    a device with [A(H) >= Amax] columns if for every task [tau_k]

    {v US(Gamma) <= (A(H) - Amax + 1) * (1 - UT(tau_k)) + US(tau_k) v}

    The test is derived for periodic tasks with implicit deadlines
    ([D = T]); {!applicable} reports whether a taskset is in its domain.
    {!decide_original} evaluates Danne & Platzner's uncorrected bound
    (real-valued areas, [A(H) - Amax]), kept as a baseline. *)

val applicable : Model.Taskset.t -> bool
(** All deadlines implicit. *)

val decide : fpga_area:int -> Model.Taskset.t -> Verdict.t
val accepts : fpga_area:int -> Model.Taskset.t -> bool

val decide_all : fpga_area:int -> Model.Taskset.t array -> Verdict.t array
(** One verdict per taskset, in order; element [i] is byte-identical to
    [decide ~fpga_area tss.(i)]. *)

val decide_cols : test_name:string -> plus_one:bool -> fpga_area:int -> Params.Cols.t -> Verdict.t
(** The columnar kernel behind {!decide} (and, with [plus_one:false],
    {!decide_original}). *)

val decide_reference : fpga_area:int -> Model.Taskset.t -> Verdict.t
(** The pre-columnar record-path implementation, kept so the test suite
    can pin [decide ≡ decide_reference] byte-for-byte. *)

val decide_original : fpga_area:int -> Model.Taskset.t -> Verdict.t
(** Danne & Platzner's original bound with [A(H) - Amax] (no [+1]). *)

val accepts_original : fpga_area:int -> Model.Taskset.t -> bool

val bound : fpga_area:int -> Model.Taskset.t -> k:int -> Rat.t
(** The right-hand side for task [k] (0-based), integer-corrected form. *)
