(** Exact-rational views of task parameters, shared by all tests. *)

type task_q = {
  index : int;
  area : int;  (** [A_i], integer columns *)
  area_q : Rat.t;
  c : Rat.t;  (** execution time [C_i] in time units *)
  d : Rat.t;  (** relative deadline [D_i] *)
  t : Rat.t;  (** period [T_i] *)
}

val of_taskset : Model.Taskset.t -> task_q array

(** Columnar twin of [task_q array]: the same exact-rational views, one
    array per parameter, with the per-task divisions ([C_i/T_i],
    [C_i/D_i]) and the area extrema computed once at construction
    instead of once per use.  Built from {!Model.Taskset.Columns}; the
    allocation-light decide paths of {!Dp}/{!Gn1}/{!Gn2} run over this
    and produce verdicts byte-identical to the record path. *)
module Cols : sig
  type t = {
    n : int;
    area : int array;  (** [A_i] *)
    area_q : Rat.t array;
    c : Rat.t array;  (** [C_i] in time units *)
    d : Rat.t array;  (** [D_i] *)
    t : Rat.t array;  (** [T_i] *)
    u : Rat.t array;  (** [C_i / T_i] *)
    dens : Rat.t array;  (** [C_i / D_i] *)
    amax : int;
    amin : int;
  }

  val of_columns : Model.Taskset.Columns.t -> t
  val of_taskset : Model.Taskset.t -> t

  val total_us : t -> Rat.t
  (** [US(Gamma)], summed in index order like the record path. *)
end
val time_utilization : task_q -> Rat.t
val system_utilization : task_q -> Rat.t
val density : task_q -> Rat.t
val amax : task_q array -> int
val amin : task_q array -> int
val total_ut : task_q array -> Rat.t
val total_us : task_q array -> Rat.t
