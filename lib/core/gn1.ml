let wider_note = "a task is wider than the FPGA"

let check_indices qs ~k ~i =
  let n = Array.length qs in
  if k < 0 || k >= n || i < 0 || i >= n then invalid_arg "Gn1: task index out of range";
  if k = i then invalid_arg "Gn1: interference of a task on itself is undefined"

(* N_i = max(0, floor((D_k - D_i)/T_i) + 1)  (Lemma 4) *)
let n_jobs_q qs ~k ~i =
  let qi = qs.(i) and qk = qs.(k) in
  let f = Rat.floor (Rat.div (Rat.sub qk.Params.d qi.Params.d) qi.Params.t) in
  Bignum.max Bignum.zero (Bignum.succ f)

(* beta_i = (N_i C_i + min(C_i, max(D_k - N_i T_i, 0))) / D_i *)
let beta_q qs ~k ~i =
  let qi = qs.(i) and qk = qs.(k) in
  let ni = Rat.of_bignum (n_jobs_q qs ~k ~i) in
  let open Rat.Infix in
  let carry = Rat.min qi.Params.c (Rat.max (qk.Params.d - (ni * qi.Params.t)) Rat.zero) in
  ((ni * qi.Params.c) + carry) / qi.Params.d

(* record-path implementation, kept as the byte-identity reference for
   the columnar fast path (test_columns.ml) *)
let decide_general ~test_name ~lemma3_form ~fpga_area ts =
  let qs = Params.of_taskset ts in
  if Params.amax qs > fpga_area then Verdict.reject_all ~test_name ~note:wider_note ts
  else begin
    let n = Array.length qs in
    let check k =
      let qk = qs.(k) in
      let slack = Rat.sub Rat.one (Params.density qk) in
      if Rat.sign slack < 0 then
        (* C_k > D_k: no schedule can meet the deadline *)
        {
          Verdict.task_index = k;
          satisfied = false;
          lhs = Params.density qk;
          rhs = Rat.one;
          note = "C_k > D_k";
        }
      else begin
        let lhs = ref Rat.zero in
        for i = 0 to n - 1 do
          if i <> k then begin
            let b = beta_q qs ~k ~i in
            lhs := Rat.add !lhs (Rat.mul qs.(i).Params.area_q (Rat.min b slack))
          end
        done;
        (* Both variants compare strictly.  The paper's Lemma 3 states a
           non-strict bound, but random testing against exact-hyperperiod
           simulation exhibits deadline misses precisely at the equality
           boundary (e.g. (C=7.921, D=T=8, A=10) + (C=7.301, D=T=10, A=1)
           on A(H)=10, where lhs = rhs = 2699/1000 and the second task
           misses at t=10), so the non-strict reading is unsound; see
           DESIGN.md section 2 and test_regressions.ml. *)
        let abnd = fpga_area - qk.Params.area + if lemma3_form then 1 else 0 in
        let rhs = Rat.mul (Rat.of_int abnd) slack in
        let satisfied = Rat.compare !lhs rhs < 0 in
        { Verdict.task_index = k; satisfied; lhs = !lhs; rhs; note = "" }
      end
    in
    Verdict.make ~test_name ~checks:(List.init n check)
  end

(* columnar path: same O(N^2) interference sum, but the per-task
   rational views (and the C_i/D_i densities) come precomputed from
   Params.Cols instead of being re-derived per call.  Identical op
   sequence per (k, i), so identical bytes; the strictness remark above
   applies here too. *)
let decide_cols ~test_name ~lemma3_form ~fpga_area (p : Params.Cols.t) =
  let open Params.Cols in
  if p.amax > fpga_area then Verdict.reject_all_n ~test_name ~note:wider_note p.n
  else begin
    let n = p.n in
    let check k =
      let slack = Rat.sub Rat.one p.dens.(k) in
      if Rat.sign slack < 0 then
        {
          Verdict.task_index = k;
          satisfied = false;
          lhs = p.dens.(k);
          rhs = Rat.one;
          note = "C_k > D_k";
        }
      else begin
        let dk = p.d.(k) in
        let lhs = ref Rat.zero in
        for i = 0 to n - 1 do
          if i <> k then begin
            let f = Rat.floor (Rat.div (Rat.sub dk p.d.(i)) p.t.(i)) in
            let ni = Rat.of_bignum (Bignum.max Bignum.zero (Bignum.succ f)) in
            let carry = Rat.min p.c.(i) (Rat.max (Rat.sub dk (Rat.mul ni p.t.(i))) Rat.zero) in
            let b = Rat.div (Rat.add (Rat.mul ni p.c.(i)) carry) p.d.(i) in
            lhs := Rat.add !lhs (Rat.mul p.area_q.(i) (Rat.min b slack))
          end
        done;
        let abnd = fpga_area - p.area.(k) + if lemma3_form then 1 else 0 in
        let rhs = Rat.mul (Rat.of_int abnd) slack in
        let satisfied = Rat.compare !lhs rhs < 0 in
        { Verdict.task_index = k; satisfied; lhs = !lhs; rhs; note = "" }
      end
    in
    Verdict.make ~test_name ~checks:(List.init n check)
  end

let decide ~fpga_area ts =
  Obs.Span.with_ ~name:"core.gn1.decide" (fun () ->
      decide_cols ~test_name:"GN1" ~lemma3_form:true ~fpga_area (Params.Cols.of_taskset ts))

let decide_all ~fpga_area tss =
  Obs.Span.with_ ~name:"core.gn1.decide" (fun () ->
      Array.map
        (fun ts -> decide_cols ~test_name:"GN1" ~lemma3_form:true ~fpga_area (Params.Cols.of_taskset ts))
        tss)

let decide_reference ~fpga_area ts = decide_general ~test_name:"GN1" ~lemma3_form:true ~fpga_area ts
let accepts ~fpga_area ts = Verdict.accepted (decide ~fpga_area ts)

let decide_printed ~fpga_area ts =
  decide_cols ~test_name:"GN1-printed" ~lemma3_form:false ~fpga_area (Params.Cols.of_taskset ts)

let accepts_printed ~fpga_area ts = Verdict.accepted (decide_printed ~fpga_area ts)

let n_jobs ts ~k ~i =
  let qs = Params.of_taskset ts in
  check_indices qs ~k ~i;
  n_jobs_q qs ~k ~i

let beta ts ~k ~i =
  let qs = Params.of_taskset ts in
  check_indices qs ~k ~i;
  beta_q qs ~k ~i
