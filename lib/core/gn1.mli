(** The GN1 test — Theorem 2, for EDF-NF.

    FPGA generalisation of Bertogna/Cirinei/Lipari's BCL test, built on
    the interval-alpha-work-conserving property of EDF-NF (Lemma 2): while
    a job of [tau_k] waits, the occupied area is at least
    [A(H) - (A_k - 1)].  For each task [tau_k] the interference any other
    task [tau_i] can contribute within one scheduling window of [tau_k] is
    bounded by

    {v beta_i = (N_i C_i + min(C_i, max(D_k - N_i T_i, 0))) / D_i
       N_i    = max(0, floor((D_k - D_i)/T_i) + 1) v}

    and the taskset is accepted iff for every [k]

    {v sum_{i<>k} A_i min(beta_i, 1 - C_k/D_k)
         <  (A(H) - A_k + 1)(1 - C_k/D_k) v}

    The bound constant [(A(H) - A_k + 1)] is the one Lemma 3 derives and
    the paper's Section-6 worked examples use.  The comparison is strict
    even though Lemma 3 states it non-strictly: random testing against
    exact-hyperperiod simulation shows deadline misses exactly at the
    equality boundary, so the non-strict reading is unsound (DESIGN.md
    §2, test_regressions.ml).  All of the paper's table decisions are
    unaffected.  The theorem as printed instead uses [(A(H) - A_k)]; that
    (more pessimistic) variant is available as {!decide_printed}. *)

val decide : fpga_area:int -> Model.Taskset.t -> Verdict.t
val accepts : fpga_area:int -> Model.Taskset.t -> bool

val decide_all : fpga_area:int -> Model.Taskset.t array -> Verdict.t array
(** One verdict per taskset, in order; element [i] is byte-identical to
    [decide ~fpga_area tss.(i)]. *)

val decide_cols : test_name:string -> lemma3_form:bool -> fpga_area:int -> Params.Cols.t -> Verdict.t
(** The columnar kernel behind {!decide} (and, with [lemma3_form:false],
    {!decide_printed}). *)

val decide_reference : fpga_area:int -> Model.Taskset.t -> Verdict.t
(** The pre-columnar record-path implementation, kept so the test suite
    can pin [decide ≡ decide_reference] byte-for-byte. *)

val decide_printed : fpga_area:int -> Model.Taskset.t -> Verdict.t
(** The variant exactly as printed in Theorem 2. *)

val accepts_printed : fpga_area:int -> Model.Taskset.t -> bool

val n_jobs : Model.Taskset.t -> k:int -> i:int -> Bignum.t
(** [N_i]: jobs of [tau_i] fully contained in [tau_k]'s window (clamped at
    0).  Indices are 0-based. @raise Invalid_argument on [k = i] or out of
    range. *)

val beta : Model.Taskset.t -> k:int -> i:int -> Rat.t
(** The interference bound [beta_i] for window of task [k]. *)
