(** Measurement core of [redf bench-core]: per-decide analyzer cost
    across taskset sizes and call modes, with comparison against the
    committed baseline in [results/BENCH_core.json].

    The matrix: DP/GN1/GN2/approx at N in {8, 64, 256} in single mode;
    DP/GN1/GN2 additionally in batch mode ({!Core.Analyzer.t.decide_all}
    over {!batch_width} distinct tasksets) at N in {8, 64}; the exact
    oracle on crafted tasksets at N in {2, 3}.  Workloads derive from
    fixed seeds, so successive runs measure the same decides. *)

val fpga_area : int
val core_sizes : int list
val batch_sizes : int list
val batch_width : int
val exact_sizes : int list

val taskset_of_size : ?seed:int -> int -> Model.Taskset.t

val collect :
  ?budget_ms:int ->
  ?only:(string * int * string) list ->
  ?progress:(Env.core_row -> unit) ->
  unit ->
  Env.core_row list
(** Measure every row (or, with [only], just the named
    [(analyzer, n, mode)] rows — the regression-retry path).
    [budget_ms] bounds the whole section's wall clock: a row still
    running when it expires is cut short and flagged
    {!Env.core_row.truncated}; rows not yet started are recorded with
    [us_per_decide = 0.] and the same flag.  [progress] fires after
    each row. *)

(** {2 Comparison} *)

val parse_tolerance : string -> (float, string) result
(** Accepts ["1.5x"] or ["1.5"]; must be at least 1.0. *)

val abs_slack_us : float
(** A row only counts as regressed if, besides exceeding the ratio
    tolerance, it slowed down by at least this many microseconds —
    micro-rows jitter too much between machines for a pure ratio
    gate. *)

type verdict =
  | Ok_row of float  (** ratio current/baseline, within tolerance *)
  | Regressed of float  (** ratio beyond tolerance and absolute slack *)
  | New_row  (** no matching (analyzer, n, mode) row in the baseline *)
  | Skipped_truncated  (** either side truncated (or zero) — not comparable *)

type compared = { row : Env.core_row; baseline_us : float option; verdict : verdict }

val compare_rows :
  tolerance:float -> baseline:Env.core_row list -> Env.core_row list -> compared list
(** Match current rows to baseline rows by (analyzer, n, mode). *)

val regressions : compared list -> compared list

val pretty_row : Env.core_row -> string
val pretty_compared : compared -> string
