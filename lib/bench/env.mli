(** Shared I/O layer of the benchmark harness.

    One home for the pieces every bench emitter used to duplicate: the
    [results/] directory convention, the sectioned JSON-lines writer
    behind [BENCH_serve.json], and the schema-versioned row format of
    [BENCH_core.json].  [redf bench-serve], [redf bench-admit],
    [redf bench-core] and the offline [bench/] harness are all clients.

    This library is excluded from check-src's determinism scope — wall
    clocks, environment and the filesystem are its whole job.  Nothing
    here may leak into analyzer decide paths. *)

val results_dir : string
(** ["results"] — where the committed benchmark artifacts live. *)

val ensure_results_dir : unit -> unit

val write_file : string -> string -> unit
(** [write_file name contents] writes [results_dir/name] (creating the
    directory first). *)

val ensure_parent_dir : string -> unit
(** Create the parent directory of an output path if missing. *)

(** {2 Sectioned JSON-lines files}

    [BENCH_serve.json] holds one JSON line per bench section, each
    self-labelled by a ["bench":"<section>"] field, so independent
    bench commands rewrite their own line without clobbering each
    other.  Sections cannot nest under one object: bench lines carry
    floats, which exact-arithmetic {!Core.Json} refuses to represent,
    so the file is spliced textually. *)

val section_tag : string -> string option
(** The section a stored line belongs to: the value of its
    ["bench":"..."] field; [None] for blank lines; a non-blank line
    without a tag is adopted as ["serve"] (the only legacy producer
    that predates tagging). *)

val write_section : out:string -> section:string -> string -> unit
(** [write_section ~out ~section line] replaces [section]'s line in
    [out] (keeping every other section's line byte-for-byte) and
    rewrites the file with sections sorted by tag. *)

(** {2 BENCH_core.json rows (schema v2)} *)

type core_row = {
  analyzer : string;
  n : int;  (** taskset size *)
  mode : string;  (** ["single"] ({!Core.Analyzer.t.decide} per taskset) or ["batch"] ([decide_all]) *)
  us_per_decide : float;
  truncated : bool;
      (** the row's measurement was cut short (or skipped entirely,
          [us_per_decide = 0.]) by an expired [--budget-ms]; comparison
          ignores truncated rows on either side *)
}

val core_schema_version : int
(** [2].  v1 rows lacked [mode]/[truncated]; {!parse_core} accepts both,
    defaulting [mode] to ["single"] and [truncated] to [false], so a
    committed v1 baseline keeps working as a [--compare] target. *)

val core_row_to_json : core_row -> string

val core_doc : core_row list -> string
(** The full [BENCH_core.json] document (trailing newline included). *)

val parse_core : string -> (core_row list, string) result
(** Parse a v1 or v2 document.  Textual field extraction, not
    {!Core.Json} (which refuses floats by design) — exact because the
    row grammar is flat. *)

(** {2 Wall-clock budgets ([--budget-ms])} *)

type budget

val budget_of_ms : int option -> budget
(** [None] — no deadline, {!within} is always true. *)

val within : budget -> bool
