(* Shared I/O layer of the benchmark harness: the results directory,
   the sectioned BENCH_serve.json writer (one JSON line per bench
   section), and the schema-versioned BENCH_core.json row format.

   This module deliberately lives outside the determinism scope of
   check-src (wall clocks and the filesystem are its whole job); the
   analyzers it measures stay inside. *)

let results_dir = "results"

let ensure_results_dir () =
  if not (Sys.file_exists results_dir) then Sys.mkdir results_dir 0o755

let write_file path contents =
  ensure_results_dir ();
  let oc = open_out (Filename.concat results_dir path) in
  output_string oc contents;
  close_out oc

let ensure_parent_dir path =
  let dir = Filename.dirname path in
  if dir <> "" && dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let find_sub haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i =
    if i + n > h then None else if String.sub haystack i n = needle then Some i else go (i + 1)
  in
  if n = 0 then Some 0 else go 0

(* --- sectioned JSON-lines files (BENCH_serve.json) --- *)

(* Every section line labels itself with a "bench":"<section>" field;
   the tag is read back generically, so new bench commands get their
   own section without touching this list.  A legacy single-line file
   without a tag is adopted as the "serve" section (the only producer
   that predates tagging). *)
let section_tag line =
  if String.length (String.trim line) = 0 then None
  else
    let marker = {|"bench":"|} in
    match find_sub line marker with
    | None -> Some "serve"
    | Some i -> (
      let start = i + String.length marker in
      match String.index_from_opt line start '"' with
      | None -> Some "serve"
      | Some stop -> Some (String.sub line start (stop - start)))

(* Sections can't nest under one JSON object: bench lines carry floats,
   which exact-arithmetic Core.Json refuses to represent, so the file
   is spliced textually — each writer replaces its own line and leaves
   the others byte-for-byte alone (modulo the stable sort by tag). *)
let write_section ~out ~section json_line =
  ensure_parent_dir out;
  let existing =
    if not (Sys.file_exists out) then []
    else
      In_channel.with_open_bin out In_channel.input_all
      |> String.split_on_char '\n'
      |> List.filter_map (fun line ->
             match section_tag line with Some t -> Some (t, line) | None -> None)
  in
  let sections = (section, json_line) :: List.remove_assoc section existing in
  let sections = List.sort (fun (a, _) (b, _) -> String.compare a b) sections in
  let oc = open_out out in
  List.iter (fun (_, line) -> output_string oc (line ^ "\n")) sections;
  close_out oc

(* --- BENCH_core.json rows --- *)

type core_row = {
  analyzer : string;
  n : int;
  mode : string;  (* "single" | "batch" *)
  us_per_decide : float;
  truncated : bool;  (* measured under an expired --budget-ms, or skipped *)
}

(* v1 rows had only analyzer/n/us_per_decide; v2 adds mode and the
   truncation flag.  The parser accepts both, defaulting mode to
   "single" and truncated to false, so a committed v1 baseline keeps
   working as a --compare target. *)
let core_schema_version = 2

let core_row_to_json r =
  Printf.sprintf "{\"analyzer\":%S,\"n\":%d,\"mode\":%S,\"us_per_decide\":%.2f,\"truncated\":%b}"
    r.analyzer r.n r.mode r.us_per_decide r.truncated

let core_doc rows =
  Printf.sprintf
    "{\"kind\":\"bench-core\",\"results\":[%s],\"schema_version\":%d,\"unit\":\"us/decide\"}\n"
    (String.concat "," (List.map core_row_to_json rows))
    core_schema_version

(* Field extraction by substring scan rather than a JSON parser:
   Core.Json refuses floats by design, and the row grammar is flat
   (no nested objects or arrays), so textual slicing is exact. *)
let string_field obj name =
  match find_sub obj (Printf.sprintf "\"%s\":\"" name) with
  | None -> None
  | Some i -> (
    let start = i + String.length name + 4 in
    match String.index_from_opt obj start '"' with
    | None -> None
    | Some stop -> Some (String.sub obj start (stop - start)))

let raw_field obj name =
  match find_sub obj (Printf.sprintf "\"%s\":" name) with
  | None -> None
  | Some i ->
    let start = i + String.length name + 3 in
    let stop = ref start in
    while !stop < String.length obj && obj.[!stop] <> ',' && obj.[!stop] <> '}' do incr stop done;
    Some (String.trim (String.sub obj start (!stop - start)))

let parse_core_row obj =
  match (string_field obj "analyzer", raw_field obj "n", raw_field obj "us_per_decide") with
  | Some analyzer, Some n_raw, Some us_raw -> (
    match (int_of_string_opt n_raw, float_of_string_opt us_raw) with
    | Some n, Some us ->
      let mode = Option.value (string_field obj "mode") ~default:"single" in
      let truncated = raw_field obj "truncated" = Some "true" in
      Some { analyzer; n; mode; us_per_decide = us; truncated }
    | _ -> None)
  | _ -> None

(* The array is split by a string-aware scan, not by the first ']':
   analyzer names like "approx[1/10]" put brackets inside strings. *)
let parse_core contents =
  match find_sub contents "\"results\":[" with
  | None -> Error "not a bench-core document (no \"results\" array)"
  | Some i ->
    let len = String.length contents in
    let pos = ref (i + String.length "\"results\":[") in
    let depth = ref 0 and in_string = ref false and escaped = ref false in
    let buf = Buffer.create 64 in
    let objs = ref [] in
    let closed = ref false and err = ref None in
    while (not !closed) && !err = None && !pos < len do
      let c = contents.[!pos] in
      if !in_string then begin
        if !depth > 0 then Buffer.add_char buf c;
        if !escaped then escaped := false
        else if c = '\\' then escaped := true
        else if c = '"' then in_string := false
      end
      else begin
        match c with
        | '"' ->
          in_string := true;
          if !depth > 0 then Buffer.add_char buf c
        | '{' ->
          incr depth;
          Buffer.add_char buf c
        | '}' ->
          if !depth <= 0 then err := Some "mismatched '}' in \"results\" array"
          else begin
            Buffer.add_char buf c;
            decr depth;
            if !depth = 0 then begin
              objs := Buffer.contents buf :: !objs;
              Buffer.clear buf
            end
          end
        | ']' when !depth = 0 -> closed := true
        | c -> if !depth > 0 then Buffer.add_char buf c
      end;
      incr pos
    done;
    (match !err with
    | Some e -> Error e
    | None ->
      if not !closed then Error "unterminated \"results\" array"
      else
        let objs = List.rev !objs in
        let rows = List.filter_map parse_core_row objs in
        if List.length rows = List.length objs then Ok rows
        else Error "malformed row in \"results\" array")

(* --- wall-clock budgets (--budget-ms) --- *)

type budget = { deadline : float option }

let budget_of_ms ms =
  { deadline = Option.map (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.0)) ms }

let within b =
  match b.deadline with None -> true | Some d -> Unix.gettimeofday () < d
