(* Measurement core of [redf bench-core] and the offline harness: the
   per-decide cost of each analyzer across taskset sizes, in both call
   modes, against the committed baseline in results/BENCH_core.json.

   Bechamel's OLS wants many iterations, which GN2's exact arithmetic
   makes prohibitive at N=256, so rows measure directly: repeated
   decides on the wall clock until ~0.5 s or 64 runs, minimum one.
   A per-section --budget-ms can cut a row short (or skip it); such
   rows are flagged truncated and never participate in comparison. *)

let fpga_area = 100
let core_sizes = [ 8; 64; 256 ]

(* batch rows amortize per-call setup over a pool of distinct tasksets;
   16 is large enough to show the columnar fast path, small enough that
   one iteration stays near the single-row cost *)
let batch_width = 16
let batch_sizes = [ 8; 64 ]

let taskset_of_size ?(seed = 1234) n =
  let rng = Rng.create ~seed in
  Model.Generator.draw rng (Model.Generator.unconstrained ~n)

let single_analyzers =
  [
    ("DP", fun ts -> ignore (Core.Dp.accepts ~fpga_area ts));
    ("GN1", fun ts -> ignore (Core.Gn1.accepts ~fpga_area ts));
    ("GN2", fun ts -> ignore (Core.Gn2.accepts ~fpga_area ts));
    ( "approx[1/10]",
      fun ts -> ignore (Exact.Approx.analyze ~eps:(Rat.of_ints 1 10) ~fpga_area ts) );
    ( "approx[1/100]",
      fun ts -> ignore (Exact.Approx.analyze ~eps:(Rat.of_ints 1 100) ~fpga_area ts) );
  ]

let batch_analyzers = [ Core.Analyzer.dp; Core.Analyzer.gn1; Core.Analyzer.gn2 ]

(* the oracle is exponential in N (offset combinations), so its rows
   use crafted small integer tasksets with an explicit combination cap
   instead of the generated N sweep *)
let exact_sizes = [ 2; 3 ]

let exact_taskset n =
  let task c d t a = Model.Task.of_decimal ~exec:c ~deadline:d ~period:t ~area:a () in
  Model.Taskset.of_list
    (List.filteri
       (fun i _ -> i < n)
       [ task "1" "6" "6" 40; task "2" "8" "8" 50; task "1" "4" "4" 30 ])

let exact_decide ts =
  ignore (Exact.Oracle.decide ~max_combinations:20_000 ~fpga_area ~policy:Sim.Policy.edf_nf ts)

type spec = { analyzer : string; n : int; mode : string; decides_per_iter : int; iter : unit -> unit }

let specs () =
  let singles =
    List.concat_map
      (fun n ->
        let ts = taskset_of_size n in
        List.map
          (fun (name, f) ->
            { analyzer = name; n; mode = "single"; decides_per_iter = 1; iter = (fun () -> f ts) })
          single_analyzers)
      core_sizes
  in
  let batches =
    List.concat_map
      (fun n ->
        let tss = Array.init batch_width (fun i -> taskset_of_size ~seed:(1234 + i) n) in
        List.map
          (fun a ->
            {
              analyzer = a.Core.Analyzer.name;
              n;
              mode = "batch";
              decides_per_iter = batch_width;
              iter = (fun () -> ignore (a.Core.Analyzer.decide_all ~fpga_area tss));
            })
          batch_analyzers)
      batch_sizes
  in
  let exacts =
    List.map
      (fun n ->
        let ts = exact_taskset n in
        { analyzer = "exact"; n; mode = "single"; decides_per_iter = 1; iter = (fun () -> exact_decide ts) })
      exact_sizes
  in
  singles @ batches @ exacts

let measure ~budget spec =
  if not (Env.within budget) then
    (* skipped outright: record the row so the matrix shape is stable,
       but with no measurement behind it *)
    { Env.analyzer = spec.analyzer; n = spec.n; mode = spec.mode;
      us_per_decide = 0.0; truncated = true }
  else begin
    let budget_s = 0.5 and max_runs = 64 in
    let t0 = Unix.gettimeofday () in
    let rec go runs =
      spec.iter ();
      let elapsed = Unix.gettimeofday () -. t0 in
      let runs = runs + 1 in
      let natural = elapsed >= budget_s || runs >= max_runs in
      if natural then (elapsed, runs, false)
      else if not (Env.within budget) then (elapsed, runs, true)
      else go runs
    in
    let elapsed, runs, cut = go 0 in
    {
      Env.analyzer = spec.analyzer;
      n = spec.n;
      mode = spec.mode;
      us_per_decide = elapsed *. 1e6 /. float_of_int (runs * spec.decides_per_iter);
      truncated = cut;
    }
  end

let collect ?budget_ms ?only ?(progress = fun (_ : Env.core_row) -> ()) () =
  let budget = Env.budget_of_ms budget_ms in
  let keep spec =
    match only with
    | None -> true
    | Some keys -> List.mem (spec.analyzer, spec.n, spec.mode) keys
  in
  List.filter_map
    (fun spec ->
      if not (keep spec) then None
      else begin
        let row = measure ~budget spec in
        progress row;
        Some row
      end)
    (specs ())

(* --- comparison against a committed baseline --- *)

let parse_tolerance s =
  let body =
    let l = String.length s in
    if l > 0 && (s.[l - 1] = 'x' || s.[l - 1] = 'X') then String.sub s 0 (l - 1) else s
  in
  match float_of_string_opt body with
  | Some f when f >= 1.0 -> Ok f
  | Some _ -> Error (Printf.sprintf "tolerance %S is below 1.0" s)
  | None -> Error (Printf.sprintf "cannot parse tolerance %S (want e.g. 1.5x)" s)

(* micro-rows (tens of microseconds) jitter wildly between machines and
   shared CI runners; a ratio gate alone would flag noise, so a
   regression additionally needs this much absolute slowdown *)
let abs_slack_us = 25.0

type verdict = Ok_row of float | Regressed of float | New_row | Skipped_truncated

type compared = { row : Env.core_row; baseline_us : float option; verdict : verdict }

let compare_rows ~tolerance ~baseline current =
  let key r = (r.Env.analyzer, r.Env.n, r.Env.mode) in
  List.map
    (fun cur ->
      let base = List.find_opt (fun b -> key b = key cur) baseline in
      let baseline_us = Option.map (fun b -> b.Env.us_per_decide) base in
      let verdict =
        match base with
        | None -> New_row
        | Some b ->
          if cur.Env.truncated || b.Env.truncated || b.Env.us_per_decide <= 0.0 then
            Skipped_truncated
          else begin
            let ratio = cur.Env.us_per_decide /. b.Env.us_per_decide in
            if ratio > tolerance && cur.Env.us_per_decide -. b.Env.us_per_decide > abs_slack_us
            then Regressed ratio
            else Ok_row ratio
          end
      in
      { row = cur; baseline_us; verdict })
    current

let regressions compared =
  List.filter (fun c -> match c.verdict with Regressed _ -> true | _ -> false) compared

let pretty_row r =
  Printf.sprintf "%-13s n=%-4d %-6s %14.2f us/decide%s" r.Env.analyzer r.Env.n r.Env.mode
    r.Env.us_per_decide
    (if r.Env.truncated then "  [truncated]" else "")

let pretty_compared c =
  let tail =
    match (c.verdict, c.baseline_us) with
    | Ok_row ratio, Some b -> Printf.sprintf "  baseline %14.2f  x%.2f  ok" b ratio
    | Regressed ratio, Some b -> Printf.sprintf "  baseline %14.2f  x%.2f  REGRESSED" b ratio
    | New_row, _ -> "  (no baseline row)"
    | Skipped_truncated, _ -> "  (truncated; not compared)"
    | _, None -> ""
  in
  pretty_row c.row ^ tail
