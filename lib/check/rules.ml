(* The policy layer: which rules exist, which modules each rule covers,
   and the deny/safe lists the analysis matches against.  Scope is
   decided from the workspace-relative source path recorded in the cmt,
   plus in-source module tags ([@@@redf.det] etc.), so fixture modules
   and future code can opt in without touching this table. *)

type rule = Det_purity | Domain_safety | Exact_arith | Poly_compare

let all = [ Det_purity; Domain_safety; Exact_arith; Poly_compare ]

let name = function
  | Det_purity -> "det-purity"
  | Domain_safety -> "domain-safety"
  | Exact_arith -> "exact-arith"
  | Poly_compare -> "poly-compare"

let of_name s =
  match String.lowercase_ascii s with
  | "det-purity" -> Some Det_purity
  | "domain-safety" -> Some Domain_safety
  | "exact-arith" -> Some Exact_arith
  | "poly-compare" -> Some Poly_compare
  | _ -> None

let describe = function
  | Det_purity ->
    "no wall-clock, environment or hash-order-dependent primitives in deterministic modules \
     (the lib/parallel split-PRNG contract: byte-identical output for any -j)"
  | Domain_safety ->
    "module-level mutable state in pool-reachable modules must be Atomic/Mutex-guarded or \
     explicitly allow-listed with a justification"
  | Exact_arith ->
    "no float literals, float comparisons or float_of_string in the exact decide paths \
     (verdicts must never depend on float rounding)"
  | Poly_compare ->
    "no polymorphic =/compare on types carrying a custom ordering (verdicts, diagnostics, \
     simulator outcomes)"

(* --- module classification --- *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

(* The deterministic world is everything the analyzers, simulator,
   sweep harness and audit execute: all of lib/ except the modules
   whose whole point is wall-clock time (obs timers, the bench
   harness) and socket timeouts (server). *)
let det_excluded = [ "lib/obs/"; "lib/server/"; "lib/bench/" ]

let det_scope file =
  has_prefix ~prefix:"lib/" file
  && not (List.exists (fun p -> has_prefix ~prefix:p file) det_excluded)

(* exact decide paths: the analyzers, the verdict cache keyed on exact
   ticks, and the soundness audit that cross-checks them.  lib/rat and
   lib/bignum stay out: they *are* the exact substrate and provide the
   explicit float-boundary converters (Rat.to_float, pp_approx). *)
let exact_scope file =
  List.exists (fun p -> has_prefix ~prefix:p file) [ "lib/core/"; "lib/cache/"; "lib/audit/" ]

(* every lib module is reachable from a Parallel.Pool work item (audit
   units run analyzers, simulator, trace checks and cache lookups on
   worker domains), so the whole library tree is shared-state scope *)
let shared_scope file = has_prefix ~prefix:"lib/" file

let poly_scope _file = true

(* in-source module tags extend the path-based scopes *)
let tag_of_attribute = function
  | "redf.det" -> Some Det_purity
  | "redf.domain_shared" -> Some Domain_safety
  | "redf.exact" -> Some Exact_arith
  | _ -> None

let in_scope rule ~file ~tags =
  List.mem rule tags
  ||
  match rule with
  | Det_purity -> det_scope file
  | Domain_safety -> shared_scope file
  | Exact_arith -> exact_scope file
  | Poly_compare -> poly_scope file

(* --- det-purity: denied identifiers --- *)

(* normalized full paths (Foo__Bar rewritten to Foo.Bar); matching is
   on the complete dotted path, so a user-defined MyHashtbl.iter is
   not confused with the stdlib one *)
let det_denied_idents =
  [
    ("Stdlib.Hashtbl.iter", "iteration order depends on the hash seed and insertion history");
    ("Stdlib.Hashtbl.fold", "fold order depends on the hash seed and insertion history");
    ("Stdlib.Hashtbl.randomize", "switches hash tables to randomized, run-dependent hashing");
    ("Stdlib.Random.self_init", "seeds the PRNG from the outside world");
    ("Stdlib.Sys.time", "reads the process clock");
    ("Unix.gettimeofday", "reads the wall clock");
    ("Unix.time", "reads the wall clock");
    ("Stdlib.Sys.getenv", "output must not depend on the environment");
    ("Stdlib.Sys.getenv_opt", "output must not depend on the environment");
  ]

(* --- exact-arith: denied identifiers --- *)

let exact_denied_idents =
  [
    ("Stdlib.float_of_string", "parses a rounded binary float; use Rat.of_decimal_string");
    ("Stdlib.float_of_string_opt", "parses a rounded binary float; use Rat.of_decimal_string");
    ("Stdlib.Float.of_string", "parses a rounded binary float; use Rat.of_decimal_string");
    ("Stdlib.Float.of_string_opt", "parses a rounded binary float; use Rat.of_decimal_string");
    ("Stdlib.Float.equal", "float equality is rounding-dependent; compare Rat values");
    ("Stdlib.Float.compare", "float ordering is rounding-dependent; compare Rat values");
  ]

(* --- poly-compare: types with a custom ordering --- *)

(* fully-qualified, normalized constructor paths.  A use site matches
   when its (possibly shortened) path components are a suffix of one of
   these, and — for bare local names — the defining unit agrees. *)
let ordered_types =
  [
    ("Core.Analyzer.t", "contains closures: polymorphic compare raises at runtime");
    ("Core.Verdict.t", "verdicts order by acceptance then checks; use a match or Verdict equality");
    ("Core.Verdict.task_check", "carries exact Rat sides; compare fields monomorphically");
    ("Core.Dbf.result", "verdict-like variant; match on the constructor instead");
    ("Core.Feasibility.violation", "verdict-like variant; match on the constructor instead");
    ("Audit.Diagnostic.t", "diagnostics order by severity via compare_severity");
    ("Audit.Diagnostic.severity", "ordering is compare_severity, not the declaration order guess");
    ("Obs.Snapshot.entry", "entries order by the canonical key sort; compare fields explicitly");
    ("Sim.Engine.outcome", "match on No_miss/Miss instead of structural equality");
    ("Sim.Engine.miss", "compare task_index/at fields monomorphically");
    ("Sim2d.Engine2d.outcome", "match on the constructor instead of structural equality");
    ("Sim2d.Engine2d.miss", "compare fields monomorphically");
  ]

(* the polymorphic functions whose instantiation we inspect *)
let poly_compare_idents =
  [
    "Stdlib.=";
    "Stdlib.<>";
    "Stdlib.<";
    "Stdlib.>";
    "Stdlib.<=";
    "Stdlib.>=";
    "Stdlib.compare";
    "Stdlib.min";
    "Stdlib.max";
    "Stdlib.List.mem";
    "Stdlib.List.assoc";
    "Stdlib.List.assoc_opt";
    "Stdlib.List.mem_assoc";
    "Stdlib.Array.mem";
    "List.mem";
    "List.assoc";
    "List.assoc_opt";
    "List.mem_assoc";
    "Array.mem";
  ]

(* --- domain-safety: mutable vs safe type heads --- *)

(* a module-level binding whose type has one of these heads is shared
   mutable state *)
let mutable_type_heads =
  [
    "Stdlib.ref";
    "ref";
    "Stdlib.Hashtbl.t";
    "Hashtbl.t";
    "Stdlib.Buffer.t";
    "Buffer.t";
    "Stdlib.Queue.t";
    "Queue.t";
    "Stdlib.Stack.t";
    "Stack.t";
    "array";
    "bytes";
    "Stdlib.Bytes.t";
  ]

(* these wrappers make the state safe to share; their parameters are
   not inspected further *)
let safe_type_heads =
  [
    "Stdlib.Atomic.t";
    "Atomic.t";
    "Stdlib.Mutex.t";
    "Mutex.t";
    "Stdlib.Condition.t";
    "Condition.t";
    "Stdlib.Semaphore.Counting.t";
    "Stdlib.Semaphore.Binary.t";
    "Stdlib.Domain.DLS.key";
    "Domain.DLS.key";
  ]
