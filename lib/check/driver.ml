(* Input resolution, aggregation and rendering.  A PATH argument is a
   .cmt file, a directory scanned recursively for .cmt files, or a
   source directory whose cmts live under _build/default (so
   [redf check-src lib] works from a repo checkout after [dune build]).
   Directory listings are sorted: the report is a pure function of the
   tree, never of readdir order. *)

type report = { findings : Finding.t list; modules : int }

let is_cmt name =
  String.length name > 4 && String.sub name (String.length name - 4) 4 = ".cmt"

let rec scan_dir acc dir =
  let entries = Sys.readdir dir in
  Array.sort String.compare entries;
  Array.fold_left
    (fun acc entry ->
      let path = Filename.concat dir entry in
      if Sys.is_directory path then scan_dir acc path
      else if is_cmt entry then path :: acc
      else acc)
    acc entries

let build_mirror path = Filename.concat (Filename.concat "_build" "default") path

let resolve_input path =
  if Sys.file_exists path && (not (Sys.is_directory path)) && is_cmt path then Ok [ path ]
  else begin
    let dirs =
      (if Sys.file_exists path && Sys.is_directory path then [ path ] else [])
      @ (if Sys.file_exists (build_mirror path) && Sys.is_directory (build_mirror path) then
           [ build_mirror path ]
         else [])
    in
    match dirs with
    | [] -> Error (Printf.sprintf "%s: no such file or directory (nor under _build/default)" path)
    | dirs -> (
      match List.concat_map (fun d -> scan_dir [] d) dirs with
      | [] -> Error (Printf.sprintf "%s: no .cmt files found (build the tree first)" path)
      | cmts -> Ok cmts)
  end

let resolve_inputs paths =
  let rec go acc = function
    | [] -> Ok (List.sort_uniq String.compare acc)
    | p :: rest -> (
      match resolve_input p with Error e -> Error e | Ok cmts -> go (cmts @ acc) rest)
  in
  go [] paths

let run ?(rules = Rules.all) paths =
  match resolve_inputs paths with
  | Error e -> Error e
  | Ok cmts ->
    let rec analyze acc modules = function
      | [] -> Ok { findings = List.sort Finding.compare acc; modules }
      | cmt :: rest -> (
        match Analysis.run_cmt ~rules cmt with
        | Error e -> Error e
        | Ok r -> analyze (r.Analysis.findings @ acc) (modules + 1) rest)
    in
    analyze [] 0 cmts

let errors t = List.length (List.filter Finding.is_error t.findings)
let warnings t = List.length (List.filter Finding.is_warning t.findings)

let clean ?(strict = false) t =
  errors t = 0 && ((not strict) || warnings t = 0)

let exit_code ?strict t = if clean ?strict t then 0 else 1

let pp fmt t =
  List.iter (fun f -> Format.fprintf fmt "%a@," Finding.pp f) t.findings;
  let e = errors t and w = warnings t in
  if e = 0 && w = 0 then
    Format.fprintf fmt "check-src: clean (%d modules)" t.modules
  else
    Format.fprintf fmt "check-src: %d error%s, %d warning%s (%d modules)" e
      (if e = 1 then "" else "s")
      w
      (if w = 1 then "" else "s")
      t.modules

let schema_version = 1

let to_json t =
  Core.Json.Obj
    [
      ("clean", Core.Json.Bool (clean t));
      ("errors", Core.Json.Int (errors t));
      ("findings", Core.Json.List (List.map Finding.to_json t.findings));
      ("kind", Core.Json.String "check-src");
      ("modules", Core.Json.Int t.modules);
      ("schema_version", Core.Json.Int schema_version);
      ("warnings", Core.Json.Int (warnings t));
    ]
