(** The typedtree pass over one compiled module.

    Reads a [.cmt] file with [Cmt_format], walks its implementation
    with a [Tast_iterator], and returns the findings for the enabled
    rule families, already deduplicated and sorted by location.

    Suppression: an expression, value binding or module carrying
    [[\@redf.allow "rule" "justification"]] (or the floating
    [[\@\@\@redf.allow ...]] form for the rest of the enclosing module)
    silences that rule inside its scope.  The justification string is
    mandatory and must be non-empty; a malformed or unjustified allow
    is itself an error-level finding (rule [allow-syntax]), and an
    allow that suppresses nothing is a warning (rule [unused-allow]).
    Interface-only cmts yield no findings. *)

type result = {
  file : string;  (** workspace-relative source path from the cmt *)
  modname : string;  (** compilation unit name, e.g. [Core__Dbf] *)
  findings : Finding.t list;  (** sorted by {!Finding.compare} *)
}

val run_cmt : rules:Rules.rule list -> string -> (result, string) Result.t
(** [run_cmt ~rules path] analyzes one cmt file.  [Error] means the
    file could not be read or is not a cmt. *)
