(* One pass over one cmt.  The walk is a Tast_iterator with three
   overrides: [structure] (floating-allow scope + module tags), [expr]
   (denied identifiers, float literals, polymorphic-compare
   instantiations, allow frames on expressions) and [value_binding]
   (module-level mutable state, allow frames on bindings).

   Everything here is deterministic by construction: cmts are read one
   at a time, findings accumulate in traversal order and are sorted
   before being returned. *)

type result = { file : string; modname : string; findings : Finding.t list }

(* --- path normalization and matching --- *)

(* dune-mangled unit names (Core__Dbf) print with "__"; fold them onto
   the dotted form so one spelling matches both *)
let normalize name =
  let buf = Buffer.create (String.length name) in
  let n = String.length name in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && name.[!i] = '_' && name.[!i + 1] = '_' then begin
      Buffer.add_char buf '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char buf name.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let components s = String.split_on_char '.' (normalize s)

let rec list_suffix ~suffix l =
  if List.length suffix > List.length l then false
  else if List.length suffix = List.length l then List.equal String.equal suffix l
  else match l with [] -> false | _ :: rest -> list_suffix ~suffix rest

let rec list_prefix ~prefix l =
  match (prefix, l) with
  | [], _ -> true
  | _, [] -> false
  | p :: ps, x :: xs -> String.equal p x && list_prefix ~prefix:ps xs

(* Does use-site path [p] (possibly shortened by aliases or locality)
   denote the fully-qualified [denied] constructor?  Qualified paths
   match by component suffix; a bare local name additionally requires
   the defining unit to agree with the denied path's prefix. *)
let path_matches ~mod_components ~denied p =
  let pc = components p and dc = components denied in
  list_suffix ~suffix:pc dc
  && (List.length pc >= 2
     ||
     let rec drop_last = function [] | [ _ ] -> [] | x :: rest -> x :: drop_last rest in
     list_prefix ~prefix:mod_components (drop_last dc))

let ident_matches ~denied p = String.equal (normalize p) denied

(* --- type scanning --- *)

let rec scan_type ~through_arrows ~depth ~on_constr ty =
  if depth <= 8 then
    match Types.get_desc ty with
    | Types.Tconstr (path, args, _) ->
      let name = Path.name path in
      if not (on_constr name) then
        List.iter (scan_type ~through_arrows ~depth:(depth + 1) ~on_constr) args
    | Types.Ttuple l -> List.iter (scan_type ~through_arrows ~depth:(depth + 1) ~on_constr) l
    | Types.Tarrow (_, a, b, _) ->
      if through_arrows then begin
        scan_type ~through_arrows ~depth:(depth + 1) ~on_constr a;
        scan_type ~through_arrows ~depth:(depth + 1) ~on_constr b
      end
    | Types.Tlink t | Types.Tsubst (t, _) -> scan_type ~through_arrows ~depth ~on_constr t
    | _ -> ()

(* first ordered-type hit in an instantiation, with its message *)
let find_ordered_type ~mod_components ty =
  let hit = ref None in
  scan_type ~through_arrows:true ~depth:0 ty ~on_constr:(fun name ->
      match
        List.find_opt
          (fun (denied, _) -> path_matches ~mod_components ~denied name)
          Rules.ordered_types
      with
      | Some (denied, why) ->
        (match !hit with None -> hit := Some (denied, why) | Some _ -> ());
        true
      | None -> false);
  !hit

let type_mentions_float ty =
  let hit = ref false in
  scan_type ~through_arrows:true ~depth:0 ty ~on_constr:(fun name ->
      if String.equal name "float" || String.equal (normalize name) "Stdlib.Float.t" then begin
        hit := true;
        true
      end
      else false);
  !hit

(* mutable / safe head classification for a module-level binding type;
   arrows at any level mean the state is created per call, not shared *)
let rec binding_mutability ~depth ty =
  if depth > 8 then `Safe
  else
    match Types.get_desc ty with
    | Types.Tarrow _ -> `Safe
    | Types.Tconstr (path, args, _) ->
      let name = normalize (Path.name path) in
      if List.exists (String.equal name) Rules.safe_type_heads then `Safe
      else if List.exists (String.equal name) Rules.mutable_type_heads then `Mutable name
      else
        List.fold_left
          (fun acc a ->
            match acc with `Mutable _ -> acc | `Safe -> binding_mutability ~depth:(depth + 1) a)
          `Safe args
    | Types.Ttuple l ->
      List.fold_left
        (fun acc a ->
          match acc with `Mutable _ -> acc | `Safe -> binding_mutability ~depth:(depth + 1) a)
        `Safe l
    | Types.Tlink t | Types.Tsubst (t, _) -> binding_mutability ~depth t
    | _ -> `Safe

(* --- [@redf.allow] parsing --- *)

type allow_parse =
  | Not_relevant
  | Allow of { rule : Rules.rule; justification : string; loc : Location.t }
  | Malformed of { loc : Location.t; reason : string }

let string_const (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_constant (Parsetree.Pconst_string (s, _, _)) -> Some s
  | _ -> None

let parse_allow (attr : Parsetree.attribute) =
  if not (String.equal attr.Parsetree.attr_name.Location.txt "redf.allow") then Not_relevant
  else begin
    let loc = attr.Parsetree.attr_loc in
    let malformed reason = Malformed { loc; reason } in
    let with_rule rule_name justification =
      match Rules.of_name rule_name with
      | Some rule -> Allow { rule; justification; loc }
      | None ->
        malformed
          (Printf.sprintf "unknown rule %S (known rules: %s)" rule_name
             (String.concat ", " (List.map Rules.name Rules.all)))
    in
    match attr.Parsetree.attr_payload with
    | Parsetree.PStr [ { Parsetree.pstr_desc = Parsetree.Pstr_eval (e, _); _ } ] -> (
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_apply (f, [ (_, arg) ]) -> (
        match (string_const f, string_const arg) with
        | Some rule_name, Some justification when String.trim justification <> "" ->
          with_rule rule_name justification
        | Some _, Some _ -> malformed "empty justification string"
        | _ -> malformed "expected [@redf.allow \"rule\" \"justification\"]")
      | Parsetree.Pexp_tuple [ a; b ] -> (
        match (string_const a, string_const b) with
        | Some rule_name, Some justification when String.trim justification <> "" ->
          with_rule rule_name justification
        | Some _, Some _ -> malformed "empty justification string"
        | _ -> malformed "expected [@redf.allow \"rule\" \"justification\"]")
      | Parsetree.Pexp_constant _ ->
        malformed "missing justification: write [@redf.allow \"rule\" \"why this is safe\"]"
      | _ -> malformed "expected [@redf.allow \"rule\" \"justification\"]")
    | _ -> malformed "expected [@redf.allow \"rule\" \"justification\"]"
  end

(* --- the pass --- *)

type frame = { f_rule : Rules.rule; f_loc : Location.t; mutable f_used : bool }

type state = {
  enabled : Rules.rule list;
  file : string;
  mod_components : string list;
  tags : Rules.rule list;
  mutable allows : frame list;  (* innermost first *)
  mutable expr_depth : int;
  mutable acc : Finding.t list;
}

let position (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

let add_finding st f = st.acc <- f :: st.acc

(* meta findings (broken suppressions) are never themselves
   suppressible, otherwise an allow could hide its own syntax error *)
let meta_error st ~loc msg =
  let line, col = position loc in
  add_finding st (Finding.error ~rule:"allow-syntax" ~file:st.file ~line ~col msg)

let emit st rule ~loc msg =
  if List.mem rule st.enabled && Rules.in_scope rule ~file:st.file ~tags:st.tags then begin
    match List.find_opt (fun f -> f.f_rule = rule) st.allows with
    | Some frame -> frame.f_used <- true
    | None ->
      let line, col = position loc in
      add_finding st (Finding.error ~rule:(Rules.name rule) ~file:st.file ~line ~col msg)
  end

let push_allows st attrs =
  let before = st.allows in
  List.iter
    (fun attr ->
      match parse_allow attr with
      | Not_relevant -> ()
      | Malformed { loc; reason } -> meta_error st ~loc reason
      | Allow { rule; justification = _; loc } ->
        st.allows <- { f_rule = rule; f_loc = loc; f_used = false } :: st.allows)
    attrs;
  before

let pop_allows st before =
  let rec unwind l =
    if l != before then
      match l with
      | [] -> ()
      | frame :: rest ->
        if (not frame.f_used) && List.mem frame.f_rule st.enabled then begin
          let line, col = position frame.f_loc in
          add_finding st
            (Finding.warning ~rule:"unused-allow" ~file:st.file ~line ~col
               (Printf.sprintf "[@redf.allow %S] suppresses nothing here"
                  (Rules.name frame.f_rule)))
        end;
        unwind rest
  in
  unwind st.allows;
  st.allows <- before

let check_ident st ~loc path =
  let n = Path.name path in
  List.iter
    (fun (denied, why) ->
      if ident_matches ~denied n then
        emit st Rules.Det_purity ~loc
          (Printf.sprintf "%s in a deterministic module: %s" denied why))
    Rules.det_denied_idents;
  List.iter
    (fun (denied, why) ->
      if ident_matches ~denied n then
        emit st Rules.Exact_arith ~loc (Printf.sprintf "%s in an exact decide path: %s" denied why))
    Rules.exact_denied_idents

let check_poly_compare st ~loc path ty =
  let n = normalize (Path.name path) in
  if List.exists (fun d -> String.equal (normalize d) n) Rules.poly_compare_idents then begin
    (match find_ordered_type ~mod_components:st.mod_components ty with
     | Some (denied, why) ->
       emit st Rules.Poly_compare ~loc
         (Printf.sprintf "polymorphic %s instantiated at %s: %s"
            (List.nth (components n) (List.length (components n) - 1))
            denied why)
     | None -> ());
    if type_mentions_float ty then
      emit st Rules.Exact_arith ~loc
        (Printf.sprintf "float comparison via polymorphic %s: verdicts must not depend on float \
                         rounding" n)
  end

let check_value_binding st (vb : Typedtree.value_binding) =
  if st.expr_depth = 0 then begin
    match binding_mutability ~depth:0 vb.Typedtree.vb_pat.Typedtree.pat_type with
    | `Safe -> ()
    | `Mutable head ->
      emit st Rules.Domain_safety ~loc:vb.Typedtree.vb_pat.Typedtree.pat_loc
        (Printf.sprintf
           "module-level mutable state (%s) reachable from pool workers: wrap it in Atomic, \
            guard it with a Mutex, or [@redf.allow \"domain-safety\" \"...\"] it with the \
            protecting invariant"
           head)
  end

let collect_tags (str : Typedtree.structure) =
  List.filter_map
    (fun (item : Typedtree.structure_item) ->
      match item.Typedtree.str_desc with
      | Typedtree.Tstr_attribute attr ->
        Rules.tag_of_attribute attr.Parsetree.attr_name.Location.txt
      | _ -> None)
    str.Typedtree.str_items

let make_iterator st =
  let expr sub (e : Typedtree.expression) =
    let before = push_allows st e.Typedtree.exp_attributes in
    (match e.Typedtree.exp_desc with
     | Typedtree.Texp_ident (path, lid, _) ->
       let loc = lid.Location.loc in
       check_ident st ~loc path;
       check_poly_compare st ~loc path e.Typedtree.exp_type
     | Typedtree.Texp_constant (Asttypes.Const_float lit) ->
       emit st Rules.Exact_arith ~loc:e.Typedtree.exp_loc
         (Printf.sprintf "float literal %s in an exact decide path: use Rat/Bignum" lit)
     | _ -> ());
    st.expr_depth <- st.expr_depth + 1;
    Tast_iterator.default_iterator.Tast_iterator.expr sub e;
    st.expr_depth <- st.expr_depth - 1;
    pop_allows st before
  in
  let value_binding sub (vb : Typedtree.value_binding) =
    let before = push_allows st vb.Typedtree.vb_attributes in
    check_value_binding st vb;
    Tast_iterator.default_iterator.Tast_iterator.value_binding sub vb;
    pop_allows st before
  in
  let structure sub (str : Typedtree.structure) =
    let before = st.allows in
    List.iter
      (fun (item : Typedtree.structure_item) ->
        (match item.Typedtree.str_desc with
         | Typedtree.Tstr_attribute attr -> (
           match parse_allow attr with
           | Not_relevant -> ()
           | Malformed { loc; reason } -> meta_error st ~loc reason
           | Allow { rule; justification = _; loc } ->
             st.allows <- { f_rule = rule; f_loc = loc; f_used = false } :: st.allows)
         | _ -> ());
        Tast_iterator.default_iterator.Tast_iterator.structure_item sub item)
      str.Typedtree.str_items;
    pop_allows st before
  in
  { Tast_iterator.default_iterator with Tast_iterator.expr; value_binding; structure }

let run_cmt ~rules path =
  match Cmt_format.read_cmt path with
  | exception Sys_error msg -> Error msg
  | exception Cmi_format.Error _ -> Error (path ^ ": not a valid cmt file")
  | exception Cmt_format.Error _ -> Error (path ^ ": not a valid cmt file")
  | exception Failure msg -> Error (path ^ ": " ^ msg)
  | exception End_of_file -> Error (path ^ ": truncated cmt file")
  | info -> (
    let modname = info.Cmt_format.cmt_modname in
    let file = match info.Cmt_format.cmt_sourcefile with Some f -> f | None -> path in
    match info.Cmt_format.cmt_annots with
    | Cmt_format.Implementation str ->
      let st =
        {
          enabled = rules;
          file;
          mod_components = components modname;
          tags = collect_tags str;
          allows = [];
          expr_depth = 0;
          acc = [];
        }
      in
      let iter = make_iterator st in
      iter.Tast_iterator.structure iter str;
      Ok { file; modname; findings = List.sort_uniq Finding.compare st.acc }
    | _ -> Ok { file; modname; findings = [] })
