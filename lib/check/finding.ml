type t = {
  severity : Audit.Diagnostic.severity;
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

let error ~rule ~file ~line ~col message =
  { severity = Audit.Diagnostic.Error; rule; file; line; col; message }

let warning ~rule ~file ~line ~col message =
  { severity = Audit.Diagnostic.Warning; rule; file; line; col; message }

(* file, then position, then rule/message: the output order is a
   deterministic function of the tree, never of cmt read order *)
let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let is_error t = match t.severity with Audit.Diagnostic.Error -> true | _ -> false
let is_warning t = match t.severity with Audit.Diagnostic.Warning -> true | _ -> false

let pp fmt t =
  Format.fprintf fmt "%s:%d:%d: %s[%s]: %s" t.file t.line t.col
    (Audit.Diagnostic.severity_name t.severity)
    t.rule t.message

let to_json t =
  Core.Json.Obj
    [
      ("col", Core.Json.Int t.col);
      ("file", Core.Json.String t.file);
      ("line", Core.Json.Int t.line);
      ("message", Core.Json.String t.message);
      ("rule", Core.Json.String t.rule);
      ("severity", Core.Json.String (Audit.Diagnostic.severity_name t.severity));
    ]
