(** Top-level [check-src] driver: input resolution, aggregation over
    many cmts, rendering, and the exit-code policy shared with the CLI
    and the [@check-src] alias. *)

type report = { findings : Finding.t list; modules : int }

val run : ?rules:Rules.rule list -> string list -> (report, string) result
(** [run paths] analyzes every cmt reachable from [paths].  A path is a
    [.cmt] file, a directory scanned recursively, or a source directory
    resolved through its [_build/default] mirror.  [rules] defaults to
    {!Rules.all}.  [Error] means an unusable input (exit 3 territory),
    not a finding. *)

val errors : report -> int
val warnings : report -> int

val clean : ?strict:bool -> report -> bool
(** No errors; with [strict], no warnings either. *)

val exit_code : ?strict:bool -> report -> int
(** [0] when {!clean}, [1] otherwise.  (The CLI reserves [3] for
    unusable inputs, matching [redf metrics-diff].) *)

val pp : Format.formatter -> report -> unit
(** Findings one per line, then a summary line. *)

val schema_version : int

val to_json : report -> Core.Json.t
(** The report as canonical JSON: [schema_version], [kind]
    ["check-src"], [clean], error/warning counts, module count and the
    location-sorted findings. *)
