(** The [redf check-src] policy: the four rule families, the module
    scopes each one covers, and the deny/safe lists the analysis
    matches against.

    Scope is a function of the workspace-relative source path recorded
    in the cmt (e.g. [lib/core/dp.ml]) extended by in-source module
    tags: a floating [[\@\@\@redf.det]], [[\@\@\@redf.domain_shared]] or
    [[\@\@\@redf.exact]] opts the module into the corresponding rule
    regardless of its path (fixture modules use this). *)

type rule = Det_purity | Domain_safety | Exact_arith | Poly_compare

val all : rule list
val name : rule -> string
val of_name : string -> rule option
(** Case-insensitive kebab-case lookup, e.g. ["det-purity"]. *)

val describe : rule -> string
(** One-line statement of the invariant the rule enforces. *)

val tag_of_attribute : string -> rule option
(** [tag_of_attribute "redf.det"] is [Some Det_purity], etc. *)

val in_scope : rule -> file:string -> tags:rule list -> bool
(** Does [rule] apply to the module compiled from [file]?  [tags] are
    the module's in-source tags. *)

val det_denied_idents : (string * string) list
(** Normalized full identifier path, and why it is nondeterministic. *)

val exact_denied_idents : (string * string) list

val ordered_types : (string * string) list
(** Fully-qualified normalized type-constructor paths carrying a custom
    ordering, and the monomorphic alternative to suggest. *)

val poly_compare_idents : string list
(** The polymorphic comparison functions whose instantiations are
    inspected (for {!Poly_compare} and the float case of
    {!Exact_arith}). *)

val mutable_type_heads : string list
val safe_type_heads : string list
