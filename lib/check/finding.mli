(** One static-analysis finding with a precise source location.

    Severities are shared with the taskset linter
    ({!Audit.Diagnostic.severity}) so downstream tooling sees one
    vocabulary across [redf lint], [redf audit] and [redf check-src]. *)

type t = {
  severity : Audit.Diagnostic.severity;
  rule : string;  (** stable kebab-case rule identifier, see {!Rules} *)
  file : string;  (** workspace-relative source path, e.g. [lib/core/dp.ml] *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler diagnostics *)
  message : string;
}

val error : rule:string -> file:string -> line:int -> col:int -> string -> t
val warning : rule:string -> file:string -> line:int -> col:int -> string -> t

val compare : t -> t -> int
(** Total order: file, line, column, rule, message. *)

val is_error : t -> bool
val is_warning : t -> bool

val pp : Format.formatter -> t -> unit
(** Compiler style: [lib/obs/obs.ml:55:2: error[det-purity]: ...]. *)

val to_json : t -> Core.Json.t
