(** The analysis service wire format: line-oriented JSON.

    One request per line, one response line per request, in request
    order, so clients can pipeline arbitrarily deep.  The same schema
    is served over stdin/stdout and over a Unix-domain socket, and the
    verdict payload is exactly what [redf analyze --format json] emits
    ({!Core.Report.verdict_json}) — CLI and server outputs are
    interchangeable.

    Request:
    {v {"analyzer":"GN2","fpga_area":10,
        "tasks":[{"name":"tau1","C":"1.26","D":"7","T":"7","A":9},…],
        "id":…}                                                      v}
    [analyzer] is a registry name ({!Core.Analyzer.of_name},
    case-insensitive); [C]/[D]/[T] are decimal strings (or bare
    integers) of time units; [name] is optional; [id] is an optional
    integer or string echoed verbatim in the response.

    Success response ([kind = "verdict"]):
    {v {"schema_version":1,"kind":"verdict","fpga_area":10,
        "analyzer":"GN2","analyzer_version":"1","accepted":true,
        "checks":[…],"id":…}                                         v}

    Error response ([kind = "error"], the request's [id] echoed when it
    could be recovered):
    {v {"schema_version":1,"kind":"error","error":"…","id":…}        v} *)

type request = {
  id : Core.Json.t option;  (** echoed verbatim; [Int] or [String] *)
  analyzer : Core.Analyzer.t;
  fpga_area : int;
  taskset : Model.Taskset.t;
}

val parse : string -> (request, Core.Json.t option * string) result
(** Parse one request line.  The error carries the request [id] when
    the line was well-formed enough to recover it, so even a rejected
    request can be correlated by a pipelining client. *)

val response : request -> Core.Verdict.t -> string
(** The success response line (no trailing newline). *)

val envelope : ?id:Core.Json.t -> string -> (string * Core.Json.t) list -> string
(** [envelope ?id kind fields]: a response line with the standard
    [schema_version]/[kind] (and optional echoed [id]) preamble —
    the shared frame for every service speaking this wire format,
    including the admission daemon's [kind = "admit"] replies. *)

val error_response : ?id:Core.Json.t -> string -> string
(** The error response line (no trailing newline). *)

val request_id : string -> Core.Json.t option
(** Best-effort [id] recovery from a raw request line (well-formed JSON
    object with an [Int]/[String] [id]) — lets a response be correlated
    without fully parsing the request. *)

val shed_response : string -> string
(** The load-shedding error line for a request the server refused to
    admit ([error = "server overloaded: request shed"]), with the
    request's [id] echoed when recoverable.  Shedding answers instead
    of silently dropping: a pipelining client still gets one response
    line per request line, in order. *)

val request_line : analyzer:string -> fpga_area:int -> ?id:Core.Json.t -> Model.Taskset.t -> string
(** Serialize a request (no trailing newline) — the inverse of
    {!parse}; used by [redf batch]'s client mode and the tests. *)
