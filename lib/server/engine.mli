(** The request-serving engine behind [redf serve] and [redf batch].

    One engine owns the process-wide verdict cache ({!Cache.Verdicts},
    sharded — see [shards] below) and a {!Parallel.Pool} of worker
    domains; every front end — the stdin/stdout loop, the multi-client
    event loop ({!Loop}), an in-process batch — funnels through
    {!handle_line}, so they all share the cache and return identical
    bytes for identical requests.

    Contracts:
    - {e isolation}: {!handle_line} never raises — a malformed or
      crashing request yields an error-response line, the process (and
      the other requests of the batch) continue;
    - {e determinism}: responses are written in request order and their
      bytes are independent of the worker count, the shard count and
      cache state (cached answers are remapped to the request's task
      order, see {!Cache.Verdicts});
    - {e framing}: request framing — the line-byte cap, the
      partial-line timeout, and the rule that framing errors never
      swallow the well-formed requests around them — is {!Framing}'s;
      both serve loops consume its items through {!plan};
    - {e graceful drain}: after {!request_stop} (or SIGINT/SIGTERM once
      {!install_stop_signals} ran) the serve loops finish answering
      every complete request line already received, then return, so a
      supervisor's TERM never loses an in-flight answer. *)

type t

val create : ?cache_size:int -> ?shards:int -> jobs:int -> unit -> t
(** [cache_size] (default 4096 entries; 0 disables caching) bounds the
    verdict LRU, split over [shards] (default 8) independently locked
    shards so worker domains don't serialize on one cache mutex; [jobs]
    follows the CLI convention (resolved via {!Parallel.resolve_jobs}:
    0 = one worker per core).
    @raise Invalid_argument when [cache_size < 0] or [shards < 1]. *)

val shutdown : t -> unit
(** Join the worker domains.  The engine must not be used afterwards. *)

val with_engine : ?cache_size:int -> ?shards:int -> jobs:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception). *)

val cache_stats : t -> Cache.Lru.stats

val request_stop : t -> unit
val stop_requested : t -> bool

val install_stop_signals : t -> unit
(** Route SIGINT and SIGTERM to {!request_stop} and ignore SIGPIPE (a
    vanished client must not kill the server). *)

val handle_line : t -> string -> string
(** One request line to one response line (no newline).  Never raises. *)

val handle_lines : t -> string array -> string array
(** Fan a batch out over the pool; responses in request order,
    byte-identical to mapping {!handle_line}.  Internally the batch is
    parsed in parallel, grouped by (analyzer, version, device area) and
    decided through {!Cache.Verdicts.decide_all}, so duplicate tasksets
    in a batch cost one decision and the columnar analyzers amortize
    their per-taskset setup. *)

(** {2 Framing items to responses}

    Both serve loops share this mapping, so a dropped request is
    answered with byte-identical error lines whether it arrived over
    stdio, a Unix socket or TCP. *)

val too_large_message : string
val timeout_message : string

type step =
  | Eval of string  (** a request line, to be answered by {!handle_line} *)
  | Emit of string  (** a pre-formed response line (framing error, shed) *)

val plan : Framing.item list -> step list
(** Map framed items to steps, in order: [Line] → [Eval]; [Too_large] /
    [Timed_out] → the matching [Emit] error response (and the matching
    counters).  Order is the response-order contract: an [Emit] for a
    dropped line sits exactly where that line sat in the request
    stream. *)

val serve : t -> ?timeout:float -> input:Unix.file_descr -> output:Unix.file_descr -> unit -> unit
(** Serve line-oriented requests until EOF or {!request_stop}.  Lines
    are batched by arrival (whatever is buffered is evaluated as one
    pool batch), blank lines are ignored, and a line longer than 16 MiB
    — whether terminated or a still-growing partial — is answered with
    an error and discarded, without losing the complete lines received
    alongside it.  [timeout] (seconds) bounds the wait for the rest of
    a {e partially} received request line, measured from when the
    partial {e started} (trickling more bytes does not extend it); on
    expiry the partial input is dropped and an error response is
    emitted.  An idle connection with no partial request never times
    out. *)

val client_roundtrip_addr :
  addr:Unix.sockaddr -> string array -> (string array, string) result
(** Connect to a server at [addr] (Unix-domain or TCP; TCP connections
    set [TCP_NODELAY]), pipeline all request lines, and collect the
    response lines (request order).  Interleaves writing and reading,
    so arbitrarily large batches cannot deadlock on socket buffers. *)

val client_roundtrip : path:string -> string array -> (string array, string) result
(** {!client_roundtrip_addr} over [ADDR_UNIX path] — the client side
    used by [redf batch --connect]. *)

val client_roundtrip_retry :
  addr:Unix.sockaddr ->
  ?retries:int ->
  ?backoff_ms:int ->
  ?seed:int ->
  string array ->
  (string array, string) result
(** {!client_roundtrip_addr} with resume-on-reconnect: responses come
    back one per request in order, so after a lost connection (connect
    refused, or fewer responses than requests) only the unanswered
    {e suffix} is re-sent — up to [retries] times, with exponential
    backoff from [backoff_ms] and deterministic jitter ([seed]).
    Requests already answered are never repeated on the wire; re-sent
    mutations rely on the admission daemon's request-id dedup for
    exactly-once effect. *)

val client_hold :
  addr:Unix.sockaddr ->
  hold:float ->
  string array ->
  (string array * [ `Closed_by_server | `Hold_expired ], string) result
(** Pipeline [lines], then keep the connection open and idle (send side
    deliberately {e not} shut down) until the server closes it or
    [hold] seconds pass — the probe for [serve --idle-timeout]. *)
