(** The request-serving engine behind [redf serve] and [redf batch].

    One engine owns the process-wide verdict cache ({!Cache.Verdicts})
    and a {!Parallel.Pool} of worker domains; every front end — the
    stdin/stdout loop, the Unix-domain-socket loop, an in-process batch
    — funnels through {!handle_line}, so they all share the cache and
    return identical bytes for identical requests.

    Contracts:
    - {e isolation}: {!handle_line} never raises — a malformed or
      crashing request yields an error-response line, the process (and
      the other requests of the batch) continue;
    - {e determinism}: responses are written in request order and their
      bytes are independent of the worker count and of cache state
      (cached answers are remapped to the request's task order, see
      {!Cache.Verdicts});
    - {e graceful drain}: after {!request_stop} (or SIGINT/SIGTERM once
      {!install_stop_signals} ran) the serve loops finish answering
      every complete request line already received, then return, so a
      supervisor's TERM never loses an in-flight answer. *)

type t

val create : ?cache_size:int -> jobs:int -> unit -> t
(** [cache_size] (default 4096 entries; 0 disables caching) bounds the
    verdict LRU; [jobs] follows the CLI convention (resolved via
    {!Parallel.resolve_jobs}: 0 = one worker per core).
    @raise Invalid_argument when [cache_size < 0]. *)

val shutdown : t -> unit
(** Join the worker domains.  The engine must not be used afterwards. *)

val with_engine : ?cache_size:int -> jobs:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception). *)

val cache_stats : t -> Cache.Lru.stats

val request_stop : t -> unit
val stop_requested : t -> bool

val install_stop_signals : t -> unit
(** Route SIGINT and SIGTERM to {!request_stop} and ignore SIGPIPE (a
    vanished client must not kill the server). *)

val handle_line : t -> string -> string
(** One request line to one response line (no newline).  Never raises. *)

val handle_lines : t -> string array -> string array
(** Fan a batch out over the pool; responses in request order. *)

val serve : t -> ?timeout:float -> input:Unix.file_descr -> output:Unix.file_descr -> unit -> unit
(** Serve line-oriented requests until EOF or {!request_stop}.  Lines
    are batched by arrival (whatever is buffered is evaluated as one
    pool batch), blank lines are ignored, and a line longer than 16 MiB
    is answered with an error and discarded.  [timeout] (seconds)
    bounds the wait for the rest of a {e partially} received request
    line; on expiry the partial input is dropped and an error response
    is emitted.  An idle connection with no partial request never times
    out. *)

val serve_socket : t -> ?timeout:float -> path:string -> unit -> unit
(** Listen on a Unix-domain socket, serving one connection at a time
    with {!serve} until {!request_stop}.  A stale socket file at [path]
    is replaced; any other kind of file is an error.  The socket file
    is removed on return.
    @raise Unix.Unix_error / Failure on bind/listen problems. *)

val client_roundtrip : path:string -> string array -> (string array, string) result
(** Connect to a {!serve_socket} server, pipeline all request lines,
    and collect the response lines (request order) — the client side
    used by [redf batch --connect].  Interleaves writing and reading,
    so arbitrarily large batches cannot deadlock on pipe buffers. *)
