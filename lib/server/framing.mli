(** Per-connection line framing: the connection state machine behind
    both the stdio serve loop ({!Engine.serve}) and the multi-client
    event loop ({!Loop}).

    A framer turns an arbitrary sequence of byte chunks into an ordered
    sequence of {!item}s, enforcing the request-line byte cap and the
    partial-line timeout.  It is pure with respect to the clock — every
    time-dependent entry point takes [now] explicitly — so the framing
    semantics are unit-testable without sleeping.

    Contracts (each fixing a historical serve-loop bug):
    - {e order}: complete lines extracted from a chunk are emitted, in
      arrival order, {e before} any [Too_large] produced by the trailing
      partial of the same chunk — a framing error never swallows the
      well-formed requests that preceded it;
    - {e cap}: [max_line_bytes] applies to complete lines too, not just
      to unterminated partials — an over-cap line that arrives fully
      terminated in one chunk is reported [Too_large], never emitted as
      a [Line];
    - {e deadline}: the partial-line deadline is armed once, when the
      partial {e starts}, and is cleared only when the line completes or
      is dropped — later chunks of the same line never push it back, so
      a client trickling one byte per interval cannot hold a connection
      open forever.

    After a line is dropped ([Too_large] while unterminated, or
    [Timed_out]), the remaining bytes of that line are discarded up to
    and including its terminating newline; they produce no further
    items. *)

type item =
  | Line of string
      (** A complete, non-blank request line within the cap (newline
          stripped). *)
  | Too_large of int
      (** A line exceeded [max_line_bytes]; the payload is the size
          observed when the cap tripped.  Emitted exactly once per
          over-cap line. *)
  | Timed_out
      (** The pending partial line was dropped because its deadline
          expired ({!check_deadline}). *)

type t

val default_max_line_bytes : int
(** 16 MiB — the service-wide request-line cap. *)

val create : ?max_line_bytes:int -> ?timeout:float -> unit -> t
(** [max_line_bytes] defaults to {!default_max_line_bytes};
    [timeout] (seconds) bounds the wait for the rest of a partially
    received line — omitted means partials never expire. *)

val feed : t -> now:float -> string -> item list
(** Process one received chunk; returns the items it completes, in
    arrival order.  Arms the deadline ([now + timeout]) iff the chunk
    leaves a {e new} trailing partial. *)

val finish : t -> item list
(** End of input: the trailing unterminated line, if any and non-blank,
    is the final request.  Resets the framer. *)

val check_deadline : t -> now:float -> item list
(** [[Timed_out]] if a partial is pending and its deadline has passed
    (the partial is dropped); [[]] otherwise. *)

val deadline : t -> float option
(** The armed deadline, when a partial is pending and [timeout] was
    given — what a select loop should wake up by. *)

val has_partial : t -> bool
(** Whether bytes of an incomplete line (or of a line being discarded)
    are pending. *)
