type limits = { max_pending : int; max_inflight : int; max_buffered_bytes : int }

let default_limits = { max_pending = 1024; max_inflight = 4096; max_buffered_bytes = 8 * 1024 * 1024 }

(* connection and shed counts depend on arrival timing *)
let m_connections = Obs.Counter.make ~det:false "server.connections"
let m_active = Obs.Gauge.make "server.active_connections"
let m_shed = Obs.Counter.make ~det:false "server.shed"

(* --- listeners --- *)

type listener = { lfd : Unix.file_descr; tcp : bool; cleanup : unit -> unit }

let remove_stale_socket path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> failwith (path ^ ": exists and is not a socket; refusing to replace it")
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let unix_listener ~path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec sock;
  Unix.set_nonblock sock;
  remove_stale_socket path;
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 64;
  {
    lfd = sock;
    tcp = false;
    cleanup =
      (fun () ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        try Unix.unlink path with Unix.Unix_error _ -> ());
  }

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ ->
    if String.lowercase_ascii host = "localhost" then Unix.inet_addr_loopback
    else failwith (host ^ ": expected a numeric IP address or \"localhost\"")

let tcp_listener ~host ~port =
  let inet = resolve_host host in
  let domain = if Unix.is_inet6_addr inet then Unix.PF_INET6 else Unix.PF_INET in
  let sock = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec sock;
  Unix.set_nonblock sock;
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (inet, port));
  Unix.listen sock 64;
  { lfd = sock; tcp = true; cleanup = (fun () -> try Unix.close sock with Unix.Unix_error _ -> ()) }

let bound_port l =
  match Unix.getsockname l.lfd with
  | Unix.ADDR_INET (_, port) -> port
  | _ -> invalid_arg "Loop.bound_port: not a TCP listener"

(* --- services --- *)

(* what the loop needs to know about the thing it serves: the analysis
   engine and the admission daemon both fit this shape *)
type service = {
  handle_lines : string array -> string array;  (* request order, one reply each *)
  stop_requested : unit -> bool;
  shed_response : string -> string;
  is_mutation : string -> bool;
      (* mutation lines get 2x [max_inflight] headroom before shedding:
         under overload the daemon keeps admitting while what-if/query
         traffic is shed first *)
}

let engine_service engine =
  {
    handle_lines = (fun lines -> Engine.handle_lines engine lines);
    stop_requested = (fun () -> Engine.stop_requested engine);
    shed_response = Protocol.shed_response;
    is_mutation = (fun _ -> false);
  }

(* --- connections --- *)

type conn = {
  fd : Unix.file_descr;
  framing : Framing.t;
  steps : Engine.step Queue.t;  (* pending work, in arrival order *)
  mutable queued : int;  (* Eval steps among [steps] (read-eligibility bound) *)
  mutable pending : string;  (* response bytes being written *)
  mutable pending_off : int;
  out : Buffer.t;  (* response bytes queued behind [pending] *)
  mutable input_closed : bool;  (* EOF seen, or draining: no more reads *)
  mutable dead : bool;  (* fatal I/O error: close without flushing *)
  mutable last_activity : float;  (* last read progress or write progress *)
}

let buffered_bytes c = String.length c.pending - c.pending_off + Buffer.length c.out
let finished c = c.dead || (c.input_closed && Queue.is_empty c.steps && buffered_bytes c = 0)

let flush c =
  let rec go () =
    if c.pending_off >= String.length c.pending then begin
      if Buffer.length c.out > 0 then begin
        c.pending <- Buffer.contents c.out;
        c.pending_off <- 0;
        Buffer.clear c.out;
        go ()
      end
    end
    else
      match
        Unix.write_substring c.fd c.pending c.pending_off (String.length c.pending - c.pending_off)
      with
      | n ->
        c.pending_off <- c.pending_off + n;
        if n > 0 then c.last_activity <- Unix.gettimeofday ();
        go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (_, _, _) -> c.dead <- true
  in
  if not c.dead then go ()

(* --- the loop --- *)

let serve_service service ?timeout ?idle_timeout ?(limits = default_limits) listeners =
  (* a client vanishing mid-write must cost its connection, not the
     process: flush/read map EPIPE/ECONNRESET to [dead], but only if
     the SIGPIPE the failed write raises first doesn't kill us *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let conns = ref [] in (* newest first; batch composition only, never per-conn bytes *)
  let inflight = ref 0 in (* admitted Eval steps not yet answered, across conns *)
  let chunk = Bytes.create 65536 in
  let enqueue c items =
    List.iter
      (fun step ->
        match step with
        | Engine.Eval line
          when !inflight
               >= (if service.is_mutation line then 2 * limits.max_inflight
                   else limits.max_inflight) ->
          Obs.Counter.incr m_shed;
          Queue.add (Engine.Emit (service.shed_response line)) c.steps
        | Engine.Eval _ as step ->
          incr inflight;
          c.queued <- c.queued + 1;
          Queue.add step c.steps
        | Engine.Emit _ as step -> Queue.add step c.steps)
      (Engine.plan items)
  in
  let accept_ready l =
    let rec go () =
      match Unix.accept ~cloexec:true l.lfd with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (_, _, _) -> ()
      | fd, _ ->
        Unix.set_nonblock fd;
        if l.tcp then (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        Obs.Counter.incr m_connections;
        conns :=
          {
            fd;
            framing = Framing.create ?timeout ();
            steps = Queue.create ();
            queued = 0;
            pending = "";
            pending_off = 0;
            out = Buffer.create 1024;
            input_closed = false;
            dead = false;
            last_activity = Unix.gettimeofday ();
          }
          :: !conns;
        Obs.Gauge.set m_active (List.length !conns);
        go ()
    in
    go ()
  in
  let read_conn c =
    match Unix.read c.fd chunk 0 (Bytes.length chunk) with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> c.dead <- true
    | 0 ->
      c.input_closed <- true;
      enqueue c (Framing.finish c.framing)
    | n ->
      let now = Unix.gettimeofday () in
      c.last_activity <- now;
      enqueue c (Framing.feed c.framing ~now (Bytes.sub_string chunk 0 n))
  in
  (* evaluate this tick's ready steps of all connections as one pool
     batch, stitching responses back per connection in arrival order *)
  let evaluate () =
    let popped =
      List.filter_map
        (fun c ->
          if Queue.is_empty c.steps then None
          else begin
            let steps = ref [] in
            let evals = ref 0 in
            while (not (Queue.is_empty c.steps)) && !evals < limits.max_pending do
              let s = Queue.pop c.steps in
              (match s with Engine.Eval _ -> incr evals | Engine.Emit _ -> ());
              steps := s :: !steps
            done;
            Some (c, List.rev !steps)
          end)
        (List.rev !conns)
    in
    let batch = ref [] in
    List.iter
      (fun (_, steps) ->
        List.iter
          (function Engine.Eval line -> batch := line :: !batch | Engine.Emit _ -> ())
          steps)
      popped;
    let responses =
      match Array.of_list (List.rev !batch) with
      | [||] -> [||]
      | batch -> service.handle_lines batch
    in
    let idx = ref 0 in
    List.iter
      (fun (c, steps) ->
        List.iter
          (fun s ->
            let response =
              match s with
              | Engine.Eval _ ->
                let r = responses.(!idx) in
                incr idx;
                decr inflight;
                c.queued <- c.queued - 1;
                r
              | Engine.Emit r -> r
            in
            Buffer.add_string c.out response;
            Buffer.add_char c.out '\n')
          steps)
      popped
  in
  (* an idle connection holds an fd (and, against a finite [select]
     set, a seat) forever; with [--idle-timeout] the loop closes any
     connection that has been completely quiet — nothing read, nothing
     queued, nothing left to write — for longer than the limit.
     Checked once per tick, so the effective timeout is [idle_timeout]
     plus up to one tick (<= 0.5 s). *)
  let kill_idle now =
    match idle_timeout with
    | None -> ()
    | Some limit ->
      List.iter
        (fun c ->
          if
            (not c.dead) && (not c.input_closed)
            && Queue.is_empty c.steps
            && buffered_bytes c = 0
            && now -. c.last_activity > limit
          then c.dead <- true)
        !conns
  in
  let reap () =
    let gone, live = List.partition finished !conns in
    if gone <> [] then begin
      List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) gone;
      conns := live;
      Obs.Gauge.set m_active (List.length live)
    end
  in
  let readable_conn c =
    (not c.dead) && (not c.input_closed) && c.queued < limits.max_pending
    && buffered_bytes c <= limits.max_buffered_bytes
  in
  let rec loop () =
    if not (service.stop_requested ()) then begin
      let now = Unix.gettimeofday () in
      let tick =
        if List.exists (fun c -> not (Queue.is_empty c.steps)) !conns then 0.0
        else
          List.fold_left
            (fun acc c ->
              match Framing.deadline c.framing with
              | None -> acc
              | Some d -> Float.min acc (Float.max 0.0 (d -. now)))
            0.5 !conns
      in
      let listener_fds = List.map (fun l -> l.lfd) listeners in
      let read_fds =
        listener_fds @ List.filter_map (fun c -> if readable_conn c then Some c.fd else None) !conns
      in
      let write_fds =
        List.filter_map (fun c -> if (not c.dead) && buffered_bytes c > 0 then Some c.fd else None) !conns
      in
      (match Unix.select read_fds write_fds [] tick with
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | readable, writable, _ ->
         List.iter (fun l -> if List.memq l.lfd readable then accept_ready l) listeners;
         List.iter (fun c -> if List.memq c.fd readable then read_conn c) !conns;
         let now = Unix.gettimeofday () in
         List.iter
           (fun c -> if not c.dead then enqueue c (Framing.check_deadline c.framing ~now))
           !conns;
         evaluate ();
         List.iter
           (fun c -> if List.memq c.fd writable || buffered_bytes c > 0 then flush c)
           !conns;
         kill_idle (Unix.gettimeofday ());
         reap ());
      loop ()
    end
  in
  let drain () =
    (* answer everything already framed; partial lines are dropped *)
    List.iter (fun c -> c.input_closed <- true) !conns;
    while List.exists (fun c -> not (Queue.is_empty c.steps)) !conns do
      evaluate ()
    done;
    let flush_by = Unix.gettimeofday () +. 5.0 in
    let rec flush_all () =
      List.iter flush !conns;
      let blocked = List.filter (fun c -> (not c.dead) && buffered_bytes c > 0) !conns in
      if blocked <> [] && Unix.gettimeofday () < flush_by then begin
        (match Unix.select [] (List.map (fun c -> c.fd) blocked) [] 0.1 with
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
         | _ -> ());
        flush_all ()
      end
    in
    flush_all ();
    List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !conns;
    conns := [];
    Obs.Gauge.set m_active 0
  in
  Fun.protect
    ~finally:(fun () ->
      drain ();
      List.iter (fun l -> l.cleanup ()) listeners)
    loop

let serve engine ?timeout ?idle_timeout ?limits listeners =
  serve_service (engine_service engine) ?timeout ?idle_timeout ?limits listeners
