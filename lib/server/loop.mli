(** The multi-client event loop behind [redf serve --socket/--listen]:
    one [select]-driven thread multiplexing any number of concurrent
    connections over any number of listeners (Unix-domain and TCP),
    with the request evaluation itself fanned out over the engine's
    worker pool.

    Shape: each connection carries a {!Framing.t} (so the byte-cap /
    timeout / order contracts are per connection), an ordered queue of
    pending steps ({!Engine.step}), and an output buffer drained
    through its non-blocking fd.  Each tick, the loop accepts, reads
    whatever is available, frames it, and evaluates the ready request
    lines of {e all} connections as one {!Engine.handle_lines} pool
    batch, stitching the responses back per connection in arrival
    order.

    Determinism contract: per connection, the response stream is
    byte-identical to what the serial stdio loop would produce for the
    same request lines — batching across connections changes wall-clock
    only, never bytes.  ([redf bench-serve] checks exactly this.)

    Backpressure and load shedding:
    - a connection whose pending-step queue reaches [max_pending], or
      whose unsent output exceeds [max_buffered_bytes], stops being
      read until it drains — per-client flow control that costs the
      other clients nothing;
    - once [max_inflight] request lines are admitted globally, further
      lines are {e shed}: answered immediately (in order) with
      {!Protocol.shed_response} instead of being queued.  Shedding
      keeps the one-response-per-request contract — an overloaded
      server degrades loudly, it does not stall or drop silently.

    Graceful drain: after {!Engine.request_stop}, every request line
    already received is answered and flushed (bounded by a few
    seconds for unresponsive clients), partial lines are dropped, all
    fds are closed and socket files removed. *)

type limits = {
  max_pending : int;
      (** Per-connection bound on queued steps before the connection
          stops being read (also the per-tick evaluation allowance per
          connection).  Default 1024. *)
  max_inflight : int;
      (** Global bound on admitted-but-unanswered request lines; lines
          beyond it are shed.  Default 4096. *)
  max_buffered_bytes : int;
      (** Per-connection bound on unsent response bytes before the
          connection stops being read.  Default 8 MiB. *)
}

val default_limits : limits

type listener

val unix_listener : path:string -> listener
(** Bind and listen on a Unix-domain socket.  A stale socket file at
    [path] is replaced; any other kind of file is an error.  The socket
    file is removed when {!serve} returns.
    @raise Unix.Unix_error / Failure on bind/listen problems. *)

val tcp_listener : host:string -> port:int -> listener
(** Bind and listen on TCP [host:port].  [host] is a numeric IPv4/IPv6
    address or ["localhost"]; [port = 0] picks an ephemeral port
    (recover it with {!bound_port}).
    @raise Unix.Unix_error / Failure on resolve/bind/listen problems. *)

val bound_port : listener -> int
(** The actually bound TCP port (useful after [port = 0]).
    @raise Invalid_argument on a Unix-domain listener. *)

type service = {
  handle_lines : string array -> string array;
      (** One response per request line, in request order.  Called on
          the loop's own domain; a service wanting parallelism brings
          its own pool (as {!Engine.handle_lines} does). *)
  stop_requested : unit -> bool;
  shed_response : string -> string;
  is_mutation : string -> bool;
      (** Lines for which shedding is deferred to [2 * max_inflight]:
          under overload the admission daemon keeps accepting
          mutations while read-only traffic is shed first. *)
}
(** What the loop needs to know about the thing it serves — the
    analysis engine ([redf serve]) and the admission daemon
    ([redf admit]) both fit. *)

val engine_service : Engine.t -> service

val serve_service :
  service -> ?timeout:float -> ?idle_timeout:float -> ?limits:limits -> listener list -> unit
(** Run the event loop over [listeners] until [stop_requested], then
    drain and clean the listeners up (also on exception).  [timeout]
    is the per-connection partial-line deadline, as for
    {!Engine.serve}.  [idle_timeout] (seconds; default: off) closes a
    connection that stayed completely idle — nothing read, queued or
    unwritten — for longer than the limit (granularity: one loop tick,
    up to 0.5 s).  SIGPIPE is ignored for the process: a client that
    vanishes mid-write costs its connection, never the loop. *)

val serve : Engine.t -> ?timeout:float -> ?idle_timeout:float -> ?limits:limits -> listener list -> unit
(** [serve_service (engine_service engine) …]. *)
