type t = {
  cache : Cache.Verdicts.t;
  pool : Parallel.Pool.t;
  stop : bool Atomic.t;
}

(* request/error totals are functions of the input stream alone;
   batching and timeout counts depend on arrival timing *)
let m_requests = Obs.Counter.make "server.requests"
let m_errors = Obs.Counter.make "server.errors"
let m_batches = Obs.Counter.make ~det:false "server.batches"
let m_timeouts = Obs.Counter.make ~det:false "server.timeouts"
let request_timer = Obs.Timer.make "server.request"

let create ?(cache_size = 4096) ?(shards = 8) ~jobs () =
  {
    cache = Cache.Verdicts.create ~shards ~capacity:cache_size ();
    pool = Parallel.Pool.create ~jobs:(Parallel.resolve_jobs jobs);
    stop = Atomic.make false;
  }

let shutdown t = Parallel.Pool.shutdown t.pool

let with_engine ?cache_size ?shards ~jobs f =
  let t = create ?cache_size ?shards ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let cache_stats t = Cache.Verdicts.stats t.cache
let request_stop t = Atomic.set t.stop true
let stop_requested t = Atomic.get t.stop

let install_stop_signals t =
  let handle = Sys.Signal_handle (fun _ -> request_stop t) in
  Sys.set_signal Sys.sigint handle;
  Sys.set_signal Sys.sigterm handle;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let handle_line t line =
  Obs.Counter.incr m_requests;
  match Protocol.parse line with
  | Error (id, msg) ->
    Obs.Counter.incr m_errors;
    Protocol.error_response ?id msg
  | Ok req -> (
    match
      Obs.Timer.time request_timer (fun () ->
          Cache.Verdicts.decide t.cache ~analyzer:req.analyzer ~fpga_area:req.fpga_area
            req.Protocol.taskset)
    with
    | verdict -> Protocol.response req verdict
    | exception e ->
      Obs.Counter.incr m_errors;
      Protocol.error_response ?id:req.Protocol.id ("internal error: " ^ Printexc.to_string e))

(* Batches fan out over the analyzers' batch paths: parse in parallel,
   group the well-formed requests by (analyzer name, version, device
   area), split each group into per-worker chunks, and push every chunk
   through Cache.Verdicts.decide_all — so duplicate tasksets inside a
   chunk are decided once and per-taskset setup is amortized.  Response
   bytes and det counter totals are exactly the per-line path's: parse
   errors answer in place, and a chunk whose batch decision raises is
   replayed request-by-request so the failing request alone gets the
   "internal error" response. *)
let handle_lines t lines =
  Obs.Counter.incr m_batches;
  let parsed =
    Parallel.Pool.map t.pool
      (fun line ->
        Obs.Counter.incr m_requests;
        match Protocol.parse line with
        | Error (id, msg) ->
          Obs.Counter.incr m_errors;
          Either.Left (Protocol.error_response ?id msg)
        | Ok req -> Either.Right req)
      lines
  in
  let responses = Array.make (Array.length lines) "" in
  let groups = Hashtbl.create 8 in
  let group_order = ref [] in
  Array.iteri
    (fun i p ->
      match p with
      | Either.Left r -> responses.(i) <- r
      | Either.Right (req : Protocol.request) ->
        let key =
          req.Protocol.analyzer.Core.Analyzer.name ^ "\x00"
          ^ req.Protocol.analyzer.Core.Analyzer.version ^ "\x00"
          ^ string_of_int req.Protocol.fpga_area
        in
        (match Hashtbl.find_opt groups key with
         | Some l -> l := (req, i) :: !l
         | None ->
           Hashtbl.add groups key (ref [ (req, i) ]);
           group_order := key :: !group_order))
    parsed;
  let jobs = max 1 (Parallel.Pool.jobs t.pool) in
  let chunks =
    List.concat_map
      (fun key ->
        let items = Array.of_list (List.rev !(Hashtbl.find groups key)) in
        let g = Array.length items in
        let chunk_size = max 1 ((g + jobs - 1) / jobs) in
        let nchunks = (g + chunk_size - 1) / chunk_size in
        List.init nchunks (fun c ->
            Array.sub items (c * chunk_size) (min chunk_size (g - (c * chunk_size)))))
      (List.rev !group_order)
  in
  let answer_one (req : Protocol.request) =
    match
      Obs.Timer.time request_timer (fun () ->
          Cache.Verdicts.decide t.cache ~analyzer:req.Protocol.analyzer
            ~fpga_area:req.Protocol.fpga_area req.Protocol.taskset)
    with
    | verdict -> Protocol.response req verdict
    | exception e ->
      Obs.Counter.incr m_errors;
      Protocol.error_response ?id:req.Protocol.id ("internal error: " ^ Printexc.to_string e)
  in
  let chunk_results =
    Parallel.Pool.map t.pool
      (fun chunk ->
        let req0, _ = chunk.(0) in
        match
          Obs.Timer.time request_timer (fun () ->
              Cache.Verdicts.decide_all t.cache ~analyzer:req0.Protocol.analyzer
                ~fpga_area:req0.Protocol.fpga_area
                (Array.map (fun ((r : Protocol.request), _) -> r.Protocol.taskset) chunk))
        with
        | verdicts -> Array.mapi (fun j (req, _) -> Protocol.response req verdicts.(j)) chunk
        | exception _ -> Array.map (fun (req, _) -> answer_one req) chunk)
      (Array.of_list chunks)
  in
  List.iteri
    (fun c chunk ->
      Array.iteri (fun j (_, i) -> responses.(i) <- chunk_results.(c).(j)) chunk)
    chunks;
  responses

(* --- framing items to protocol responses --- *)

let too_large_message = "request too large: line exceeds 16 MiB"
let timeout_message = "request timeout: incomplete request line dropped"

type step = Eval of string | Emit of string

let plan items =
  List.map
    (fun (item : Framing.item) ->
      match item with
      | Framing.Line line -> Eval line
      | Framing.Too_large _ ->
        Obs.Counter.incr m_errors;
        Emit (Protocol.error_response too_large_message)
      | Framing.Timed_out ->
        Obs.Counter.incr m_timeouts;
        Emit (Protocol.error_response timeout_message))
    items

let render_steps t buf steps =
  let evals = List.filter_map (function Eval line -> Some line | Emit _ -> None) steps in
  let responses =
    match Array.of_list evals with [||] -> [||] | batch -> handle_lines t batch
  in
  let idx = ref 0 in
  List.iter
    (fun s ->
      let response =
        match s with
        | Eval _ ->
          let r = responses.(!idx) in
          incr idx;
          r
        | Emit r -> r
      in
      Buffer.add_string buf response;
      Buffer.add_char buf '\n')
    steps

(* --- fd plumbing --- *)

let rec write_all fd s off =
  if off < String.length s then begin
    match Unix.write_substring fd s off (String.length s - off) with
    | n -> write_all fd s (off + n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off
  end

let not_blank line = String.trim line <> ""

let serve t ?timeout ~input ~output () =
  let chunk = Bytes.create 65536 in
  let framing = Framing.create ?timeout () in
  let respond items =
    match plan items with
    | [] -> ()
    | steps ->
      let buf = Buffer.create 1024 in
      render_steps t buf steps;
      write_all output (Buffer.contents buf) 0
  in
  let rec loop () =
    if stop_requested t then ()
    else begin
      let tick =
        match Framing.deadline framing with
        | None -> 0.5
        | Some d -> Float.max 0.0 (Float.min 0.5 (d -. Unix.gettimeofday ()))
      in
      match Unix.select [ input ] [] [] tick with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | [], _, _ ->
        respond (Framing.check_deadline framing ~now:(Unix.gettimeofday ()));
        loop ()
      | _ -> (
        match Unix.read input chunk 0 (Bytes.length chunk) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | 0 ->
          (* EOF: an unterminated final line is the stream's last request *)
          respond (Framing.finish framing)
        | n ->
          respond (Framing.feed framing ~now:(Unix.gettimeofday ()) (Bytes.sub_string chunk 0 n));
          respond (Framing.check_deadline framing ~now:(Unix.gettimeofday ()));
          loop ())
    end
  in
  loop ()
(* graceful drain needs no extra work here: complete lines were
   answered as they arrived, and a pending partial is dropped *)

(* --- client (redf batch --connect / bench-serve) --- *)

let string_of_addr = function
  | Unix.ADDR_UNIX path -> path
  | Unix.ADDR_INET (host, port) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr host) port

let client_roundtrip_addr ~addr lines =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let sock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (match addr with
   | Unix.ADDR_INET _ -> (
     (* latency matters more than segment count for request/response *)
     try Unix.setsockopt sock Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
   | _ -> ());
  match Unix.connect sock addr with
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "%s: %s" (string_of_addr addr) (Unix.error_message e))
  | () ->
    Fun.protect
      ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
      (fun () ->
        let payload =
          String.concat "" (Array.to_list (Array.map (fun l -> l ^ "\n") lines))
        in
        let sent = ref 0 in
        let all_sent () = !sent >= String.length payload in
        let received = Buffer.create 4096 in
        let chunk = Bytes.create 65536 in
        let rec pump eof =
          if not eof || not (all_sent ()) then begin
            let want_write = if all_sent () then [] else [ sock ] in
            match Unix.select [ sock ] want_write [] (-1.0) with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> pump eof
            | readable, writable, _ ->
              let eof =
                if readable <> [] then (
                  match Unix.read sock chunk 0 (Bytes.length chunk) with
                  | 0 -> true
                  | n ->
                    Buffer.add_subbytes received chunk 0 n;
                    eof
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> eof)
                else eof
              in
              if writable <> [] && not (all_sent ()) then begin
                (match
                   Unix.write_substring sock payload !sent (String.length payload - !sent)
                 with
                 | n -> sent := !sent + n
                 | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
                if all_sent () then Unix.shutdown sock Unix.SHUTDOWN_SEND
              end;
              pump eof
          end
        in
        (match pump false with
         | () -> ()
         | exception Unix.Unix_error (Unix.EPIPE, _, _) -> ());
        let rec read_rest () =
          match Unix.read sock chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
            Buffer.add_subbytes received chunk 0 n;
            read_rest ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_rest ()
        in
        (try read_rest () with Unix.Unix_error _ -> ());
        let responses =
          String.split_on_char '\n' (Buffer.contents received) |> List.filter not_blank
        in
        Ok (Array.of_list responses))

let client_roundtrip ~path lines = client_roundtrip_addr ~addr:(Unix.ADDR_UNIX path) lines

(* --- resilient client --- *)

(* One response line per request line, in order: if a roundtrip comes
   back short, the prefix of responses is good and exactly the
   unanswered suffix of requests needs re-sending.  Safe against the
   admission daemon because mutations carry request ids and the daemon
   answers a replayed id from its journal instead of re-applying —
   the client-side half of exactly-once. *)
let client_roundtrip_retry ~addr ?(retries = 0) ?(backoff_ms = 50) ?(seed = 1) lines =
  let total = Array.length lines in
  let rng = Rng.create ~seed in
  let answered = ref [] in  (* response arrays, newest first *)
  let answered_count () = List.fold_left (fun n r -> n + Array.length r) 0 !answered in
  let assemble () = Array.concat (List.rev !answered) in
  let rec attempt n =
    let from = answered_count () in
    let remaining = Array.sub lines from (total - from) in
    let short_by outcome =
      match outcome with
      | Error e -> e
      | Ok got -> Printf.sprintf "connection lost after %d of %d responses" (from + Array.length got) total
    in
    let outcome = client_roundtrip_addr ~addr remaining in
    (match outcome with
    | Ok responses when Array.length responses > 0 -> answered := responses :: !answered
    | Ok _ | Error _ -> ());
    if answered_count () >= total then Ok (assemble ())
    else if n >= retries then
      Error
        (Printf.sprintf "%s%s" (short_by outcome)
           (if retries > 0 then Printf.sprintf " (gave up after %d retries)" retries else ""))
    else begin
      (* exponential backoff, jittered so a fleet of retrying clients
         doesn't re-dogpile the server in lockstep *)
      let base = backoff_ms * (1 lsl min n 10) in
      let jitter = Rng.int rng (max 1 base) in
      Unix.sleepf (float_of_int (base + jitter) /. 1000.0);
      attempt (n + 1)
    end
  in
  attempt 0

(* Send everything, read the expected responses, then *hold* the
   connection open (no shutdown, no traffic) until the server closes
   it or [hold] seconds pass — the probe for [--idle-timeout]. *)
let client_hold ~addr ~hold lines =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let sock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  match Unix.connect sock addr with
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "%s: %s" (string_of_addr addr) (Unix.error_message e))
  | () ->
    Fun.protect
      ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
      (fun () ->
        let payload = String.concat "" (Array.to_list (Array.map (fun l -> l ^ "\n") lines)) in
        let rec send off =
          if off < String.length payload then
            match Unix.write_substring sock payload off (String.length payload - off) with
            | n -> send (off + n)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> send off
        in
        send 0;
        let deadline = Unix.gettimeofday () +. hold in
        let received = Buffer.create 4096 in
        let chunk = Bytes.create 65536 in
        let rec wait () =
          let left = deadline -. Unix.gettimeofday () in
          if left <= 0.0 then `Hold_expired
          else
            match Unix.select [ sock ] [] [] left with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
            | [], _, _ -> `Hold_expired
            | _ -> (
              match Unix.read sock chunk 0 (Bytes.length chunk) with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
              | exception Unix.Unix_error _ -> `Closed_by_server
              | 0 -> `Closed_by_server
              | n ->
                Buffer.add_subbytes received chunk 0 n;
                wait ())
        in
        let ending = wait () in
        let responses =
          String.split_on_char '\n' (Buffer.contents received) |> List.filter not_blank
        in
        Ok (Array.of_list responses, ending))
