type t = {
  cache : Cache.Verdicts.t;
  pool : Parallel.Pool.t;
  stop : bool Atomic.t;
}

(* request/error totals are functions of the input stream alone;
   batching and connection counts depend on arrival timing *)
let m_requests = Obs.Counter.make "server.requests"
let m_errors = Obs.Counter.make "server.errors"
let m_batches = Obs.Counter.make ~det:false "server.batches"
let m_connections = Obs.Counter.make ~det:false "server.connections"
let m_timeouts = Obs.Counter.make ~det:false "server.timeouts"
let request_timer = Obs.Timer.make "server.request"

let create ?(cache_size = 4096) ~jobs () =
  {
    cache = Cache.Verdicts.create ~capacity:cache_size ();
    pool = Parallel.Pool.create ~jobs:(Parallel.resolve_jobs jobs);
    stop = Atomic.make false;
  }

let shutdown t = Parallel.Pool.shutdown t.pool

let with_engine ?cache_size ~jobs f =
  let t = create ?cache_size ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let cache_stats t = Cache.Verdicts.stats t.cache
let request_stop t = Atomic.set t.stop true
let stop_requested t = Atomic.get t.stop

let install_stop_signals t =
  let handle = Sys.Signal_handle (fun _ -> request_stop t) in
  Sys.set_signal Sys.sigint handle;
  Sys.set_signal Sys.sigterm handle;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let handle_line t line =
  Obs.Counter.incr m_requests;
  match Protocol.parse line with
  | Error (id, msg) ->
    Obs.Counter.incr m_errors;
    Protocol.error_response ?id msg
  | Ok req -> (
    match
      Obs.Timer.time request_timer (fun () ->
          Cache.Verdicts.decide t.cache ~analyzer:req.analyzer ~fpga_area:req.fpga_area
            req.Protocol.taskset)
    with
    | verdict -> Protocol.response req verdict
    | exception e ->
      Obs.Counter.incr m_errors;
      Protocol.error_response ?id:req.Protocol.id ("internal error: " ^ Printexc.to_string e))

let handle_lines t lines =
  Obs.Counter.incr m_batches;
  Parallel.Pool.map t.pool (handle_line t) lines

(* --- fd plumbing --- *)

let max_request_bytes = 16 * 1024 * 1024

let rec write_all fd s off =
  if off < String.length s then begin
    match Unix.write_substring fd s off (String.length s - off) with
    | n -> write_all fd s (off + n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off
  end

(* split [s] into complete lines and the trailing partial *)
let split_lines s =
  match String.rindex_opt s '\n' with
  | None -> ([], s)
  | Some last ->
    let complete = String.sub s 0 last in
    let partial = String.sub s (last + 1) (String.length s - last - 1) in
    (String.split_on_char '\n' complete, partial)

let not_blank line = String.trim line <> ""

let serve t ?timeout ~input ~output () =
  let chunk = Bytes.create 65536 in
  let partial = ref "" in
  (* wall-clock instant by which the rest of the partial line must
     arrive; armed only while a partial request is pending *)
  let deadline = ref None in
  let respond lines =
    match Array.of_list (List.filter not_blank lines) with
    | [||] -> ()
    | batch ->
      let responses = handle_lines t batch in
      let payload = String.concat "" (Array.to_list (Array.map (fun r -> r ^ "\n") responses)) in
      write_all output payload 0
  in
  let drop_partial msg =
    Obs.Counter.incr m_timeouts;
    partial := "";
    deadline := None;
    write_all output (Protocol.error_response msg ^ "\n") 0
  in
  let rec loop () =
    if stop_requested t then ()
    else begin
      let tick =
        match !deadline with
        | None -> 0.5
        | Some d -> Float.max 0.0 (Float.min 0.5 (d -. Unix.gettimeofday ()))
      in
      match Unix.select [ input ] [] [] tick with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | [], _, _ ->
        (match !deadline with
         | Some d when Unix.gettimeofday () >= d ->
           drop_partial "request timeout: incomplete request line dropped"
         | _ -> ());
        loop ()
      | _ -> (
        match Unix.read input chunk 0 (Bytes.length chunk) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | 0 ->
          (* EOF: everything left, including an unterminated final
             line, is the tail of the request stream *)
          let lines, last = split_lines !partial in
          partial := "";
          respond (lines @ [ last ])
        | n ->
          let lines, rest = split_lines (!partial ^ Bytes.sub_string chunk 0 n) in
          partial := rest;
          if String.length rest > max_request_bytes then
            drop_partial "request too large: line exceeds 16 MiB"
          else begin
            deadline :=
              (match (rest, timeout) with
               | "", _ | _, None -> None
               | _, Some s -> Some (Unix.gettimeofday () +. s));
            respond lines
          end;
          loop ())
    end
  in
  loop ();
  (* graceful drain: answer the complete lines already received *)
  let lines, _ = split_lines !partial in
  respond lines

(* --- Unix-domain socket --- *)

let remove_stale_socket path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> failwith (path ^ ": exists and is not a socket; refusing to replace it")
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let serve_socket t ?timeout ~path () =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec sock;
  remove_stale_socket path;
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 16;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      let rec accept_loop () =
        if not (stop_requested t) then begin
          match Unix.select [ sock ] [] [] 0.5 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
          | [], _, _ -> accept_loop ()
          | _ -> (
            match Unix.accept sock with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
            | conn, _ ->
              Obs.Counter.incr m_connections;
              (* a client that vanishes mid-connection (EPIPE and
                 friends) must not take the server down with it *)
              (try serve t ?timeout ~input:conn ~output:conn ()
               with Unix.Unix_error _ -> ());
              (try Unix.close conn with Unix.Unix_error _ -> ());
              accept_loop ())
        end
      in
      accept_loop ())

(* --- client (redf batch --connect) --- *)

let client_roundtrip ~path lines =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect sock (Unix.ADDR_UNIX path) with
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
  | () ->
    Fun.protect
      ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
      (fun () ->
        let payload =
          String.concat "" (Array.to_list (Array.map (fun l -> l ^ "\n") lines))
        in
        let sent = ref 0 in
        let all_sent () = !sent >= String.length payload in
        let received = Buffer.create 4096 in
        let chunk = Bytes.create 65536 in
        let rec pump eof =
          if not eof || not (all_sent ()) then begin
            let want_write = if all_sent () then [] else [ sock ] in
            match Unix.select [ sock ] want_write [] (-1.0) with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> pump eof
            | readable, writable, _ ->
              let eof =
                if readable <> [] then (
                  match Unix.read sock chunk 0 (Bytes.length chunk) with
                  | 0 -> true
                  | n ->
                    Buffer.add_subbytes received chunk 0 n;
                    eof
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> eof)
                else eof
              in
              if writable <> [] && not (all_sent ()) then begin
                (match
                   Unix.write_substring sock payload !sent (String.length payload - !sent)
                 with
                 | n -> sent := !sent + n
                 | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
                if all_sent () then Unix.shutdown sock Unix.SHUTDOWN_SEND
              end;
              pump eof
          end
        in
        (match pump false with
         | () -> ()
         | exception Unix.Unix_error (Unix.EPIPE, _, _) -> ());
        let rec read_rest () =
          match Unix.read sock chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
            Buffer.add_subbytes received chunk 0 n;
            read_rest ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_rest ()
        in
        (try read_rest () with Unix.Unix_error _ -> ());
        let responses =
          String.split_on_char '\n' (Buffer.contents received) |> List.filter not_blank
        in
        Ok (Array.of_list responses))
