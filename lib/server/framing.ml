type item = Line of string | Too_large of int | Timed_out

type t = {
  max_line_bytes : int;
  timeout : float option;
  buf : Buffer.t;  (* bytes of the current unterminated line *)
  (* inside a dropped (over-cap or timed-out) line: swallow bytes up to
     its terminating newline without reporting anything further *)
  mutable discarding : bool;
  mutable deadline : float option;
}

let default_max_line_bytes = 16 * 1024 * 1024

let create ?(max_line_bytes = default_max_line_bytes) ?timeout () =
  { max_line_bytes; timeout; buf = Buffer.create 256; discarding = false; deadline = None }

let deadline t = t.deadline
let has_partial t = Buffer.length t.buf > 0 || t.discarding
let not_blank line = String.trim line <> ""

let feed t ~now chunk =
  let items = ref [] in
  let emit i = items := i :: !items in
  let n = String.length chunk in
  let i = ref 0 in
  while !i < n do
    match String.index_from_opt chunk !i '\n' with
    | Some j ->
      if t.discarding then t.discarding <- false
      else begin
        Buffer.add_substring t.buf chunk !i (j - !i);
        let line = Buffer.contents t.buf in
        Buffer.clear t.buf;
        (* the cap applies to complete lines too: an over-cap request
           that arrives fully terminated must not bypass it *)
        if String.length line > t.max_line_bytes then emit (Too_large (String.length line))
        else if not_blank line then emit (Line line)
      end;
      t.deadline <- None;
      i := j + 1
    | None ->
      if not t.discarding then begin
        Buffer.add_substring t.buf chunk !i (n - !i);
        if Buffer.length t.buf > t.max_line_bytes then begin
          (* emitted after the chunk's complete lines, which were
             already answered above — they must never be lost to the
             oversized partial that followed them *)
          emit (Too_large (Buffer.length t.buf));
          Buffer.clear t.buf;
          t.discarding <- true;
          t.deadline <- None
        end
      end;
      i := n
  done;
  (* the deadline is armed when a partial *starts* and only then:
     chunks that merely extend the partial leave it in place *)
  (match (t.timeout, t.deadline) with
   | Some s, None when Buffer.length t.buf > 0 -> t.deadline <- Some (now +. s)
   | _ -> ());
  List.rev !items

let finish t =
  let items =
    if t.discarding then []
    else begin
      let line = Buffer.contents t.buf in
      if String.length line > t.max_line_bytes then [ Too_large (String.length line) ]
      else if not_blank line then [ Line line ]
      else []
    end
  in
  Buffer.clear t.buf;
  t.discarding <- false;
  t.deadline <- None;
  items

let check_deadline t ~now =
  match t.deadline with
  | Some d when now >= d ->
    Buffer.clear t.buf;
    t.deadline <- None;
    t.discarding <- true;
    [ Timed_out ]
  | _ -> []
