module Json = Core.Json

type request = {
  id : Json.t option;
  analyzer : Core.Analyzer.t;
  fpga_area : int;
  taskset : Model.Taskset.t;
}

let ( let* ) = Result.bind

let time_field obj key ~task =
  let ctx = Printf.sprintf "task %d: %S" task key in
  match Json.member key obj with
  | None -> Error (Printf.sprintf "%s: missing" ctx)
  | Some (Json.String s) -> (
    match Model.Time.of_decimal_string s with
    | t -> Ok t
    | exception Invalid_argument _ ->
      Error (Printf.sprintf "%s: not a decimal time (at most 3 fractional digits)" ctx))
  | Some (Json.Int n) -> Ok (Model.Time.of_units n)
  | Some _ -> Error (Printf.sprintf "%s: expected a decimal string or an integer" ctx)

let parse_task i obj =
  let task = i + 1 in
  let name =
    match Json.member "name" obj with Some (Json.String s) -> s | _ -> Printf.sprintf "t%d" task
  in
  let* exec = time_field obj "C" ~task in
  let* deadline = time_field obj "D" ~task in
  let* period = time_field obj "T" ~task in
  let* area =
    match Json.member "A" obj with
    | Some (Json.Int a) -> Ok a
    | _ -> Error (Printf.sprintf "task %d: \"A\": expected an integer area" task)
  in
  match Model.Task.make ~name ~exec ~deadline ~period ~area () with
  | t -> Ok t
  | exception Invalid_argument msg -> Error (Printf.sprintf "task %d: %s" task msg)

let rec collect_tasks i acc = function
  | [] -> Ok (List.rev acc)
  | t :: rest ->
    let* task = parse_task i t in
    collect_tasks (i + 1) (task :: acc) rest

let parse line =
  match Json.of_string line with
  | Error msg -> Error (None, "malformed JSON: " ^ msg)
  | Ok json ->
    let id =
      match Json.member "id" json with
      | Some (Json.Int _ | Json.String _) as id -> id
      | Some _ | None -> None
    in
    let with_id r = Result.map_error (fun msg -> (id, msg)) r in
    with_id
      (let* () =
         match json with Json.Obj _ -> Ok () | _ -> Error "request must be a JSON object"
       in
       let* name =
         match Json.member "analyzer" json with
         | Some (Json.String s) -> Ok s
         | Some _ -> Error "\"analyzer\": expected a string"
         | None -> Error "\"analyzer\": missing"
       in
       let* analyzer = Core.Analyzer.of_name name in
       let* fpga_area =
         match Json.member "fpga_area" json with
         | Some (Json.Int a) when a >= 1 -> Ok a
         | Some (Json.Int _) -> Error "\"fpga_area\": must be >= 1"
         | Some _ -> Error "\"fpga_area\": expected an integer"
         | None -> Error "\"fpga_area\": missing"
       in
       let* task_objs =
         match Json.member "tasks" json with
         | Some (Json.List l) -> Ok l
         | Some _ -> Error "\"tasks\": expected an array"
         | None -> Error "\"tasks\": missing"
       in
       let* tasks = collect_tasks 0 [] task_objs in
       let* taskset =
         match Model.Taskset.of_list tasks with
         | ts -> Ok ts
         | exception Invalid_argument _ -> Error "\"tasks\": must not be empty"
       in
       Ok { id; analyzer; fpga_area; taskset })

let schema_version = Core.Verdict.schema_version

let envelope ?id kind fields =
  let base =
    [ ("schema_version", Json.Int schema_version); ("kind", Json.String kind) ]
    @ (match id with Some id -> [ ("id", id) ] | None -> [])
  in
  Json.to_string (Json.Obj (base @ fields))

let response req verdict =
  let verdict_fields =
    match Core.Report.verdict_json req.analyzer verdict with Json.Obj f -> f | _ -> []
  in
  envelope ?id:req.id "verdict" (("fpga_area", Json.Int req.fpga_area) :: verdict_fields)

let error_response ?id msg = envelope ?id "error" [ ("error", Json.String msg) ]

let request_id line =
  match Json.of_string line with
  | Error _ -> None
  | Ok json -> (
    match Json.member "id" json with
    | Some (Json.Int _ | Json.String _) as id -> id
    | Some _ | None -> None)

let shed_message = "server overloaded: request shed"
let shed_response line = error_response ?id:(request_id line) shed_message

let request_line ~analyzer ~fpga_area ?id ts =
  Json.to_string
    (Json.Obj
       ([
          ("analyzer", Json.String analyzer);
          ("fpga_area", Json.Int fpga_area);
          ("tasks", Json.List (List.map Core.Report.task_json (Model.Taskset.to_list ts)));
        ]
       @ match id with Some id -> [ ("id", id) ] | None -> []))
