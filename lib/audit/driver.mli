(** Top-level audit driver: lint + cross-analyzer consistency in one
    report, with the exit-code policy shared by the CLI and the [@lint]
    alias. *)

type report = {
  fpga_area : int;
  lint : Diagnostic.t list;
  findings : Consistency.finding list;
}

val lint_only : ?hyperperiod_cap:Model.Time.t -> fpga_area:int -> Model.Taskset.t -> report
(** Static lint pass only; [findings] is empty. *)

val run :
  ?analyzers:Consistency.analyzer list ->
  ?config:Consistency.config ->
  ?jobs:int ->
  fpga_area:int ->
  Model.Taskset.t ->
  report
(** Lint plus the full consistency audit.  [config] defaults to
    {!Consistency.default_config}; when given, its [fpga_area] must agree
    with the argument.  [jobs] fans the audit units out over a domain
    pool (see {!Consistency.audit}); the report is identical for any
    worker count. *)

val diagnostics : report -> Diagnostic.t list
(** Lint diagnostics and converted findings, most severe first. *)

val clean : ?strict:bool -> report -> bool
val exit_code : ?strict:bool -> report -> int
(** [0] when {!clean}, [2] otherwise (matching [redf analyze]'s
    convention that 2 means "the taskset failed"). *)

val pp : ?label:string -> Format.formatter -> report -> unit
(** Human rendering: diagnostics one per line plus a summary line
    ("audit: 1 error, 2 warnings, 0 infos" or "audit: clean").
    [label] defaults to ["audit"]. *)

val pp_sexp : Format.formatter -> report -> unit

val to_json : ?kind:string -> report -> Core.Json.t
(** The report as canonical JSON (the [--format json] form): the
    shared [schema_version], [kind] (default ["audit"]; [redf lint]
    passes ["lint"]), [fpga_area], [clean] (non-strict), and the
    severity-sorted diagnostics — [task] fields are 1-based, matching
    the human rendering. *)
