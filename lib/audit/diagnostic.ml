type severity = Error | Warning | Info

type t = {
  severity : severity;
  rule : string;
  task_index : int option;
  message : string;
}

let make severity ?task_index ~rule message = { severity; rule; task_index; message }
let error ?task_index ~rule message = make Error ?task_index ~rule message
let warning ?task_index ~rule message = make Warning ?task_index ~rule message
let info ?task_index ~rule message = make Info ?task_index ~rule message

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"
let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2
let compare_severity a b = Int.compare (severity_rank a) (severity_rank b)

(* monomorphic: severities order by rank, never by constructor layout *)
let equal_severity a b = Int.equal (severity_rank a) (severity_rank b)

let count sev ds = List.length (List.filter (fun d -> equal_severity d.severity sev) ds)
let has_errors ds = List.exists (fun d -> equal_severity d.severity Error) ds
let has_warnings ds = List.exists (fun d -> equal_severity d.severity Warning) ds

let by_severity ds =
  List.stable_sort (fun a b -> compare_severity a.severity b.severity) ds

let pp fmt d =
  match d.task_index with
  | Some i -> Format.fprintf fmt "%s[%s] task %d: %s" (severity_name d.severity) d.rule (i + 1) d.message
  | None -> Format.fprintf fmt "%s[%s]: %s" (severity_name d.severity) d.rule d.message

(* minimal sexp string escaping: always quote the message atom *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf c
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp_sexp fmt d =
  Format.fprintf fmt "((severity %s) (rule %s)" (severity_name d.severity) d.rule;
  (match d.task_index with
   | Some i -> Format.fprintf fmt " (task %d)" (i + 1)
   | None -> ());
  Format.fprintf fmt " (message \"%s\"))" (escape d.message)

let pp_list fmt ds = List.iter (fun d -> Format.fprintf fmt "%a@," pp d) ds

let pp_sexp_list fmt ds =
  Format.fprintf fmt "@[<v 1>(diagnostics";
  List.iter (fun d -> Format.fprintf fmt "@,%a" pp_sexp d) ds;
  Format.fprintf fmt ")@]"
