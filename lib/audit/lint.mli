(** Static lint pass over a taskset.

    Checks the structural invariants the analyzers assume — per-task
    [C_k <= D_k <= T_k] sanity, [0 < A_k <= A(H)], necessary feasibility
    conditions — plus hygiene rules (duplicate names, degenerate
    utilizations, vacuous analyzer preconditions).  Error-level
    diagnostics mean no scheduler can work or every analyzer's verdict
    is vacuous; warnings flag legal but suspicious inputs; infos are
    advisory.

    Rules emitted (stable identifiers):
    - [exec-exceeds-window] (error): [C_k > min(D_k, T_k)]
    - [device-overloaded] (error): [US(Gamma) > A(H)]
    - [exclusion-clique-overload] (error): mutually-exclusive tasks
      demand more than one unit of a serial resource
    - [task-wider-than-device] (error): [A_k > A(H)]; forces every
      analyzer to [reject_all], so any ACCEPT would be vacuous
    - [deadline-exceeds-period] (warning): unconstrained deadline
    - [degenerate-utilization] (warning): [C_k = T_k]; the task
      permanently occupies its columns
    - [duplicate-task-name] (warning)
    - [empty-task-name] (info)
    - [negligible-utilization] (info): [UT_k < 1/1000]
    - [single-task] (info): interference-based tests are vacuous
    - [hyperperiod-exceeds-cap] (info): simulation-backed audits of
      this set will be truncated *)

val default_hyperperiod_cap : Model.Time.t

val lint : ?hyperperiod_cap:Model.Time.t -> fpga_area:int -> Model.Taskset.t -> Diagnostic.t list
(** All diagnostics, most severe first. *)

val clean : ?strict:bool -> Diagnostic.t list -> bool
(** No errors ([strict:false], the default) or neither errors nor
    warnings ([strict:true]). *)
