(** Severity-tagged diagnostics shared by the taskset linter and the
    cross-analyzer consistency auditor.

    A diagnostic names the rule that fired, optionally the task it is
    about, and a human-readable message.  Two renderings are provided:
    a compiler-style human form ([error[rule] task 3: ...]) and a
    machine-readable sexp form for tooling ([((severity error) ...)]). *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  rule : string;  (** stable kebab-case rule identifier *)
  task_index : int option;  (** 0-based index into the taskset, when task-specific *)
  message : string;
}

val error : ?task_index:int -> rule:string -> string -> t
val warning : ?task_index:int -> rule:string -> string -> t
val info : ?task_index:int -> rule:string -> string -> t

val severity_name : severity -> string
(** ["error"], ["warning"] or ["info"]. *)

val compare_severity : severity -> severity -> int
(** [Error] orders before [Warning] orders before [Info]. *)

val equal_severity : severity -> severity -> bool
(** Monomorphic equality consistent with {!compare_severity}. *)

val count : severity -> t list -> int
val has_errors : t list -> bool
val has_warnings : t list -> bool

val by_severity : t list -> t list
(** Stable sort, most severe first. *)

val pp : Format.formatter -> t -> unit
(** Human form, e.g. [warning[duplicate-task-name] task 2: ...]. *)

val pp_sexp : Format.formatter -> t -> unit
(** Machine form, e.g.
    [((severity warning) (rule duplicate-task-name) (task 2) (message "..."))]. *)

val pp_list : Format.formatter -> t list -> unit
(** One human-form diagnostic per line. *)

val pp_sexp_list : Format.formatter -> t list -> unit
(** The whole list as one sexp: [(diagnostics <d1> <d2> ...)]. *)
