module Time = Model.Time
module Task = Model.Task

let default_hyperperiod_cap = Time.of_ticks 10_000_000

(* necessary feasibility conditions are already computed by the core
   library; surface them as diagnostics rather than re-deriving them *)
let of_feasibility ~fpga_area ts =
  List.map
    (fun v ->
      let message = Format.asprintf "%a" Core.Feasibility.pp_violation v in
      match v with
      | Core.Feasibility.Exec_exceeds_window i ->
        Diagnostic.error ~task_index:i ~rule:"exec-exceeds-window"
          (message ^ ": every job of the task necessarily misses its deadline")
      | Core.Feasibility.Device_overloaded _ ->
        Diagnostic.error ~rule:"device-overloaded" message
      | Core.Feasibility.Clique_overloaded _ ->
        Diagnostic.error ~rule:"exclusion-clique-overload" message)
    (Core.Feasibility.check ~fpga_area ts)

let per_task ~fpga_area ts =
  let tasks = Model.Taskset.to_array ts in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  Array.iteri
    (fun i (t : Task.t) ->
      if t.area > fpga_area then
        add
          (Diagnostic.error ~task_index:i ~rule:"task-wider-than-device"
             (Printf.sprintf
                "area %d exceeds A(H)=%d; DP, GN1 and GN2 all reject vacuously (Verdict.reject_all)"
                t.area fpga_area));
      if Time.(t.deadline > t.period) then
        add
          (Diagnostic.warning ~task_index:i ~rule:"deadline-exceeds-period"
             (Format.asprintf
                "deadline %a exceeds period %a (unconstrained deadline); the tests stay sound but pessimistic"
                Time.pp t.deadline Time.pp t.period));
      if Time.equal t.exec t.period then
        add
          (Diagnostic.warning ~task_index:i ~rule:"degenerate-utilization"
             (Format.asprintf
                "C = T = %a: utilization is exactly 1, the task permanently occupies %d columns"
                Time.pp t.period t.area));
      let ut = Task.time_utilization t in
      if Rat.compare ut (Rat.of_ints 1 1000) < 0 then
        add
          (Diagnostic.info ~task_index:i ~rule:"negligible-utilization"
             (Format.asprintf "time utilization %a is below 1/1000; possible unit mistake"
                Rat.pp_approx ut));
      if t.name = "" then
        add (Diagnostic.info ~task_index:i ~rule:"empty-task-name" "task has no name"))
    tasks;
  List.rev !diags

let duplicate_names ts =
  let seen = Hashtbl.create 16 in
  List.concat
    (List.mapi
       (fun i (t : Task.t) ->
         if t.name = "" then []
         else
           match Hashtbl.find_opt seen t.name with
           | Some first ->
             [
               Diagnostic.warning ~task_index:i ~rule:"duplicate-task-name"
                 (Printf.sprintf "name %S already used by task %d" t.name (first + 1));
             ]
           | None ->
             Hashtbl.add seen t.name i;
             [])
       (Model.Taskset.to_list ts))

let whole_set ~hyperperiod_cap ts =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  if Model.Taskset.size ts = 1 then
    add
      (Diagnostic.info ~rule:"single-task"
         "single-task set: the interference-based tests are vacuous (any C <= min(D,T) task is accepted)");
  (match Model.Taskset.hyperperiod ~cap:hyperperiod_cap ts with
   | Model.Taskset.Finite _ -> ()
   | Model.Taskset.Exceeds_cap ->
     add
       (Diagnostic.info ~rule:"hyperperiod-exceeds-cap"
          (Format.asprintf
             "hyper-period exceeds %a time units; simulation-backed audits will be truncated"
             Time.pp hyperperiod_cap)));
  List.rev !diags

let lint ?(hyperperiod_cap = default_hyperperiod_cap) ~fpga_area ts =
  Diagnostic.by_severity
    (of_feasibility ~fpga_area ts
    @ per_task ~fpga_area ts
    @ duplicate_names ts
    @ whole_set ~hyperperiod_cap ts)

let clean ?(strict = false) ds =
  (not (Diagnostic.has_errors ds)) && not (strict && Diagnostic.has_warnings ds)
