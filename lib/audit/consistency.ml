module Time = Model.Time
module Taskset = Model.Taskset
module Engine = Sim.Engine

type scheduler = Edf_nf | Edf_fkf

let scheduler_name = function Edf_nf -> "EDF-NF" | Edf_fkf -> "EDF-FkF"
let policy_of = function Edf_nf -> Sim.Policy.edf_nf | Edf_fkf -> Sim.Policy.edf_fkf

type analyzer = { base : Core.Analyzer.t; sound_for : scheduler list }

let analyzer_name a = a.base.Core.Analyzer.name
let analyzer_decide a = a.base.Core.Analyzer.decide

(* the registry's analyzers tagged with their soundness claims: DP
   proves EDF-FkF schedulability and, by Danne's dominance theorem,
   EDF-NF; GN1 proves EDF-NF (Theorem 2); GN2 proves EDF-FkF and,
   explicitly by Theorem 3, EDF-NF. *)
let dp = { base = Core.Analyzer.dp; sound_for = [ Edf_fkf; Edf_nf ] }
let gn1 = { base = Core.Analyzer.gn1; sound_for = [ Edf_nf ] }
let gn2 = { base = Core.Analyzer.gn2; sound_for = [ Edf_fkf; Edf_nf ] }
let paper_analyzers = [ dp; gn1; gn2 ]

let always_accept ~name ~sound_for =
  let decide ~fpga_area:_ ts =
    let checks =
      List.mapi
        (fun i _ ->
          {
            Core.Verdict.task_index = i;
            satisfied = true;
            lhs = Rat.zero;
            rhs = Rat.zero;
            note = "unconditional accept (unsound stub)";
          })
        (Taskset.to_list ts)
    in
    Core.Verdict.make ~test_name:name ~checks
  in
  {
    base = Core.Analyzer.make ~name ~cite:"deliberately unsound stub" ~version:"0" decide;
    sound_for;
  }

type finding = {
  severity : Diagnostic.severity;
  rule : string;
  analyzer : string option;
  scheduler : scheduler option;
  detail : string;
  counterexample : Model.Taskset.t option;
}

let fixture f = Option.map Taskset.to_csv f.counterexample

let to_diagnostic f =
  let context =
    (match f.analyzer with Some a -> [ a ] | None -> [])
    @ (match f.scheduler with Some s -> [ scheduler_name s ] | None -> [])
  in
  let prefix = match context with [] -> "" | l -> String.concat "/" l ^ ": " in
  let message =
    match fixture f with
    | None -> prefix ^ f.detail
    | Some csv -> prefix ^ f.detail ^ "; minimal counterexample:\n" ^ csv
  in
  { Diagnostic.severity = f.severity; rule = f.rule; task_index = None; message }

(* unit counts and shrink steps depend only on (config, taskset), never
   on the worker count, so they are det metrics; the per-unit timer is
   the audit's cost profile *)
let m_units = Obs.Counter.make "audit.consistency.units"
let m_findings = Obs.Counter.make "audit.consistency.findings"
let m_simulations = Obs.Counter.make "audit.consistency.simulations"
let m_shrink_steps = Obs.Counter.make "audit.consistency.shrink_steps"
let unit_timer = Obs.Timer.make "audit.consistency.unit"

type config = {
  fpga_area : int;
  horizon_cap : Model.Time.t;
  sporadic_seed : int option;
  shrink : bool;
}

let default_config ~fpga_area =
  { fpga_area; horizon_cap = Time.of_units 10_000; sporadic_seed = Some 97; shrink = true }

(* --- simulation helpers --- *)

type release = Synchronous | Sporadic of int

let release_name = function
  | Synchronous -> "synchronous"
  | Sporadic seed -> Printf.sprintf "sporadic (seed %d)" seed

let pattern_of = function
  | Synchronous -> Exact.Oracle.Synchronous
  | Sporadic seed -> Exact.Oracle.Sporadic { seed; max_delay = Time.of_units 3 }

(* every reference schedule the audit consults comes from the exact
   oracle — no ad-hoc Engine configuration here *)
let simulate config ~record scheduler release ts =
  Obs.Counter.incr m_simulations;
  Exact.Oracle.simulate ~horizon_cap:config.horizon_cap ~record ~fpga_area:config.fpga_area
    ~policy:(policy_of scheduler) (pattern_of release) ts

let misses config scheduler release ts =
  match (simulate config ~record:false scheduler release ts : Engine.result * bool) with
  | { Engine.outcome = Engine.Miss m; _ }, _ -> Some m
  | { Engine.outcome = Engine.No_miss; _ }, _ -> None

(* --- counterexample shrinking --- *)

let shrink_counterexample ~exhibits ts =
  let drop_task ts i =
    Taskset.of_list (List.filteri (fun j _ -> j <> i) (Taskset.to_list ts))
  in
  let halve_exec ts i =
    let tasks = Taskset.to_list ts in
    Taskset.of_list
      (List.mapi
         (fun j (t : Model.Task.t) ->
           if j <> i then t
           else { t with Model.Task.exec = Time.of_ticks (max 1 (Time.ticks t.exec / 2)) })
         tasks)
  in
  (* greedily apply the first candidate that still exhibits the failure,
     restarting until no candidate applies; candidate lists are finite
     and each step strictly shrinks (fewer tasks or fewer exec ticks),
     so this terminates *)
  let step ts =
    let n = Taskset.size ts in
    let candidates =
      (if n > 1 then List.init n (fun i () -> drop_task ts i) else [])
      @ List.init n (fun i () ->
            if Time.ticks (Taskset.nth ts i).Model.Task.exec > 1 then halve_exec ts i else ts)
    in
    List.find_map
      (fun make ->
        let candidate = make () in
        if (not (Taskset.equal candidate ts)) && exhibits candidate then Some candidate else None)
      candidates
  in
  let rec fix ts =
    match step ts with
    | None -> ts
    | Some smaller ->
      Obs.Counter.incr m_shrink_steps;
      fix smaller
  in
  fix ts

(* --- the audit --- *)

let finding ?(severity = Diagnostic.Error) ?analyzer ?scheduler ?counterexample ~rule detail =
  { severity; rule; analyzer; scheduler; detail; counterexample }

let severity_rank f = match f.severity with Diagnostic.Error -> 0 | Warning -> 1 | Info -> 2

let trace_findings config scheduler ts =
  let result, _ = simulate config ~record:true scheduler Synchronous ts in
  let physical = Trace.Checker.check ~fpga_area:config.fpga_area result in
  let lemma =
    match scheduler with
    | Edf_nf -> Trace.Checker.check_nf_work_conserving ~fpga_area:config.fpga_area result
    | Edf_fkf ->
      Trace.Checker.check_fkf_work_conserving ~fpga_area:config.fpga_area ~amax:(Taskset.amax ts)
        result
  in
  let summarize rule what = function
    | [] -> []
    | v :: _ as vs ->
      [
        finding ~scheduler ~rule
          (Format.asprintf "%s on the recorded trace (%d total), first: %a" what (List.length vs)
             Trace.Checker.pp_violation v);
      ]
  in
  summarize "trace-invariant-violation" "physical invariant violated" physical
  @ summarize "work-conserving-violation"
      (match scheduler with
       | Edf_nf -> "Lemma 2 occupancy floor violated"
       | Edf_fkf -> "Lemma 1 occupancy floor violated")
      lemma

let unsound_check config analyzer scheduler release ts =
  let decide = analyzer_decide analyzer in
  if not (Core.Verdict.accepted (decide ~fpga_area:config.fpga_area ts)) then []
  else
    match misses config scheduler release ts with
    | None -> []
    | Some m ->
      let exhibits candidate =
        Taskset.fits candidate ~fpga_area:config.fpga_area
        && Core.Verdict.accepted (decide ~fpga_area:config.fpga_area candidate)
        && Option.is_some (misses config scheduler release candidate)
      in
      let counterexample = if config.shrink then shrink_counterexample ~exhibits ts else ts in
      [
        finding ~analyzer:(analyzer_name analyzer) ~scheduler ~counterexample ~rule:"unsound-accept"
          (Format.asprintf "ACCEPT but task %d misses its deadline at t=%a under %s release"
             (m.Engine.task_index + 1) Time.pp m.Engine.at (release_name release));
      ]

(* the exact oracle's verdict on the set, cross-checked two ways: a
   conclusive ACCEPT against every audited analyzer's REJECT (the
   sufficiency gap, informational) and against an approx refutation
   (which claims infeasibility, so a contradiction is a hard error) *)
let oracle_check config analyzers ts =
  let conclusion =
    Exact.Oracle.decide ~horizon_cap:config.horizon_cap ~fpga_area:config.fpga_area
      ~policy:Sim.Policy.edf_nf ts
  in
  let gap =
    match conclusion with
    | Exact.Oracle.Schedulable (Exact.Oracle.All_offsets { combinations; grid }) -> (
      let rejecting =
        List.filter_map
          (fun a ->
            if Core.Verdict.accepted (analyzer_decide a ~fpga_area:config.fpga_area ts) then None
            else Some (analyzer_name a))
          analyzers
      in
      match rejecting with
      | [] -> []
      | names ->
        [
          finding ~severity:Diagnostic.Info ~rule:"sufficiency-gap"
            (Format.asprintf
               "exact oracle certifies schedulability (no miss over %d offset assignments on the \
                %a grid) but %s reject: a sufficiency gap, not unsoundness"
               combinations Time.pp grid (String.concat ", " names));
        ])
    | _ -> []
  in
  let approx_check =
    match Exact.Approx.analyze ~fpga_area:config.fpga_area ts with
    | Exact.Approx.Accepted _ -> []
    | refutation ->
      (* an approx REJECT claims infeasibility under any scheduler, so
         it contradicts any conclusive oracle ACCEPT: a full offset
         certificate always, a synchronous-only certificate when the
         refutation point lies inside the untruncated horizon *)
      let conclusive =
        match conclusion with
        | Exact.Oracle.Schedulable (Exact.Oracle.All_offsets _) -> true
        | Exact.Oracle.Schedulable (Exact.Oracle.Synchronous_only _) -> (
          match refutation with
          | Exact.Approx.Refuted_at { at; _ } ->
            let horizon, truncated =
              Exact.Interval.sync_horizon ~cap:config.horizon_cap ts
            in
            (not truncated) && Time.(at <= horizon)
          | _ -> false)
        | Exact.Oracle.Unschedulable _ | Exact.Oracle.Inconclusive _ -> false
      in
      if not conclusive then []
      else
        let what =
          match refutation with
          | Exact.Approx.Refuted_at { at; demand; supply } ->
            Format.asprintf "approx refutes feasibility (h(%a) = %d > %d column-ticks)" Time.pp at
              demand supply
          | Exact.Approx.Refuted_overload { us } ->
            Format.asprintf "approx refutes feasibility (US = %s exceeds the device area)"
              (Rat.to_string us)
          | Exact.Approx.Accepted _ -> assert false
        in
        [
          finding ~analyzer:"approx" ~rule:"approx-unsound"
            (what ^ " but the exact oracle certifies schedulability");
        ]
  in
  gap @ approx_check

(* one independent, side-effect-free unit of audit work; a unit's
   findings depend only on (config, ts, unit), so units can run on any
   worker in any order and be reassembled in unit order *)
type work =
  | Unsound_check of analyzer * scheduler * release
  | Lemma_check of scheduler
  | Oracle_check

let audit ?(analyzers = paper_analyzers) ?(jobs = 1) config ts =
  if not (Taskset.fits ts ~fpga_area:config.fpga_area) then
    [
      finding ~severity:Diagnostic.Info ~rule:"simulation-skipped"
        "a task is wider than the device; every analyzer rejects vacuously and nothing can be \
         simulated";
    ]
  else begin
    let _, truncated = Exact.Interval.sync_horizon ~cap:config.horizon_cap ts in
    let truncation =
      if truncated then
        [
          finding ~severity:Diagnostic.Info ~rule:"simulation-truncated"
            (Format.asprintf
               "hyper-period exceeds the cap; simulated [0, %a] only, so a clean audit is not a \
                complete synchronous-case certificate"
               Time.pp config.horizon_cap);
        ]
      else []
    in
    let releases =
      Synchronous :: (match config.sporadic_seed with None -> [] | Some s -> [ Sporadic s ])
    in
    let works =
      List.concat_map
        (fun analyzer ->
          List.concat_map
            (fun scheduler ->
              List.map (fun release -> Unsound_check (analyzer, scheduler, release)) releases)
            analyzer.sound_for)
        analyzers
      @ [ Lemma_check Edf_nf; Lemma_check Edf_fkf; Oracle_check ]
    in
    let eval work =
      Obs.Counter.incr m_units;
      Obs.Timer.time unit_timer (fun () ->
          match work with
          | Unsound_check (analyzer, scheduler, release) ->
            unsound_check config analyzer scheduler release ts
          | Lemma_check scheduler -> trace_findings config scheduler ts
          | Oracle_check -> oracle_check config analyzers ts)
    in
    let findings =
      (if jobs <= 1 then List.concat_map eval works
       else
         Parallel.parallel_map ~jobs eval (Array.of_list works)
         |> Array.to_list |> List.concat)
      @ truncation
    in
    Obs.Counter.add m_findings (List.length findings);
    List.stable_sort (fun a b -> Int.compare (severity_rank a) (severity_rank b)) findings
  end
