type report = {
  fpga_area : int;
  lint : Diagnostic.t list;
  findings : Consistency.finding list;
}

let lint_only ?hyperperiod_cap ~fpga_area ts =
  { fpga_area; lint = Lint.lint ?hyperperiod_cap ~fpga_area ts; findings = [] }

let run ?analyzers ?config ?jobs ~fpga_area ts =
  let config =
    match config with
    | None -> Consistency.default_config ~fpga_area
    | Some c ->
      if c.Consistency.fpga_area <> fpga_area then
        invalid_arg "Audit.Driver.run: config.fpga_area disagrees with ~fpga_area";
      c
  in
  {
    fpga_area;
    lint = Lint.lint ~hyperperiod_cap:config.Consistency.horizon_cap ~fpga_area ts;
    findings = Consistency.audit ?analyzers ?jobs config ts;
  }

let diagnostics r =
  Diagnostic.by_severity (r.lint @ List.map Consistency.to_diagnostic r.findings)

let clean ?strict r = Lint.clean ?strict (diagnostics r)
let exit_code ?strict r = if clean ?strict r then 0 else 2

let summary ~label r =
  let ds = diagnostics r in
  let errors = Diagnostic.count Diagnostic.Error ds in
  let warnings = Diagnostic.count Diagnostic.Warning ds in
  let infos = Diagnostic.count Diagnostic.Info ds in
  if errors = 0 && warnings = 0 && infos = 0 then label ^ ": clean"
  else
    Printf.sprintf "%s: %d error%s, %d warning%s, %d info%s" label errors
      (if errors = 1 then "" else "s")
      warnings
      (if warnings = 1 then "" else "s")
      infos
      (if infos = 1 then "" else "s")

let pp ?(label = "audit") fmt r =
  Format.fprintf fmt "@[<v>%a%s@]" Diagnostic.pp_list (diagnostics r) (summary ~label r)

let pp_sexp fmt r = Diagnostic.pp_sexp_list fmt (diagnostics r)

let diagnostic_json (d : Diagnostic.t) =
  let open Core.Json in
  Obj
    ([
       ("severity", String (Diagnostic.severity_name d.severity));
       ("rule", String d.rule);
     ]
    @ (match d.task_index with Some i -> [ ("task", Int (i + 1)) ] | None -> [])
    @ [ ("message", String d.message) ])

let to_json ?(kind = "audit") r =
  let open Core.Json in
  Obj
    [
      ("schema_version", Int Core.Verdict.schema_version);
      ("kind", String kind);
      ("fpga_area", Int r.fpga_area);
      ("clean", Bool (clean r));
      ("diagnostics", List (List.map diagnostic_json (diagnostics r)));
    ]
