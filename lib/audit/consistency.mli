(** Cross-analyzer consistency audit.

    Runs every analyzer (DP, GN1, GN2 by default) and the EDF-NF /
    EDF-FkF simulator on the same taskset and statically checks the
    soundness contract of the paper:

    - {b unsound-accept}: an analyzer ACCEPT paired with an observed
      deadline miss under a scheduler the test claims to cover is a hard
      error.  DP and GN2 cover both EDF-FkF and EDF-NF (Theorem 3 plus
      Danne's dominance); GN1 covers EDF-NF.  Both the synchronous
      release pattern (over one hyper-period when finite) and a seeded
      sporadic pattern are tried.  Any counterexample is shrunk to a
      minimal taskset and emitted as a regression fixture (CSV);
    - {b work-conserving-violation}: the recorded trace violates the
      occupancy floors of Lemma 1 (EDF-FkF) or Lemma 2 (EDF-NF), via
      {!Trace.Checker.check_work_conserving};
    - {b trace-invariant-violation}: the recorded trace breaks a
      physical invariant ({!Trace.Checker.check});
    - {b approx-unsound}: the approximate demand test
      ({!Exact.Approx}) refutes feasibility while the exact oracle
      conclusively certifies schedulability — a hard error, since an
      approx REJECT claims infeasibility under any scheduler;
    - {b sufficiency-gap} (info): the exact oracle conclusively accepts
      (full offset certificate) while one or more audited sufficient
      tests reject — the expected pessimism of a sufficient test,
      reported so the gap is measurable (EXPERIMENTS.md);
    - {b simulation-skipped} / {b simulation-truncated} (info): the set
      cannot be simulated (a task is wider than the device) or the
      hyper-period exceeds the cap so the certificate is partial.

    Every reference schedule comes from {!Exact.Oracle} — the audit
    performs no ad-hoc simulation of its own. *)

type scheduler = Edf_nf | Edf_fkf

val scheduler_name : scheduler -> string

type analyzer = {
  base : Core.Analyzer.t;  (** the registry analyzer under audit *)
  sound_for : scheduler list;
      (** schedulers under which an ACCEPT claims schedulability *)
}

val analyzer_name : analyzer -> string
val analyzer_decide : analyzer -> fpga_area:int -> Model.Taskset.t -> Core.Verdict.t

val dp : analyzer
val gn1 : analyzer
val gn2 : analyzer

val paper_analyzers : analyzer list
(** [[dp; gn1; gn2]]. *)

val always_accept : name:string -> sound_for:scheduler list -> analyzer
(** A deliberately-unsound stub that accepts every taskset; used to
    prove the auditor catches unsound analyzers (tests, [redf audit
    --inject-unsound]). *)

type finding = {
  severity : Diagnostic.severity;
  rule : string;
  analyzer : string option;
  scheduler : scheduler option;
  detail : string;
  counterexample : Model.Taskset.t option;  (** shrunk witness, for unsound accepts *)
}

val fixture : finding -> string option
(** The shrunk counterexample as a regression-fixture CSV. *)

val to_diagnostic : finding -> Diagnostic.t

type config = {
  fpga_area : int;
  horizon_cap : Model.Time.t;
      (** simulate over [min(hyperperiod, horizon_cap)] *)
  sporadic_seed : int option;
      (** also audit a sporadic release pattern with this seed *)
  shrink : bool;  (** shrink unsound-accept counterexamples *)
}

val default_config : fpga_area:int -> config
(** Hyper-period cap 10000 units, sporadic seed 97, shrinking on. *)

val shrink_counterexample :
  exhibits:(Model.Taskset.t -> bool) -> Model.Taskset.t -> Model.Taskset.t
(** Greedily removes tasks, then halves execution times, while
    [exhibits] keeps holding; returns the fixpoint.  [exhibits] must
    hold of the input. *)

val audit :
  ?analyzers:analyzer list -> ?jobs:int -> config -> Model.Taskset.t -> finding list
(** All findings, most severe first.  An empty list certifies that on
    this taskset every analyzer verdict is consistent with the observed
    schedules and every trace satisfies the lemma and physical
    invariants.

    [jobs] (default 1 = serial, 0 = one worker per core) fans the
    independent audit units — one per analyzer × covered scheduler ×
    release pattern, plus one lemma/trace check per scheduler — out over
    a domain pool.  Units are pure and reassembled in their serial
    order, so the findings are identical for any worker count. *)
