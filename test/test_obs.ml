(* Tests for the Obs metrics registry, span profiling and snapshots.
   The registry and the enabled flag are process-wide, so every test
   that records metrics runs inside [with_enabled], which resets the
   registry and restores the disabled default afterwards. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_enabled f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) f

let entry name =
  match List.assoc_opt name (Obs.Snapshot.take ()) with
  | Some e -> e
  | None -> Alcotest.failf "metric %s not in snapshot" name

(* --- registry --- *)

let registration () =
  let c1 = Obs.Counter.make "t.reg.counter" in
  let c2 = Obs.Counter.make "t.reg.counter" in
  with_enabled (fun () ->
      Obs.Counter.incr c1;
      Obs.Counter.incr c2;
      (* both handles refer to the same underlying counter *)
      check_int "shared counter" 2 (Obs.Counter.value c1));
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Obs: \"t.reg.counter\" is already registered as a counter") (fun () ->
      ignore (Obs.Gauge.make "t.reg.counter"))

let disabled_is_noop () =
  Obs.reset ();
  Obs.set_enabled false;
  let c = Obs.Counter.make "t.noop.counter" in
  let g = Obs.Gauge.make "t.noop.gauge" in
  let tm = Obs.Timer.make "t.noop.timer" in
  Obs.Counter.incr c;
  Obs.Counter.add c 10;
  Obs.Gauge.set g 5;
  Obs.Gauge.set_max g 7;
  Obs.Timer.record_ns tm 100;
  check_int "counter untouched" 0 (Obs.Counter.value c);
  check_int "gauge untouched" 0 (Obs.Gauge.value g);
  check_int "timer untouched" 0 (Obs.Timer.count tm);
  check_int "timer runs body" 41 (Obs.Timer.time tm (fun () -> 41));
  check_int "span runs body" 42 (Obs.Span.with_ ~name:"t.noop.span" (fun () -> 42))

let counter_updates () =
  with_enabled (fun () ->
      let c = Obs.Counter.make "t.counter" in
      Obs.Counter.incr c;
      Obs.Counter.add c 4;
      Obs.Counter.add c 0;
      check_int "value" 5 (Obs.Counter.value c);
      Alcotest.check_raises "negative add"
        (Invalid_argument "Obs.Counter.add: negative increment") (fun () -> Obs.Counter.add c (-1)))

let gauge_updates () =
  with_enabled (fun () ->
      let g = Obs.Gauge.make "t.gauge" in
      Obs.Gauge.set g 3;
      Obs.Gauge.set_max g 8;
      Obs.Gauge.set_max g 5;
      check_int "set_max keeps high-water mark" 8 (Obs.Gauge.value g);
      Obs.Gauge.set g 2;
      check_int "set overwrites" 2 (Obs.Gauge.value g))

let timer_updates () =
  with_enabled (fun () ->
      let tm = Obs.Timer.make "t.timer" in
      Obs.Timer.record_ns tm 100;
      Obs.Timer.record_ns tm 50;
      Obs.Timer.record_ns tm (-7);
      check_int "count" 3 (Obs.Timer.count tm);
      check_int "sum clamps negatives" 150 (Obs.Timer.sum_ns tm);
      check_int "time returns the result" 9 (Obs.Timer.time tm (fun () -> 9));
      check_int "time recorded" 4 (Obs.Timer.count tm);
      match entry "t.timer" with
      | Obs.Snapshot.Timer { count; sum_ns; min_ns; max_ns } ->
        check_int "snapshot count" 4 count;
        check_bool "sum >= 150" true (sum_ns >= 150);
        check_int "min is the clamped record" 0 min_ns;
        check_bool "max >= 100" true (max_ns >= 100)
      | _ -> Alcotest.fail "expected a timer entry")

let reset_zeroes () =
  with_enabled (fun () ->
      let c = Obs.Counter.make "t.reset.counter" in
      let tm = Obs.Timer.make "t.reset.timer" in
      Obs.Counter.add c 7;
      Obs.Timer.record_ns tm 10;
      Obs.reset ();
      check_int "counter zeroed" 0 (Obs.Counter.value c);
      check_int "timer zeroed" 0 (Obs.Timer.count tm);
      (* handles stay live after reset *)
      Obs.Counter.incr c;
      check_int "counter usable" 1 (Obs.Counter.value c))

(* --- spans --- *)

let span_nesting () =
  with_enabled (fun () ->
      Obs.Span.with_ ~name:"outer" (fun () ->
          Obs.Span.with_ ~name:"inner" (fun () -> ());
          Obs.Span.with_ ~name:"inner" (fun () -> ()));
      Obs.Span.with_ ~name:"outer" (fun () -> ());
      let count name =
        match entry name with
        | Obs.Snapshot.Timer { count; _ } -> count
        | _ -> Alcotest.fail "expected a timer entry"
      in
      check_int "outer recorded" 2 (count "outer");
      check_int "inner nested under outer" 2 (count "outer/inner"))

let span_unwinds_on_exception () =
  with_enabled (fun () ->
      (try Obs.Span.with_ ~name:"boom" (fun () -> failwith "x") with Failure _ -> ());
      (* the stack was popped: a sibling span is not nested under boom *)
      Obs.Span.with_ ~name:"after" (fun () -> ());
      check_bool "boom recorded" true (List.mem_assoc "boom" (Obs.Snapshot.take ()));
      check_bool "after top-level" true (List.mem_assoc "after" (Obs.Snapshot.take ())))

(* --- snapshots --- *)

let snapshot_sorted_and_round_trips () =
  with_enabled (fun () ->
      Obs.Counter.add (Obs.Counter.make "t.snap.b") 2;
      Obs.Gauge.set (Obs.Gauge.make ~det:true "t.snap.a") 5;
      Obs.Timer.record_ns (Obs.Timer.make "t.snap.c") 100;
      let snap = Obs.Snapshot.take () in
      let names = List.map fst snap in
      Alcotest.(check (list string)) "sorted" (List.sort compare names) names;
      let jsonl = Obs.Snapshot.to_jsonl snap in
      match Obs.Snapshot.of_jsonl jsonl with
      | Error msg -> Alcotest.failf "round trip failed: %s" msg
      | Ok parsed ->
        check_bool "round trip preserves everything" true (Obs.Snapshot.diff snap parsed = []))

let of_jsonl_rejects_garbage () =
  let check_err s =
    match Obs.Snapshot.of_jsonl s with
    | Error msg -> check_bool "names line 1" true (String.length msg > 0)
    | Ok _ -> Alcotest.failf "accepted %S" s
  in
  check_err "not json";
  check_err {|{"kind":"counter","name":"x"}|};
  check_err {|{"det":true,"kind":"rocket","name":"x","value":1}|}

let diff_reports_changes () =
  let counter ?(det = true) value = Obs.Snapshot.Counter { det; value } in
  let a = [ ("both", counter 1); ("only-a", counter 2) ] in
  let b = [ ("both", counter 3); ("only-b", counter 4) ] in
  let lines = Obs.Snapshot.diff a b in
  check_int "three differences" 3 (List.length lines);
  check_bool "removal listed" true (List.exists (fun l -> l.[0] = '-') lines);
  check_bool "addition listed" true (List.exists (fun l -> l.[0] = '+') lines);
  check_bool "change listed" true (List.exists (fun l -> l.[0] = '~') lines);
  check_int "identical" 0 (List.length (Obs.Snapshot.diff a a))

let diff_det_only () =
  let a =
    [
      ("c.det", Obs.Snapshot.Counter { det = true; value = 1 });
      ("c.free", Obs.Snapshot.Counter { det = false; value = 10 });
      ("t", Obs.Snapshot.Timer { count = 1; sum_ns = 5; min_ns = 5; max_ns = 5 });
    ]
  in
  let b =
    [
      ("c.det", Obs.Snapshot.Counter { det = true; value = 1 });
      ("c.free", Obs.Snapshot.Counter { det = false; value = 99 });
      ("t", Obs.Snapshot.Timer { count = 2; sum_ns = 9; min_ns = 4; max_ns = 5 });
    ]
  in
  check_bool "full diff differs" true (Obs.Snapshot.diff a b <> []);
  check_int "det-only ignores timers and free counters" 0
    (List.length (Obs.Snapshot.diff ~det_only:true a b))

(* --- domain safety --- *)

let multi_domain_exact () =
  with_enabled (fun () ->
      let c = Obs.Counter.make "t.domains.counter" in
      let tm = Obs.Timer.make "t.domains.timer" in
      let per_domain = 10_000 in
      let body () =
        for _ = 1 to per_domain do
          Obs.Counter.incr c;
          Obs.Timer.record_ns tm 1
        done
      in
      let domains = List.init 4 (fun _ -> Domain.spawn body) in
      List.iter Domain.join domains;
      check_int "no lost counter updates" (4 * per_domain) (Obs.Counter.value c);
      check_int "no lost timer updates" (4 * per_domain) (Obs.Timer.count tm))

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "registration and kinds" `Quick registration;
          Alcotest.test_case "disabled is a no-op" `Quick disabled_is_noop;
          Alcotest.test_case "counter updates" `Quick counter_updates;
          Alcotest.test_case "gauge updates" `Quick gauge_updates;
          Alcotest.test_case "timer updates" `Quick timer_updates;
          Alcotest.test_case "reset zeroes" `Quick reset_zeroes;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting paths" `Quick span_nesting;
          Alcotest.test_case "unwinds on exception" `Quick span_unwinds_on_exception;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "sorted and round trips" `Quick snapshot_sorted_and_round_trips;
          Alcotest.test_case "of_jsonl rejects garbage" `Quick of_jsonl_rejects_garbage;
          Alcotest.test_case "diff reports changes" `Quick diff_reports_changes;
          Alcotest.test_case "diff det-only" `Quick diff_det_only;
        ] );
      ("domains", [ Alcotest.test_case "exact multi-domain counts" `Quick multi_domain_exact ]);
    ]
