(* Tests for the trace checker and the Gantt renderer: beyond checking
   good traces (covered by the property suite), the checker must actually
   catch manufactured violations. *)

module Time = Model.Time
module Engine = Sim.Engine

let check_bool = Alcotest.(check bool)
let ts = Core_helpers.taskset

let job id task_index task release =
  Sim.Job.make ~id ~task_index ~task ~release

let simple_taskset = ts [ ("a", "2", "5", "5", 6); ("b", "2", "5", "5", 5) ]
let task_a = Model.Taskset.nth simple_taskset 0
let task_b = Model.Taskset.nth simple_taskset 1

let fabricate segments outcome =
  { Engine.outcome; stats = (Engine.run (Engine.default_config ~fpga_area:10 ~policy:Sim.Policy.edf_nf) (ts [ ("x", "1", "5", "5", 1) ])).Engine.stats; segments }

let has_violation ~substring violations =
  List.exists
    (fun v ->
      let what = v.Trace.Checker.what in
      let n = String.length substring in
      let rec scan i = i + n <= String.length what && (String.sub what i n = substring || scan (i + 1)) in
      scan 0)
    violations

(* a fabricated segment where both jobs run although their areas sum
   beyond the device *)
let overcommit_caught () =
  let ja = job 0 0 task_a Time.zero and jb = job 1 1 task_b Time.zero in
  let seg =
    {
      Engine.t0 = Time.zero;
      t1 = Time.of_units 2;
      running = [ { Engine.job = ja; region = None }; { Engine.job = jb; region = None } ];
      waiting = [];
    }
  in
  let r = fabricate [ seg ] Engine.No_miss in
  (* area 6 + 5 = 11 > 8 *)
  check_bool "overcommit detected" true
    (has_violation ~substring:"exceeds A(H)" (Trace.Checker.check ~fpga_area:8 r))

let gap_caught () =
  let ja = job 0 0 task_a Time.zero in
  let seg t0 t1 =
    {
      Engine.t0 = Time.of_units t0;
      t1 = Time.of_units t1;
      running = [ { Engine.job = ja; region = None } ];
      waiting = [];
    }
  in
  let r = fabricate [ seg 0 1; seg 2 3 ] Engine.No_miss in
  check_bool "gap detected" true
    (has_violation ~substring:"does not start" (Trace.Checker.check ~fpga_area:10 r))

let duplicate_running_caught () =
  let ja = job 0 0 task_a Time.zero in
  let seg =
    {
      Engine.t0 = Time.zero;
      t1 = Time.of_units 1;
      running = [ { Engine.job = ja; region = None }; { Engine.job = ja; region = None } ];
      waiting = [];
    }
  in
  let r = fabricate [ seg ] Engine.No_miss in
  check_bool "duplicate detected" true
    (has_violation ~substring:"twice" (Trace.Checker.check ~fpga_area:20 r))

let overlapping_regions_caught () =
  let ja = job 0 0 task_a Time.zero and jb = job 1 1 task_b Time.zero in
  let seg =
    {
      Engine.t0 = Time.zero;
      t1 = Time.of_units 1;
      running =
        [
          { Engine.job = ja; region = Some { Fpga.Device.start = 0; width = 6 } };
          { Engine.job = jb; region = Some { Fpga.Device.start = 4; width = 5 } };
        ];
      waiting = [];
    }
  in
  let r = fabricate [ seg ] Engine.No_miss in
  check_bool "overlap detected" true
    (has_violation ~substring:"overlapping" (Trace.Checker.check ~fpga_area:20 r))

let early_run_caught () =
  let ja = job 0 0 task_a (Time.of_units 3) in
  let seg =
    {
      Engine.t0 = Time.zero;
      t1 = Time.of_units 1;
      running = [ { Engine.job = ja; region = None } ];
      waiting = [];
    }
  in
  let r = fabricate [ seg ] Engine.No_miss in
  check_bool "early execution detected" true
    (has_violation ~substring:"before its release" (Trace.Checker.check ~fpga_area:10 r))

let missed_deadline_unreported_caught () =
  (* the job runs for 1 of its 2 units then disappears; no miss declared *)
  let ja = job 0 0 task_a Time.zero in
  let seg =
    {
      Engine.t0 = Time.zero;
      t1 = Time.of_units 1;
      running = [ { Engine.job = ja; region = None } ];
      waiting = [];
    }
  in
  let idle =
    { Engine.t0 = Time.of_units 1; t1 = Time.of_units 6; running = []; waiting = [] }
  in
  let r = fabricate [ seg; idle ] Engine.No_miss in
  check_bool "silent miss detected" true
    (has_violation ~substring:"no miss declared" (Trace.Checker.check ~fpga_area:10 r))

let nf_alpha_violation_caught () =
  (* device 10, job b (area 5) waits while only job a (area 6) runs:
     occupied 6 >= 10 - (5-1) = 6: fine.  Shrink the running job to
     area... use task_b as runner (5) and task_a waiter (6):
     occupied 5 < 10 - (6-1) = 5? 5 < 5 false: boundary holds.
     Use a device of 12: occupied 5 < 12 - 5 = 7: violation. *)
  let ja = job 0 0 task_a Time.zero and jb = job 1 1 task_b Time.zero in
  let seg =
    {
      Engine.t0 = Time.zero;
      t1 = Time.of_units 1;
      running = [ { Engine.job = jb; region = None } ];
      waiting = [ ja ];
    }
  in
  let r = fabricate [ seg ] Engine.No_miss in
  check_bool "lemma-2 violation detected" true
    (Trace.Checker.check_nf_work_conserving ~fpga_area:12 r <> []);
  check_bool "lemma-1 violation detected" true
    (Trace.Checker.check_fkf_work_conserving ~fpga_area:12 ~amax:6 r <> [])

(* --- edge cases --- *)

let empty_trace_clean () =
  let r = fabricate [] Engine.No_miss in
  check_bool "no segments, no violations" true (Trace.Checker.check ~fpga_area:10 r = []);
  check_bool "nf lemma trivially holds" true
    (Trace.Checker.check_nf_work_conserving ~fpga_area:10 r = []);
  check_bool "fkf lemma trivially holds" true
    (Trace.Checker.check_fkf_work_conserving ~fpga_area:10 ~amax:6 r = [])

let zero_horizon_result () =
  let cfg = Engine.default_config ~fpga_area:10 ~policy:Sim.Policy.edf_nf in
  let cfg = { cfg with Engine.horizon = Time.zero; record_trace = true } in
  let r = Engine.run cfg simple_taskset in
  check_bool "no miss at horizon 0" true (r.Engine.outcome = Engine.No_miss);
  check_bool "zero-horizon trace checks clean" true (Trace.Checker.check ~fpga_area:10 r = [])

let pp_violation_output () =
  let v = { Trace.Checker.at = Time.of_units 3; what = "boom" } in
  Alcotest.(check string) "formatted" "t=3: boom" (Format.asprintf "%a" Trace.Checker.pp_violation v)

let generic_work_conserving () =
  (* a custom occupancy floor through the generalized checker: require
     the device fully busy whenever anything waits *)
  let ja = job 0 0 task_a Time.zero and jb = job 1 1 task_b Time.zero in
  let seg =
    {
      Engine.t0 = Time.zero;
      t1 = Time.of_units 1;
      running = [ { Engine.job = ja; region = None } ];
      waiting = [ jb ];
    }
  in
  let r = fabricate [ seg ] Engine.No_miss in
  let full_when_contended ~occupied ~waiting =
    if waiting <> [] && occupied < 10 then [ "device not saturated under contention" ] else []
  in
  (match Trace.Checker.check_work_conserving ~violations_of:full_when_contended r with
   | [ v ] ->
     check_bool "violation at segment start" true (Time.equal v.Trace.Checker.at Time.zero)
   | other -> Alcotest.failf "expected one violation, got %d" (List.length other));
  (* and the instantiations still agree with their direct statements *)
  check_bool "lemma 2 via generic checker" true
    (Trace.Checker.check_nf_work_conserving ~fpga_area:11 r <> [])

(* --- gantt --- *)

let gantt_renders () =
  let cfg = Engine.default_config ~fpga_area:10 ~policy:Sim.Policy.edf_nf in
  let cfg = { cfg with Engine.horizon = Time.of_units 10; record_trace = true } in
  let r = Engine.run cfg simple_taskset in
  let s = Trace.Gantt.render ~fpga_area:10 simple_taskset r in
  check_bool "mentions task a" true (String.length s > 0 && String.sub s 0 1 = "a");
  check_bool "has execution marks" true (String.contains s '#');
  check_bool "reports no miss" true
    (has_violation ~substring:"no deadline miss"
       [ { Trace.Checker.at = Time.zero; what = s } ])

let gantt_without_trace () =
  let cfg = Engine.default_config ~fpga_area:10 ~policy:Sim.Policy.edf_nf in
  let r = Engine.run { cfg with Engine.horizon = Time.of_units 10 } simple_taskset in
  let s = Trace.Gantt.render ~fpga_area:10 simple_taskset r in
  check_bool "explains missing trace" true
    (has_violation ~substring:"record_trace" [ { Trace.Checker.at = Time.zero; what = s } ])

let gantt_miss_marked () =
  let bad = ts [ ("x", "6", "5", "5", 6); ("y", "6", "5", "5", 6) ] in
  let cfg = Engine.default_config ~fpga_area:10 ~policy:Sim.Policy.edf_nf in
  let cfg = { cfg with Engine.horizon = Time.of_units 10; record_trace = true } in
  let r = Engine.run cfg bad in
  let s = Trace.Gantt.render ~fpga_area:10 bad r in
  check_bool "miss reported" true
    (has_violation ~substring:"deadline miss" [ { Trace.Checker.at = Time.zero; what = s } ])

let () =
  Alcotest.run "trace"
    [
      ( "checker catches",
        [
          Alcotest.test_case "overcommitted area" `Quick overcommit_caught;
          Alcotest.test_case "segment gap" `Quick gap_caught;
          Alcotest.test_case "duplicate running job" `Quick duplicate_running_caught;
          Alcotest.test_case "overlapping regions" `Quick overlapping_regions_caught;
          Alcotest.test_case "execution before release" `Quick early_run_caught;
          Alcotest.test_case "silent deadline miss" `Quick missed_deadline_unreported_caught;
          Alcotest.test_case "work-conserving violations" `Quick nf_alpha_violation_caught;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "empty trace" `Quick empty_trace_clean;
          Alcotest.test_case "zero horizon" `Quick zero_horizon_result;
          Alcotest.test_case "pp_violation" `Quick pp_violation_output;
          Alcotest.test_case "generalized work-conserving checker" `Quick generic_work_conserving;
        ] );
      ( "gantt",
        [
          Alcotest.test_case "renders schedule" `Quick gantt_renders;
          Alcotest.test_case "explains missing trace" `Quick gantt_without_trace;
          Alcotest.test_case "marks deadline miss" `Quick gantt_miss_marked;
        ] );
    ]
