Crash-safe admission control: the admit daemon over stdio and socket,
recovery from its write-ahead journal, request-id dedup, the retrying
batch client, idle-timeout eviction, and the chaos harness.

Admission over stdio.  The second add is admitted (the analyzer
accepts the grown set), the duplicate of r1 is answered with the
stored reply bytes — same seq, not applied twice — and the rejected
oversized task mutates nothing:

  $ cat > mutations.jsonl <<'EOF'
  > {"op":"add-task","id":"r1","task":{"name":"tau1","C":"1.26","D":7,"T":7,"A":9}}
  > {"op":"add-task","id":"r2","task":{"name":"tau2","C":"0.95","D":5,"T":5,"A":6}}
  > {"op":"add-task","id":"r1","task":{"name":"tau1","C":"1.26","D":7,"T":7,"A":9}}
  > {"op":"add-task","id":"r3","task":{"name":"hog","C":"99","D":100,"T":100,"A":100}}
  > {"op":"query","id":"q"}
  > EOF
  $ redf admit --dir state < mutations.jsonl > replies.jsonl 2> stderr.log; echo "exit $?"
  exit 0
  $ cat stderr.log
  admit: state: recovered seq 0, 0 tasks (0 journal records replayed)
  $ grep -c '' replies.jsonl
  5
  $ sed -n 1p replies.jsonl | grep -c '"admitted":true.*"seq":1'
  1
  $ sed -n 2p replies.jsonl | grep -c '"admitted":true.*"seq":2'
  1

The duplicate r1 reply is byte-identical to the original:

  $ sed -n 3p replies.jsonl > retry-reply.jsonl
  $ sed -n 1p replies.jsonl | cmp - retry-reply.jsonl && echo dedup-identical
  dedup-identical
  $ sed -n 4p replies.jsonl | grep -c '"admitted":false'
  1
  $ sed -n 5p replies.jsonl | grep -o '"names":\[[^]]*\]'
  "names":["tau1","tau2"]

Restarting on the same --dir replays the journal back to exactly the
acknowledged state — including the dedup map, so the r1 retry still
gets its stored bytes after the restart:

  $ printf '%s\n' '{"op":"add-task","id":"r1","task":{"name":"tau1","C":"1.26","D":7,"T":7,"A":9}}' \
  >   '{"op":"query","id":"q2"}' \
  >   | redf admit --dir state > recovered.jsonl 2> stderr2.log; echo "exit $?"
  exit 0
  $ cat stderr2.log
  admit: state: recovered seq 2, 2 tasks (2 journal records replayed)
  $ sed -n 1p recovered.jsonl > recovered-retry.jsonl
  $ sed -n 1p replies.jsonl | cmp - recovered-retry.jsonl && echo dedup-survives-restart
  dedup-survives-restart
  $ sed -n 2p recovered.jsonl | grep -c '"seq":2.*"tasks":2'
  1

The same protocol over a Unix socket, driven by the retrying batch
client (retries are idle here — the transport is healthy — but the
flag exercises the resume-capable client end to end):

  $ redf admit --dir state --socket admit.sock 2> /dev/null & admit_pid=$!
  $ for i in $(seq 100); do [ -S admit.sock ] && break; sleep 0.1; done
  $ printf '%s\n' '{"op":"remove-task","id":"r4","name":"tau1"}' \
  >   '{"op":"what-if","id":"w","add":[{"name":"tau1","C":"1.26","D":7,"T":7,"A":9}]}' \
  >   '{"op":"query","id":"q3"}' > socket-reqs.jsonl
  $ redf batch socket-reqs.jsonl --connect admit.sock --retries 3 --backoff-ms 20 > socket-out.jsonl; echo "exit $?"
  exit 0
  $ kill -TERM $admit_pid; wait $admit_pid; echo "daemon exit $?"
  daemon exit 0
  $ sed -n 1p socket-out.jsonl | grep -c '"admitted":true.*"op":"remove-task".*"seq":3'
  1
  $ sed -n 2p socket-out.jsonl | grep -c '"op":"what-if"'
  1
  $ sed -n 3p socket-out.jsonl | grep -o '"names":\[[^]]*\]'
  "names":["tau2"]

The removal was journaled: one more restart sees seq 3 and one task.

  $ printf '{"op":"query"}\n' | redf admit --dir state 2>&1 >/dev/null
  admit: state: recovered seq 3, 1 tasks (3 journal records replayed)
  $ printf '{"op":"query"}\n' | redf admit --dir state 2>/dev/null | grep -o '"tasks":1'
  "tasks":1

An idle connection is evicted once --idle-timeout passes; the held
client sees the server close, after its answers arrived:

  $ redf serve --socket idle.sock --idle-timeout 0.3 2> /dev/null & idle_pid=$!
  $ for i in $(seq 100); do [ -S idle.sock ] && break; sleep 0.1; done
  $ printf '%s\n' '{"id":1,"analyzer":"GN2","fpga_area":10,"tasks":[{"C":"1.26","D":7,"T":7,"A":9}]}' > idle-req.jsonl
  $ redf batch idle-req.jsonl --connect idle.sock --hold 10 > idle-out.jsonl; echo "exit $?"
  exit 0
  $ kill -TERM $idle_pid; wait $idle_pid
  $ grep -c '"kind":"verdict"' idle-out.jsonl
  1
  $ grep -c 'connection closed by server' idle-out.jsonl
  1

The chaos harness: crash/restart cycles with fault injection armed,
recovered state checked against a reference model and every verdict
against a from-scratch analyzer run — deterministic from the seed:

  $ redf chaos-admit --dir chaos-state --seed 42 --cycles 12 --quiet > chaos.out; echo "exit $?"
  exit 0
  $ grep -c 'chaos-admit: ok (seed 42)' chaos.out
  1
