(* Cross-module property tests.  These check the paper's theorems
   empirically on random tasksets:

   - soundness: a taskset accepted by DP / GN1 / GN2 must simulate without
     a deadline miss under the matching scheduler.  Periods are drawn from
     {2,4,5,8,10} time units so the hyper-period divides 40 and, for a
     synchronous implicit-deadline set, a miss-free simulation over one
     hyper-period is a complete certificate for the synchronous case;
   - Danne's dominance theorem: EDF-FkF-schedulable implies
     EDF-NF-schedulable (observed per release pattern);
   - Lemmas 1 and 2: the simulator's work-conserving alpha flags;
   - every recorded trace satisfies the physical invariants. *)

module Time = Model.Time
module Engine = Sim.Engine
module Policy = Sim.Policy

let fpga_area = 10

let task_gen =
  QCheck2.Gen.(
    let* t_units = oneofl [ 2; 4; 5; 8; 10 ] in
    let period = Time.of_units t_units in
    let* c_ticks = int_range 1 (Time.ticks period) in
    let* area = int_range 1 10 in
    return (Model.Task.make ~exec:(Time.of_ticks c_ticks) ~deadline:period ~period ~area ()))

let taskset_gen =
  QCheck2.Gen.(list_size (int_range 2 5) task_gen >|= Model.Taskset.of_list)

(* bias towards schedulable sets so the soundness implications are not
   vacuous: scale execution times down by a random factor *)
let light_taskset_gen =
  QCheck2.Gen.(
    let* ts = taskset_gen in
    let* divisor = int_range 1 8 in
    return
      (Model.Taskset.of_list
         (List.map
            (fun (t : Model.Task.t) ->
              let c = max 1 (Time.ticks t.exec / divisor) in
              { t with Model.Task.exec = Time.of_ticks c })
            (Model.Taskset.to_list ts))))

let hyperperiod_exn ts =
  match Model.Taskset.hyperperiod ts with
  | Model.Taskset.Finite h -> h
  | Model.Taskset.Exceeds_cap -> Alcotest.fail "generator must produce finite hyperperiods"

let run_sim ?(record = false) ~policy ts =
  let cfg = Engine.default_config ~fpga_area ~policy in
  Engine.run { cfg with Engine.horizon = hyperperiod_exn ts; record_trace = record } ts

let miss_free r = r.Engine.outcome = Engine.No_miss

let soundness name accepts policy =
  Core_helpers.qtest ~count:500 name light_taskset_gen (fun ts ->
      (not (accepts ~fpga_area ts)) || miss_free (run_sim ~policy ts))

let prop_dp_sound_fkf = soundness "DP accept => EDF-FkF miss-free" Core.Dp.accepts Policy.edf_fkf
let prop_dp_sound_nf = soundness "DP accept => EDF-NF miss-free" Core.Dp.accepts Policy.edf_nf
let prop_gn1_sound_nf = soundness "GN1 accept => EDF-NF miss-free" Core.Gn1.accepts Policy.edf_nf

let prop_gn2_sound_fkf =
  soundness "GN2 accept => EDF-FkF miss-free" Core.Gn2.accepts Policy.edf_fkf

let prop_gn2_sound_nf = soundness "GN2 accept => EDF-NF miss-free" Core.Gn2.accepts Policy.edf_nf

let prop_composite_sound =
  soundness "composite accept => EDF-NF miss-free" Core.Composite.edf_nf_any Policy.edf_nf

(* the tests cover sporadic tasks: acceptance must survive randomly
   delayed arrivals too (periods become minimum inter-arrival times) *)
let sporadic_soundness name accepts policy =
  Core_helpers.qtest ~count:300 name light_taskset_gen (fun ts ->
      (not (accepts ~fpga_area ts))
      ||
      let cfg = Engine.default_config ~fpga_area ~policy in
      let cfg =
        {
          cfg with
          Engine.horizon = Time.of_units 200;
          Engine.release = Engine.Sporadic { seed = 97; max_delay = Time.of_units 3 };
        }
      in
      miss_free (Engine.run cfg ts))

let prop_dp_sound_sporadic =
  sporadic_soundness "DP accept => sporadic EDF-FkF miss-free" Core.Dp.accepts Policy.edf_fkf

let prop_gn1_sound_sporadic =
  sporadic_soundness "GN1 accept => sporadic EDF-NF miss-free" Core.Gn1.accepts Policy.edf_nf

let prop_gn2_sound_sporadic =
  sporadic_soundness "GN2 accept => sporadic EDF-FkF miss-free" Core.Gn2.accepts Policy.edf_fkf

(* Danne et al. [9]: if a taskset is EDF-FkF-schedulable it is also
   EDF-NF-schedulable.  We observe it per synchronous release pattern. *)
let prop_nf_dominates_fkf =
  Core_helpers.qtest ~count:500 "EDF-FkF miss-free => EDF-NF miss-free" taskset_gen (fun ts ->
      (not (miss_free (run_sim ~policy:Policy.edf_fkf ts)))
      || miss_free (run_sim ~policy:Policy.edf_nf ts))

(* Lemma 1 / Lemma 2 as measured by the simulator. *)
let prop_fkf_alpha =
  Core_helpers.qtest ~count:300 "EDF-FkF is global-alpha-work-conserving" taskset_gen (fun ts ->
      (run_sim ~policy:Policy.edf_fkf ts).Engine.stats.fkf_alpha_respected)

let prop_nf_alpha =
  Core_helpers.qtest ~count:300 "EDF-NF is interval-alpha-work-conserving" taskset_gen (fun ts ->
      (run_sim ~policy:Policy.edf_nf ts).Engine.stats.nf_alpha_respected)

(* Every recorded trace passes the physical invariant checker, for both
   policies and both placement modes. *)
let prop_traces_valid =
  Core_helpers.qtest ~count:150 "traces satisfy physical invariants" taskset_gen (fun ts ->
      List.for_all
        (fun (policy, placement) ->
          let cfg = Engine.default_config ~fpga_area ~policy in
          let cfg =
            { cfg with Engine.horizon = hyperperiod_exn ts; record_trace = true; placement }
          in
          Trace.Checker.check ~fpga_area (Engine.run cfg ts) = [])
        [
          (Policy.edf_nf, Engine.Migrating);
          (Policy.edf_fkf, Engine.Migrating);
          (Policy.edf_nf, Engine.Contiguous Fpga.Device.First_fit);
          (Policy.edf_fkf, Engine.Contiguous Fpga.Device.Best_fit);
        ])

(* The Lemma-2 checker agrees with the engine's incremental flag. *)
let prop_checker_agrees_with_flag =
  Core_helpers.qtest ~count:150 "NF alpha checker = engine flag" taskset_gen (fun ts ->
      let r = run_sim ~record:true ~policy:Policy.edf_nf ts in
      let flag = r.Engine.stats.nf_alpha_respected in
      let checker = Trace.Checker.check_nf_work_conserving ~fpga_area r = [] in
      flag = checker)

(* Simulation is deterministic. *)
let prop_sim_deterministic =
  Core_helpers.qtest ~count:100 "simulation deterministic" taskset_gen (fun ts ->
      let a = run_sim ~policy:Policy.edf_nf ts in
      let b = run_sim ~policy:Policy.edf_nf ts in
      a.Engine.outcome = b.Engine.outcome
      && a.Engine.stats.busy_column_ticks = b.Engine.stats.busy_column_ticks
      && a.Engine.stats.jobs_released = b.Engine.stats.jobs_released)

(* Under the paper's assumptions the GN1 (Lemma-3 form) is at least as
   accepting as the printed Theorem-2 variant, and integer-corrected DP is
   at least as accepting as Danne's original. *)
let prop_gn1_forms_ordered =
  Core_helpers.qtest ~count:300 "GN1 printed => GN1 lemma-3 form" light_taskset_gen (fun ts ->
      (not (Core.Gn1.accepts_printed ~fpga_area ts)) || Core.Gn1.accepts ~fpga_area ts)

let prop_dp_forms_ordered =
  Core_helpers.qtest ~count:300 "DP original => DP corrected" light_taskset_gen (fun ts ->
      (not (Core.Dp.accepts_original ~fpga_area ts)) || Core.Dp.accepts ~fpga_area ts)

(* Width-1 reduction on random sets: DP coincides with the direct GFB
   formula. *)
let width1_taskset_gen =
  QCheck2.Gen.(
    list_size (int_range 1 6) task_gen
    >|= fun l ->
    Model.Taskset.of_list (List.map (fun (t : Model.Task.t) -> { t with Model.Task.area = 1 }) l))

let prop_width1_gfb =
  Core_helpers.qtest ~count:300 "width-1 DP = direct GFB" width1_taskset_gen (fun ts ->
      List.for_all
        (fun m -> Core.Verdict.accepted (Core.Multiproc.gfb ~m ts) = Core.Multiproc.gfb_direct ~m ts)
        [ 1; 2; 3; 5 ])

(* The audit subsystem on the same generators: the consistency auditor
   must never find an inconsistency among the real analyzers and the
   simulator (this routes every generated taskset through the full
   lint + cross-analyzer audit), and the linter must stay consistent
   with the feasibility checker it surfaces. *)
let audit_config =
  { (Audit.Consistency.default_config ~fpga_area) with Audit.Consistency.shrink = false }

let no_inconsistency ts =
  List.for_all
    (fun (f : Audit.Consistency.finding) ->
      f.Audit.Consistency.severity = Audit.Diagnostic.Info)
    (Audit.Consistency.audit audit_config ts)

let prop_auditor_light = Core_helpers.qtest ~count:200 "auditor: no inconsistency (light sets)" light_taskset_gen no_inconsistency

let prop_auditor_heavy =
  Core_helpers.qtest ~count:200 "auditor: no inconsistency (unbiased sets)" taskset_gen
    no_inconsistency

let prop_lint_matches_feasibility =
  Core_helpers.qtest ~count:300 "lint errors iff infeasible or oversized" taskset_gen (fun ts ->
      let errors = Audit.Diagnostic.has_errors (Audit.Lint.lint ~fpga_area ts) in
      let infeasible =
        Core.Feasibility.check ~fpga_area ts <> [] || not (Model.Taskset.fits ts ~fpga_area)
      in
      errors = infeasible)

let prop_driver_clean_implies_accept_safe =
  Core_helpers.qtest ~count:100 "driver report agrees with its diagnostics" light_taskset_gen
    (fun ts ->
      let report = Audit.Driver.run ~config:audit_config ~fpga_area ts in
      Audit.Driver.exit_code report = if Audit.Driver.clean report then 0 else 2)

(* Partitioned acceptance implies global EDF-NF schedulability in
   simulation: a partitioned schedule is a legal (non-work-conserving)
   witness, and EDF-NF with migration does at least as well in practice on
   implicit-deadline sets.  We keep this as an observational property. *)
let prop_partitioned_sound =
  Core_helpers.qtest ~count:300 "partitioned accept => partitions individually feasible"
    light_taskset_gen (fun ts ->
      let plan = Core.Partitioned.first_fit_decreasing ~fpga_area ts in
      (not (Core.Partitioned.schedulable plan))
      || (Core.Partitioned.used_width plan <= fpga_area
         && List.for_all
              (fun (p : Core.Partitioned.partition) ->
                List.for_all (fun (t : Model.Task.t) -> t.area <= p.width) p.tasks)
              plan.Core.Partitioned.partitions))

let () =
  Alcotest.run "properties"
    [
      ( "soundness",
        [
          prop_dp_sound_fkf;
          prop_dp_sound_nf;
          prop_gn1_sound_nf;
          prop_gn2_sound_fkf;
          prop_gn2_sound_nf;
          prop_composite_sound;
          prop_dp_sound_sporadic;
          prop_gn1_sound_sporadic;
          prop_gn2_sound_sporadic;
        ] );
      ("dominance", [ prop_nf_dominates_fkf ]);
      ("work conserving", [ prop_fkf_alpha; prop_nf_alpha ]);
      ( "traces",
        [ prop_traces_valid; prop_checker_agrees_with_flag; prop_sim_deterministic ] );
      ( "test relationships",
        [ prop_gn1_forms_ordered; prop_dp_forms_ordered; prop_width1_gfb; prop_partitioned_sound ] );
      ( "audit",
        [
          prop_auditor_light;
          prop_auditor_heavy;
          prop_lint_matches_feasibility;
          prop_driver_clean_implies_accept_safe;
        ] );
    ]
