(* Tests for the event-driven EDF-NF / EDF-FkF simulator.  The crafted
   scenarios below are small enough to verify by hand; the schedules they
   must produce are worked out in the comments. *)

module Time = Model.Time
module Engine = Sim.Engine
module Policy = Sim.Policy

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let ts = Core_helpers.taskset

let config ?(policy = Policy.edf_nf) ?(horizon = 40) ?(record = false) ?placement fpga_area =
  let base = Engine.default_config ~fpga_area ~policy in
  {
    base with
    Engine.horizon = Time.of_units horizon;
    record_trace = record;
    placement = Option.value placement ~default:Engine.Migrating;
  }

let no_miss r = r.Engine.outcome = Engine.No_miss

(* One task alone on a big-enough device always meets its deadlines and
   executes exactly C per period. *)
let single_task () =
  let t = ts [ ("a", "2", "5", "5", 4) ] in
  let r = Engine.run (config 10 ~horizon:50) t in
  check_bool "schedulable" true (no_miss r);
  check_int "jobs released" 10 r.Engine.stats.jobs_released;
  check_int "jobs completed" 10 r.Engine.stats.jobs_completed;
  (* busy integral: 10 jobs * 2 units * 4 columns *)
  check_int "busy column ticks" (10 * 2 * 1000 * 4) r.Engine.stats.busy_column_ticks;
  check_int "never contended" 0 r.Engine.stats.contended_ticks

(* Two tasks that fit side by side never wait. *)
let parallel_tasks () =
  let t = ts [ ("a", "3", "5", "5", 4); ("b", "4", "5", "5", 6) ] in
  let r = Engine.run (config 10 ~horizon:50) t in
  check_bool "schedulable" true (no_miss r);
  check_int "no contention" 0 r.Engine.stats.contended_ticks;
  check_int "no preemptions" 0 r.Engine.stats.preemptions

(* Overload: C > D must miss at the first deadline. *)
let immediate_overload () =
  let t = ts [ ("a", "6", "5", "5", 4) ] in
  match (Engine.run (config 10) t).Engine.outcome with
  | Engine.Miss m ->
    check_int "task 0" 0 m.Engine.task_index;
    Core_helpers.check_time "at first deadline" (Time.of_units 5) m.Engine.at
  | Engine.No_miss -> Alcotest.fail "expected a deadline miss"

(* Early miss: the run stops at t=5 of a 40-unit horizon.  The busy
   integral covers only the 5 simulated units (the task runs the whole
   time at width 4), so the average must divide by the time actually
   simulated — 4.0 columns — not by the full horizon (which gave 0.5). *)
let average_busy_area_early_miss () =
  let t = ts [ ("a", "6", "5", "5", 4) ] in
  let r = Engine.run (config 10) t in
  check_bool "misses" false (no_miss r);
  check_int "elapsed stops at the miss" 5_000 r.Engine.stats.elapsed_ticks;
  check_int "busy integral over [0,5)" (5 * 1000 * 4) r.Engine.stats.busy_column_ticks;
  Alcotest.(check (float 1e-9)) "average over simulated time" 4.0 (Engine.average_busy_area r)

(* A run that never contends reports no occupancy floor at all, rather
   than a max_int sentinel. *)
let min_busy_option () =
  let t = ts [ ("a", "2", "5", "5", 4) ] in
  let r = Engine.run (config 10 ~horizon:50) t in
  check_bool "uncontended run has no floor" true
    (r.Engine.stats.min_busy_when_contended = None);
  (* and a contended run reports the real minimum: three tasks of
     widths 6/6/4 on 10 columns always leave someone waiting while 10
     columns are busy *)
  let t = ts [ ("t1", "2", "4", "4", 6); ("t2", "2", "4", "4", 6); ("t3", "3", "4", "4", 4) ] in
  let r = Engine.run (config 10 ~policy:Policy.edf_nf ~horizon:8) t in
  check_bool "contended" true (r.Engine.stats.contended_ticks > 0);
  match r.Engine.stats.min_busy_when_contended with
  | Some floor -> check_int "floor is the full device" 10 floor
  | None -> Alcotest.fail "expected an occupancy floor"

(* Completing exactly at the deadline is on time: a saturated C = D = T
   task never misses, under synchronous and offset releases alike. *)
let completion_at_deadline () =
  let t = ts [ ("a", "5", "5", "5", 4) ] in
  let r = Engine.run (config 10 ~horizon:20) t in
  check_bool "saturated task schedulable" true (no_miss r);
  check_int "all jobs complete" 4 r.Engine.stats.jobs_completed;
  let offset =
    { (config 10 ~horizon:21) with Engine.release = Engine.Offsets [ Time.of_units 1 ] }
  in
  let r = Engine.run offset t in
  check_bool "offset release schedulable" true (no_miss r);
  check_int "offset jobs complete" 4 r.Engine.stats.jobs_completed

(* A deadline falling exactly at the horizon is still checked, and a job
   completing there is on time: no spurious miss from the ordering of
   Deadline_check against completion at the final instant. *)
let deadline_at_horizon () =
  let t = ts [ ("a", "10", "10", "10", 4) ] in
  let r = Engine.run (config 10 ~horizon:10) t in
  check_bool "completion at the horizon deadline" true (no_miss r);
  check_int "job completed" 1 r.Engine.stats.jobs_completed;
  check_int "full horizon simulated" 10_000 r.Engine.stats.elapsed_ticks;
  let t = ts [ ("a", "5", "5", "10", 4) ] in
  let offset =
    { (config 10 ~horizon:10) with Engine.release = Engine.Offsets [ Time.of_units 5 ] }
  in
  let r = Engine.run offset t in
  check_bool "offset deadline at horizon met" true (no_miss r);
  check_int "offset job completed" 1 r.Engine.stats.jobs_completed;
  (* and an actual miss exactly at the horizon is still reported *)
  let t = ts [ ("a", "10", "10", "10", 4); ("b", "10", "10", "10", 8) ] in
  match (Engine.run (config 10 ~horizon:10) t).Engine.outcome with
  | Engine.Miss m -> Core_helpers.check_time "miss at the horizon" (Time.of_units 10) m.Engine.at
  | Engine.No_miss -> Alcotest.fail "expected a miss at the horizon"

(* The Definition-1 vs Definition-2 separation: tau1 and tau2 are both
   6 columns wide (they cannot run together on 10), tau3 is 4 wide with
   C=3, D=4.  Under EDF-NF tau3 runs at time 0 next to tau1 and finishes
   at 3 < 4.  Under EDF-FkF tau2 (earlier in queue order) blocks tau3, so
   tau3 only runs in [2,4) and misses at t=4. *)
let nf_beats_fkf () =
  let t = ts [ ("t1", "2", "4", "4", 6); ("t2", "2", "4", "4", 6); ("t3", "3", "4", "4", 4) ] in
  let nf = Engine.run (config 10 ~policy:Policy.edf_nf ~horizon:8) t in
  check_bool "NF schedulable" true (no_miss nf);
  match (Engine.run (config 10 ~policy:Policy.edf_fkf ~horizon:8)) t |> fun r -> r.Engine.outcome with
  | Engine.Miss m ->
    check_int "tau3 misses" 2 m.Engine.task_index;
    Core_helpers.check_time "at t=4" (Time.of_units 4) m.Engine.at
  | Engine.No_miss -> Alcotest.fail "expected FkF to miss"

(* EDF preemption: tau2 = (C=2, T=3, A=6) and tau1 = (C=3, T=D=10, A=6).
   They cannot share the device.  tau1 runs in the gaps [2,3), [5,6),
   [8,9): exactly 3 units by t=10, with tau2's jobs 2 and 3 preempting
   it. *)
let preemption_counted () =
  let t = ts [ ("t1", "3", "10", "10", 6); ("t2", "2", "3", "3", 6) ] in
  let r = Engine.run (config 10 ~policy:Policy.edf_fkf ~horizon:30 ~record:true) t in
  check_bool "schedulable" true (no_miss r);
  check_bool "preemptions observed" true (r.Engine.stats.preemptions >= 2)

(* Work-conserving flags on the paper's model (migrating placement). *)
let alpha_flags () =
  let t = ts [ ("t1", "2", "4", "4", 6); ("t2", "2", "4", "4", 6); ("t3", "3", "4", "4", 4) ] in
  let nf = Engine.run (config 10 ~policy:Policy.edf_nf ~horizon:8) t in
  check_bool "NF alpha respected" true nf.Engine.stats.nf_alpha_respected;
  let fkf = Engine.run (config 10 ~policy:Policy.edf_fkf ~horizon:8) t in
  check_bool "FkF alpha respected" true fkf.Engine.stats.fkf_alpha_respected

(* Release offsets shift the whole schedule. *)
let offsets_respected () =
  let t = ts [ ("a", "2", "5", "5", 4) ] in
  let cfg =
    { (config 10 ~horizon:12 ~record:true) with Engine.release = Engine.Offsets [ Time.of_units 3 ] }
  in
  let r = Engine.run cfg t in
  check_bool "schedulable" true (no_miss r);
  check_int "two jobs in [0,12]" 2 r.Engine.stats.jobs_released;
  (* nothing can run before the offset *)
  List.iter
    (fun (seg : Engine.segment) ->
      if Time.(seg.Engine.t1 <= Time.of_units 3) then
        check_int "idle before offset" 0 (List.length seg.Engine.running))
    r.Engine.segments

(* Sporadic arrivals: deterministic per seed, releases spaced at least
   one period apart, fewer jobs than the strictly periodic run. *)
let sporadic_releases () =
  let t = ts [ ("a", "1", "5", "5", 4) ] in
  let sporadic seed =
    {
      (config 10 ~horizon:100 ~record:true) with
      Engine.release = Engine.Sporadic { seed; max_delay = Time.of_units 3 };
    }
  in
  let r1 = Engine.run (sporadic 5) t in
  let r2 = Engine.run (sporadic 5) t in
  check_int "deterministic per seed" r1.Engine.stats.jobs_released r2.Engine.stats.jobs_released;
  let periodic = Engine.run (config 10 ~horizon:100) t in
  check_bool "delays reduce the job count" true
    (r1.Engine.stats.jobs_released < periodic.Engine.stats.jobs_released);
  (* inter-arrival >= period: successive releases of the task differ by
     at least 5 units *)
  let releases =
    List.concat_map
      (fun (seg : Engine.segment) ->
        List.filter_map
          (fun p -> if Time.equal p.Engine.job.Sim.Job.release seg.Engine.t0 then Some seg.Engine.t0 else None)
          seg.Engine.running)
      r1.Engine.segments
    |> List.sort_uniq Time.compare
  in
  let rec spaced = function
    | a :: (b :: _ as rest) ->
      check_bool "inter-arrival >= T" true Time.(Time.sub b a >= Time.of_units 5);
      spaced rest
    | _ -> ()
  in
  spaced releases;
  check_bool "sporadic run schedulable" true (no_miss r1)

(* A task wider than the device is rejected up front. *)
let too_wide_rejected () =
  let t = ts [ ("a", "1", "5", "5", 11) ] in
  Alcotest.check_raises "too wide" (Invalid_argument "Engine.run: task wider than the FPGA")
    (fun () -> ignore (Engine.run (config 10) t))

let offsets_arity_checked () =
  let t = ts [ ("a", "1", "5", "5", 1); ("b", "1", "5", "5", 1) ] in
  let cfg = { (config 10) with Engine.release = Engine.Offsets [ Time.zero ] } in
  Alcotest.check_raises "arity" (Invalid_argument "Engine.run: one offset per task required")
    (fun () -> ignore (Engine.run cfg t))

(* Contiguous placement: same three-task scenario; first-fit places tau1
   at [0,6) and tau3 at [6,10) under NF, so the outcome matches the
   migrating run here. *)
let contiguous_simple () =
  let t = ts [ ("t1", "2", "4", "4", 6); ("t2", "2", "4", "4", 6); ("t3", "3", "4", "4", 4) ] in
  let r =
    Engine.run
      (config 10 ~policy:Policy.edf_nf ~horizon:8 ~record:true
         ~placement:(Engine.Contiguous Fpga.Device.First_fit))
      t
  in
  check_bool "schedulable" true (no_miss r);
  check_bool "placements made" true (r.Engine.stats.placements_made > 0);
  (* every running job carries a region in contiguous mode *)
  List.iter
    (fun (seg : Engine.segment) ->
      List.iter
        (fun p -> check_bool "has region" true (p.Engine.region <> None))
        seg.Engine.running)
    r.Engine.segments

(* Fragmentation can cost schedulability: under migrating placement the
   taskset below is schedulable, under contiguous first-fit it misses.
   At t=0 first-fit places, in deadline order, tL (w=4, d=4) at [0,4),
   tM (w=3, d=5) at [4,7), tR (w=3, d=20) at [7,10).  tL and tR finish at
   t=1, leaving free blocks [0,4) and [7,10) around tM, which keeps its
   region until t=4.2.  t4 (w=6, released at t=1, absolute deadline 5.5)
   has a later deadline than tM, so it cannot displace it; it needs 6
   contiguous columns, finds none, and can only run from t=4.2 — missing
   at 5.5.  With migration the 7 free columns at t=1 are usable and t4
   finishes by 2.5. *)
let fragmentation_costs () =
  let t =
    ts
      [
        ("tL", "1", "4", "4", 4);
        ("tM", "4.2", "5", "5", 3);
        ("tR", "1", "20", "20", 3);
        ("t4", "1.5", "4.5", "20", 6);
      ]
  in
  let offsets = Engine.Offsets [ Time.zero; Time.zero; Time.zero; Time.of_units 1 ] in
  let base = config 10 ~policy:Policy.edf_nf ~horizon:20 in
  let migrating = { base with Engine.release = offsets } in
  check_bool "migrating schedulable" true (no_miss (Engine.run migrating t));
  let contiguous =
    { base with Engine.release = offsets; placement = Engine.Contiguous Fpga.Device.First_fit }
  in
  match (Engine.run contiguous t).Engine.outcome with
  | Engine.Miss m -> check_int "tau4 misses" 3 m.Engine.task_index
  | Engine.No_miss -> Alcotest.fail "expected fragmentation miss"

(* EDF-US puts a heavy task first even with a later deadline. *)
let edf_us_priority () =
  (* tau1: utilization 0.9 (heavy), long deadline; tau2: light, short
     deadline; they cannot run together.  Plain EDF runs tau2 first;
     EDF-US[0.5] runs tau1 first. *)
  let t = ts [ ("heavy", "9", "10", "10", 6); ("light", "1", "2", "2", 6) ] in
  let us_policy =
    Policy.edf_us ~threshold:(Rat.of_ints 1 2) ~measure:`Time ~rule:Policy.Fkf
  in
  let r = Engine.run (config 10 ~policy:us_policy ~horizon:2 ~record:true) t in
  (match r.Engine.segments with
   | seg :: _ ->
     (match seg.Engine.running with
      | [ p ] -> Alcotest.(check string) "heavy first" "heavy" p.Engine.job.Sim.Job.task.Model.Task.name
      | _ -> Alcotest.fail "expected exactly one running job")
   | [] -> Alcotest.fail "expected a trace");
  (* and the light task misses because of it *)
  match r.Engine.outcome with
  | Engine.Miss m -> check_int "light task misses" 1 m.Engine.task_index
  | Engine.No_miss -> Alcotest.fail "expected light task to miss under EDF-US"

(* Multiprocessor reduction: width-1 tasks on A(H)=m behave like global
   EDF on m processors; three unit tasks on two processors with total
   utilization 1.5 are schedulable, on one processor they are not. *)
let multiprocessor_special_case () =
  let t = ts [ ("a", "1", "2", "2", 1); ("b", "1", "2", "2", 1); ("c", "1", "2", "2", 1) ] in
  check_bool "m=2 ok" true (no_miss (Engine.run (config 2 ~horizon:20) t));
  check_bool "m=1 misses" false (no_miss (Engine.run (config 1 ~horizon:20) t))

(* The recorded trace is validated by the checker and both
   work-conserving lemmas hold on the paper's model. *)
let trace_checked () =
  let t = ts [ ("t1", "2", "4", "4", 6); ("t2", "2", "4", "4", 6); ("t3", "3", "4", "4", 4) ] in
  let r = Engine.run (config 10 ~policy:Policy.edf_nf ~horizon:8 ~record:true) t in
  Alcotest.(check (list (Alcotest.testable Trace.Checker.pp_violation (fun _ _ -> false))))
    "no violations" [] (Trace.Checker.check ~fpga_area:10 r);
  Alcotest.(check int) "lemma 2 holds" 0
    (List.length (Trace.Checker.check_nf_work_conserving ~fpga_area:10 r))

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "single task" `Quick single_task;
          Alcotest.test_case "parallel tasks" `Quick parallel_tasks;
          Alcotest.test_case "immediate overload" `Quick immediate_overload;
          Alcotest.test_case "average busy area after early miss" `Quick
            average_busy_area_early_miss;
          Alcotest.test_case "min busy option" `Quick min_busy_option;
          Alcotest.test_case "completion at deadline" `Quick completion_at_deadline;
          Alcotest.test_case "deadline at horizon" `Quick deadline_at_horizon;
          Alcotest.test_case "NF beats FkF" `Quick nf_beats_fkf;
          Alcotest.test_case "preemption counted" `Quick preemption_counted;
          Alcotest.test_case "alpha flags" `Quick alpha_flags;
          Alcotest.test_case "release offsets" `Quick offsets_respected;
          Alcotest.test_case "sporadic releases" `Quick sporadic_releases;
          Alcotest.test_case "too-wide task rejected" `Quick too_wide_rejected;
          Alcotest.test_case "offsets arity" `Quick offsets_arity_checked;
          Alcotest.test_case "multiprocessor special case" `Quick multiprocessor_special_case;
        ] );
      ( "placement",
        [
          Alcotest.test_case "contiguous simple" `Quick contiguous_simple;
          Alcotest.test_case "fragmentation costs schedulability" `Quick fragmentation_costs;
        ] );
      ( "policies", [ Alcotest.test_case "EDF-US priority" `Quick edf_us_priority ] );
      ("trace", [ Alcotest.test_case "checker passes" `Quick trace_checked ]);
    ]
