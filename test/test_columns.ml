(* The columnar/batch contract of this repo's analyzer core:
   Model.Taskset.Columns round-trips losslessly, and every columnar or
   batch fast path prints byte-for-byte what the record-at-a-time
   reference prints — same verdicts, same notes, same JSON — on random
   tasksets (constrained and unconstrained deadlines, tasks wider than
   the device, duplicated and permuted sets).

   Byte identity, not structural equality: the serve/batch front ends
   and the verdict cache both promise cached == fresh == batch at the
   byte level, so these properties pin the strongest visible form. *)

module Columns = Model.Taskset.Columns
module Time = Model.Time

(* deadlines both below and above the period, so GN2's d<=t / d>t
   branches and GN1's carry-in clamping all get exercised *)
let task_gen =
  QCheck2.Gen.(
    let* t_units = int_range 2 10 in
    let* d_units = int_range 1 12 in
    let period = Time.of_units t_units in
    let deadline = Time.of_units d_units in
    let c_cap = min (Time.ticks period) (Time.ticks deadline) in
    let* c_ticks = int_range 1 c_cap in
    let* area = int_range 1 12 in
    return (Model.Task.make ~exec:(Time.of_ticks c_ticks) ~deadline ~period ~area ()))

let taskset_gen =
  QCheck2.Gen.(
    let* tasks = list_size (int_range 1 7) task_gen in
    let* tasks = shuffle_l tasks in
    return (Model.Taskset.of_list tasks))

(* device narrow enough that some drawn tasks exceed it (reject_all
   path) and wide enough that full analyses run too *)
let area_gen = QCheck2.Gen.int_range 6 16

let case_gen = QCheck2.Gen.pair taskset_gen area_gen

let verdict_bytes v =
  Format.asprintf "%a" Core.Verdict.pp v ^ "\x00" ^ Core.Json.to_string (Core.Verdict.to_json v)

let qtest = Core_helpers.qtest

(* --- Columns round-trip --- *)

let prop_columns_roundtrip =
  qtest ~count:500 "Columns.to_taskset (of_taskset ts) = ts" taskset_gen (fun ts ->
      Model.Taskset.equal (Columns.to_taskset (Columns.of_taskset ts)) ts)

(* --- columnar decide == record-path reference, byte for byte --- *)

let bytes_ident name decide reference =
  qtest ~count:400
    (Printf.sprintf "%s: columnar decide == reference bytes" name)
    case_gen
    (fun (ts, fpga_area) ->
      String.equal (verdict_bytes (decide ~fpga_area ts)) (verdict_bytes (reference ~fpga_area ts)))

let prop_dp_ident = bytes_ident "DP" Core.Dp.decide Core.Dp.decide_reference
let prop_gn1_ident = bytes_ident "GN1" Core.Gn1.decide Core.Gn1.decide_reference
let prop_gn2_ident = bytes_ident "GN2" Core.Gn2.decide Core.Gn2.decide_reference

(* GN2's event sweep prunes lambda candidates; the exhaustive evaluator
   visits every candidate.  Verdict bytes must not notice. *)
let prop_gn2_pruning =
  bytes_ident "GN2 pruned vs exhaustive" Core.Gn2.decide Core.Gn2.decide_exhaustive

(* --- approx: columnar demand scan == record scan --- *)

let prop_approx_demand =
  qtest ~count:500 "approx: area_demand_cols == area_demand"
    QCheck2.Gen.(pair taskset_gen (int_range 0 30))
    (fun (ts, at_units) ->
      let at = Time.of_units at_units in
      Exact.Approx.area_demand_cols (Columns.of_taskset ts) ~at_ticks:(Time.ticks at)
      = Exact.Approx.area_demand ts ~at)

(* --- Analyzer.decide_all == mapping decide --- *)

let tasksets_gen = QCheck2.Gen.(array_size (int_range 0 5) taskset_gen)

let prop_decide_all_ident =
  qtest ~count:150 "Analyzer.decide_all == Array.map decide (all defaults)"
    QCheck2.Gen.(pair tasksets_gen area_gen)
    (fun (tss, fpga_area) ->
      List.for_all
        (fun (a : Core.Analyzer.t) ->
          let batch = Array.map verdict_bytes (a.decide_all ~fpga_area tss) in
          let one_by_one = Array.map (fun ts -> verdict_bytes (a.decide ~fpga_area ts)) tss in
          batch = one_by_one)
        Core.Analyzer.defaults)

(* --- Cache.Verdicts.decide_all == fresh decides, hits included --- *)

(* the batch deliberately contains duplicates (same taskset twice) so
   the miss-dedup path runs, and a second pass serves pure hits *)
let prop_cache_batch_ident =
  qtest ~count:100 "Verdicts.decide_all == fresh, duplicates and hits included"
    QCheck2.Gen.(pair (pair taskset_gen tasksets_gen) area_gen)
    (fun ((dup, tss), fpga_area) ->
      let tss = Array.concat [ [| dup |]; tss; [| dup |] ] in
      let cache = Cache.Verdicts.create ~capacity:64 () in
      let analyzer = Core.Analyzer.gn2 in
      let fresh = Array.map (fun ts -> verdict_bytes (analyzer.decide ~fpga_area ts)) tss in
      let first =
        Array.map verdict_bytes (Cache.Verdicts.decide_all cache ~analyzer ~fpga_area tss)
      in
      let second =
        Array.map verdict_bytes (Cache.Verdicts.decide_all cache ~analyzer ~fpga_area tss)
      in
      first = fresh && second = fresh)

let () =
  Alcotest.run "columns"
    [
      ("round-trip", [ prop_columns_roundtrip ]);
      ( "columnar == record bytes",
        [ prop_dp_ident; prop_gn1_ident; prop_gn2_ident; prop_gn2_pruning; prop_approx_demand ] );
      ("batch == single bytes", [ prop_decide_all_ident; prop_cache_batch_ident ]);
    ]
