(* Tests for the verdict cache: canonical keying (task order and names
   must not matter, analyzer identity and area must), LRU mechanics,
   and the load-bearing property that a cached verdict is exactly the
   verdict a fresh computation would produce — including the per-task
   check indices, which the cache remaps through the sort
   permutation. *)

open Core_helpers

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_str_list = Alcotest.(check (list string))

let verdict_str v = Core.Json.to_string (Core.Verdict.to_json v)

let table1 =
  taskset [ ("tau1", "1.26", "7", "7", 9); ("tau2", "0.95", "5", "5", 6) ]

let table1_swapped =
  taskset [ ("b", "0.95", "5", "5", 6); ("a", "1.26", "7", "7", 9) ]

(* --- canonicalization --- *)

let canonical_order_stable () =
  (* equal-parameter tasks keep their original relative order *)
  let ts = taskset [ ("x", "1", "5", "5", 2); ("y", "1", "5", "5", 2); ("z", "1", "4", "5", 2) ] in
  Alcotest.(check (array int)) "stable ties" [| 2; 0; 1 |] (Cache.Canonical.order ts)

let canonical_apply () =
  let canon o ts = Model.Taskset.to_csv (Cache.Canonical.apply o ts) in
  check_str "permutation-invariant canonical form"
    (canon (Cache.Canonical.order table1) table1)
    (canon (Cache.Canonical.order table1_swapped) table1_swapped)

let key_ignores_order_and_names () =
  let key ts = Cache.Canonical.key ~analyzer:Core.Analyzer.gn2 ~fpga_area:10 ts in
  check_str "same key" (key table1) (key table1_swapped)

let key_separates_requests () =
  let key ?(analyzer = Core.Analyzer.gn2) ?(fpga_area = 10) ts =
    Cache.Canonical.key ~analyzer ~fpga_area ts
  in
  let distinct what a b = check_bool what false (String.equal a b) in
  distinct "area matters" (key table1) (key ~fpga_area:11 table1);
  distinct "analyzer matters" (key table1) (key ~analyzer:Core.Analyzer.dp table1);
  let bumped = { Core.Analyzer.gn2 with Core.Analyzer.version = "2" } in
  distinct "version matters" (key table1) (key ~analyzer:bumped table1);
  distinct "parameters matter" (key table1)
    (key (taskset [ ("tau1", "1.26", "7", "7", 9); ("tau2", "0.95", "5", "6", 6) ]))

(* --- LRU --- *)

let lru_eviction_order () =
  let lru = Cache.Lru.create ~metrics_prefix:"t.lru1" ~capacity:2 () in
  Cache.Lru.put lru "a" 1;
  Cache.Lru.put lru "b" 2;
  Cache.Lru.put lru "c" 3;
  (* capacity 2: inserting c evicts a, the least recently used *)
  check_str_list "a evicted" [ "c"; "b" ] (Cache.Lru.keys_mru lru);
  check_bool "a gone" true (Cache.Lru.find lru "a" = None);
  check_int "evictions" 1 (Cache.Lru.stats lru).Cache.Lru.evictions

let lru_find_promotes () =
  let lru = Cache.Lru.create ~metrics_prefix:"t.lru2" ~capacity:2 () in
  Cache.Lru.put lru "a" 1;
  Cache.Lru.put lru "b" 2;
  check_bool "hit" true (Cache.Lru.find lru "a" = Some 1);
  Cache.Lru.put lru "c" 3;
  (* the hit made a most-recent, so b is the eviction victim *)
  check_str_list "b evicted" [ "c"; "a" ] (Cache.Lru.keys_mru lru);
  let s = Cache.Lru.stats lru in
  check_int "hits" 1 s.Cache.Lru.hits;
  check_int "misses" 0 s.Cache.Lru.misses

let lru_overwrite () =
  let lru = Cache.Lru.create ~metrics_prefix:"t.lru3" ~capacity:2 () in
  Cache.Lru.put lru "a" 1;
  Cache.Lru.put lru "b" 2;
  Cache.Lru.put lru "a" 10;
  check_int "no growth" 2 (Cache.Lru.length lru);
  check_bool "new value" true (Cache.Lru.find lru "a" = Some 10);
  check_str_list "overwrite promotes" [ "a"; "b" ] (Cache.Lru.keys_mru lru)

let lru_disabled () =
  let lru = Cache.Lru.create ~metrics_prefix:"t.lru4" ~capacity:0 () in
  Cache.Lru.put lru "a" 1;
  check_int "stays empty" 0 (Cache.Lru.length lru);
  check_bool "every find misses" true (Cache.Lru.find lru "a" = None);
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Lru.create: negative capacity") (fun () ->
      ignore (Cache.Lru.create ~metrics_prefix:"t.lru5" ~capacity:(-1) ()))

(* --- sharded LRU --- *)

let sharded_basics () =
  let c = Cache.Sharded.create ~metrics_prefix:"t.sh1" ~shards:4 ~capacity:16 () in
  check_int "shard count" 4 (Cache.Sharded.shards c);
  check_int "rounded-up capacity" 16 (Cache.Sharded.capacity c);
  let keys = List.init 12 (Printf.sprintf "key-%d") in
  List.iteri (fun i k -> Cache.Sharded.put c k i) keys;
  check_int "all stored" 12 (Cache.Sharded.length c);
  List.iteri
    (fun i k -> check_bool (Printf.sprintf "find %s" k) true (Cache.Sharded.find c k = Some i))
    keys;
  Cache.Sharded.put c "key-0" 100;
  check_int "overwrite does not grow" 12 (Cache.Sharded.length c);
  check_bool "overwritten" true (Cache.Sharded.find c "key-0" = Some 100)

let sharded_stats_summed () =
  let c = Cache.Sharded.create ~metrics_prefix:"t.sh2" ~shards:4 ~capacity:16 () in
  let keys = List.init 8 (Printf.sprintf "k%d") in
  (* 8 misses, then 8 hits, spread over the shards; the summed stats
     must account for every one exactly *)
  List.iter (fun k -> check_bool "miss" true (Cache.Sharded.find c k = None)) keys;
  List.iter (fun k -> Cache.Sharded.put c k 0) keys;
  List.iter (fun k -> check_bool "hit" true (Cache.Sharded.find c k = Some 0)) keys;
  let s = Cache.Sharded.stats c in
  check_int "misses summed" 8 s.Cache.Lru.misses;
  check_int "hits summed" 8 s.Cache.Lru.hits;
  check_int "no evictions" 0 s.Cache.Lru.evictions

let sharded_key_placement () =
  let c = Cache.Sharded.create ~metrics_prefix:"t.sh3" ~shards:8 ~capacity:8 () in
  List.iter
    (fun k ->
      let s = Cache.Sharded.shard_of_key c k in
      check_bool "in range" true (s >= 0 && s < 8);
      check_int "deterministic" s (Cache.Sharded.shard_of_key c k))
    [ ""; "a"; "key"; String.make 512 'z' ]

let sharded_degenerate () =
  let c = Cache.Sharded.create ~metrics_prefix:"t.sh4" ~shards:3 ~capacity:0 () in
  Cache.Sharded.put c "a" 1;
  check_int "capacity 0 disables" 0 (Cache.Sharded.length c);
  check_bool "every find misses" true (Cache.Sharded.find c "a" = None);
  Alcotest.check_raises "shards must be positive"
    (Invalid_argument "Sharded.create: shards must be >= 1") (fun () ->
      ignore (Cache.Sharded.create ~metrics_prefix:"t.sh5" ~shards:0 ~capacity:8 ()))

(* --- cached verdicts vs fresh ones --- *)

let cached_equals_fresh () =
  let cache = Cache.Verdicts.create ~metrics_prefix:"t.v1" ~capacity:16 () in
  List.iter
    (fun analyzer ->
      let fresh ts = analyzer.Core.Analyzer.decide ~fpga_area:10 ts in
      let cached ts = Cache.Verdicts.decide cache ~analyzer ~fpga_area:10 ts in
      (* first call populates, second is served from the cache; both
         permutations must equal their own fresh computation *)
      check_str "miss path" (verdict_str (fresh table1)) (verdict_str (cached table1));
      check_str "hit path" (verdict_str (fresh table1)) (verdict_str (cached table1));
      check_str "hit, permuted request"
        (verdict_str (fresh table1_swapped))
        (verdict_str (cached table1_swapped)))
    (Core.Analyzer.all ());
  let s = Cache.Verdicts.stats cache in
  check_int "one miss per analyzer" (List.length (Core.Analyzer.all ())) s.Cache.Lru.misses;
  check_int "two hits per analyzer" (2 * List.length (Core.Analyzer.all ())) s.Cache.Lru.hits

(* random (C, D, T, A) rows with C <= min(D, T), as integers so any
   permutation is still a valid taskset *)
let rows_gen =
  QCheck2.Gen.(
    list_size (int_range 1 6)
      (int_range 1 4 >>= fun c ->
       int_range c 9 >>= fun d ->
       int_range c 9 >>= fun t ->
       int_range 1 8 >>= fun a -> return (c, d, t, a)))

let taskset_of_rows name rows =
  Model.Taskset.of_list
    (List.mapi
       (fun i (c, d, t, a) ->
         Model.Task.make
           ~name:(Printf.sprintf "%s%d" name i)
           ~exec:(Model.Time.of_units c) ~deadline:(Model.Time.of_units d)
           ~period:(Model.Time.of_units t) ~area:a ())
       rows)

let remap_property =
  qtest ~count:300 "cached verdict equals fresh for permuted requests" rows_gen (fun rows ->
      QCheck2.assume (rows <> []);
      let ts = taskset_of_rows "p" rows in
      let ts_rev = taskset_of_rows "q" (List.rev rows) in
      let cache = Cache.Verdicts.create ~metrics_prefix:"t.v2" ~capacity:64 () in
      List.for_all
        (fun analyzer ->
          let fresh t = verdict_str (analyzer.Core.Analyzer.decide ~fpga_area:10 t) in
          let cached t = verdict_str (Cache.Verdicts.decide cache ~analyzer ~fpga_area:10 t) in
          (* prime with one order, then query the reverse: the cached
             verdict's checks must come back in the request's order *)
          String.equal (fresh ts) (cached ts)
          && String.equal (fresh ts_rev) (cached ts_rev))
        Core.Analyzer.defaults)

let parallel_workers_share_cache () =
  (* the same shared cache queried from 4 worker domains must give the
     bytes the serial run gives, for every request *)
  let requests =
    Array.init 64 (fun i ->
        let rows = [ (1 + (i mod 3), 5, 5, 2 + (i mod 4)); (2, 6 + (i mod 2), 7, 3) ] in
        taskset_of_rows (Printf.sprintf "r%d" i) rows)
  in
  let run jobs =
    let cache = Cache.Verdicts.create ~metrics_prefix:"t.v3" ~capacity:32 () in
    Parallel.parallel_map ~jobs
      (fun ts ->
        verdict_str (Cache.Verdicts.decide cache ~analyzer:Core.Analyzer.gn2 ~fpga_area:10 ts))
      requests
  in
  let serial = run 1 and parallel = run 4 in
  Array.iteri (fun i s -> check_str (Printf.sprintf "request %d" i) s parallel.(i)) serial

let sharded_verdicts_equal_unsharded () =
  (* sharding the verdict store changes lock granularity only: for the
     same request sequence, a 4-shard cache returns the bytes the
     1-shard cache (and a fresh computation) returns *)
  let requests = [ table1; table1_swapped; table1; table1_swapped ] in
  let run shards =
    let cache =
      Cache.Verdicts.create ~metrics_prefix:(Printf.sprintf "t.v4s%d" shards) ~shards ~capacity:16 ()
    in
    List.map
      (fun ts ->
        verdict_str (Cache.Verdicts.decide cache ~analyzer:Core.Analyzer.gn2 ~fpga_area:10 ts))
      requests
  in
  check_int "default is one shard"
    1
    (Cache.Verdicts.shards (Cache.Verdicts.create ~metrics_prefix:"t.v5" ~capacity:4 ()));
  check_str_list "same bytes" (run 1) (run 4);
  List.iter2
    (fun cached ts ->
      check_str "equals fresh" (verdict_str (Core.Analyzer.gn2.Core.Analyzer.decide ~fpga_area:10 ts)) cached)
    (run 4) requests

let () =
  Alcotest.run "cache"
    [
      ( "canonical",
        [
          Alcotest.test_case "stable order" `Quick canonical_order_stable;
          Alcotest.test_case "apply" `Quick canonical_apply;
          Alcotest.test_case "key ignores order and names" `Quick key_ignores_order_and_names;
          Alcotest.test_case "key separates requests" `Quick key_separates_requests;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick lru_eviction_order;
          Alcotest.test_case "find promotes" `Quick lru_find_promotes;
          Alcotest.test_case "overwrite" `Quick lru_overwrite;
          Alcotest.test_case "capacity 0 disables" `Quick lru_disabled;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "basics" `Quick sharded_basics;
          Alcotest.test_case "stats summed" `Quick sharded_stats_summed;
          Alcotest.test_case "key placement" `Quick sharded_key_placement;
          Alcotest.test_case "degenerate" `Quick sharded_degenerate;
        ] );
      ( "verdicts",
        [
          Alcotest.test_case "cached equals fresh" `Quick cached_equals_fresh;
          remap_property;
          Alcotest.test_case "parallel workers share cache" `Quick parallel_workers_share_cache;
          Alcotest.test_case "sharded equals unsharded" `Quick sharded_verdicts_equal_unsharded;
        ] );
    ]
