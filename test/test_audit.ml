(* Tests for the audit subsystem: one case per lint diagnostic, the
   diagnostic renderers, the counterexample shrinker, and the
   cross-analyzer consistency auditor — including the required negative
   control, a deliberately-unsound analyzer stub the auditor must
   flag. *)

module D = Audit.Diagnostic
module Lint = Audit.Lint
module Consistency = Audit.Consistency
module Driver = Audit.Driver

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let ts = Core_helpers.taskset
let fpga_area = 10

let rules ds = List.map (fun (d : D.t) -> d.D.rule) ds
let fires rule ds = List.mem rule (rules ds)

let severity_of rule ds =
  match List.find_opt (fun (d : D.t) -> d.D.rule = rule) ds with
  | Some d -> Some d.D.severity
  | None -> None

(* --- lint rules, one by one --- *)

let clean_set_lints_clean () =
  let ds = Lint.lint ~fpga_area (ts [ ("a", "1", "5", "5", 4); ("b", "2", "8", "8", 3) ]) in
  check_int "no diagnostics" 0 (List.length ds)

let exec_exceeds_window () =
  let ds = Lint.lint ~fpga_area (ts [ ("a", "6", "5", "5", 4) ]) in
  check_bool "fires" true (fires "exec-exceeds-window" ds);
  check_bool "is error" true (severity_of "exec-exceeds-window" ds = Some D.Error);
  (* C > T but C <= D is also a long-run overload *)
  let ds = Lint.lint ~fpga_area (ts [ ("a", "6", "7", "5", 4) ]) in
  check_bool "fires via period" true (fires "exec-exceeds-window" ds)

let device_overloaded () =
  let ds = Lint.lint ~fpga_area (ts [ ("a", "4", "5", "5", 8); ("b", "4", "5", "5", 8) ]) in
  check_bool "fires" true (fires "device-overloaded" ds);
  check_bool "is error" true (severity_of "device-overloaded" ds = Some D.Error)

let clique_overloaded () =
  (* pairwise exclusive (6+6 > 10), combined serial demand 1.6 > 1, but
     US = 8.0 does not overload the device on its own *)
  let ds = Lint.lint ~fpga_area (ts [ ("a", "4", "5", "5", 6); ("b", "4", "5", "5", 6) ]) in
  check_bool "fires" true (fires "exclusion-clique-overload" ds);
  check_bool "not device-overloaded" false (fires "device-overloaded" ds)

let wider_than_device () =
  let ds = Lint.lint ~fpga_area (ts [ ("a", "1", "5", "5", 11); ("b", "1", "5", "5", 2) ]) in
  check_bool "fires" true (fires "task-wider-than-device" ds);
  check_bool "is error" true (severity_of "task-wider-than-device" ds = Some D.Error);
  (* the analyzers indeed reject vacuously on such a set *)
  check_bool "DP rejects vacuously" false
    (Core.Dp.accepts ~fpga_area (ts [ ("a", "1", "5", "5", 11) ]))

let deadline_exceeds_period () =
  let ds = Lint.lint ~fpga_area (ts [ ("a", "1", "9", "5", 4); ("b", "1", "5", "5", 2) ]) in
  check_bool "fires" true (fires "deadline-exceeds-period" ds);
  check_bool "is warning" true (severity_of "deadline-exceeds-period" ds = Some D.Warning)

let degenerate_utilization () =
  let ds = Lint.lint ~fpga_area (ts [ ("a", "5", "5", "5", 4); ("b", "1", "5", "5", 2) ]) in
  check_bool "fires" true (fires "degenerate-utilization" ds);
  check_bool "is warning" true (severity_of "degenerate-utilization" ds = Some D.Warning)

let duplicate_names () =
  let ds = Lint.lint ~fpga_area (ts [ ("a", "1", "5", "5", 4); ("a", "1", "8", "8", 2) ]) in
  check_bool "fires" true (fires "duplicate-task-name" ds);
  (* empty names never count as duplicates *)
  let ds = Lint.lint ~fpga_area (ts [ ("", "1", "5", "5", 4); ("", "1", "8", "8", 2) ]) in
  check_bool "empty names exempt" false (fires "duplicate-task-name" ds);
  check_bool "but reported as empty" true (fires "empty-task-name" ds)

let negligible_utilization () =
  let ds = Lint.lint ~fpga_area (ts [ ("a", "0.001", "20", "20", 1); ("b", "1", "5", "5", 2) ]) in
  check_bool "fires" true (fires "negligible-utilization" ds);
  check_bool "is info" true (severity_of "negligible-utilization" ds = Some D.Info)

let single_task () =
  let ds = Lint.lint ~fpga_area (ts [ ("a", "1", "5", "5", 4) ]) in
  check_bool "fires" true (fires "single-task" ds);
  check_bool "is info" true (severity_of "single-task" ds = Some D.Info)

let hyperperiod_cap () =
  let set = ts [ ("a", "1", "7", "7", 2); ("b", "1", "11", "11", 2) ] in
  let ds = Lint.lint ~hyperperiod_cap:(Model.Time.of_units 50) ~fpga_area set in
  check_bool "fires under small cap" true (fires "hyperperiod-exceeds-cap" ds);
  let ds = Lint.lint ~fpga_area set in
  check_bool "silent under default cap" false (fires "hyperperiod-exceeds-cap" ds)

let clean_semantics () =
  let warn_only = [ D.warning ~rule:"w" "m" ] in
  check_bool "warnings pass by default" true (Lint.clean warn_only);
  check_bool "warnings fail strict" false (Lint.clean ~strict:true warn_only);
  check_bool "errors always fail" false (Lint.clean [ D.error ~rule:"e" "m" ]);
  check_bool "infos pass strict" true (Lint.clean ~strict:true [ D.info ~rule:"i" "m" ])

(* --- diagnostic rendering --- *)

let renders () =
  let d = D.warning ~task_index:1 ~rule:"some-rule" "quote \" and\nnewline" in
  let human = Format.asprintf "%a" D.pp d in
  check_bool "human names severity" true (String.length human > 7 && String.sub human 0 7 = "warning");
  let sexp = Format.asprintf "%a" D.pp_sexp d in
  let contains sub s =
    let n = String.length sub in
    let rec scan i = i + n <= String.length s && (String.sub s i n = sub || scan (i + 1)) in
    scan 0
  in
  check_bool "sexp has rule" true (contains "(rule some-rule)" sexp);
  check_bool "sexp has 1-based task" true (contains "(task 2)" sexp);
  check_bool "sexp escapes quotes" true (contains "\\\"" sexp);
  check_bool "sexp escapes newlines" true (contains "\\n" sexp)

let ordering () =
  let ds = [ D.info ~rule:"i" "m"; D.error ~rule:"e" "m"; D.warning ~rule:"w" "m" ] in
  Alcotest.(check (list string)) "sorted most severe first" [ "e"; "w"; "i" ]
    (rules (D.by_severity ds))

(* --- consistency auditor --- *)

(* three tasks of width 4 on a device of 10: every lint rule passes,
   but only two fit at once and the set misses deadlines *)
let contended = ts [ ("a", "4", "5", "5", 4); ("b", "4", "5", "5", 4); ("c", "4", "5", "5", 4) ]

let config = Consistency.default_config ~fpga_area

let real_analyzers_consistent () =
  check_int "no findings beyond info" 0
    (List.length
       (List.filter
          (fun (f : Consistency.finding) -> f.Consistency.severity <> D.Info)
          (Consistency.audit config contended)));
  List.iter
    (fun name ->
      let set = ts [ (name ^ "1", "1.26", "7", "7", 9); (name ^ "2", "0.95", "5", "5", 6) ] in
      check_int (name ^ " table clean") 0 (List.length (Consistency.audit config set)))
    [ "t" ]

let broken_analyzer_flagged () =
  let broken =
    Consistency.always_accept ~name:"BROKEN" ~sound_for:[ Consistency.Edf_nf; Consistency.Edf_fkf ]
  in
  let findings = Consistency.audit ~analyzers:[ broken ] config contended in
  let unsound =
    List.filter (fun (f : Consistency.finding) -> f.Consistency.rule = "unsound-accept") findings
  in
  check_bool "flagged" true (unsound <> []);
  List.iter
    (fun (f : Consistency.finding) ->
      check_bool "is error" true (f.Consistency.severity = D.Error);
      check_bool "names the analyzer" true (f.Consistency.analyzer = Some "BROKEN");
      check_bool "has a counterexample" true (f.Consistency.counterexample <> None))
    unsound;
  (* the emitted fixture is a valid CSV that still exhibits the miss *)
  match List.find_map Consistency.fixture unsound with
  | None -> Alcotest.fail "no fixture emitted"
  | Some csv ->
    let shrunk = Model.Taskset.of_csv csv in
    check_bool "fixture still misses" false
      (Sim.Engine.schedulable
         (Sim.Engine.default_config ~fpga_area ~policy:Sim.Policy.edf_nf)
         shrunk);
    check_bool "fixture no larger" true
      (Model.Taskset.size shrunk <= Model.Taskset.size contended)

let sound_for_wiring () =
  (* Theorem 3: a GN2 ACCEPT claims EDF-NF schedulability too; DP covers
     both via Danne's dominance; GN1 only EDF-NF *)
  check_bool "GN2 covers EDF-NF" true
    (List.mem Consistency.Edf_nf Consistency.gn2.Consistency.sound_for);
  check_bool "GN2 covers EDF-FkF" true
    (List.mem Consistency.Edf_fkf Consistency.gn2.Consistency.sound_for);
  check_bool "DP covers both" true
    (List.mem Consistency.Edf_nf Consistency.dp.Consistency.sound_for
    && List.mem Consistency.Edf_fkf Consistency.dp.Consistency.sound_for);
  check_bool "GN1 covers EDF-NF only" true
    (Consistency.gn1.Consistency.sound_for = [ Consistency.Edf_nf ])

let shrinker_minimizes () =
  let exhibits set =
    Model.Taskset.fits set ~fpga_area
    && not
         (Sim.Engine.schedulable
            (Sim.Engine.default_config ~fpga_area ~policy:Sim.Policy.edf_nf)
            set)
  in
  let shrunk = Consistency.shrink_counterexample ~exhibits contended in
  check_bool "still exhibits" true (exhibits shrunk);
  check_bool "no larger" true (Model.Taskset.size shrunk <= Model.Taskset.size contended);
  (* 1-minimal: removing any task loses the failure *)
  let n = Model.Taskset.size shrunk in
  if n > 1 then
    List.iteri
      (fun i () ->
        let without =
          Model.Taskset.of_list
            (List.filteri (fun j _ -> j <> i) (Model.Taskset.to_list shrunk))
        in
        check_bool "task-removal minimal" false (exhibits without))
      (List.init n (fun _ -> ()))

let wider_than_device_skips_simulation () =
  let findings = Consistency.audit config (ts [ ("w", "1", "5", "5", 99) ]) in
  check_bool "simulation skipped" true
    (List.exists
       (fun (f : Consistency.finding) -> f.Consistency.rule = "simulation-skipped")
       findings);
  check_bool "info only" true
    (List.for_all (fun (f : Consistency.finding) -> f.Consistency.severity = D.Info) findings)

(* --- driver --- *)

let driver_exit_codes () =
  let good = Driver.run ~fpga_area (ts [ ("a", "1", "5", "5", 4) ]) in
  check_int "clean exit 0" 0 (Driver.exit_code good);
  let bad = Driver.run ~fpga_area (ts [ ("a", "6", "5", "5", 4) ]) in
  check_int "error exit 2" 2 (Driver.exit_code bad);
  let warn = Driver.lint_only ~fpga_area (ts [ ("a", "1", "9", "5", 4); ("b", "1", "5", "5", 2) ]) in
  check_int "warning exit 0" 0 (Driver.exit_code warn);
  check_int "warning exit 2 strict" 2 (Driver.exit_code ~strict:true warn)

let driver_merges_diagnostics () =
  let broken = Consistency.always_accept ~name:"BROKEN" ~sound_for:[ Consistency.Edf_nf ] in
  let report =
    Driver.run
      ~analyzers:(Consistency.paper_analyzers @ [ broken ])
      ~fpga_area contended
  in
  let ds = Driver.diagnostics report in
  check_bool "lint section present" true (ds <> []);
  check_bool "unsound accept surfaced" true (fires "unsound-accept" ds);
  check_int "exit 2" 2 (Driver.exit_code report)

let () =
  Alcotest.run "audit"
    [
      ( "lint rules",
        [
          Alcotest.test_case "clean set" `Quick clean_set_lints_clean;
          Alcotest.test_case "exec-exceeds-window" `Quick exec_exceeds_window;
          Alcotest.test_case "device-overloaded" `Quick device_overloaded;
          Alcotest.test_case "exclusion-clique-overload" `Quick clique_overloaded;
          Alcotest.test_case "task-wider-than-device" `Quick wider_than_device;
          Alcotest.test_case "deadline-exceeds-period" `Quick deadline_exceeds_period;
          Alcotest.test_case "degenerate-utilization" `Quick degenerate_utilization;
          Alcotest.test_case "duplicate-task-name" `Quick duplicate_names;
          Alcotest.test_case "negligible-utilization" `Quick negligible_utilization;
          Alcotest.test_case "single-task" `Quick single_task;
          Alcotest.test_case "hyperperiod-exceeds-cap" `Quick hyperperiod_cap;
          Alcotest.test_case "clean semantics" `Quick clean_semantics;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "rendering and escaping" `Quick renders;
          Alcotest.test_case "severity ordering" `Quick ordering;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "real analyzers are consistent" `Quick real_analyzers_consistent;
          Alcotest.test_case "broken analyzer flagged" `Quick broken_analyzer_flagged;
          Alcotest.test_case "sound-for wiring (Theorem 3)" `Quick sound_for_wiring;
          Alcotest.test_case "shrinker 1-minimality" `Quick shrinker_minimizes;
          Alcotest.test_case "oversized task skips simulation" `Quick wider_than_device_skips_simulation;
        ] );
      ( "driver",
        [
          Alcotest.test_case "exit codes" `Quick driver_exit_codes;
          Alcotest.test_case "merged diagnostics" `Quick driver_merges_diagnostics;
        ] );
    ]
