(* Tests for the exact-analysis extensions: the processor-demand
   criterion (Core.Dbf), the demand-bound-backed partitioned test, and
   the exhaustive release-offset search (Sim.Exhaustive). *)

module Time = Model.Time

let check_bool = Alcotest.(check bool)
let ts = Core_helpers.taskset

(* --- demand bound function --- *)

let dbf_values () =
  let t = ts [ ("a", "2", "5", "5", 1) ] in
  Core_helpers.check_time "dbf before D" Time.zero (Core.Dbf.demand t ~at:(Time.of_units 4));
  Core_helpers.check_time "dbf at D" (Time.of_units 2) (Core.Dbf.demand t ~at:(Time.of_units 5));
  Core_helpers.check_time "dbf mid" (Time.of_units 2) (Core.Dbf.demand t ~at:(Time.of_units 9));
  Core_helpers.check_time "dbf second job" (Time.of_units 4)
    (Core.Dbf.demand t ~at:(Time.of_units 10));
  let two = ts [ ("a", "2", "2", "4", 1); ("b", "2", "3", "4", 1) ] in
  Core_helpers.check_time "dbf both deadlines" (Time.of_units 4)
    (Core.Dbf.demand two ~at:(Time.of_units 3))

let dbf_full_utilization () =
  (* implicit deadlines, UT = 1: EDF is optimal, must be schedulable *)
  let t = ts [ ("a", "2", "4", "4", 1); ("b", "2", "4", "4", 1) ] in
  check_bool "UT = 1 schedulable" true (Core.Dbf.schedulable t);
  let over = ts [ ("a", "3", "4", "4", 1); ("b", "2", "4", "4", 1) ] in
  check_bool "UT > 1 overloaded" true (Core.Dbf.uniprocessor_edf over = Core.Dbf.Overloaded)

let dbf_constrained_violation () =
  (* dbf(3) = 4 > 3 *)
  let t = ts [ ("a", "2", "2", "4", 1); ("b", "2", "3", "4", 1) ] in
  match Core.Dbf.uniprocessor_edf t with
  | Core.Dbf.Demand_exceeds { at; demand } ->
    Core_helpers.check_time "violation instant" (Time.of_units 3) at;
    Core_helpers.check_time "demand" (Time.of_units 4) demand
  | other ->
    Alcotest.failf "expected a demand violation, got %s"
      (Format.asprintf "%a" Core.Dbf.pp_result other)

let dbf_beats_density () =
  (* density = 1/1 + 4/8 = 1.5 rejects; the demand criterion proves the
     set schedulable (tau1 runs [0,1], tau2 [1,5], deadline 8) *)
  let t = ts [ ("a", "1", "1", "10", 1); ("b", "4", "8", "10", 1) ] in
  check_bool "density rejects" false (Core.Partitioned.accepts ~test:Core.Partitioned.Density ~fpga_area:1 t);
  check_bool "demand accepts" true (Core.Dbf.schedulable t);
  check_bool "partitioned with demand accepts" true
    (Core.Partitioned.accepts ~test:Core.Partitioned.Demand_bound ~fpga_area:1 t)

let dbf_check_points () =
  let t = ts [ ("a", "1", "1", "10", 1); ("b", "4", "8", "10", 1) ] in
  let points = Core.Dbf.check_points t in
  (* Baruah horizon: S = 1*9/10 + 4*2/10 = 1.7, UT = 0.5 -> 3.4;
     horizon = max(3.4, Dmax 8) = 8, so points are {1, 8} *)
  Alcotest.(check (list string)) "points" [ "1"; "8" ] (List.map Time.to_string points)

let dbf_truncation () =
  let t = ts [ ("a", "1", "1", "10", 1); ("b", "4", "8", "10", 1) ] in
  check_bool "tiny cap truncates" true
    (Core.Dbf.uniprocessor_edf ~horizon_cap:(Time.of_units 1) t = Core.Dbf.Horizon_truncated)

(* the demand criterion agrees with simulation on one "processor"
   (width-1 tasks on a 1-column device) for exact-horizon cases *)
let prop_dbf_matches_simulation =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 4)
        (let* t_units = oneofl [ 2; 4; 5; 8 ] in
         let period = Model.Time.of_units t_units in
         let* c = int_range 1 (Model.Time.ticks period) in
         let* d_frac = int_range 5 10 in
         let deadline = Model.Time.of_ticks (Model.Time.ticks period * d_frac / 10) in
         let exec = Model.Time.of_ticks (min c (Model.Time.ticks deadline)) in
         return (Model.Task.make ~exec ~deadline ~period ~area:1 ()))
      >|= Model.Taskset.of_list)
  in
  Core_helpers.qtest ~count:300 "dbf = uniprocessor EDF simulation" gen (fun t ->
      match Core.Dbf.uniprocessor_edf t with
      | Core.Dbf.Horizon_truncated -> true (* inconclusive *)
      | verdict ->
        let accepted = verdict = Core.Dbf.Schedulable in
        let hyper =
          match Model.Taskset.hyperperiod t with
          | Model.Taskset.Finite h -> h
          | Model.Taskset.Exceeds_cap -> Time.of_units 10_000
        in
        let dmax =
          List.fold_left
            (fun acc (x : Model.Task.t) -> Time.max acc x.deadline)
            Time.zero (Model.Taskset.to_list t)
        in
        let cfg = Sim.Engine.default_config ~fpga_area:1 ~policy:Sim.Policy.edf_nf in
        let cfg = { cfg with Sim.Engine.horizon = Time.add hyper dmax } in
        (* the demand criterion covers all release patterns; synchronous
           release is the uniprocessor worst case, so they must agree *)
        accepted = Sim.Engine.schedulable cfg t)

(* --- exhaustive offset search --- *)

let fpga_area = 10

(* found by randomized search (see DESIGN.md): the synchronous pattern
   is schedulable to the hyper-period, offsets (0, 2, 0.5) miss *)
let witness =
  ts [ ("t0", "3", "3", "3", 6); ("t1", "1", "3", "3", 4); ("t2", "1", "2", "2", 4) ]

let no_critical_instant () =
  check_bool "sync is not the worst case" true
    (Sim.Exhaustive.sync_is_not_worst_case ~grid:(Time.of_ticks 500) ~fpga_area
       ~policy:Sim.Policy.edf_nf witness
     = Some true);
  match
    Sim.Exhaustive.search ~grid:(Time.of_ticks 500) ~fpga_area ~policy:Sim.Policy.edf_nf witness
  with
  | Sim.Exhaustive.Miss_with_offsets { offsets; miss = _ } ->
    Alcotest.(check int) "one offset per task" 3 (List.length offsets)
  | _ -> Alcotest.fail "expected an offset assignment with a miss"

let exhaustive_schedulable () =
  let t = ts [ ("a", "1", "3", "3", 4); ("b", "1", "2", "2", 4) ] in
  match Sim.Exhaustive.search ~fpga_area ~policy:Sim.Policy.edf_nf t with
  | Sim.Exhaustive.Schedulable_all_offsets { combinations } ->
    (* grid 1: offsets {0,1,2} x {0,1} *)
    Alcotest.(check int) "combinations" 6 combinations
  | _ -> Alcotest.fail "expected schedulable for all offsets"

let exhaustive_limits () =
  let t = ts [ ("a", "1", "10", "10", 4); ("b", "1", "10", "10", 4) ] in
  (match
     Sim.Exhaustive.search ~grid:(Time.of_ticks 10) ~max_combinations:100 ~fpga_area
       ~policy:Sim.Policy.edf_nf t
   with
   | Sim.Exhaustive.Too_many_combinations { combinations } ->
     Alcotest.(check int) "counted" (1000 * 1000) combinations
   | _ -> Alcotest.fail "expected combination explosion");
  let awkward = ts [ ("a", "1", "7.001", "7.001", 4); ("b", "1", "6.997", "6.997", 4); ("c", "1", "6.991", "6.991", 4) ] in
  check_bool "unbounded hyperperiod" true
    (Sim.Exhaustive.search ~fpga_area ~policy:Sim.Policy.edf_nf awkward
     = Sim.Exhaustive.Hyperperiod_too_large)

(* exhaustive-search coherence on random small sets: if the search finds
   no miss on the offset grid, the synchronous simulation cannot miss
   either (offset 0 is on every grid) *)
let prop_exhaustive_covers_sync =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 2 3)
        (let* t_units = oneofl [ 2; 3; 4 ] in
         let period = Model.Time.of_units t_units in
         let* c = int_range 1 (Model.Time.ticks period) in
         let* area = int_range 3 8 in
         return (Model.Task.make ~exec:(Model.Time.of_ticks c) ~deadline:period ~period ~area ()))
      >|= Model.Taskset.of_list)
  in
  Core_helpers.qtest ~count:60 "exhaustive covers synchronous" gen (fun t ->
      match Sim.Exhaustive.search ~fpga_area ~policy:Sim.Policy.edf_nf t with
      | Sim.Exhaustive.Schedulable_all_offsets _ ->
        let hyper =
          match Model.Taskset.hyperperiod t with
          | Model.Taskset.Finite h -> h
          | Model.Taskset.Exceeds_cap -> assert false
        in
        let cfg = Sim.Engine.default_config ~fpga_area ~policy:Sim.Policy.edf_nf in
        Sim.Engine.schedulable { cfg with Sim.Engine.horizon = hyper } t
      | _ -> true)

(* --- the exact oracle (lib/exact) --- *)

let policy = Sim.Policy.edf_nf
let verdict_str v = Core.Json.to_string (Core.Verdict.to_json v)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* pinned alongside examples/tasksets/gap_*.csv: every sufficient test
   rejects, the oracle accepts with a full offset certificate *)
let oracle_gap_regression () =
  let cases =
    [
      (ts [ ("wide1", "1", "4", "4", 4); ("wide2", "1", "4", "4", 4) ], 4, 16);
      ( ts [ ("half1", "1", "3", "3", 2); ("half2", "1", "3", "3", 2); ("half3", "1", "3", "3", 2) ],
        2,
        27 );
    ]
  in
  List.iter
    (fun (t, area, combos) ->
      List.iter
        (fun a -> check_bool (a.Core.Analyzer.name ^ " rejects") false
             (Core.Analyzer.accepts a ~fpga_area:area t))
        Core.Analyzer.defaults;
      match Exact.Oracle.decide ~fpga_area:area ~policy t with
      | Exact.Oracle.Schedulable (Exact.Oracle.All_offsets { combinations; _ }) ->
        Alcotest.(check int) "combinations" combos combinations
      | _ -> Alcotest.fail "expected a full offset certificate")
    cases

(* pinned alongside examples/tasksets/infeasible_*.csv *)
let oracle_rejects_infeasible () =
  let exclusive = ts [ ("ex1", "2", "3", "4", 3); ("ex2", "2", "3", "4", 3) ] in
  (match Exact.Oracle.decide ~fpga_area:4 ~policy exclusive with
   | Exact.Oracle.Unschedulable (Exact.Oracle.Sync_miss _) -> ()
   | _ -> Alcotest.fail "expected a synchronous miss");
  let demand = ts [ ("dem1", "2", "2", "4", 3); ("dem2", "2", "2", "4", 3) ] in
  (match Exact.Oracle.decide ~fpga_area:4 ~policy demand with
   | Exact.Oracle.Unschedulable _ -> ()
   | _ -> Alcotest.fail "expected unschedulable");
  match Exact.Approx.analyze ~fpga_area:4 demand with
  | Exact.Approx.Refuted_at { at; demand = d; supply } ->
    Core_helpers.check_time "refutation instant" (Time.of_units 2) at;
    Alcotest.(check int) "demand column-ticks" (2 * 2 * Time.scale * 3) d;
    Alcotest.(check int) "supply column-ticks" (4 * 2 * Time.scale) supply
  | _ -> Alcotest.fail "expected an area-demand refutation"

(* the oracle's conclusion must agree with the primitives it is built
   from, checked independently per conclusion *)
let prop_oracle_matches_exhaustive =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 2 3)
        (let* t_units = oneofl [ 2; 3; 4 ] in
         let period = Model.Time.of_units t_units in
         let* c = int_range 1 (Model.Time.ticks period) in
         let* area = int_range 3 8 in
         return (Model.Task.make ~exec:(Model.Time.of_ticks c) ~deadline:period ~period ~area ()))
      >|= Model.Taskset.of_list)
  in
  Core_helpers.qtest ~count:60 "oracle agrees with Sim.Exhaustive and the engine" gen (fun t ->
      match Exact.Oracle.decide ~fpga_area ~policy t with
      | Exact.Oracle.Schedulable (Exact.Oracle.All_offsets { combinations; grid }) ->
        Sim.Exhaustive.search ~grid ~fpga_area ~policy t
        = Sim.Exhaustive.Schedulable_all_offsets { combinations }
      | Exact.Oracle.Unschedulable (Exact.Oracle.Sync_miss _) ->
        let horizon, _ = Exact.Interval.sync_horizon t in
        let cfg = Sim.Engine.default_config ~fpga_area ~policy in
        not (Sim.Engine.schedulable { cfg with Sim.Engine.horizon = horizon } t)
      | Exact.Oracle.Unschedulable (Exact.Oracle.Offset_miss { offsets; _ }) -> (
        match Sim.Exhaustive.search ~fpga_area ~policy t with
        | Sim.Exhaustive.Miss_with_offsets { offsets = o; _ } -> o = offsets
        | _ -> false)
      | _ -> true)

(* the sound direction of the epsilon contract: an approx REJECT claims
   infeasibility, so the oracle can never conclusively accept *)
let prop_approx_reject_implies_oracle_reject =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 2 3)
        (let* t_units = oneofl [ 2; 3; 4 ] in
         let period = Model.Time.of_units t_units in
         let* c = int_range 1 (Model.Time.ticks period) in
         let* d_frac = int_range 5 10 in
         let deadline = Model.Time.of_ticks (max 1 (Model.Time.ticks period * d_frac / 10)) in
         let exec = Model.Time.of_ticks (min c (Model.Time.ticks deadline)) in
         let* area = int_range 3 8 in
         return (Model.Task.make ~exec ~deadline ~period ~area ()))
      >|= Model.Taskset.of_list)
  in
  Core_helpers.qtest ~count:200 "approx REJECT => oracle does not conclusively accept" gen
    (fun t ->
      match Exact.Approx.analyze ~fpga_area t with
      | Exact.Approx.Accepted _ -> true
      | refutation -> (
        match Exact.Oracle.decide ~fpga_area ~policy t with
        | Exact.Oracle.Schedulable (Exact.Oracle.All_offsets _) -> false
        | Exact.Oracle.Schedulable (Exact.Oracle.Synchronous_only _) -> (
          (* a refutation point inside the certified synchronous horizon
             would contradict the certificate *)
          match refutation with
          | Exact.Approx.Refuted_at { at; _ } ->
            let horizon, truncated = Exact.Interval.sync_horizon t in
            truncated || Time.(at > horizon)
          | _ -> true)
        | _ -> true))

(* the oracle verdict canonicalizes internally, so a cache hit remapped
   through Cache.Verdicts is byte-for-byte a fresh computation on the
   permuted taskset *)
let exact_cached_equals_fresh_permuted () =
  let t = ts [ ("b", "1", "3", "3", 2); ("a", "1", "4", "4", 4); ("c", "2", "5", "5", 3) ] in
  let rev = Model.Taskset.of_list (List.rev (Model.Taskset.to_list t)) in
  List.iter
    (fun analyzer ->
      let cache = Cache.Verdicts.create ~metrics_prefix:"t.exact.cache" ~capacity:8 () in
      let fresh = analyzer.Core.Analyzer.decide ~fpga_area:6 rev in
      let (_ : Core.Verdict.t) = Cache.Verdicts.decide cache ~analyzer ~fpga_area:6 t in
      let cached = Cache.Verdicts.decide cache ~analyzer ~fpga_area:6 rev in
      Alcotest.(check string)
        ("cached = fresh for " ^ analyzer.Core.Analyzer.name)
        (verdict_str fresh) (verdict_str cached))
    [ Exact.Registry.exact_nf; Exact.Registry.approx_with Exact.Approx.default_eps ]

let oracle_jobs_deterministic () =
  let d j = Exact.Oracle.decide ~grid:(Time.of_ticks 500) ~jobs:j ~fpga_area ~policy witness in
  check_bool "oracle conclusion identical for -j1 and -j4" true (d 1 = d 4);
  match d 4 with
  | Exact.Oracle.Unschedulable (Exact.Oracle.Offset_miss _) -> ()
  | _ -> Alcotest.fail "expected the sub-grid witness offsets to refute"

(* --- registry --- *)

let registry_resolution () =
  Exact.Registry.ensure ();
  Exact.Registry.ensure ();
  (* idempotent *)
  let resolved name =
    match Core.Analyzer.of_name name with
    | Ok a -> a.Core.Analyzer.name
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check string) "exact" "exact" (resolved "exact");
  Alcotest.(check string) "exact-fkf" "exact-fkf" (resolved "EXACT-FKF");
  Alcotest.(check string) "bare approx = default eps" "approx[1/10]" (resolved "approx");
  Alcotest.(check string) "decimal eps normalizes" "approx[1/10]" (resolved "APPROX[0.1]");
  Alcotest.(check string) "fraction eps" "approx[1/100]" (resolved "approx[1/100]");
  check_bool "duplicate registration keeps one entry" true
    (List.length (List.filter (fun a -> a.Core.Analyzer.name = "exact") (Core.Analyzer.all ()))
     = 1);
  check_bool "zero eps rejected" true (Result.is_error (Core.Analyzer.of_name "approx[0]"));
  check_bool "negative eps rejected" true (Result.is_error (Core.Analyzer.of_name "approx[-1/2]"));
  check_bool "malformed eps rejected" true (Result.is_error (Core.Analyzer.of_name "approx[x]"));
  match Core.Analyzer.of_name "nope" with
  | Ok _ -> Alcotest.fail "bogus name resolved"
  | Error e ->
    check_bool "error lists exact" true (contains e "exact");
    check_bool "error lists the approx syntax" true (contains e "approx[EPS]")

let () =
  Alcotest.run "exact"
    [
      ( "dbf",
        [
          Alcotest.test_case "demand values" `Quick dbf_values;
          Alcotest.test_case "full utilization" `Quick dbf_full_utilization;
          Alcotest.test_case "constrained violation" `Quick dbf_constrained_violation;
          Alcotest.test_case "demand beats density" `Quick dbf_beats_density;
          Alcotest.test_case "check points" `Quick dbf_check_points;
          Alcotest.test_case "horizon truncation" `Quick dbf_truncation;
          prop_dbf_matches_simulation;
        ] );
      ( "exhaustive",
        [
          Alcotest.test_case "no critical instant witness" `Quick no_critical_instant;
          Alcotest.test_case "schedulable for all offsets" `Quick exhaustive_schedulable;
          Alcotest.test_case "search limits" `Quick exhaustive_limits;
          prop_exhaustive_covers_sync;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "gap regression (sufficient tests reject)" `Quick
            oracle_gap_regression;
          Alcotest.test_case "rejects infeasible sets" `Quick oracle_rejects_infeasible;
          Alcotest.test_case "cached = fresh under permutation" `Quick
            exact_cached_equals_fresh_permuted;
          Alcotest.test_case "deterministic for any jobs" `Quick oracle_jobs_deterministic;
          prop_oracle_matches_exhaustive;
          prop_approx_reject_implies_oracle_reject;
        ] );
      ("registry", [ Alcotest.test_case "name resolution" `Quick registry_resolution ]);
    ]
