(* Tests for the check-src static-analysis pass, run against the
   deliberately-flawed fixture modules in check_fixtures/.  Each rule
   family is pinned to its exact (rule, file, line, col) findings, so a
   location regression in the pass fails loudly, and the negative
   cases (Atomic state, justified allows, int compares) prove the
   rules do not over-fire. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* cwd during dune runtest is _build/default/test; fall back to the
   build mirror so `dune exec test/test_check.exe` from the root also
   works *)
let cmt_dir =
  let local = Filename.concat "check_fixtures" ".check_fixtures.objs/byte" in
  if Sys.file_exists local then local else Filename.concat "_build/default/test" local
let cmt name = Filename.concat cmt_dir ("check_fixtures__" ^ name ^ ".cmt")

let findings ?(rules = Check.Rules.all) name =
  match Check.Analysis.run_cmt ~rules (cmt name) with
  | Ok r -> r.Check.Analysis.findings
  | Error e -> Alcotest.failf "run_cmt %s: %s" name e

(* a finding rendered as a comparable quadruple *)
let quad (f : Check.Finding.t) = (f.rule, f.line, f.col, Check.Finding.is_error f)
let quads fs = List.map quad fs

let pp_quad fmt (rule, line, col, err) =
  Format.fprintf fmt "(%s,%d,%d,%b)" rule line col err

let quad_t = Alcotest.testable pp_quad ( = )

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0
let check_quads = Alcotest.(check (list quad_t))

(* --- one test per rule family --- *)

let det_purity () =
  check_quads "fix_det findings"
    [ ("det-purity", 6, 17, true); ("det-purity", 7, 14, true) ]
    (quads (findings "Fix_det"))

let domain_safety () =
  (* the bare ref is flagged; the Atomic and the allowed Hashtbl are not *)
  check_quads "fix_domain findings"
    [ ("domain-safety", 5, 4, true) ]
    (quads (findings "Fix_domain"))

let exact_arith () =
  check_quads "fix_exact findings"
    [
      ("exact-arith", 5, 11, true);
      ("exact-arith", 6, 14, true);
      ("exact-arith", 7, 15, true);
      ("exact-arith", 8, 38, true);
    ]
    (quads (findings "Fix_exact"))

let poly_compare () =
  check_quads "fix_poly findings"
    [ ("poly-compare", 4, 63, true); ("poly-compare", 5, 64, true) ]
    (quads (findings "Fix_poly"))

let suppression () =
  (* the justified allow silences its Hashtbl.iter entirely; the
     justification-free allow is an allow-syntax error and suppresses
     nothing, so the Sys.getenv it covers still fires; the allow with
     nothing beneath it warns *)
  check_quads "fix_allow findings"
    [
      ("det-purity", 10, 22, true);
      ("allow-syntax", 10, 40, true);
      ("unused-allow", 11, 20, false);
    ]
    (quads (findings "Fix_allow"))

let clean_module () =
  check_int "fix_clean findings" 0 (List.length (findings "Fix_clean"))

(* --- rule selection and report plumbing --- *)

let rule_selection () =
  (* disabling det-purity drops its findings but keeps allow hygiene:
     the unused-allow warning for a disabled rule is also dropped *)
  let only_exact = findings ~rules:[ Check.Rules.Exact_arith ] "Fix_det" in
  check_int "det findings with only exact-arith" 0 (List.length only_exact);
  let only_det = findings ~rules:[ Check.Rules.Det_purity ] "Fix_exact" in
  check_int "exact findings with only det-purity" 0 (List.length only_det)

let driver_report () =
  match Check.Driver.run [ cmt_dir ] with
  | Error e -> Alcotest.failf "driver: %s" e
  | Ok report ->
    check_int "modules" 8 report.Check.Driver.modules;
    check_int "errors" 11 (Check.Driver.errors report);
    check_int "warnings" 2 (Check.Driver.warnings report);
    check_bool "not clean" false (Check.Driver.clean report);
    check_int "exit 1" 1 (Check.Driver.exit_code report)

let strict_mode () =
  (* a warnings-only report is clean by default and dirty under strict *)
  match Check.Driver.run [ cmt "Fix_warn" ] with
  | Error e -> Alcotest.failf "driver: %s" e
  | Ok report ->
    check_int "errors" 0 (Check.Driver.errors report);
    check_int "warnings" 1 (Check.Driver.warnings report);
    check_bool "clean by default" true (Check.Driver.clean report);
    check_bool "dirty under strict" false (Check.Driver.clean ~strict:true report);
    check_int "exit 0 default" 0 (Check.Driver.exit_code report);
    check_int "exit 1 strict" 1 (Check.Driver.exit_code ~strict:true report)

let meta_always_on () =
  (* a malformed allow is an error even when its rule is disabled: a
     broken suppression must never pass silently *)
  match Check.Driver.run ~rules:[ Check.Rules.Domain_safety ] [ cmt "Fix_allow" ] with
  | Error e -> Alcotest.failf "driver: %s" e
  | Ok report ->
    check_quads "allow-syntax only"
      [ ("allow-syntax", 10, 40, true) ]
      (quads report.Check.Driver.findings)

let bad_input () =
  (match Check.Driver.run [ "no_such_dir_anywhere" ] with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "expected an error for a missing path");
  match Check.Analysis.run_cmt ~rules:Check.Rules.all "check_fixtures/dune" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error for a non-cmt file"

let json_shape () =
  match Check.Driver.run [ cmt "Fix_det" ] with
  | Error e -> Alcotest.failf "driver: %s" e
  | Ok report ->
    let s = Core.Json.to_string (Check.Driver.to_json report) in
    check_bool "kind" true (contains_substring s {|"kind":"check-src"|});
    check_bool "schema" true (contains_substring s {|"schema_version":1|});
    check_bool "rule" true (contains_substring s {|"rule":"det-purity"|})

let () =
  Alcotest.run "check"
    [
      ( "rules",
        [
          Alcotest.test_case "det-purity" `Quick det_purity;
          Alcotest.test_case "domain-safety" `Quick domain_safety;
          Alcotest.test_case "exact-arith" `Quick exact_arith;
          Alcotest.test_case "poly-compare" `Quick poly_compare;
          Alcotest.test_case "suppression" `Quick suppression;
          Alcotest.test_case "clean module" `Quick clean_module;
          Alcotest.test_case "rule selection" `Quick rule_selection;
        ] );
      ( "driver",
        [
          Alcotest.test_case "aggregate report" `Quick driver_report;
          Alcotest.test_case "strict vs default" `Quick strict_mode;
          Alcotest.test_case "meta errors always on" `Quick meta_always_on;
          Alcotest.test_case "bad input" `Quick bad_input;
          Alcotest.test_case "json shape" `Quick json_shape;
        ] );
    ]
