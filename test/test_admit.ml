(* Tests for the crash-safe admission stack: CRC framing, the
   journal's torn-tail/corrupt-interior recovery policy (exhaustively,
   at every byte boundary of the last record), state/record codecs and
   idempotent replay, snapshot rotation through the store, the
   daemon's verdict byte-identity against a from-scratch analyzer run,
   request-id dedup, and a small in-process chaos run. *)

open Core_helpers

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let ( // ) = Filename.concat

let temp_dir =
  let counter = ref 0 in
  fun tag ->
    incr counter;
    let dir =
      Filename.get_temp_dir_name ()
      // Printf.sprintf "redf-test-admit-%s-%d-%d" tag (Unix.getpid ()) !counter
    in
    if Sys.file_exists dir then
      Array.iter (fun f -> Sys.remove (dir // f)) (Sys.readdir dir)
    else Unix.mkdir dir 0o755;
    dir

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let analyzer =
  match Core.Analyzer.of_name "GN2" with Ok a -> a | Error msg -> failwith msg

(* --- crc32 --- *)

let crc32_known_answers () =
  (* the standard IEEE 802.3 check value, plus anchors that pin the
     byte order and the empty case *)
  check_int "check value" 0xCBF43926 (Admit.Crc32.string "123456789");
  check_int "empty" 0 (Admit.Crc32.string "");
  check_int "single NUL" 0xD202EF8D (Admit.Crc32.string "\x00");
  check_int "ascii 'a'" 0xE8B7BE43 (Admit.Crc32.string "a")

let crc32_incremental () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let whole = Admit.Crc32.string s in
  for cut = 0 to String.length s do
    let part = Admit.Crc32.update 0 s 0 cut in
    check_int
      (Printf.sprintf "split at %d" cut)
      whole
      (Admit.Crc32.update part s cut (String.length s - cut))
  done

(* --- journal framing --- *)

let frame_roundtrip =
  qtest ~count:200 "frame/unframe roundtrip" QCheck2.Gen.string (fun payload ->
      Admit.Journal.unframe (Admit.Journal.frame payload) = Ok payload)

let unframe_rejects_corruption () =
  let framed = Admit.Journal.frame "payload" in
  for i = 0 to String.length framed - 1 do
    let bytes = Bytes.of_string framed in
    Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 0x40));
    match Admit.Journal.unframe (Bytes.to_string bytes) with
    | Error _ -> ()
    | Ok p -> Alcotest.failf "flip at %d still unframed as %S" i p
  done

(* --- the recovery policy, exhaustively ---

   A journal holding [payloads] is truncated at *every* byte boundary
   of its last record: every cut must scan as the full prefix plus
   either the complete last record (cut = end) or a cleanly dropped
   torn tail — never a partial payload, never an error.  This is the
   crash-at-any-byte half of the recovery invariant; corrupt-interior
   rejection is the other half. *)

let scan_ok path =
  match Admit.Journal.scan ~path with
  | Ok s -> s
  | Error msg -> Alcotest.failf "scan %s: %s" path msg

let journal_bytes payloads =
  Admit.Journal.header ^ String.concat "" (List.map Admit.Journal.frame payloads)

let truncation_policy_exhaustive () =
  let dir = temp_dir "trunc" in
  let path = dir // "journal.wal" in
  let payloads = [ "alpha"; ""; "a longer third record with more bytes in it"; "tail" ] in
  let full = journal_bytes payloads in
  let prefix = journal_bytes (List.filteri (fun i _ -> i < 3) payloads) in
  let prefix_len = String.length prefix in
  for cut = 0 to String.length full do
    write_file path (String.sub full 0 cut);
    let scan = scan_ok path in
    if cut < String.length Admit.Journal.header then begin
      (* a torn header scans as an empty journal *)
      check_int (Printf.sprintf "cut %d: no records" cut) 0 (List.length scan.Admit.Journal.records);
      check_int (Printf.sprintf "cut %d: torn header" cut) cut scan.Admit.Journal.torn_bytes
    end
    else if cut = String.length full then
      Alcotest.(check (list string)) "full journal intact" payloads scan.Admit.Journal.records
    else if cut >= prefix_len then begin
      (* inside the last record: the prefix survives, the tail is torn *)
      Alcotest.(check (list string))
        (Printf.sprintf "cut %d: prefix records" cut)
        (List.filteri (fun i _ -> i < 3) payloads)
        scan.Admit.Journal.records;
      check_int (Printf.sprintf "cut %d: valid prefix" cut) prefix_len scan.Admit.Journal.valid_bytes;
      check_int (Printf.sprintf "cut %d: torn tail" cut) (cut - prefix_len)
        scan.Admit.Journal.torn_bytes
    end
    else
      (* inside an interior record the same policy applies record by
         record: whatever full records fit before the cut survive *)
      check_int
        (Printf.sprintf "cut %d: consistent split" cut)
        cut
        (scan.Admit.Journal.valid_bytes + scan.Admit.Journal.torn_bytes)
  done

let truncation_policy_random =
  qtest ~count:60 "random journals truncate cleanly at every byte"
    QCheck2.Gen.(list_size (int_range 1 5) (string_size (int_range 0 24)))
    (fun payloads ->
      let dir = temp_dir "qtrunc" in
      let path = dir // "journal.wal" in
      let full = journal_bytes payloads in
      let n = List.length payloads in
      let prefix_len = String.length (journal_bytes (List.filteri (fun i _ -> i < n - 1) payloads)) in
      let ok = ref true in
      for cut = prefix_len to String.length full do
        write_file path (String.sub full 0 cut);
        match Admit.Journal.scan ~path with
        | Error _ -> ok := false
        | Ok scan ->
          let expected_records =
            if cut = String.length full then payloads
            else List.filteri (fun i _ -> i < n - 1) payloads
          in
          if scan.Admit.Journal.records <> expected_records then ok := false;
          (* recovery after the truncation must accept an append *)
          let j =
            Admit.Journal.open_append ~path ~valid_bytes:scan.Admit.Journal.valid_bytes ()
          in
          Admit.Journal.append ~fsync:false j "appended-after-recovery";
          Admit.Journal.close j;
          (match Admit.Journal.scan ~path with
          | Ok rescan ->
            if rescan.Admit.Journal.records <> expected_records @ [ "appended-after-recovery" ]
            then ok := false
          | Error _ -> ok := false)
      done;
      !ok)

let corrupt_interior_rejected () =
  let dir = temp_dir "corrupt" in
  let path = dir // "journal.wal" in
  let payloads = [ "first-record"; "second-record"; "third-record" ] in
  let full = journal_bytes payloads in
  (* flip one payload byte of the *first* record: a CRC mismatch with
     intact records after it cannot be a crash artifact *)
  let pos = String.length Admit.Journal.header + Admit.Journal.frame_overhead + 2 in
  let bytes = Bytes.of_string full in
  Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 1));
  write_file path (Bytes.to_string bytes);
  (match Admit.Journal.scan ~path with
  | Ok _ -> Alcotest.fail "corrupt interior record scanned as OK"
  | Error msg ->
    check_bool
      (Printf.sprintf "diagnostic mentions corruption: %S" msg)
      true
      (let n = String.length msg in
       let rec at i = i + 7 <= n && (String.sub msg i 7 = "corrupt" || at (i + 1)) in
       at 0));
  (* the same flip in the *last* record is indistinguishable from a
     torn append and must recover by dropping it *)
  let last_frame_len =
    String.length full - String.length (journal_bytes [ "first-record"; "second-record" ])
  in
  let pos = String.length full - last_frame_len + Admit.Journal.frame_overhead + 2 in
  let bytes = Bytes.of_string full in
  Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 1));
  write_file path (Bytes.to_string bytes);
  let scan = scan_ok path in
  Alcotest.(check (list string))
    "bad-CRC tail dropped"
    [ "first-record"; "second-record" ]
    scan.Admit.Journal.records;
  check_int "whole tail frame torn" last_frame_len scan.Admit.Journal.torn_bytes

(* --- state and codecs --- *)

let t1 = task "tau1" "1.26" "7" "7" 9
let t2 = task "tau2" "0.95" "5" "5" 6

let state_apply_rules () =
  let open Admit.State in
  let s =
    match apply_op empty (Add t1) with Ok s -> s | Error e -> Alcotest.fail e
  in
  check_int "size" 1 (size s);
  check_bool "mem" true (mem s "tau1");
  (match apply_op s (Add t1) with
  | Ok _ -> Alcotest.fail "duplicate add accepted"
  | Error _ -> ());
  (match apply_op s (Remove "absent") with
  | Ok _ -> Alcotest.fail "absent remove accepted"
  | Error _ -> ());
  let s2 = match apply_op s (Remove "tau1") with Ok s -> s | Error e -> Alcotest.fail e in
  check_int "empty again" 0 (size s2);
  check_bool "states differ" false (equal s s2)

let record_replay_rules () =
  let open Admit.State in
  let r seq op = { seq; rid = Some (Printf.sprintf "\"r%d\"" seq); op; reply = "ack" } in
  let s1 = match apply_record empty (r 1 (Add t1)) with Ok s -> s | Error e -> Alcotest.fail e in
  check_int "seq advanced" 1 (seq s1);
  check_bool "reply stored" true (reply_for s1 "\"r1\"" = Some "ack");
  (* at-or-below seq: the snapshot-overlap no-op *)
  (match apply_record s1 (r 1 (Add t1)) with
  | Ok s -> check_bool "no-op below seq" true (equal s s1)
  | Error e -> Alcotest.fail e);
  (* a gap is corruption, not a no-op *)
  (match apply_record s1 (r 3 (Add t2)) with
  | Ok _ -> Alcotest.fail "seq gap accepted"
  | Error msg ->
    check_bool "gap diagnostic" true (String.length msg > 0));
  let s2 = match apply_record s1 (r 2 (Add t2)) with Ok s -> s | Error e -> Alcotest.fail e in
  check_int "two tasks" 2 (size s2);
  Alcotest.(check (list string)) "admission order" [ "tau1"; "tau2" ] (names s2)

let codec_roundtrips () =
  let open Admit.State in
  let records =
    [
      { seq = 1; rid = Some "\"r1\""; op = Add t1; reply = {|{"kind":"admit","seq":1}|} };
      { seq = 2; rid = None; op = Remove "tau1"; reply = "reply with \"quotes\" and \n" };
      { seq = 3; rid = Some "7"; op = Add t2; reply = "" };
    ]
  in
  List.iter
    (fun r ->
      match record_of_string (record_to_string r) with
      | Error e -> Alcotest.failf "record roundtrip: %s" e
      | Ok r' ->
        check_bool (Printf.sprintf "record %d roundtrips" r.seq) true
          (record_to_string r = record_to_string r'))
    records;
  let s =
    List.fold_left
      (fun s r -> match apply_record s r with Ok s -> s | Error e -> Alcotest.fail e)
      empty records
  in
  (match of_snapshot_string (to_snapshot_string s) with
  | Error e -> Alcotest.failf "snapshot roundtrip: %s" e
  | Ok s' ->
    check_bool "snapshot roundtrips" true (equal s s');
    check_bool "replies survive" true (reply_for s' "\"r1\"" = reply_for s "\"r1\""));
  (* canonicity: one byte form per state *)
  check_str "snapshot canonical" (to_snapshot_string s) (to_snapshot_string s)

(* --- store: commit / rotate / recover --- *)

let store_recovers_after_rotation () =
  let dir = temp_dir "store" in
  let reopen () =
    match Admit.Store.open_dir ~snapshot_every:3 ~dir () with
    | Ok (st, recovery) -> (st, recovery)
    | Error msg -> Alcotest.failf "open_dir: %s" msg
  in
  let st, recovery = reopen () in
  check_int "fresh store" 0 recovery.Admit.Store.replayed;
  let commit st seq op =
    match
      Admit.Store.commit st
        { Admit.State.seq; rid = Some (string_of_int seq); op; reply = "ok-" ^ string_of_int seq }
    with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "commit %d: %s" seq msg
  in
  (* 7 commits over snapshot_every = 3: at least two rotations *)
  commit st 1 (Admit.State.Add t1);
  commit st 2 (Admit.State.Add t2);
  commit st 3 (Admit.State.Remove "tau1");
  commit st 4 (Admit.State.Add (task "tau3" "0.5" "9" "9" 2));
  commit st 5 (Admit.State.Remove "tau3");
  commit st 6 (Admit.State.Add (task "tau4" "0.25" "4" "4" 1));
  commit st 7 (Admit.State.Remove "tau4");
  let final = Admit.Store.state st in
  Admit.Store.close st;
  let st2, recovery = reopen () in
  check_bool "recovered ≡ final" true (Admit.State.equal final (Admit.Store.state st2));
  check_int "recovered seq" 7 (Admit.State.seq (Admit.Store.state st2));
  check_bool "snapshot did its job" true (recovery.Admit.Store.snapshot_seq >= 3);
  check_bool "replies recovered" true
    (Admit.State.reply_for (Admit.Store.state st2) "5" = Some "ok-5");
  Admit.Store.close st2

(* --- daemon: verdicts, dedup, recovery --- *)

let line fields = Core.Json.to_string (Core.Json.Obj fields)

let add_line ?id name c d t a =
  line
    ([ ("op", Core.Json.String "add-task") ]
    @ (match id with Some id -> [ ("id", id) ] | None -> [])
    @ [
        ( "task",
          Core.Json.Obj
            [
              ("name", Core.Json.String name);
              ("C", Core.Json.String c);
              ("D", Core.Json.String d);
              ("T", Core.Json.String t);
              ("A", Core.Json.Int a);
            ] );
      ])

let field reply name =
  match Core.Json.of_string reply with
  | Ok json -> Core.Json.member name json
  | Error msg -> Alcotest.failf "reply is not JSON (%s): %s" msg reply

let with_daemon ?snapshot_every tag f =
  let dir = temp_dir tag in
  match Admit.Daemon.create ?snapshot_every ~analyzer ~fpga_area:100 ~dir () with
  | Error msg -> Alcotest.failf "daemon create: %s" msg
  | Ok (d, _) ->
    Fun.protect ~finally:(fun () -> Admit.Daemon.close d) (fun () -> f dir d)

let daemon_verdict_byte_identity () =
  with_daemon "verdict" (fun _dir d ->
      let reply = Admit.Daemon.handle_line d (add_line ~id:(Core.Json.Int 1) "tau1" "1.26" "7" "7" 9) in
      check_bool "admitted" true (field reply "admitted" = Some (Core.Json.Bool true));
      (* the wire verdict is byte-identical to a from-scratch run of the
         same analyzer on the same taskset *)
      let fresh ts =
        Core.Json.to_string (Core.Verdict.to_json (analyzer.Core.Analyzer.decide ~fpga_area:100 ts))
      in
      let expect_fields reply ts =
        let fresh_json =
          match Core.Json.of_string (fresh ts) with Ok j -> j | Error e -> Alcotest.fail e
        in
        List.iter
          (fun name ->
            check_bool
              (Printf.sprintf "field %S matches from-scratch" name)
              true
              (field reply name = Core.Json.member name fresh_json))
          [ "accepted"; "checks" ]
      in
      expect_fields reply (Model.Taskset.of_list [ t1 ]);
      let reply2 = Admit.Daemon.handle_line d (add_line ~id:(Core.Json.Int 2) "tau2" "0.95" "5" "5" 6) in
      expect_fields reply2 (Model.Taskset.of_list [ t1; t2 ]);
      (* what-if answers for the hypothetical set without mutating *)
      let wi =
        Admit.Daemon.handle_line d
          (line
             [
               ("op", Core.Json.String "what-if");
               ("drop", Core.Json.List [ Core.Json.String "tau1" ]);
             ])
      in
      expect_fields wi (Model.Taskset.of_list [ t2 ]);
      check_int "still two tasks" 2 (Admit.State.size (Admit.Daemon.state d));
      (* an over-area task is rejected and not journaled *)
      let seq_before = Admit.State.seq (Admit.Daemon.state d) in
      let rej = Admit.Daemon.handle_line d (add_line ~id:(Core.Json.Int 3) "big" "1" "4" "4" 999) in
      check_bool "rejected" true (field rej "admitted" = Some (Core.Json.Bool false));
      check_int "rejection not journaled" seq_before (Admit.State.seq (Admit.Daemon.state d)))

let daemon_dedup_and_recovery () =
  let dir = temp_dir "dedup" in
  let open_daemon () =
    match Admit.Daemon.create ~analyzer ~fpga_area:10 ~dir () with
    | Error msg -> Alcotest.failf "daemon create: %s" msg
    | Ok (d, recovery) -> (d, recovery)
  in
  let d, _ = open_daemon () in
  let req = add_line ~id:(Core.Json.String "r1") "tau1" "1.26" "7" "7" 9 in
  let first = Admit.Daemon.handle_line d req in
  (* a retry with the same id returns the stored bytes, applies nothing *)
  check_str "duplicate rid answered with stored bytes" first (Admit.Daemon.handle_line d req);
  check_int "not applied twice" 1 (Admit.State.size (Admit.Daemon.state d));
  Admit.Daemon.close d;
  (* dedup survives recovery: the reply bytes are in the journal *)
  let d, recovery = open_daemon () in
  check_int "one record replayed" 1 recovery.Admit.Store.replayed;
  check_str "dedup across restart" first (Admit.Daemon.handle_line d req);
  check_int "still one task" 1 (Admit.State.size (Admit.Daemon.state d));
  Admit.Daemon.close d

let chaos_smoke () =
  let dir = temp_dir "chaos" in
  let cfg =
    { (Admit.Chaos.default ~analyzer ~fpga_area:10) with Admit.Chaos.cycles = 6; ops_per_cycle = 25 }
  in
  match Admit.Chaos.run ~dir cfg with
  | Error msg -> Alcotest.failf "chaos: %s" msg
  | Ok stats ->
    check_int "all cycles ran" 6 stats.Admit.Chaos.cycles;
    check_bool "verdicts were checked" true (stats.Admit.Chaos.verdicts_checked > 0)

let () =
  Alcotest.run "admit"
    [
      ( "crc32",
        [
          Alcotest.test_case "known answers" `Quick crc32_known_answers;
          Alcotest.test_case "incremental" `Quick crc32_incremental;
        ] );
      ( "journal",
        [
          frame_roundtrip;
          Alcotest.test_case "unframe rejects corruption" `Quick unframe_rejects_corruption;
          Alcotest.test_case "truncation policy, every byte" `Quick truncation_policy_exhaustive;
          truncation_policy_random;
          Alcotest.test_case "corrupt interior rejected" `Quick corrupt_interior_rejected;
        ] );
      ( "state",
        [
          Alcotest.test_case "apply rules" `Quick state_apply_rules;
          Alcotest.test_case "record replay rules" `Quick record_replay_rules;
          Alcotest.test_case "codec roundtrips" `Quick codec_roundtrips;
        ] );
      ( "store",
        [ Alcotest.test_case "recovers after rotation" `Quick store_recovers_after_rotation ] );
      ( "daemon",
        [
          Alcotest.test_case "verdict byte-identity" `Quick daemon_verdict_byte_identity;
          Alcotest.test_case "dedup and recovery" `Quick daemon_dedup_and_recovery;
          Alcotest.test_case "chaos smoke" `Quick chaos_smoke;
        ] );
    ]
