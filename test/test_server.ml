(* Tests for the analysis service: wire-format parsing, request
   isolation (a bad line yields an error response, never an
   exception), ordered and worker-count-independent batch evaluation,
   and a full client/server roundtrip over a Unix-domain socket. *)

open Core_helpers

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let table1 =
  taskset [ ("tau1", "1.26", "7", "7", 9); ("tau2", "0.95", "5", "5", 6) ]

let request ?id ?(analyzer = "GN2") ?(fpga_area = 10) ts =
  Server.Protocol.request_line ~analyzer ~fpga_area ?id ts

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  at 0

(* --- protocol --- *)

let parse_roundtrip () =
  match Server.Protocol.parse (request ~id:(Core.Json.Int 7) table1) with
  | Error (_, msg) -> Alcotest.failf "parse failed: %s" msg
  | Ok req ->
    check_str "analyzer" "GN2" req.Server.Protocol.analyzer.Core.Analyzer.name;
    check_int "area" 10 req.Server.Protocol.fpga_area;
    check_bool "id" true (req.Server.Protocol.id = Some (Core.Json.Int 7));
    check_str "taskset survives" (Model.Taskset.to_csv table1)
      (Model.Taskset.to_csv req.Server.Protocol.taskset)

let parse_errors () =
  let fails ?id what line needle =
    match Server.Protocol.parse line with
    | Ok _ -> Alcotest.failf "%s: unexpectedly parsed" what
    | Error (got_id, msg) ->
      check_bool (what ^ ": id recovered") true (got_id = id);
      check_bool
        (Printf.sprintf "%s: %S mentions %S" what msg needle)
        true (contains ~needle msg)
  in
  fails "garbage" "not json {" "malformed JSON";
  fails "non-object" "[1,2]" "must be a JSON object";
  fails "missing analyzer" {|{"fpga_area":10,"tasks":[{"C":1,"D":2,"T":2,"A":1}]}|} "\"analyzer\"";
  fails "unknown analyzer" ~id:(Core.Json.Int 3)
    {|{"id":3,"analyzer":"nope","fpga_area":10,"tasks":[{"C":1,"D":2,"T":2,"A":1}]}|}
    "unknown analyzer";
  fails "bad area" {|{"analyzer":"DP","fpga_area":0,"tasks":[{"C":1,"D":2,"T":2,"A":1}]}|}
    "\"fpga_area\"";
  fails "empty tasks" {|{"analyzer":"DP","fpga_area":10,"tasks":[]}|} "must not be empty";
  fails "missing C" {|{"analyzer":"DP","fpga_area":10,"tasks":[{"D":2,"T":2,"A":1}]}|} "\"C\"";
  fails "float time" {|{"analyzer":"DP","fpga_area":10,"tasks":[{"C":1.5,"D":2,"T":2,"A":1}]}|}
    "malformed JSON"

(* --- engine --- *)

let with_engine f = Server.Engine.with_engine ~cache_size:64 ~jobs:1 f

let response_kind line =
  match Core.Json.of_string line with
  | Ok json -> (
    match Core.Json.member "kind" json with Some (Core.Json.String k) -> k | _ -> "?")
  | Error _ -> "?"

let isolation () =
  with_engine (fun engine ->
      let good = Server.Engine.handle_line engine (request table1) in
      check_str "verdict" "verdict" (response_kind good);
      List.iter
        (fun bad ->
          let resp = Server.Engine.handle_line engine bad in
          check_str "error response" "error" (response_kind resp))
        [ "garbage"; "{}"; {|{"analyzer":"DP"}|}; String.make 100 '[' ];
      (* the engine still answers after the bad lines *)
      check_str "still serving" good (Server.Engine.handle_line engine (request table1)))

let batch_order_and_determinism () =
  let lines =
    Array.init 40 (fun i ->
        if i mod 7 = 3 then Printf.sprintf "bad request %d" i
        else
          let analyzer = List.nth [ "DP"; "GN1"; "GN2" ] (i mod 3) in
          request ~id:(Core.Json.Int i) ~analyzer table1)
  in
  let run jobs =
    Server.Engine.with_engine ~cache_size:8 ~jobs (fun engine ->
        Server.Engine.handle_lines engine lines)
  in
  let serial = run 1 and parallel = run 4 in
  check_int "one response per request" (Array.length lines) (Array.length serial);
  Array.iteri
    (fun i line ->
      check_str (Printf.sprintf "response %d independent of -j" i) line parallel.(i);
      (* responses echo the request ids in order *)
      if i mod 7 <> 3 then
        check_bool
          (Printf.sprintf "response %d in request order" i)
          true
          (contains ~needle:(Printf.sprintf "\"id\":%d" i) line))
    serial

let cached_batch_identical () =
  (* the same batch twice: the second pass is all cache hits and must
     be byte-identical *)
  let lines = Array.init 20 (fun i -> request ~id:(Core.Json.Int i) table1) in
  with_engine (fun engine ->
      let first = Server.Engine.handle_lines engine lines in
      let second = Server.Engine.handle_lines engine lines in
      Array.iteri (fun i line -> check_str (Printf.sprintf "line %d" i) line second.(i)) first;
      let s = Server.Engine.cache_stats engine in
      check_int "one miss" 1 s.Cache.Lru.misses;
      check_int "the rest hit" 39 s.Cache.Lru.hits)

(* --- socket roundtrip --- *)

let socket_roundtrip () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "redf-test-server.sock" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let engine = Server.Engine.create ~cache_size:64 ~jobs:1 () in
  let server = Domain.spawn (fun () -> Server.Engine.serve_socket engine ~path ()) in
  Fun.protect
    ~finally:(fun () ->
      Server.Engine.request_stop engine;
      Domain.join server;
      Server.Engine.shutdown engine)
    (fun () ->
      (* the server binds asynchronously; retry the connect briefly *)
      let rec roundtrip attempts lines =
        match Server.Engine.client_roundtrip ~path lines with
        | Ok responses -> responses
        | Error msg ->
          if attempts = 0 then Alcotest.failf "client_roundtrip: %s" msg
          else begin
            Unix.sleepf 0.05;
            roundtrip (attempts - 1) lines
          end
      in
      let lines =
        [| request ~id:(Core.Json.Int 1) table1; "malformed"; request ~id:(Core.Json.Int 2) table1 |]
      in
      let responses = roundtrip 100 lines in
      check_int "three responses" 3 (Array.length responses);
      check_str "first is a verdict" "verdict" (response_kind responses.(0));
      check_str "second is an error" "error" (response_kind responses.(1));
      check_str "third is a verdict" "verdict" (response_kind responses.(2));
      (* in-process evaluation and the socket path agree byte for byte *)
      check_str "socket equals in-process"
        (Server.Engine.handle_line engine lines.(0))
        responses.(0))

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "roundtrip" `Quick parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick parse_errors;
        ] );
      ( "engine",
        [
          Alcotest.test_case "isolation" `Quick isolation;
          Alcotest.test_case "batch order and determinism" `Quick batch_order_and_determinism;
          Alcotest.test_case "cached batch identical" `Quick cached_batch_identical;
        ] );
      ("socket", [ Alcotest.test_case "roundtrip" `Quick socket_roundtrip ]);
    ]
