(* Tests for the analysis service: wire-format parsing, request
   isolation (a bad line yields an error response, never an
   exception), ordered and worker-count-independent batch evaluation,
   the framing state machine (line cap, partial-line deadline, and the
   rule that framing errors never swallow neighbouring requests), and
   full client/server roundtrips over Unix-domain and TCP sockets
   through the multi-client event loop. *)

open Core_helpers

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let table1 =
  taskset [ ("tau1", "1.26", "7", "7", 9); ("tau2", "0.95", "5", "5", 6) ]

let request ?id ?(analyzer = "GN2") ?(fpga_area = 10) ts =
  Server.Protocol.request_line ~analyzer ~fpga_area ?id ts

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  at 0

(* --- protocol --- *)

let parse_roundtrip () =
  match Server.Protocol.parse (request ~id:(Core.Json.Int 7) table1) with
  | Error (_, msg) -> Alcotest.failf "parse failed: %s" msg
  | Ok req ->
    check_str "analyzer" "GN2" req.Server.Protocol.analyzer.Core.Analyzer.name;
    check_int "area" 10 req.Server.Protocol.fpga_area;
    check_bool "id" true (req.Server.Protocol.id = Some (Core.Json.Int 7));
    check_str "taskset survives" (Model.Taskset.to_csv table1)
      (Model.Taskset.to_csv req.Server.Protocol.taskset)

let parse_errors () =
  let fails ?id what line needle =
    match Server.Protocol.parse line with
    | Ok _ -> Alcotest.failf "%s: unexpectedly parsed" what
    | Error (got_id, msg) ->
      check_bool (what ^ ": id recovered") true (got_id = id);
      check_bool
        (Printf.sprintf "%s: %S mentions %S" what msg needle)
        true (contains ~needle msg)
  in
  fails "garbage" "not json {" "malformed JSON";
  fails "non-object" "[1,2]" "must be a JSON object";
  fails "missing analyzer" {|{"fpga_area":10,"tasks":[{"C":1,"D":2,"T":2,"A":1}]}|} "\"analyzer\"";
  fails "unknown analyzer" ~id:(Core.Json.Int 3)
    {|{"id":3,"analyzer":"nope","fpga_area":10,"tasks":[{"C":1,"D":2,"T":2,"A":1}]}|}
    "unknown analyzer";
  fails "bad area" {|{"analyzer":"DP","fpga_area":0,"tasks":[{"C":1,"D":2,"T":2,"A":1}]}|}
    "\"fpga_area\"";
  fails "empty tasks" {|{"analyzer":"DP","fpga_area":10,"tasks":[]}|} "must not be empty";
  fails "missing C" {|{"analyzer":"DP","fpga_area":10,"tasks":[{"D":2,"T":2,"A":1}]}|} "\"C\"";
  fails "float time" {|{"analyzer":"DP","fpga_area":10,"tasks":[{"C":1.5,"D":2,"T":2,"A":1}]}|}
    "malformed JSON"

let shed_response () =
  let line = request ~id:(Core.Json.String "c1-r2") table1 in
  let resp = Server.Protocol.shed_response line in
  (match Core.Json.of_string resp with
   | Ok json ->
     check_bool "kind is error" true (Core.Json.member "kind" json = Some (Core.Json.String "error"));
     check_bool "id echoed" true
       (Core.Json.member "id" json = Some (Core.Json.String "c1-r2"));
     check_bool "message" true
       (Core.Json.member "error" json
       = Some (Core.Json.String "server overloaded: request shed"))
   | Error msg -> Alcotest.failf "shed response is not JSON: %s" msg);
  check_bool "unrecoverable id" true
    (Server.Protocol.request_id "not json {" = None)

(* --- framing --- *)

(* all clock inputs are explicit, so these run with a fake clock *)
let items = Alcotest.(check (list string)) "items"

let show = function
  | Server.Framing.Line l -> Printf.sprintf "line:%s" (if String.length l > 12 then "big" else l)
  | Server.Framing.Too_large _ -> "too_large"
  | Server.Framing.Timed_out -> "timed_out"

let feed f ~now s = List.map show (Server.Framing.feed f ~now s)

let framing_order_before_overflow () =
  (* complete lines extracted from a chunk are answered even when the
     same chunk ends in an oversized partial (the drop_partial bug) *)
  let f = Server.Framing.create ~max_line_bytes:8 () in
  items [ "line:a"; "line:b"; "too_large" ] (feed f ~now:0.0 "a\nb\nxxxxxxxxxx");
  (* the dropped line's remaining bytes are swallowed through its
     terminating newline; the stream then resumes *)
  items [] (feed f ~now:0.0 "yyy");
  items [ "line:c" ] (feed f ~now:0.0 "yyy\nc\n")

let framing_cap_on_complete_lines () =
  (* an over-cap line arriving fully terminated in one chunk must not
     bypass the cap *)
  let f = Server.Framing.create ~max_line_bytes:8 () in
  items [ "too_large"; "line:ok" ] (feed f ~now:0.0 "xxxxxxxxxx\nok\n")

let framing_overflow_across_feeds () =
  let f = Server.Framing.create ~max_line_bytes:8 () in
  items [] (feed f ~now:0.0 "xxxxx");
  items [ "too_large" ] (feed f ~now:0.0 "xxxxx");
  items [] (feed f ~now:0.0 "xxxxx");
  items [ "line:ok" ] (feed f ~now:0.0 "x\nok\n")

let deadline () = Alcotest.(check (option (float 1e-9))) "deadline"

let framing_deadline_armed_once () =
  (* the deadline is armed when the partial starts; trickling more
     bytes never extends it (the re-arm bug) *)
  let f = Server.Framing.create ~timeout:5.0 () in
  items [] (feed f ~now:100.0 "{\"par");
  deadline () (Some 105.0) (Server.Framing.deadline f);
  items [] (feed f ~now:104.0 "tial");
  deadline () (Some 105.0) (Server.Framing.deadline f);
  items [] (List.map show (Server.Framing.check_deadline f ~now:104.9));
  items [ "timed_out" ] (List.map show (Server.Framing.check_deadline f ~now:105.0));
  (* the timed-out line's tail is discarded through its newline *)
  items [] (feed f ~now:105.1 "tail}");
  items [ "line:next" ] (feed f ~now:105.2 "tail}\nnext\n")

let framing_deadline_rearms_per_line () =
  let f = Server.Framing.create ~timeout:5.0 () in
  items [ "line:a" ] (feed f ~now:10.0 "a\nst");
  deadline () (Some 15.0) (Server.Framing.deadline f);
  items [ "line:start" ] (feed f ~now:12.0 "art\n");
  deadline () None (Server.Framing.deadline f);
  items [] (feed f ~now:20.0 "again");
  deadline () (Some 25.0) (Server.Framing.deadline f)

let framing_finish () =
  let f = Server.Framing.create ~max_line_bytes:8 () in
  items [] (feed f ~now:0.0 "last");
  items [ "line:last" ] (List.map show (Server.Framing.finish f));
  items [] (List.map show (Server.Framing.finish f))

(* --- engine --- *)

let with_engine f = Server.Engine.with_engine ~cache_size:64 ~jobs:1 f

let response_kind line =
  match Core.Json.of_string line with
  | Ok json -> (
    match Core.Json.member "kind" json with Some (Core.Json.String k) -> k | _ -> "?")
  | Error _ -> "?"

let response_error line =
  match Core.Json.of_string line with
  | Ok json -> (
    match Core.Json.member "error" json with Some (Core.Json.String e) -> e | _ -> "?")
  | Error _ -> "?"

let isolation () =
  with_engine (fun engine ->
      let good = Server.Engine.handle_line engine (request table1) in
      check_str "verdict" "verdict" (response_kind good);
      List.iter
        (fun bad ->
          let resp = Server.Engine.handle_line engine bad in
          check_str "error response" "error" (response_kind resp))
        [ "garbage"; "{}"; {|{"analyzer":"DP"}|}; String.make 100 '[' ];
      (* the engine still answers after the bad lines *)
      check_str "still serving" good (Server.Engine.handle_line engine (request table1)))

let batch_order_and_determinism () =
  let lines =
    Array.init 40 (fun i ->
        if i mod 7 = 3 then Printf.sprintf "bad request %d" i
        else
          let analyzer = List.nth [ "DP"; "GN1"; "GN2" ] (i mod 3) in
          request ~id:(Core.Json.Int i) ~analyzer table1)
  in
  let run jobs =
    Server.Engine.with_engine ~cache_size:8 ~jobs (fun engine ->
        Server.Engine.handle_lines engine lines)
  in
  let serial = run 1 and parallel = run 4 in
  check_int "one response per request" (Array.length lines) (Array.length serial);
  Array.iteri
    (fun i line ->
      check_str (Printf.sprintf "response %d independent of -j" i) line parallel.(i);
      (* responses echo the request ids in order *)
      if i mod 7 <> 3 then
        check_bool
          (Printf.sprintf "response %d in request order" i)
          true
          (contains ~needle:(Printf.sprintf "\"id\":%d" i) line))
    serial

let cached_batch_identical () =
  (* the same batch twice: the second pass is all cache hits and must
     be byte-identical.  The batch path probes every request's key up
     front (20 misses on the empty cache), then dedups the misses to a
     single decide_all computation; the second pass hits on all 20. *)
  let lines = Array.init 20 (fun i -> request ~id:(Core.Json.Int i) table1) in
  with_engine (fun engine ->
      let first = Server.Engine.handle_lines engine lines in
      let second = Server.Engine.handle_lines engine lines in
      Array.iteri (fun i line -> check_str (Printf.sprintf "line %d" i) line second.(i)) first;
      let s = Server.Engine.cache_stats engine in
      check_int "first batch probes all miss" 20 s.Cache.Lru.misses;
      check_int "second batch all hit" 20 s.Cache.Lru.hits)

(* --- serve over pipes (the framing regressions, end to end) --- *)

let write_all fd s =
  let off = ref 0 in
  while !off < String.length s do
    match Unix.write_substring fd s !off (String.length s - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let read_all fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ();
  Buffer.contents buf

(* run [Engine.serve] over pipes, feed it with [script] (which may
   sleep between writes), and return the response lines *)
let serve_script ?timeout script =
  with_engine (fun engine ->
      let r_in, w_in = Unix.pipe ~cloexec:true () in
      let r_out, w_out = Unix.pipe ~cloexec:true () in
      let server =
        Domain.spawn (fun () ->
            Server.Engine.serve engine ?timeout ~input:r_in ~output:w_out ())
      in
      script (write_all w_in);
      Unix.close w_in;
      Domain.join server;
      Unix.close w_out;
      Unix.close r_in;
      let responses =
        String.split_on_char '\n' (read_all r_out) |> List.filter (fun l -> String.trim l <> "")
      in
      Unix.close r_out;
      responses)

let big = String.make (Server.Framing.default_max_line_bytes + 64) 'x'

let serve_answers_lines_before_oversized_partial () =
  (* regression: a chunk carrying complete requests and the head of an
     oversized partial must answer the requests, then the error *)
  let responses =
    serve_script (fun write -> write (request ~id:(Core.Json.Int 1) table1 ^ "\n" ^ big))
  in
  check_int "two responses" 2 (List.length responses);
  check_str "request answered" "verdict" (response_kind (List.nth responses 0));
  check_str "then the cap error" Server.Engine.too_large_message
    (response_error (List.nth responses 1))

let serve_caps_terminated_lines () =
  (* regression: a terminated over-cap line must get the cap error,
     not be parsed (the old loop only capped unterminated partials) *)
  let responses =
    serve_script (fun write ->
        write (big ^ "\n");
        write (request ~id:(Core.Json.Int 2) table1 ^ "\n"))
  in
  check_int "two responses" 2 (List.length responses);
  check_str "cap error" Server.Engine.too_large_message (response_error (List.nth responses 0));
  check_str "stream resumes" "verdict" (response_kind (List.nth responses 1))

let serve_timeout_resists_trickling () =
  (* regression: the partial-line deadline is measured from when the
     partial started; a client trickling bytes cannot keep re-arming
     it (the old loop reset the deadline on every read) *)
  let responses =
    serve_script ~timeout:0.2 (fun write ->
        write "{\"trick";
        Unix.sleepf 0.09;
        write "le";
        Unix.sleepf 0.09;
        write "d";
        (* past the deadline of the partial's start, though every
           inter-write gap was below the timeout *)
        Unix.sleepf 0.15)
  in
  check_int "exactly one response" 1 (List.length responses);
  check_str "the timeout error" Server.Engine.timeout_message
    (response_error (List.nth responses 0))

(* --- the multi-client event loop --- *)

let temp_socket name =
  let path = Filename.concat (Filename.get_temp_dir_name ()) name in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  path

(* listeners are bound in the test domain before the loop domain
   spawns, so clients can connect without retrying *)
let with_loop ?limits ?idle_timeout ~jobs listeners f =
  let engine = Server.Engine.create ~cache_size:256 ~jobs () in
  let server =
    Domain.spawn (fun () -> Server.Loop.serve engine ?idle_timeout ?limits listeners)
  in
  Fun.protect
    ~finally:(fun () ->
      Server.Engine.request_stop engine;
      Domain.join server;
      Server.Engine.shutdown engine)
    (fun () -> f engine)

let roundtrip ~addr lines =
  match Server.Engine.client_roundtrip_addr ~addr lines with
  | Ok responses -> responses
  | Error msg -> Alcotest.failf "client_roundtrip_addr: %s" msg

let socket_roundtrip () =
  let path = temp_socket "redf-test-server.sock" in
  with_loop ~jobs:1 [ Server.Loop.unix_listener ~path ] (fun engine ->
      let lines =
        [| request ~id:(Core.Json.Int 1) table1; "malformed"; request ~id:(Core.Json.Int 2) table1 |]
      in
      let responses = roundtrip ~addr:(Unix.ADDR_UNIX path) lines in
      check_int "three responses" 3 (Array.length responses);
      check_str "first is a verdict" "verdict" (response_kind responses.(0));
      check_str "second is an error" "error" (response_kind responses.(1));
      check_str "third is a verdict" "verdict" (response_kind responses.(2));
      (* in-process evaluation and the socket path agree byte for byte *)
      check_str "socket equals in-process"
        (Server.Engine.handle_line engine lines.(0))
        responses.(0));
  check_bool "socket file removed" false (Sys.file_exists path)

let tcp_roundtrip () =
  let listener = Server.Loop.tcp_listener ~host:"127.0.0.1" ~port:0 in
  let port = Server.Loop.bound_port listener in
  check_bool "ephemeral port" true (port > 0);
  with_loop ~jobs:1 [ listener ] (fun engine ->
      let addr = Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port) in
      let lines = [| request ~id:(Core.Json.Int 1) table1; "malformed" |] in
      let responses = roundtrip ~addr lines in
      check_int "two responses" 2 (Array.length responses);
      check_str "tcp equals in-process"
        (Server.Engine.handle_line engine lines.(0))
        responses.(0);
      check_str "error isolated" "error" (response_kind responses.(1)))

let concurrent_clients_isolated () =
  (* N concurrent clients, each with its own request stream: every
     client gets its own answers, in its own order, byte-identical to
     a serial in-process evaluation of its lines *)
  let path = temp_socket "redf-test-loop.sock" in
  let clients = 4 and per_client = 25 in
  let lines_of c =
    Array.init per_client (fun i ->
        let analyzer = List.nth [ "DP"; "GN1"; "GN2" ] ((c + i) mod 3) in
        if i mod 9 = 5 then Printf.sprintf "bad line c%d-%d" c i
        else request ~analyzer ~id:(Core.Json.String (Printf.sprintf "c%d-r%d" c i)) table1)
  in
  let got =
    with_loop ~jobs:2 [ Server.Loop.unix_listener ~path ] (fun _ ->
        let domains =
          Array.init clients (fun c ->
              Domain.spawn (fun () -> roundtrip ~addr:(Unix.ADDR_UNIX path) (lines_of c)))
        in
        Array.map Domain.join domains)
  in
  (* the serial reference: same lines, fresh single-worker engine *)
  Server.Engine.with_engine ~cache_size:256 ~shards:1 ~jobs:1 (fun reference ->
      Array.iteri
        (fun c responses ->
          let expected = Server.Engine.handle_lines reference (lines_of c) in
          check_int (Printf.sprintf "client %d: one response per request" c)
            per_client (Array.length responses);
          Array.iteri
            (fun i expected ->
              check_str (Printf.sprintf "client %d response %d" c i) expected responses.(i))
            expected)
        got)

let load_shedding () =
  (* with a global in-flight budget of 1, a burst of pipelined requests
     (one write, so one server read) admits the first and sheds the
     rest — answered in order, as well-formed JSON, ids echoed *)
  let path = temp_socket "redf-test-shed.sock" in
  let limits = { Server.Loop.default_limits with Server.Loop.max_inflight = 1 } in
  let lines =
    Array.init 4 (fun i -> request ~id:(Core.Json.String (Printf.sprintf "r%d" i)) table1)
  in
  with_loop ~limits ~jobs:1 [ Server.Loop.unix_listener ~path ] (fun engine ->
      let responses = roundtrip ~addr:(Unix.ADDR_UNIX path) lines in
      check_int "one response per request" 4 (Array.length responses);
      check_str "first admitted" (Server.Engine.handle_line engine lines.(0)) responses.(0);
      Array.iteri
        (fun i resp ->
          if i > 0 then begin
            check_str (Printf.sprintf "response %d shed" i) "server overloaded: request shed"
              (response_error resp);
            check_bool
              (Printf.sprintf "response %d echoes its id" i)
              true
              (contains ~needle:(Printf.sprintf "\"id\":\"r%d\"" i) resp)
          end)
        responses)

let abrupt_disconnect_isolated () =
  (* regression: a client that pipelines requests and closes its socket
     before draining the responses used to kill the whole loop with an
     uncaught EPIPE/ECONNRESET; it must cost only that connection *)
  let path = temp_socket "redf-test-epipe.sock" in
  with_loop ~jobs:1 [ Server.Loop.unix_listener ~path ] (fun engine ->
      for round = 1 to 3 do
        let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect sock (Unix.ADDR_UNIX path);
        let payload =
          String.concat ""
            (List.init 16 (fun i ->
                 request ~id:(Core.Json.Int ((100 * round) + i)) table1 ^ "\n"))
        in
        write_all sock payload;
        (* RST rather than orderly shutdown where the stack allows it:
           close with response bytes surely still undelivered *)
        Unix.close sock;
        (* a well-behaved client right after must be served as if
           nothing happened *)
        let responses =
          roundtrip ~addr:(Unix.ADDR_UNIX path) [| request ~id:(Core.Json.Int round) table1 |]
        in
        check_int (Printf.sprintf "round %d: served" round) 1 (Array.length responses);
        check_str
          (Printf.sprintf "round %d: byte-identical" round)
          (Server.Engine.handle_line engine (request ~id:(Core.Json.Int round) table1))
          responses.(0)
      done)

let idle_timeout_closes_idle_connection () =
  let path = temp_socket "redf-test-idle.sock" in
  with_loop ~idle_timeout:0.3 ~jobs:1 [ Server.Loop.unix_listener ~path ] (fun _ ->
      let lines = [| request ~id:(Core.Json.Int 1) table1 |] in
      match Server.Engine.client_hold ~addr:(Unix.ADDR_UNIX path) ~hold:10.0 lines with
      | Error msg -> Alcotest.failf "client_hold: %s" msg
      | Ok (responses, ending) ->
        (* answered first, evicted after — the timeout applies to idle
           connections, not slow requests *)
        check_int "request answered before eviction" 1 (Array.length responses);
        check_str "a verdict" "verdict" (response_kind responses.(0));
        check_bool "server closed the idle connection" true (ending = `Closed_by_server))

(* a hand-rolled TCP server whose first connection answers only [cut]
   of the pipelined lines before dropping the socket — the shape of a
   daemon crashing between reply and flush *)
let flaky_server ~total ~cut =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen sock 8;
  let port =
    match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | _ -> assert false
  in
  let seen = Array.make 2 [] in
  let read_lines conn n =
    let buf = Buffer.create 256 in
    let chunk = Bytes.create 4096 in
    let rec go () =
      let lines =
        String.split_on_char '\n' (Buffer.contents buf)
        |> List.filter (fun l -> String.trim l <> "")
      in
      if List.length lines >= n then lines
      else
        match Unix.read conn chunk 0 (Bytes.length chunk) with
        | 0 -> lines
        | got ->
          Buffer.add_subbytes buf chunk 0 got;
          go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()
  in
  let server =
    Domain.spawn (fun () ->
        (* first connection: all [total] lines arrive, [cut] answered *)
        let conn, _ = Unix.accept sock in
        let lines = read_lines conn total in
        seen.(0) <- lines;
        List.iteri (fun i l -> if i < cut then write_all conn ("ack:" ^ l ^ "\n")) lines;
        Unix.close conn;
        (* second connection: the retry; answer everything *)
        let conn, _ = Unix.accept sock in
        let lines = read_lines conn (total - cut) in
        seen.(1) <- lines;
        List.iter (fun l -> write_all conn ("ack:" ^ l ^ "\n")) lines;
        Unix.close conn;
        Unix.close sock)
  in
  (port, server, seen)

let retry_client_resumes_suffix () =
  let total = 5 and cut = 2 in
  let port, server, seen = flaky_server ~total ~cut in
  let lines = Array.init total (fun i -> Printf.sprintf "req-%d" i) in
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  let result = Server.Engine.client_roundtrip_retry ~addr ~retries:3 ~backoff_ms:10 lines in
  Domain.join server;
  (match result with
  | Error msg -> Alcotest.failf "retry client: %s" msg
  | Ok responses ->
    check_int "one response per request" total (Array.length responses);
    Array.iteri
      (fun i resp -> check_str (Printf.sprintf "response %d" i) ("ack:req-" ^ string_of_int i) resp)
      responses);
  (* the wire contract: the first connection saw everything, the retry
     re-sent exactly the unanswered suffix — answered requests are
     never repeated *)
  check_int "first connection saw all" total (List.length seen.(0));
  Alcotest.(check (list string))
    "retry sent the suffix only"
    (Array.to_list (Array.sub lines cut (total - cut)))
    seen.(1)

let mutation_shed_deferred () =
  (* under overload, read-only lines shed at [max_inflight] while
     mutations ride until twice that — the admission daemon's
     mutations-first degradation *)
  let path = temp_socket "redf-test-mutshed.sock" in
  let stop = Atomic.make false in
  let service =
    {
      Server.Loop.handle_lines = Array.map (fun l -> "done:" ^ l);
      stop_requested = (fun () -> Atomic.get stop);
      shed_response = (fun l -> "shed:" ^ l);
      is_mutation = (fun l -> contains ~needle:"mut" l);
    }
  in
  let limits = { Server.Loop.default_limits with Server.Loop.max_inflight = 1 } in
  let listener = Server.Loop.unix_listener ~path in
  let server = Domain.spawn (fun () -> Server.Loop.serve_service service ~limits [ listener ]) in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join server)
    (fun () ->
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect sock (Unix.ADDR_UNIX path);
      (* one write, so one server read: enqueued as one step batch *)
      write_all sock "query-1\nmut-1\nquery-2\n";
      Unix.shutdown sock Unix.SHUTDOWN_SEND;
      let responses =
        String.split_on_char '\n' (read_all sock) |> List.filter (fun l -> String.trim l <> "")
      in
      Unix.close sock;
      Alcotest.(check (list string))
        "mutation admitted beyond the query threshold"
        [ "done:query-1"; "done:mut-1"; "shed:query-2" ]
        responses)

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "roundtrip" `Quick parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick parse_errors;
          Alcotest.test_case "shed response" `Quick shed_response;
        ] );
      ( "framing",
        [
          Alcotest.test_case "order before overflow" `Quick framing_order_before_overflow;
          Alcotest.test_case "cap on complete lines" `Quick framing_cap_on_complete_lines;
          Alcotest.test_case "overflow across feeds" `Quick framing_overflow_across_feeds;
          Alcotest.test_case "deadline armed once" `Quick framing_deadline_armed_once;
          Alcotest.test_case "deadline re-arms per line" `Quick framing_deadline_rearms_per_line;
          Alcotest.test_case "finish" `Quick framing_finish;
        ] );
      ( "engine",
        [
          Alcotest.test_case "isolation" `Quick isolation;
          Alcotest.test_case "batch order and determinism" `Quick batch_order_and_determinism;
          Alcotest.test_case "cached batch identical" `Quick cached_batch_identical;
        ] );
      ( "serve",
        [
          Alcotest.test_case "answers lines before oversized partial" `Quick
            serve_answers_lines_before_oversized_partial;
          Alcotest.test_case "caps terminated lines" `Quick serve_caps_terminated_lines;
          Alcotest.test_case "timeout resists trickling" `Quick serve_timeout_resists_trickling;
        ] );
      ( "loop",
        [
          Alcotest.test_case "socket roundtrip" `Quick socket_roundtrip;
          Alcotest.test_case "tcp roundtrip" `Quick tcp_roundtrip;
          Alcotest.test_case "concurrent clients isolated" `Quick concurrent_clients_isolated;
          Alcotest.test_case "load shedding" `Quick load_shedding;
          Alcotest.test_case "abrupt disconnect isolated" `Quick abrupt_disconnect_isolated;
          Alcotest.test_case "idle timeout closes idle connection" `Quick
            idle_timeout_closes_idle_connection;
          Alcotest.test_case "retry client resumes suffix" `Quick retry_client_resumes_suffix;
          Alcotest.test_case "mutation shed deferred" `Quick mutation_shed_deferred;
        ] );
    ]
