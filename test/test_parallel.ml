(* Tests for the parallel subsystem: pool edge cases, the determinism
   contract (results identical for any worker count), and the progress
   contract (serialized, strictly monotonic, final call = total).

   The job counts exercised include [Parallel.default_jobs ()], so a CI
   leg running with REDF_JOBS=2 also covers the env-var path. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let job_counts = List.sort_uniq compare [ 1; 2; 4; Parallel.default_jobs () ]

(* ---- pool edge cases ---- *)

let empty_input () =
  List.iter
    (fun jobs ->
      check_int "map on [||]" 0 (Array.length (Parallel.parallel_map ~jobs (fun x -> x) [||]));
      check_int "init 0" 0 (Array.length (Parallel.parallel_init ~jobs 0 (fun i -> i))))
    job_counts

let init_matches_serial () =
  let expected = Array.init 257 (fun i -> (i * i) + 1) in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "init jobs=%d" jobs)
        expected
        (Parallel.parallel_init ~jobs 257 (fun i -> (i * i) + 1)))
    job_counts

let chunk_one () =
  Parallel.Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check (array int))
        "chunk=1" (Array.init 10 succ)
        (Parallel.Pool.init ~chunk:1 pool 10 succ))

let more_workers_than_items () =
  Alcotest.(check (array int))
    "8 workers, 3 items" [| 0; 2; 4 |]
    (Parallel.parallel_init ~jobs:8 3 (fun i -> 2 * i))

exception Boom of int

let exception_propagates () =
  List.iter
    (fun jobs ->
      match Parallel.parallel_init ~jobs 100 (fun i -> if i = 57 then raise (Boom i) else i) with
      | _ -> Alcotest.fail "expected Boom to propagate"
      | exception Boom 57 -> ())
    [ 1; 2; 4 ]

let pool_survives_batch_failure () =
  (* a failed batch must leave the pool usable for the next one *)
  Parallel.Pool.with_pool ~jobs:2 (fun pool ->
      (match Parallel.Pool.init pool 10 (fun i -> if i = 3 then failwith "bad" else i) with
       | _ -> Alcotest.fail "expected failure"
       | exception Failure _ -> ());
      Alcotest.(check (array int)) "next batch" (Array.init 10 succ) (Parallel.Pool.init pool 10 succ))

let pool_reuse () =
  Parallel.Pool.with_pool ~jobs:4 (fun pool ->
      check_int "workers" 4 (Parallel.Pool.jobs pool);
      let a = Parallel.Pool.map pool String.length [| "a"; "bb"; "ccc" |] in
      let b = Parallel.Pool.map pool String.length [| "dddd" |] in
      Alcotest.(check (array int)) "first batch" [| 1; 2; 3 |] a;
      Alcotest.(check (array int)) "second batch" [| 4 |] b)

let progress_contract () =
  List.iter
    (fun jobs ->
      let calls = ref [] in
      let progress done_ total = calls := (done_, total) :: !calls in
      ignore (Parallel.parallel_init ~jobs ~progress 50 (fun i -> i));
      let calls = List.rev !calls in
      check_bool "at least one call" true (calls <> []);
      List.iter (fun (_, total) -> check_int "total" 50 total) calls;
      let dones = List.map fst calls in
      let rec strictly_increasing = function
        | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
        | [ _ ] | [] -> true
      in
      check_bool "strictly monotonic" true (strictly_increasing dones);
      check_int "final call reports total" 50 (List.nth dones (List.length dones - 1)))
    job_counts

let resolve_jobs () =
  check_bool "0 means all cores" true (Parallel.resolve_jobs 0 >= 1);
  check_int "positive passes through" 3 (Parallel.resolve_jobs 3)

(* ---- Det: per-index generators make random workloads deterministic ---- *)

let det_deterministic () =
  let draw jobs =
    Parallel.Pool.with_pool ~jobs (fun pool ->
        Parallel.Det.init pool ~seed:11 64 (fun g i -> (i, Rng.int g 1_000_000)))
  in
  let reference = draw 1 in
  List.iter
    (fun jobs ->
      check_bool
        (Printf.sprintf "Det.init jobs=%d" jobs)
        true
        (draw jobs = reference))
    job_counts

(* ---- the three wired hot paths are identical for any worker count ---- *)

let sweep_config conditioning =
  let profile = Model.Generator.unconstrained ~n:4 in
  {
    (Experiment.Sweep.default_config ~profile) with
    Experiment.Sweep.samples = 25;
    targets = [ 20.0; 40.0; 60.0 ];
    sim_horizon = Model.Time.of_units 100;
    conditioning;
  }

let sweep_deterministic conditioning () =
  let csv jobs = Experiment.Sweep.to_csv (Experiment.Sweep.run ~jobs (sweep_config conditioning)) in
  let reference = csv 1 in
  List.iter
    (fun jobs ->
      check_bool (Printf.sprintf "sweep csv jobs=%d" jobs) true (String.equal (csv jobs) reference))
    job_counts

let contended_taskset =
  (* three tasks each needing 4/5 of the timeline and 4/10 of the area:
     misses under both schedulers, so an always-accept analyzer is
     contradicted (same shape as the audit tests' [contended] set) *)
  Model.Taskset.of_list
    [
      Model.Task.make ~name:"a" ~exec:(Model.Time.of_units 4) ~deadline:(Model.Time.of_units 5)
        ~period:(Model.Time.of_units 5) ~area:4 ();
      Model.Task.make ~name:"b" ~exec:(Model.Time.of_units 4) ~deadline:(Model.Time.of_units 5)
        ~period:(Model.Time.of_units 5) ~area:4 ();
      Model.Task.make ~name:"c" ~exec:(Model.Time.of_units 4) ~deadline:(Model.Time.of_units 5)
        ~period:(Model.Time.of_units 5) ~area:4 ();
    ]

let audit_deterministic () =
  (* inject an unsound analyzer so the parallel path also covers the
     miss -> shrink -> fixture pipeline, not just clean verdicts *)
  let analyzers =
    Audit.Consistency.paper_analyzers
    @ [ Audit.Consistency.always_accept ~name:"YES" ~sound_for:[ Audit.Consistency.Edf_nf ] ]
  in
  let config = Audit.Consistency.default_config ~fpga_area:10 in
  let run jobs = Audit.Consistency.audit ~analyzers ~jobs config contended_taskset in
  let reference = run 1 in
  check_bool "injected analyzer caught" true
    (List.exists (fun f -> f.Audit.Consistency.analyzer = Some "YES") reference);
  List.iter
    (fun jobs ->
      check_bool (Printf.sprintf "audit findings jobs=%d" jobs) true (run jobs = reference))
    job_counts

let exhaustive_witness =
  Model.Taskset.of_list
    [
      Model.Task.make ~name:"t0" ~exec:(Model.Time.of_units 3) ~deadline:(Model.Time.of_units 3)
        ~period:(Model.Time.of_units 3) ~area:6 ();
      Model.Task.make ~name:"t1" ~exec:(Model.Time.of_units 1) ~deadline:(Model.Time.of_units 3)
        ~period:(Model.Time.of_units 3) ~area:4 ();
      Model.Task.make ~name:"t2" ~exec:(Model.Time.of_units 1) ~deadline:(Model.Time.of_units 2)
        ~period:(Model.Time.of_units 2) ~area:4 ();
    ]

let exhaustive_deterministic () =
  let grid = Model.Time.of_ticks 500 in
  let search jobs ts =
    Sim.Exhaustive.search ~grid ~jobs ~fpga_area:10 ~policy:Sim.Policy.edf_nf ts
  in
  (* a taskset with a miss: the parallel search must report the same
     (lexicographically first) offset assignment as the serial one *)
  let reference = search 1 exhaustive_witness in
  (match reference with
   | Sim.Exhaustive.Miss_with_offsets _ -> ()
   | _ -> Alcotest.fail "witness should miss for some offsets");
  List.iter
    (fun jobs ->
      check_bool (Printf.sprintf "miss outcome jobs=%d" jobs) true
        (search jobs exhaustive_witness = reference))
    job_counts;
  (* and a schedulable taskset: all outcomes agree there too *)
  let ok =
    Model.Taskset.of_list
      [
        Model.Task.make ~name:"a" ~exec:(Model.Time.of_units 1) ~deadline:(Model.Time.of_units 3)
          ~period:(Model.Time.of_units 3) ~area:4 ();
        Model.Task.make ~name:"b" ~exec:(Model.Time.of_units 1) ~deadline:(Model.Time.of_units 2)
          ~period:(Model.Time.of_units 2) ~area:4 ();
      ]
  in
  let reference = Sim.Exhaustive.search ~jobs:1 ~fpga_area:10 ~policy:Sim.Policy.edf_nf ok in
  (match reference with
   | Sim.Exhaustive.Schedulable_all_offsets { combinations } -> check_int "combinations" 6 combinations
   | _ -> Alcotest.fail "expected schedulable");
  List.iter
    (fun jobs ->
      check_bool (Printf.sprintf "schedulable outcome jobs=%d" jobs) true
        (Sim.Exhaustive.search ~jobs ~fpga_area:10 ~policy:Sim.Policy.edf_nf ok = reference))
    job_counts

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "empty input" `Quick empty_input;
          Alcotest.test_case "init matches serial" `Quick init_matches_serial;
          Alcotest.test_case "chunk size 1" `Quick chunk_one;
          Alcotest.test_case "more workers than items" `Quick more_workers_than_items;
          Alcotest.test_case "exception propagates" `Quick exception_propagates;
          Alcotest.test_case "pool survives batch failure" `Quick pool_survives_batch_failure;
          Alcotest.test_case "pool reuse" `Quick pool_reuse;
          Alcotest.test_case "progress contract" `Quick progress_contract;
          Alcotest.test_case "resolve_jobs" `Quick resolve_jobs;
        ] );
      ("det", [ Alcotest.test_case "deterministic for any jobs" `Quick det_deterministic ]);
      ( "hot paths",
        [
          Alcotest.test_case "sweep scaled deterministic" `Quick
            (sweep_deterministic Experiment.Sweep.Scaled);
          Alcotest.test_case "sweep binned deterministic" `Quick
            (sweep_deterministic Experiment.Sweep.Binned);
          Alcotest.test_case "audit deterministic" `Quick audit_deterministic;
          Alcotest.test_case "exhaustive deterministic" `Quick exhaustive_deterministic;
        ] );
    ]
