The paper's tables through the CLI:

  $ redf tables | grep -E 'Table|DP:|GN1:|GN2:' | head -12
  Table 1
  DP: ACCEPT
  GN1: REJECT
  GN2: REJECT
  Table 2
  DP: REJECT
  GN1: ACCEPT
  GN2: REJECT
  Table 3
  DP: REJECT
  GN1: REJECT
  GN2: ACCEPT

Generate a taskset, analyze it, simulate it:

  $ redf generate --profile unconstrained -n 3 --seed 3 --target-us 20 > ts.csv
  $ head -1 ts.csv
  name,C,D,T,A
  $ redf analyze ts.csv --area 100 > /dev/null 2>&1; echo "exit $?"
  exit 0
  $ redf simulate ts.csv --area 100 --horizon 50 | head -2
  policy: EDF-NF, placement: migrating, horizon: 50 units
  no deadline miss observed

An infeasible taskset is refuted and reported:

  $ cat > bad.csv <<'CSV'
  > name,C,D,T,A
  > a,9,10,10,60
  > b,9,10,10,60
  > CSV
  $ redf analyze bad.csv --area 100 | grep -A2 INFEASIBLE
  INFEASIBLE under any scheduler:
    system utilization 108.0000 exceeds the device area
    mutually-exclusive tasks {1,2} demand 1.8000 > 1 of a serial resource
  $ redf analyze bad.csv --area 100 > /dev/null 2>&1; echo "exit $?"
  exit 2

The paper's tasksets lint and audit clean (Table 1 shown; the full
corpus is covered by `dune build @lint`):

  $ cat > table1.csv <<'CSV'
  > name,C,D,T,A
  > tau1,1.26,7,7,9
  > tau2,0.95,5,5,6
  > CSV
  $ redf lint table1.csv --area 10; echo "exit $?"
  lint: clean
  exit 0
  $ redf audit table1.csv --area 10; echo "exit $?"
  audit: clean
  exit 0

A malformed taskset fails lint with a nonzero status, in both output
forms:

  $ echo garbage > malformed.csv
  $ redf lint malformed.csv; echo "exit $?"
  error[taskset-parse]: Taskset.of_csv: bad header
  lint: 1 error, 0 warnings, 0 infos
  exit 2
  $ redf lint malformed.csv --sexp; echo "exit $?"
  (diagnostics
   ((severity error) (rule taskset-parse) (message "Taskset.of_csv: bad header")))
  exit 2

Lint diagnostics are severity-tagged and task-indexed:

  $ cat > messy.csv <<'CSV'
  > name,C,D,T,A
  > a,9,10,10,60
  > a,2,12,10,30
  > CSV
  $ redf lint messy.csv --area 80; echo "exit $?"
  error[exclusion-clique-overload]: mutually-exclusive tasks {1,2} demand 1.1000 > 1 of a serial resource
  warning[deadline-exceeds-period] task 2: deadline 12 exceeds period 10 (unconstrained deadline); the tests stay sound but pessimistic
  warning[duplicate-task-name] task 2: name "a" already used by task 1
  lint: 1 error, 2 warnings, 0 infos
  exit 2

The consistency auditor flags an unsound analyzer: three tasks that
pass every lint rule but cannot all be served (only two fit at once),
so the injected ALWAYS-ACCEPT stub's verdict contradicts the observed
misses under both schedulers and both release patterns:

  $ cat > contended.csv <<'CSV'
  > name,C,D,T,A
  > a,4,5,5,4
  > b,4,5,5,4
  > c,4,5,5,4
  > CSV
  $ redf lint contended.csv --area 10; echo "exit $?"
  lint: clean
  exit 0
  $ redf audit contended.csv --area 10; echo "exit $?"
  audit: clean
  exit 0
  $ redf audit contended.csv --area 10 --inject-unsound --sexp | grep -c unsound-accept
  4
  $ redf audit contended.csv --area 10 --inject-unsound > /dev/null; echo "exit $?"
  exit 2

Unsound accepts come with a shrunk counterexample, emitted as a
regression fixture:

  $ mkdir fixtures
  $ redf audit contended.csv --area 10 --inject-unsound --fixture-dir fixtures > /dev/null 2>&1
  [2]
  $ cat fixtures/counterexample-0-always-accept.csv
  name,C,D,T,A
  a,2,5,5,4
  b,2,5,5,4
  c,4,5,5,4

The no-critical-instant witness:

  $ cat > witness.csv <<'CSV'
  > name,C,D,T,A
  > t0,3,3,3,6
  > t1,1,3,3,4
  > t2,1,2,2,4
  > CSV
  $ redf simulate witness.csv --area 10 --horizon 6 | head -2
  policy: EDF-NF, placement: migrating, horizon: 6 units
  no deadline miss observed
  $ redf exhaustive witness.csv --area 10 --grid 500 > /dev/null 2>&1; echo "exit $?"
  exit 2

Parallel runs are byte-identical to serial ones — the sweep CSV, the
audit report and the exhaustive verdict must not depend on the worker
count:

  $ redf sweep fig3a --samples 5 --horizon 50 --csv -j 1 > sweep-j1.csv 2>/dev/null
  $ redf sweep fig3a --samples 5 --horizon 50 --csv -j 4 > sweep-j4.csv 2>/dev/null
  $ cmp sweep-j1.csv sweep-j4.csv && echo identical
  identical
  $ redf audit contended.csv --area 10 --inject-unsound --sexp -j 1 > audit-j1.sexp
  [2]
  $ redf audit contended.csv --area 10 --inject-unsound --sexp -j 4 > audit-j4.sexp
  [2]
  $ cmp audit-j1.sexp audit-j4.sexp && echo identical
  identical
  $ redf exhaustive witness.csv --area 10 --grid 500 -j 4 > /dev/null 2>&1; echo "exit $?"
  exit 2

Several tasksets can be audited in one invocation (in parallel with
-j); the exit status is the worst one and each report is labelled:

  $ redf audit table1.csv witness.csv --area 10 -j 2; echo "exit $?"
  audit table1.csv: clean
  warning[degenerate-utilization] task 1: C = T = 3: utilization is exactly 1, the task permanently occupies 6 columns
  info[sufficiency-gap]: exact oracle certifies schedulability (no miss over 18 offset assignments on the 1 grid) but DP, GN1, GN2 reject: a sufficiency gap, not unsoundness
  audit witness.csv: 0 errors, 1 warning, 1 info
  exit 0

--metrics dumps a key-sorted JSON-lines snapshot of the run's metrics
(on stderr by default, or into a file), without disturbing the normal
output or exit status:

(the simulate output lands in a file first: piping it straight into
head can close the pipe early and kill the process by SIGPIPE before
the snapshot is written)

  $ redf simulate table1.csv --area 10 --horizon 35 --metrics 2> metrics.jsonl > sim-out.txt
  $ head -2 sim-out.txt
  policy: EDF-NF, placement: migrating, horizon: 35 units
  no deadline miss observed
  $ grep '"kind":"counter"' metrics.jsonl | grep 'sim.engine' | head -3
  {"det":true,"kind":"counter","name":"sim.engine.deadline_misses","value":0}
  {"det":true,"kind":"counter","name":"sim.engine.events_popped","value":24}
  {"det":true,"kind":"counter","name":"sim.engine.iterations","value":24}
  $ grep -o '"name":"[^"]*"' metrics.jsonl | sort -c && echo sorted
  sorted

metrics-diff compares two snapshots; deterministic metrics must agree
for any worker count, while timers may differ (full diff):

  $ redf sweep fig3a --samples 5 --horizon 50 --csv -j 1 --metrics=sweep-j1.jsonl > /dev/null 2>&1
  $ redf sweep fig3a --samples 5 --horizon 50 --csv -j 4 --metrics=sweep-j4.jsonl > /dev/null 2>&1
  $ redf metrics-diff sweep-j1.jsonl sweep-j4.jsonl --det-only; echo "exit $?"
  identical (deterministic metrics)
  exit 0
  $ redf metrics-diff sweep-j1.jsonl sweep-j1.jsonl; echo "exit $?"
  identical
  exit 0
  $ redf metrics-diff sweep-j1.jsonl sweep-j4.jsonl | grep -c 'pool.workers'
  1
  $ redf metrics-diff sweep-j1.jsonl table1.csv 2> /dev/null; echo "exit $?"
  exit 3

A negative -j or a garbage REDF_JOBS is a usage error (exit 2), not a
silent fall-back to serial:

  $ redf sweep fig3a --samples 1 --jobs=-2 2>&1; echo "exit $?"
  error: invalid --jobs -2: expected a positive worker count or 0 (one per core)
  exit 2
  $ REDF_JOBS=three redf audit table1.csv --area 10 2>&1; echo "exit $?"
  error: invalid REDF_JOBS="three": expected a positive worker count or 0 (one per core)
  exit 2

--format json renders the analyze report and the lint report as one
canonical (key-sorted) JSON object; --analyzer picks registry entries:

  $ redf analyze table1.csv --area 10 --format json | grep -o '"schema_version":1,"system_utilization":"69/25"'
  "schema_version":1,"system_utilization":"69/25"
  $ redf analyze table1.csv --area 10 --analyzer nec --format json | grep -o '"analyzer":"NEC"'
  "analyzer":"NEC"
  $ redf analyze table1.csv --area 10 --analyzer bogus; echo "exit $?"
  error: unknown analyzer "bogus" (use DP, GN1, GN2, DP-original, GN1-printed, NEC, exact, exact-fkf, approx[1/10], approx[EPS])
  exit 2
  $ redf lint table1.csv --area 10 --format json
  {"clean":true,"diagnostics":[],"fpga_area":10,"kind":"lint","schema_version":1}

The analysis service reads one JSON request per line and answers in
request order; a malformed line yields an error response and must not
kill the server (exit stays 0, later requests are still answered):

  $ cat > requests.jsonl <<'EOF2'
  > {"id":1,"analyzer":"GN2","fpga_area":10,"tasks":[{"name":"tau1","C":"1.26","D":7,"T":7,"A":9},{"name":"tau2","C":"0.95","D":5,"T":5,"A":6}]}
  > not json at all
  > {"id":2,"analyzer":"DP","fpga_area":10,"tasks":[{"C":"0.95","D":5,"T":5,"A":6},{"C":"1.26","D":7,"T":7,"A":9}]}
  > EOF2
  $ redf serve < requests.jsonl > serve-out.jsonl; echo "exit $?"
  exit 0
  $ grep -c '' serve-out.jsonl
  3
  $ sed -n 2p serve-out.jsonl
  {"error":"malformed JSON: at offset 0: bad literal","kind":"error","schema_version":1}
  $ sed -n 3p serve-out.jsonl | grep -o '"accepted":true,"analyzer":"DP"'
  "accepted":true,"analyzer":"DP"

redf batch answers the same file in-process, byte-identically:

  $ redf batch requests.jsonl > batch-out.jsonl; echo "exit $?"
  exit 0
  $ cmp serve-out.jsonl batch-out.jsonl && echo identical
  identical

The same service over a Unix-domain socket: batch --connect pipelines
the file to the server, SIGTERM drains it cleanly, removes the socket
file and (with --metrics) leaves a snapshot showing cache hits from
the repeated batch:

  $ redf serve --socket srv.sock --metrics=serve-metrics.jsonl &
  $ for i in $(seq 100); do [ -S srv.sock ] && break; sleep 0.1; done
  $ redf batch requests.jsonl --connect srv.sock > socket-out.jsonl
  $ cmp serve-out.jsonl socket-out.jsonl && echo identical
  identical
  $ redf batch requests.jsonl --connect srv.sock | cmp serve-out.jsonl - && echo identical
  identical
  $ kill -TERM $!; wait $!; echo "server exit $?"
  server exit 0
  $ [ -S srv.sock ] || echo removed
  removed
  $ grep '"name":"cache.hits"' serve-metrics.jsonl
  {"det":false,"kind":"counter","name":"cache.hits","value":2}

Audit verdicts are also available as canonical JSON; the schema
(sorted keys, schema_version) is pinned here:

  $ redf audit table1.csv --area 10 --format json; echo "exit $?"
  {"clean":true,"diagnostics":[],"fpga_area":10,"kind":"audit","schema_version":1}
  exit 0
  $ redf audit bad.csv --area 100 --format json; echo "exit $?"
  {"clean":false,"diagnostics":[{"message":"system utilization 108.0000 exceeds the device area","rule":"device-overloaded","severity":"error"},{"message":"mutually-exclusive tasks {1,2} demand 1.8000 > 1 of a serial resource","rule":"exclusion-clique-overload","severity":"error"}],"fpga_area":100,"kind":"audit","schema_version":1}
  exit 2

The exact oracle and the tunable approximate analyzer are registry
citizens: --analyzer resolves them anywhere, the exit status follows
the selected verdicts, and epsilon is part of the approx name (so a
decimal spelling normalizes to the same analyzer and cache key):

  $ cat > gap.csv <<'CSV'
  > name,C,D,T,A
  > wide1,1,4,4,4
  > wide2,1,4,4,4
  > CSV
  $ redf analyze gap.csv --area 4 --analyzer dp,gn1,gn2 > /dev/null; echo "exit $?"
  exit 2
  $ redf analyze gap.csv --area 4 --analyzer exact > /dev/null; echo "exit $?"
  exit 0
  $ redf analyze gap.csv --area 4 --analyzer exact,approx --format json; echo "exit $?"
  {"fpga_area":4,"kind":"report","schema_version":1,"system_utilization":"2","tasks":[{"A":4,"C":"1","D":"4","T":"4","name":"wide1"},{"A":4,"C":"1","D":"4","T":"4","name":"wide2"}],"time_utilization":"1/2","verdicts":[{"accepted":true,"analyzer":"exact","analyzer_version":"1","checks":[{"lhs":"0","note":"exact: no deadline miss for any of 16 first-release offset assignments on the 1 grid over [0, O_max + 2H)","rhs":"0","satisfied":true,"task":1},{"lhs":"0","note":"exact: no deadline miss for any of 16 first-release offset assignments on the 1 grid over [0, O_max + 2H)","rhs":"0","satisfied":true,"task":2}]},{"accepted":true,"analyzer":"approx[1/10]","analyzer_version":"1","checks":[{"lhs":"0","note":"US <= A(H) and the utilization-slack bound is zero: the necessary criterion holds everywhere, no test points needed","rhs":"4","satisfied":true,"task":1},{"lhs":"0","note":"US <= A(H) and the utilization-slack bound is zero: the necessary criterion holds everywhere, no test points needed","rhs":"4","satisfied":true,"task":2}]}]}
  exit 0
  $ redf analyze gap.csv --area 4 --analyzer 'approx[0.01]' | grep -o 'approx\[1/100\]: ACCEPT'
  approx[1/100]: ACCEPT
  $ redf analyze gap.csv --area 4 --analyzer 'approx[zero]'; echo "exit $?"
  error: approx: malformed eps "zero" (want N/D or a decimal)
  exit 2

The oracle-backed audit reports the sufficiency gap on such a set as
an informational finding (exit stays 0, even under --strict):

  $ redf audit gap.csv --area 4 --strict; echo "exit $?"
  info[sufficiency-gap]: exact oracle certifies schedulability (no miss over 16 offset assignments on the 1 grid) but DP, GN1, GN2 reject: a sufficiency gap, not unsoundness
  audit: 0 errors, 0 warnings, 1 info
  exit 0

A demand-infeasible set is refuted by both: the oracle with a concrete
synchronous counterexample, approx with the violated necessary
criterion (its REJECT is exact, independent of epsilon):

  $ cat > demand.csv <<'CSV'
  > name,C,D,T,A
  > dem1,2,2,4,3
  > dem2,2,2,4,3
  > CSV
  $ redf analyze demand.csv --area 4 --analyzer exact,approx | grep -E '^(exact|approx)'
  exact: REJECT
  approx[1/10]: REJECT
  $ redf analyze demand.csv --area 4 --analyzer exact,approx > /dev/null; echo "exit $?"
  exit 2

The analysis service resolves the same names, so exact and approx
verdicts flow through serve/batch and the verdict cache unchanged:

  $ cat > exact-requests.jsonl <<'EOF2'
  > {"id":1,"analyzer":"exact","fpga_area":4,"tasks":[{"name":"wide1","C":"1","D":4,"T":4,"A":4},{"name":"wide2","C":"1","D":4,"T":4,"A":4}]}
  > {"id":2,"analyzer":"approx[1/10]","fpga_area":4,"tasks":[{"name":"wide1","C":"1","D":4,"T":4,"A":4},{"name":"wide2","C":"1","D":4,"T":4,"A":4}]}
  > EOF2
  $ redf batch exact-requests.jsonl | grep -c '"accepted":true'
  2
