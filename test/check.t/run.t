check-src works on any cmt, including one compiled outside dune.  A
scratch module opts into the det and exact scopes via tags; findings
carry compiler-style locations:

  $ cat > scratch.ml <<'ML'
  > [@@@redf.det]
  > [@@@redf.exact]
  > let now () = Sys.time ()
  > let half = 0.5
  > let jobs () =
  >   (Sys.getenv_opt "REDF_JOBS"
  >   [@redf.allow "det-purity" "demo: suppressed with a justification"])
  > ML
  $ ocamlc -bin-annot -c scratch.ml
  $ redf check-src scratch.cmt; echo "exit $?"
  scratch.ml:3:13: error[det-purity]: Stdlib.Sys.time in a deterministic module: reads the process clock
  scratch.ml:4:11: error[exact-arith]: float literal 0.5 in an exact decide path: use Rat/Bignum
  check-src: 2 errors, 0 warnings (1 modules)
  exit 1

Rule selection narrows the pass; an unknown rule is a usage error
(exit 3, like an unreadable input):

  $ redf check-src scratch.cmt --rule exact-arith; echo "exit $?"
  scratch.ml:4:11: error[exact-arith]: float literal 0.5 in an exact decide path: use Rat/Bignum
  check-src: 1 error, 0 warnings (1 modules)
  exit 1
  $ redf check-src scratch.cmt --rule bogus 2>&1; echo "exit $?"
  error: unknown rule "bogus" (known rules: det-purity, domain-safety, exact-arith, poly-compare)
  exit 3
  $ redf check-src no_such_path 2>&1; echo "exit $?"
  error: no_such_path: no such file or directory (nor under _build/default)
  exit 3

JSON output is canonical (sorted keys) and versioned:

  $ redf check-src scratch.cmt --rule exact-arith --format json
  {"clean":false,"errors":1,"findings":[{"col":11,"file":"scratch.ml","line":4,"message":"float literal 0.5 in an exact decide path: use Rat/Bignum","rule":"exact-arith","severity":"error"}],"kind":"check-src","modules":1,"schema_version":1,"warnings":0}
  [1]

A module whose only blemish is an allow that suppresses nothing is
clean by default and fails under --strict:

  $ cat > warned.ml <<'ML'
  > [@@@redf.det]
  > let answer = (42 [@redf.allow "det-purity" "demo: nothing to suppress"])
  > ML
  $ ocamlc -bin-annot -c warned.ml
  $ redf check-src warned.cmt; echo "exit $?"
  warned.ml:2:17: warning[unused-allow]: [@redf.allow "det-purity"] suppresses nothing here
  check-src: 0 errors, 1 warning (1 modules)
  exit 0
  $ redf check-src warned.cmt --strict; echo "exit $?"
  warned.ml:2:17: warning[unused-allow]: [@redf.allow "det-purity"] suppresses nothing here
  check-src: 0 errors, 1 warning (1 modules)
  exit 1
