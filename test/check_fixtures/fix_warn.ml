(* warning-only fixture: a single allow with nothing to suppress, so
   the module is clean by default and dirty under --strict. *)
[@@@redf.det]

let answer = (42 [@redf.allow "det-purity" "fixture: suppresses nothing, warns"])
