(* clean fixture: tagged into every scope, violates nothing. *)
[@@@redf.det]
[@@@redf.exact]
[@@@redf.domain_shared]

let add a b = a + b
let sorted = List.sort String.compare [ "b"; "a" ]
let guarded = Atomic.make 0
