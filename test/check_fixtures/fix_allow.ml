(* suppression fixture: a justified allow silences its finding, an
   allow without a justification is itself an error (and suppresses
   nothing), and an allow with nothing to suppress warns. *)
[@@@redf.det]

let suppressed () =
  (Hashtbl.iter (fun _ _ -> ()) (Hashtbl.create 3 : (int, int) Hashtbl.t)
  [@redf.allow "det-purity" "fixture: iterating a fresh empty table"])

let unjustified () = (Sys.getenv "PATH" [@redf.allow "det-purity"])
let pointless = (42 [@redf.allow "det-purity" "fixture: nothing to suppress"])
