(* det-purity fixture: a tagged module using hash-order iteration and
   the environment.  Both uses are flagged; nothing else is. *)
[@@@redf.det]

let table : (int, int) Hashtbl.t = Hashtbl.create 8
let iterate () = Hashtbl.iter (fun _ _ -> ()) table
let home () = Sys.getenv "HOME"
let fine () = Hashtbl.length table
