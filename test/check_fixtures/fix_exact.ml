(* exact-arith fixture: float literals, float parsing, and float
   comparison (named and polymorphic) in a tagged module. *)
[@@@redf.exact]

let half = 0.5
let parse s = float_of_string s
let same a b = Float.compare a b = 0
let below (a : float) (b : float) = a < b
let exact_ok = 1
