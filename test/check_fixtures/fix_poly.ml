(* poly-compare fixture: structural =/compare instantiated at repo
   types carrying a custom ordering.  In scope everywhere, no tag. *)

let same_verdict (a : Core.Verdict.t) (b : Core.Verdict.t) = a = b
let order_results (a : Core.Dbf.result) (b : Core.Dbf.result) = compare a b
let int_ok (a : int) (b : int) = a = b
