(* domain-safety fixture: bare module-level mutable state is flagged;
   Atomic state and a justified allow are not. *)
[@@@redf.domain_shared]

let counter = ref 0
let ticks = Atomic.make 0

let cache : (int, int) Hashtbl.t =
  Hashtbl.create 4
[@@redf.allow "domain-safety" "fixture: pretend a mutex guards this table"]

let bump () =
  incr counter;
  Atomic.incr ticks
