(* Regression tests for soundness bugs found by property testing during
   development.

   The paper's Lemma 3 states its GN1 bound non-strictly
   (lhs <= (A(H)-A_k+1)(D_k-C_k) implies schedulability); random testing
   against exact-hyperperiod simulation found tasksets sitting exactly on
   the equality boundary that nevertheless miss a deadline under EDF-NF.
   GN1 therefore compares strictly (DESIGN.md section 2).  Each taskset
   below is such a boundary case: the non-strict form would accept it,
   the strict form must reject it, and the simulator must observe the
   miss. *)

module Engine = Sim.Engine

let check_bool = Alcotest.(check bool)
let ts = Core_helpers.taskset
let fpga_area = 10

let hyperperiod_exn t =
  match Model.Taskset.hyperperiod t with
  | Model.Taskset.Finite h -> h
  | Model.Taskset.Exceeds_cap -> Alcotest.fail "finite hyperperiod expected"

let counterexamples =
  [
    (* two tasks that can never run concurrently: the device degenerates
       to a serial resource with demand > 1 *)
    ("serial pair A", [ ("t0", "7.735", "8", "8", 8); ("t1", "0.558", "2", "2", 3) ]);
    ("serial pair B", [ ("t0", "1.04", "5", "5", 3); ("t1", "8.433", "10", "10", 8) ]);
    ("full-width + unit", [ ("t0", "7.921", "8", "8", 10); ("t1", "7.301", "10", "10", 1) ]);
    ( "three-task boundary",
      [ ("t0", "2.04", "4", "4", 1); ("t1", "1.582", "4", "4", 1); ("t2", "7.102", "8", "8", 9) ] );
    ( "boundary at every k",
      [ ("t0", "1.297", "2", "2", 4); ("t1", "2.52", "5", "5", 2); ("t2", "1.718", "2", "2", 5) ] );
  ]

let gn1_boundary_cases () =
  List.iter
    (fun (name, rows) ->
      let t = ts rows in
      (* the strict GN1 must reject *)
      check_bool (name ^ ": GN1 rejects") false (Core.Gn1.accepts ~fpga_area t);
      (* at least one per-task check sits exactly on the boundary, which
         is what the non-strict reading would have accepted *)
      let v = Core.Gn1.decide ~fpga_area t in
      let on_boundary =
        List.exists (fun c -> Rat.equal c.Core.Verdict.lhs c.Core.Verdict.rhs) v.Core.Verdict.checks
      in
      check_bool (name ^ ": equality boundary") true on_boundary;
      (* and the miss is real *)
      let cfg = Engine.default_config ~fpga_area ~policy:Sim.Policy.edf_nf in
      let r = Engine.run { cfg with Engine.horizon = hyperperiod_exn t } t in
      check_bool (name ^ ": simulator observes the miss") true (r.Engine.outcome <> Engine.No_miss))
    counterexamples

(* The other tests must also reject these unschedulable sets. *)
let others_reject_too () =
  List.iter
    (fun (name, rows) ->
      let t = ts rows in
      check_bool (name ^ ": DP rejects") false (Core.Dp.accepts ~fpga_area t);
      check_bool (name ^ ": GN2 rejects") false (Core.Gn2.accepts ~fpga_area t);
      check_bool (name ^ ": printed GN1 rejects") false (Core.Gn1.accepts_printed ~fpga_area t))
    counterexamples

let () =
  Alcotest.run "regressions"
    [
      ( "gn1 boundary",
        [
          Alcotest.test_case "strict GN1 rejects boundary cases" `Quick gn1_boundary_cases;
          Alcotest.test_case "DP and GN2 reject them too" `Quick others_reject_too;
        ] );
    ]
