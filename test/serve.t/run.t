Request-framing and multi-client regressions for the analysis service.

  $ cat > requests.jsonl <<'EOF'
  > {"id":1,"analyzer":"GN2","fpga_area":10,"tasks":[{"name":"tau1","C":"1.26","D":7,"T":7,"A":9},{"name":"tau2","C":"0.95","D":5,"T":5,"A":6}]}
  > {"id":2,"analyzer":"DP","fpga_area":10,"tasks":[{"C":"0.95","D":5,"T":5,"A":6},{"C":"1.26","D":7,"T":7,"A":9}]}
  > EOF

A request line over the 16 MiB cap is answered with an error — whether
it arrives fully terminated or as a growing partial — and the
well-formed requests around it are still answered (historically the
complete lines sharing a read chunk with an oversized partial were
silently dropped):

  $ head -c 17000000 /dev/zero | tr '\0' 'x' > big-line.txt

  $ { cat big-line.txt; echo; cat requests.jsonl; } | redf serve > capped.jsonl; echo "exit $?"
  exit 0
  $ grep -c '' capped.jsonl
  3
  $ sed -n 1p capped.jsonl
  {"error":"request too large: line exceeds 16 MiB","kind":"error","schema_version":1}
  $ sed -n 2p capped.jsonl | grep -c '"id":1'
  1

  $ { cat requests.jsonl; cat big-line.txt; } | redf serve > tail-capped.jsonl; echo "exit $?"
  exit 0
  $ grep -c '' tail-capped.jsonl
  3
  $ sed -n 1p tail-capped.jsonl | grep -c '"id":1'
  1
  $ sed -n 3p tail-capped.jsonl
  {"error":"request too large: line exceeds 16 MiB","kind":"error","schema_version":1}

The partial-line timeout is measured from when the partial started, so
a client trickling bytes (each gap below --timeout) still gets cut off
(historically every received byte re-armed the deadline, and the
abandoned partial was finally parsed as a malformed request at EOF):

  $ { printf '{"trick'; sleep 0.3; printf 'le'; sleep 0.3; printf 'd'; sleep 0.3; } \
  >   | redf serve --timeout 0.5 > trickled.jsonl; echo "exit $?"
  exit 0
  $ cat trickled.jsonl
  {"error":"request timeout: incomplete request line dropped","kind":"error","schema_version":1}

The socket server multiplexes concurrent clients: two batches
pipelined at the same time each get their own responses, in their own
order, byte-identical to in-process evaluation:

  $ tac requests.jsonl > reversed.jsonl
  $ redf serve --socket srv.sock & srv_pid=$!
  $ for i in $(seq 100); do [ -S srv.sock ] && break; sleep 0.1; done
  $ redf batch requests.jsonl --connect srv.sock > a-out.jsonl & a_pid=$!
  $ redf batch reversed.jsonl --connect srv.sock > b-out.jsonl
  $ wait $a_pid
  $ redf batch requests.jsonl | cmp - a-out.jsonl && echo a-identical
  a-identical
  $ redf batch reversed.jsonl | cmp - b-out.jsonl && echo b-identical
  b-identical
  $ kill -TERM $srv_pid; wait $srv_pid; echo "server exit $?"
  server exit 0

With a global in-flight budget of 1, a pipelined burst admits the
first request and sheds the rest — answered in order with a
well-formed error that echoes each request's id, never dropped:

  $ cat requests.jsonl requests.jsonl > burst.jsonl
  $ redf serve --socket shed.sock --max-inflight 1 -j 1 & shed_pid=$!
  $ for i in $(seq 100); do [ -S shed.sock ] && break; sleep 0.1; done
  $ redf batch burst.jsonl --connect shed.sock > shed-out.jsonl
  $ kill -TERM $shed_pid; wait $shed_pid; echo "server exit $?"
  server exit 0
  $ grep -c '' shed-out.jsonl
  4
  $ sed -n 1p shed-out.jsonl | grep -c '"kind":"verdict"'
  1
  $ grep -c 'server overloaded: request shed' shed-out.jsonl
  3
  $ sed -n 2p shed-out.jsonl
  {"error":"server overloaded: request shed","id":2,"kind":"error","schema_version":1}

bench-serve drives a concurrent serve loop and checks, per client,
that concurrent serving returns the bytes serial serving returns:

  $ redf bench-serve --clients 4 --requests 20 -j 2 --out bench.json > /dev/null; echo "exit $?"
  exit 0
  $ grep -c '"determinism":"ok"' bench.json
  1
