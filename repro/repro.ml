let ts_of rows =
  Model.Taskset.of_list
    (List.mapi
       (fun i (c, d, t, a) ->
         Model.Task.make ~name:(Printf.sprintf "t%d" i)
           ~exec:(Model.Time.of_units c) ~deadline:(Model.Time.of_units d)
           ~period:(Model.Time.of_units t) ~area:a ())
       rows)

let () =
  (* task with C > min(D,T) placed LAST in request order but sorting first canonically *)
  let rows = [ (4, 9, 9, 3); (3, 2, 2, 2) ] in
  let ts = ts_of rows in
  let analyzer = Core.Analyzer.nec in
  let fresh = analyzer.Core.Analyzer.decide ~fpga_area:10 ts in
  let cache = Cache.Verdicts.create ~capacity:16 () in
  (* prime the cache via a permuted request, then query original order *)
  let ts_perm = ts_of (List.rev rows) in
  ignore (Cache.Verdicts.decide cache ~analyzer ~fpga_area:10 ts_perm);
  let cached = Cache.Verdicts.decide cache ~analyzer ~fpga_area:10 ts in
  let s v = Core.Json.to_string (Core.Verdict.to_json v) in
  Printf.printf "fresh : %s\n" (s fresh);
  Printf.printf "cached: %s\n" (s cached);
  Printf.printf "identical: %b\n" (String.equal (s fresh) (s cached))
