(* Measurement core of [redf bench-admit]: the admission daemon's
   mutation path (parse + incremental verdict + journal append +
   fsync), the warm what-if path, the from-scratch analyzer baseline it
   is measured against, and recovery time as a function of journal
   length.  Writes the "admit" section of results/BENCH_serve.json
   (see Bench_serve.write_section). *)

module Json = Core.Json

let ( // ) = Filename.concat

(* tiny-utilization tasks so every admission is accepted and the
   resident taskset can grow to [resident] without the analyzer saying
   no: the bench measures machinery, not admission policy *)
let light_task i ~id =
  Json.to_string
    (Json.Obj
       [
         ("op", Json.String "add-task");
         ("id", Json.String id);
         ( "task",
           Json.Obj
             [
               ("name", Json.String (Printf.sprintf "tau%d" i));
               ("C", Json.Int 1);
               ("D", Json.Int (1000 + (i mod 64)));
               ("T", Json.Int (1000 + (i mod 64)));
               ("A", Json.Int 1);
             ] );
       ])

let remove_line i ~id =
  Json.to_string
    (Json.Obj
       [
         ("op", Json.String "remove-task");
         ("id", Json.String id);
         ("name", Json.String (Printf.sprintf "tau%d" i));
       ])

let what_if_line =
  Json.to_string
    (Json.Obj
       [
         ("op", Json.String "what-if");
         ( "add",
           Json.List
             [
               Json.Obj
                 [
                   ("name", Json.String "candidate");
                   ("C", Json.Int 1);
                   ("D", Json.Int 500);
                   ("T", Json.Int 500);
                   ("A", Json.Int 1);
                 ];
             ] );
       ])

let expect_ok what reply =
  match Json.of_string reply with
  | Ok json when Json.member "kind" json = Some (Json.String "admit") -> ()
  | _ -> failwith (Printf.sprintf "bench-admit: %s failed: %s" what reply)

let time_us f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1e6)

let fresh_dir tag =
  let dir =
    Filename.get_temp_dir_name () // Printf.sprintf "redf-bench-admit-%s-%d" tag (Unix.getpid ())
  in
  (match Unix.mkdir dir 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
    Array.iter (fun f -> Sys.remove (dir // f)) (Sys.readdir dir));
  dir

let remove_dir dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (dir // f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

(* build a journal of [records] alternating add/remove (resident state
   stays tiny, so this isolates journal length, not analysis cost) and
   measure a cold open over it *)
let recovery_ms ~analyzer ~fpga_area records =
  let dir = fresh_dir (Printf.sprintf "rec%d" records) in
  Fun.protect ~finally:(fun () -> remove_dir dir)
  @@ fun () ->
  (match Admit.Store.open_dir ~snapshot_every:(records + 1) ~dir () with
  | Error msg -> failwith msg
  | Ok (store, _) ->
    for i = 1 to records do
      let op =
        if i mod 2 = 1 then Admit.State.Add (Model.Task.of_decimal ~name:"flip" ~exec:"1" ~deadline:"9" ~period:"9" ~area:1 ())
        else Admit.State.Remove "flip"
      in
      match
        Admit.Store.commit ~fsync:false store
          { Admit.State.seq = i; rid = None; op; reply = "{\"bench\":true}" }
      with
      | Ok () -> ()
      | Error msg -> failwith ("bench-admit: journal build: " ^ msg)
    done;
    Admit.Store.close store);
  let t0 = Unix.gettimeofday () in
  match Admit.Daemon.create ~snapshot_every:(records + 1) ~analyzer ~fpga_area ~dir () with
  | Error msg -> failwith ("bench-admit: recovery: " ^ msg)
  | Ok (d, recovery) ->
    let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
    Admit.Daemon.close d;
    if recovery.Admit.Store.replayed <> records then
      failwith
        (Printf.sprintf "bench-admit: recovery replayed %d of %d records"
           recovery.Admit.Store.replayed records);
    ms

let percentile = Bench_serve.percentile

let run ~mutations ~resident ~analyzer_name ~fpga_area ~out =
  match Core.Analyzer.of_name analyzer_name with
  | Error msg ->
    Printf.eprintf "error: %s\n" msg;
    2
  | Ok analyzer -> (
    let dir = fresh_dir "mut" in
    Fun.protect ~finally:(fun () -> remove_dir dir)
    @@ fun () ->
    match Admit.Daemon.create ~snapshot_every:4096 ~analyzer ~fpga_area ~dir () with
    | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
    | Ok (d, _) ->
      (* grow to the resident size, then alternate remove/re-add of the
         same task: after the first pair both verdicts are cache hits,
         so the measured latency is the durable-commit machinery
         (parse, incremental canonical key, dedup lookup, journal
         append, fsync) rather than the analyzer *)
      let latencies = Array.make mutations 0.0 in
      for i = 1 to resident do
        expect_ok "warmup add"
          (Admit.Daemon.handle_line d (light_task i ~id:(Printf.sprintf "warm-%d" i)))
      done;
      for m = 0 to mutations - 1 do
        let id = Printf.sprintf "mut-%d" m in
        let line =
          if m mod 2 = 0 then remove_line resident ~id else light_task resident ~id
        in
        let reply, us = time_us (fun () -> Admit.Daemon.handle_line d line) in
        expect_ok "mutation" reply;
        latencies.(m) <- us
      done;
      (* warm what-if: candidate verdict served from the verdict cache
         through the incremental canonical key *)
      expect_ok "what-if" (Admit.Daemon.handle_line d what_if_line);
      let what_if_runs = 200 in
      let what_if_us = Array.make what_if_runs 0.0 in
      for i = 0 to what_if_runs - 1 do
        let reply, us = time_us (fun () -> Admit.Daemon.handle_line d what_if_line) in
        expect_ok "what-if" reply;
        what_if_us.(i) <- us
      done;
      (* from-scratch baseline: one full analyzer run on the same state *)
      let tasks = Admit.State.tasks (Admit.Daemon.state d) in
      let ts = Model.Taskset.of_list tasks in
      let scratch_runs = 50 in
      let scratch_us = Array.make scratch_runs 0.0 in
      for i = 0 to scratch_runs - 1 do
        let _, us = time_us (fun () -> analyzer.Core.Analyzer.decide ~fpga_area ts) in
        scratch_us.(i) <- us
      done;
      Admit.Daemon.close d;
      let rec_1e3 = recovery_ms ~analyzer ~fpga_area 1_000 in
      let rec_1e5 = recovery_ms ~analyzer ~fpga_area 100_000 in
      Array.sort compare latencies;
      Array.sort compare what_if_us;
      Array.sort compare scratch_us;
      let sum = Array.fold_left ( +. ) 0.0 latencies in
      let json =
        Printf.sprintf
          {|{"bench":"admit","analyzer":"%s","fpga_area":%d,"resident_tasks":%d,"mutations":%d,"fsync":true,"mutations_per_s":%.1f,"mutation_us":{"p50":%.1f,"p99":%.1f,"max":%.1f},"what_if_warm_us":{"p50":%.1f,"p99":%.1f},"from_scratch_us":{"p50":%.1f,"p99":%.1f},"recovery_ms":{"records_1e3":%.1f,"records_1e5":%.1f}}|}
          analyzer.Core.Analyzer.name fpga_area resident mutations
          (float_of_int mutations /. Float.max 1e-9 (sum /. 1e6))
          (percentile latencies 50.0) (percentile latencies 99.0) (percentile latencies 100.0)
          (percentile what_if_us 50.0) (percentile what_if_us 99.0)
          (percentile scratch_us 50.0) (percentile scratch_us 99.0)
          rec_1e3 rec_1e5
      in
      Bench_serve.write_section ~out ~section:"admit" json;
      print_endline json;
      0)
