(* redf — command-line front end for the reconfig_edf library.

   Subcommands:
     analyze   run DP / GN1 / GN2 (and friends) on a taskset CSV
     simulate  simulate EDF-NF / EDF-FkF and optionally draw a Gantt chart
     generate  emit a synthetic taskset CSV from a named profile
     sweep     acceptance-ratio sweep for one of the paper's figures
     tables    reproduce the paper's Tables 1-3
     lint      static lint pass over a taskset CSV
     audit     lint + cross-analyzer soundness audit against simulation
     check-src typedtree static analysis of the repo's own sources (.cmt files)
     serve     analysis service: line-oriented JSON over stdio, socket and/or TCP
     bench-serve  drive a serve loop with concurrent clients; latency/throughput
     bench-core   analyzer cost matrix vs the committed baseline (CI perf gate)
     batch     evaluate a file of service requests (in-process or --connect)

   Long-running subcommands accept --metrics[=FILE] to dump a runtime
   metrics snapshot (JSON lines); metrics-diff compares two of them. *)

open Cmdliner

(* make the exact oracle and approx analyzers resolvable by name
   everywhere (analyze, serve, batch, the cache) *)
let () = Exact.Registry.ensure ()

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_taskset path =
  try Ok (Model.Taskset.of_csv (read_file path)) with
  | Sys_error msg -> Error msg
  | Invalid_argument msg -> Error msg

(* --- common args --- *)

let taskset_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TASKSET.csv" ~doc:"Taskset file (header name,C,D,T,A).")

let area_arg =
  Arg.(
    value & opt int 100
    & info [ "a"; "area" ] ~docv:"COLUMNS" ~doc:"FPGA area $(docv) (number of columns).")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let horizon_arg =
  Arg.(
    value & opt int 1000
    & info [ "horizon" ] ~docv:"UNITS" ~doc:"Simulation horizon in time units.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel execution: a positive count, or 0 for one per core. \
           Defaults to $(b,REDF_JOBS) (same convention), else 1 (serial). Output is \
           byte-identical for every $(docv).")

(* -j / REDF_JOBS is validated here at the CLI boundary: a negative
   count or a garbage environment value is a usage error (exit 2), not
   a silent fall-back to serial *)
let validate_jobs jobs_opt =
  match jobs_opt with
  | Some n when n >= 0 -> Ok n
  | Some n ->
    Error (Printf.sprintf "invalid --jobs %d: expected a positive worker count or 0 (one per core)" n)
  | None -> Parallel.jobs_of_env ()

(* run [f ~jobs] with the validated worker count, or report the usage
   error; [~jobs] keeps the CLI's 0 = one-per-core convention *)
let with_jobs jobs_opt f =
  match validate_jobs jobs_opt with
  | Error msg ->
    Printf.eprintf "error: %s\n" msg;
    2
  | Ok jobs -> f ~jobs

(* --- metrics --- *)

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Collect runtime metrics and append a key-sorted JSON-lines snapshot to $(docv) after \
           the run ($(b,-), or no value, means stderr). Compare two snapshots with $(b,redf \
           metrics-diff).")

(* the snapshot is emitted even when the wrapped command fails, so a
   non-zero exit still leaves its cost profile behind *)
let with_metrics metrics f =
  match metrics with
  | None -> f ()
  | Some dest ->
    Obs.set_enabled true;
    let emit () =
      let jsonl = Obs.Snapshot.to_jsonl (Obs.Snapshot.take ()) in
      match dest with
      | "-" ->
        output_string stderr jsonl;
        flush stderr
      | path ->
        let oc = open_out path in
        output_string oc jsonl;
        close_out oc
    in
    Fun.protect ~finally:emit f

(* progress printer shared by the parallel-capable subcommands: called
   from worker domains (already serialized and monotonic, see
   Experiment.Sweep.run), so each update must land as one write *)
let progress_printer () =
  let last_pct = ref (-1) in
  fun done_ total ->
    let pct = done_ * 100 / max 1 total in
    if pct > !last_pct || done_ = total then begin
      last_pct := pct;
      let line = Printf.sprintf "\r%d/%d tasksets (%d%%)" done_ total pct in
      output_string stderr line;
      flush stderr
    end

let clear_progress () =
  output_string stderr (Printf.sprintf "\r%*s\r" 40 "");
  flush stderr

(* --- lint / audit --- *)

let sexp_arg =
  Arg.(value & flag & info [ "sexp" ] ~doc:"Machine-readable sexp output instead of human form.")

let strict_arg =
  Arg.(value & flag & info [ "strict" ] ~doc:"Treat warnings as errors for the exit status.")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("human", `Human); ("json", `Json) ]) `Human
    & info [ "format" ] ~docv:"human|json"
        ~doc:
          "Output format: the default human rendering, or the canonical JSON the analysis \
           service emits (one key-sorted object; see $(b,redf serve)).")

let print_report ~label ~sexp ?(json = false) report =
  if json then print_endline (Core.Json.to_string (Audit.Driver.to_json ~kind:label report))
  else if sexp then Format.printf "%a@." Audit.Driver.pp_sexp report
  else Format.printf "%a@." (Audit.Driver.pp ~label) report

(* a malformed taskset is itself a lint finding: report it in the same
   formats and exit 2 like any other error-level diagnostic *)
let parse_failure ~label ~sexp ?json msg =
  let report =
    {
      Audit.Driver.fpga_area = 0;
      lint = [ Audit.Diagnostic.error ~rule:"taskset-parse" msg ];
      findings = [];
    }
  in
  print_report ~label ~sexp ?json report;
  2

let lint_cmd =
  let run path fpga_area sexp format strict =
    let json = format = `Json in
    match load_taskset path with
    | Error msg -> parse_failure ~label:"lint" ~sexp ~json msg
    | Ok ts ->
      let report = Audit.Driver.lint_only ~fpga_area ts in
      print_report ~label:"lint" ~sexp ~json report;
      Audit.Driver.exit_code ~strict report
  in
  let term = Term.(const run $ taskset_arg $ area_arg $ sexp_arg $ format_arg $ strict_arg) in
  let info =
    Cmd.info "lint"
      ~doc:"Statically lint a taskset"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Checks the structural invariants the analyzers assume (per-task C <= min(D,T), \
             tasks no wider than the device, necessary feasibility conditions) plus hygiene \
             rules (duplicate names, degenerate utilizations, vacuous analyzer preconditions). \
             Exit status 0 when no error-level diagnostic fires (with $(b,--strict): no warning \
             either), 2 otherwise.";
        ]
  in
  Cmd.v info term

let audit_cmd =
  let run paths fpga_area sexp format strict cap_units seed inject_unsound no_shrink fixture_dir
      jobs metrics =
    let json = format = `Json in
    with_jobs jobs @@ fun ~jobs ->
    with_metrics metrics @@ fun () ->
    let config =
      {
        (Audit.Consistency.default_config ~fpga_area) with
        Audit.Consistency.horizon_cap = Model.Time.of_units cap_units;
        sporadic_seed = seed;
        shrink = not no_shrink;
      }
    in
    let analyzers =
      Audit.Consistency.paper_analyzers
      @
      if inject_unsound then
        [
          Audit.Consistency.always_accept ~name:"ALWAYS-ACCEPT"
            ~sound_for:[ Audit.Consistency.Edf_nf; Audit.Consistency.Edf_fkf ];
        ]
      else []
    in
    let multi = List.length paths > 1 in
    (* one taskset: fan the audit units out; several tasksets: one
       domain per taskset (each audit serial).  Either way the reports
       are deterministic and printed in argument order. *)
    let audit_one inner_jobs path =
      match load_taskset path with
      | Error msg -> Error msg
      | Ok ts -> Ok (Audit.Driver.run ~analyzers ~config ~jobs:inner_jobs ~fpga_area ts)
    in
    let results =
      if multi then
        Array.to_list (Parallel.parallel_map ~jobs (audit_one 1) (Array.of_list paths))
      else List.map (audit_one jobs) paths
    in
    let codes =
      List.map2
        (fun path result ->
          let label = if multi then "audit " ^ Filename.basename path else "audit" in
          match result with
          | Error msg -> parse_failure ~label ~sexp ~json msg
          | Ok report ->
            print_report ~label ~sexp ~json report;
            (match fixture_dir with
             | None -> ()
             | Some dir ->
               List.iteri
                 (fun i f ->
                   match Audit.Consistency.fixture f with
                   | None -> ()
                   | Some csv ->
                     let name =
                       Printf.sprintf "%scounterexample-%d-%s.csv"
                         (if multi then
                            Filename.remove_extension (Filename.basename path) ^ "-"
                          else "")
                         i
                         (String.lowercase_ascii
                            (Option.value f.Audit.Consistency.analyzer ~default:"x"))
                     in
                     let fixture_path = Filename.concat dir name in
                     let oc = open_out fixture_path in
                     output_string oc csv;
                     close_out oc;
                     Printf.eprintf "wrote regression fixture %s\n" fixture_path)
                 report.Audit.Driver.findings);
            Audit.Driver.exit_code ~strict report)
        paths results
    in
    List.fold_left max 0 codes
  in
  let cap_arg =
    Arg.(
      value & opt int 10_000
      & info [ "horizon-cap" ] ~docv:"UNITS"
          ~doc:"Simulate min(hyper-period, $(docv)) time units.")
  in
  let seed_opt_arg =
    Arg.(
      value
      & opt (some int) (Some 97)
      & info [ "sporadic-seed" ] ~docv:"SEED"
          ~doc:"Also audit a sporadic release pattern with this seed (omit via --no-sporadic).")
  in
  let inject_arg =
    Arg.(
      value & flag
      & info [ "inject-unsound" ]
          ~doc:
            "Add a deliberately-unsound ALWAYS-ACCEPT analyzer; the audit must flag it on any \
             unschedulable taskset (self-test of the auditor).")
  in
  let no_shrink_arg =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Report raw counterexamples without shrinking.")
  in
  let fixture_dir_arg =
    Arg.(
      value
      & opt (some dir) None
      & info [ "fixture-dir" ] ~docv:"DIR"
          ~doc:"Write each shrunk counterexample as a regression-fixture CSV into $(docv).")
  in
  let tasksets_arg =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"TASKSET.csv" ~doc:"Taskset files (header name,C,D,T,A).")
  in
  let term =
    Term.(
      const run $ tasksets_arg $ area_arg $ sexp_arg $ format_arg $ strict_arg $ cap_arg
      $ seed_opt_arg $ inject_arg $ no_shrink_arg $ fixture_dir_arg $ jobs_arg $ metrics_arg)
  in
  let info =
    Cmd.info "audit"
      ~doc:"Lint a taskset and audit analyzer verdicts against simulation"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Runs the static lint pass, then cross-checks DP / GN1 / GN2 against the EDF-NF and \
             EDF-FkF simulator on the same taskset: an ACCEPT paired with an observed deadline \
             miss under a scheduler the test covers (DP and GN2 cover both schedulers, GN1 \
             covers EDF-NF; Theorem 3 makes GN2-ACCEPT imply EDF-NF schedulability) is a hard \
             error, and every recorded trace must satisfy the Lemma 1 / Lemma 2 occupancy \
             floors and the physical trace invariants. Counterexamples are shrunk to minimal \
             tasksets. Several tasksets can be audited in one invocation; with $(b,-j) the \
             audits fan out over worker domains (one domain per taskset, or across the \
             analyzer/scheduler/release units of a single taskset) with deterministic, \
             order-preserving output. Exit status 0 when every taskset is clean, 2 otherwise.";
        ]
  in
  Cmd.v info term

(* --- analyze --- *)

let analyze_cmd =
  let run path fpga_area all analyzer_names format metrics =
    with_metrics metrics @@ fun () ->
    match load_taskset path with
    | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
    | Ok ts -> (
      let analyzers =
        match analyzer_names with
        | Some names -> Core.Analyzer.of_names names
        | None ->
          Ok
            (if all then Core.Analyzer.[ dp; dp_original; gn1; gn1_printed; gn2 ]
             else Core.Analyzer.defaults)
      in
      match analyzers with
      | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        2
      | Ok analyzers ->
        let report = Core.Report.run ~analyzers ~fpga_area ts in
        let any_accepted = List.exists Core.Verdict.accepted report.Core.Report.verdicts in
        (match format with
         | `Json -> print_endline (Core.Json.to_string (Core.Report.to_json report))
         | `Human ->
           Format.printf "%a@." Core.Report.pp report;
           (match Core.Feasibility.check ~fpga_area ts with
            | [] -> Format.printf "necessary conditions: all satisfied@."
            | violations ->
              Format.printf "INFEASIBLE under any scheduler:@.";
              List.iter (Format.printf "  %a@." Core.Feasibility.pp_violation) violations);
           let plan = Core.Partitioned.first_fit_decreasing ~fpga_area ts in
           Format.printf "partitioned, density test (first-fit decreasing): %s@,%a@."
             (if Core.Partitioned.schedulable plan then "ACCEPT" else "REJECT")
             Core.Partitioned.pp plan;
           Format.printf "partitioned, exact demand-bound test: %s@."
             (if Core.Partitioned.accepts ~test:Core.Partitioned.Demand_bound ~fpga_area ts then
                "ACCEPT"
              else "REJECT"));
        if any_accepted then 0 else 2)
  in
  let all_arg =
    Arg.(value & flag & info [ "all" ] ~doc:"Also run the uncorrected/printed test variants.")
  in
  let analyzer_names_arg =
    let doc =
      Printf.sprintf
        "Comma-separated registry names to run instead of the defaults (registered analyzers: \
         %s; case-insensitive). Overrides $(b,--all)."
        (String.concat ", " (Core.Analyzer.known_names ()))
    in
    Arg.(value & opt (some string) None & info [ "analyzer" ] ~docv:"NAMES" ~doc)
  in
  let term =
    Term.(
      const run $ taskset_arg $ area_arg $ all_arg $ analyzer_names_arg $ format_arg $ metrics_arg)
  in
  let info =
    Cmd.info "analyze"
      ~doc:"Run the schedulability tests on a taskset"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Runs DP (Theorem 1), GN1 (Theorem 2), GN2 (Theorem 3) and the partitioned \
             first-fit-decreasing baseline on the taskset, printing per-task exact \
             left/right-hand sides. $(b,--analyzer) selects any registered analyzers instead, \
             including the exact oracle ($(b,exact), $(b,exact-fkf)) and the approximate \
             demand test ($(b,approx[EPS])). With $(b,--format json) the report is one \
             canonical JSON object whose per-analyzer verdicts are byte-identical to the \
             analysis service's responses ($(b,redf serve)). Exit status 0 when at least one \
             selected analyzer accepts, 2 when all reject.";
        ]
  in
  Cmd.v info term

(* --- simulate --- *)

let simulate_cmd =
  let run path fpga_area horizon policy_name gantt contiguous metrics =
    with_metrics metrics @@ fun () ->
    match load_taskset path with
    | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
    | Ok ts ->
      let policy =
        match policy_name with
        | "nf" -> Sim.Policy.edf_nf
        | "fkf" -> Sim.Policy.edf_fkf
        | other ->
          Printf.eprintf "unknown policy %S (use nf or fkf)\n" other;
          exit 1
      in
      let cfg = Sim.Engine.default_config ~fpga_area ~policy in
      let cfg =
        {
          cfg with
          Sim.Engine.horizon = Model.Time.of_units horizon;
          record_trace = gantt;
          placement =
            (if contiguous then Sim.Engine.Contiguous Fpga.Device.First_fit
             else Sim.Engine.Migrating);
        }
      in
      let result = Sim.Engine.run cfg ts in
      Format.printf "policy: %a, placement: %s, horizon: %d units@." Sim.Policy.pp policy
        (if contiguous then "contiguous first-fit" else "migrating")
        horizon;
      (match result.Sim.Engine.outcome with
       | Sim.Engine.No_miss -> Format.printf "no deadline miss observed@."
       | Sim.Engine.Miss m ->
         Format.printf "DEADLINE MISS: task %d at t=%s@." (m.Sim.Engine.task_index + 1)
           (Model.Time.to_string m.Sim.Engine.at));
      let s = result.Sim.Engine.stats in
      Format.printf
        "jobs: %d released, %d completed; preemptions: %d; contended time: %s units@."
        s.Sim.Engine.jobs_released s.Sim.Engine.jobs_completed s.Sim.Engine.preemptions
        (Model.Time.to_string (Model.Time.of_ticks s.Sim.Engine.contended_ticks));
      Format.printf "mean occupied area: %.1f / %d columns@."
        (Sim.Engine.average_busy_area result)
        fpga_area;
      if gantt then print_string (Trace.Gantt.render ~fpga_area ts result);
      (match result.Sim.Engine.outcome with Sim.Engine.No_miss -> 0 | Sim.Engine.Miss _ -> 2)
  in
  let policy_arg =
    Arg.(value & opt string "nf" & info [ "policy" ] ~docv:"nf|fkf" ~doc:"Scheduling policy.")
  in
  let gantt_arg = Arg.(value & flag & info [ "gantt" ] ~doc:"Render an ASCII Gantt chart.") in
  let contiguous_arg =
    Arg.(
      value & flag
      & info [ "contiguous" ]
          ~doc:"Contiguous first-fit placement instead of unrestricted migration.")
  in
  let term =
    Term.(
      const run $ taskset_arg $ area_arg $ horizon_arg $ policy_arg $ gantt_arg $ contiguous_arg
      $ metrics_arg)
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Simulate EDF-NF or EDF-FkF scheduling of a taskset") term

(* --- generate --- *)

let generate_cmd =
  let run profile_name n seed target =
    let profile =
      match profile_name with
      | "unconstrained" -> Model.Generator.unconstrained ~n
      | "spatially-heavy" -> Model.Generator.spatially_heavy_temporally_light ~n
      | "temporally-heavy" -> Model.Generator.spatially_light_temporally_heavy ~n
      | other ->
        Printf.eprintf
          "unknown profile %S (use unconstrained, spatially-heavy or temporally-heavy)\n" other;
        exit 1
    in
    let rng = Rng.create ~seed in
    let ts =
      match target with
      | None -> Some (Model.Generator.draw rng profile)
      | Some t -> Model.Generator.draw_with_target_us rng profile ~target_us:t
    in
    match ts with
    | None ->
      Printf.eprintf "target utilization unreachable for this profile\n";
      1
    | Some ts ->
      print_string (Model.Taskset.to_csv ts);
      0
  in
  let profile_arg =
    Arg.(
      value
      & opt string "unconstrained"
      & info [ "profile" ] ~docv:"NAME"
          ~doc:"Workload profile: unconstrained, spatially-heavy or temporally-heavy.")
  in
  let n_arg = Arg.(value & opt int 10 & info [ "n" ] ~docv:"N" ~doc:"Number of tasks.") in
  let target_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "target-us" ] ~docv:"US" ~doc:"Condition the draw on this total system utilization.")
  in
  let term = Term.(const run $ profile_arg $ n_arg $ seed_arg $ target_arg) in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a synthetic taskset CSV on stdout") term

(* --- sweep --- *)

let sweep_cmd =
  let run figure_name samples seed horizon csv jobs metrics =
    with_jobs jobs @@ fun ~jobs ->
    with_metrics metrics @@ fun () ->
    match
      List.find_opt (fun f -> Experiment.Figures.id f = figure_name) Experiment.Figures.all
    with
    | None ->
      Printf.eprintf "unknown figure %S (use fig3a, fig3b, fig4a or fig4b)\n" figure_name;
      1
    | Some figure ->
      let cfg =
        Experiment.Figures.config ~samples ~seed
          ~sim_horizon:(Model.Time.of_units horizon) figure
      in
      let result = Experiment.Sweep.run ~progress:(progress_printer ()) ~jobs cfg in
      clear_progress ();
      print_endline (Experiment.Figures.caption figure);
      if csv then print_string (Experiment.Sweep.to_csv result)
      else begin
        print_string (Experiment.Sweep.to_table result);
        print_newline ();
        print_string (Experiment.Sweep.to_ascii_plot result)
      end;
      0
  in
  let figure_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FIGURE" ~doc:"One of fig3a, fig3b, fig4a, fig4b.")
  in
  let samples_arg =
    Arg.(value & opt int 300 & info [ "samples" ] ~docv:"N" ~doc:"Tasksets per utilization point.")
  in
  let csv_arg = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.") in
  let term =
    Term.(
      const run $ figure_arg $ samples_arg $ seed_arg $ horizon_arg $ csv_arg $ jobs_arg
      $ metrics_arg)
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Regenerate one of the paper's figures") term

(* --- exhaustive --- *)

let exhaustive_cmd =
  let run path fpga_area policy_name grid_ticks max_combinations jobs metrics =
    with_jobs jobs @@ fun ~jobs ->
    with_metrics metrics @@ fun () ->
    match load_taskset path with
    | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
    | Ok ts ->
      let policy =
        match policy_name with
        | "nf" -> Sim.Policy.edf_nf
        | "fkf" -> Sim.Policy.edf_fkf
        | other ->
          Printf.eprintf "unknown policy %S (use nf or fkf)\n" other;
          exit 1
      in
      (match
         Sim.Exhaustive.search
           ~grid:(Model.Time.of_ticks grid_ticks)
           ~max_combinations ~jobs ~fpga_area ~policy ts
       with
       | Sim.Exhaustive.Schedulable_all_offsets { combinations } ->
         Format.printf "no deadline miss for any of the %d offset assignments on the grid@."
           combinations;
         0
       | Sim.Exhaustive.Miss_with_offsets { offsets; miss } ->
         Format.printf "MISS with first-release offsets (%s): task %d at t=%s@."
           (String.concat ", " (List.map Model.Time.to_string offsets))
           (miss.Sim.Engine.task_index + 1)
           (Model.Time.to_string miss.Sim.Engine.at);
         2
       | Sim.Exhaustive.Too_many_combinations { combinations } ->
         Printf.eprintf "search space too large (%d combinations); coarsen --grid or raise --max\n"
           combinations;
         1
       | Sim.Exhaustive.Hyperperiod_too_large ->
         Printf.eprintf "hyper-period exceeds the simulation cap; not searchable\n";
         1)
  in
  let grid_arg =
    Arg.(
      value & opt int 1000
      & info [ "grid" ] ~docv:"TICKS" ~doc:"Offset grid step in ticks (1000 = one time unit).")
  in
  let max_arg =
    Arg.(
      value & opt int 20000
      & info [ "max" ] ~docv:"N" ~doc:"Maximum number of offset combinations to simulate.")
  in
  let policy_arg =
    Arg.(value & opt string "nf" & info [ "policy" ] ~docv:"nf|fkf" ~doc:"Scheduling policy.")
  in
  let term =
    Term.(
      const run $ taskset_arg $ area_arg $ policy_arg $ grid_arg $ max_arg $ jobs_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "exhaustive"
       ~doc:"Exhaustively search release offsets for a deadline miss (small tasksets)")
    term

(* --- tables --- *)

let tables_cmd =
  let run () =
    let task name c d t a = Model.Task.of_decimal ~name ~exec:c ~deadline:d ~period:t ~area:a () in
    let show title ts =
      Format.printf "@.%s@." title;
      Format.printf "%a@." Core.Report.pp (Core.Report.run ~fpga_area:10 ts)
    in
    show "Table 1"
      (Model.Taskset.of_list [ task "tau1" "1.26" "7" "7" 9; task "tau2" "0.95" "5" "5" 6 ]);
    show "Table 2"
      (Model.Taskset.of_list [ task "tau1" "4.50" "8" "8" 3; task "tau2" "8.00" "9" "9" 5 ]);
    show "Table 3"
      (Model.Taskset.of_list [ task "tau1" "2.10" "5" "5" 7; task "tau2" "2.00" "7" "7" 7 ]);
    0
  in
  Cmd.v (Cmd.info "tables" ~doc:"Reproduce the paper's Tables 1-3") Term.(const run $ const ())

(* --- metrics-diff --- *)

let metrics_diff_cmd =
  let run path_a path_b det_only =
    let load path =
      match read_file path with
      | exception Sys_error msg -> Error msg
      | contents -> Obs.Snapshot.of_jsonl contents
    in
    match (load path_a, load path_b) with
    | Error msg, _ | _, Error msg ->
      Printf.eprintf "error: %s\n" msg;
      3
    | Ok a, Ok b -> (
      match Obs.Snapshot.diff ~det_only a b with
      | [] ->
        print_endline (if det_only then "identical (deterministic metrics)" else "identical");
        0
      | lines ->
        List.iter print_endline lines;
        1)
  in
  let snapshot_arg i docv =
    Arg.(required & pos i (some file) None & info [] ~docv ~doc:"Metrics snapshot (JSON lines).")
  in
  let det_only_arg =
    Arg.(
      value & flag
      & info [ "det-only" ]
          ~doc:
            "Compare only deterministic counters and gauges — the values that must not depend on \
             the worker count; timers and occupancy metrics are ignored.")
  in
  let term =
    Term.(const run $ snapshot_arg 0 "A.jsonl" $ snapshot_arg 1 "B.jsonl" $ det_only_arg)
  in
  let info =
    Cmd.info "metrics-diff"
      ~doc:"Compare two metrics snapshots"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Compares two snapshots written by $(b,--metrics). Exit status 0 when they agree, 1 \
             when they differ (one line per difference on stdout), 3 when a snapshot cannot be \
             read. With $(b,--det-only) the comparison is restricted to metrics that are \
             deterministic by construction, which must be identical across $(b,-j) settings for \
             the same command.";
        ]
  in
  Cmd.v info term

(* --- check-src --- *)

let check_src_cmd =
  let run paths strict format rule_names =
    let rules =
      match rule_names with
      | None -> Ok Check.Rules.all
      | Some names ->
        String.split_on_char ',' names
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
        |> List.fold_left
             (fun acc name ->
               match (acc, Check.Rules.of_name name) with
               | Error _, _ -> acc
               | Ok _, None ->
                 Error
                   (Printf.sprintf "unknown rule %S (known rules: %s)" name
                      (String.concat ", " (List.map Check.Rules.name Check.Rules.all)))
               | Ok rules, Some r -> Ok (rules @ [ r ]))
             (Ok [])
    in
    match rules with
    | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      3
    | Ok rules -> (
      match Check.Driver.run ~rules paths with
      | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        3
      | Ok report ->
        (match format with
         | `Json -> print_endline (Core.Json.to_string (Check.Driver.to_json report))
         | `Human -> Format.printf "@[<v>%a@]@." Check.Driver.pp report);
        Check.Driver.exit_code ~strict report)
  in
  let paths_arg =
    Arg.(
      value
      & pos_all string [ "lib" ]
      & info [] ~docv:"PATH"
          ~doc:
            "What to check: a .cmt file, a directory scanned recursively for .cmt files, or a \
             source directory resolved through its _build/default mirror. Defaults to $(b,lib).")
  in
  let rule_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "rule" ] ~docv:"NAME,..."
          ~doc:
            "Comma-separated rule families to run instead of all four: det-purity, \
             domain-safety, exact-arith, poly-compare.")
  in
  let term = Term.(const run $ paths_arg $ strict_arg $ format_arg $ rule_arg) in
  let info =
    Cmd.info "check-src"
      ~doc:"Statically check the repository's own sources against its invariants"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "A typedtree-based static analysis over the repo's compiled .cmt files enforcing the \
             three contracts nothing else checks statically: byte-identical determinism for any \
             -j (rule $(b,det-purity): no Hashtbl.iter/fold, wall-clock reads or environment \
             reads in deterministic modules), domain-safety of shared state (rule \
             $(b,domain-safety): module-level mutable state must be Atomic/Mutex-guarded), and \
             exact integer/rational arithmetic in the decide paths (rules $(b,exact-arith) and \
             $(b,poly-compare): no float literals/comparisons, no polymorphic compare on types \
             with a custom ordering). A finding is silenced by [@redf.allow \"rule\" \
             \"justification\"] on the enclosing expression, binding or module; the \
             justification is mandatory. Exit status 0 when clean (with $(b,--strict): no \
             warnings either), 1 on findings, 3 when an input is unusable.";
        ]
  in
  Cmd.v info term

(* --- serve / batch --- *)

let cache_size_arg =
  Arg.(
    value & opt int 4096
    & info [ "cache-size" ] ~docv:"N"
        ~doc:
          "Verdict-cache capacity in entries (canonical tasksets, LRU eviction); 0 disables \
           caching. Cached answers are byte-identical to uncached ones.")

let require_cache_size cache_size k =
  if cache_size < 0 then begin
    Printf.eprintf "error: invalid --cache-size %d: expected a non-negative entry count\n"
      cache_size;
    2
  end
  else k ()

let require_positive flag n k =
  if n < 1 then begin
    Printf.eprintf "error: invalid %s %d: expected a positive count\n" flag n;
    2
  end
  else k ()

let cache_shards_arg =
  Arg.(
    value & opt int 8
    & info [ "cache-shards" ] ~docv:"N"
        ~doc:
          "Split the verdict cache over $(docv) independently locked LRU shards (deterministic \
           key hash), so worker domains do not serialize on one cache mutex. Sharding never \
           changes response bytes.")

(* HOST:PORT with a numeric host (rindex, so bracket-less IPv6 works)
   or "localhost"; validated here as a usage error like --jobs *)
let parse_host_port s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "invalid --listen %s: expected HOST:PORT" s)
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p >= 0 && p <= 65535 -> Ok (host, p)
    | _ -> Error (Printf.sprintf "invalid --listen %s: port must be an integer in 0..65535" s))

let idle_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "idle-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Close a connection that stayed completely idle — nothing received, nothing owed — \
           for $(docv) seconds (granularity: one loop tick, up to 0.5s). Off by default: idle \
           connections are free to linger.")

let serve_cmd =
  let run socket listen cache_size shards max_pending max_inflight timeout idle_timeout jobs
      metrics =
    with_jobs jobs @@ fun ~jobs ->
    require_cache_size cache_size @@ fun () ->
    require_positive "--cache-shards" shards @@ fun () ->
    require_positive "--max-pending" max_pending @@ fun () ->
    require_positive "--max-inflight" max_inflight @@ fun () ->
    let listen =
      match listen with
      | None -> Ok None
      | Some s -> Result.map Option.some (parse_host_port s)
    in
    match listen with
    | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      2
    | Ok listen -> (
      with_metrics metrics @@ fun () ->
      Server.Engine.with_engine ~cache_size ~shards ~jobs @@ fun engine ->
      Server.Engine.install_stop_signals engine;
      match (socket, listen) with
      | None, None ->
        Server.Engine.serve engine ?timeout ~input:Unix.stdin ~output:Unix.stdout ();
        0
      | _ -> (
        let limits =
          { Server.Loop.default_limits with Server.Loop.max_pending; max_inflight }
        in
        match
          let unix_l = Option.map (fun path -> Server.Loop.unix_listener ~path) socket in
          let tcp_l =
            Option.map
              (fun (host, port) ->
                let l = Server.Loop.tcp_listener ~host ~port in
                Printf.eprintf "listening on %s:%d\n%!" host (Server.Loop.bound_port l);
                l)
              listen
          in
          List.filter_map Fun.id [ unix_l; tcp_l ]
        with
        | exception Failure msg ->
          Printf.eprintf "error: %s\n" msg;
          1
        | exception Unix.Unix_error (e, fn, arg) ->
          Printf.eprintf "error: %s(%s): %s\n" fn arg (Unix.error_message e);
          1
        | listeners ->
          Server.Loop.serve engine ?timeout ?idle_timeout ~limits listeners;
          0))
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket at $(docv) instead of serving stdin/stdout; the \
             socket file is removed on shutdown. Combinable with $(b,--listen).")
  in
  let listen_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"HOST:PORT"
          ~doc:
            "Listen on TCP $(docv) (numeric address or $(b,localhost); port 0 picks an \
             ephemeral port, announced on stderr). Combinable with $(b,--socket).")
  in
  let max_pending_arg =
    Arg.(
      value & opt int Server.Loop.default_limits.Server.Loop.max_pending
      & info [ "max-pending" ] ~docv:"N"
          ~doc:
            "Per-connection backpressure bound: a connection with $(docv) unanswered requests \
             stops being read until they drain.")
  in
  let max_inflight_arg =
    Arg.(
      value & opt int Server.Loop.default_limits.Server.Loop.max_inflight
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Global admission bound: once $(docv) requests are queued across all connections, \
             further requests are answered immediately with a well-formed \
             $(b,server overloaded) error (load shedding) instead of queueing.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Drop a partially received request line after $(docv) seconds with an error \
             response, measured from when the partial started (trickling bytes does not extend \
             it). Idle connections never time out.")
  in
  let term =
    Term.(
      const run $ socket_arg $ listen_arg $ cache_size_arg $ cache_shards_arg $ max_pending_arg
      $ max_inflight_arg $ timeout_arg $ idle_timeout_arg $ jobs_arg $ metrics_arg)
  in
  let info =
    Cmd.info "serve"
      ~doc:"Run the analysis service (line-oriented JSON requests)"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Reads one JSON request per line — \
             {\"analyzer\":\"GN2\",\"fpga_area\":10,\"tasks\":[{\"C\":\"1.26\",\"D\":\"7\",\"T\":\"7\",\"A\":9},...]} \
             — and writes one JSON verdict line per request, in request order, over stdin/stdout, \
             a Unix-domain socket ($(b,--socket)) and/or TCP ($(b,--listen)). Socket and TCP \
             serving multiplex any number of concurrent client connections over one event loop, \
             fanning request evaluation out over $(b,-j) worker domains; per connection, \
             responses are byte-identical to serial stdio serving. Verdicts are cached under a \
             canonical taskset key (task order and names do not matter) in a sharded LRU, so \
             repeated queries are answered from cache with byte-identical output. A malformed \
             request yields an error response and never terminates the service; SIGINT/SIGTERM \
             drain the requests already received before exiting. Responses match $(b,redf \
             analyze --format json) verdict for verdict.";
        ]
  in
  Cmd.v info term

let bench_serve_cmd =
  let run clients requests cache_size shards tcp no_check out jobs metrics =
    with_jobs jobs @@ fun ~jobs ->
    require_cache_size cache_size @@ fun () ->
    require_positive "--cache-shards" shards @@ fun () ->
    require_positive "--clients" clients @@ fun () ->
    require_positive "--requests" requests @@ fun () ->
    with_metrics metrics @@ fun () ->
    Bench_serve.run ~clients ~requests ~cache_size ~shards ~jobs ~tcp ~check:(not no_check) ~out
  in
  let clients_arg =
    Arg.(
      value & opt int 8
      & info [ "clients" ] ~docv:"K" ~doc:"Concurrent client connections (one domain each).")
  in
  let requests_arg =
    Arg.(
      value & opt int 200
      & info [ "requests" ] ~docv:"M" ~doc:"Synchronous requests per client.")
  in
  let tcp_arg =
    Arg.(
      value & flag
      & info [ "tcp" ]
          ~doc:"Benchmark over TCP on 127.0.0.1 (ephemeral port) instead of a Unix-domain socket.")
  in
  let no_check_arg =
    Arg.(
      value & flag
      & info [ "no-check" ]
          ~doc:
            "Skip the determinism check (per-client byte-equality against a serial $(b,-j 1) \
             in-process evaluation).")
  in
  let out_arg =
    Arg.(
      value
      & opt string "results/BENCH_serve.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the JSON result line.")
  in
  let term =
    Term.(
      const run $ clients_arg $ requests_arg $ cache_size_arg $ cache_shards_arg $ tcp_arg
      $ no_check_arg $ out_arg $ jobs_arg $ metrics_arg)
  in
  let info =
    Cmd.info "bench-serve"
      ~doc:"Benchmark the analysis service under concurrent clients"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Starts an in-process $(b,redf serve) event loop, drives it with $(b,--clients) \
             concurrent connections each issuing $(b,--requests) synchronous requests, and \
             reports client-side p50/p99 latency and request throughput as one JSON line \
             (stdout and $(b,--out)). Unless $(b,--no-check), every client's response stream is \
             compared byte-for-byte against a serial in-process evaluation of the same request \
             lines — concurrency must change wall-clock only, never bytes; a mismatch exits 1.";
        ]
  in
  Cmd.v info term

let batch_cmd =
  let run file connect retries backoff_ms hold cache_size jobs metrics =
    with_jobs jobs @@ fun ~jobs ->
    require_cache_size cache_size @@ fun () ->
    if retries < 0 then begin
      Printf.eprintf "error: invalid --retries %d: expected a non-negative count\n" retries;
      2
    end
    else
      require_positive "--backoff-ms" backoff_ms @@ fun () ->
      with_metrics metrics @@ fun () ->
      match
        if file = "-" then Ok (In_channel.input_all stdin)
        else match read_file file with s -> Ok s | exception Sys_error msg -> Error msg
      with
      | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
      | Ok contents -> (
        let lines =
          String.split_on_char '\n' contents
          |> List.filter (fun l -> String.trim l <> "")
          |> Array.of_list
        in
        let ending = ref None in
        let responses =
          match connect with
          | Some path -> (
            let addr = Unix.ADDR_UNIX path in
            match hold with
            | Some hold ->
              Result.map
                (fun (responses, how) ->
                  ending := Some how;
                  responses)
                (Server.Engine.client_hold ~addr ~hold lines)
            | None ->
              if retries > 0 then
                Server.Engine.client_roundtrip_retry ~addr ~retries ~backoff_ms lines
              else Server.Engine.client_roundtrip ~path lines)
          | None ->
            Server.Engine.with_engine ~cache_size ~jobs @@ fun engine ->
            Ok (Server.Engine.handle_lines engine lines)
        in
        match responses with
        | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          1
        | Ok responses ->
          Array.iter print_endline responses;
          (match !ending with
          | None -> ()
          | Some `Closed_by_server -> print_endline "connection closed by server"
          | Some `Hold_expired -> print_endline "hold expired");
          0)
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"REQUESTS.jsonl"
          ~doc:"File of request lines (same schema as $(b,redf serve)); $(b,-) reads stdin.")
  in
  let connect_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"PATH"
          ~doc:
            "Send the batch to a running $(b,redf serve --socket) (or $(b,redf admit --socket)) \
             $(docv) instead of evaluating in-process.")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "With $(b,--connect): on a lost connection, reconnect and re-send only the \
             unanswered suffix of the batch, up to $(docv) times, with exponential backoff \
             (from $(b,--backoff-ms)) and jitter. Requests that already got a response are \
             never re-sent; re-sent admit mutations are deduplicated server-side by request id.")
  in
  let backoff_ms_arg =
    Arg.(
      value & opt int 50
      & info [ "backoff-ms" ] ~docv:"MS" ~doc:"Base retry backoff in milliseconds (doubled per retry).")
  in
  let hold_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "hold" ] ~docv:"SECONDS"
          ~doc:
            "With $(b,--connect): after the responses arrive, keep the connection open and idle \
             for up to $(docv) seconds, then report whether the server closed it (the probe for \
             $(b,--idle-timeout)).")
  in
  let term =
    Term.(
      const run $ file_arg $ connect_arg $ retries_arg $ backoff_ms_arg $ hold_arg
      $ cache_size_arg $ jobs_arg $ metrics_arg)
  in
  let info =
    Cmd.info "batch"
      ~doc:"Evaluate a file of analysis-service requests"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Answers every request line of the file (blank lines ignored) and prints one \
             response line per request, in request order — exactly the lines $(b,redf serve) \
             would produce. By default the batch is evaluated in-process, sharing the verdict \
             cache and fanning out over $(b,-j) worker domains; with $(b,--connect) it is \
             pipelined to a running server over its Unix-domain socket.";
        ]
  in
  Cmd.v info term

(* --- admit / chaos-admit / bench-admit --- *)

let admit_analyzer_arg =
  Arg.(
    value & opt string "GN2"
    & info [ "analyzer" ] ~docv:"NAME"
        ~doc:"Admission-policy analyzer (registry name, case-insensitive).")

let admit_area_arg =
  Arg.(
    value & opt int 100
    & info [ "fpga-area" ] ~docv:"N" ~doc:"Device area A(H) the daemon admits against.")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Arm journal fault injection: comma-separated per-mille probabilities, e.g. \
           $(b,torn=5,fsync=2,after-append=10). Also read from $(b,REDF_ADMIT_FAULTS) when the \
           flag is absent. Chaos-testing machinery: an injected fault makes the process die \
           like $(b,kill -9) would.")

let fault_seed_arg =
  Arg.(
    value & opt int 1
    & info [ "fault-seed" ] ~docv:"N"
        ~doc:"Seed for the fault plan; equal (spec, seed) pairs fire identically.")

let snapshot_every_arg =
  Arg.(
    value & opt int 1024
    & info [ "snapshot-every" ] ~docv:"N"
        ~doc:
          "Rewrite the snapshot and reset the journal after $(docv) journaled mutations \
           (bounds both journal growth and replay time).")

let resolve_faults faults fault_seed =
  let spec_string =
    match faults with
    | Some s -> Some s
    | None -> (
      match Sys.getenv_opt "REDF_ADMIT_FAULTS" with Some "" | None -> None | Some s -> Some s)
  in
  match spec_string with
  | None -> Ok None
  | Some s ->
    Result.map (fun spec -> Some (Admit.Faults.create ~seed:fault_seed spec)) (Admit.Faults.parse_spec s)

let admit_cmd =
  let run dir analyzer fpga_area socket listen snapshot_every faults fault_seed timeout
      idle_timeout metrics =
    require_positive "--fpga-area" fpga_area @@ fun () ->
    require_positive "--snapshot-every" snapshot_every @@ fun () ->
    let listen =
      match listen with None -> Ok None | Some s -> Result.map Option.some (parse_host_port s)
    in
    match
      let ( let* ) = Result.bind in
      let* listen = listen in
      let* analyzer = Core.Analyzer.of_name analyzer in
      let* faults = resolve_faults faults fault_seed in
      Ok (listen, analyzer, faults)
    with
    | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      2
    | Ok (listen, analyzer, faults) -> (
      with_metrics metrics @@ fun () ->
      match Admit.Daemon.create ?faults ~snapshot_every ~analyzer ~fpga_area ~dir () with
      | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
      | Ok (daemon, recovery) -> (
        Printf.eprintf "admit: %s: recovered seq %d, %d tasks (%d journal records replayed%s)\n%!"
          dir
          (Admit.State.seq (Admit.Daemon.state daemon))
          (Admit.State.size (Admit.Daemon.state daemon))
          recovery.Admit.Store.replayed
          (if recovery.Admit.Store.torn_bytes > 0 then
             Printf.sprintf ", torn tail of %d bytes truncated" recovery.Admit.Store.torn_bytes
           else "");
        let stop = Atomic.make false in
        let on_stop _ = Atomic.set stop true in
        Sys.set_signal Sys.sigint (Sys.Signal_handle on_stop);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle on_stop);
        Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
        let finish () =
          Admit.Daemon.close daemon;
          0
        in
        let crashed (fate, msg) =
          (* injected kill -9: leave the journal exactly as-is and die
             loudly; recovery on the next start is the point *)
          Admit.Daemon.close daemon;
          Printf.eprintf "admit: injected crash (%s): %s\n"
            (match fate with
            | Admit.Faults.Torn -> "torn"
            | Admit.Faults.Lost -> "lost"
            | Admit.Faults.After_append -> "after-append")
            msg;
          7
        in
        match (socket, listen) with
        | None, None -> (
          (* stdio: serial request/response, one line at a time *)
          let rec loop () =
            if Atomic.get stop then ()
            else
              match input_line stdin with
              | exception End_of_file -> ()
              | line ->
                if String.trim line <> "" then begin
                  print_endline (Admit.Daemon.handle_line daemon line);
                  flush stdout
                end;
                loop ()
          in
          match loop () with
          | () -> finish ()
          | exception Admit.Faults.Crash (fate, msg) -> crashed (fate, msg))
        | _ -> (
          match
            let unix_l = Option.map (fun path -> Server.Loop.unix_listener ~path) socket in
            let tcp_l =
              Option.map
                (fun (host, port) ->
                  let l = Server.Loop.tcp_listener ~host ~port in
                  Printf.eprintf "listening on %s:%d\n%!" host (Server.Loop.bound_port l);
                  l)
                listen
            in
            List.filter_map Fun.id [ unix_l; tcp_l ]
          with
          | exception Failure msg ->
            Printf.eprintf "error: %s\n" msg;
            1
          | exception Unix.Unix_error (e, fn, arg) ->
            Printf.eprintf "error: %s(%s): %s\n" fn arg (Unix.error_message e);
            1
          | listeners -> (
            let service =
              {
                Server.Loop.handle_lines =
                  (fun lines ->
                    Array.of_list (Admit.Daemon.handle_lines daemon (Array.to_list lines)));
                stop_requested = (fun () -> Atomic.get stop);
                shed_response = Server.Protocol.shed_response;
                is_mutation = Admit.Daemon.is_mutation;
              }
            in
            match Server.Loop.serve_service service ?timeout ?idle_timeout listeners with
            | () -> finish ()
            | exception Admit.Faults.Crash (fate, msg) -> crashed (fate, msg)))))
  in
  let dir_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "State directory (created if missing): write-ahead journal + snapshot. Recovery \
             replays it on start; kill the daemon at any point and restart it on the same \
             $(docv) to get the last acknowledged state back.")
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Serve the admit protocol on a Unix-domain socket instead of stdin/stdout.")
  in
  let listen_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"HOST:PORT"
          ~doc:"Serve the admit protocol on TCP $(docv) (port 0 = ephemeral, announced on stderr).")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Partial-line deadline per connection, as for $(b,redf serve).")
  in
  let term =
    Term.(
      const run $ dir_arg $ admit_analyzer_arg $ admit_area_arg $ socket_arg $ listen_arg
      $ snapshot_every_arg $ faults_arg $ fault_seed_arg $ timeout_arg $ idle_timeout_arg
      $ metrics_arg)
  in
  let info =
    Cmd.info "admit"
      ~doc:"Run the crash-safe online admission-control daemon"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Holds a live device model (one analyzer, one FPGA area) and the admitted taskset, \
             and answers one JSON request per line: $(b,add-task) (admitted iff the analyzer \
             accepts the grown taskset; the empty taskset is trivially schedulable), \
             $(b,remove-task), $(b,query), and $(b,what-if) (hypothetical adds/drops, nothing \
             mutated). Admitted mutations are appended to a CRC-framed write-ahead journal and \
             fsync'd $(i,before) the reply is sent, with periodic snapshot rotation; restarting \
             on the same $(b,--dir) replays journal + snapshot back to exactly the last \
             acknowledged state (a torn trailing record from a mid-write crash is truncated; a \
             corrupt interior record is refused with a diagnostic). Replies to mutations are \
             stored under their request $(b,id), so a client retrying after a lost reply gets \
             the original bytes back instead of a double apply. Serves stdio, $(b,--socket) \
             and/or $(b,--listen); under overload, mutations are shed only at twice the \
             read-query threshold.";
        ]
  in
  Cmd.v info term

let chaos_admit_cmd =
  let run dir seed cycles ops faults analyzer fpga_area snapshot_every quiet =
    require_positive "--cycles" cycles @@ fun () ->
    require_positive "--ops" ops @@ fun () ->
    require_positive "--fpga-area" fpga_area @@ fun () ->
    require_positive "--snapshot-every" snapshot_every @@ fun () ->
    match
      let ( let* ) = Result.bind in
      let* analyzer = Core.Analyzer.of_name analyzer in
      let* spec =
        match faults with
        | None -> Ok Admit.Chaos.default_spec
        | Some s -> Admit.Faults.parse_spec s
      in
      Ok (analyzer, spec)
    with
    | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      2
    | Ok (analyzer, spec) -> (
      let cfg =
        {
          (Admit.Chaos.default ~analyzer ~fpga_area) with
          Admit.Chaos.seed;
          cycles;
          ops_per_cycle = ops;
          spec;
          snapshot_every;
        }
      in
      let progress i =
        if (not quiet) && i mod 10 = 0 then Printf.eprintf "chaos-admit: cycle %d/%d\n%!" i cycles
      in
      match Admit.Chaos.run ~progress ~dir cfg with
      | Error msg ->
        Printf.eprintf "chaos-admit: FAIL (seed %d): %s\n" seed msg;
        1
      | Ok stats ->
        Format.printf "chaos-admit: ok (seed %d): %a@." seed Admit.Chaos.pp_stats stats;
        0)
  in
  let dir_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR" ~doc:"State directory the tortured daemon lives in.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Run seed; equal seeds replay identically.")
  in
  let cycles_arg =
    Arg.(
      value & opt int 50
      & info [ "cycles" ] ~docv:"N" ~doc:"Daemon lifetimes (crash or drain, then recover) to drive.")
  in
  let ops_arg =
    Arg.(
      value & opt int 40
      & info [ "ops" ] ~docv:"N" ~doc:"Protocol-line budget per lifetime when no crash fires.")
  in
  let quiet_arg = Arg.(value & flag & info [ "quiet" ] ~doc:"No per-cycle progress on stderr.") in
  let term =
    Term.(
      const run $ dir_arg $ seed_arg $ cycles_arg $ ops_arg $ faults_arg $ admit_analyzer_arg
      $ admit_area_arg $ snapshot_every_arg $ quiet_arg)
  in
  let info =
    Cmd.info "chaos-admit"
      ~doc:"Crash/restart-torture the admission daemon and check its recovery invariant"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Drives seeded random admit traffic against an in-process daemon whose journal has \
             fault injection armed (torn appends, failed fsyncs, crashes between append and \
             reply), killing and recovering it for $(b,--cycles) lifetimes over one state \
             directory. After every recovery the state must equal a reference model built from \
             acknowledged replies only (plus, for an after-append crash, exactly the one \
             durable-but-unacknowledged mutation, whose stored reply a duplicate-id retry must \
             return verbatim); every verdict on the wire is also checked field-for-field \
             against a from-scratch analyzer run. Any violation exits 1 with the seed to \
             replay.";
        ]
  in
  Cmd.v info term

let bench_admit_cmd =
  let run mutations resident analyzer fpga_area out =
    require_positive "--mutations" mutations @@ fun () ->
    require_positive "--resident" resident @@ fun () ->
    require_positive "--fpga-area" fpga_area @@ fun () ->
    Bench_admit.run ~mutations ~resident ~analyzer_name:analyzer ~fpga_area ~out
  in
  let mutations_arg =
    Arg.(
      value & opt int 400
      & info [ "mutations" ] ~docv:"N" ~doc:"Fsync'd mutations to measure (alternating remove/add).")
  in
  let resident_arg =
    Arg.(
      value & opt int 50
      & info [ "resident" ] ~docv:"N" ~doc:"Resident taskset size the mutations run against.")
  in
  let out_arg =
    Arg.(
      value
      & opt string "results/BENCH_serve.json"
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Results file; the $(b,admit) section is rewritten, other sections preserved.")
  in
  let term =
    Term.(
      const run $ mutations_arg $ resident_arg $ admit_analyzer_arg $ admit_area_arg $ out_arg)
  in
  let info =
    Cmd.info "bench-admit"
      ~doc:"Benchmark the admission daemon's mutation, what-if and recovery paths"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Measures, against an in-process daemon on a throwaway state directory: mutation \
             latency and throughput through the full path (parse, incremental canonical key, \
             verdict, journal append, fsync); the warm $(b,what-if) path (verdict-cache hit via \
             the incremental key); the from-scratch analyzer baseline on the same taskset; and \
             cold recovery time over journals of 10^3 and 10^5 records. Writes the $(b,admit) \
             section of the results file next to bench-serve's $(b,serve) section.";
        ]
  in
  Cmd.v info term

let bench_core_cmd =
  let run budget_ms out compare tolerance =
    Bench_core.run ~budget_ms ~out ~compare ~tolerance
  in
  let budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget-ms" ] ~docv:"MS"
          ~doc:
            "Wall-clock budget for the whole matrix. Rows cut short or skipped when it expires \
             are flagged $(b,truncated) in the JSON and excluded from comparison.")
  in
  let out_arg =
    Arg.(
      value
      & opt string Bench_core.default_out
      & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the schema-v2 bench-core document.")
  in
  let compare_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "compare" ] ~docv:"FILE"
          ~doc:
            "Baseline bench-core document (schema v1 or v2) to diff against; read before \
             $(b,--out) is written, so both may name the same committed file.")
  in
  let tolerance_arg =
    Arg.(
      value & opt string "1.5x"
      & info [ "tolerance" ] ~docv:"RATIO"
          ~doc:"Allowed current/baseline slowdown per row, e.g. $(b,1.5x).")
  in
  let term = Term.(const run $ budget_arg $ out_arg $ compare_arg $ tolerance_arg) in
  let info =
    Cmd.info "bench-core"
      ~doc:"Measure analyzer cost per decide; optionally gate on a committed baseline"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Times every analyzer (DP, GN1, GN2, approx, the exact oracle) on seed-fixed \
             workloads across taskset sizes, in single-decide and batch ($(b,decide_all)) \
             modes, and writes results/BENCH_core.json. With $(b,--compare), rows are matched \
             to the baseline by (analyzer, n, mode): a row slower than tolerance times its \
             baseline (and by a small absolute floor, to ignore micro-row jitter) is a \
             regression and the command exits 1 — the CI perf leg. A tripping row is \
             re-measured once and the faster run kept, so a one-off scheduling hiccup on a \
             shared runner does not fail the gate.";
        ]
  in
  Cmd.v info term

let main_cmd =
  let doc = "schedulability analysis of EDF scheduling on reconfigurable hardware" in
  let info =
    Cmd.info "redf" ~version:"1.0.0" ~doc
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Reproduction of Guan, Gu, Deng, Liu, Yu: 'Improved Schedulability Analysis of EDF \
             Scheduling on Reconfigurable Hardware Devices' (IPDPS 2007). See DESIGN.md and \
             EXPERIMENTS.md in the source tree.";
        ]
  in
  Cmd.group info
    [
      analyze_cmd;
      simulate_cmd;
      generate_cmd;
      sweep_cmd;
      tables_cmd;
      exhaustive_cmd;
      lint_cmd;
      audit_cmd;
      check_src_cmd;
      serve_cmd;
      admit_cmd;
      chaos_admit_cmd;
      bench_serve_cmd;
      bench_admit_cmd;
      bench_core_cmd;
      batch_cmd;
      metrics_diff_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
