(* Measurement core of [redf bench-serve]: K concurrent client domains
   against an in-process Server.Loop daemon, each pipelining M
   synchronous requests, with client-side latency measurement (the Obs
   timers aggregate count/sum/min/max only — percentiles need the raw
   samples) and a determinism check that every client's response stream
   is byte-identical to a serial [-j 1] in-process evaluation. *)

module Json = Core.Json

let fpga_area = 100

(* a fixed pool of distinct tasksets, cycled per client, so the run
   exercises both cache misses (first pass) and hits (repeats) *)
let workload ~clients ~requests =
  let distinct = max 1 (requests / 4) in
  let tasksets =
    Array.init distinct (fun d ->
        let rng = Rng.create ~seed:(1000 + d) in
        Model.Generator.draw rng (Model.Generator.unconstrained ~n:5))
  in
  Array.init clients (fun c ->
      Array.init requests (fun i ->
          Server.Protocol.request_line ~analyzer:"GN2" ~fpga_area
            ~id:(Json.String (Printf.sprintf "c%d-r%d" c i))
            tasksets.(i mod distinct)))

let recv_line fd buf chunk =
  let rec go () =
    match String.index_opt (Buffer.contents buf) '\n' with
    | Some i ->
      let s = Buffer.contents buf in
      let line = String.sub s 0 i in
      Buffer.clear buf;
      Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
      line
    | None -> (
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | 0 -> failwith "bench-serve: server closed the connection mid-request"
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ())
  in
  go ()

(* one client: synchronous request/response over its own connection,
   wall-clock latency per request measured around the full roundtrip *)
let client ~addr ~tcp lines =
  let sock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  if tcp then (try Unix.setsockopt sock Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  Unix.connect sock addr;
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 65536 in
      let latencies = Array.make (Array.length lines) 0.0 in
      let responses =
        Array.mapi
          (fun i line ->
            let t0 = Unix.gettimeofday () in
            let payload = line ^ "\n" in
            let off = ref 0 in
            while !off < String.length payload do
              match Unix.write_substring sock payload !off (String.length payload - !off) with
              | n -> off := !off + n
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            done;
            let response = recv_line sock buf chunk in
            latencies.(i) <- (Unix.gettimeofday () -. t0) *. 1e6;
            response)
          lines
      in
      (latencies, responses))

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))
  end

(* the sectioned results file lives in Bench.Env now; the alias keeps
   this module the local name bench-admit writes through *)
let write_section = Bench.Env.write_section

let run ~clients ~requests ~cache_size ~shards ~jobs ~tcp ~check ~out =
  Obs.set_enabled true;
  let lines = workload ~clients ~requests in
  let engine = Server.Engine.create ~cache_size ~shards ~jobs () in
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "redf-bench-%d.sock" (Unix.getpid ()))
  in
  let listener =
    if tcp then Server.Loop.tcp_listener ~host:"127.0.0.1" ~port:0
    else Server.Loop.unix_listener ~path:socket_path
  in
  let addr =
    if tcp then Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", Server.Loop.bound_port listener)
    else Unix.ADDR_UNIX socket_path
  in
  let server = Domain.spawn (fun () -> Server.Loop.serve engine [ listener ]) in
  let t0 = Unix.gettimeofday () in
  let client_domains =
    Array.map (fun client_lines -> Domain.spawn (fun () -> client ~addr ~tcp client_lines)) lines
  in
  let results = Array.map Domain.join client_domains in
  let elapsed = Unix.gettimeofday () -. t0 in
  Server.Engine.request_stop engine;
  Domain.join server;
  Server.Engine.shutdown engine;
  (* counter snapshot before the reference run, which feeds the same
     process-wide counters *)
  let counter name = Obs.Counter.value (Obs.Counter.make name) in
  let served_requests = counter "server.requests" in
  let served_connections = counter "server.connections" in
  let served_shed = counter "server.shed" in
  let determinism =
    if not check then "skipped"
    else begin
      (* the contract bench-serve exists to demonstrate: concurrent
         serving returns, per client, the bytes a serial in-process
         evaluation returns *)
      Server.Engine.with_engine ~cache_size ~shards:1 ~jobs:1 @@ fun reference ->
      let ok = ref true in
      Array.iteri
        (fun c client_lines ->
          let expected = Server.Engine.handle_lines reference client_lines in
          let _, got = results.(c) in
          if got <> expected then ok := false)
        lines;
      if !ok then "ok" else "FAIL"
    end
  in
  let all = Array.concat (Array.to_list (Array.map fst results)) in
  Array.sort compare all;
  let total = clients * requests in
  let json =
    Printf.sprintf
      {|{"bench":"serve","transport":"%s","clients":%d,"requests_per_client":%d,"total_requests":%d,"jobs":%d,"cache_size":%d,"cache_shards":%d,"elapsed_s":%.3f,"req_per_s":%.1f,"latency_us":{"p50":%.1f,"p99":%.1f,"min":%.1f,"max":%.1f},"server":{"requests":%d,"connections":%d,"shed":%d},"determinism":"%s"}|}
      (if tcp then "tcp" else "unix")
      clients requests total jobs cache_size shards elapsed
      (float_of_int total /. Float.max 1e-9 elapsed)
      (percentile all 50.0) (percentile all 99.0)
      (percentile all 0.0)
      (percentile all 100.0)
      served_requests served_connections served_shed determinism
  in
  write_section ~out ~section:"serve" json;
  print_endline json;
  if determinism = "FAIL" then 1 else 0
