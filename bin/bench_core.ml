(* [redf bench-core]: measure the analyzer cost matrix (Bench.Core_bench),
   write results/BENCH_core.json (schema v2), and optionally gate on a
   committed baseline — the CI perf-regression leg.

   The baseline is read *before* the output file is written, so
   --compare FILE --out FILE (the usual CI invocation, both defaulting
   to results/BENCH_core.json) diffs against the committed bytes.

   A row that trips the gate is re-measured once and the faster of its
   two runs is kept: a shared runner's scheduling hiccup shows up in
   one run, a real regression in both. *)

let default_out = Filename.concat Bench.Env.results_dir "BENCH_core.json"

let row_key r = (r.Bench.Env.analyzer, r.Bench.Env.n, r.Bench.Env.mode)

let progress r = Printf.printf "  %s\n%!" (Bench.Core_bench.pretty_row r)

let retry_regressed ~tolerance ~baseline rows =
  let compared = Bench.Core_bench.compare_rows ~tolerance ~baseline rows in
  match Bench.Core_bench.regressions compared with
  | [] -> (rows, compared)
  | regressed ->
    Printf.printf "\n%d row(s) look regressed; re-measuring those rows once:\n%!"
      (List.length regressed);
    let keys = List.map (fun c -> row_key c.Bench.Core_bench.row) regressed in
    (* unbudgeted: a handful of rows, and a truncated retry would be
       useless as evidence either way *)
    let reruns = Bench.Core_bench.collect ~only:keys ~progress () in
    let rows =
      List.map
        (fun r ->
          match List.find_opt (fun r2 -> row_key r2 = row_key r) reruns with
          | Some r2
            when (not r2.Bench.Env.truncated)
                 && r2.Bench.Env.us_per_decide < r.Bench.Env.us_per_decide ->
            r2
          | _ -> r)
        rows
    in
    (rows, Bench.Core_bench.compare_rows ~tolerance ~baseline rows)

let run ~budget_ms ~out ~compare ~tolerance =
  match Bench.Core_bench.parse_tolerance tolerance with
  | Error msg ->
    prerr_endline ("bench-core: " ^ msg);
    2
  | Ok tol -> (
    let baseline =
      match compare with
      | None -> Ok None
      | Some path ->
        if not (Sys.file_exists path) then
          Error (Printf.sprintf "bench-core: baseline %s does not exist" path)
        else (
          match Bench.Env.parse_core (In_channel.with_open_bin path In_channel.input_all) with
          | Ok rows -> Ok (Some rows)
          | Error msg -> Error (Printf.sprintf "bench-core: cannot parse %s: %s" path msg))
    in
    match baseline with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok baseline ->
      Printf.printf "analyzer cost matrix (us/decide, seed-fixed workloads):\n%!";
      let rows = Bench.Core_bench.collect ?budget_ms ~progress () in
      let rows, compared =
        match baseline with
        | None -> (rows, None)
        | Some baseline ->
          let rows, compared = retry_regressed ~tolerance:tol ~baseline rows in
          (rows, Some compared)
      in
      Bench.Env.ensure_parent_dir out;
      Out_channel.with_open_bin out (fun oc -> output_string oc (Bench.Env.core_doc rows));
      Printf.printf "  -> %s\n%!" out;
      (match compared with
      | None -> 0
      | Some compared ->
        Printf.printf "\nagainst baseline (tolerance %.2fx):\n" tol;
        List.iter (fun c -> Printf.printf "  %s\n" (Bench.Core_bench.pretty_compared c)) compared;
        let regressed = Bench.Core_bench.regressions compared in
        if regressed = [] then begin
          Printf.printf "\nno regressions.\n";
          0
        end
        else begin
          Printf.printf "\n%d row(s) regressed beyond %.2fx.\n" (List.length regressed) tol;
          1
        end))
