(* Benchmark harness regenerating every table and figure of Guan et al.,
   "Improved Schedulability Analysis of EDF Scheduling on Reconfigurable
   Hardware Devices" (IPDPS 2007), plus the ablations and
   micro-benchmarks documented in DESIGN.md / EXPERIMENTS.md.

   Knobs (environment variables):
     REDF_SAMPLES     tasksets per utilization point   (default 300)
     REDF_HORIZON     simulation horizon in time units (default 500)
     REDF_SEED        master PRNG seed                 (default 42)
     REDF_JOBS        worker domains, 0 = one per core (default 1)
     REDF_SKIP_MICRO  skip the Bechamel micro-benchmarks

   Paper scale is REDF_SAMPLES=10000; see EXPERIMENTS.md. *)

let () =
  print_endline "reconfig_edf benchmark harness";
  print_endline "reproducing: Guan et al., IPDPS 2007 (EDF on PRTR FPGAs)";
  Tables.run ();
  Figures.run ();
  Ablations.run ();
  Parallel.run ();
  Micro.run ();
  Obs_bench.run ();
  print_newline ();
  print_endline "done; CSV series in ./results/, interpretation in EXPERIMENTS.md"
