(* Benchmark harness regenerating every table and figure of Guan et al.,
   "Improved Schedulability Analysis of EDF Scheduling on Reconfigurable
   Hardware Devices" (IPDPS 2007), plus the ablations and
   micro-benchmarks documented in DESIGN.md / EXPERIMENTS.md.

   Knobs (environment variables):
     REDF_SAMPLES     tasksets per utilization point   (default 300)
     REDF_HORIZON     simulation horizon in time units (default 500)
     REDF_SEED        master PRNG seed                 (default 42)
     REDF_JOBS        worker domains, 0 = one per core (default 1)
     REDF_SKIP_MICRO  skip the Bechamel micro-benchmarks

   Paper scale is REDF_SAMPLES=10000; see EXPERIMENTS.md. *)

let sections =
  [
    ("tables", Tables.run);
    ("figures", Figures.run);
    ("ablations", Ablations.run);
    ("parallel", Parallel.run);
    ("micro", Micro.run);
    ("obs", Obs_bench.run);
  ]

(* no arguments = every section; otherwise run just the named ones *)
let () =
  let requested =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> List.map fst sections
    | names ->
      List.iter
        (fun n ->
          if not (List.mem_assoc n sections) then begin
            Printf.eprintf "unknown section %S (use %s)\n" n
              (String.concat ", " (List.map fst sections));
            exit 1
          end)
        names;
      names
  in
  print_endline "reconfig_edf benchmark harness";
  print_endline "reproducing: Guan et al., IPDPS 2007 (EDF on PRTR FPGAs)";
  List.iter (fun (name, run) -> if List.mem name requested then run ()) sections;
  print_newline ();
  print_endline "done; CSV series in ./results/, interpretation in EXPERIMENTS.md"
