(* Figures 3(a), 3(b), 4(a), 4(b): acceptance ratio vs total system
   utilization, plus the paper's qualitative claims checked against the
   regenerated data. *)

let area_under t mi =
  (* mean acceptance over the populated points: a crude scalar for "who
     wins" comparisons *)
  let pts = List.filter (fun p -> p.Experiment.Sweep.generated > 0) t.Experiment.Sweep.points in
  if pts = [] then 0.0
  else
    List.fold_left (fun acc p -> acc +. Experiment.Sweep.acceptance t ~method_index:mi p) 0.0 pts
    /. float_of_int (List.length pts)

let index_of t name =
  let rec go i = function
    | [] -> invalid_arg ("no method " ^ name)
    | n :: _ when n = name -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.Experiment.Sweep.method_names

let check_claims figure t =
  let score name = area_under t (index_of t name) in
  let dp = score "DP" and gn1 = score "GN1" and gn2 = score "GN2" in
  let sim = score "SIM-NF" in
  let claim label ok = Printf.printf "  claim: %-58s %s\n" label (if ok then "HOLDS" else "VIOLATED") in
  Printf.printf "\n  mean acceptance: DP %.3f  GN1 %.3f  GN2 %.3f  SIM-NF %.3f\n" dp gn1 gn2 sim;
  (match figure with
   | Experiment.Figures.Fig3a ->
     claim "tests pessimistic vs simulation" (dp <= sim && gn1 <= sim && gn2 <= sim);
     claim "GN1 best among tests (small task count)" (gn1 >= dp -. 0.02 && gn1 >= gn2 -. 0.02)
   | Experiment.Figures.Fig3b ->
     claim "tests pessimistic vs simulation" (dp <= sim && gn1 <= sim && gn2 <= sim);
     claim "DP best among tests (large task count)" (dp >= gn1 -. 0.02 && dp >= gn2 -. 0.02)
   | Experiment.Figures.Fig4a ->
     claim "all tests poor on spatially-heavy sets" (dp < 0.1 && gn1 < 0.1 && gn2 < 0.1)
   | Experiment.Figures.Fig4b ->
     claim "GN1 best on temporally-heavy sets" (gn1 >= dp && gn1 >= gn2);
     claim "DP worst on temporally-heavy sets" (dp <= gn1 && dp <= gn2));
  List.iter (fun e -> Printf.printf "  paper: %s\n" e) (Experiment.Figures.expectations figure)

(* extension: the 4-task vs 10-task contrast of Figures 3(a)/3(b) as a
   single curve — acceptance vs task count at fixed system utilization *)
let n_sweep () =
  Bench_env.section "Extension: acceptance vs task count at fixed US";
  let target_us = 25.0 in
  Printf.printf "US = %.0f, A(H) = 100, unconstrained profile, %d sets per point\n\n" target_us
    Bench_env.samples;
  Printf.printf "%6s %6s %9s %9s %9s %9s\n" "N" "sets" "DP" "GN1" "GN2" "SIM-NF";
  List.iter
    (fun n ->
      let profile = Model.Generator.unconstrained ~n in
      let cfg =
        {
          (Experiment.Sweep.default_config ~profile) with
          Experiment.Sweep.samples = Bench_env.samples;
          targets = [ target_us ];
          seed = Bench_env.seed + n;
          sim_horizon = Bench_env.horizon;
        }
      in
      let t = Experiment.Sweep.run ~jobs:Bench_env.jobs cfg in
      match t.Experiment.Sweep.points with
      | [ p ] ->
        let idx name =
          let rec go i = function
            | [] -> -1
            | m :: _ when m = name -> i
            | _ :: rest -> go (i + 1) rest
          in
          go 0 t.Experiment.Sweep.method_names
        in
        let acc name = Experiment.Sweep.acceptance t ~method_index:(idx name) p in
        Printf.printf "%6d %6d %9.3f %9.3f %9.3f %9.3f\n" n p.Experiment.Sweep.generated
          (acc "DP") (acc "GN1") (acc "GN2") (acc "SIM-NF")
      | _ -> ())
    [ 2; 3; 4; 6; 8; 10; 15; 20 ];
  Printf.printf
    "\n(the paper's observation: GN1's advantage at small N flips to DP's at large N)\n"

let run () =
  Bench_env.section "Figures 3-4: acceptance ratio vs total system utilization";
  Printf.printf
    "samples/point = %d (REDF_SAMPLES), sim horizon = %d units (REDF_HORIZON), seed = %d, jobs = %d (REDF_JOBS)\n"
    Bench_env.samples Bench_env.horizon_units Bench_env.seed Bench_env.jobs;
  List.iter
    (fun figure ->
      let cfg =
        Experiment.Figures.config ~samples:Bench_env.samples ~seed:Bench_env.seed
          ~sim_horizon:Bench_env.horizon figure
      in
      let t0 = Unix.gettimeofday () in
      let progress = Bench_env.progress_printer (Experiment.Figures.id figure) in
      let result = Experiment.Sweep.run ~progress ~jobs:Bench_env.jobs cfg in
      Bench_env.clear_progress ();
      Printf.printf "\n%s  (%.1f s)\n\n" (Experiment.Figures.caption figure)
        (Unix.gettimeofday () -. t0);
      print_string (Experiment.Sweep.to_table result);
      print_newline ();
      print_string (Experiment.Sweep.to_ascii_plot result);
      check_claims figure result;
      Bench_env.write_file (Experiment.Figures.id figure ^ ".csv") (Experiment.Sweep.to_csv result);
      Printf.printf "  (series written to %s/%s.csv)\n" Bench_env.results_dir
        (Experiment.Figures.id figure))
    Experiment.Figures.all;
  n_sweep ()
