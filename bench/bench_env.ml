(* Environment knobs for the benchmark harness.

   The paper averages >= 10000 tasksets per utilization point; that takes
   hours with five methods per point, so the default here is a faithful
   but smaller run.  Set REDF_SAMPLES=10000 to reproduce at paper scale. *)

let int_env name default =
  match Sys.getenv_opt name with
  | Some v -> (match int_of_string_opt v with Some n when n > 0 -> n | _ -> default)
  | None -> default

let samples = int_env "REDF_SAMPLES" 300

(* worker domains for the parallelised passes; 0 means one per core.
   (stdlib [Domain] rather than the parallel library: inside this
   executable the name [Parallel] is the benchmark module below.) *)
let jobs =
  match Sys.getenv_opt "REDF_JOBS" with
  | Some v -> (
    match int_of_string_opt v with
    | Some 0 -> Domain.recommended_domain_count ()
    | Some n when n > 0 -> n
    | _ -> 1)
  | None -> 1
(* simulation horizon in time units; the paper simulates "to the
   hyper-period", which is astronomically large for random periods, so
   any practical run truncates (see EXPERIMENTS.md) *)
let horizon_units = int_env "REDF_HORIZON" 500
let seed = int_env "REDF_SEED" 42
let skip_micro = Sys.getenv_opt "REDF_SKIP_MICRO" <> None

let horizon = Model.Time.of_units horizon_units

(* results-file plumbing lives in Bench.Env (shared with the redf
   bench-* subcommands); re-exported here under the harness's names *)
let results_dir = Bench.Env.results_dir
let write_file = Bench.Env.write_file

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Progress on stderr, throttled to whole-percent steps and emitted as a
   single [output_string] + flush so concurrent completions from worker
   domains never interleave mid-line.  The Sweep/Pool progress contract
   serializes callbacks, so [last] needs no lock. *)
let progress_printer label =
  let last = ref (-1) in
  fun done_ total ->
    let pct = if total <= 0 then 100 else done_ * 100 / total in
    if pct > !last || done_ >= total then begin
      last := pct;
      output_string stderr (Printf.sprintf "\r%s: %d/%d" label done_ total);
      flush stderr
    end

let clear_progress () =
  output_string stderr ("\r" ^ String.make 40 ' ' ^ "\r");
  flush stderr
