(* Bechamel micro-benchmarks: one Test.make per analysis test and per
   simulator configuration, across taskset sizes.  The N sweep makes the
   O(N^3) complexity claim for GN2 (Section 5) observable. *)

open Bechamel
open Toolkit

let fpga_area = 100

let taskset_of_size n =
  let rng = Rng.create ~seed:1234 in
  let profile = Model.Generator.unconstrained ~n in
  Model.Generator.draw rng profile

let analysis_tests =
  let sizes = [ 4; 10; 20; 40 ] in
  List.concat_map
    (fun n ->
      let ts = taskset_of_size n in
      [
        Test.make ~name:(Printf.sprintf "DP/n=%d" n)
          (Staged.stage (fun () -> ignore (Core.Dp.accepts ~fpga_area ts)));
        Test.make ~name:(Printf.sprintf "GN1/n=%d" n)
          (Staged.stage (fun () -> ignore (Core.Gn1.accepts ~fpga_area ts)));
        Test.make ~name:(Printf.sprintf "GN2/n=%d" n)
          (Staged.stage (fun () -> ignore (Core.Gn2.accepts ~fpga_area ts)));
      ])
    sizes

let sim_tests =
  let ts = taskset_of_size 10 in
  let run policy placement =
    let cfg = Sim.Engine.default_config ~fpga_area ~policy in
    let cfg =
      { cfg with Sim.Engine.horizon = Model.Time.of_units 100; Sim.Engine.placement = placement }
    in
    fun () -> ignore (Sim.Engine.run cfg ts)
  in
  [
    Test.make ~name:"sim/EDF-NF/migrating" (Staged.stage (run Sim.Policy.edf_nf Sim.Engine.Migrating));
    Test.make ~name:"sim/EDF-FkF/migrating"
      (Staged.stage (run Sim.Policy.edf_fkf Sim.Engine.Migrating));
    Test.make ~name:"sim/EDF-NF/first-fit"
      (Staged.stage (run Sim.Policy.edf_nf (Sim.Engine.Contiguous Fpga.Device.First_fit)));
  ]

let substrate_tests =
  let big = Bignum.pow (Bignum.of_int 7) 64 in
  [
    Test.make ~name:"bignum/mul-big" (Staged.stage (fun () -> ignore (Bignum.mul big big)));
    Test.make ~name:"rat/table3-gn2"
      (let ts =
         Model.Taskset.of_list
           [
             Model.Task.of_decimal ~exec:"2.10" ~deadline:"5" ~period:"5" ~area:7 ();
             Model.Task.of_decimal ~exec:"2.00" ~deadline:"7" ~period:"7" ~area:7 ();
           ]
       in
       Staged.stage (fun () -> ignore (Core.Gn2.accepts ~fpga_area:10 ts)));
    Test.make ~name:"generator/draw-n10"
      (let rng = Rng.create ~seed:5 in
       let profile = Model.Generator.unconstrained ~n:10 in
       Staged.stage (fun () -> ignore (Model.Generator.draw rng profile)));
  ]

let benchmark tests =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"redf" tests) in
  Analyze.all ols Instance.monotonic_clock raw

let pretty_time ns =
  if ns >= 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
  else Printf.sprintf "%8.1f ns" ns

let print_results results =
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] -> Printf.printf "  %-28s %s/run\n" name (pretty_time ns)
      | _ -> Printf.printf "  %-28s (no estimate)\n" name)
    rows

(* --- committed perf baseline: results/BENCH_core.json --- *)

(* Analyzer cost per decide at N in {8, 64, 256}: the committed
   baseline future PRs diff against (ROADMAP item 4).  Bechamel's OLS
   wants many iterations, which GN2's O(N^3) exact arithmetic makes
   prohibitive at N=256 (a single decide runs minutes), so the baseline
   measures directly: repeated decides on the wall clock until ~0.5 s
   or 64 runs, minimum one. *)
let core_sizes = [ 8; 64; 256 ]

let core_analyzers =
  [
    ("DP", fun ts -> ignore (Core.Dp.accepts ~fpga_area ts));
    ("GN1", fun ts -> ignore (Core.Gn1.accepts ~fpga_area ts));
    ("GN2", fun ts -> ignore (Core.Gn2.accepts ~fpga_area ts));
    ( "approx[1/10]",
      fun ts -> ignore (Exact.Approx.analyze ~eps:(Rat.of_ints 1 10) ~fpga_area ts) );
    ( "approx[1/100]",
      fun ts -> ignore (Exact.Approx.analyze ~eps:(Rat.of_ints 1 100) ~fpga_area ts) );
  ]

(* the oracle is exponential in N (offset combinations), so its rows
   use crafted small integer tasksets with an explicit combination cap
   instead of the generated N sweep *)
let exact_sizes = [ 2; 3 ]

let exact_taskset n =
  let task c d t a = Model.Task.of_decimal ~exec:c ~deadline:d ~period:t ~area:a () in
  Model.Taskset.of_list
    (List.filteri
       (fun i _ -> i < n)
       [ task "1" "6" "6" 40; task "2" "8" "8" 50; task "1" "4" "4" 30 ])

let exact_decide ts =
  ignore
    (Exact.Oracle.decide ~max_combinations:20_000 ~fpga_area ~policy:Sim.Policy.edf_nf ts)

let us_per_decide f ts =
  let budget_s = 0.5 and max_runs = 64 in
  let t0 = Unix.gettimeofday () in
  let rec go runs =
    f ts;
    let elapsed = Unix.gettimeofday () -. t0 in
    if elapsed >= budget_s || runs + 1 >= max_runs then (elapsed, runs + 1) else go (runs + 1)
  in
  let elapsed, runs = go 0 in
  elapsed *. 1e6 /. float_of_int runs

let emit_core () =
  let rows =
    List.concat_map
      (fun n ->
        let ts = taskset_of_size n in
        List.map
          (fun (name, f) ->
            let us = us_per_decide f ts in
            Printf.printf "  %-4s n=%-4d %s/decide\n%!" name n (pretty_time (us *. 1e3));
            Printf.sprintf "{\"analyzer\":%S,\"n\":%d,\"us_per_decide\":%.2f}" name n us)
          core_analyzers)
      core_sizes
  in
  let rows =
    rows
    @ List.map
        (fun n ->
          let ts = exact_taskset n in
          let us = us_per_decide exact_decide ts in
          Printf.printf "  %-4s n=%-4d %s/decide\n%!" "exact" n (pretty_time (us *. 1e3));
          Printf.sprintf "{\"analyzer\":%S,\"n\":%d,\"us_per_decide\":%.2f}" "exact" n us)
        exact_sizes
  in
  let json =
    Printf.sprintf
      "{\"kind\":\"bench-core\",\"results\":[%s],\"schema_version\":1,\"unit\":\"us/decide\"}\n"
      (String.concat "," rows)
  in
  Bench_env.write_file "BENCH_core.json" json;
  Printf.printf "  -> %s\n" (Filename.concat Bench_env.results_dir "BENCH_core.json")

let run () =
  Bench_env.section "Micro-benchmarks (Bechamel, monotonic clock, OLS)";
  if Bench_env.skip_micro then
    print_endline "skipped (REDF_SKIP_MICRO is set)"
  else begin
    Printf.printf "\nanalysis tests across taskset size (GN2 is the O(N^3) test):\n";
    print_results (benchmark analysis_tests);
    Printf.printf "\nsimulator (10 tasks, horizon 100 units):\n";
    print_results (benchmark sim_tests);
    Printf.printf "\nsubstrates:\n";
    print_results (benchmark substrate_tests);
    Printf.printf "\nanalyzer baseline (BENCH_core.json, direct timing):\n";
    emit_core ()
  end
