(* Bechamel micro-benchmarks: one Test.make per analysis test and per
   simulator configuration, across taskset sizes.  The N sweep makes the
   O(N^3) complexity claim for GN2 (Section 5) observable. *)

open Bechamel
open Toolkit

let fpga_area = 100

let taskset_of_size n =
  let rng = Rng.create ~seed:1234 in
  let profile = Model.Generator.unconstrained ~n in
  Model.Generator.draw rng profile

let analysis_tests =
  let sizes = [ 4; 10; 20; 40 ] in
  List.concat_map
    (fun n ->
      let ts = taskset_of_size n in
      [
        Test.make ~name:(Printf.sprintf "DP/n=%d" n)
          (Staged.stage (fun () -> ignore (Core.Dp.accepts ~fpga_area ts)));
        Test.make ~name:(Printf.sprintf "GN1/n=%d" n)
          (Staged.stage (fun () -> ignore (Core.Gn1.accepts ~fpga_area ts)));
        Test.make ~name:(Printf.sprintf "GN2/n=%d" n)
          (Staged.stage (fun () -> ignore (Core.Gn2.accepts ~fpga_area ts)));
      ])
    sizes

let sim_tests =
  let ts = taskset_of_size 10 in
  let run policy placement =
    let cfg = Sim.Engine.default_config ~fpga_area ~policy in
    let cfg =
      { cfg with Sim.Engine.horizon = Model.Time.of_units 100; Sim.Engine.placement = placement }
    in
    fun () -> ignore (Sim.Engine.run cfg ts)
  in
  [
    Test.make ~name:"sim/EDF-NF/migrating" (Staged.stage (run Sim.Policy.edf_nf Sim.Engine.Migrating));
    Test.make ~name:"sim/EDF-FkF/migrating"
      (Staged.stage (run Sim.Policy.edf_fkf Sim.Engine.Migrating));
    Test.make ~name:"sim/EDF-NF/first-fit"
      (Staged.stage (run Sim.Policy.edf_nf (Sim.Engine.Contiguous Fpga.Device.First_fit)));
  ]

let substrate_tests =
  let big = Bignum.pow (Bignum.of_int 7) 64 in
  [
    Test.make ~name:"bignum/mul-big" (Staged.stage (fun () -> ignore (Bignum.mul big big)));
    Test.make ~name:"rat/table3-gn2"
      (let ts =
         Model.Taskset.of_list
           [
             Model.Task.of_decimal ~exec:"2.10" ~deadline:"5" ~period:"5" ~area:7 ();
             Model.Task.of_decimal ~exec:"2.00" ~deadline:"7" ~period:"7" ~area:7 ();
           ]
       in
       Staged.stage (fun () -> ignore (Core.Gn2.accepts ~fpga_area:10 ts)));
    Test.make ~name:"generator/draw-n10"
      (let rng = Rng.create ~seed:5 in
       let profile = Model.Generator.unconstrained ~n:10 in
       Staged.stage (fun () -> ignore (Model.Generator.draw rng profile)));
  ]

let benchmark tests =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"redf" tests) in
  Analyze.all ols Instance.monotonic_clock raw

let pretty_time ns =
  if ns >= 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
  else Printf.sprintf "%8.1f ns" ns

let print_results results =
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] -> Printf.printf "  %-28s %s/run\n" name (pretty_time ns)
      | _ -> Printf.printf "  %-28s (no estimate)\n" name)
    rows

(* --- committed perf baseline: results/BENCH_core.json --- *)

(* Analyzer cost per decide, measured by the shared Bench.Core_bench
   matrix (the same rows [redf bench-core] runs and the CI perf leg
   diffs against the committed baseline). *)
let emit_core () =
  let rows =
    Bench.Core_bench.collect
      ~progress:(fun r -> Printf.printf "  %s\n%!" (Bench.Core_bench.pretty_row r))
      ()
  in
  Bench_env.write_file "BENCH_core.json" (Bench.Env.core_doc rows);
  Printf.printf "  -> %s\n" (Filename.concat Bench_env.results_dir "BENCH_core.json")

let run () =
  Bench_env.section "Micro-benchmarks (Bechamel, monotonic clock, OLS)";
  if Bench_env.skip_micro then
    print_endline "skipped (REDF_SKIP_MICRO is set)"
  else begin
    Printf.printf "\nanalysis tests across taskset size (GN2 is the O(N^3) test):\n";
    print_results (benchmark analysis_tests);
    Printf.printf "\nsimulator (10 tasks, horizon 100 units):\n";
    print_results (benchmark sim_tests);
    Printf.printf "\nsubstrates:\n";
    print_results (benchmark substrate_tests);
    Printf.printf "\nanalyzer baseline (BENCH_core.json, direct timing):\n";
    emit_core ()
  end
