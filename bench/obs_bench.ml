(* Observability overhead: instrumentation must cost (nearly) nothing
   unless metrics were requested.  The engine's hot loop accumulates
   into local mutable stats and folds them into Obs counters once per
   run, so the disabled cost is a handful of atomic flag loads per run.
   This harness quantifies both the disabled primitives and the
   end-to-end simulator delta with metrics off vs on; EXPERIMENTS.md
   "Observability" records representative numbers. *)

open Bechamel

let fpga_area = 100

let taskset =
  let rng = Rng.create ~seed:1234 in
  Model.Generator.draw rng (Model.Generator.unconstrained ~n:10)

let sim_cfg =
  let cfg = Sim.Engine.default_config ~fpga_area ~policy:Sim.Policy.edf_nf in
  { cfg with Sim.Engine.horizon = Model.Time.of_units 100 }

let sim_test name =
  Test.make ~name (Staged.stage (fun () -> ignore (Sim.Engine.run sim_cfg taskset)))

let primitive_tests =
  let c = Obs.Counter.make "bench.obs.counter" in
  let tm = Obs.Timer.make "bench.obs.timer" in
  [
    Test.make ~name:"disabled/counter-incr" (Staged.stage (fun () -> Obs.Counter.incr c));
    Test.make ~name:"disabled/counter-add" (Staged.stage (fun () -> Obs.Counter.add c 3));
    Test.make ~name:"disabled/timer-time"
      (Staged.stage (fun () -> Obs.Timer.time tm (fun () -> ())));
    Test.make ~name:"disabled/span-with"
      (Staged.stage (fun () -> Obs.Span.with_ ~name:"bench.obs.span" (fun () -> ())));
  ]

let single_estimate results =
  Hashtbl.fold
    (fun _ ols acc ->
      match Analyze.OLS.estimates ols with Some [ ns ] -> Some ns | _ -> acc)
    results None

let run () =
  Bench_env.section "Observability overhead (metrics off vs on)";
  if Bench_env.skip_micro then print_endline "skipped (REDF_SKIP_MICRO is set)"
  else begin
    Printf.printf "\ndisabled instrumentation primitives:\n";
    Micro.print_results (Micro.benchmark primitive_tests);
    let off = single_estimate (Micro.benchmark [ sim_test "sim/metrics-off" ]) in
    Obs.set_enabled true;
    let on = single_estimate (Micro.benchmark [ sim_test "sim/metrics-on" ]) in
    Obs.set_enabled false;
    Obs.reset ();
    match (off, on) with
    | Some off, Some on ->
      Printf.printf "\nsimulator (10 tasks, horizon 100 units):\n";
      Printf.printf "  %-28s %s/run\n" "metrics off" (Micro.pretty_time off);
      Printf.printf "  %-28s %s/run (%+.1f%% vs off)\n" "metrics on" (Micro.pretty_time on)
        ((on -. off) /. off *. 100.0)
    | _ -> print_endline "(no simulator estimate)"
  end
