(* Micro-benchmark for the parallel subsystem (lib/parallel): wall-clock
   scaling and byte-level determinism of the three parallelised hot
   paths — utilization sweeps, consistency audits and the exhaustive
   release-offset search.

   This module deliberately goes through the public [?jobs] entry points
   rather than the pool primitives: within this executable the module
   name [Parallel] is this file, shadowing the library wrapper, and the
   end-to-end paths are what the revised EXPERIMENTS.md runtime
   estimates are based on anyway. *)

let cores = Domain.recommended_domain_count ()

let job_counts = List.sort_uniq compare (List.filter (fun j -> j >= 1) [ 1; 2; 4; cores ])

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* one row per (path, jobs): seconds and speedup vs the serial run *)
let csv_rows : (string * int * float * float) list ref = ref []

let report path runs =
  let serial =
    match List.assoc_opt 1 runs with
    | Some s -> s
    | None -> (match runs with (_, s) :: _ -> s | [] -> 1.0)
  in
  List.iter
    (fun (jobs, seconds) ->
      let speedup = if seconds > 0.0 then serial /. seconds else 0.0 in
      csv_rows := (path, jobs, seconds, speedup) :: !csv_rows;
      Printf.printf "  %-12s jobs=%-2d %8.2f s   speedup %.2fx\n" path jobs seconds speedup)
    runs

let check_identical label rendered =
  match rendered with
  | [] | [ _ ] -> ()
  | (_, reference) :: rest ->
    let ok = List.for_all (fun (_, r) -> String.equal r reference) rest in
    Printf.printf "  %-12s output byte-identical across job counts: %s\n" label
      (if ok then "yes" else "NO (determinism violation)")

let sweep_bench () =
  let cfg =
    Experiment.Figures.config
      ~samples:(min 100 Bench_env.samples)
      ~seed:Bench_env.seed
      ~sim_horizon:(Model.Time.of_units 200)
      Experiment.Figures.Fig3a
  in
  let runs =
    List.map (fun jobs -> (jobs, time (fun () -> Experiment.Sweep.run ~jobs cfg))) job_counts
  in
  report "sweep" (List.map (fun (j, (_, s)) -> (j, s)) runs);
  check_identical "sweep" (List.map (fun (j, (t, _)) -> (j, Experiment.Sweep.to_csv t)) runs)

let audit_taskset =
  (* deliberately contended: spatially heavy on a small device so the
     cross-check exercises misses, shrinking and lemma replays *)
  Model.Taskset.of_list
    [
      Model.Task.make ~name:"a" ~exec:(Model.Time.of_units 2) ~deadline:(Model.Time.of_units 4)
        ~period:(Model.Time.of_units 4) ~area:4 ();
      Model.Task.make ~name:"b" ~exec:(Model.Time.of_units 2) ~deadline:(Model.Time.of_units 5)
        ~period:(Model.Time.of_units 5) ~area:5 ();
      Model.Task.make ~name:"c" ~exec:(Model.Time.of_units 3) ~deadline:(Model.Time.of_units 6)
        ~period:(Model.Time.of_units 6) ~area:5 ();
    ]

let audit_bench () =
  let runs =
    List.map
      (fun jobs -> (jobs, time (fun () -> Audit.Driver.run ~jobs ~fpga_area:10 audit_taskset)))
      job_counts
  in
  report "audit" (List.map (fun (j, (_, s)) -> (j, s)) runs);
  check_identical "audit"
    (List.map (fun (j, (r, _)) -> (j, Format.asprintf "%a" Audit.Driver.pp_sexp r)) runs)

let exhaustive_taskset =
  (* the no-critical-instant witness from the test suite: synchronous
     release is schedulable but some offset assignment misses *)
  Model.Taskset.of_list
    [
      Model.Task.make ~name:"t0" ~exec:(Model.Time.of_units 3) ~deadline:(Model.Time.of_units 3)
        ~period:(Model.Time.of_units 3) ~area:6 ();
      Model.Task.make ~name:"t1" ~exec:(Model.Time.of_units 1) ~deadline:(Model.Time.of_units 3)
        ~period:(Model.Time.of_units 3) ~area:4 ();
      Model.Task.make ~name:"t2" ~exec:(Model.Time.of_units 1) ~deadline:(Model.Time.of_units 2)
        ~period:(Model.Time.of_units 2) ~area:4 ();
    ]

let exhaustive_bench () =
  let grid = Model.Time.of_ticks 500 in
  let runs =
    List.map
      (fun jobs ->
        ( jobs,
          time (fun () ->
              Sim.Exhaustive.search ~grid ~jobs ~fpga_area:10 ~policy:Sim.Policy.edf_nf
                exhaustive_taskset) ))
      job_counts
  in
  report "exhaustive" (List.map (fun (j, (_, s)) -> (j, s)) runs);
  let render = function
    | Sim.Exhaustive.Schedulable_all_offsets { combinations } ->
      Printf.sprintf "schedulable:%d" combinations
    | Sim.Exhaustive.Miss_with_offsets { offsets; miss = _ } ->
      "miss:" ^ String.concat "," (List.map Model.Time.to_string offsets)
    | Sim.Exhaustive.Too_many_combinations { combinations } ->
      Printf.sprintf "too-many:%d" combinations
    | Sim.Exhaustive.Hyperperiod_too_large -> "hyperperiod"
  in
  check_identical "exhaustive" (List.map (fun (j, (o, _)) -> (j, render o)) runs)

let run () =
  Bench_env.section "Parallel subsystem: deterministic domain fan-out";
  Printf.printf "recommended domain count on this machine: %d\n" cores;
  if cores = 1 then
    Printf.printf
      "(single hardware thread: speedups cannot exceed 1x here; the point of this\n\
      \ run is the determinism check — outputs must not depend on the job count)\n";
  Printf.printf "job counts exercised: %s\n\n"
    (String.concat ", " (List.map string_of_int job_counts));
  sweep_bench ();
  audit_bench ();
  exhaustive_bench ();
  let b = Buffer.create 256 in
  Buffer.add_string b "path,jobs,seconds,speedup\n";
  List.iter
    (fun (path, jobs, seconds, speedup) ->
      Buffer.add_string b (Printf.sprintf "%s,%d,%.4f,%.3f\n" path jobs seconds speedup))
    (List.rev !csv_rows);
  Bench_env.write_file "parallel.csv" (Buffer.contents b);
  Printf.printf "\n  (series written to %s/parallel.csv)\n" Bench_env.results_dir
