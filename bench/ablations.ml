(* Ablation experiments for the design choices DESIGN.md calls out:
   measured work-conserving alpha (Lemmas 1-2), the cost of restricted
   migration (contiguous placement), partitioned vs global scheduling,
   reconfiguration overhead, and the EDF-US hybrid of Section 7. *)

module Time = Model.Time
module Engine = Sim.Engine
module Policy = Sim.Policy

let fpga_area = 100

let profile = Model.Generator.unconstrained ~n:10

let sim_accept ?placement ~policy ts =
  let cfg = Engine.default_config ~fpga_area ~policy in
  let cfg =
    {
      cfg with
      Engine.horizon = Bench_env.horizon;
      placement = Option.value placement ~default:Engine.Migrating;
    }
  in
  Engine.schedulable cfg ts

let tasksets_at rng target n =
  let rec go acc k =
    if k = 0 then acc
    else
      match Model.Generator.draw_with_target_us rng profile ~target_us:target with
      | Some ts -> go (ts :: acc) (k - 1)
      | None -> go acc (k - 1)
  in
  go [] n

(* --- measured alpha vs Lemmas 1 and 2 --- *)

let measured_alpha () =
  Bench_env.section "Lemmas 1-2: measured work-conserving alpha";
  let rng = Rng.create ~seed:Bench_env.seed in
  let samples = max 50 (Bench_env.samples / 4) in
  (* overloaded sets so the device is contended *)
  let sets = tasksets_at rng 120.0 samples in
  let measure policy =
    List.fold_left
      (fun (worst, lemma_ok, contended) ts ->
        let cfg = Engine.default_config ~fpga_area ~policy in
        let r = Engine.run { cfg with Engine.horizon = Time.of_units 100 } ts in
        match r.Engine.stats.min_busy_when_contended with
        | None -> (worst, lemma_ok, contended)
        | Some min_busy ->
          let alpha = float_of_int min_busy /. float_of_int fpga_area in
          let flag =
            match policy.Policy.rule with
            | Policy.Fkf -> r.Engine.stats.fkf_alpha_respected
            | Policy.Nf -> r.Engine.stats.nf_alpha_respected
          in
          (min worst alpha, lemma_ok && flag, contended + 1))
      (1.0, true, 0) sets
  in
  let report name policy bound_of =
    let worst, lemma_ok, contended = measure policy in
    let amax_bound =
      (* bound for the largest possible task area (100): most pessimistic *)
      bound_of 100
    in
    Printf.printf
      "%-8s: %d contended runs, worst measured alpha %.3f, Lemma bound (Amax=100) %.3f, lemma flag %s\n"
      name contended worst amax_bound
      (if lemma_ok then "never violated" else "VIOLATED")
  in
  report "EDF-FkF" Policy.edf_fkf (fun amax ->
      1.0 -. (float_of_int (amax - 1) /. float_of_int fpga_area));
  report "EDF-NF" Policy.edf_nf (fun amax ->
      1.0 -. (float_of_int (amax - 1) /. float_of_int fpga_area));
  Printf.printf
    "(the per-job Lemma-2 bound uses each waiting job's own area; the engine checks it exactly)\n"

(* --- restricted migration / contiguous placement --- *)

let placement_modes () =
  Bench_env.section "Ablation: unrestricted migration vs contiguous placement";
  Printf.printf
    "simulated acceptance under EDF-NF, by placement mode (samples=%d/point):\n\n"
    (max 50 (Bench_env.samples / 3));
  let targets = [ 40.0; 55.0; 70.0; 85.0 ] in
  Printf.printf "%8s %12s %12s %12s %12s\n" "US" "migrating" "first-fit" "best-fit" "worst-fit";
  List.iter
    (fun target ->
      let rng = Rng.create ~seed:(Bench_env.seed + 7) in
      let sets = tasksets_at rng target (max 50 (Bench_env.samples / 3)) in
      let ratio placement =
        let n = List.length sets in
        if n = 0 then 0.0
        else
          float_of_int (List.length (List.filter (sim_accept ?placement ~policy:Policy.edf_nf) sets))
          /. float_of_int n
      in
      Printf.printf "%8.1f %12.3f %12.3f %12.3f %12.3f\n" target (ratio None)
        (ratio (Some (Engine.Contiguous Fpga.Device.First_fit)))
        (ratio (Some (Engine.Contiguous Fpga.Device.Best_fit)))
        (ratio (Some (Engine.Contiguous Fpga.Device.Worst_fit))))
    targets

(* --- partitioned vs global --- *)

let partitioned_vs_global () =
  Bench_env.section "Ablation: partitioned (Danne RAW'06) vs global EDF-NF";
  let samples = max 100 (Bench_env.samples / 2) in
  Printf.printf "%8s %14s %18s %12s\n" "US" "partitioned" "composite-tests" "SIM-NF";
  List.iter
    (fun target ->
      let rng = Rng.create ~seed:(Bench_env.seed + 13) in
      let sets = tasksets_at rng target samples in
      let n = float_of_int (max 1 (List.length sets)) in
      let count f = float_of_int (List.length (List.filter f sets)) /. n in
      Printf.printf "%8.1f %14.3f %18.3f %12.3f\n" target
        (count (fun ts -> Core.Partitioned.accepts ~fpga_area ts))
        (count (Core.Composite.edf_nf_any ~fpga_area))
        (count (fun ts -> sim_accept ~policy:Policy.edf_nf ts)))
    [ 20.0; 30.0; 40.0; 55.0; 70.0 ]

(* --- reconfiguration overhead --- *)

let overhead_sweep () =
  Bench_env.section "Ablation: reconfiguration overhead folded into C (Section 1)";
  Printf.printf
    "acceptance of the combined analytic test after inflating every C by the\nworst-case reconfiguration delay (per-column model), US target 30:\n\n";
  let samples = max 100 (Bench_env.samples / 2) in
  let rng = Rng.create ~seed:(Bench_env.seed + 23) in
  let sets = tasksets_at rng 30.0 samples in
  let n = float_of_int (max 1 (List.length sets)) in
  Printf.printf "%22s %12s\n" "overhead (ms/column)" "acceptance";
  List.iter
    (fun per_column_ms ->
      let model =
        if per_column_ms = 0 then Fpga.Overhead.Zero
        else Fpga.Overhead.Per_column (Time.of_ticks per_column_ms)
      in
      let accept ts =
        match Fpga.Overhead.inflate_taskset model ts with
        | None -> false
        | Some ts' -> Core.Composite.edf_nf_any ~fpga_area ts'
      in
      Printf.printf "%22.3f %12.3f\n"
        (float_of_int per_column_ms /. 1000.0)
        (float_of_int (List.length (List.filter accept sets)) /. n))
    [ 0; 1; 2; 5; 10; 20 ]

(* --- EDF-US hybrid --- *)

let edf_us () =
  Bench_env.section "Ablation: EDF-US hybrid (Section 7 future work)";
  Printf.printf
    "simulated acceptance on temporally-heavy tasksets (figure 4(b) profile):\nEDF-US gives top priority to tasks above the utilization threshold.\n\n";
  let p = Model.Generator.spatially_light_temporally_heavy ~n:10 in
  let samples = max 100 (Bench_env.samples / 2) in
  let rng = Rng.create ~seed:(Bench_env.seed + 31) in
  let sets = List.init samples (fun _ -> Model.Generator.draw rng p) in
  let policies =
    [
      ("EDF-NF", Policy.edf_nf);
      ("EDF-FkF", Policy.edf_fkf);
      ( "EDF-US[1/2]-time",
        Policy.edf_us ~threshold:(Rat.of_ints 1 2) ~measure:`Time ~rule:Policy.Nf );
      ( "EDF-US[1/2]-system",
        Policy.edf_us ~threshold:(Rat.of_ints 1 200) ~measure:`System ~rule:Policy.Nf );
    ]
  in
  let n = float_of_int (max 1 (List.length sets)) in
  List.iter
    (fun (name, policy) ->
      Printf.printf "%24s: %.3f\n" name
        (float_of_int (List.length (List.filter (fun ts -> sim_accept ~policy ts) sets)) /. n))
    policies

(* --- 2-D reconfiguration (Section 7) --- *)

let two_dimensional () =
  Bench_env.section "Ablation: 1-D column model vs 2-D rectangles (Section 7)";
  Printf.printf
    "The same workloads simulated three ways on a 100-cell device:\n\
     (a) 1-D migrating (the paper's model), (b) 1-D embedded on a 10x10 grid\n\
     (full-height rectangles = contiguous columns), (c) 2-D square-ish\n\
     rectangles of the same cell count.  EDF-NF, horizon 200 units.\n\n";
  let rng = Rng.create ~seed:(Bench_env.seed + 53) in
  let samples = max 60 (Bench_env.samples / 5) in
  let profile = { (Model.Generator.unconstrained ~n:8) with Model.Generator.fpga_area = 100 } in
  Printf.printf "%8s %12s %14s %12s %16s\n" "US" "1-D migr" "grid embedded" "2-D squares" "frag rejections";
  List.iter
    (fun target ->
      let sets =
        List.filter_map
          (fun _ -> Model.Generator.draw_with_target_us rng profile ~target_us:target)
          (List.init samples Fun.id)
      in
      if sets <> [] then begin
        let n = float_of_int (List.length sets) in
        let migr =
          let cfg = Engine.default_config ~fpga_area:100 ~policy:Policy.edf_nf in
          let cfg = { cfg with Engine.horizon = Time.of_units 200 } in
          List.length (List.filter (Engine.schedulable cfg) sets)
        in
        let grid_cfg =
          { (Sim2d.Engine2d.default_config ~width:10 ~height:10 ~rule:Policy.Nf) with
            Sim2d.Engine2d.horizon = Time.of_units 200 }
        in
        let embedded =
          List.length
            (List.filter
               (fun ts ->
                 (* width on a 10-column grid: ceil(area/10) full-height *)
                 let tasks =
                   List.map
                     (fun (t : Model.Task.t) ->
                       Sim2d.Task2d.make ~name:t.name ~exec:t.exec ~deadline:t.deadline
                         ~period:t.period ~w:(max 1 ((t.area + 9) / 10)) ~h:10 ())
                     (Model.Taskset.to_list ts)
                 in
                 Sim2d.Engine2d.schedulable grid_cfg tasks)
               sets)
        in
        let squares ts =
          List.map
            (fun (t : Model.Task.t) ->
              (* square-ish rectangle with ~the same number of cells *)
              let side = max 1 (int_of_float (Float.round (sqrt (float_of_int t.area)))) in
              let w = min 10 side in
              let h = min 10 (max 1 ((t.area + w - 1) / w)) in
              Sim2d.Task2d.make ~name:t.name ~exec:t.exec ~deadline:t.deadline ~period:t.period
                ~w ~h ())
            (Model.Taskset.to_list ts)
        in
        let sq_ok, frag =
          List.fold_left
            (fun (ok, fr) ts ->
              let r = Sim2d.Engine2d.run grid_cfg (squares ts) in
              ( (if r.Sim2d.Engine2d.outcome = Sim2d.Engine2d.No_miss then ok + 1 else ok),
                fr + r.Sim2d.Engine2d.stats.Sim2d.Engine2d.fragmentation_rejections ))
            (0, 0) sets
        in
        Printf.printf "%8.1f %12.3f %14.3f %12.3f %16d\n" target
          (float_of_int migr /. n)
          (float_of_int embedded /. n)
          (float_of_int sq_ok /. n)
          frag
      end)
    [ 40.0; 60.0; 80.0 ]

(* --- how optimistic is the synchronous-release simulation? --- *)

let sync_vs_exhaustive () =
  Bench_env.section "Ablation: synchronous simulation vs exhaustive offsets (Section 6 caveat)";
  Printf.printf
    "The paper uses synchronous-release simulation as a coarse upper bound\nbecause there is no critical instant.  On tiny tasksets we can exhaust\nall release offsets on a grid and count how often the synchronous\npattern is misleadingly optimistic.\n\n";
  let rng = Rng.create ~seed:(Bench_env.seed + 41) in
  let trials = max 100 (Bench_env.samples / 2) in
  let sync_ok = ref 0 and refuted = ref 0 and inconclusive = ref 0 in
  for _ = 1 to trials do
    let tasks =
      List.init
        (Rng.int_incl rng 2 3)
        (fun i ->
          let p = Rng.pick rng [| 2; 3; 4 |] in
          let period = Time.of_units p in
          let exec = Time.of_ticks (Rng.int_incl rng 1 (2 * p) * 500) in
          let area = Rng.int_incl rng 3 8 in
          Model.Task.make ~name:(Printf.sprintf "t%d" i) ~exec ~deadline:period ~period ~area ())
    in
    let ts = Model.Taskset.of_list tasks in
    match
      Sim.Exhaustive.sync_is_not_worst_case ~grid:(Time.of_ticks 500) ~fpga_area:10
        ~policy:Policy.edf_nf ts
    with
    | Some true ->
      incr sync_ok;
      incr refuted
    | Some false -> if
        (match Model.Taskset.hyperperiod ts with
         | Model.Taskset.Finite h ->
           let cfg = Engine.default_config ~fpga_area:10 ~policy:Policy.edf_nf in
           Engine.schedulable { cfg with Engine.horizon = h } ts
         | Model.Taskset.Exceeds_cap -> false)
      then incr sync_ok
    | None -> incr inconclusive
  done;
  Printf.printf
    "random 2-3 task sets on A(H)=10: %d sync-schedulable, of which %d (%.1f%%)\nare refuted by some offset assignment; %d searches inconclusive\n"
    !sync_ok !refuted
    (if !sync_ok = 0 then 0.0 else 100.0 *. float_of_int !refuted /. float_of_int !sync_ok)
    !inconclusive;
  (* a concrete witness (found by randomized search, kept as a regression
     test): sync-schedulable, missed under offsets (0, 2, 0.5) *)
  let witness =
    Model.Taskset.of_list
      [
        Model.Task.of_decimal ~name:"t0" ~exec:"3" ~deadline:"3" ~period:"3" ~area:6 ();
        Model.Task.of_decimal ~name:"t1" ~exec:"1" ~deadline:"3" ~period:"3" ~area:4 ();
        Model.Task.of_decimal ~name:"t2" ~exec:"1" ~deadline:"2" ~period:"2" ~area:4 ();
      ]
  in
  (match
     Sim.Exhaustive.sync_is_not_worst_case ~grid:(Time.of_ticks 500) ~fpga_area:10
       ~policy:Policy.edf_nf witness
   with
   | Some true ->
     Printf.printf
      "known witness confirmed: {(3,3,3,6),(1,3,3,4),(1,2,2,4)} on A(H)=10 is\nsync-schedulable but misses with offsets (0, 2, 0.5)\n"
   | _ -> Printf.printf "known witness NOT confirmed (unexpected)\n")

let run () =
  measured_alpha ();
  placement_modes ();
  partitioned_vs_global ();
  overhead_sweep ();
  edf_us ();
  two_dimensional ();
  sync_vs_exhaustive ()
